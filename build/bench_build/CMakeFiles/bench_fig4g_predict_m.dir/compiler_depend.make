# Empty compiler generated dependencies file for bench_fig4g_predict_m.
# This may be replaced when dependencies are built.
