file(REMOVE_RECURSE
  "../bench/bench_micro_bigint"
  "../bench/bench_micro_bigint.pdb"
  "CMakeFiles/bench_micro_bigint.dir/bench_micro_bigint.cc.o"
  "CMakeFiles/bench_micro_bigint.dir/bench_micro_bigint.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
