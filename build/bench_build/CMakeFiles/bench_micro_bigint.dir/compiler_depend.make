# Empty compiler generated dependencies file for bench_micro_bigint.
# This may be replaced when dependencies are built.
