# Empty compiler generated dependencies file for bench_fig4e_vary_h.
# This may be replaced when dependencies are built.
