file(REMOVE_RECURSE
  "../bench/bench_fig4e_vary_h"
  "../bench/bench_fig4e_vary_h.pdb"
  "CMakeFiles/bench_fig4e_vary_h.dir/bench_fig4e_vary_h.cc.o"
  "CMakeFiles/bench_fig4e_vary_h.dir/bench_fig4e_vary_h.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4e_vary_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
