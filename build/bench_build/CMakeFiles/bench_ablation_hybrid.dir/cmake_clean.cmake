file(REMOVE_RECURSE
  "../bench/bench_ablation_hybrid"
  "../bench/bench_ablation_hybrid.pdb"
  "CMakeFiles/bench_ablation_hybrid.dir/bench_ablation_hybrid.cc.o"
  "CMakeFiles/bench_ablation_hybrid.dir/bench_ablation_hybrid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
