# Empty dependencies file for bench_ablation_hybrid.
# This may be replaced when dependencies are built.
