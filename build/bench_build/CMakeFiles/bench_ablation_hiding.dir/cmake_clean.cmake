file(REMOVE_RECURSE
  "../bench/bench_ablation_hiding"
  "../bench/bench_ablation_hiding.pdb"
  "CMakeFiles/bench_ablation_hiding.dir/bench_ablation_hiding.cc.o"
  "CMakeFiles/bench_ablation_hiding.dir/bench_ablation_hiding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
