# Empty compiler generated dependencies file for bench_ablation_hiding.
# This may be replaced when dependencies are built.
