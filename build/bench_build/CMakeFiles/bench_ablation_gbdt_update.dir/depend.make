# Empty dependencies file for bench_ablation_gbdt_update.
# This may be replaced when dependencies are built.
