file(REMOVE_RECURSE
  "../bench/bench_ablation_gbdt_update"
  "../bench/bench_ablation_gbdt_update.pdb"
  "CMakeFiles/bench_ablation_gbdt_update.dir/bench_ablation_gbdt_update.cc.o"
  "CMakeFiles/bench_ablation_gbdt_update.dir/bench_ablation_gbdt_update.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gbdt_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
