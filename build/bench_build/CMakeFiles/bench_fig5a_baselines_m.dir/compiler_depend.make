# Empty compiler generated dependencies file for bench_fig5a_baselines_m.
# This may be replaced when dependencies are built.
