# Empty dependencies file for bench_fig4h_predict_h.
# This may be replaced when dependencies are built.
