
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4f_vary_trees.cc" "bench_build/CMakeFiles/bench_fig4f_vary_trees.dir/bench_fig4f_vary_trees.cc.o" "gcc" "bench_build/CMakeFiles/bench_fig4f_vary_trees.dir/bench_fig4f_vary_trees.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pivot/CMakeFiles/pivot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pivot_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/pivot_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pivot_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pivot_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/pivot_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/pivot_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pivot_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pivot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
