# Empty compiler generated dependencies file for bench_fig4f_vary_trees.
# This may be replaced when dependencies are built.
