file(REMOVE_RECURSE
  "../bench/bench_fig4f_vary_trees"
  "../bench/bench_fig4f_vary_trees.pdb"
  "CMakeFiles/bench_fig4f_vary_trees.dir/bench_fig4f_vary_trees.cc.o"
  "CMakeFiles/bench_fig4f_vary_trees.dir/bench_fig4f_vary_trees.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4f_vary_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
