# Empty dependencies file for bench_fig4a_vary_m.
# This may be replaced when dependencies are built.
