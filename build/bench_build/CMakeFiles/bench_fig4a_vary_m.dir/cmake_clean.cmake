file(REMOVE_RECURSE
  "../bench/bench_fig4a_vary_m"
  "../bench/bench_fig4a_vary_m.pdb"
  "CMakeFiles/bench_fig4a_vary_m.dir/bench_fig4a_vary_m.cc.o"
  "CMakeFiles/bench_fig4a_vary_m.dir/bench_fig4a_vary_m.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_vary_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
