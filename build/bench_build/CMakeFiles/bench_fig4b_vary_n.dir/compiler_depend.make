# Empty compiler generated dependencies file for bench_fig4b_vary_n.
# This may be replaced when dependencies are built.
