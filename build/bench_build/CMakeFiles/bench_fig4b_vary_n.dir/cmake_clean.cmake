file(REMOVE_RECURSE
  "../bench/bench_fig4b_vary_n"
  "../bench/bench_fig4b_vary_n.pdb"
  "CMakeFiles/bench_fig4b_vary_n.dir/bench_fig4b_vary_n.cc.o"
  "CMakeFiles/bench_fig4b_vary_n.dir/bench_fig4b_vary_n.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_vary_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
