file(REMOVE_RECURSE
  "../bench/bench_table2_costmodel"
  "../bench/bench_table2_costmodel.pdb"
  "CMakeFiles/bench_table2_costmodel.dir/bench_table2_costmodel.cc.o"
  "CMakeFiles/bench_table2_costmodel.dir/bench_table2_costmodel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
