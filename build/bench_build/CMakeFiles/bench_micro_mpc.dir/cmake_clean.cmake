file(REMOVE_RECURSE
  "../bench/bench_micro_mpc"
  "../bench/bench_micro_mpc.pdb"
  "CMakeFiles/bench_micro_mpc.dir/bench_micro_mpc.cc.o"
  "CMakeFiles/bench_micro_mpc.dir/bench_micro_mpc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
