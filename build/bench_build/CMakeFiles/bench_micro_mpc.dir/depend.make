# Empty dependencies file for bench_micro_mpc.
# This may be replaced when dependencies are built.
