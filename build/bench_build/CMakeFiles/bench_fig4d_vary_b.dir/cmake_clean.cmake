file(REMOVE_RECURSE
  "../bench/bench_fig4d_vary_b"
  "../bench/bench_fig4d_vary_b.pdb"
  "CMakeFiles/bench_fig4d_vary_b.dir/bench_fig4d_vary_b.cc.o"
  "CMakeFiles/bench_fig4d_vary_b.dir/bench_fig4d_vary_b.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4d_vary_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
