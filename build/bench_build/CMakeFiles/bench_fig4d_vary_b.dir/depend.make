# Empty dependencies file for bench_fig4d_vary_b.
# This may be replaced when dependencies are built.
