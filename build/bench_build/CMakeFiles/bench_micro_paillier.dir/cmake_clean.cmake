file(REMOVE_RECURSE
  "../bench/bench_micro_paillier"
  "../bench/bench_micro_paillier.pdb"
  "CMakeFiles/bench_micro_paillier.dir/bench_micro_paillier.cc.o"
  "CMakeFiles/bench_micro_paillier.dir/bench_micro_paillier.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_paillier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
