# Empty dependencies file for bench_micro_paillier.
# This may be replaced when dependencies are built.
