file(REMOVE_RECURSE
  "../bench/bench_ablation_parallel_dec"
  "../bench/bench_ablation_parallel_dec.pdb"
  "CMakeFiles/bench_ablation_parallel_dec.dir/bench_ablation_parallel_dec.cc.o"
  "CMakeFiles/bench_ablation_parallel_dec.dir/bench_ablation_parallel_dec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parallel_dec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
