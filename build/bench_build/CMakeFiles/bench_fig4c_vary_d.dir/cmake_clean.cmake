file(REMOVE_RECURSE
  "../bench/bench_fig4c_vary_d"
  "../bench/bench_fig4c_vary_d.pdb"
  "CMakeFiles/bench_fig4c_vary_d.dir/bench_fig4c_vary_d.cc.o"
  "CMakeFiles/bench_fig4c_vary_d.dir/bench_fig4c_vary_d.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c_vary_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
