# Empty compiler generated dependencies file for bench_fig4c_vary_d.
# This may be replaced when dependencies are built.
