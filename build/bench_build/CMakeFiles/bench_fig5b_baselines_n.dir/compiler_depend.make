# Empty compiler generated dependencies file for bench_fig5b_baselines_n.
# This may be replaced when dependencies are built.
