file(REMOVE_RECURSE
  "../bench/bench_fig5b_baselines_n"
  "../bench/bench_fig5b_baselines_n.pdb"
  "CMakeFiles/bench_fig5b_baselines_n.dir/bench_fig5b_baselines_n.cc.o"
  "CMakeFiles/bench_fig5b_baselines_n.dir/bench_fig5b_baselines_n.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_baselines_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
