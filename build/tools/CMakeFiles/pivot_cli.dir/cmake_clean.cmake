file(REMOVE_RECURSE
  "CMakeFiles/pivot_cli.dir/pivot_cli.cc.o"
  "CMakeFiles/pivot_cli.dir/pivot_cli.cc.o.d"
  "pivot_cli"
  "pivot_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
