# Empty dependencies file for pivot_cli.
# This may be replaced when dependencies are built.
