# Empty dependencies file for energy_regression.
# This may be replaced when dependencies are built.
