file(REMOVE_RECURSE
  "CMakeFiles/energy_regression.dir/energy_regression.cpp.o"
  "CMakeFiles/energy_regression.dir/energy_regression.cpp.o.d"
  "energy_regression"
  "energy_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
