# Empty compiler generated dependencies file for private_medical_dp.
# This may be replaced when dependencies are built.
