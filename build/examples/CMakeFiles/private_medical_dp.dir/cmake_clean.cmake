file(REMOVE_RECURSE
  "CMakeFiles/private_medical_dp.dir/private_medical_dp.cpp.o"
  "CMakeFiles/private_medical_dp.dir/private_medical_dp.cpp.o.d"
  "private_medical_dp"
  "private_medical_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_medical_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
