# Empty compiler generated dependencies file for full_pipeline.
# This may be replaced when dependencies are built.
