file(REMOVE_RECURSE
  "CMakeFiles/full_pipeline.dir/full_pipeline.cpp.o"
  "CMakeFiles/full_pipeline.dir/full_pipeline.cpp.o.d"
  "full_pipeline"
  "full_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
