# Empty dependencies file for pivot_psi.
# This may be replaced when dependencies are built.
