file(REMOVE_RECURSE
  "libpivot_psi.a"
)
