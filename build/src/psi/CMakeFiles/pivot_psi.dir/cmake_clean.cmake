file(REMOVE_RECURSE
  "CMakeFiles/pivot_psi.dir/psi.cc.o"
  "CMakeFiles/pivot_psi.dir/psi.cc.o.d"
  "libpivot_psi.a"
  "libpivot_psi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_psi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
