file(REMOVE_RECURSE
  "CMakeFiles/pivot_mpc.dir/dp.cc.o"
  "CMakeFiles/pivot_mpc.dir/dp.cc.o.d"
  "CMakeFiles/pivot_mpc.dir/engine.cc.o"
  "CMakeFiles/pivot_mpc.dir/engine.cc.o.d"
  "CMakeFiles/pivot_mpc.dir/mac.cc.o"
  "CMakeFiles/pivot_mpc.dir/mac.cc.o.d"
  "CMakeFiles/pivot_mpc.dir/preprocessing.cc.o"
  "CMakeFiles/pivot_mpc.dir/preprocessing.cc.o.d"
  "libpivot_mpc.a"
  "libpivot_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
