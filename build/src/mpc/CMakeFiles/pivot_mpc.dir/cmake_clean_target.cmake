file(REMOVE_RECURSE
  "libpivot_mpc.a"
)
