# Empty compiler generated dependencies file for pivot_mpc.
# This may be replaced when dependencies are built.
