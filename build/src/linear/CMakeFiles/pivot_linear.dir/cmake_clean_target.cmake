file(REMOVE_RECURSE
  "libpivot_linear.a"
)
