# Empty dependencies file for pivot_linear.
# This may be replaced when dependencies are built.
