file(REMOVE_RECURSE
  "CMakeFiles/pivot_linear.dir/logistic.cc.o"
  "CMakeFiles/pivot_linear.dir/logistic.cc.o.d"
  "libpivot_linear.a"
  "libpivot_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
