# Empty dependencies file for pivot_net.
# This may be replaced when dependencies are built.
