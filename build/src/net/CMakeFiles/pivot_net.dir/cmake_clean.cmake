file(REMOVE_RECURSE
  "CMakeFiles/pivot_net.dir/codec.cc.o"
  "CMakeFiles/pivot_net.dir/codec.cc.o.d"
  "CMakeFiles/pivot_net.dir/network.cc.o"
  "CMakeFiles/pivot_net.dir/network.cc.o.d"
  "libpivot_net.a"
  "libpivot_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
