file(REMOVE_RECURSE
  "libpivot_net.a"
)
