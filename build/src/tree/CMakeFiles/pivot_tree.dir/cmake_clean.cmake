file(REMOVE_RECURSE
  "CMakeFiles/pivot_tree.dir/cart.cc.o"
  "CMakeFiles/pivot_tree.dir/cart.cc.o.d"
  "CMakeFiles/pivot_tree.dir/export.cc.o"
  "CMakeFiles/pivot_tree.dir/export.cc.o.d"
  "CMakeFiles/pivot_tree.dir/forest.cc.o"
  "CMakeFiles/pivot_tree.dir/forest.cc.o.d"
  "CMakeFiles/pivot_tree.dir/gbdt.cc.o"
  "CMakeFiles/pivot_tree.dir/gbdt.cc.o.d"
  "CMakeFiles/pivot_tree.dir/splits.cc.o"
  "CMakeFiles/pivot_tree.dir/splits.cc.o.d"
  "libpivot_tree.a"
  "libpivot_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
