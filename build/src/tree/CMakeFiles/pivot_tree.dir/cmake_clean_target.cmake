file(REMOVE_RECURSE
  "libpivot_tree.a"
)
