# Empty dependencies file for pivot_tree.
# This may be replaced when dependencies are built.
