# CMake generated Testfile for 
# Source directory: /root/repo/src/tree
# Build directory: /root/repo/build/src/tree
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
