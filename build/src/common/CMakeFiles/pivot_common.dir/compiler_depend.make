# Empty compiler generated dependencies file for pivot_common.
# This may be replaced when dependencies are built.
