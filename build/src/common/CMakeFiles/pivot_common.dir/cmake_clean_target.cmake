file(REMOVE_RECURSE
  "libpivot_common.a"
)
