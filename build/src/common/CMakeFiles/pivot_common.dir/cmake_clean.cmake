file(REMOVE_RECURSE
  "CMakeFiles/pivot_common.dir/bytes.cc.o"
  "CMakeFiles/pivot_common.dir/bytes.cc.o.d"
  "CMakeFiles/pivot_common.dir/op_counters.cc.o"
  "CMakeFiles/pivot_common.dir/op_counters.cc.o.d"
  "CMakeFiles/pivot_common.dir/rng.cc.o"
  "CMakeFiles/pivot_common.dir/rng.cc.o.d"
  "CMakeFiles/pivot_common.dir/sha256.cc.o"
  "CMakeFiles/pivot_common.dir/sha256.cc.o.d"
  "CMakeFiles/pivot_common.dir/status.cc.o"
  "CMakeFiles/pivot_common.dir/status.cc.o.d"
  "libpivot_common.a"
  "libpivot_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
