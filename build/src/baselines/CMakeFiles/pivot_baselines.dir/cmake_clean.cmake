file(REMOVE_RECURSE
  "CMakeFiles/pivot_baselines.dir/npd_dt.cc.o"
  "CMakeFiles/pivot_baselines.dir/npd_dt.cc.o.d"
  "CMakeFiles/pivot_baselines.dir/spdz_dt.cc.o"
  "CMakeFiles/pivot_baselines.dir/spdz_dt.cc.o.d"
  "libpivot_baselines.a"
  "libpivot_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
