# Empty dependencies file for pivot_baselines.
# This may be replaced when dependencies are built.
