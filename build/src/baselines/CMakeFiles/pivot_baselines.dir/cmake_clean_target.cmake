file(REMOVE_RECURSE
  "libpivot_baselines.a"
)
