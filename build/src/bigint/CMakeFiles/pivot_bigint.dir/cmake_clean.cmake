file(REMOVE_RECURSE
  "CMakeFiles/pivot_bigint.dir/bigint.cc.o"
  "CMakeFiles/pivot_bigint.dir/bigint.cc.o.d"
  "CMakeFiles/pivot_bigint.dir/prime.cc.o"
  "CMakeFiles/pivot_bigint.dir/prime.cc.o.d"
  "libpivot_bigint.a"
  "libpivot_bigint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
