# Empty dependencies file for pivot_bigint.
# This may be replaced when dependencies are built.
