# Empty compiler generated dependencies file for pivot_bigint.
# This may be replaced when dependencies are built.
