file(REMOVE_RECURSE
  "libpivot_bigint.a"
)
