file(REMOVE_RECURSE
  "libpivot_data.a"
)
