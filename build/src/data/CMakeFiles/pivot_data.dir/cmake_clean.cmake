file(REMOVE_RECURSE
  "CMakeFiles/pivot_data.dir/dataset.cc.o"
  "CMakeFiles/pivot_data.dir/dataset.cc.o.d"
  "CMakeFiles/pivot_data.dir/standardize.cc.o"
  "CMakeFiles/pivot_data.dir/standardize.cc.o.d"
  "CMakeFiles/pivot_data.dir/synthetic.cc.o"
  "CMakeFiles/pivot_data.dir/synthetic.cc.o.d"
  "libpivot_data.a"
  "libpivot_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
