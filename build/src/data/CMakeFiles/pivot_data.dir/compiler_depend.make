# Empty compiler generated dependencies file for pivot_data.
# This may be replaced when dependencies are built.
