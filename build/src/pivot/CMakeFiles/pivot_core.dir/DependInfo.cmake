
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pivot/context.cc" "src/pivot/CMakeFiles/pivot_core.dir/context.cc.o" "gcc" "src/pivot/CMakeFiles/pivot_core.dir/context.cc.o.d"
  "/root/repo/src/pivot/ensemble.cc" "src/pivot/CMakeFiles/pivot_core.dir/ensemble.cc.o" "gcc" "src/pivot/CMakeFiles/pivot_core.dir/ensemble.cc.o.d"
  "/root/repo/src/pivot/logreg.cc" "src/pivot/CMakeFiles/pivot_core.dir/logreg.cc.o" "gcc" "src/pivot/CMakeFiles/pivot_core.dir/logreg.cc.o.d"
  "/root/repo/src/pivot/malicious.cc" "src/pivot/CMakeFiles/pivot_core.dir/malicious.cc.o" "gcc" "src/pivot/CMakeFiles/pivot_core.dir/malicious.cc.o.d"
  "/root/repo/src/pivot/model.cc" "src/pivot/CMakeFiles/pivot_core.dir/model.cc.o" "gcc" "src/pivot/CMakeFiles/pivot_core.dir/model.cc.o.d"
  "/root/repo/src/pivot/prediction.cc" "src/pivot/CMakeFiles/pivot_core.dir/prediction.cc.o" "gcc" "src/pivot/CMakeFiles/pivot_core.dir/prediction.cc.o.d"
  "/root/repo/src/pivot/runner.cc" "src/pivot/CMakeFiles/pivot_core.dir/runner.cc.o" "gcc" "src/pivot/CMakeFiles/pivot_core.dir/runner.cc.o.d"
  "/root/repo/src/pivot/secure_gain.cc" "src/pivot/CMakeFiles/pivot_core.dir/secure_gain.cc.o" "gcc" "src/pivot/CMakeFiles/pivot_core.dir/secure_gain.cc.o.d"
  "/root/repo/src/pivot/serialize.cc" "src/pivot/CMakeFiles/pivot_core.dir/serialize.cc.o" "gcc" "src/pivot/CMakeFiles/pivot_core.dir/serialize.cc.o.d"
  "/root/repo/src/pivot/trainer.cc" "src/pivot/CMakeFiles/pivot_core.dir/trainer.cc.o" "gcc" "src/pivot/CMakeFiles/pivot_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pivot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/pivot_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pivot_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pivot_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/pivot_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pivot_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/pivot_tree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
