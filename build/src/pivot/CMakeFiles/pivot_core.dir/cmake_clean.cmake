file(REMOVE_RECURSE
  "CMakeFiles/pivot_core.dir/context.cc.o"
  "CMakeFiles/pivot_core.dir/context.cc.o.d"
  "CMakeFiles/pivot_core.dir/ensemble.cc.o"
  "CMakeFiles/pivot_core.dir/ensemble.cc.o.d"
  "CMakeFiles/pivot_core.dir/logreg.cc.o"
  "CMakeFiles/pivot_core.dir/logreg.cc.o.d"
  "CMakeFiles/pivot_core.dir/malicious.cc.o"
  "CMakeFiles/pivot_core.dir/malicious.cc.o.d"
  "CMakeFiles/pivot_core.dir/model.cc.o"
  "CMakeFiles/pivot_core.dir/model.cc.o.d"
  "CMakeFiles/pivot_core.dir/prediction.cc.o"
  "CMakeFiles/pivot_core.dir/prediction.cc.o.d"
  "CMakeFiles/pivot_core.dir/runner.cc.o"
  "CMakeFiles/pivot_core.dir/runner.cc.o.d"
  "CMakeFiles/pivot_core.dir/secure_gain.cc.o"
  "CMakeFiles/pivot_core.dir/secure_gain.cc.o.d"
  "CMakeFiles/pivot_core.dir/serialize.cc.o"
  "CMakeFiles/pivot_core.dir/serialize.cc.o.d"
  "CMakeFiles/pivot_core.dir/trainer.cc.o"
  "CMakeFiles/pivot_core.dir/trainer.cc.o.d"
  "libpivot_core.a"
  "libpivot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
