
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/paillier.cc" "src/crypto/CMakeFiles/pivot_crypto.dir/paillier.cc.o" "gcc" "src/crypto/CMakeFiles/pivot_crypto.dir/paillier.cc.o.d"
  "/root/repo/src/crypto/threshold_paillier.cc" "src/crypto/CMakeFiles/pivot_crypto.dir/threshold_paillier.cc.o" "gcc" "src/crypto/CMakeFiles/pivot_crypto.dir/threshold_paillier.cc.o.d"
  "/root/repo/src/crypto/zkp.cc" "src/crypto/CMakeFiles/pivot_crypto.dir/zkp.cc.o" "gcc" "src/crypto/CMakeFiles/pivot_crypto.dir/zkp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bigint/CMakeFiles/pivot_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pivot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
