file(REMOVE_RECURSE
  "CMakeFiles/pivot_crypto.dir/paillier.cc.o"
  "CMakeFiles/pivot_crypto.dir/paillier.cc.o.d"
  "CMakeFiles/pivot_crypto.dir/threshold_paillier.cc.o"
  "CMakeFiles/pivot_crypto.dir/threshold_paillier.cc.o.d"
  "CMakeFiles/pivot_crypto.dir/zkp.cc.o"
  "CMakeFiles/pivot_crypto.dir/zkp.cc.o.d"
  "libpivot_crypto.a"
  "libpivot_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
