# Empty dependencies file for pivot_crypto.
# This may be replaced when dependencies are built.
