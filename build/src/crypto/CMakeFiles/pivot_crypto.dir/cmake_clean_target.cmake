file(REMOVE_RECURSE
  "libpivot_crypto.a"
)
