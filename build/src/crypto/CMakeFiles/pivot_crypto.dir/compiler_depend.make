# Empty compiler generated dependencies file for pivot_crypto.
# This may be replaced when dependencies are built.
