add_test([=[CliTest.TrainPredictRoundTrip]=]  /root/repo/build/tests/cli_test [==[--gtest_filter=CliTest.TrainPredictRoundTrip]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[CliTest.TrainPredictRoundTrip]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  cli_test_TESTS CliTest.TrainPredictRoundTrip)
