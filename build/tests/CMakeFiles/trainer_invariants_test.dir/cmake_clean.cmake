file(REMOVE_RECURSE
  "CMakeFiles/trainer_invariants_test.dir/trainer_invariants_test.cc.o"
  "CMakeFiles/trainer_invariants_test.dir/trainer_invariants_test.cc.o.d"
  "trainer_invariants_test"
  "trainer_invariants_test.pdb"
  "trainer_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
