file(REMOVE_RECURSE
  "CMakeFiles/export_standardize_test.dir/export_standardize_test.cc.o"
  "CMakeFiles/export_standardize_test.dir/export_standardize_test.cc.o.d"
  "export_standardize_test"
  "export_standardize_test.pdb"
  "export_standardize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_standardize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
