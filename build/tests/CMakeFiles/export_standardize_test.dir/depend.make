# Empty dependencies file for export_standardize_test.
# This may be replaced when dependencies are built.
