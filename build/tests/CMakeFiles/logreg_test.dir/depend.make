# Empty dependencies file for logreg_test.
# This may be replaced when dependencies are built.
