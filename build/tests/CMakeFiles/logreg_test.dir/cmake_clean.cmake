file(REMOVE_RECURSE
  "CMakeFiles/logreg_test.dir/logreg_test.cc.o"
  "CMakeFiles/logreg_test.dir/logreg_test.cc.o.d"
  "logreg_test"
  "logreg_test.pdb"
  "logreg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logreg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
