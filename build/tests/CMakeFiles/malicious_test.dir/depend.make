# Empty dependencies file for malicious_test.
# This may be replaced when dependencies are built.
