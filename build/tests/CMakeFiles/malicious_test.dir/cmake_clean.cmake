file(REMOVE_RECURSE
  "CMakeFiles/malicious_test.dir/malicious_test.cc.o"
  "CMakeFiles/malicious_test.dir/malicious_test.cc.o.d"
  "malicious_test"
  "malicious_test.pdb"
  "malicious_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malicious_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
