file(REMOVE_RECURSE
  "CMakeFiles/pivot_extra_test.dir/pivot_extra_test.cc.o"
  "CMakeFiles/pivot_extra_test.dir/pivot_extra_test.cc.o.d"
  "pivot_extra_test"
  "pivot_extra_test.pdb"
  "pivot_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
