# Empty dependencies file for pivot_extra_test.
# This may be replaced when dependencies are built.
