file(REMOVE_RECURSE
  "CMakeFiles/secure_gain_test.dir/secure_gain_test.cc.o"
  "CMakeFiles/secure_gain_test.dir/secure_gain_test.cc.o.d"
  "secure_gain_test"
  "secure_gain_test.pdb"
  "secure_gain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_gain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
