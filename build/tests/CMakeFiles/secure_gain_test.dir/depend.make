# Empty dependencies file for secure_gain_test.
# This may be replaced when dependencies are built.
