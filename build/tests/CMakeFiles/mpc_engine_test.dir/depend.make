# Empty dependencies file for mpc_engine_test.
# This may be replaced when dependencies are built.
