file(REMOVE_RECURSE
  "CMakeFiles/mpc_field_test.dir/mpc_field_test.cc.o"
  "CMakeFiles/mpc_field_test.dir/mpc_field_test.cc.o.d"
  "mpc_field_test"
  "mpc_field_test.pdb"
  "mpc_field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
