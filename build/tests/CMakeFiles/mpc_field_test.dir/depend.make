# Empty dependencies file for mpc_field_test.
# This may be replaced when dependencies are built.
