file(REMOVE_RECURSE
  "CMakeFiles/psi_test.dir/psi_test.cc.o"
  "CMakeFiles/psi_test.dir/psi_test.cc.o.d"
  "psi_test"
  "psi_test.pdb"
  "psi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
