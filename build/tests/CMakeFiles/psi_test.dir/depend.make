# Empty dependencies file for psi_test.
# This may be replaced when dependencies are built.
