file(REMOVE_RECURSE
  "CMakeFiles/mpc_engine_extra_test.dir/mpc_engine_extra_test.cc.o"
  "CMakeFiles/mpc_engine_extra_test.dir/mpc_engine_extra_test.cc.o.d"
  "mpc_engine_extra_test"
  "mpc_engine_extra_test.pdb"
  "mpc_engine_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_engine_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
