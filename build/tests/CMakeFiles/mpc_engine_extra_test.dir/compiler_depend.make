# Empty compiler generated dependencies file for mpc_engine_extra_test.
# This may be replaced when dependencies are built.
