file(REMOVE_RECURSE
  "CMakeFiles/hiding_test.dir/hiding_test.cc.o"
  "CMakeFiles/hiding_test.dir/hiding_test.cc.o.d"
  "hiding_test"
  "hiding_test.pdb"
  "hiding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hiding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
