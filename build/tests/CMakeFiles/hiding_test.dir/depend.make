# Empty dependencies file for hiding_test.
# This may be replaced when dependencies are built.
