# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/mpc_field_test[1]_include.cmake")
include("/root/repo/build/tests/mpc_engine_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/pivot_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/malicious_test[1]_include.cmake")
include("/root/repo/build/tests/psi_test[1]_include.cmake")
include("/root/repo/build/tests/logreg_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/secure_gain_test[1]_include.cmake")
include("/root/repo/build/tests/pivot_extra_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/hiding_test[1]_include.cmake")
include("/root/repo/build/tests/mpc_engine_extra_test[1]_include.cmake")
include("/root/repo/build/tests/export_standardize_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_invariants_test[1]_include.cmake")
