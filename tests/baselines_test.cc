#include <gtest/gtest.h>

#include "baselines/npd_dt.h"
#include "baselines/spdz_dt.h"
#include "data/synthetic.h"
#include "pivot/runner.h"
#include "pivot/trainer.h"
#include "tree/cart.h"

namespace pivot {
namespace {

Dataset SmallData(TreeTask task, int n = 50, int d = 6) {
  if (task == TreeTask::kRegression) {
    RegressionSpec spec;
    spec.num_samples = n;
    spec.num_features = d;
    spec.seed = 31;
    return MakeRegression(spec);
  }
  ClassificationSpec spec;
  spec.num_samples = n;
  spec.num_features = d;
  spec.num_classes = 2;
  spec.class_separation = 2.5;
  spec.seed = 29;
  return MakeClassification(spec);
}

FederationConfig MakeConfig(TreeTask task, int m) {
  FederationConfig cfg;
  cfg.num_parties = m;
  cfg.params.tree.task = task;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 2;
  cfg.params.tree.max_splits = 4;
  cfg.params.tree.min_samples_split = 5;
  cfg.params.key_bits = 256;
  return cfg;
}

// Every trainer explores the identical split space, so the NPD-DT model
// must agree with plaintext CART everywhere, and SPDZ-DT / Pivot must
// agree up to fixed-point gain rounding.
TEST(NpdDtTest, MatchesPlainCartExactly) {
  Dataset data = SmallData(TreeTask::kClassification);
  FederationConfig cfg = MakeConfig(TreeTask::kClassification, 3);
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainNpdDt(ctx));
    TreeModel np = TrainCart(data, cfg.params.tree);
    std::vector<std::vector<int>> fmap;
    for (const auto& v : PartitionVertically(data, 3).views) {
      fmap.push_back(v.feature_indices);
    }
    for (size_t i = 0; i < data.num_samples(); ++i) {
      if (tree.EvaluatePlain(data.features[i], fmap) !=
          np.Predict(data.features[i])) {
        return Status::Internal("NPD-DT diverges from CART");
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(NpdDtTest, RegressionTrains) {
  Dataset data = SmallData(TreeTask::kRegression);
  FederationConfig cfg = MakeConfig(TreeTask::kRegression, 2);
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainNpdDt(ctx));
    if (tree.NumInternalNodes() < 1) return Status::Internal("no splits");
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(NpdDtTest, DistributedPredictionWalksTree) {
  Dataset data = SmallData(TreeTask::kClassification);
  FederationConfig cfg = MakeConfig(TreeTask::kClassification, 2);
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainNpdDt(ctx));
    auto part = PartitionVertically(data, 2);
    std::vector<std::vector<int>> fmap;
    for (const auto& v : part.views) fmap.push_back(v.feature_indices);
    for (int i = 0; i < 10; ++i) {
      PIVOT_ASSIGN_OR_RETURN(
          double pred,
          PredictNpdDt(ctx, tree, part.views[ctx.id()].features[i]));
      if (pred != tree.EvaluatePlain(data.features[i], fmap)) {
        return Status::Internal("NPD prediction mismatch");
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(SpdzDtTest, MatchesPivotBasicModel) {
  Dataset data = SmallData(TreeTask::kClassification, 40, 4);
  FederationConfig cfg = MakeConfig(TreeTask::kClassification, 2);
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    PIVOT_ASSIGN_OR_RETURN(PivotTree spdz, TrainSpdzDt(ctx));
    TrainTreeOptions opts;
    PIVOT_ASSIGN_OR_RETURN(PivotTree pivot_tree, TrainPivotTree(ctx, opts));
    std::vector<std::vector<int>> fmap;
    for (const auto& v : PartitionVertically(data, 2).views) {
      fmap.push_back(v.feature_indices);
    }
    int agree = 0;
    for (size_t i = 0; i < data.num_samples(); ++i) {
      agree += spdz.EvaluatePlain(data.features[i], fmap) ==
               pivot_tree.EvaluatePlain(data.features[i], fmap);
    }
    if (agree + 2 < static_cast<int>(data.num_samples())) {
      return Status::Internal("SPDZ-DT and Pivot diverge");
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(SpdzDtTest, RegressionTrains) {
  Dataset data = SmallData(TreeTask::kRegression, 40, 4);
  FederationConfig cfg = MakeConfig(TreeTask::kRegression, 2);
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainSpdzDt(ctx));
    if (tree.nodes.empty()) return Status::Internal("empty tree");
    // Leaf values must be finite, sane label magnitudes.
    for (const PivotNode& node : tree.nodes) {
      if (node.is_leaf && std::abs(node.leaf_value) > 100.0) {
        return Status::Internal("leaf out of range");
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace pivot
