#include <gtest/gtest.h>

#include "common/sha256.h"
#include "crypto/paillier.h"
#include "crypto/paillier_batch.h"
#include "crypto/threshold_paillier.h"
#include "crypto/zkp.h"

namespace pivot {
namespace {

// Shared small key so the suite stays fast; 256-bit keys are plenty for
// correctness testing (the protocols enforce larger keys at runtime).
class PaillierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(42);
    keys_ = new PaillierKeyPair(GeneratePaillierKeyPair(256, *rng_));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
    keys_ = nullptr;
    rng_ = nullptr;
  }

  static Rng* rng_;
  static PaillierKeyPair* keys_;
};

Rng* PaillierTest::rng_ = nullptr;
PaillierKeyPair* PaillierTest::keys_ = nullptr;

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (int64_t v : {0LL, 1LL, 2LL, 1234567LL}) {
    Ciphertext c = keys_->pk.Encrypt(BigInt(v), *rng_);
    EXPECT_EQ(keys_->sk.Decrypt(c).value(), BigInt(v));
  }
}

TEST_F(PaillierTest, EncryptLargePlaintext) {
  BigInt m = keys_->pk.n() - BigInt(1);
  Ciphertext c = keys_->pk.Encrypt(m, *rng_);
  EXPECT_EQ(keys_->sk.Decrypt(c).value(), m);
}

TEST_F(PaillierTest, EncryptionIsProbabilistic) {
  Ciphertext c1 = keys_->pk.Encrypt(BigInt(7), *rng_);
  Ciphertext c2 = keys_->pk.Encrypt(BigInt(7), *rng_);
  EXPECT_NE(c1.value, c2.value);
  EXPECT_EQ(keys_->sk.Decrypt(c1).value(), keys_->sk.Decrypt(c2).value());
}

TEST_F(PaillierTest, HomomorphicAdd) {
  Ciphertext a = keys_->pk.Encrypt(BigInt(15), *rng_);
  Ciphertext b = keys_->pk.Encrypt(BigInt(27), *rng_);
  EXPECT_EQ(keys_->sk.Decrypt(keys_->pk.Add(a, b)).value(), BigInt(42));
}

TEST_F(PaillierTest, HomomorphicAddWrapsModN) {
  BigInt m = keys_->pk.n() - BigInt(1);
  Ciphertext a = keys_->pk.Encrypt(m, *rng_);
  Ciphertext b = keys_->pk.Encrypt(BigInt(2), *rng_);
  EXPECT_EQ(keys_->sk.Decrypt(keys_->pk.Add(a, b)).value(), BigInt(1));
}

TEST_F(PaillierTest, ScalarMul) {
  Ciphertext c = keys_->pk.Encrypt(BigInt(9), *rng_);
  EXPECT_EQ(keys_->sk.Decrypt(keys_->pk.ScalarMul(BigInt(5), c)).value(),
            BigInt(45));
  EXPECT_EQ(keys_->sk.Decrypt(keys_->pk.ScalarMul(BigInt(0), c)).value(),
            BigInt(0));
  EXPECT_EQ(keys_->sk.Decrypt(keys_->pk.ScalarMul(BigInt(1), c)).value(),
            BigInt(9));
}

TEST_F(PaillierTest, ScalarMulByNMinus1ActsAsNegation) {
  // The protocols implement homomorphic subtraction by multiplying with a
  // scalar congruent to -1 modulo the share field; at the Paillier layer,
  // multiplying by n-1 negates mod n.
  Ciphertext c = keys_->pk.Encrypt(BigInt(5), *rng_);
  Ciphertext neg = keys_->pk.ScalarMul(keys_->pk.n() - BigInt(1), c);
  EXPECT_EQ(keys_->sk.Decrypt(neg).value(), keys_->pk.n() - BigInt(5));
}

TEST_F(PaillierTest, AddPlain) {
  Ciphertext c = keys_->pk.Encrypt(BigInt(10), *rng_);
  EXPECT_EQ(keys_->sk.Decrypt(keys_->pk.AddPlain(c, BigInt(32))).value(),
            BigInt(42));
}

TEST_F(PaillierTest, DotProduct) {
  // v = (1, 0, 3), u = (10, 20, 30) -> 100
  std::vector<Ciphertext> cts;
  for (int64_t u : {10, 20, 30}) cts.push_back(keys_->pk.Encrypt(BigInt(u), *rng_));
  std::vector<BigInt> v = {BigInt(1), BigInt(0), BigInt(3)};
  EXPECT_EQ(keys_->sk.Decrypt(keys_->pk.DotProduct(v, cts)).value(),
            BigInt(100));
}

TEST_F(PaillierTest, DotProductEmpty) {
  EXPECT_EQ(keys_->sk.Decrypt(keys_->pk.DotProduct({}, {})).value(), BigInt(0));
}

TEST_F(PaillierTest, RerandomizePreservesPlaintext) {
  Ciphertext c = keys_->pk.Encrypt(BigInt(77), *rng_);
  Ciphertext r = keys_->pk.Rerandomize(c, *rng_);
  EXPECT_NE(c.value, r.value);
  EXPECT_EQ(keys_->sk.Decrypt(r).value(), BigInt(77));
}

TEST_F(PaillierTest, IndicatorDotProductMatchesCount) {
  // The core Pivot statistic: dot product of a 0/1 indicator vector with an
  // encrypted 0/1 mask equals the number of overlapping ones.
  std::vector<Ciphertext> mask;
  std::vector<int> alpha = {1, 1, 0, 1, 0, 1};
  for (int a : alpha) mask.push_back(keys_->pk.Encrypt(BigInt(a), *rng_));
  std::vector<BigInt> indicator = {BigInt(1), BigInt(0), BigInt(1),
                                   BigInt(1), BigInt(1), BigInt(0)};
  // Overlap: positions 0 and 3 -> 2.
  EXPECT_EQ(keys_->sk.Decrypt(keys_->pk.DotProduct(indicator, mask)).value(),
            BigInt(2));
}

TEST(PaillierLTest, RejectsNonDivisible) {
  EXPECT_FALSE(PaillierL(BigInt(8), BigInt(3)).ok());
  EXPECT_EQ(PaillierL(BigInt(7), BigInt(3)).value(), BigInt(2));
}

class ThresholdPaillierTest : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdPaillierTest, JointDecryptRoundTrip) {
  const int parties = GetParam();
  Rng rng(100 + parties);
  ThresholdPaillier keys = GenerateThresholdPaillier(256, parties, rng);
  for (int64_t v : {0LL, 1LL, 99999LL}) {
    Ciphertext c = keys.pk.Encrypt(BigInt(v), rng);
    EXPECT_EQ(JointDecrypt(keys, c).value(), BigInt(v));
  }
}

TEST_P(ThresholdPaillierTest, HomomorphismSurvivesThresholdDecryption) {
  const int parties = GetParam();
  Rng rng(200 + parties);
  ThresholdPaillier keys = GenerateThresholdPaillier(256, parties, rng);
  Ciphertext a = keys.pk.Encrypt(BigInt(30), rng);
  Ciphertext b = keys.pk.Encrypt(BigInt(12), rng);
  EXPECT_EQ(JointDecrypt(keys, keys.pk.Add(a, b)).value(), BigInt(42));
}

INSTANTIATE_TEST_SUITE_P(Parties, ThresholdPaillierTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(ThresholdPaillierTestExtra, MissingPartyFailsDecryption) {
  Rng rng(77);
  ThresholdPaillier keys = GenerateThresholdPaillier(256, 3, rng);
  Ciphertext c = keys.pk.Encrypt(BigInt(5), rng);
  std::vector<PartialDecryption> parts = {
      PartialDecrypt(keys.pk, keys.partial_keys[0], c),
      PartialDecrypt(keys.pk, keys.partial_keys[1], c)};
  EXPECT_FALSE(CombinePartialDecryptions(keys.pk, parts, 3).ok());
}

TEST(ThresholdPaillierTestExtra, SubsetOfPartialsYieldsGarbageOrError) {
  // With only m-1 of m partials (padded with a bogus one), the combined
  // value must not decrypt to the true plaintext.
  Rng rng(78);
  ThresholdPaillier keys = GenerateThresholdPaillier(256, 3, rng);
  Ciphertext c = keys.pk.Encrypt(BigInt(5), rng);
  std::vector<PartialDecryption> parts = {
      PartialDecrypt(keys.pk, keys.partial_keys[0], c),
      PartialDecrypt(keys.pk, keys.partial_keys[1], c),
      PartialDecryption{2, BigInt(1)}};  // party 2 replaced by identity
  Result<BigInt> out = CombinePartialDecryptions(keys.pk, parts, 3);
  if (out.ok()) {
    EXPECT_NE(out.value(), BigInt(5));
  }
}

TEST(ThresholdPaillierTestExtra, SharesSumToDecryptionExponent) {
  Rng rng(79);
  ThresholdPaillier keys = GenerateThresholdPaillier(128, 4, rng);
  // Indirect check: decryption works for every permutation order of
  // combination (combination is order-independent).
  Ciphertext c = keys.pk.Encrypt(BigInt(1234), rng);
  std::vector<PartialDecryption> parts;
  for (int i = 3; i >= 0; --i) {
    parts.push_back(PartialDecrypt(keys.pk, keys.partial_keys[i], c));
  }
  EXPECT_EQ(CombinePartialDecryptions(keys.pk, parts, 4).value(), BigInt(1234));
}

// --------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 test vectors)
// --------------------------------------------------------------------------

TEST(Sha256Test, EmptyString) {
  Sha256 h;
  EXPECT_EQ(HexDigest(h.Finish()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  Sha256 h;
  h.Update(std::string("abc"));
  EXPECT_EQ(HexDigest(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  Sha256 h;
  h.Update(std::string("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  EXPECT_EQ(HexDigest(h.Finish()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HexDigest(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<uint8_t>(i * 7));
  Sha256 h;
  h.Update(data.data(), 100);
  h.Update(data.data() + 100, 200);
  EXPECT_EQ(h.Finish(), Sha256::Hash(data));
}

// --------------------------------------------------------------------------
// Zero-knowledge proofs
// --------------------------------------------------------------------------

class ZkpTest : public PaillierTest {};

TEST_F(ZkpTest, PopkAcceptsHonestProof) {
  BigInt m(123456);
  BigInt r = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext c = keys_->pk.EncryptWithRandomness(m, r);
  PopkProof proof = ProvePlaintextKnowledge(keys_->pk, c, m, r, *rng_);
  EXPECT_TRUE(VerifyPlaintextKnowledge(keys_->pk, c, proof).ok());
}

TEST_F(ZkpTest, PopkRejectsWrongCiphertext) {
  BigInt m(5);
  BigInt r = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext c = keys_->pk.EncryptWithRandomness(m, r);
  PopkProof proof = ProvePlaintextKnowledge(keys_->pk, c, m, r, *rng_);
  Ciphertext other = keys_->pk.Encrypt(BigInt(6), *rng_);
  EXPECT_FALSE(VerifyPlaintextKnowledge(keys_->pk, other, proof).ok());
}

TEST_F(ZkpTest, PopkRejectsTamperedResponse) {
  BigInt m(5);
  BigInt r = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext c = keys_->pk.EncryptWithRandomness(m, r);
  PopkProof proof = ProvePlaintextKnowledge(keys_->pk, c, m, r, *rng_);
  proof.z = proof.z + BigInt(1);
  EXPECT_FALSE(VerifyPlaintextKnowledge(keys_->pk, c, proof).ok());
}

TEST_F(ZkpTest, PopkRejectsNegativeResponse) {
  // A malformed proof with z < 0 must be rejected before any modular
  // arithmetic (negative exponents would be undefined behavior upstream).
  BigInt m(5);
  BigInt r = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext c = keys_->pk.EncryptWithRandomness(m, r);
  PopkProof proof = ProvePlaintextKnowledge(keys_->pk, c, m, r, *rng_);
  proof.z = BigInt(0) - BigInt(1);
  Status s = VerifyPlaintextKnowledge(keys_->pk, c, proof);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("negative response"), std::string::npos);
}

TEST_F(ZkpTest, PopkRejectsReplayedProofOnFreshCiphertext) {
  // Fiat-Shamir binds the challenge to the statement: a proof replayed
  // against a different encryption of the SAME plaintext must fail,
  // because the recomputed challenge no longer matches the response.
  BigInt m(41);
  BigInt r1 = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext c1 = keys_->pk.EncryptWithRandomness(m, r1);
  PopkProof proof = ProvePlaintextKnowledge(keys_->pk, c1, m, r1, *rng_);
  ASSERT_TRUE(VerifyPlaintextKnowledge(keys_->pk, c1, proof).ok());
  Ciphertext c2 = keys_->pk.Encrypt(m, *rng_);
  EXPECT_FALSE(VerifyPlaintextKnowledge(keys_->pk, c2, proof).ok());
}

TEST_F(ZkpTest, PopkRejectsTamperedCommitment) {
  // Tampering with the commitment changes the recomputed challenge e,
  // so the verification equation fails (challenge-binding).
  BigInt m(9);
  BigInt r = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext c = keys_->pk.EncryptWithRandomness(m, r);
  PopkProof proof = ProvePlaintextKnowledge(keys_->pk, c, m, r, *rng_);
  proof.commitment = proof.commitment + BigInt(1);
  EXPECT_FALSE(VerifyPlaintextKnowledge(keys_->pk, c, proof).ok());
}

TEST_F(ZkpTest, PopcmAcceptsHonestProof) {
  // Prover: knows a committed in ca, computes c_out = cb^a.
  BigInt a(17);
  BigInt ra = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext ca = keys_->pk.EncryptWithRandomness(a, ra);
  Ciphertext cb = keys_->pk.Encrypt(BigInt(100), *rng_);
  Ciphertext c_out = keys_->pk.ScalarMul(a, cb);
  PopcmProof proof =
      ProvePlainCipherMul(keys_->pk, ca, ra, a, cb, BigInt(1), *rng_);
  EXPECT_TRUE(VerifyPlainCipherMul(keys_->pk, ca, cb, c_out, proof).ok());
  // Sanity: the relation is the paper's element-wise homomorphic multiply.
  EXPECT_EQ(keys_->sk.Decrypt(c_out).value(), BigInt(1700));
}

TEST_F(ZkpTest, PopcmRejectsWrongProduct) {
  BigInt a(17);
  BigInt ra = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext ca = keys_->pk.EncryptWithRandomness(a, ra);
  Ciphertext cb = keys_->pk.Encrypt(BigInt(100), *rng_);
  PopcmProof proof =
      ProvePlainCipherMul(keys_->pk, ca, ra, a, cb, BigInt(1), *rng_);
  // Claim a different product: cb^(a+1).
  Ciphertext wrong = keys_->pk.ScalarMul(a + BigInt(1), cb);
  EXPECT_FALSE(VerifyPlainCipherMul(keys_->pk, ca, cb, wrong, proof).ok());
}

TEST_F(ZkpTest, PopcmRejectsSwappedCommitment) {
  BigInt a(3);
  BigInt ra = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext ca = keys_->pk.EncryptWithRandomness(a, ra);
  Ciphertext cb = keys_->pk.Encrypt(BigInt(10), *rng_);
  Ciphertext c_out = keys_->pk.ScalarMul(a, cb);
  PopcmProof proof =
      ProvePlainCipherMul(keys_->pk, ca, ra, a, cb, BigInt(1), *rng_);
  // Verifier pairs the proof with a commitment to a different value.
  Ciphertext ca2 = keys_->pk.Encrypt(BigInt(4), *rng_);
  EXPECT_FALSE(VerifyPlainCipherMul(keys_->pk, ca2, cb, c_out, proof).ok());
}

TEST_F(ZkpTest, PohdpAcceptsHonestProof) {
  // The POHDP scenario from the paper: a client proves its encrypted split
  // statistic equals the dot product of its (committed) indicator vector
  // with the broadcast encrypted mask.
  std::vector<BigInt> values = {BigInt(1), BigInt(0), BigInt(1), BigInt(1)};
  std::vector<BigInt> rand;
  std::vector<Ciphertext> commitments;
  for (const BigInt& v : values) {
    rand.push_back(keys_->pk.SampleUnit(*rng_).value());
    commitments.push_back(keys_->pk.EncryptWithRandomness(v, rand.back()));
  }
  std::vector<Ciphertext> mask;
  for (int64_t a : {1, 1, 0, 1}) mask.push_back(keys_->pk.Encrypt(BigInt(a), *rng_));

  // c_out = prod mask_j ^ v_j  (the homomorphic dot product).
  Ciphertext c_out = keys_->pk.One();
  for (size_t j = 0; j < values.size(); ++j) {
    c_out = Ciphertext{keys_->pk.MulModN2(
        c_out.value, keys_->pk.PowModN2(mask[j].value, values[j]))};
  }

  PohdpProof proof = ProveHomomorphicDotProduct(
      keys_->pk, commitments, rand, values, mask, BigInt(1), *rng_);
  EXPECT_TRUE(VerifyHomomorphicDotProduct(keys_->pk, commitments, mask, c_out,
                                          proof)
                  .ok());
  EXPECT_EQ(keys_->sk.Decrypt(c_out).value(), BigInt(2));
}

TEST_F(ZkpTest, PohdpRejectsInflatedStatistic) {
  std::vector<BigInt> values = {BigInt(1), BigInt(0)};
  std::vector<BigInt> rand;
  std::vector<Ciphertext> commitments;
  for (const BigInt& v : values) {
    rand.push_back(keys_->pk.SampleUnit(*rng_).value());
    commitments.push_back(keys_->pk.EncryptWithRandomness(v, rand.back()));
  }
  std::vector<Ciphertext> mask = {keys_->pk.Encrypt(BigInt(1), *rng_),
                                  keys_->pk.Encrypt(BigInt(1), *rng_)};
  PohdpProof proof = ProveHomomorphicDotProduct(
      keys_->pk, commitments, rand, values, mask, BigInt(1), *rng_);
  // A malicious client claims a larger count than its data supports.
  Ciphertext inflated = keys_->pk.Encrypt(BigInt(2), *rng_);
  EXPECT_FALSE(VerifyHomomorphicDotProduct(keys_->pk, commitments, mask,
                                           inflated, proof)
                   .ok());
}

TEST_F(ZkpTest, PopcmRejectsTamperedWitnesses) {
  BigInt a(6);
  BigInt ra = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext ca = keys_->pk.EncryptWithRandomness(a, ra);
  Ciphertext cb = keys_->pk.Encrypt(BigInt(11), *rng_);
  Ciphertext c_out = keys_->pk.ScalarMul(a, cb);
  PopcmProof proof =
      ProvePlainCipherMul(keys_->pk, ca, ra, a, cb, BigInt(1), *rng_);
  ASSERT_TRUE(VerifyPlainCipherMul(keys_->pk, ca, cb, c_out, proof).ok());
  // Check 1 (ciphertext relation) and check 2 (commitment relation) must
  // each catch a tampered witness independently.
  PopcmProof bad1 = proof;
  bad1.w2 = bad1.w2 + BigInt(1);
  EXPECT_FALSE(VerifyPlainCipherMul(keys_->pk, ca, cb, c_out, bad1).ok());
  PopcmProof bad2 = proof;
  bad2.w1 = bad2.w1 + BigInt(1);
  EXPECT_FALSE(VerifyPlainCipherMul(keys_->pk, ca, cb, c_out, bad2).ok());
}

TEST_F(ZkpTest, PopcmRejectsNegativeResponse) {
  BigInt a(3);
  BigInt ra = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext ca = keys_->pk.EncryptWithRandomness(a, ra);
  Ciphertext cb = keys_->pk.Encrypt(BigInt(2), *rng_);
  Ciphertext c_out = keys_->pk.ScalarMul(a, cb);
  PopcmProof proof =
      ProvePlainCipherMul(keys_->pk, ca, ra, a, cb, BigInt(1), *rng_);
  proof.z = BigInt(0) - BigInt(5);
  Status s = VerifyPlainCipherMul(keys_->pk, ca, cb, c_out, proof);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("negative response"), std::string::npos);
}

TEST_F(ZkpTest, PohdpRejectsNegativeResponse) {
  std::vector<BigInt> values = {BigInt(1)};
  std::vector<BigInt> rand = {keys_->pk.SampleUnit(*rng_).value()};
  std::vector<Ciphertext> commitments = {
      keys_->pk.EncryptWithRandomness(values[0], rand[0])};
  std::vector<Ciphertext> mask = {keys_->pk.Encrypt(BigInt(1), *rng_)};
  Ciphertext c_out = Ciphertext{
      keys_->pk.PowModN2(mask[0].value, values[0])};
  PohdpProof proof = ProveHomomorphicDotProduct(
      keys_->pk, commitments, rand, values, mask, BigInt(1), *rng_);
  ASSERT_TRUE(VerifyHomomorphicDotProduct(keys_->pk, commitments, mask,
                                          c_out, proof)
                  .ok());
  proof.z[0] = BigInt(0) - BigInt(1);
  Status s = VerifyHomomorphicDotProduct(keys_->pk, commitments, mask, c_out,
                                         proof);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("negative response"), std::string::npos);
}

TEST_F(ZkpTest, PohdpRejectsSizeMismatch) {
  PohdpProof proof;
  proof.commitment_a = BigInt(1);
  proof.w2 = BigInt(1);
  EXPECT_FALSE(VerifyHomomorphicDotProduct(
                   keys_->pk, {keys_->pk.Encrypt(BigInt(1), *rng_)}, {},
                   keys_->pk.One(), proof)
                   .ok());
}


// ---------------------------------------------------------------------------
// Batched kernels (crypto/paillier_batch.h): every kernel must be
// bit-identical to its scalar counterpart, for every thread count
// including the degenerate empty and size-1 batches.

class PaillierBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(4242);
    keys_ = new ThresholdPaillier(GenerateThresholdPaillier(256, 3, rng));
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }

  static std::vector<BigInt> SomePlains(size_t count, uint64_t seed) {
    Rng rng(seed);
    std::vector<BigInt> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      out.push_back(BigInt(static_cast<int64_t>(rng.NextU64() % 1000003ULL)));
    }
    return out;
  }

  static std::vector<Ciphertext> SomeCts(const std::vector<BigInt>& plains,
                                         uint64_t seed) {
    Rng rng(seed);
    std::vector<Ciphertext> out;
    out.reserve(plains.size());
    for (const BigInt& m : plains) out.push_back(keys_->pk.Encrypt(m, rng));
    return out;
  }

  static ThresholdPaillier* keys_;
};

ThresholdPaillier* PaillierBatchTest::keys_ = nullptr;

constexpr int kThreadSweep[] = {1, 2, 8};
constexpr size_t kSizeSweep[] = {0, 1, 13};

TEST_F(PaillierBatchTest, EncryptBatchMatchesDerivedScalarPath) {
  // The batch draws one u64 and derives per-item streams; replicate that
  // by hand and check bit-equality for every thread count and size.
  for (size_t count : kSizeSweep) {
    const std::vector<BigInt> plains = SomePlains(count, 7 + count);
    Rng scalar_rng(99);
    std::vector<Ciphertext> expect;
    if (count > 0) {
      const uint64_t base = scalar_rng.NextU64();
      for (size_t i = 0; i < count; ++i) {
        Rng item(DeriveStreamSeed(base, i));
        BigInt r = keys_->pk.SampleUnit(item).value();
        expect.push_back(keys_->pk.EncryptWithRandomness(plains[i], r));
      }
    }
    for (int threads : kThreadSweep) {
      Rng rng(99);
      Result<std::vector<Ciphertext>> got =
          EncryptBatch(keys_->pk, plains, rng, threads);
      ASSERT_TRUE(got.ok()) << "threads=" << threads << " count=" << count;
      ASSERT_EQ(got.value().size(), count);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(got.value()[i].value, expect[i].value)
            << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST_F(PaillierBatchTest, EncryptBatchFromPoolMatchesComputePair) {
  const std::vector<BigInt> plains = SomePlains(13, 11);
  // Expected: pair i from a fresh pool with the same seed, via the plain
  // scalar encryption routine.
  EncRandomnessPool ref(keys_->pk, 555);
  std::vector<Ciphertext> expect;
  for (size_t i = 0; i < plains.size(); ++i) {
    EncRandomnessPool::Pair pair = ref.ComputePair(i);
    expect.push_back(keys_->pk.EncryptWithRandomness(plains[i], pair.r));
  }
  for (int threads : kThreadSweep) {
    EncRandomnessPool pool(keys_->pk, 555);
    if (threads > 1) {
      // Exercise the prefill path too: precompute ahead, then drain.
      pool.PrefillAsync(ThreadPool::Global(), plains.size());
    }
    Result<std::vector<Ciphertext>> got =
        EncryptBatch(keys_->pk, plains, pool, threads);
    ASSERT_TRUE(got.ok()) << "threads=" << threads;
    ASSERT_EQ(got.value().size(), plains.size());
    for (size_t i = 0; i < plains.size(); ++i) {
      EXPECT_EQ(got.value()[i].value, expect[i].value)
          << "threads=" << threads << " i=" << i;
    }
    EXPECT_EQ(pool.next_index(), plains.size());
  }
}

TEST_F(PaillierBatchTest, EncRandomnessPoolDrainMatchesComputePair) {
  EncRandomnessPool pool(keys_->pk, 777);
  EncRandomnessPool ref(keys_->pk, 777);
  // Mixed drain: part cold (misses), part prefetched (hits); the pairs
  // must be identical either way, and the cursor must advance linearly.
  std::vector<EncRandomnessPool::Pair> first = pool.Drain(3);
  pool.PrefillAsync(ThreadPool::Global(), 8);
  std::vector<EncRandomnessPool::Pair> second = pool.Drain(5);
  ASSERT_EQ(first.size(), 3u);
  ASSERT_EQ(second.size(), 5u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(first[i].r, ref.ComputePair(i).r);
    EXPECT_EQ(first[i].rn, ref.ComputePair(i).rn);
  }
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(second[i].r, ref.ComputePair(3 + i).r);
    EXPECT_EQ(second[i].rn, ref.ComputePair(3 + i).rn);
  }
  EXPECT_EQ(pool.next_index(), 8u);
  // Rewind (checkpoint restore) replays the same stream.
  pool.SetNextIndex(3);
  std::vector<EncRandomnessPool::Pair> replay = pool.Drain(5);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(replay[i].r, second[i].r);
    EXPECT_EQ(replay[i].rn, second[i].rn);
  }
}

TEST_F(PaillierBatchTest, RerandomizeBatchPreservesPlaintexts) {
  const std::vector<BigInt> plains = SomePlains(9, 21);
  const std::vector<Ciphertext> cts = SomeCts(plains, 22);
  for (int threads : kThreadSweep) {
    Rng rng(1234);
    Result<std::vector<Ciphertext>> out =
        RerandomizeBatch(keys_->pk, cts, rng, threads);
    ASSERT_TRUE(out.ok());
    EncRandomnessPool pool(keys_->pk, 888);
    Result<std::vector<Ciphertext>> out2 =
        RerandomizeBatch(keys_->pk, cts, pool, threads);
    ASSERT_TRUE(out2.ok());
    for (size_t i = 0; i < cts.size(); ++i) {
      EXPECT_NE(out.value()[i].value, cts[i].value);
      EXPECT_NE(out2.value()[i].value, cts[i].value);
      EXPECT_EQ(JointDecrypt(*keys_, out.value()[i]).value(), plains[i]);
      EXPECT_EQ(JointDecrypt(*keys_, out2.value()[i]).value(), plains[i]);
    }
  }
}

TEST_F(PaillierBatchTest, ScalarMulBatchMatchesScalarOp) {
  for (size_t count : kSizeSweep) {
    const std::vector<BigInt> plains = SomePlains(count, 31);
    const std::vector<Ciphertext> cts = SomeCts(plains, 32);
    std::vector<BigInt> scalars = SomePlains(count, 33);
    if (count > 1) {
      scalars[0] = BigInt(0);  // cover the zero / one fast paths
      scalars[1] = BigInt(1);
    }
    std::vector<Ciphertext> expect;
    for (size_t i = 0; i < count; ++i) {
      expect.push_back(keys_->pk.ScalarMul(scalars[i], cts[i]));
    }
    for (int threads : kThreadSweep) {
      Result<std::vector<Ciphertext>> got =
          ScalarMulBatch(keys_->pk, scalars, cts, threads);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got.value().size(), count);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(got.value()[i].value, expect[i].value)
            << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST_F(PaillierBatchTest, ScalarMulBatchRejectsSizeMismatch) {
  const std::vector<Ciphertext> cts = SomeCts(SomePlains(2, 41), 42);
  EXPECT_FALSE(ScalarMulBatch(keys_->pk, {BigInt(1)}, cts, 1).ok());
}

TEST_F(PaillierBatchTest, PreparedDotProductMatchesPlainDotProduct) {
  const std::vector<BigInt> plains = SomePlains(11, 51);
  const std::vector<Ciphertext> cts = SomeCts(plains, 52);
  std::vector<BigInt> weights = SomePlains(11, 53);
  weights[2] = BigInt(0);
  weights[5] = BigInt(1);
  const Ciphertext expect = keys_->pk.DotProduct(weights, cts);
  for (bool tables : {false, true}) {
    PreparedCiphertexts prep(keys_->pk, cts, tables);
    EXPECT_EQ(prep.DotProduct(weights).value, expect.value)
        << "tables=" << tables;
  }
  // Empty vector: both paths give an encryption-of-zero identity.
  PreparedCiphertexts empty(keys_->pk, {});
  EXPECT_EQ(empty.DotProduct({}).value, keys_->pk.DotProduct({}, {}).value);
}

TEST_F(PaillierBatchTest, PreparedDotIndicatorMatchesBigIntDotProduct) {
  const std::vector<BigInt> plains = SomePlains(10, 61);
  const std::vector<Ciphertext> cts = SomeCts(plains, 62);
  std::vector<uint8_t> ind = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  std::vector<BigInt> ind_big, comp_big;
  for (uint8_t b : ind) {
    ind_big.push_back(BigInt(b));
    comp_big.push_back(BigInt(1 - b));
  }
  for (bool tables : {false, true}) {
    PreparedCiphertexts prep(keys_->pk, cts, tables);
    EXPECT_EQ(prep.DotIndicator(ind, false).value,
              keys_->pk.DotProduct(ind_big, cts).value);
    EXPECT_EQ(prep.DotIndicator(ind, true).value,
              keys_->pk.DotProduct(comp_big, cts).value);
  }
}

TEST_F(PaillierBatchTest, PreparedScalarMulMatchesScalarOp) {
  const std::vector<BigInt> plains = SomePlains(4, 71);
  const std::vector<Ciphertext> cts = SomeCts(plains, 72);
  for (bool tables : {false, true}) {
    PreparedCiphertexts prep(keys_->pk, cts, tables);
    for (const BigInt& k : {BigInt(0), BigInt(1), BigInt(12345)}) {
      for (size_t i = 0; i < cts.size(); ++i) {
        EXPECT_EQ(prep.ScalarMul(i, k).value,
                  keys_->pk.ScalarMul(k, cts[i]).value)
            << "tables=" << tables << " i=" << i;
      }
    }
  }
}

TEST_F(PaillierBatchTest, ThresholdBatchMatchesScalarPipeline) {
  for (size_t count : kSizeSweep) {
    const std::vector<BigInt> plains = SomePlains(count, 81);
    const std::vector<Ciphertext> cts = SomeCts(plains, 82);
    for (int threads : kThreadSweep) {
      std::vector<std::vector<BigInt>> partials;
      for (const PartialKey& key : keys_->partial_keys) {
        Result<std::vector<BigInt>> part =
            PartialDecryptBatch(keys_->pk, key, cts, threads);
        ASSERT_TRUE(part.ok());
        ASSERT_EQ(part.value().size(), count);
        for (size_t i = 0; i < count; ++i) {
          EXPECT_EQ(part.value()[i],
                    PartialDecrypt(keys_->pk, key, cts[i]).value);
        }
        partials.push_back(std::move(part).value());
      }
      Result<std::vector<BigInt>> combined = CombinePartialDecryptionsBatch(
          keys_->pk, partials, static_cast<int>(keys_->partial_keys.size()),
          threads);
      ASSERT_TRUE(combined.ok()) << "threads=" << threads;
      ASSERT_EQ(combined.value().size(), count);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(combined.value()[i], plains[i])
            << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST_F(PaillierBatchTest, CombineBatchRejectsBadShapes) {
  const std::vector<Ciphertext> cts = SomeCts(SomePlains(2, 91), 92);
  std::vector<std::vector<BigInt>> partials;
  for (const PartialKey& key : keys_->partial_keys) {
    partials.push_back(PartialDecryptBatch(keys_->pk, key, cts, 1).value());
  }
  // Missing a party.
  std::vector<std::vector<BigInt>> missing(partials.begin(),
                                           partials.end() - 1);
  EXPECT_FALSE(CombinePartialDecryptionsBatch(keys_->pk, missing, 3, 1).ok());
  // Ragged inner sizes.
  std::vector<std::vector<BigInt>> ragged = partials;
  ragged[1].pop_back();
  EXPECT_FALSE(CombinePartialDecryptionsBatch(keys_->pk, ragged, 3, 1).ok());
}

TEST_F(PaillierBatchTest, DecryptBatchMatchesScalarDecrypt) {
  Rng rng(4711);
  PaillierKeyPair pair = GeneratePaillierKeyPair(256, rng);
  for (size_t count : kSizeSweep) {
    std::vector<BigInt> plains = SomePlains(count, 103);
    std::vector<Ciphertext> cts;
    for (const BigInt& m : plains) cts.push_back(pair.pk.Encrypt(m, rng));
    for (int threads : kThreadSweep) {
      Result<std::vector<BigInt>> got = DecryptBatch(pair.sk, cts, threads);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got.value().size(), count);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(got.value()[i], plains[i]);
      }
    }
  }
}

TEST_F(PaillierBatchTest, SumCiphertextsMatchesAddFold) {
  for (size_t count : kSizeSweep) {
    const std::vector<BigInt> plains = SomePlains(count, 101);
    const std::vector<Ciphertext> cts = SomeCts(plains, 102);
    Ciphertext expect = keys_->pk.One();
    for (const Ciphertext& c : cts) expect = keys_->pk.Add(expect, c);
    EXPECT_EQ(SumCiphertexts(keys_->pk, cts).value, expect.value)
        << "count=" << count;
  }
}

}  // namespace
}  // namespace pivot
