#include "pivot/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/synthetic.h"
#include "tree/cart.h"

namespace pivot {
namespace {

TreeModel MakePlainTree() {
  ClassificationSpec spec;
  spec.num_samples = 150;
  spec.num_features = 6;
  Dataset data = MakeClassification(spec);
  TreeParams params;
  params.num_classes = spec.num_classes;
  return TrainCart(data, params);
}

PivotTree MakePivotTreeFixture(Protocol protocol) {
  PivotTree tree;
  tree.protocol = protocol;
  tree.task = TreeTask::kClassification;
  tree.num_classes = 3;
  PivotNode root;
  root.owner = 1;
  root.feature_local = 2;
  root.threshold = protocol == Protocol::kBasic ? 3.25 : 0.0;
  root.threshold_share = protocol == Protocol::kEnhanced ? 12345 : 0;
  root.left = 1;
  root.right = 2;
  tree.nodes.push_back(root);
  for (int leaf = 0; leaf < 2; ++leaf) {
    PivotNode n;
    n.is_leaf = true;
    n.leaf_value = leaf;
    n.leaf_share = protocol == Protocol::kEnhanced ? 777u + leaf : 0;
    tree.nodes.push_back(n);
  }
  return tree;
}

TEST(SerializeTest, TreeModelRoundTrip) {
  TreeModel model = MakePlainTree();
  Bytes data = SerializeTreeModel(model);
  Result<TreeModel> back = DeserializeTreeModel(data);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().nodes().size(), model.nodes().size());
  // Identical predictions on probe rows.
  ClassificationSpec spec;
  spec.num_samples = 30;
  spec.num_features = 6;
  Dataset probe = MakeClassification(spec);
  for (const auto& row : probe.features) {
    EXPECT_DOUBLE_EQ(back.value().Predict(row), model.Predict(row));
  }
}

TEST(SerializeTest, PivotTreeBasicRoundTrip) {
  PivotTree tree = MakePivotTreeFixture(Protocol::kBasic);
  Result<PivotTree> back = DeserializePivotTree(SerializePivotTree(tree));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().protocol, Protocol::kBasic);
  EXPECT_EQ(back.value().num_classes, 3);
  ASSERT_EQ(back.value().nodes.size(), 3u);
  EXPECT_DOUBLE_EQ(back.value().nodes[0].threshold, 3.25);
  EXPECT_EQ(back.value().nodes[0].owner, 1);
  EXPECT_TRUE(back.value().nodes[1].is_leaf);
}

TEST(SerializeTest, PivotTreeEnhancedKeepsShares) {
  PivotTree tree = MakePivotTreeFixture(Protocol::kEnhanced);
  Result<PivotTree> back = DeserializePivotTree(SerializePivotTree(tree));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().protocol, Protocol::kEnhanced);
  EXPECT_TRUE(back.value().nodes[0].threshold_share == 12345u);
  EXPECT_TRUE(back.value().nodes[1].leaf_share == 777u);
  EXPECT_TRUE(back.value().nodes[2].leaf_share == 778u);
}

TEST(SerializeTest, EnsembleRoundTrip) {
  PivotEnsemble model;
  model.task = TreeTask::kRegression;
  model.num_classes = 1;
  model.learning_rate = 0.25;
  model.forests.resize(2);
  model.forests[0].push_back(MakePivotTreeFixture(Protocol::kBasic));
  model.forests[1].push_back(MakePivotTreeFixture(Protocol::kBasic));
  model.forests[1].push_back(MakePivotTreeFixture(Protocol::kBasic));
  Result<PivotEnsemble> back =
      DeserializePivotEnsemble(SerializePivotEnsemble(model));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().forests.size(), 2u);
  EXPECT_EQ(back.value().forests[1].size(), 2u);
  EXPECT_DOUBLE_EQ(back.value().learning_rate, 0.25);
}

TEST(SerializeTest, RejectsWrongMagicAndTruncation) {
  Bytes garbage = {1, 2, 3, 4, 5};
  EXPECT_FALSE(DeserializeTreeModel(garbage).ok());
  EXPECT_FALSE(DeserializePivotTree(garbage).ok());
  EXPECT_FALSE(DeserializePivotEnsemble(garbage).ok());
  Bytes tree_bytes = SerializePivotTree(MakePivotTreeFixture(Protocol::kBasic));
  tree_bytes.resize(tree_bytes.size() / 2);
  EXPECT_FALSE(DeserializePivotTree(tree_bytes).ok());
}

TEST(SerializeTest, RejectsCorruptChildIndices) {
  PivotTree tree = MakePivotTreeFixture(Protocol::kBasic);
  tree.nodes[0].left = 99;  // out of range
  EXPECT_FALSE(DeserializePivotTree(SerializePivotTree(tree)).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = "/tmp/pivot_model_test.bin";
  Bytes data = SerializePivotTree(MakePivotTreeFixture(Protocol::kBasic));
  ASSERT_TRUE(SaveModelBytes(data, path).ok());
  Result<Bytes> loaded = LoadModelBytes(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), data);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadModelBytes(path).ok());
}

}  // namespace
}  // namespace pivot
