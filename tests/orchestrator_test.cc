// Orchestrator tests, three groups.
//
// SpecTest: the federation spec parser — full round-trip, unknown-key
// and malformed-value rejection, address contiguity, and the rendered
// `pivot_cli party` command line.
//
// ProcFaultPlanTest: the process-level chaos plans — schedule parsing,
// seed-derived determinism, the stop/cont pairing invariant, and the
// hand-each-fault-out-once contract of TakeDue.
//
// ProcessSupervisorTest: the process supervision state machine driven
// with a fake clock and recording callbacks, mirroring the
// ConnectionSupervisor tier-1 tests in socket_test.cc — initial spawns,
// the readiness barrier (including the weaker no-party-down release
// rule), deterministic respawn backoff, budget-free generation restarts
// with synchronized respawns, budget exhaustion escalation naming the
// root-cause party, ready-timeout and stall kills, and quiesced
// teardown accounting.

#include "orchestrator/supervisor.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "orchestrator/fault.h"
#include "orchestrator/spec.h"

namespace pivot {
namespace orch {
namespace {

// ----- spec parsing ----------------------------------------------------

constexpr char kFullSpec[] = R"(
# three party deployment
parties = 3
super = 1
data = /data/train.csv
out = model
checkpoint_dir = ckpt
address.0 = unix:/tmp/p0.sock
address.1 = 127.0.0.1:9101
address.2 = 127.0.0.1:9102
task = regression
depth = 5
splits = 16
classes = 4
protocol = enhanced
key_bits = 512
crypto_threads = 2
party_max_restarts = 7
max_restarts = 2
backoff_base_ms = 100
backoff_max_ms = 800
ready_timeout_ms = 9000
stall_timeout_ms = 8000
term_grace_ms = 1500
go_timeout_ms = 30000
cli = /opt/pivot_cli
)";

TEST(SpecTest, ParsesEveryKey) {
  Result<FederationSpec> r = ParseFederationSpec(kFullSpec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const FederationSpec& s = r.value();
  EXPECT_EQ(s.parties, 3);
  EXPECT_EQ(s.super_client, 1);
  EXPECT_EQ(s.data, "/data/train.csv");
  EXPECT_EQ(s.checkpoint_dir, "ckpt");
  ASSERT_EQ(s.addresses.size(), 3u);
  EXPECT_EQ(s.addresses[1], "127.0.0.1:9101");
  EXPECT_EQ(s.task, "regression");
  EXPECT_EQ(s.depth, 5);
  EXPECT_EQ(s.splits, 16);
  EXPECT_EQ(s.classes, 4);
  EXPECT_EQ(s.protocol, "enhanced");
  EXPECT_EQ(s.key_bits, 512);
  EXPECT_EQ(s.crypto_threads, 2);
  EXPECT_EQ(s.party_max_restarts, 7);
  EXPECT_EQ(s.max_restarts, 2);
  EXPECT_EQ(s.backoff_base_ms, 100);
  EXPECT_EQ(s.backoff_max_ms, 800);
  EXPECT_EQ(s.ready_timeout_ms, 9000);
  EXPECT_EQ(s.stall_timeout_ms, 8000);
  EXPECT_EQ(s.term_grace_ms, 1500);
  EXPECT_EQ(s.go_timeout_ms, 30000);
  EXPECT_EQ(s.cli, "/opt/pivot_cli");
}

TEST(SpecTest, UnknownKeyIsAnError) {
  Result<FederationSpec> r =
      ParseFederationSpec("parties = 3\ndata = /d.csv\ndepht = 4\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown key 'depht'"),
            std::string::npos)
      << r.status().ToString();
}

TEST(SpecTest, MalformedIntegerIsAnError) {
  Result<FederationSpec> r =
      ParseFederationSpec("parties = three\ndata = /d.csv\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bad integer"), std::string::npos);
}

TEST(SpecTest, AddressGapIsAnError) {
  Result<FederationSpec> r = ParseFederationSpec(
      "parties = 3\ndata = /d.csv\n"
      "address.0 = unix:/tmp/a\naddress.2 = unix:/tmp/c\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("contiguous"), std::string::npos);
}

TEST(SpecTest, SuperOutOfRangeIsAnError) {
  Result<FederationSpec> r =
      ParseFederationSpec("parties = 3\nsuper = 3\ndata = /d.csv\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST(SpecTest, PartyCommandRendersTrainingAndControlFlags) {
  Result<FederationSpec> r = ParseFederationSpec(kFullSpec);
  ASSERT_TRUE(r.ok());
  const std::vector<std::string> argv =
      PartyCommand(r.value(), 2, "/opt/pivot_cli", 7, 9);
  ASSERT_GE(argv.size(), 4u);
  EXPECT_EQ(argv[0], "/opt/pivot_cli");
  EXPECT_EQ(argv[1], "party");
  auto flag = [&argv](const std::string& name) -> std::string {
    for (size_t i = 0; i + 1 < argv.size(); ++i) {
      if (argv[i] == name) return argv[i + 1];
    }
    return "<missing>";
  };
  EXPECT_EQ(flag("--party-id"), "2");
  EXPECT_EQ(flag("--peers"),
            "unix:/tmp/p0.sock,127.0.0.1:9101,127.0.0.1:9102");
  EXPECT_EQ(flag("--super"), "1");
  EXPECT_EQ(flag("--task"), "regression");
  // The party's in-process attempt budget comes from party_max_restarts,
  // not the process-level max_restarts.
  EXPECT_EQ(flag("--max-restarts"), "7");
  EXPECT_EQ(flag("--control-fd"), "7");
  EXPECT_EQ(flag("--go-fd"), "9");
  EXPECT_EQ(flag("--go-timeout-ms"), "30000");
}

TEST(SpecTest, PartyCommandOmitsControlFlagsForStandaloneUse) {
  Result<FederationSpec> r = ParseFederationSpec(kFullSpec);
  ASSERT_TRUE(r.ok());
  const std::vector<std::string> argv =
      PartyCommand(r.value(), 0, "/opt/pivot_cli", -1, -1);
  for (const std::string& a : argv) {
    EXPECT_NE(a, "--control-fd");
    EXPECT_NE(a, "--go-fd");
  }
}

// ----- chaos plans -----------------------------------------------------

TEST(ProcFaultPlanTest, ParsesAndSortsSchedule) {
  Result<ProcFaultPlan> r =
      ProcFaultPlan::Parse(" 4000:stop:2 ; 1500:kill:1 ; 6000:cont:2 ", 3);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().ToString(), "1500:kill:1;4000:stop:2;6000:cont:2");
}

TEST(ProcFaultPlanTest, RejectsBadKindAndOutOfRangeParty) {
  EXPECT_FALSE(ProcFaultPlan::Parse("100:explode:0", 3).ok());
  EXPECT_FALSE(ProcFaultPlan::Parse("100:kill:3", 3).ok());
  EXPECT_FALSE(ProcFaultPlan::Parse("abc:kill:0", 3).ok());
}

TEST(ProcFaultPlanTest, TakeDueHandsEachFaultOutOnce) {
  Result<ProcFaultPlan> r = ProcFaultPlan::Parse("100:kill:0;300:kill:1", 2);
  ASSERT_TRUE(r.ok());
  ProcFaultPlan plan = r.value();
  EXPECT_TRUE(plan.TakeDue(50).empty());
  std::vector<ProcFault> due = plan.TakeDue(200);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].at_ms, 100);
  EXPECT_TRUE(plan.TakeDue(200).empty()) << "fault 100 must not fire twice";
  due = plan.TakeDue(1'000);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].party, 1);
  EXPECT_TRUE(plan.Exhausted());
}

TEST(ProcFaultPlanTest, SeedDerivedPlansAreDeterministic) {
  const ProcFaultPlan a = ProcFaultPlan::FromSeed(42, 3, 8'000, 4);
  const ProcFaultPlan b = ProcFaultPlan::FromSeed(42, 3, 8'000, 4);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString(), ProcFaultPlan::FromSeed(43, 3, 8'000, 4).ToString());
}

TEST(ProcFaultPlanTest, EveryStopIsPairedWithALaterCont) {
  for (uint64_t seed = 0; seed < 16; ++seed) {
    const ProcFaultPlan plan = ProcFaultPlan::FromSeed(seed, 3, 8'000, 5);
    for (const ProcFault& f : plan.faults()) {
      if (f.kind != ProcFaultKind::kStop) continue;
      bool thawed = false;
      for (const ProcFault& g : plan.faults()) {
        if (g.kind == ProcFaultKind::kCont && g.party == f.party &&
            g.at_ms > f.at_ms) {
          thawed = true;
        }
      }
      EXPECT_TRUE(thawed) << "seed " << seed << ": " << f.ToString()
                          << " never thawed in " << plan.ToString();
    }
  }
}

// ----- supervision state machine (fake clock, recording callbacks) -----

struct RecordingCallbacks {
  std::vector<int> spawns;
  std::vector<std::pair<int, std::string>> kills;  // (party, reason)
  std::vector<std::pair<int, std::string>> gos;    // (party, nonce)
  std::vector<std::pair<int, int>> restarts;       // (party, pid)
  std::vector<std::pair<int, Status>> escalations;
  int next_pid = 100;
  bool fail_spawn = false;

  ProcessSupervisor::Callbacks Bind() {
    ProcessSupervisor::Callbacks cb;
    cb.spawn = [this](int party) -> Result<int> {
      spawns.push_back(party);
      if (fail_spawn) return Status::IoError("spawn refused by test");
      return next_pid++;
    };
    cb.force_kill = [this](int party, int /*pid*/,
                           const std::string& reason) {
      kills.emplace_back(party, reason);
    };
    cb.send_go = [this](int party, const std::string& nonce) {
      gos.emplace_back(party, nonce);
    };
    cb.request_restart = [this](int party, int pid) {
      restarts.emplace_back(party, pid);
    };
    cb.escalate = [this](int party, const Status& cause) {
      escalations.emplace_back(party, cause);
    };
    return cb;
  }
};

ProcessSupervisorConfig FastConfig() {
  ProcessSupervisorConfig cfg;
  cfg.max_restarts = 3;
  cfg.backoff_base_ms = 250;
  cfg.backoff_max_ms = 2'000;
  cfg.ready_timeout_ms = 5'000;
  cfg.stall_timeout_ms = 5'000;
  cfg.restart_grace_ms = 1'000;
  return cfg;
}

// Drives all three parties to kRunning: spawn, READY, barrier release.
void RunToTraining(ProcessSupervisor& sup, RecordingCallbacks& rec,
                   int64_t now) {
  sup.Tick(now);
  ASSERT_EQ(rec.spawns.size(), 3u);
  for (int p = 0; p < 3; ++p) {
    sup.NoteReady(p, "n" + std::to_string(p), now + 10);
  }
  sup.Tick(now + 20);
  ASSERT_EQ(rec.gos.size(), 3u);
}

TEST(ProcessSupervisorTest, FirstTickSpawnsEveryParty) {
  RecordingCallbacks rec;
  ProcessSupervisor sup(3, FastConfig(), rec.Bind());
  sup.Tick(0);
  EXPECT_EQ(rec.spawns, (std::vector<int>{0, 1, 2}));
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(sup.Describe(p).phase, PartyPhase::kLaunching);
    EXPECT_EQ(sup.Describe(p).pid, 100 + p);
  }
}

TEST(ProcessSupervisorTest, BarrierHoldsUntilNoPartyIsDown) {
  RecordingCallbacks rec;
  ProcessSupervisor sup(3, FastConfig(), rec.Bind());
  sup.Tick(0);
  sup.NoteReady(0, "a", 10);
  sup.NoteReady(1, "b", 10);
  sup.Tick(20);  // party 2 is still kLaunching: nobody is released
  EXPECT_TRUE(rec.gos.empty());
  sup.NoteReady(2, "c", 30);
  sup.Tick(40);
  ASSERT_EQ(rec.gos.size(), 3u);
  EXPECT_EQ(rec.gos[0], (std::pair<int, std::string>{0, "a"}));
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(sup.Describe(p).phase, PartyPhase::kRunning);
  }
}

TEST(ProcessSupervisorTest, LatecomerIsReleasedAgainstRunningPeers) {
  // The READY/GO race: party 0's attempt dies after its READY was
  // answered, it re-arms the barrier while peers are already kRunning.
  // The weaker release rule (no party down) must let it through alone.
  RecordingCallbacks rec;
  ProcessSupervisor sup(3, FastConfig(), rec.Bind());
  RunToTraining(sup, rec, 0);
  rec.gos.clear();
  sup.NoteReady(0, "a2", 100);  // kRunning -> kWaiting with a fresh nonce
  EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kWaiting);
  sup.Tick(120);
  ASSERT_EQ(rec.gos.size(), 1u);
  EXPECT_EQ(rec.gos[0], (std::pair<int, std::string>{0, "a2"}));
  EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kRunning);
}

TEST(ProcessSupervisorTest, CrashBacksOffDeterministically) {
  RecordingCallbacks rec;
  ProcessSupervisorConfig cfg = FastConfig();
  cfg.max_restarts = 10;
  ProcessSupervisor sup(1, cfg, rec.Bind());
  sup.Tick(0);
  // Crash repeatedly; the respawn delays must follow 250, 500, 1000,
  // 2000, 2000 (capped) with no jitter.
  const int expected[] = {250, 500, 1'000, 2'000, 2'000};
  int64_t now = 0;
  for (int i = 0; i < 5; ++i) {
    sup.NoteExited(0, 137, "killed by signal 9", now);
    EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kBackoff);
    const size_t before = rec.spawns.size();
    sup.Tick(now + expected[i] - 1);
    EXPECT_EQ(rec.spawns.size(), before) << "respawn " << i << " fired early";
    sup.Tick(now + expected[i]);
    ASSERT_EQ(rec.spawns.size(), before + 1) << "respawn " << i << " missed";
    now += expected[i];
  }
  EXPECT_EQ(sup.Describe(0).restarts, 5);
}

TEST(ProcessSupervisorTest, CrashRequestsBudgetFreeGenerationRestart) {
  RecordingCallbacks rec;
  ProcessSupervisor sup(3, FastConfig(), rec.Bind());
  RunToTraining(sup, rec, 0);
  // Party 1 crashes: it burns a restart; live peers 0 and 2 are asked to
  // restart (SIGTERM on the orchestrator side) without burning theirs.
  sup.NoteExited(1, 137, "killed by signal 9", 1'000);
  ASSERT_EQ(rec.restarts.size(), 2u);
  EXPECT_EQ(rec.restarts[0].first, 0);
  EXPECT_EQ(rec.restarts[1].first, 2);
  EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kRestarting);
  EXPECT_EQ(sup.Describe(1).phase, PartyPhase::kBackoff);
  EXPECT_EQ(sup.Describe(1).restarts, 1);
  // Collateral exits (graceful code 3) respawn with no budget burn,
  // synced at or after the crashed party's own respawn time.
  sup.NoteExited(0, 3, "exit code 3", 1'050);
  sup.NoteExited(2, 3, "exit code 3", 1'060);
  EXPECT_EQ(sup.Describe(0).restarts, 0);
  EXPECT_EQ(sup.Describe(2).restarts, 0);
  rec.spawns.clear();
  sup.Tick(1'249);  // crashed party respawns at 1000 + 250
  EXPECT_TRUE(rec.spawns.empty());
  sup.Tick(1'350);  // collateral respawns land no earlier than 1250
  EXPECT_EQ(rec.spawns.size(), 3u);
}

TEST(ProcessSupervisorTest, DonePeerIsPulledBackIntoTheGeneration) {
  // Resume needs every party at the table: if one party already finished
  // (exit 0) when a peer crashes, it must respawn and replay.
  RecordingCallbacks rec;
  ProcessSupervisor sup(3, FastConfig(), rec.Bind());
  RunToTraining(sup, rec, 0);
  sup.NoteExited(0, 0, "exit code 0", 900);
  EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kDone);
  sup.NoteExited(1, 137, "killed by signal 9", 1'000);
  EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kBackoff);
  EXPECT_EQ(sup.Describe(0).restarts, 0) << "pull-back must be budget-free";
  ASSERT_EQ(rec.restarts.size(), 1u) << "no process to SIGTERM for party 0";
  EXPECT_EQ(rec.restarts[0].first, 2);
  EXPECT_FALSE(sup.AllDone());
}

TEST(ProcessSupervisorTest, RestartGraceExpiryForceKills) {
  RecordingCallbacks rec;
  ProcessSupervisor sup(3, FastConfig(), rec.Bind());
  RunToTraining(sup, rec, 0);
  sup.NoteExited(1, 137, "killed by signal 9", 1'000);
  sup.Tick(1'999);  // restart_grace_ms = 1000: not yet
  EXPECT_TRUE(rec.kills.empty());
  sup.Tick(2'000);
  ASSERT_EQ(rec.kills.size(), 2u);
  EXPECT_NE(rec.kills[0].second.find("generation-restart"),
            std::string::npos)
      << rec.kills[0].second;
  // The SIGKILL exit is still budget-free.
  sup.NoteExited(0, 137, "killed by signal 9", 2'100);
  EXPECT_EQ(sup.Describe(0).restarts, 0);
  EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kBackoff);
}

TEST(ProcessSupervisorTest, BudgetExhaustionEscalatesNamingTheParty) {
  RecordingCallbacks rec;
  ProcessSupervisorConfig cfg = FastConfig();
  cfg.max_restarts = 2;
  ProcessSupervisor sup(1, cfg, rec.Bind());
  int64_t now = 0;
  sup.Tick(now);
  for (int i = 0; i < 2; ++i) {
    sup.NoteExited(0, 137, "killed by signal 9 (Killed)", now);
    now += 3'000;
    sup.Tick(now);  // respawn
  }
  EXPECT_TRUE(rec.escalations.empty());
  sup.NoteExited(0, 137, "killed by signal 9 (Killed)", now);
  ASSERT_EQ(rec.escalations.size(), 1u);
  EXPECT_EQ(rec.escalations[0].first, 0);
  const std::string msg = rec.escalations[0].second.message();
  EXPECT_NE(msg.find("party 0 is beyond recovery"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2/2 restarts"), std::string::npos) << msg;
  EXPECT_TRUE(sup.AnyFailed());
  EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kFailed);
}

TEST(ProcessSupervisorTest, ReadyTimeoutKillsALaunchingParty) {
  RecordingCallbacks rec;
  ProcessSupervisor sup(1, FastConfig(), rec.Bind());
  sup.Tick(0);
  sup.Tick(4'999);
  EXPECT_TRUE(rec.kills.empty());
  sup.Tick(5'000);  // ready_timeout_ms = 5000
  ASSERT_EQ(rec.kills.size(), 1u);
  EXPECT_NE(rec.kills[0].second.find("did not report READY"),
            std::string::npos);
  sup.Tick(5'100);
  EXPECT_EQ(rec.kills.size(), 1u) << "kill must not be re-sent before reap";
}

TEST(ProcessSupervisorTest, StallKillsAMutePartyAndControlFeedsTheClock) {
  RecordingCallbacks rec;
  ProcessSupervisor sup(3, FastConfig(), rec.Bind());
  RunToTraining(sup, rec, 0);
  sup.NoteControl(0, 3'000);
  sup.NoteControl(1, 3'000);
  sup.NoteControl(2, 3'000);
  sup.Tick(7'000);  // 4 s of silence < 5 s stall timeout
  EXPECT_TRUE(rec.kills.empty());
  sup.NoteControl(0, 7'000);
  sup.NoteControl(1, 7'000);
  sup.Tick(8'000);  // party 2 has now been silent for 5 s
  ASSERT_EQ(rec.kills.size(), 1u);
  EXPECT_EQ(rec.kills[0].first, 2);
  EXPECT_NE(rec.kills[0].second.find("no control traffic"),
            std::string::npos);
}

TEST(ProcessSupervisorTest, AllDoneAfterEveryPartyExitsZero) {
  RecordingCallbacks rec;
  ProcessSupervisor sup(3, FastConfig(), rec.Bind());
  RunToTraining(sup, rec, 0);
  EXPECT_FALSE(sup.AllDone());
  for (int p = 0; p < 3; ++p) {
    sup.NoteExited(p, 0, "exit code 0", 2'000 + p);
  }
  EXPECT_TRUE(sup.AllDone());
  EXPECT_FALSE(sup.AnyFailed());
  EXPECT_TRUE(rec.restarts.empty());
  EXPECT_TRUE(rec.escalations.empty());
}

TEST(ProcessSupervisorTest, SpawnFailureBurnsARestartAndRetries) {
  RecordingCallbacks rec;
  rec.fail_spawn = true;
  ProcessSupervisor sup(1, FastConfig(), rec.Bind());
  sup.Tick(0);
  EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kBackoff);
  EXPECT_EQ(sup.Describe(0).restarts, 1);
  EXPECT_EQ(sup.Describe(0).last_exit_code, 127);
  rec.fail_spawn = false;
  sup.Tick(250);
  EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kLaunching);
  EXPECT_EQ(rec.spawns.size(), 2u);
}

TEST(ProcessSupervisorTest, ReadyFromARestartingPartyIsIgnored) {
  // A party can finish re-establishing its mesh and send READY just as
  // the restart request races in; it must stay condemned.
  RecordingCallbacks rec;
  ProcessSupervisor sup(3, FastConfig(), rec.Bind());
  RunToTraining(sup, rec, 0);
  sup.NoteExited(1, 137, "killed by signal 9", 1'000);
  sup.NoteReady(0, "late", 1'010);
  EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kRestarting);
  rec.gos.clear();
  sup.Tick(1'020);
  EXPECT_TRUE(rec.gos.empty());
}

TEST(ProcessSupervisorTest, QuiesceRecordsTeardownExitsWithoutSupervision) {
  RecordingCallbacks rec;
  ProcessSupervisor sup(3, FastConfig(), rec.Bind());
  RunToTraining(sup, rec, 0);
  sup.Quiesce();
  // Teardown SIGTERMs arrive as exit 3: no backoff, no budget burn, no
  // generation-restart fan-out — just facts for the report.
  sup.NoteExited(0, 3, "exit code 3", 2'000);
  sup.NoteExited(1, 0, "exit code 0", 2'000);
  EXPECT_EQ(sup.Describe(0).phase, PartyPhase::kRunning);
  EXPECT_EQ(sup.Describe(0).last_exit_code, 3);
  EXPECT_EQ(sup.Describe(0).restarts, 0);
  EXPECT_EQ(sup.Describe(1).phase, PartyPhase::kDone);
  EXPECT_TRUE(rec.restarts.empty());
  rec.spawns.clear();
  sup.Tick(10'000);
  EXPECT_TRUE(rec.spawns.empty()) << "no respawns after Quiesce";
}

TEST(ProcessSupervisorTest, PartyForPidRoutesAndForgets) {
  RecordingCallbacks rec;
  ProcessSupervisor sup(3, FastConfig(), rec.Bind());
  sup.Tick(0);
  EXPECT_EQ(sup.PartyForPid(101), 1);
  EXPECT_EQ(sup.PartyForPid(999), -1);
  sup.NoteExited(1, 137, "killed by signal 9", 100);
  EXPECT_EQ(sup.PartyForPid(101), -1) << "reaped pid must be forgotten";
}

}  // namespace
}  // namespace orch
}  // namespace pivot
