#include "mpc/field.h"

#include <gtest/gtest.h>

#include "bigint/bigint.h"
#include "common/rng.h"

namespace pivot {
namespace {

BigInt U128ToBig(u128 v) { return FpToBigInt(v); }

const BigInt kPrimeBig = (BigInt(1) << 127) - BigInt(1);

TEST(FieldTest, PrimeIsMersenne127) {
  EXPECT_EQ(U128ToBig(kFieldPrime), kPrimeBig);
}

TEST(FieldTest, AddSubNegSmall) {
  EXPECT_EQ(FpAdd(2, 3), static_cast<u128>(5));
  EXPECT_EQ(FpSub(3, 5), kFieldPrime - 2);
  EXPECT_EQ(FpNeg(0), static_cast<u128>(0));
  EXPECT_EQ(FpAdd(FpNeg(7), 7), static_cast<u128>(0));
}

TEST(FieldTest, AddWrapsAtPrime) {
  EXPECT_EQ(FpAdd(kFieldPrime - 1, 1), static_cast<u128>(0));
  EXPECT_EQ(FpAdd(kFieldPrime - 1, 2), static_cast<u128>(1));
}

TEST(FieldTest, MulMatchesBigIntRandomized) {
  Rng rng(31337);
  for (int i = 0; i < 5000; ++i) {
    u128 a = FpRandom(rng);
    u128 b = FpRandom(rng);
    BigInt expected = U128ToBig(a).ModMul(U128ToBig(b), kPrimeBig);
    EXPECT_EQ(U128ToBig(FpMul(a, b)), expected);
  }
}

TEST(FieldTest, MulEdgeCases) {
  EXPECT_EQ(FpMul(0, kFieldPrime - 1), static_cast<u128>(0));
  EXPECT_EQ(FpMul(1, kFieldPrime - 1), kFieldPrime - 1);
  // (p-1)^2 = 1 mod p
  EXPECT_EQ(FpMul(kFieldPrime - 1, kFieldPrime - 1), static_cast<u128>(1));
  // Largest 64-bit operands.
  u128 big = (static_cast<u128>(1) << 64) - 1;
  BigInt expected = U128ToBig(big).ModMul(U128ToBig(big), kPrimeBig);
  EXPECT_EQ(U128ToBig(FpMul(big, big)), expected);
}

TEST(FieldTest, PowAndInv) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    u128 a = FpRandom(rng);
    if (a == 0) continue;
    EXPECT_EQ(FpMul(a, FpInv(a)), static_cast<u128>(1));
  }
  EXPECT_EQ(FpPow(2, 10), static_cast<u128>(1024));
  EXPECT_EQ(FpPow(5, 0), static_cast<u128>(1));
  // Fermat: a^(p-1) = 1.
  EXPECT_EQ(FpPow(123456789, kFieldPrime - 1), static_cast<u128>(1));
}

TEST(FieldTest, SignedRoundTrip) {
  for (i128 v : {i128{0}, i128{1}, i128{-1}, i128{123456789},
                 -static_cast<i128>(1) << 100, static_cast<i128>(1) << 100}) {
    EXPECT_EQ(FpToSigned(FpFromSigned(v)), v);
  }
}

TEST(FieldTest, RandomInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(FpRandom(rng), kFieldPrime);
  }
}

TEST(FieldTest, BigIntBridge) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    u128 v = FpRandom(rng);
    EXPECT_EQ(FpFromBigInt(FpToBigInt(v)), v);
  }
  // Values above p reduce mod p (the ciphertext-congruence bridge).
  BigInt above = kPrimeBig + BigInt(5);
  EXPECT_EQ(FpFromBigInt(above), static_cast<u128>(5));
  BigInt way_above = kPrimeBig * BigInt(12345) + BigInt(77);
  EXPECT_EQ(FpFromBigInt(way_above), static_cast<u128>(77));
}

TEST(FieldTest, FoldReduceInvariants) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    u128 x = (static_cast<u128>(rng.NextU64()) << 64) | rng.NextU64();
    u128 r = FpReduce(x);
    EXPECT_LT(r, kFieldPrime);
    EXPECT_EQ(U128ToBig(r), U128ToBig(x).Mod(kPrimeBig));
  }
}

}  // namespace
}  // namespace pivot
