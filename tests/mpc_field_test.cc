#include "mpc/field.h"

#include <gtest/gtest.h>

#include "bigint/bigint.h"
#include "common/rng.h"

namespace pivot {
namespace {

BigInt U128ToBig(u128 v) { return FpToBigInt(v); }

const BigInt kPrimeBig = (BigInt(1) << 127) - BigInt(1);

TEST(FieldTest, PrimeIsMersenne127) {
  EXPECT_EQ(U128ToBig(kFieldPrime), kPrimeBig);
}

TEST(FieldTest, AddSubNegSmall) {
  EXPECT_EQ(FpAdd(2, 3), static_cast<u128>(5));
  EXPECT_EQ(FpSub(3, 5), kFieldPrime - 2);
  EXPECT_EQ(FpNeg(0), static_cast<u128>(0));
  EXPECT_EQ(FpAdd(FpNeg(7), 7), static_cast<u128>(0));
}

TEST(FieldTest, AddWrapsAtPrime) {
  EXPECT_EQ(FpAdd(kFieldPrime - 1, 1), static_cast<u128>(0));
  EXPECT_EQ(FpAdd(kFieldPrime - 1, 2), static_cast<u128>(1));
}

TEST(FieldTest, MulMatchesBigIntRandomized) {
  Rng rng(31337);
  for (int i = 0; i < 5000; ++i) {
    u128 a = FpRandom(rng);
    u128 b = FpRandom(rng);
    BigInt expected = U128ToBig(a).ModMul(U128ToBig(b), kPrimeBig);
    EXPECT_EQ(U128ToBig(FpMul(a, b)), expected);
  }
}

TEST(FieldTest, MulEdgeCases) {
  EXPECT_EQ(FpMul(0, kFieldPrime - 1), static_cast<u128>(0));
  EXPECT_EQ(FpMul(1, kFieldPrime - 1), kFieldPrime - 1);
  // (p-1)^2 = 1 mod p
  EXPECT_EQ(FpMul(kFieldPrime - 1, kFieldPrime - 1), static_cast<u128>(1));
  // Largest 64-bit operands.
  u128 big = (static_cast<u128>(1) << 64) - 1;
  BigInt expected = U128ToBig(big).ModMul(U128ToBig(big), kPrimeBig);
  EXPECT_EQ(U128ToBig(FpMul(big, big)), expected);
}

TEST(FieldTest, PowAndInv) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    u128 a = FpRandom(rng);
    if (a == 0) continue;
    EXPECT_EQ(FpMul(a, FpInv(a)), static_cast<u128>(1));
  }
  EXPECT_EQ(FpPow(2, 10), static_cast<u128>(1024));
  EXPECT_EQ(FpPow(5, 0), static_cast<u128>(1));
  // Fermat: a^(p-1) = 1.
  EXPECT_EQ(FpPow(123456789, kFieldPrime - 1), static_cast<u128>(1));
}

TEST(FieldTest, SignedRoundTrip) {
  for (i128 v : {i128{0}, i128{1}, i128{-1}, i128{123456789},
                 -static_cast<i128>(1) << 100, static_cast<i128>(1) << 100}) {
    EXPECT_EQ(FpToSigned(FpFromSigned(v)), v);
  }
}

TEST(FieldTest, RandomInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(FpRandom(rng), kFieldPrime);
  }
}

TEST(FieldTest, BigIntBridge) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    u128 v = FpRandom(rng);
    EXPECT_EQ(FpFromBigInt(FpToBigInt(v)), v);
  }
  // Values above p reduce mod p (the ciphertext-congruence bridge).
  BigInt above = kPrimeBig + BigInt(5);
  EXPECT_EQ(FpFromBigInt(above), static_cast<u128>(5));
  BigInt way_above = kPrimeBig * BigInt(12345) + BigInt(77);
  EXPECT_EQ(FpFromBigInt(way_above), static_cast<u128>(77));
}

// The branchless (constant-time) Fp kernels must agree with the BigInt
// reference at the borrow boundaries their masks switch on: operands at
// 0, 1, p-1, and sums/differences that straddle p exactly.
TEST(FieldTest, BranchlessBoundaryCases) {
  const u128 edges[] = {0, 1, 2, kFieldPrime / 2, kFieldPrime - 2,
                        kFieldPrime - 1};
  for (u128 a : edges) {
    for (u128 b : edges) {
      EXPECT_EQ(U128ToBig(FpAdd(a, b)),
                (U128ToBig(a) + U128ToBig(b)).Mod(kPrimeBig));
      EXPECT_EQ(U128ToBig(FpSub(a, b)),
                (U128ToBig(a) + kPrimeBig - U128ToBig(b)).Mod(kPrimeBig));
      EXPECT_EQ(U128ToBig(FpMul(a, b)),
                U128ToBig(a).ModMul(U128ToBig(b), kPrimeBig));
    }
    EXPECT_EQ(U128ToBig(FpNeg(a)),
              (kPrimeBig - U128ToBig(a)).Mod(kPrimeBig));
    EXPECT_LT(FpAdd(a, a), kFieldPrime);
  }
  // FpReduce at the two representable multiples of p.
  EXPECT_EQ(FpReduce(kFieldPrime), static_cast<u128>(0));
  EXPECT_EQ(FpReduce(kFieldPrime - 1), kFieldPrime - 1);
}

TEST(FieldTest, BranchlessAgainstReferenceRandomized) {
  Rng rng(20260809);
  for (int i = 0; i < 2000; ++i) {
    const u128 a = FpRandom(rng);
    const u128 b = FpRandom(rng);
    EXPECT_EQ(U128ToBig(FpAdd(a, b)),
              (U128ToBig(a) + U128ToBig(b)).Mod(kPrimeBig));
    EXPECT_EQ(U128ToBig(FpSub(a, b)),
              (U128ToBig(a) + kPrimeBig - U128ToBig(b)).Mod(kPrimeBig));
    EXPECT_EQ(FpAdd(a, FpNeg(a)), static_cast<u128>(0));
    EXPECT_EQ(FpAdd(FpSub(a, b), b), a);
  }
}

TEST(FieldTest, FromSignedBoundaries) {
  // FpFromSigned selects the negation path with a sign mask; check both
  // paths and the largest magnitudes the fixed-point layer produces.
  const i128 half = static_cast<i128>(kFieldPrime / 2);
  for (i128 v : {i128{0}, i128{1}, i128{-1}, half, -half,
                 static_cast<i128>(1) << 126,
                 -(static_cast<i128>(1) << 126)}) {
    const u128 f = FpFromSigned(v);
    EXPECT_LT(f, kFieldPrime);
    if (v >= 0) {
      EXPECT_EQ(U128ToBig(f), U128ToBig(static_cast<u128>(v)).Mod(kPrimeBig));
    } else {
      EXPECT_EQ(U128ToBig(f),
                (kPrimeBig - U128ToBig(static_cast<u128>(-v)).Mod(kPrimeBig))
                    .Mod(kPrimeBig));
    }
  }
}

TEST(FieldTest, FoldReduceInvariants) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    u128 x = (static_cast<u128>(rng.NextU64()) << 64) | rng.NextU64();
    u128 r = FpReduce(x);
    EXPECT_LT(r, kFieldPrime);
    EXPECT_EQ(U128ToBig(r), U128ToBig(x).Mod(kPrimeBig));
  }
}

}  // namespace
}  // namespace pivot
