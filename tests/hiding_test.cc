#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "pivot/prediction.h"
#include "pivot/runner.h"
#include "pivot/trainer.h"

namespace pivot {
namespace {

// The Section 5.2 trade-off: stronger hiding levels must reveal strictly
// less model structure while producing the same predictions.

Dataset HidingData() {
  ClassificationSpec spec;
  spec.num_samples = 40;
  spec.num_features = 6;
  spec.num_classes = 2;
  spec.class_separation = 2.5;
  spec.seed = 91;
  return MakeClassification(spec);
}

FederationConfig HidingConfig() {
  FederationConfig cfg;
  cfg.num_parties = 3;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 2;
  cfg.params.tree.max_splits = 3;
  cfg.params.key_bits = 384;
  return cfg;
}

TEST(HidingLevelTest, FeatureHidingConcealsFeatureButNotOwner) {
  Dataset data = HidingData();
  Status st = RunFederation(data, HidingConfig(), [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.protocol = Protocol::kEnhanced;
    opts.hiding = HidingLevel::kFeature;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    for (const PivotNode& n : tree.nodes) {
      if (n.is_leaf) continue;
      if (n.owner < 0) return Status::Internal("owner should be public");
      if (n.feature_local != -1) {
        return Status::Internal("feature leaked under kFeature hiding");
      }
      if (n.lambda_slices.empty()) {
        return Status::Internal("selector missing");
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(HidingLevelTest, ClientHidingConcealsEverything) {
  Dataset data = HidingData();
  Status st = RunFederation(data, HidingConfig(), [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.protocol = Protocol::kEnhanced;
    opts.hiding = HidingLevel::kClientAndFeature;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    for (const PivotNode& n : tree.nodes) {
      if (n.is_leaf) continue;
      if (n.owner != -1 || n.feature_local != -1) {
        return Status::Internal("split identity leaked under full hiding");
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(HidingLevelTest, AllLevelsPredictLikeTheBasicModel) {
  Dataset data = HidingData();
  Status st = RunFederation(data, HidingConfig(), [&](PartyContext& ctx) -> Status {
    TrainTreeOptions basic_opts;
    PIVOT_ASSIGN_OR_RETURN(PivotTree basic, TrainPivotTree(ctx, basic_opts));
    std::vector<std::vector<int>> fmap;
    auto part = PartitionVertically(data, 3);
    for (const auto& v : part.views) fmap.push_back(v.feature_indices);
    auto rows = SliceRowsForParty(data, ctx.id(), 3);

    for (HidingLevel level : {HidingLevel::kThreshold, HidingLevel::kFeature,
                              HidingLevel::kClientAndFeature}) {
      TrainTreeOptions opts;
      opts.protocol = Protocol::kEnhanced;
      opts.hiding = level;
      PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
      // Note: stronger hiding levels cannot shrink the available feature
      // set along a path (the winner is secret), so tree shapes can
      // legitimately differ from the basic model below the first reuse.
      // Compare predictions on probe rows only at the kThreshold level,
      // and check self-consistency (valid class outputs) for the rest.
      for (int i = 0; i < 4; ++i) {
        PIVOT_ASSIGN_OR_RETURN(double pred, PredictPivot(ctx, tree, rows[i]));
        if (level == HidingLevel::kThreshold) {
          const double expected =
              basic.EvaluatePlain(data.features[i], fmap);
          if (pred != expected) {
            return Status::Internal("kThreshold prediction mismatch");
          }
        } else if (pred != 0.0 && pred != 1.0) {
          return Status::Internal("hidden-mode class out of range");
        }
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(HidingLevelTest, HiddenFeaturePredictionMatchesTrainingLabelsSignal) {
  // Fully hidden tree must still beat chance on its own training data
  // (i.e. the oblivious feature selection wires up the *right* values).
  Dataset data = HidingData();
  Status st = RunFederation(data, HidingConfig(), [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.protocol = Protocol::kEnhanced;
    opts.hiding = HidingLevel::kClientAndFeature;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    auto rows = SliceRowsForParty(data, ctx.id(), 3);
    int correct = 0;
    const int probe = 10;
    for (int i = 0; i < probe; ++i) {
      PIVOT_ASSIGN_OR_RETURN(double pred, PredictPivot(ctx, tree, rows[i]));
      correct += (pred == data.labels[i]);
    }
    if (correct <= probe / 2) {
      return Status::Internal("fully-hidden tree no better than chance: " +
                              std::to_string(correct));
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace pivot
