#include "common/ct.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace pivot {
namespace {

using ct::u128ct;

TEST(CtMaskTest, MaskNonZeroU32) {
  EXPECT_EQ(ct::MaskNonZeroU32(0), 0u);
  EXPECT_EQ(ct::MaskNonZeroU32(1), 0xFFFFFFFFu);
  EXPECT_EQ(ct::MaskNonZeroU32(0x80000000u), 0xFFFFFFFFu);
  EXPECT_EQ(ct::MaskNonZeroU32(0xFFFFFFFFu), 0xFFFFFFFFu);
}

TEST(CtMaskTest, MaskNonZeroU64) {
  EXPECT_EQ(ct::MaskNonZeroU64(0), 0u);
  EXPECT_EQ(ct::MaskNonZeroU64(1), ~0ull);
  // Value with bits only in the high half.
  EXPECT_EQ(ct::MaskNonZeroU64(1ull << 63), ~0ull);
}

TEST(CtMaskTest, MaskNonZeroU128) {
  EXPECT_EQ(ct::MaskNonZeroU128(0), static_cast<u128ct>(0));
  EXPECT_EQ(ct::MaskNonZeroU128(1), ~static_cast<u128ct>(0));
  // Bits only above the 64-bit boundary.
  EXPECT_EQ(ct::MaskNonZeroU128(static_cast<u128ct>(1) << 100),
            ~static_cast<u128ct>(0));
}

TEST(CtPredicateTest, IsZeroAndEqual) {
  EXPECT_TRUE(ct::IsZeroU64(0));
  EXPECT_FALSE(ct::IsZeroU64(42));
  EXPECT_TRUE(ct::IsZeroU128(0));
  EXPECT_FALSE(ct::IsZeroU128(static_cast<u128ct>(1) << 127));
  EXPECT_TRUE(ct::EqualU64(7, 7));
  EXPECT_FALSE(ct::EqualU64(7, 8));
  const u128ct big = (static_cast<u128ct>(0xABCD) << 64) | 0x1234;
  EXPECT_TRUE(ct::EqualU128(big, big));
  EXPECT_FALSE(ct::EqualU128(big, big + 1));
}

TEST(CtSelectTest, SelectWords) {
  EXPECT_EQ(ct::SelectU64(~0ull, 1, 2), 1u);
  EXPECT_EQ(ct::SelectU64(0, 1, 2), 2u);
  const u128ct a = static_cast<u128ct>(10) << 90;
  const u128ct b = static_cast<u128ct>(20) << 90;
  EXPECT_EQ(ct::SelectU128(~static_cast<u128ct>(0), a, b), a);
  EXPECT_EQ(ct::SelectU128(0, a, b), b);
}

TEST(CtEqualTest, ByteSpans) {
  Bytes a = {1, 2, 3, 4};
  Bytes b = {1, 2, 3, 4};
  Bytes c = {1, 2, 3, 5};
  EXPECT_TRUE(ct::CtEqual(a, b));
  EXPECT_FALSE(ct::CtEqual(a, c));
  // Difference in the first byte must be found just as in the last.
  Bytes d = {9, 2, 3, 4};
  EXPECT_FALSE(ct::CtEqual(a, d));
}

TEST(CtEqualTest, LengthMismatchIsFalse) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3, 4};
  EXPECT_FALSE(ct::CtEqual(a, b));
}

TEST(CtEqualTest, EmptySpansAreEqual) {
  Bytes a, b;
  EXPECT_TRUE(ct::CtEqual(a, b));
}

TEST(CtSelectTest, ByteSpans) {
  Bytes a = {1, 2, 3};
  Bytes b = {4, 5, 6};
  Bytes out;
  ct::CtSelect(1, a, b, out);
  EXPECT_EQ(out, a);
  ct::CtSelect(0, a, b, out);
  EXPECT_EQ(out, b);
}

TEST(CtSelectTest, OutMayAliasInput) {
  Bytes a = {7, 8};
  Bytes b = {9, 10};
  ct::CtSelect(0, a, b, a);
  EXPECT_EQ(a, (Bytes{9, 10}));
}

TEST(CtAllZeroTest, Fold) {
  std::vector<u128ct> zeros(8, 0);
  EXPECT_TRUE(ct::AllZeroU128(zeros.data(), zeros.size()));
  // A failure anywhere — first, middle, last — must be caught.
  for (size_t bad : {size_t{0}, size_t{4}, size_t{7}}) {
    std::vector<u128ct> v(8, 0);
    v[bad] = static_cast<u128ct>(1) << 97;
    EXPECT_FALSE(ct::AllZeroU128(v.data(), v.size()));
  }
  EXPECT_TRUE(ct::AllZeroU128(nullptr, 0));
}

}  // namespace
}  // namespace pivot
