#include "pivot/checkpoint.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/rng.h"

namespace pivot {
namespace {

Bytes Blob(uint8_t tag) { return Bytes(4, tag); }

TEST(CheckpointStoreTest, EmptyStoreReportsNone) {
  CheckpointStore store;
  EXPECT_EQ(store.LatestIndex(/*epoch=*/0), CheckpointStore::kNone);
  EXPECT_FALSE(store.Load(0).ok());
}

TEST(CheckpointStoreTest, SaveAndLoadRoundTrip) {
  CheckpointStore store;
  store.BeginEpoch(1);
  store.Save(1, 3, Blob(3));
  store.Save(1, 4, Blob(4));
  EXPECT_EQ(store.LatestIndex(1), 4u);
  EXPECT_EQ(store.Load(3).value(), Blob(3));
  EXPECT_EQ(store.Load(4).value(), Blob(4));
}

TEST(CheckpointStoreTest, HistoryWindowEvictsOldest) {
  CheckpointStore store(/*history=*/2);
  store.BeginEpoch(1);
  for (uint64_t i = 1; i <= 4; ++i) store.Save(1, i, Blob(i));
  EXPECT_EQ(store.LatestIndex(1), 4u);
  EXPECT_TRUE(store.Load(4).ok());
  EXPECT_TRUE(store.Load(3).ok());
  // Evicted beyond the window; the error names the index and window.
  const Status st = store.Load(1).status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("1"), std::string::npos);
}

TEST(CheckpointStoreTest, SaveOverwritesSameIndex) {
  CheckpointStore store;
  store.BeginEpoch(1);
  store.Save(1, 2, Blob(7));
  store.Save(1, 2, Blob(9));
  EXPECT_EQ(store.Load(2).value(), Blob(9));
  EXPECT_EQ(store.LatestIndex(1), 2u);
}

// Epoch gating: a deterministic re-run of an earlier tree (lower epoch)
// must neither read nor clobber the crashed epoch's snapshots, and
// advancing the epoch discards the stale ones.
TEST(CheckpointStoreTest, EpochGatesSavesAndReads) {
  CheckpointStore store;
  store.BeginEpoch(2);
  store.Save(2, 5, Blob(5));

  // Re-entering an older epoch is a no-op.
  store.BeginEpoch(1);
  EXPECT_EQ(store.LatestIndex(1), CheckpointStore::kNone);
  store.Save(1, 9, Blob(9));
  EXPECT_FALSE(store.Load(9).ok());
  EXPECT_EQ(store.LatestIndex(2), 5u);
  EXPECT_EQ(store.Load(5).value(), Blob(5));

  // Moving forward clears the older epoch's snapshots.
  store.BeginEpoch(3);
  EXPECT_EQ(store.LatestIndex(2), CheckpointStore::kNone);
  EXPECT_EQ(store.LatestIndex(3), CheckpointStore::kNone);
  EXPECT_FALSE(store.Load(5).ok());
}

TEST(CheckpointStoreTest, ClearResetsEverything) {
  CheckpointStore store;
  store.BeginEpoch(2);
  store.Save(2, 1, Blob(1));
  store.Clear();
  EXPECT_EQ(store.LatestIndex(2), CheckpointStore::kNone);
  EXPECT_FALSE(store.Load(1).ok());
}

TEST(CheckpointStoreFileTest, PersistAndReloadRoundTrip) {
  const std::string path = "/tmp/pivot_ckpt_file_test_" +
                           std::to_string(::getpid()) + ".ckpt";
  std::remove(path.c_str());
  {
    CheckpointStore store;
    store.SetPersistPath(path);
    store.BeginEpoch(2);
    store.Save(2, 5, Blob(5));
    store.Save(2, 6, Blob(6));
  }  // store gone; only the file survives — like a SIGKILL'd process
  CheckpointStore reloaded;
  ASSERT_TRUE(reloaded.LoadFromFile(path).ok());
  EXPECT_EQ(reloaded.LatestIndex(2), 6u);
  EXPECT_EQ(reloaded.Load(5).value(), Blob(5));
  EXPECT_EQ(reloaded.Load(6).value(), Blob(6));
  // LoadFromFile also adopts the path: further saves keep persisting.
  reloaded.Save(2, 7, Blob(7));
  CheckpointStore again;
  ASSERT_TRUE(again.LoadFromFile(path).ok());
  EXPECT_EQ(again.LatestIndex(2), 7u);
  std::remove(path.c_str());
}

TEST(CheckpointStoreFileTest, MissingFileIsAFreshStart) {
  CheckpointStore store;
  EXPECT_TRUE(
      store.LoadFromFile("/tmp/pivot_ckpt_file_test_never_written").ok());
  EXPECT_EQ(store.LatestIndex(0), CheckpointStore::kNone);
}

TEST(CheckpointStoreFileTest, MalformedFileIsAnError) {
  // A corrupt store must NOT silently become "no progress": resuming
  // from scratch would desynchronize this party from its peers.
  const std::string path = "/tmp/pivot_ckpt_file_test_bad_" +
                           std::to_string(::getpid()) + ".ckpt";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint store", f);
    std::fclose(f);
  }
  CheckpointStore store;
  const Status st = store.LoadFromFile(path);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("magic"), std::string::npos) << st.ToString();
  std::remove(path.c_str());
}

TEST(FederationCheckpointTest, OneStorePerParty) {
  FederationCheckpoint fed(3);
  EXPECT_EQ(fed.num_parties(), 3);
  fed.party(0).BeginEpoch(1);
  fed.party(0).Save(1, 0, Blob(1));
  EXPECT_EQ(fed.party(0).LatestIndex(1), 0u);
  EXPECT_EQ(fed.party(1).LatestIndex(1), CheckpointStore::kNone);
}

TEST(RngStateCodecTest, RoundTripPreservesStream) {
  Rng rng(0xDEADBEEF);
  (void)rng.NextU64();
  (void)rng.NextGaussian();  // may populate the cached-gaussian slot
  const RngState state = rng.SaveState();

  ByteWriter w;
  EncodeRngState(state, w);
  const Bytes data = w.Take();
  ByteReader r(data);
  const RngState back = DecodeRngState(r).value();
  EXPECT_TRUE(r.AtEnd());

  Rng restored(1);
  restored.RestoreState(back);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(restored.NextU64(), rng.NextU64()) << i;
  }
  EXPECT_EQ(restored.NextGaussian(), rng.NextGaussian());
}

TEST(RngStateCodecTest, TruncatedInputRejected) {
  ByteWriter w;
  EncodeRngState(RngState{}, w);
  Bytes data = w.Take();
  data.resize(data.size() - 1);
  ByteReader r(data);
  EXPECT_FALSE(DecodeRngState(r).ok());
}

}  // namespace
}  // namespace pivot
