#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

// End-to-end smoke test of the pivot_cli binary: generate a CSV, train,
// predict, check the reported accuracy. Locates the binary relative to
// the test binary's working directory (ctest runs in the build tree).

namespace {

std::string RunCommand(const std::string& cmd) {
  std::string out;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (!pipe) return out;
  char buf[256];
  while (fgets(buf, sizeof(buf), pipe)) out += buf;
  pclose(pipe);
  return out;
}

bool BinaryExists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

TEST(CliTest, TrainPredictRoundTrip) {
  // The test runs from build/tests; the CLI lives in build/tools.
  std::string cli = "../tools/pivot_cli";
  if (!BinaryExists(cli)) cli = "tools/pivot_cli";  // ctest from build root
  if (!BinaryExists(cli)) GTEST_SKIP() << "pivot_cli not found";

  // Linearly separable two-class CSV.
  const std::string train_csv = "/tmp/pivot_cli_test_train.csv";
  const std::string test_csv = "/tmp/pivot_cli_test_test.csv";
  {
    std::ofstream tr(train_csv), te(test_csv);
    for (int i = 0; i < 80; ++i) {
      const int c = i % 2;
      auto& out = (i < 60) ? tr : te;
      for (int j = 0; j < 4; ++j) out << (c ? 3.0 : 0.0) + 0.01 * i << ",";
      out << c << "\n";
    }
  }

  std::string train_out =
      RunCommand(cli + " train --data " + train_csv +
          " --out /tmp/pivot_cli_test_model --parties 2 --depth 2 "
          "--splits 4 --key-bits 256");
  ASSERT_NE(train_out.find("done:"), std::string::npos) << train_out;

  std::string predict_out =
      RunCommand(cli + " predict --data " + test_csv +
          " --model /tmp/pivot_cli_test_model --parties 2");
  // Perfectly separable data: the tree must classify it all correctly.
  EXPECT_NE(predict_out.find("accuracy: 1.0000"), std::string::npos)
      << predict_out;

  std::string usage = RunCommand(cli + " bogus");
  EXPECT_NE(usage.find("usage:"), std::string::npos);
  std::remove(train_csv.c_str());
  std::remove(test_csv.c_str());
}

}  // namespace
