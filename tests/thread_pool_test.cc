#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pivot {
namespace {

TEST(ThreadPoolTest, StartsLazily) {
  ThreadPool pool;
  EXPECT_EQ(pool.size(), 0);
}

TEST(ThreadPoolTest, ResizeGrowsButNeverShrinks) {
  ThreadPool pool;
  pool.Resize(3);
  EXPECT_EQ(pool.size(), 3);
  pool.Resize(1);
  EXPECT_EQ(pool.size(), 3);
  pool.Resize(5);
  EXPECT_EQ(pool.size(), 5);
  pool.Resize(0);
  pool.Resize(-4);
  EXPECT_EQ(pool.size(), 5);
}

TEST(ThreadPoolTest, WaitGroupRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  ThreadPool::WaitGroup group(pool);
  for (int i = 1; i <= 100; ++i) {
    group.Submit([&sum, i]() -> Status {
      sum.fetch_add(i, std::memory_order_relaxed);
      return Status::Ok();
    });
  }
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, WaitGroupReportsLowestSubmissionError) {
  // Two tasks fail; Wait() must report the one submitted first regardless
  // of which worker finishes first, so the surfaced error is deterministic.
  ThreadPool pool(4);
  ThreadPool::WaitGroup group(pool);
  for (int i = 0; i < 20; ++i) {
    group.Submit([i]() -> Status {
      if (i == 17) return Status::InvalidArgument("late failure");
      if (i == 5) {
        // Delay the earlier failure so a naive "first to finish" policy
        // would report task 17 instead.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return Status::Internal("early failure");
      }
      return Status::Ok();
    });
  }
  Status st = group.Wait();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(ThreadPoolTest, WaitGroupIsReusableAfterError) {
  ThreadPool pool(2);
  ThreadPool::WaitGroup group(pool);
  group.Submit([]() -> Status { return Status::Internal("boom"); });
  ASSERT_FALSE(group.Wait().ok());

  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    group.Submit([&ran]() -> Status {
      ran.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, ExceptionsBecomeInternalStatus) {
  ThreadPool pool(2);
  ThreadPool::WaitGroup group(pool);
  group.Submit([]() -> Status { throw std::runtime_error("kaboom"); });
  Status st = group.Wait();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(ThreadPoolTest, PostRunsDetachedTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.Post([&ran]() -> Status {
      ran.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    });
  }
  // Post has no join handle by design; poll with a deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ran.load() < 16 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    Status st = ThreadPool::Global().ParallelFor(
        hits.size(), threads, [&hits](size_t i) -> Status {
          hits[i].fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        });
    ASSERT_TRUE(st.ok()) << "threads=" << threads;
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForResultIsThreadCountInvariant) {
  // The determinism contract: per-index work depends only on the index, so
  // outputs written into indexed slots are identical for every fan-out.
  auto run = [](int threads) {
    std::vector<uint64_t> out(100, 0);
    Status st = ThreadPool::Global().ParallelFor(
        out.size(), threads, [&out](size_t i) -> Status {
          uint64_t v = 0x9e3779b97f4a7c15ULL * (i + 1);
          v ^= v >> 31;
          out[i] = v;
          return Status::Ok();
        });
    EXPECT_TRUE(st.ok());
    return out;
  };
  const std::vector<uint64_t> base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(3), base);
  EXPECT_EQ(run(8), base);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingle) {
  int calls = 0;
  EXPECT_TRUE(ThreadPool::Global()
                  .ParallelFor(0, 4, [&](size_t) -> Status {
                    ++calls;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(ThreadPool::Global()
                  .ParallelFor(1, 4, [&](size_t) -> Status {
                    ++calls;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForReportsChunkOrderedError) {
  // Large enough to fan out; two chunks fail. The error from the earlier
  // chunk (lower indices) must win independent of scheduling.
  Status st = ThreadPool::Global().ParallelFor(
      64, 8, [](size_t i) -> Status {
        if (i == 60) return Status::InvalidArgument("late chunk");
        if (i == 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          return Status::Internal("early chunk");
        }
        return Status::Ok();
      });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace pivot
