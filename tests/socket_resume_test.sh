#!/bin/sh
# Crash-resume acceptance test for the multi-process socket transport.
#
# Trains a fault-free baseline with `pivot_cli train` (in-process mesh),
# then runs the same training as THREE separate `pivot_cli party`
# processes over unix-domain sockets, SIGKILLs one party mid-training,
# relaunches it with the identical command line, and asserts every
# party's final model view is bit-identical to the baseline. This is the
# end-to-end proof that checkpoint persistence + incarnation handshake +
# attempt restarts reassemble the exact fault-free model.
#
# Usage: socket_resume_test.sh /path/to/pivot_cli
set -eu

CLI=${1:-tools/pivot_cli}
if [ ! -x "$CLI" ]; then
  echo "SKIP: pivot_cli not found at $CLI"
  exit 0
fi
CLI=$(cd "$(dirname "$CLI")" && pwd)/$(basename "$CLI")

# Per-run scratch under $TMPDIR so parallel ctest invocations (and CI
# sandboxes with a private TMPDIR) never collide on socket paths.
DIR=$(mktemp -d "${TMPDIR:-/tmp}/pivot_socket_resume.XXXXXX")
PIDS=""
trap 'kill -9 $PIDS 2>/dev/null || true; rm -rf "$DIR"' EXIT
cd "$DIR"

# Deterministic headerless CSV: 6 features + binary label, 60 rows.
awk 'BEGIN {
  seed = 42;
  for (i = 0; i < 60; i++) {
    s = "";
    sum = 0;
    for (j = 0; j < 6; j++) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      x = (seed % 10000) / 10000.0;
      if (j == 0 || j == 3) sum += x;
      s = s x ",";
    }
    print s (sum > 1.0 ? 1 : 0);
  }
}' > train.csv

TRAIN_FLAGS="--data train.csv --depth 3 --key-bits 256"
PEERS="unix:$DIR/p0.sock,unix:$DIR/p1.sock,unix:$DIR/p2.sock"

echo "== baseline: single-process 3-party train =="
"$CLI" train $TRAIN_FLAGS --out base --parties 3 > baseline.log 2>&1

echo "== multi-process: 3 party processes, SIGKILL party 1 mid-training =="
mkdir -p ckpt
# launch <party-id> <log-suffix>: one party process in the background.
# PIDs are tracked explicitly ($(jobs -p) inside a command substitution
# is empty in some POSIX shells).
launch() {
  "$CLI" party --party-id "$1" --peers "$PEERS" $TRAIN_FLAGS \
      --out multi --checkpoint-dir ckpt 2> "party$1$2.log" &
  LAST_PID=$!
  PIDS="$PIDS $LAST_PID"
}
launch 0 ""
P0=$LAST_PID
launch 1 ""
VICTIM=$LAST_PID
launch 2 ""
P2=$LAST_PID

# Let training get past mesh establishment and the first checkpoints,
# then kill the victim without any chance to clean up.
sleep 2
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true
echo "   party 1 (pid $VICTIM) SIGKILLed; relaunching"
launch 1 ".relaunch"
P1B=$LAST_PID

FAIL=0
for PID in $P0 $P2 $P1B; do
  wait "$PID" || FAIL=1
done
if [ "$FAIL" -ne 0 ]; then
  echo "FAIL: a party process exited non-zero"
  tail -n 5 party*.log || true
  exit 1
fi

echo "== comparing model fingerprints =="
for i in 0 1 2; do
  if ! cmp -s "base.party$i.bin" "multi.party$i.bin"; then
    echo "FAIL: party $i model differs from fault-free baseline"
    echo "--- party logs ---"
    tail -n 3 party*.log || true
    exit 1
  fi
done
echo "PASS: all 3 model views bit-identical to the fault-free baseline"
