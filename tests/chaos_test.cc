// Chaos harness, two tiers.
//
// Tier 1 (ChaosTest): sweeps seeded *fatal-only* fault schedules
// (net/fault.h, FaultMix::kFatalOnly) across the MPC engine,
// basic/enhanced training, prediction, and the malicious checks,
// asserting the security-with-abort contract — every schedule terminates
// within a short deadline with a clean error Status naming a party, never
// a hang or a crash.
//
// Tier 2 (ChaosRecoveryTest): sweeps *transient-only* and crash-recovery
// schedules, asserting the stronger survives-and-matches contract — the
// run completes despite the faults AND every party's trained tree
// (including ciphertext vectors and secret shares) bit-matches the
// fault-free run with the same seed.
//
// Seed counts are environment-tunable so CI can shrink the sweep under
// TSan (PIVOT_CHAOS_MPC_SEEDS, PIVOT_CHAOS_PROTO_SEEDS,
// PIVOT_CHAOS_RECOVERY_SEEDS) and relax the per-run deadline for
// sanitizer slowdown (PIVOT_CHAOS_DEADLINE_MS). A failing seed reproduces
// deterministically: re-run the test and look for the seed printed with
// the failure.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <mutex>

#include "common/sha256.h"
#include "data/synthetic.h"
#include "mpc/engine.h"
#include "net/codec.h"
#include "net/fault.h"
#include "net/network.h"
#include "pivot/checkpoint.h"
#include "pivot/malicious.h"
#include "pivot/prediction.h"
#include "pivot/runner.h"
#include "pivot/trainer.h"
#include "serve/serving_session.h"

namespace pivot {
namespace {

// Short receive timeout so dropped/delayed messages surface quickly;
// injected delays and stalls sleep kFatalMs > timeout so they reliably
// register as peer timeouts instead of hiding inside the jitter budget.
constexpr int kRecvTimeoutMs = 250;
constexpr int kFatalMs = 2 * kRecvTimeoutMs;
constexpr int kParties = 3;

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

int DeadlineMs() { return EnvInt("PIVOT_CHAOS_DEADLINE_MS", 5'000); }

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Every non-OK chaos result must name a party: either the root-cause
// prefix RunParties adds or the abort origin recorded by the network.
void ExpectNamesParty(const Status& st, uint64_t seed) {
  EXPECT_NE(st.message().find("party"), std::string::npos)
      << "seed " << seed << ": " << st.ToString();
}

Dataset TinyClassification() {
  ClassificationSpec spec;
  spec.num_samples = 16;
  spec.num_features = 6;
  spec.num_classes = 2;
  spec.class_separation = 2.5;
  spec.seed = 17;
  return MakeClassification(spec);
}

PivotParams ChaosParams(int key_bits) {
  PivotParams params;
  params.tree.task = TreeTask::kClassification;
  params.tree.num_classes = 2;
  params.tree.max_depth = 2;
  params.tree.max_splits = 4;
  params.tree.min_samples_split = 5;
  params.key_bits = key_bits;
  return params;
}

// Runs `seeds` seeded schedules of `body` through RunFederation on the
// tiny dataset, asserting each terminates within the deadline and names a
// party on error. Returns the number of runs that surfaced an error.
int SweepFederation(int seeds, uint64_t salt, int key_bits, uint64_t max_op,
                    uint64_t max_msg,
                    const std::function<Status(PartyContext&)>& body) {
  const Dataset data = TinyClassification();
  FederationConfig cfg;
  cfg.num_parties = kParties;
  cfg.params = ChaosParams(key_bits);
  cfg.net.recv_timeout_ms = kRecvTimeoutMs;
  int errored = 0;
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = salt + static_cast<uint64_t>(s);
    cfg.fault_plan = FaultPlan::FromSeed(seed, kParties, kFatalMs, max_op,
                                         max_msg, FaultMix::kFatalOnly);
    const auto start = std::chrono::steady_clock::now();
    const Status st = RunFederation(data, cfg, body);
    EXPECT_LT(ElapsedMs(start), DeadlineMs())
        << "seed " << seed << " overran the deadline; plan: "
        << cfg.fault_plan.ToString();
    if (!st.ok()) {
      ++errored;
      ExpectNamesParty(st, seed);
    }
  }
  return errored;
}

// ---------------------------------------------------------------------------
// MPC engine sweep: cheap (no Paillier), dense traffic, and self-checking
// — every party opens every value and verifies it, so even a silent bit
// flip in a share surfaces as an error.
// ---------------------------------------------------------------------------

TEST(ChaosTest, MpcEngineSweep) {
  const int seeds = EnvInt("PIVOT_CHAOS_MPC_SEEDS", 120);
  int errored = 0;
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = 0xA0000000ULL + static_cast<uint64_t>(s);
    InMemoryNetwork net(kParties, kRecvTimeoutMs);
    net.set_fault_plan(FaultPlan::FromSeed(seed, kParties, kFatalMs,
                                           /*max_op=*/40, /*max_msg=*/12,
                                           FaultMix::kFatalOnly));
    const auto start = std::chrono::steady_clock::now();
    Status st = RunParties(net, [&](int id, Endpoint& ep) -> Status {
      Preprocessing prep(id, kParties, /*seed=*/0xC0FFEE);
      MpcEngine eng(&ep, &prep, /*personal_seed=*/seed ^ id);
      for (int r = 0; r < 32; ++r) {
        PIVOT_ASSIGN_OR_RETURN(u128 share, eng.Input(r % kParties, r));
        PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(share));
        if (opened != FpFromSigned(r)) {
          return Status::ProtocolError(
              "opened value mismatch (corrupted share?)");
        }
      }
      return Status::Ok();
    });
    EXPECT_LT(ElapsedMs(start), DeadlineMs()) << "seed " << seed;
    // This workload performs far more than max_op network operations per
    // party and max_msg messages per channel, so the anchor fault (or an
    // earlier compound fault) always fires.
    EXPECT_NE(net.fired_fault_mask(), 0u) << "seed " << seed;
    if (!st.ok()) {
      ++errored;
      ExpectNamesParty(st, seed);
    }
  }
  // Dense traffic + value self-checks: (nearly) every schedule must
  // surface an error, not silently succeed.
  EXPECT_GE(errored, seeds * 9 / 10);
}

// ---------------------------------------------------------------------------
// Protocol sweeps over the full Pivot stack.
// ---------------------------------------------------------------------------

TEST(ChaosTest, BasicTrainingSweep) {
  const int seeds = EnvInt("PIVOT_CHAOS_PROTO_SEEDS", 25);
  const int errored = SweepFederation(
      seeds, /*salt=*/0xB0000000ULL, /*key_bits=*/256, /*max_op=*/40,
      /*max_msg=*/12, [](PartyContext& ctx) -> Status {
        TrainTreeOptions opts;
        opts.protocol = Protocol::kBasic;
        PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
        (void)tree;
        return Status::Ok();
      });
  EXPECT_GE(errored, seeds / 2);
}

TEST(ChaosTest, EnhancedTrainingSweep) {
  const int seeds = EnvInt("PIVOT_CHAOS_PROTO_SEEDS", 25);
  const int errored = SweepFederation(
      seeds, /*salt=*/0xC0000000ULL, /*key_bits=*/384, /*max_op=*/40,
      /*max_msg=*/12, [](PartyContext& ctx) -> Status {
        TrainTreeOptions opts;
        opts.protocol = Protocol::kEnhanced;
        PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
        (void)tree;
        return Status::Ok();
      });
  EXPECT_GE(errored, seeds / 2);
}

// Hand-crafted public basic-protocol tree (party 0 splits on its first
// feature) so prediction/serving sweeps skip training.
PivotTree TinyPublicTree() {
  PivotTree tree;
  tree.protocol = Protocol::kBasic;
  tree.task = TreeTask::kClassification;
  tree.num_classes = 2;
  PivotNode root;
  root.owner = 0;
  root.feature_local = 0;
  root.threshold = 0.0;
  const int root_id = tree.AddNode(root);
  PivotNode leaf;
  leaf.is_leaf = true;
  leaf.leaf_value = 0.0;
  tree.nodes[root_id].left = tree.AddNode(leaf);
  leaf.leaf_value = 1.0;
  tree.nodes[root_id].right = tree.AddNode(leaf);
  return tree;
}

TEST(ChaosTest, BasicPredictionSweep) {
  const int seeds = EnvInt("PIVOT_CHAOS_PROTO_SEEDS", 25);
  const PivotTree tree = TinyPublicTree();
  const Dataset data = TinyClassification();
  std::vector<std::vector<std::vector<double>>> slices;
  for (int p = 0; p < kParties; ++p) {
    slices.push_back(SliceRowsForParty(data, p, kParties));
  }
  // Basic prediction exchanges only a handful of messages per party, so
  // fault indices stay small to keep them reachable.
  const int errored = SweepFederation(
      seeds, /*salt=*/0xD0000000ULL, /*key_bits=*/256, /*max_op=*/6,
      /*max_msg=*/3, [&](PartyContext& ctx) -> Status {
        PIVOT_ASSIGN_OR_RETURN(double pred,
                               PredictPivot(ctx, tree, slices[ctx.id()][0]));
        (void)pred;
        return Status::Ok();
      });
  // Corruption of a ciphertext can legitimately decrypt to garbage
  // without an error in the semi-honest model, so only a loose error
  // fraction is asserted here.
  EXPECT_GE(errored, seeds / 4);
}

// Serving tier: the batched serve loop (header broadcast + ciphertext-
// matrix hops + batched joint decryption) under fatal-only schedules must
// abort with a party-naming error within the deadline — a fault mid-batch
// must not leave the coordinator or a follower blocked on a queue or a
// socket.
TEST(ChaosTest, ServingSweep) {
  const int seeds = EnvInt("PIVOT_CHAOS_PROTO_SEEDS", 25);
  const PivotTree tree = TinyPublicTree();
  const Dataset data = TinyClassification();
  std::vector<std::vector<std::vector<double>>> slices;
  for (int p = 0; p < kParties; ++p) {
    slices.push_back(SliceRowsForParty(data, p, kParties));
  }
  const int errored = SweepFederation(
      seeds, /*salt=*/0x5E000000ULL, /*key_bits=*/256, /*max_op=*/12,
      /*max_msg=*/5, [&](PartyContext& ctx) -> Status {
        serve::ServeOptions opts;
        opts.batch_size = 4;
        opts.max_wait_ms = 0;
        // Keep the follower bound under the sweep deadline: a fault that
        // desyncs the batch announcement must fail fast, not serve out
        // the default two-minute budget.
        opts.follower_timeout_ms = kRecvTimeoutMs;
        serve::ServingSession session(ctx, tree, opts);
        serve::RequestQueue queue;
        for (const auto& row : slices[ctx.id()]) queue.Push(row);
        queue.Close();
        std::vector<double> preds;
        PIVOT_RETURN_IF_ERROR(session.Serve(queue, &preds).status());
        return Status::Ok();
      });
  // As with prediction: corrupted ciphertexts can decrypt to garbage
  // without an error in the semi-honest model, so only a loose error
  // fraction is asserted.
  EXPECT_GE(errored, seeds / 4);
}

TEST(ChaosTest, MaliciousConversionSweep) {
  const int seeds = EnvInt("PIVOT_CHAOS_PROTO_SEEDS", 25);
  const int errored = SweepFederation(
      seeds, /*salt=*/0xE0000000ULL, /*key_bits=*/256, /*max_op=*/20,
      /*max_msg=*/6, [](PartyContext& ctx) -> Status {
        std::vector<Ciphertext> cts;
        if (ctx.id() == 0) {
          for (int i = 0; i < 4; ++i) {
            cts.push_back(ctx.pk().Encrypt(BigInt(i), ctx.rng()));
          }
        }
        PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                               VerifiedCiphertextsToShares(ctx, cts, 0));
        (void)shares;
        return Status::Ok();
      });
  EXPECT_GE(errored, seeds / 2);
}

// ---------------------------------------------------------------------------
// Tier 2: survives-and-matches. Transient schedules must be masked by the
// reliable channel layer (and, for crashes, by checkpoint/resume), and
// the recovered run must be *bit-identical* to the fault-free run.
// ---------------------------------------------------------------------------

// Full per-party tree serialization for fingerprinting, covering the
// fields the public model codec (pivot/serialize.cc) intentionally omits:
// ciphertext vectors and this party's secret shares. Two runs that agree
// on these digests agree on every bit of trained state.
Bytes SerializeFullTree(const PivotTree& t) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(t.protocol));
  w.WriteU8(static_cast<uint8_t>(t.task));
  w.WriteU32(static_cast<uint32_t>(t.num_classes));
  w.WriteU64(t.nodes.size());
  for (const PivotNode& nd : t.nodes) {
    w.WriteU8(nd.is_leaf ? 1 : 0);
    w.WriteI64(nd.owner);
    w.WriteI64(nd.feature_local);
    w.WriteDouble(nd.threshold);
    w.WriteDouble(nd.leaf_value);
    EncodeU128(nd.threshold_share, w);
    EncodeU128(nd.leaf_share, w);
    w.WriteI64(nd.left);
    w.WriteI64(nd.right);
    w.WriteBytes(EncodeCiphertextVector(nd.leaf_mask));
    w.WriteU64(nd.lambda_slices.size());
    for (const auto& slice : nd.lambda_slices) {
      w.WriteBytes(EncodeCiphertextVector(slice));
    }
    w.WriteU64(nd.lambda_features.size());
    for (const auto& feats : nd.lambda_features) {
      w.WriteU64(feats.size());
      for (int f : feats) w.WriteI64(f);
    }
  }
  return w.Take();
}

// Trains one basic-protocol tree per party and captures each party's tree
// digest into `prints[party]`.
Status TrainAndFingerprint(const Dataset& data, const FederationConfig& cfg,
                           std::vector<Bytes>* prints) {
  prints->assign(kParties, {});
  std::mutex mu;
  return RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.protocol = Protocol::kBasic;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    const auto digest = Sha256::Hash(SerializeFullTree(tree));
    std::lock_guard<std::mutex> lock(mu);
    (*prints)[ctx.id()] = Bytes(digest.begin(), digest.end());
    return Status::Ok();
  });
}

FederationConfig RecoveryConfig() {
  FederationConfig cfg;
  cfg.num_parties = kParties;
  cfg.params = ChaosParams(256);
  cfg.net.recv_timeout_ms = kRecvTimeoutMs;
  // Fast backoff so masked drops recover well inside the recv timeout.
  cfg.net.backoff_base_ms = 2;
  cfg.net.backoff_max_ms = 50;
  return cfg;
}

TEST(ChaosRecoveryTest, TransientSweepCompletesAndBitMatches) {
  const int seeds = EnvInt("PIVOT_CHAOS_RECOVERY_SEEDS", 6);
  const Dataset data = TinyClassification();
  std::vector<Bytes> baseline;
  ASSERT_TRUE(
      TrainAndFingerprint(data, RecoveryConfig(), &baseline).ok());
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = 0xF0000000ULL + static_cast<uint64_t>(s);
    FederationConfig cfg = RecoveryConfig();
    cfg.fault_plan =
        FaultPlan::FromSeed(seed, kParties, kFatalMs, /*max_op=*/40,
                            /*max_msg=*/12, FaultMix::kTransientOnly);
    std::vector<Bytes> prints;
    const auto start = std::chrono::steady_clock::now();
    const Status st = TrainAndFingerprint(data, cfg, &prints);
    EXPECT_LT(ElapsedMs(start), DeadlineMs()) << "seed " << seed;
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString()
                         << "\nplan: " << cfg.fault_plan.ToString();
    for (int p = 0; p < kParties; ++p) {
      EXPECT_EQ(prints[p], baseline[p])
          << "party " << p << " diverged under seed " << seed
          << "\nplan: " << cfg.fault_plan.ToString();
    }
  }
}

// Transient drops/corrupts/delays during serving must be masked by the
// reliable channel layer: every serve completes and the predictions
// bit-match the fault-free run.
TEST(ChaosRecoveryTest, ServingTransientSweepCompletesAndMatches) {
  const int seeds = EnvInt("PIVOT_CHAOS_RECOVERY_SEEDS", 6);
  const PivotTree tree = TinyPublicTree();
  const Dataset data = TinyClassification();
  auto serve_all = [&](const FederationConfig& cfg,
                       std::vector<double>* out) -> Status {
    std::mutex mu;
    return RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
      serve::ServeOptions opts;
      opts.batch_size = 4;
      opts.max_wait_ms = 0;
      serve::ServingSession session(ctx, tree, opts);
      serve::RequestQueue queue;
      for (const auto& row : SliceRowsForParty(data, ctx.id(), kParties)) {
        queue.Push(row);
      }
      queue.Close();
      std::vector<double> preds;
      PIVOT_RETURN_IF_ERROR(session.Serve(queue, &preds).status());
      if (ctx.id() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        *out = std::move(preds);
      }
      return Status::Ok();
    });
  };
  std::vector<double> baseline;
  ASSERT_TRUE(serve_all(RecoveryConfig(), &baseline).ok());
  ASSERT_EQ(baseline.size(), data.num_samples());
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = 0x6E000000ULL + static_cast<uint64_t>(s);
    FederationConfig cfg = RecoveryConfig();
    cfg.fault_plan =
        FaultPlan::FromSeed(seed, kParties, kFatalMs, /*max_op=*/12,
                            /*max_msg=*/5, FaultMix::kTransientOnly);
    std::vector<double> preds;
    const auto start = std::chrono::steady_clock::now();
    const Status st = serve_all(cfg, &preds);
    EXPECT_LT(ElapsedMs(start), DeadlineMs()) << "seed " << seed;
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString()
                         << "\nplan: " << cfg.fault_plan.ToString();
    EXPECT_EQ(preds, baseline) << "predictions diverged under seed " << seed
                               << "\nplan: " << cfg.fault_plan.ToString();
  }
}

TEST(ChaosRecoveryTest, CrashRecoveryResumesAndBitMatches) {
  const int seeds = EnvInt("PIVOT_CHAOS_RECOVERY_SEEDS", 6);
  const Dataset data = TinyClassification();
  std::vector<Bytes> baseline;
  ASSERT_TRUE(
      TrainAndFingerprint(data, RecoveryConfig(), &baseline).ok());
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = 0x1F000000ULL + static_cast<uint64_t>(s);
    FederationConfig cfg = RecoveryConfig();
    cfg.fault_plan =
        FaultPlan::FromSeed(seed, kParties, kFatalMs, /*max_op=*/40,
                            /*max_msg=*/12, FaultMix::kCrashRecovery);
    cfg.checkpoint = std::make_shared<FederationCheckpoint>(kParties);
    cfg.max_restarts = 2;
    std::vector<Bytes> prints;
    const auto start = std::chrono::steady_clock::now();
    const Status st = TrainAndFingerprint(data, cfg, &prints);
    // Restarts redo work, so allow a couple of deadlines.
    EXPECT_LT(ElapsedMs(start), 3.0 * DeadlineMs()) << "seed " << seed;
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString()
                         << "\nplan: " << cfg.fault_plan.ToString();
    for (int p = 0; p < kParties; ++p) {
      EXPECT_EQ(prints[p], baseline[p])
          << "party " << p << " diverged under seed " << seed
          << "\nplan: " << cfg.fault_plan.ToString();
    }
  }
}

// The parallel crypto kernels promise thread-count invariance (DESIGN.md,
// "Parallelism model"): trained state must be bit-identical whether the
// batched Paillier ops run sequentially or fanned out on the shared pool.
TEST(ChaosRecoveryTest, CryptoThreadCountDoesNotChangeFingerprints) {
  const Dataset data = TinyClassification();
  FederationConfig sequential = RecoveryConfig();
  sequential.params.crypto_threads = 1;
  std::vector<Bytes> baseline;
  ASSERT_TRUE(TrainAndFingerprint(data, sequential, &baseline).ok());
  FederationConfig fanned = RecoveryConfig();
  fanned.params.crypto_threads = 4;
  // Fanning out 4 crypto workers per party oversubscribes small/instrumented
  // hosts (TSan runs this test too); a longer recv timeout only slows
  // failure detection, it cannot change the trained bits.
  fanned.net.recv_timeout_ms = 8 * kRecvTimeoutMs;
  std::vector<Bytes> prints;
  ASSERT_TRUE(TrainAndFingerprint(data, fanned, &prints).ok());
  for (int p = 0; p < kParties; ++p) {
    EXPECT_EQ(prints[p], baseline[p])
        << "party " << p << " diverged between crypto_threads 1 and 4";
  }
}

// Thread-count invariance must also hold across a crash/resume boundary:
// the checkpoint carries the randomness-pool cursor (snapshot v2), so a
// parallel run that restarts mid-tree still lands on the sequential
// fault-free fingerprints.
TEST(ChaosRecoveryTest, CrashRecoveryBitMatchesWithParallelCrypto) {
  const Dataset data = TinyClassification();
  std::vector<Bytes> baseline;
  ASSERT_TRUE(
      TrainAndFingerprint(data, RecoveryConfig(), &baseline).ok());
  FederationConfig cfg = RecoveryConfig();
  cfg.params.crypto_threads = 4;
  // See CryptoThreadCountDoesNotChangeFingerprints: absorb sanitizer
  // slowdown under 4-way fan-out. Transient delays are 1-20 ms, so the
  // longer timeout still masks them and still detects the crash.
  cfg.net.recv_timeout_ms = 8 * kRecvTimeoutMs;
  cfg.fault_plan =
      FaultPlan::FromSeed(0x2F000000ULL, kParties, kFatalMs, /*max_op=*/40,
                          /*max_msg=*/12, FaultMix::kCrashRecovery);
  cfg.checkpoint = std::make_shared<FederationCheckpoint>(kParties);
  cfg.max_restarts = 2;
  std::vector<Bytes> prints;
  const Status st = TrainAndFingerprint(data, cfg, &prints);
  ASSERT_TRUE(st.ok()) << st.ToString()
                       << "\nplan: " << cfg.fault_plan.ToString();
  for (int p = 0; p < kParties; ++p) {
    EXPECT_EQ(prints[p], baseline[p])
        << "party " << p << " diverged under parallel crypto + restart";
  }
}

// A fault that survives retransmission (fatal corrupt) must exhaust the
// retry budget and abort within the tier-1 latency bound — recovery
// machinery must not turn a persistent fault into a slow failure.
TEST(ChaosRecoveryTest, BudgetExhaustionAbortsWithinDeadline) {
  const Dataset data = TinyClassification();
  FederationConfig cfg = RecoveryConfig();
  cfg.net.retry_budget = 4;
  FaultAction corrupt;
  corrupt.kind = FaultKind::kCorrupt;
  corrupt.party = 1;
  corrupt.peer = -1;
  corrupt.nth = 2;
  corrupt.bit = 13;
  corrupt.fatal = true;
  cfg.fault_plan.Add(corrupt);
  std::vector<Bytes> prints;
  const auto start = std::chrono::steady_clock::now();
  const Status st = TrainAndFingerprint(data, cfg, &prints);
  EXPECT_LT(ElapsedMs(start), DeadlineMs());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("retry budget exhausted"), std::string::npos)
      << st.ToString();
  ExpectNamesParty(st, /*seed=*/0);
}

// With the fault layer compiled in but no plan installed, everything
// still works — the hot path is one null check.
TEST(ChaosTest, FaultFreeBaselineSucceeds) {
  const Dataset data = TinyClassification();
  FederationConfig cfg;
  cfg.num_parties = kParties;
  cfg.params = ChaosParams(256);
  NetworkStats stats;
  Status st = RunFederation(
      data, cfg,
      [](PartyContext& ctx) -> Status {
        TrainTreeOptions opts;
        opts.protocol = Protocol::kBasic;
        PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
        return tree.nodes.empty() ? Status::Internal("empty tree")
                                  : Status::Ok();
      },
      &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_EQ(stats.bytes_sent, stats.bytes_received);
  EXPECT_GT(stats.rounds, 0u);
}

}  // namespace
}  // namespace pivot
