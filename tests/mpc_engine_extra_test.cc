#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/fixed_point.h"
#include "mpc/engine.h"
#include "net/network.h"

namespace pivot {
namespace {

double FromFix(u128 v) {
  return FixedToDouble(static_cast<int64_t>(FpToSigned(v)));
}

void RunMpc(int m, const std::function<Status(MpcEngine&)>& body,
            uint64_t seed = 555) {
  InMemoryNetwork net(m);
  Status st = RunParties(net, [&](int id, Endpoint& ep) -> Status {
    Preprocessing prep(id, m, seed);
    MpcEngine eng(&ep, &prep, seed * 7 + id);
    return body(eng);
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

class EngineExtraTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineExtraTest, AbsMatchesPlain) {
  RunMpc(GetParam(), [](MpcEngine& eng) -> Status {
    std::vector<i128> xs = {0, 1, -1, 100, -100, (i128{1} << 40),
                            -(i128{1} << 40)};
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, xs, xs.size()));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> abs, eng.AbsVec(shares, 64));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(abs));
    for (size_t i = 0; i < xs.size(); ++i) {
      i128 expected = xs[i] < 0 ? -xs[i] : xs[i];
      if (FpToSigned(opened[i]) != expected) {
        return Status::Internal("abs mismatch");
      }
    }
    return Status::Ok();
  });
}

TEST_P(EngineExtraTest, SignNonzeroMatchesPlain) {
  RunMpc(GetParam(), [](MpcEngine& eng) -> Status {
    std::vector<i128> xs = {5, -5, 1, -1, 123456, -99};
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, xs, xs.size()));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> sign,
                           eng.SignNonzeroVec(shares, 64));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(sign));
    for (size_t i = 0; i < xs.size(); ++i) {
      i128 expected = xs[i] < 0 ? -1 : 1;
      if (FpToSigned(opened[i]) != expected) {
        return Status::Internal("sign mismatch");
      }
    }
    return Status::Ok();
  });
}

TEST_P(EngineExtraTest, MinMatchesPlain) {
  RunMpc(GetParam(), [](MpcEngine& eng) -> Status {
    std::vector<i128> a = {3, -3, 10, 0};
    std::vector<i128> b = {5, -5, 10, -1};
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> sa, eng.InputVector(0, a, 4));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> sb, eng.InputVector(0, b, 4));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> mins, eng.MinVec(sa, sb, 64));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(mins));
    for (int i = 0; i < 4; ++i) {
      if (FpToSigned(opened[i]) != std::min(a[i], b[i])) {
        return Status::Internal("min mismatch");
      }
    }
    return Status::Ok();
  });
}

TEST_P(EngineExtraTest, ArgminFindsMinimum) {
  RunMpc(GetParam(), [](MpcEngine& eng) -> Status {
    std::vector<i128> vals = {7, 3, -2, 8, -2, 0};
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, vals, vals.size()));
    PIVOT_ASSIGN_OR_RETURN(MpcEngine::ArgmaxShares best,
                           eng.Argmin(shares, 64));
    PIVOT_ASSIGN_OR_RETURN(u128 idx, eng.Open(best.index));
    PIVOT_ASSIGN_OR_RETURN(u128 min, eng.Open(best.max));
    if (FpToSigned(min) != -2) return Status::Internal("argmin value");
    if (FpToSigned(idx) != 2) return Status::Internal("argmin index");
    return Status::Ok();
  });
}

INSTANTIATE_TEST_SUITE_P(Parties, EngineExtraTest, ::testing::Values(2, 3));

TEST(EngineSqrtTest, SqrtAccuracy) {
  RunMpc(2, [](MpcEngine& eng) -> Status {
    std::vector<double> xs = {0.01, 0.25, 1.0, 2.0, 9.0, 100.0, 54321.0};
    std::vector<i128> raw;
    for (double x : xs) raw.push_back(FixedFromDouble(x));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, raw, raw.size()));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> roots, eng.SqrtFixedVec(shares));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(roots));
    for (size_t i = 0; i < xs.size(); ++i) {
      const double got = FromFix(opened[i]);
      const double want =
          std::sqrt(FixedToDouble(FixedFromDouble(xs[i])));
      const double tol = std::max(2e-3 * want, 5.0 / (1 << 16));
      if (std::abs(got - want) > tol) {
        return Status::Internal("sqrt off at x=" + std::to_string(xs[i]) +
                                ": got " + std::to_string(got) + " want " +
                                std::to_string(want));
      }
    }
    return Status::Ok();
  });
}

TEST(EngineSqrtTest, SqrtOfZeroIsZero) {
  RunMpc(2, [](MpcEngine& eng) -> Status {
    PIVOT_ASSIGN_OR_RETURN(u128 zero, eng.Input(0, 0));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> roots, eng.SqrtFixedVec({zero}));
    PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(roots[0]));
    if (FpToSigned(opened) != 0) return Status::Internal("sqrt(0) != 0");
    return Status::Ok();
  });
}

TEST(EngineSqrtTest, SqrtSquareRoundTrip) {
  // sqrt(x)^2 ~ x within fixed-point tolerance.
  RunMpc(3, [](MpcEngine& eng) -> Status {
    for (double x : {0.5, 4.0, 1000.0}) {
      PIVOT_ASSIGN_OR_RETURN(u128 s, eng.Input(0, FixedFromDouble(x)));
      PIVOT_ASSIGN_OR_RETURN(std::vector<u128> r, eng.SqrtFixedVec({s}));
      PIVOT_ASSIGN_OR_RETURN(u128 sq, eng.MulFixed(r[0], r[0]));
      PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(sq));
      if (std::abs(FromFix(opened) - x) > 0.01 * x + 0.01) {
        return Status::Internal("sqrt round trip off for " + std::to_string(x));
      }
    }
    return Status::Ok();
  });
}

}  // namespace
}  // namespace pivot
