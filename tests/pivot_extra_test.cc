#include <gtest/gtest.h>

#include <mutex>

#include "data/synthetic.h"
#include "pivot/ensemble.h"
#include "pivot/prediction.h"
#include "pivot/runner.h"
#include "pivot/serialize.h"
#include "pivot/trainer.h"

namespace pivot {
namespace {

Dataset TinyClassification(int n, int d, int classes, uint64_t seed) {
  ClassificationSpec spec;
  spec.num_samples = n;
  spec.num_features = d;
  spec.num_classes = classes;
  spec.class_separation = 2.5;
  spec.seed = seed;
  return MakeClassification(spec);
}

TEST(PivotExtraTest, SuperClientNeedNotBePartyZero) {
  Dataset data = TinyClassification(40, 4, 2, 71);
  FederationConfig cfg;
  cfg.num_parties = 3;
  cfg.super_client = 2;  // labels live at party 2
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 2;
  cfg.params.key_bits = 256;
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    if ((ctx.id() == 2) != ctx.is_super()) {
      return Status::Internal("super flag wrong");
    }
    if (!ctx.is_super() && !ctx.labels().empty()) {
      return Status::Internal("labels leaked to non-super party");
    }
    TrainTreeOptions opts;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    if (tree.nodes.empty()) return Status::Internal("empty tree");
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotExtraTest, StumpPredictionWorks) {
  // min_samples_split larger than n forces a single-leaf tree; both
  // prediction protocols must handle the degenerate shape.
  Dataset data = TinyClassification(20, 4, 2, 72);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.min_samples_split = 100;
  cfg.params.key_bits = 384;
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions basic;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, basic));
    if (tree.NumInternalNodes() != 0) return Status::Internal("not a stump");
    auto rows = SliceRowsForParty(data, ctx.id(), 2);
    PIVOT_ASSIGN_OR_RETURN(double pred, PredictPivot(ctx, tree, rows[0]));
    if (pred != tree.nodes[0].leaf_value) {
      return Status::Internal("stump prediction mismatch");
    }
    TrainTreeOptions enh;
    enh.protocol = Protocol::kEnhanced;
    PIVOT_ASSIGN_OR_RETURN(PivotTree etree, TrainPivotTree(ctx, enh));
    PIVOT_ASSIGN_OR_RETURN(double epred, PredictPivot(ctx, etree, rows[0]));
    if (epred != pred) return Status::Internal("enhanced stump mismatch");
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotExtraTest, GbdtClassificationEndToEnd) {
  Dataset data = TinyClassification(36, 4, 2, 73);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params.tree.task = TreeTask::kClassification;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 2;
  cfg.params.key_bits = 384;
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    EnsembleOptions opts;
    opts.num_trees = 2;
    PIVOT_ASSIGN_OR_RETURN(PivotEnsemble model, TrainPivotGbdt(ctx, opts));
    if (model.forests.size() != 2) {
      return Status::Internal("one-vs-rest forest count wrong");
    }
    if (model.forests[0].size() != 2 || model.forests[1].size() != 2) {
      return Status::Internal("rounds per class wrong");
    }
    auto rows = SliceRowsForParty(data, ctx.id(), 2);
    int correct = 0;
    const int probe = 8;
    for (int i = 0; i < probe; ++i) {
      PIVOT_ASSIGN_OR_RETURN(double pred,
                             PredictPivotEnsemble(ctx, model, rows[i]));
      if (pred != 0.0 && pred != 1.0) {
        return Status::Internal("class out of range");
      }
      correct += (pred == data.labels[i]);
    }
    if (correct < probe / 2) return Status::Internal("GBDT below chance");
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotExtraTest, EnhancedForestMajorityVote) {
  Dataset data = TinyClassification(40, 4, 2, 74);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 2;
  cfg.params.key_bits = 384;
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    EnsembleOptions opts;
    opts.protocol = Protocol::kEnhanced;
    opts.num_trees = 3;
    PIVOT_ASSIGN_OR_RETURN(PivotEnsemble model, TrainPivotForest(ctx, opts));
    auto rows = SliceRowsForParty(data, ctx.id(), 2);
    for (int i = 0; i < 4; ++i) {
      PIVOT_ASSIGN_OR_RETURN(double pred,
                             PredictPivotEnsemble(ctx, model, rows[i]));
      if (pred != 0.0 && pred != 1.0) {
        return Status::Internal("vote out of range");
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotExtraTest, DpRegressionTreeRuns) {
  RegressionSpec spec;
  spec.num_samples = 40;
  spec.num_features = 4;
  spec.seed = 75;
  Dataset data = MakeRegression(spec);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params.tree.task = TreeTask::kRegression;
  cfg.params.tree.max_depth = 2;
  cfg.params.key_bits = 256;
  cfg.params.dp.enabled = true;
  cfg.params.dp.epsilon_per_query = 2.0;
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    for (const PivotNode& n : tree.nodes) {
      if (n.is_leaf && std::abs(n.leaf_value) > 100.0) {
        return Status::Internal("DP leaf unreasonable");
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotExtraTest, ReloadedEnhancedTreePredicts) {
  // Serialize each party's enhanced view, reload, and predict with the
  // reloaded model: shares must survive the round trip.
  Dataset data = TinyClassification(40, 4, 2, 76);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 2;
  cfg.params.key_bits = 384;
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.protocol = Protocol::kEnhanced;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    PIVOT_ASSIGN_OR_RETURN(PivotTree reloaded,
                           DeserializePivotTree(SerializePivotTree(tree)));
    auto rows = SliceRowsForParty(data, ctx.id(), 2);
    for (int i = 0; i < 3; ++i) {
      PIVOT_ASSIGN_OR_RETURN(double a, PredictPivot(ctx, tree, rows[i]));
      PIVOT_ASSIGN_OR_RETURN(double b, PredictPivot(ctx, reloaded, rows[i]));
      if (a != b) return Status::Internal("reloaded model diverges");
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotExtraTest, TrainingIsDeterministicInSeeds) {
  Dataset data = TinyClassification(40, 4, 2, 77);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 2;
  cfg.params.key_bits = 256;

  auto train_once = [&]() {
    std::vector<PivotNode> nodes;
    std::mutex mu;
    Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
      TrainTreeOptions opts;
      PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
      if (ctx.id() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        nodes = tree.nodes;
      }
      return Status::Ok();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return nodes;
  };
  auto a = train_once();
  auto b = train_once();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].owner, b[i].owner);
    EXPECT_DOUBLE_EQ(a[i].threshold, b[i].threshold);
    EXPECT_DOUBLE_EQ(a[i].leaf_value, b[i].leaf_value);
  }
}

}  // namespace
}  // namespace pivot
