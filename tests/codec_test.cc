#include "net/codec.h"

#include <gtest/gtest.h>

#include <limits>
#include <utility>
#include <vector>

#include "common/bytes.h"

// Malformed-input coverage for the wire codecs: every decoder must turn
// truncated buffers, hostile length prefixes, and garbage bytes into error
// Results — never an out-of-bounds read or abort. The ASan/UBSan builds
// run these same paths with instrumentation.

namespace pivot {
namespace {

Bytes U64Prefix(uint64_t count) {
  ByteWriter w;
  w.WriteU64(count);
  return w.Take();
}

TEST(CodecMalformedTest, EmptyBufferIsError) {
  EXPECT_FALSE(DecodeBigIntVector(Bytes{}).ok());
  EXPECT_FALSE(DecodeU128Vector(Bytes{}).ok());
  EXPECT_FALSE(DecodeCiphertextVector(Bytes{}).ok());
}

TEST(CodecMalformedTest, TruncatedCountPrefixIsError) {
  // Fewer than the 8 bytes a u64 length prefix needs.
  Bytes partial{1, 2, 3};
  EXPECT_FALSE(DecodeBigIntVector(partial).ok());
  EXPECT_FALSE(DecodeU128Vector(partial).ok());
}

TEST(CodecMalformedTest, ZeroLengthVectorsDecodeEmpty) {
  Bytes empty_vec = U64Prefix(0);

  Result<std::vector<BigInt>> big = DecodeBigIntVector(empty_vec);
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  EXPECT_TRUE(big.value().empty());

  Result<std::vector<u128>> u = DecodeU128Vector(empty_vec);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_TRUE(u.value().empty());

  Result<std::vector<Ciphertext>> c = DecodeCiphertextVector(empty_vec);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(c.value().empty());
}

TEST(CodecMalformedTest, LengthPrefixExceedingBufferIsError) {
  // Claims 1000 entries but carries none.
  EXPECT_FALSE(DecodeBigIntVector(U64Prefix(1000)).ok());
  EXPECT_FALSE(DecodeU128Vector(U64Prefix(1000)).ok());
}

TEST(CodecMalformedTest, HostileLengthPrefixDoesNotOverflow) {
  // count * sizeof(entry) wraps around 2^64 for these counts; the bound
  // check must reject them rather than attempt a huge reserve/read.
  for (uint64_t count : {std::numeric_limits<uint64_t>::max(),
                         std::numeric_limits<uint64_t>::max() / 16 + 1,
                         uint64_t{1} << 62}) {
    EXPECT_FALSE(DecodeU128Vector(U64Prefix(count)).ok()) << count;
    EXPECT_FALSE(DecodeBigIntVector(U64Prefix(count)).ok()) << count;
  }
}

TEST(CodecMalformedTest, TruncatedBigIntVectorIsError) {
  std::vector<BigInt> values{BigInt(12345), BigInt(-67890), BigInt(1) << 200};
  Bytes full = EncodeBigIntVector(values);
  // Chop the buffer at every possible point; each truncation must decode
  // to an error, and the full buffer must round-trip.
  for (size_t len = 0; len < full.size(); ++len) {
    Bytes cut(full.begin(), full.begin() + static_cast<long>(len));
    EXPECT_FALSE(DecodeBigIntVector(cut).ok()) << "len=" << len;
  }
  Result<std::vector<BigInt>> back = DecodeBigIntVector(full);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), values);
}

TEST(CodecMalformedTest, TruncatedU128VectorIsError) {
  std::vector<u128> values{1, (static_cast<u128>(7) << 64) | 9, 0};
  Bytes full = EncodeU128Vector(values);
  for (size_t len = 0; len < full.size(); ++len) {
    Bytes cut(full.begin(), full.begin() + static_cast<long>(len));
    EXPECT_FALSE(DecodeU128Vector(cut).ok()) << "len=" << len;
  }
  Result<std::vector<u128>> back = DecodeU128Vector(full);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), values);
}

TEST(CodecMalformedTest, InvalidBigIntSignByteIsError) {
  // A single BigInt encodes as [sign u8][len u64][magnitude]. Corrupt the
  // sign byte (first byte after the vector count) to an invalid value.
  Bytes full = EncodeBigIntVector({BigInt(42)});
  ASSERT_GT(full.size(), 8u);
  full[8] = 2;  // valid values are 0 and 1
  EXPECT_FALSE(DecodeBigIntVector(full).ok());
}

TEST(CodecMalformedTest, BigIntMagnitudeLengthBeyondBufferIsError) {
  // Hand-build: count=1, sign=0, then a magnitude length prefix that
  // promises far more bytes than remain.
  ByteWriter w;
  w.WriteU64(1);
  w.WriteU8(0);
  w.WriteU64(1u << 20);  // ReadBytes length prefix
  Bytes data = w.Take();
  EXPECT_FALSE(DecodeBigIntVector(data).ok());
}

TEST(CodecMalformedTest, TrailingGarbageAfterU128IsIgnoredByCount) {
  // The decoders are count-driven; extra trailing bytes are not an error
  // at this layer (the transport delimits messages). Document that.
  std::vector<u128> values{5, 6};
  Bytes full = EncodeU128Vector(values);
  full.push_back(0xAB);
  Result<std::vector<u128>> back = DecodeU128Vector(full);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), values);
}

TEST(CodecMalformedTest, SingleU128Truncated) {
  ByteWriter w;
  w.WriteU64(42);  // only the low half of a u128
  Bytes data = w.Take();
  ByteReader r(data);
  EXPECT_FALSE(DecodeU128(r).ok());
}

// --- Ciphertext matrices (batched serving rounds) --------------------------

std::vector<Ciphertext> TestCiphertexts(size_t n) {
  std::vector<Ciphertext> cts;
  for (size_t i = 0; i < n; ++i) {
    cts.push_back(Ciphertext{(BigInt(1) << static_cast<int>(8 * i)) +
                             BigInt(static_cast<int64_t>(i))});
  }
  return cts;
}

TEST(CiphertextMatrixTest, RoundTripsShapeAndEntries) {
  const std::vector<Ciphertext> flat = TestCiphertexts(6);
  Bytes wire = EncodeCiphertextMatrix(2, 3, flat);
  Result<CiphertextMatrix> back = DecodeCiphertextMatrix(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().rows, 2u);
  EXPECT_EQ(back.value().cols, 3u);
  EXPECT_EQ(back.value().flat, flat);
}

TEST(CiphertextMatrixTest, EmptyMatrixRoundTrips) {
  Bytes wire = EncodeCiphertextMatrix(0, 5, {});
  Result<CiphertextMatrix> back = DecodeCiphertextMatrix(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().rows, 0u);
  EXPECT_EQ(back.value().cols, 5u);
  EXPECT_TRUE(back.value().flat.empty());
}

TEST(CiphertextMatrixTest, EveryTruncationIsError) {
  Bytes full = EncodeCiphertextMatrix(2, 2, TestCiphertexts(4));
  for (size_t len = 0; len < full.size(); ++len) {
    Bytes cut(full.begin(), full.begin() + static_cast<long>(len));
    EXPECT_FALSE(DecodeCiphertextMatrix(cut).ok()) << "len=" << len;
  }
}

TEST(CiphertextMatrixTest, ImplausibleShapeIsError) {
  // A header that promises far more entries than the buffer could hold
  // must be rejected before any allocation is attempted — including
  // rows*cols products that wrap around 2^64.
  for (auto [rows, cols] : std::vector<std::pair<uint64_t, uint64_t>>{
           {1u << 20, 1u << 20},
           {std::numeric_limits<uint64_t>::max(), 2},
           {2, std::numeric_limits<uint64_t>::max()},
           {uint64_t{1} << 33, uint64_t{1} << 33}}) {
    ByteWriter w;
    w.WriteU64(rows);
    w.WriteU64(cols);
    Bytes data = w.Take();
    EXPECT_FALSE(DecodeCiphertextMatrix(data).ok())
        << rows << "x" << cols;
  }
}

}  // namespace
}  // namespace pivot
