#include "bigint/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "bigint/prime.h"
#include "common/rng.h"

namespace pivot {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsNegative());
  EXPECT_EQ(z.BitLength(), 0);
  EXPECT_EQ(z.ToDecString(), "0");
}

TEST(BigIntTest, SmallConstruction) {
  EXPECT_EQ(BigInt(42).ToDecString(), "42");
  EXPECT_EQ(BigInt(-42).ToDecString(), "-42");
  EXPECT_EQ(BigInt(uint64_t{18446744073709551615ULL}).ToDecString(),
            "18446744073709551615");
  EXPECT_EQ(BigInt(INT64_MIN).ToDecString(), "-9223372036854775808");
}

TEST(BigIntTest, ComparisonOperators) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt(7), BigInt(3));
  EXPECT_EQ(BigInt(0), BigInt(0));
  EXPECT_EQ(BigInt(0), -BigInt(0));
  BigInt big = BigInt(1) << 200;
  EXPECT_GT(big, BigInt(INT64_MAX));
  EXPECT_LT(-big, BigInt(INT64_MIN));
}

TEST(BigIntTest, AdditionSubtractionSmall) {
  EXPECT_EQ((BigInt(3) + BigInt(4)).ToI64().value(), 7);
  EXPECT_EQ((BigInt(3) - BigInt(4)).ToI64().value(), -1);
  EXPECT_EQ((BigInt(-3) + BigInt(-4)).ToI64().value(), -7);
  EXPECT_EQ((BigInt(-3) - BigInt(-4)).ToI64().value(), 1);
  EXPECT_EQ((BigInt(5) + BigInt(-5)).ToI64().value(), 0);
}

TEST(BigIntTest, CarryPropagation) {
  BigInt max64(~uint64_t{0});
  BigInt sum = max64 + BigInt(1);
  EXPECT_EQ(sum.ToHexString(), "10000000000000000");
  EXPECT_EQ((sum - BigInt(1)).ToHexString(), "ffffffffffffffff");
}

TEST(BigIntTest, MultiplicationSmall) {
  EXPECT_EQ((BigInt(6) * BigInt(7)).ToI64().value(), 42);
  EXPECT_EQ((BigInt(-6) * BigInt(7)).ToI64().value(), -42);
  EXPECT_EQ((BigInt(-6) * BigInt(-7)).ToI64().value(), 42);
  EXPECT_TRUE((BigInt(0) * BigInt(123)).IsZero());
}

TEST(BigIntTest, MultiplicationLarge) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  BigInt a(~uint64_t{0});
  BigInt sq = a * a;
  BigInt expected = (BigInt(1) << 128) - (BigInt(1) << 65) + BigInt(1);
  EXPECT_EQ(sq, expected);
}

TEST(BigIntTest, DivisionTruncationSemantics) {
  // C++ semantics: quotient rounds toward zero; remainder has dividend sign.
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToI64().value(), 3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).ToI64().value(), 1);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToI64().value(), -3);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToI64().value(), -1);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToI64().value(), -3);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToI64().value(), 1);
}

TEST(BigIntTest, DivModRandomizedAgainstNative) {
  Rng rng(101);
  for (int i = 0; i < 2000; ++i) {
    int64_t a = rng.NextInRange(-1000000000, 1000000000);
    int64_t b = rng.NextInRange(-100000, 100000);
    if (b == 0) continue;
    BigInt q = BigInt(a) / BigInt(b);
    BigInt r = BigInt(a) % BigInt(b);
    EXPECT_EQ(q.ToI64().value(), a / b) << a << "/" << b;
    EXPECT_EQ(r.ToI64().value(), a % b) << a << "%" << b;
  }
}

TEST(BigIntTest, DivModLargeIdentity) {
  // Property: a == q*b + r and |r| < |b| for random wide operands.
  Rng rng(202);
  for (int i = 0; i < 300; ++i) {
    BigInt a = BigInt::RandomBits(1 + static_cast<int>(rng.NextBelow(512)), rng);
    BigInt b = BigInt::RandomBits(1 + static_cast<int>(rng.NextBelow(256)), rng);
    if (b.IsZero()) continue;
    DivModResult dm = a.DivMod(b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder.Abs(), b.Abs());
    EXPECT_FALSE(dm.remainder.IsNegative());
  }
}

TEST(BigIntTest, KnuthDAddBackCase) {
  // A crafted case that exercises the rare "add back" branch of Knuth D:
  // dividend = 2^128 - 1, divisor = 2^64 + 3 style values.
  BigInt a = (BigInt(1) << 128) - BigInt(1);
  BigInt b = (BigInt(1) << 64) + BigInt(3);
  DivModResult dm = a.DivMod(b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder, b);
}

TEST(BigIntTest, Shifts) {
  BigInt one(1);
  EXPECT_EQ((one << 0), one);
  EXPECT_EQ((one << 1).ToI64().value(), 2);
  EXPECT_EQ((one << 64).ToHexString(), "10000000000000000");
  EXPECT_EQ(((one << 130) >> 130), one);
  EXPECT_EQ((BigInt(0xff) << 4).ToHexString(), "ff0");
  EXPECT_EQ((BigInt(0xff0) >> 4).ToHexString(), "ff");
  EXPECT_TRUE((one >> 1).IsZero());
}

TEST(BigIntTest, BitLengthAndTestBit) {
  EXPECT_EQ(BigInt(1).BitLength(), 1);
  EXPECT_EQ(BigInt(2).BitLength(), 2);
  EXPECT_EQ(BigInt(255).BitLength(), 8);
  EXPECT_EQ(BigInt(256).BitLength(), 9);
  EXPECT_EQ((BigInt(1) << 1000).BitLength(), 1001);
  BigInt v(0b1010);
  EXPECT_FALSE(v.TestBit(0));
  EXPECT_TRUE(v.TestBit(1));
  EXPECT_FALSE(v.TestBit(2));
  EXPECT_TRUE(v.TestBit(3));
  EXPECT_FALSE(v.TestBit(100));
}

TEST(BigIntTest, DecStringRoundTrip) {
  for (const char* s :
       {"0", "1", "-1", "123456789012345678901234567890",
        "-987654321098765432109876543210987654321"}) {
    BigInt v = BigInt::FromDecString(s).value();
    EXPECT_EQ(v.ToDecString(), s);
  }
}

TEST(BigIntTest, HexStringRoundTrip) {
  for (const char* s : {"1", "deadbeef", "ffffffffffffffffffffffffffffffff",
                        "-abc123"}) {
    BigInt v = BigInt::FromHexString(s).value();
    EXPECT_EQ(v.ToHexString(), s);
  }
}

TEST(BigIntTest, InvalidStringsRejected) {
  EXPECT_FALSE(BigInt::FromDecString("").ok());
  EXPECT_FALSE(BigInt::FromDecString("-").ok());
  EXPECT_FALSE(BigInt::FromDecString("12a").ok());
  EXPECT_FALSE(BigInt::FromHexString("xyz").ok());
}

TEST(BigIntTest, BytesRoundTrip) {
  Rng rng(303);
  for (int i = 0; i < 100; ++i) {
    BigInt v = BigInt::RandomBits(1 + static_cast<int>(rng.NextBelow(300)), rng);
    EXPECT_EQ(BigInt::FromBytes(v.ToBytes()), v);
  }
  EXPECT_TRUE(BigInt().ToBytes().empty());
}

TEST(BigIntTest, BytesPadded) {
  BigInt v(0x1234);
  Bytes padded = v.ToBytesPadded(8);
  ASSERT_EQ(padded.size(), 8u);
  EXPECT_EQ(padded[6], 0x12);
  EXPECT_EQ(padded[7], 0x34);
  EXPECT_EQ(BigInt::FromBytes(padded), v);
}

TEST(BigIntTest, ModNonNegative) {
  BigInt m(7);
  EXPECT_EQ(BigInt(-1).Mod(m).ToI64().value(), 6);
  EXPECT_EQ(BigInt(-8).Mod(m).ToI64().value(), 6);
  EXPECT_EQ(BigInt(15).Mod(m).ToI64().value(), 1);
  EXPECT_EQ(BigInt(0).Mod(m).ToI64().value(), 0);
}

TEST(BigIntTest, ModArithmetic) {
  BigInt m(101);
  EXPECT_EQ(BigInt(70).ModAdd(BigInt(50), m).ToI64().value(), 19);
  EXPECT_EQ(BigInt(10).ModSub(BigInt(20), m).ToI64().value(), 91);
  EXPECT_EQ(BigInt(20).ModMul(BigInt(30), m).ToI64().value(), 600 % 101);
}

TEST(BigIntTest, ModExpSmall) {
  EXPECT_EQ(BigInt(2).ModExp(BigInt(10), BigInt(1000)).ToI64().value(), 24);
  EXPECT_EQ(BigInt(3).ModExp(BigInt(0), BigInt(7)).ToI64().value(), 1);
  EXPECT_EQ(BigInt(5).ModExp(BigInt(3), BigInt(13)).ToI64().value(), 125 % 13);
}

TEST(BigIntTest, ModExpFermat) {
  // Fermat: a^(p-1) = 1 mod p for prime p.
  BigInt p = BigInt::FromDecString("1000000007").value();
  Rng rng(404);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::RandomBelow(p - BigInt(1), rng) + BigInt(1);
    EXPECT_TRUE(a.ModExp(p - BigInt(1), p).IsOne());
  }
}

TEST(BigIntTest, ModExpLargeAgainstSquareMultiply) {
  // Cross-check Montgomery path against naive repeated ModMul.
  Rng rng(505);
  BigInt m = BigInt::RandomBits(192, rng);
  if (!m.IsOdd()) m = m + BigInt(1);
  if (m < BigInt(3)) m = BigInt(3);
  for (int i = 0; i < 10; ++i) {
    BigInt base = BigInt::RandomBelow(m, rng);
    uint64_t e = rng.NextBelow(1000);
    BigInt expected(1);
    for (uint64_t j = 0; j < e; ++j) expected = expected.ModMul(base, m);
    EXPECT_EQ(base.ModExp(BigInt(e), m), expected) << "e=" << e;
  }
}

TEST(BigIntTest, ModExpEvenModulus) {
  EXPECT_EQ(BigInt(3).ModExp(BigInt(4), BigInt(100)).ToI64().value(), 81);
  EXPECT_EQ(BigInt(7).ModExp(BigInt(5), BigInt(16)).ToI64().value(),
            16807 % 16);
}

TEST(BigIntTest, ModInverse) {
  BigInt m(101);
  for (int64_t a = 1; a < 101; ++a) {
    BigInt inv = BigInt(a).ModInverse(m).value();
    EXPECT_TRUE(BigInt(a).ModMul(inv, m).IsOne()) << a;
  }
  EXPECT_FALSE(BigInt(0).ModInverse(m).ok());
  EXPECT_FALSE(BigInt(4).ModInverse(BigInt(8)).ok());
}

TEST(BigIntTest, ModInverseLarge) {
  Rng rng(606);
  BigInt p = GeneratePrime(128, rng);
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::RandomBelow(p - BigInt(1), rng) + BigInt(1);
    BigInt inv = a.ModInverse(p).value();
    EXPECT_TRUE(a.ModMul(inv, p).IsOne());
  }
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToI64().value(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToI64().value(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToI64().value(), 5);
  EXPECT_EQ(BigInt::Lcm(BigInt(4), BigInt(6)).ToI64().value(), 12);
  EXPECT_TRUE(BigInt::Lcm(BigInt(0), BigInt(5)).IsZero());
}

TEST(BigIntTest, ToI64Bounds) {
  EXPECT_EQ(BigInt(INT64_MAX).ToI64().value(), INT64_MAX);
  EXPECT_EQ(BigInt(INT64_MIN).ToI64().value(), INT64_MIN);
  EXPECT_FALSE((BigInt(INT64_MAX) + BigInt(1)).ToI64().ok());
  EXPECT_FALSE((BigInt(INT64_MIN) - BigInt(1)).ToI64().ok());
  EXPECT_FALSE(BigInt(-1).ToU64().ok());
}

TEST(BigIntTest, RandomBelowUniformCoverage) {
  Rng rng(707);
  BigInt bound(10);
  bool seen[10] = {};
  for (int i = 0; i < 500; ++i) {
    uint64_t v = BigInt::RandomBelow(bound, rng).ToU64().value();
    ASSERT_LT(v, 10u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(BigIntTest, RandomBitsWithinBound) {
  Rng rng(808);
  for (int bits : {1, 63, 64, 65, 127, 400}) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_LE(BigInt::RandomBits(bits, rng).BitLength(), bits);
    }
  }
}

TEST(BigIntTest, ArithmeticPropertyRandomized) {
  // Ring axioms on random 256-bit operands: commutativity, associativity,
  // distributivity.
  Rng rng(909);
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::RandomBits(256, rng) - BigInt::RandomBits(256, rng);
    BigInt b = BigInt::RandomBits(200, rng) - BigInt::RandomBits(200, rng);
    BigInt c = BigInt::RandomBits(150, rng) - BigInt::RandomBits(150, rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigInt(0));
  }
}

TEST(MontgomeryTest, MatchesPlainModMul) {
  Rng rng(111);
  for (int trial = 0; trial < 20; ++trial) {
    BigInt m = BigInt::RandomBits(160, rng);
    if (!m.IsOdd()) m = m + BigInt(1);
    if (m < BigInt(3)) continue;
    MontgomeryContext ctx(m);
    for (int i = 0; i < 10; ++i) {
      BigInt a = BigInt::RandomBelow(m, rng);
      BigInt b = BigInt::RandomBelow(m, rng);
      EXPECT_EQ(ctx.ModMul(a, b), a.ModMul(b, m));
    }
  }
}

TEST(MontgomeryTest, ExpEdgeCases) {
  MontgomeryContext ctx(BigInt(97));
  EXPECT_TRUE(ctx.ModExp(BigInt(5), BigInt(0)).IsOne());
  EXPECT_EQ(ctx.ModExp(BigInt(5), BigInt(1)).ToI64().value(), 5);
  EXPECT_TRUE(ctx.ModExp(BigInt(0), BigInt(5)).IsZero());
  EXPECT_TRUE(ctx.ModExp(BigInt(96), BigInt(96)).IsOne());  // Fermat
}

TEST(PrimeTest, SmallPrimesRecognized) {
  Rng rng(222);
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 97ULL, 251ULL, 257ULL,
                     65537ULL, 1000000007ULL}) {
    EXPECT_TRUE(IsProbablePrime(BigInt(p), 20, rng)) << p;
  }
}

TEST(PrimeTest, CompositesRejected) {
  Rng rng(333);
  for (uint64_t c : {1ULL, 4ULL, 9ULL, 15ULL, 91ULL, 561ULL /*Carmichael*/,
                     6601ULL /*Carmichael*/, 1000000008ULL}) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), 20, rng)) << c;
  }
}

TEST(PrimeTest, GeneratePrimeHasExactBitLength) {
  Rng rng(444);
  for (int bits : {16, 32, 64, 128}) {
    BigInt p = GeneratePrime(bits, rng);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(IsProbablePrime(p, 20, rng));
  }
}

TEST(PrimeTest, PaillierPrimesDistinctAndCoprime) {
  Rng rng(555);
  PrimePair pair = GeneratePaillierPrimes(96, rng);
  EXPECT_NE(pair.p, pair.q);
  BigInt n = pair.p * pair.q;
  BigInt phi = (pair.p - BigInt(1)) * (pair.q - BigInt(1));
  EXPECT_TRUE(BigInt::Gcd(n, phi).IsOne());
}

}  // namespace
}  // namespace pivot
