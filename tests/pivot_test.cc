#include "pivot/trainer.h"

#include <gtest/gtest.h>

#include <mutex>

#include "data/synthetic.h"
#include "pivot/ensemble.h"
#include "pivot/prediction.h"
#include "pivot/runner.h"
#include "tree/cart.h"
#include "tree/forest.h"
#include "tree/gbdt.h"

namespace pivot {
namespace {

// Small but non-trivial datasets keep the full cryptographic pipeline
// under test at sane runtimes.
Dataset SmallClassification(int n = 60, int d = 6, int classes = 2,
                            uint64_t seed = 17) {
  ClassificationSpec spec;
  spec.num_samples = n;
  spec.num_features = d;
  spec.num_classes = classes;
  spec.class_separation = 2.5;
  spec.seed = seed;
  return MakeClassification(spec);
}

Dataset SmallRegression(int n = 60, int d = 6, uint64_t seed = 19) {
  RegressionSpec spec;
  spec.num_samples = n;
  spec.num_features = d;
  spec.seed = seed;
  return MakeRegression(spec);
}

PivotParams TestParams(TreeTask task, int classes = 2, int key_bits = 256) {
  PivotParams params;
  params.tree.task = task;
  params.tree.num_classes = classes;
  params.tree.max_depth = 2;
  params.tree.max_splits = 4;
  params.tree.min_samples_split = 5;
  params.key_bits = key_bits;
  return params;
}

// Collects one party's result under a mutex (parties run on threads).
template <typename T>
class PerParty {
 public:
  explicit PerParty(int m) : values_(m) {}
  void Set(int id, T value) {
    std::lock_guard<std::mutex> lock(mu_);
    values_[id] = std::move(value);
  }
  const T& Get(int id) const { return values_[id]; }

 private:
  std::mutex mu_;
  std::vector<T> values_;
};

TEST(PivotBasicTest, ClassificationMatchesNonPrivateCart) {
  Dataset data = SmallClassification();
  PivotParams params = TestParams(TreeTask::kClassification);
  FederationConfig cfg;
  cfg.num_parties = 3;
  cfg.params = params;

  PerParty<PivotTree> trees(3);
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.protocol = Protocol::kBasic;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    trees.Set(ctx.id(), std::move(tree));
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  // The basic-protocol model is public: all parties hold the same tree.
  const PivotTree& tree = trees.Get(0);
  for (int p = 1; p < 3; ++p) {
    ASSERT_EQ(trees.Get(p).nodes.size(), tree.nodes.size());
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      EXPECT_EQ(trees.Get(p).nodes[i].owner, tree.nodes[i].owner);
      EXPECT_DOUBLE_EQ(trees.Get(p).nodes[i].threshold, tree.nodes[i].threshold);
      EXPECT_DOUBLE_EQ(trees.Get(p).nodes[i].leaf_value,
                       tree.nodes[i].leaf_value);
    }
  }

  // Compare with the plaintext CART on the merged data: identical
  // hyper-parameters, identical candidate grid -> identical predictions
  // (up to fixed-point gain ties, so accuracy is compared exactly on
  // training data).
  TreeModel np = TrainCart(data, params.tree);
  std::vector<std::vector<int>> feature_map;
  for (const auto& view : PartitionVertically(data, 3).views) {
    feature_map.push_back(view.feature_indices);
  }
  int agree = 0;
  for (size_t i = 0; i < data.num_samples(); ++i) {
    double pivot_pred = tree.EvaluatePlain(data.features[i], feature_map);
    double np_pred = np.Predict(data.features[i]);
    agree += (pivot_pred == np_pred);
  }
  // Fixed-point rounding may flip rare boundary ties; demand near-perfect
  // agreement.
  EXPECT_GE(agree, static_cast<int>(data.num_samples()) - 2)
      << "Pivot and CART disagree on too many samples";
}

TEST(PivotBasicTest, DistributedPredictionMatchesPublicModel) {
  Dataset data = SmallClassification();
  FederationConfig cfg;
  cfg.num_parties = 3;
  cfg.params = TestParams(TreeTask::kClassification);

  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    // Algorithm 4 on the first 6 training rows must equal the public
    // model evaluated centrally.
    std::vector<std::vector<int>> feature_map;
    auto part = PartitionVertically(data, 3);
    for (const auto& view : part.views) {
      feature_map.push_back(view.feature_indices);
    }
    for (int i = 0; i < 6; ++i) {
      PIVOT_ASSIGN_OR_RETURN(
          double pred, PredictPivot(ctx, tree, part.views[ctx.id()].features[i]));
      const double expected =
          tree.EvaluatePlain(data.features[i], feature_map);
      if (pred != expected) {
        return Status::Internal("distributed prediction mismatch");
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotBasicTest, RegressionTreeTrainsAndPredicts) {
  Dataset data = SmallRegression();
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params = TestParams(TreeTask::kRegression);

  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    if (tree.nodes.empty()) return Status::Internal("empty tree");
    // Distributed prediction approximates the plaintext CART tree's MSE.
    auto part = PartitionVertically(data, 2);
    double se_pivot = 0.0;
    const int probe = 10;
    for (int i = 0; i < probe; ++i) {
      PIVOT_ASSIGN_OR_RETURN(
          double pred,
          PredictPivot(ctx, tree, part.views[ctx.id()].features[i]));
      se_pivot += (pred - data.labels[i]) * (pred - data.labels[i]);
    }
    // Compare with the mean-label predictor: the tree must do better.
    double mean = 0.0;
    for (double y : data.labels) mean += y;
    mean /= data.labels.size();
    double se_mean = 0.0;
    for (int i = 0; i < probe; ++i) {
      se_mean += (mean - data.labels[i]) * (mean - data.labels[i]);
    }
    if (se_pivot >= se_mean) {
      return Status::Internal("regression tree no better than mean");
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotBasicTest, SampleWeightsActAsBootstrap) {
  Dataset data = SmallClassification(40, 4);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params = TestParams(TreeTask::kClassification);

  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.sample_weights.assign(40, 1);
    // Doubling every weight must not change the learned structure.
    TrainTreeOptions doubled = opts;
    doubled.sample_weights.assign(40, 2);
    PIVOT_ASSIGN_OR_RETURN(PivotTree t1, TrainPivotTree(ctx, opts));
    PIVOT_ASSIGN_OR_RETURN(PivotTree t2, TrainPivotTree(ctx, doubled));
    if (t1.nodes.size() != t2.nodes.size()) {
      return Status::Internal("weight scaling changed the tree size");
    }
    for (size_t i = 0; i < t1.nodes.size(); ++i) {
      if (t1.nodes[i].is_leaf != t2.nodes[i].is_leaf ||
          t1.nodes[i].owner != t2.nodes[i].owner ||
          t1.nodes[i].threshold != t2.nodes[i].threshold) {
        return Status::Internal("weight scaling changed the tree");
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotBasicTest, KeyTooSmallIsRejected) {
  Dataset data = SmallClassification(30, 4);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params = TestParams(TreeTask::kClassification, 2, /*key_bits=*/128);

  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    Result<PivotTree> r = TrainPivotTree(ctx, opts);
    if (r.ok()) return Status::Internal("expected key-size rejection");
    if (r.status().code() != StatusCode::kFailedPrecondition) {
      return Status::Internal("wrong error: " + r.status().ToString());
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotEnhancedTest, HidesThresholdsAndLeaves) {
  Dataset data = SmallClassification(50, 6);
  FederationConfig cfg;
  cfg.num_parties = 3;
  cfg.params = TestParams(TreeTask::kClassification, 2, /*key_bits=*/384);

  PerParty<PivotTree> trees(3);
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.protocol = Protocol::kEnhanced;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    trees.Set(ctx.id(), std::move(tree));
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Structure (owner/feature) is public; thresholds and leaves exist only
  // as shares that differ across parties.
  const PivotTree& t0 = trees.Get(0);
  ASSERT_GT(t0.NumInternalNodes(), 0);
  for (int p = 1; p < 3; ++p) {
    const PivotTree& tp = trees.Get(p);
    ASSERT_EQ(tp.nodes.size(), t0.nodes.size());
    bool some_share_differs = false;
    for (size_t i = 0; i < t0.nodes.size(); ++i) {
      EXPECT_EQ(tp.nodes[i].is_leaf, t0.nodes[i].is_leaf);
      EXPECT_EQ(tp.nodes[i].owner, t0.nodes[i].owner);
      EXPECT_EQ(tp.nodes[i].feature_local, t0.nodes[i].feature_local);
      // Plaintext fields stay at their defaults in the enhanced model.
      EXPECT_DOUBLE_EQ(tp.nodes[i].threshold, 0.0);
      if (!t0.nodes[i].is_leaf &&
          tp.nodes[i].threshold_share != t0.nodes[i].threshold_share) {
        some_share_differs = true;
      }
    }
    EXPECT_TRUE(some_share_differs) << "shares identical across parties";
  }
}

TEST(PivotEnhancedTest, PredictionMatchesBasicProtocolModel) {
  // Train the same data with both protocols; the enhanced model's secure
  // prediction must agree with the public basic model on probe samples.
  Dataset data = SmallClassification(50, 6, 2, /*seed=*/23);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params = TestParams(TreeTask::kClassification, 2, /*key_bits=*/384);

  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions basic_opts;
    basic_opts.protocol = Protocol::kBasic;
    PIVOT_ASSIGN_OR_RETURN(PivotTree basic, TrainPivotTree(ctx, basic_opts));
    TrainTreeOptions enh_opts;
    enh_opts.protocol = Protocol::kEnhanced;
    PIVOT_ASSIGN_OR_RETURN(PivotTree enhanced, TrainPivotTree(ctx, enh_opts));

    auto part = PartitionVertically(data, 2);
    std::vector<std::vector<int>> feature_map;
    for (const auto& view : part.views) {
      feature_map.push_back(view.feature_indices);
    }
    for (int i = 0; i < 8; ++i) {
      PIVOT_ASSIGN_OR_RETURN(
          double enh_pred,
          PredictPivot(ctx, enhanced, part.views[ctx.id()].features[i]));
      const double basic_pred =
          basic.EvaluatePlain(data.features[i], feature_map);
      if (enh_pred != basic_pred) {
        return Status::Internal("enhanced prediction mismatch at sample " +
                                std::to_string(i));
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotEnhancedTest, RegressionPredictionsClose) {
  Dataset data = SmallRegression(50, 4);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params = TestParams(TreeTask::kRegression, 2, /*key_bits=*/384);

  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions basic_opts;
    PIVOT_ASSIGN_OR_RETURN(PivotTree basic, TrainPivotTree(ctx, basic_opts));
    TrainTreeOptions enh_opts;
    enh_opts.protocol = Protocol::kEnhanced;
    PIVOT_ASSIGN_OR_RETURN(PivotTree enhanced, TrainPivotTree(ctx, enh_opts));
    auto part = PartitionVertically(data, 2);
    std::vector<std::vector<int>> feature_map;
    for (const auto& view : part.views) {
      feature_map.push_back(view.feature_indices);
    }
    for (int i = 0; i < 6; ++i) {
      PIVOT_ASSIGN_OR_RETURN(
          double enh_pred,
          PredictPivot(ctx, enhanced, part.views[ctx.id()].features[i]));
      const double basic_pred =
          basic.EvaluatePlain(data.features[i], feature_map);
      if (std::abs(enh_pred - basic_pred) > 0.01) {
        return Status::Internal("regression prediction drift");
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotEnsembleTest, RandomForestClassification) {
  Dataset data = SmallClassification(50, 6);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params = TestParams(TreeTask::kClassification);

  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    EnsembleOptions opts;
    opts.num_trees = 3;
    PIVOT_ASSIGN_OR_RETURN(PivotEnsemble model, TrainPivotForest(ctx, opts));
    if (model.forests[0].size() != 3) return Status::Internal("tree count");
    auto part = PartitionVertically(data, 2);
    int correct = 0;
    const int probe = 10;
    for (int i = 0; i < probe; ++i) {
      PIVOT_ASSIGN_OR_RETURN(
          double pred,
          PredictPivotEnsemble(ctx, model, part.views[ctx.id()].features[i]));
      if (pred < 0 || pred >= 2) return Status::Internal("class out of range");
      correct += (pred == data.labels[i]);
    }
    if (correct < probe / 2) return Status::Internal("forest below chance");
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotEnsembleTest, GbdtRegressionReducesResiduals) {
  Dataset data = SmallRegression(40, 4);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params = TestParams(TreeTask::kRegression, 2, /*key_bits=*/384);

  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    EnsembleOptions opts;
    opts.num_trees = 3;
    opts.learning_rate = 0.5;
    PIVOT_ASSIGN_OR_RETURN(PivotEnsemble model, TrainPivotGbdt(ctx, opts));
    if (model.forests[0].size() != 3) return Status::Internal("tree count");
    auto part = PartitionVertically(data, 2);
    double se = 0.0, se_mean = 0.0;
    double mean = 0.0;
    for (double y : data.labels) mean += y;
    mean /= data.labels.size();
    const int probe = 8;
    for (int i = 0; i < probe; ++i) {
      PIVOT_ASSIGN_OR_RETURN(
          double pred,
          PredictPivotEnsemble(ctx, model, part.views[ctx.id()].features[i]));
      se += (pred - data.labels[i]) * (pred - data.labels[i]);
      se_mean += (mean - data.labels[i]) * (mean - data.labels[i]);
    }
    if (se >= se_mean) return Status::Internal("GBDT no better than mean");
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotDpTest, DifferentiallyPrivateTrainingRuns) {
  Dataset data = SmallClassification(50, 4);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params = TestParams(TreeTask::kClassification);
  cfg.params.dp.enabled = true;
  cfg.params.dp.epsilon_per_query = 2.0;

  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    if (tree.nodes.empty()) return Status::Internal("empty DP tree");
    // Leaf labels are valid classes.
    for (const PivotNode& n : tree.nodes) {
      if (n.is_leaf && (n.leaf_value < 0 || n.leaf_value >= 2)) {
        return Status::Internal("DP leaf out of range");
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(PivotTrainerTest, EnhancedGbdtRejected) {
  Dataset data = SmallClassification(30, 4);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params = TestParams(TreeTask::kRegression, 2, /*key_bits=*/384);

  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    EnsembleOptions opts;
    opts.protocol = Protocol::kEnhanced;
    Result<PivotEnsemble> r = TrainPivotGbdt(ctx, opts);
    if (r.ok()) return Status::Internal("expected rejection");
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace pivot
