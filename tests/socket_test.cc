// Socket transport tests, three tiers.
//
// Tier 1 (SupervisorTest): the ConnectionSupervisor state machine driven
// with a fake clock and recording callbacks — heartbeat cadence,
// silent-peer detection, the deterministic dial backoff schedule, and
// both ends of the reconnection budget (attempts for dialers, wall clock
// for acceptors).
//
// Tier 2 (SocketTransportTest): real loopback meshes (TCP and
// Unix-domain) through RunLoopbackParties — framing over real file
// descriptors, Recv timeout liveness diagnostics, handshake version
// rejection, and the socket-only fault kinds (kSever / kMute) with their
// reconnect-or-abort contracts.
//
// Tier 3 (SocketBackendTest): RunFederation with backend = kSocket must
// produce the bit-identical tree to the in-memory backend — the property
// that makes the multi-process crash-resume fingerprint check meaningful.

#include "net/socket.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/sha256.h"
#include "data/synthetic.h"
#include "net/fault.h"
#include "net/supervisor.h"
#include "pivot/runner.h"
#include "pivot/serialize.h"
#include "pivot/trainer.h"

namespace pivot {
namespace {

// ----- tier 1: supervisor state machine (fake clock, fake callbacks) ---

struct RecordingCallbacks {
  std::vector<int> heartbeats;
  std::vector<std::pair<int, std::string>> severs;
  std::vector<std::pair<int64_t, int>> dials;  // (when asked, peer)
  std::vector<std::pair<int, Status>> escalations;
  Status dial_result = Status::ProtocolError("dial refused by test");
  int64_t now = 0;  // advanced by tests; captured by the dial callback

  ConnectionSupervisor::Callbacks Bind() {
    ConnectionSupervisor::Callbacks cb;
    cb.send_heartbeat = [this](int p) { heartbeats.push_back(p); };
    cb.sever = [this](int p, const std::string& r) {
      severs.emplace_back(p, r);
    };
    cb.dial = [this](int p) -> Status {
      dials.emplace_back(now, p);
      return dial_result;
    };
    cb.escalate = [this](int p, const Status& cause) {
      escalations.emplace_back(p, cause);
    };
    return cb;
  }
};

SupervisorConfig FastConfig() {
  SupervisorConfig cfg;
  cfg.heartbeat_interval_ms = 100;
  cfg.heartbeat_timeout_ms = 400;
  cfg.reconnect_attempts = 3;
  cfg.reconnect_timeout_ms = 1'000;
  cfg.backoff_base_ms = 10;
  cfg.backoff_max_ms = 40;
  return cfg;
}

TEST(SupervisorTest, HeartbeatCadenceFollowsInterval) {
  RecordingCallbacks rec;
  ConnectionSupervisor sup(2, 0, FastConfig(), rec.Bind(), {false, false});
  sup.NoteConnected(1, 0);
  sup.Tick(50);  // before the first heartbeat is due
  EXPECT_TRUE(rec.heartbeats.empty());
  sup.Tick(100);
  ASSERT_EQ(rec.heartbeats.size(), 1u);
  EXPECT_EQ(rec.heartbeats[0], 1);
  sup.Tick(150);  // next one is due at 200, not before
  EXPECT_EQ(rec.heartbeats.size(), 1u);
  sup.Tick(210);
  EXPECT_EQ(rec.heartbeats.size(), 2u);
  EXPECT_EQ(sup.Health(1, 210).heartbeats_sent, 2u);
}

TEST(SupervisorTest, SilentPeerIsDeclaredDead) {
  RecordingCallbacks rec;
  ConnectionSupervisor sup(2, 1, FastConfig(), rec.Bind(), {true, false});
  sup.NoteConnected(0, 0);
  sup.NoteHeard(0, 100);
  sup.Tick(450);  // silent for 350 ms < 400 ms timeout: still alive
  EXPECT_TRUE(rec.severs.empty());
  sup.Tick(501);  // silent for 401 ms: dead
  ASSERT_EQ(rec.severs.size(), 1u);
  EXPECT_EQ(rec.severs[0].first, 0);
  EXPECT_NE(rec.severs[0].second.find("heartbeat timeout"),
            std::string::npos);
  EXPECT_EQ(sup.Health(0, 501).state, PeerState::kDown);
}

TEST(SupervisorTest, DialBackoffIsDeterministicAndExponential) {
  RecordingCallbacks rec;
  ConnectionSupervisor sup(2, 1, FastConfig(), rec.Bind(), {true, false});
  sup.NoteConnected(0, 0);
  sup.NoteDown(0, 1'000, "test-induced drop");
  ASSERT_EQ(rec.severs.size(), 1u);  // NoteDown surfaces the reason
  EXPECT_EQ(rec.severs[0].second, "test-induced drop");
  // Attempts are due at 1000, +10, +20, then the budget (3) is spent.
  for (int64_t t = 1'000; t <= 1'100; ++t) {
    rec.now = t;
    sup.Tick(t);
  }
  ASSERT_EQ(rec.dials.size(), 3u);
  EXPECT_EQ(rec.dials[0], (std::pair<int64_t, int>{1'000, 0}));
  EXPECT_EQ(rec.dials[1], (std::pair<int64_t, int>{1'010, 0}));
  EXPECT_EQ(rec.dials[2], (std::pair<int64_t, int>{1'030, 0}));
}

TEST(SupervisorTest, DialerEscalatesWhenAttemptsExhausted) {
  RecordingCallbacks rec;
  ConnectionSupervisor sup(2, 1, FastConfig(), rec.Bind(), {true, false});
  sup.NoteConnected(0, 0);
  sup.NoteDown(0, 1'000, "drop");
  for (int64_t t = 1'000; t <= 1'200; ++t) {
    rec.now = t;
    sup.Tick(t);
  }
  EXPECT_EQ(rec.dials.size(), 3u);
  ASSERT_EQ(rec.escalations.size(), 1u) << "escalation must fire exactly once";
  EXPECT_EQ(rec.escalations[0].first, 0);
  const std::string msg = rec.escalations[0].second.message();
  EXPECT_NE(msg.find("unreachable"), std::string::npos) << msg;
  EXPECT_NE(msg.find("reconnect attempts"), std::string::npos) << msg;
}

TEST(SupervisorTest, AcceptorWaitsOnTimeBudgetAlone) {
  RecordingCallbacks rec;
  // Party 0 accepts from party 1: it cannot dial, only wait.
  ConnectionSupervisor sup(2, 0, FastConfig(), rec.Bind(), {false, false});
  sup.NoteConnected(1, 0);
  sup.NoteDown(1, 1'000, "drop");
  sup.Tick(1'500);
  EXPECT_TRUE(rec.dials.empty());
  EXPECT_TRUE(rec.escalations.empty());
  sup.Tick(2'000);  // 1000 ms episode = reconnect_timeout_ms
  ASSERT_EQ(rec.escalations.size(), 1u);
  EXPECT_NE(rec.escalations[0].second.message().find("did not dial back"),
            std::string::npos);
  EXPECT_TRUE(rec.dials.empty());
}

TEST(SupervisorTest, SuccessfulRedialCountsAsReconnect) {
  RecordingCallbacks rec;
  rec.dial_result = Status::Ok();
  ConnectionSupervisor sup(2, 1, FastConfig(), rec.Bind(), {true, false});
  sup.NoteConnected(0, 0);
  sup.NoteDown(0, 1'000, "drop");
  rec.now = 1'000;
  sup.Tick(1'000);
  ASSERT_EQ(rec.dials.size(), 1u);
  EXPECT_TRUE(rec.escalations.empty());
  const PeerHealth h = sup.Health(0, 1'001);
  EXPECT_EQ(h.state, PeerState::kConnected);
  EXPECT_EQ(h.reconnects, 1u);
}

TEST(SupervisorTest, DescribeNamesStateAndSilence) {
  RecordingCallbacks rec;
  ConnectionSupervisor sup(2, 0, FastConfig(), rec.Bind(), {false, false});
  EXPECT_EQ(sup.Describe(1, 0),
            "peer 1 never-connected, never heard from, 0 reconnects");
  sup.NoteConnected(1, 100);
  sup.NoteHeard(1, 200);
  const std::string line = sup.Describe(1, 350);
  EXPECT_NE(line.find("peer 1 connected"), std::string::npos) << line;
  EXPECT_NE(line.find("last heard 150 ms ago"), std::string::npos) << line;
}

TEST(SupervisorTest, HeartbeatBoundaryIsExclusive) {
  // The sever condition is strictly silent_ms > heartbeat_timeout_ms: a
  // peer heard from exactly timeout ms ago is still alive. An inclusive
  // comparison would sever healthy connections whose heartbeat landed
  // precisely on the supervision tick.
  RecordingCallbacks rec;
  ConnectionSupervisor sup(2, 1, FastConfig(), rec.Bind(), {true, false});
  sup.NoteConnected(0, 0);
  sup.NoteHeard(0, 100);
  sup.Tick(500);  // silent for exactly 400 ms == timeout: alive
  EXPECT_TRUE(rec.severs.empty());
  EXPECT_EQ(sup.Health(0, 500).state, PeerState::kConnected);
  sup.Tick(501);  // 401 ms: dead
  ASSERT_EQ(rec.severs.size(), 1u);
  EXPECT_EQ(sup.Health(0, 501).state, PeerState::kDown);
}

TEST(SupervisorTest, RedialBackoffSaturatesAtTheCap) {
  RecordingCallbacks rec;
  SupervisorConfig cfg = FastConfig();
  cfg.reconnect_attempts = 6;
  cfg.reconnect_timeout_ms = 10'000;
  ConnectionSupervisor sup(2, 1, cfg, rec.Bind(), {true, false});
  sup.NoteConnected(0, 0);
  sup.NoteDown(0, 1'000, "drop");
  for (int64_t t = 1'000; t <= 1'200; ++t) {
    rec.now = t;
    sup.Tick(t);
  }
  // Gaps double from backoff_base_ms (10) until backoff_max_ms (40),
  // then hold there: 1000, +10, +20, +40, +40, +40.
  ASSERT_EQ(rec.dials.size(), 6u);
  const int64_t expected[] = {1'000, 1'010, 1'030, 1'070, 1'110, 1'150};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(rec.dials[i], (std::pair<int64_t, int>{expected[i], 0}))
        << "dial " << i;
  }
}

TEST(SupervisorTest, ReconnectionResetsTheDialBudgetMidEpisode) {
  // A successful redial ends the episode; a later sever starts a FRESH
  // one with full attempt budget and base backoff. Without the reset, a
  // long run would eventually abort on its total (not consecutive)
  // failure count.
  RecordingCallbacks rec;
  ConnectionSupervisor sup(2, 1, FastConfig(), rec.Bind(), {true, false});
  sup.NoteConnected(0, 0);
  sup.NoteDown(0, 1'000, "first drop");
  rec.now = 1'000;
  sup.Tick(1'000);  // attempt 1 fails (dial_result defaults to error)
  rec.now = 1'010;
  rec.dial_result = Status::Ok();
  sup.Tick(1'010);  // attempt 2 succeeds
  ASSERT_EQ(rec.dials.size(), 2u);
  EXPECT_EQ(sup.Health(0, 1'011).state, PeerState::kConnected);
  EXPECT_EQ(sup.Health(0, 1'011).reconnects, 1u);

  rec.dial_result = Status::ProtocolError("dial refused by test");
  sup.NoteDown(0, 2'000, "second drop");
  rec.dials.clear();
  for (int64_t t = 2'000; t <= 2'100; ++t) {
    rec.now = t;
    sup.Tick(t);
  }
  // Full budget (3) again, backoff restarted at base: 2000, +10, +20.
  // Without the reset only one attempt would remain and the escalation
  // would name a single-dial episode.
  ASSERT_EQ(rec.dials.size(), 3u);
  EXPECT_EQ(rec.dials[0].first, 2'000);
  EXPECT_EQ(rec.dials[1].first, 2'010);
  EXPECT_EQ(rec.dials[2].first, 2'030);
  ASSERT_EQ(rec.escalations.size(), 1u);
  EXPECT_NE(rec.escalations[0].second.message().find("3 reconnect attempts"),
            std::string::npos)
      << rec.escalations[0].second.message();
}

TEST(SupervisorTest, AcceptorEpisodeClockResetsOnDialBack) {
  // The acceptor side has no attempt budget — only the episode wall
  // clock — and that clock must restart when the peer dials back in and
  // then drops again mid-backoff. The second episode gets its full time
  // budget; severs do not accumulate across reconnections.
  RecordingCallbacks rec;
  ConnectionSupervisor sup(2, 0, FastConfig(), rec.Bind(), {false, false});
  sup.NoteConnected(1, 0);
  sup.NoteDown(1, 1'000, "first drop");
  sup.Tick(1'900);  // 900 ms into the 1000 ms episode: still waiting
  EXPECT_TRUE(rec.escalations.empty());
  sup.NoteConnected(1, 1'950);  // peer dialed back just in time
  sup.NoteHeard(1, 1'950);
  sup.NoteDown(1, 2'100, "second drop");
  sup.Tick(2'950);  // 850 ms into the SECOND episode, 1950 ms since the
  EXPECT_TRUE(rec.escalations.empty());  // first: no escalation
  sup.Tick(3'100);  // 1000 ms episode budget spent
  ASSERT_EQ(rec.escalations.size(), 1u);
  EXPECT_EQ(rec.escalations[0].first, 1);
  EXPECT_NE(rec.escalations[0].second.message().find("did not dial back"),
            std::string::npos);
  EXPECT_TRUE(rec.dials.empty()) << "acceptors never dial";
}

// ----- tier 2: real loopback meshes ------------------------------------

SocketOptions FastSocketOptions(int recv_timeout_ms = 5'000) {
  SocketOptions opts;
  opts.net.recv_timeout_ms = recv_timeout_ms;
  opts.net.backoff_base_ms = 2;
  opts.net.backoff_max_ms = 50;
  opts.supervision.heartbeat_interval_ms = 50;
  opts.supervision.heartbeat_timeout_ms = 500;
  opts.supervision.backoff_base_ms = 2;
  opts.supervision.backoff_max_ms = 20;
  opts.establish_timeout_ms = 10'000;
  return opts;
}

TEST(SocketTransportTest, LoopbackMeshAllPairsExchange) {
  NetworkStats stats;
  const Status st = RunLoopbackParties(
      3, FastSocketOptions(), [](int id, Endpoint& ep) -> Status {
        // Every ordered pair exchanges one tagged message.
        for (int to = 0; to < 3; ++to) {
          if (to == id) continue;
          PIVOT_RETURN_IF_ERROR(ep.Send(
              to, Bytes{static_cast<uint8_t>(id), static_cast<uint8_t>(to)}));
        }
        for (int from = 0; from < 3; ++from) {
          if (from == id) continue;
          PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(from));
          if (msg != (Bytes{static_cast<uint8_t>(from),
                            static_cast<uint8_t>(id)})) {
            return Status::Internal("wrong payload from party " +
                                    std::to_string(from));
          }
        }
        return Status::Ok();
      },
      &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.messages_sent, 6u);
  EXPECT_EQ(stats.messages_received, 6u);
  EXPECT_GT(stats.bytes_sent, 0u);
}

TEST(SocketTransportTest, LargeMessageSurvivesPartialWrites) {
  // 4 MiB forces many short writes/reads through the 64 KiB receive
  // buffer, exercising stream reassembly over a real descriptor.
  const Status st = RunLoopbackParties(
      2, FastSocketOptions(/*recv_timeout_ms=*/30'000),
      [](int id, Endpoint& ep) -> Status {
        Bytes big(4 << 20);
        for (size_t i = 0; i < big.size(); ++i) {
          big[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
        }
        if (id == 0) {
          PIVOT_RETURN_IF_ERROR(ep.Send(1, big));
          PIVOT_ASSIGN_OR_RETURN(Bytes ack, ep.Recv(1));
          if (ack != Bytes{1}) return Status::Internal("bad ack");
          return Status::Ok();
        }
        PIVOT_ASSIGN_OR_RETURN(Bytes got, ep.Recv(0));
        if (got != big) return Status::Internal("large payload mangled");
        return ep.Send(0, Bytes{1});
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(SocketTransportTest, UnixDomainMeshExchanges) {
  const std::string base =
      "unix:/tmp/pivot_socket_test_" + std::to_string(::getpid());
  SocketNetwork a(0, 2, FastSocketOptions());
  SocketNetwork b(1, 2, FastSocketOptions());
  ASSERT_TRUE(a.Bind(base + ".a").ok());
  ASSERT_TRUE(b.Bind(base + ".b").ok());
  const std::vector<std::string> addrs = {a.listen_address(),
                                          b.listen_address()};
  Status sa, sb;
  std::thread ta([&] { sa = a.Establish(addrs); });
  std::thread tb([&] { sb = b.Establish(addrs); });
  ta.join();
  tb.join();
  ASSERT_TRUE(sa.ok()) << sa.ToString();
  ASSERT_TRUE(sb.ok()) << sb.ToString();
  ASSERT_TRUE(a.endpoint().Send(1, Bytes{42}).ok());
  Result<Bytes> got = b.endpoint().Recv(0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), Bytes{42});
}

TEST(SocketTransportTest, BindReportsEphemeralPort) {
  SocketNetwork net(0, 2, FastSocketOptions());
  ASSERT_TRUE(net.Bind("127.0.0.1:0").ok());
  EXPECT_EQ(net.listen_address().find("127.0.0.1:"), 0u);
  EXPECT_EQ(net.listen_address().find(":0"), std::string::npos)
      << "ephemeral port not resolved: " << net.listen_address();
}

TEST(SocketTransportTest, BindRejectsMalformedAddresses) {
  SocketNetwork net(0, 2, FastSocketOptions());
  EXPECT_FALSE(net.Bind("no-port-here").ok());
  EXPECT_FALSE(net.Bind("127.0.0.1:notaport").ok());
  EXPECT_FALSE(net.Bind("127.0.0.1:99999").ok());
  EXPECT_FALSE(net.Bind("not.an.ip.addr:1234").ok());
}

TEST(SocketTransportTest, HandshakeVersionMismatchFailsFast) {
  SocketOptions old_version = FastSocketOptions();
  old_version.establish_timeout_ms = 3'000;
  SocketOptions new_version = old_version;
  new_version.handshake_version = kTransportVersion + 1;

  SocketNetwork acceptor(0, 2, old_version);
  SocketNetwork dialer(1, 2, new_version);
  ASSERT_TRUE(acceptor.Bind("127.0.0.1:0").ok());
  ASSERT_TRUE(dialer.Bind("127.0.0.1:0").ok());
  const std::vector<std::string> addrs = {acceptor.listen_address(),
                                          dialer.listen_address()};
  Status accept_st;
  std::thread ta([&] { accept_st = acceptor.Establish(addrs); });
  const Status dial_st = dialer.Establish(addrs);
  ta.join();
  // The dialer learns the mismatch from the kHelloAck and gives up
  // immediately — it must not burn the whole establish deadline retrying
  // a permanent incompatibility.
  ASSERT_FALSE(dial_st.ok());
  EXPECT_EQ(dial_st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dial_st.message().find("version mismatch"), std::string::npos)
      << dial_st.ToString();
  EXPECT_FALSE(accept_st.ok());  // nobody compatible ever dialed in
}

TEST(SocketTransportTest, RecvTimeoutNamesPeerLiveness) {
  // Party 1 stays silent; party 0's Recv timeout must say how the link
  // to the peer looked (connected + recently heard via heartbeats), so a
  // hung *protocol* is distinguishable from a dead *transport*.
  const Status st = RunLoopbackParties(
      2, FastSocketOptions(/*recv_timeout_ms=*/400),
      [](int id, Endpoint& ep) -> Status {
        if (id == 1) return Status::Ok();  // never sends
        Result<Bytes> r = ep.Recv(1);
        if (r.ok()) return Status::Internal("phantom message");
        return r.status();
      });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("timed out"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("peer 1 connected"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("last heard"), std::string::npos)
      << st.ToString();
}

TEST(SocketTransportTest, TransientSeverReconnectsAndRecovers) {
  // Party 0's 3rd outbound wire frame tears the 0<->1 connection down.
  // Party 1 (the dialer for rank 0) must reconnect and the reliable layer
  // must NACK-recover anything lost in between: the run completes.
  FaultPlan plan;
  plan.Add({FaultKind::kSever, /*party=*/0, /*peer=*/1, /*nth=*/2, 0, 0,
            /*fatal=*/false});
  std::vector<FaultPlan> plans = {plan, FaultPlan()};
  NetworkStats stats;
  uint64_t fired = 0;
  const Status st = RunLoopbackParties(
      2, FastSocketOptions(/*recv_timeout_ms=*/20'000),
      [](int id, Endpoint& ep) -> Status {
        for (int i = 0; i < 8; ++i) {
          if (id == 0) {
            PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes{static_cast<uint8_t>(i)}));
          } else {
            PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
            if (msg != Bytes{static_cast<uint8_t>(i)}) {
              return Status::Internal("out-of-order after reconnect");
            }
          }
        }
        // Reverse direction proves the link is healthy again.
        if (id == 1) return ep.Send(0, Bytes{99});
        PIVOT_ASSIGN_OR_RETURN(Bytes ack, ep.Recv(1));
        return ack == Bytes{99} ? Status::Ok()
                                : Status::Internal("bad final ack");
      },
      &stats, plans, &fired);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(fired, 1u);
  EXPECT_GE(stats.reconnects, 1u);
}

TEST(SocketTransportTest, FatalSeverExhaustsBudgetAndAborts) {
  // A fatal sever refuses reconnection, so the dialer's budget runs out
  // and the supervisor escalates to security-with-abort. Nobody hangs.
  FaultPlan plan;
  plan.Add({FaultKind::kSever, /*party=*/0, /*peer=*/1, /*nth=*/1, 0, 0,
            /*fatal=*/true});
  std::vector<FaultPlan> plans = {plan, FaultPlan()};
  SocketOptions opts = FastSocketOptions(/*recv_timeout_ms=*/30'000);
  opts.supervision.reconnect_attempts = 3;
  opts.supervision.reconnect_timeout_ms = 2'000;
  const Status st = RunLoopbackParties(
      2, opts,
      [](int id, Endpoint& ep) -> Status {
        for (int i = 0; i < 8; ++i) {
          if (id == 0) {
            PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes{static_cast<uint8_t>(i)}));
          } else {
            PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
          }
        }
        return Status::Ok();
      },
      nullptr, plans);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unreachable"), std::string::npos)
      << st.ToString();
}

TEST(SocketTransportTest, MutedConnectionDetectedByHeartbeatTimeout) {
  // Mute suppresses everything party 0 sends (heartbeats included) for
  // 1.2 s; party 1's supervisor must notice the silence, sever, redial
  // and — once the mute expires — the channel must recover via NACKs.
  FaultPlan plan;
  plan.Add({FaultKind::kMute, /*party=*/0, /*peer=*/1, /*nth=*/1,
            /*delay_ms=*/1'200, 0, /*fatal=*/false});
  std::vector<FaultPlan> plans = {plan, FaultPlan()};
  NetworkStats stats;
  const Status st = RunLoopbackParties(
      2, FastSocketOptions(/*recv_timeout_ms=*/30'000),
      [](int id, Endpoint& ep) -> Status {
        for (int i = 0; i < 6; ++i) {
          if (id == 0) {
            PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes{static_cast<uint8_t>(i)}));
          } else {
            PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
            if (msg != Bytes{static_cast<uint8_t>(i)}) {
              return Status::Internal("mute broke ordering");
            }
          }
        }
        // The muted frames are recovered by NACKs party 1 sends while
        // party 0 waits here — a sender must stay in the protocol (as any
        // real SPMD round structure does) for retransmission to work.
        if (id == 1) return ep.Send(0, Bytes{99});
        PIVOT_ASSIGN_OR_RETURN(Bytes ack, ep.Recv(1));
        return ack == Bytes{99} ? Status::Ok()
                                : Status::Internal("bad final ack");
      },
      &stats, plans);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(stats.reconnects, 1u);
}

// ----- tier 3: the federation backend ----------------------------------

TEST(SocketBackendTest, SocketFederationBitMatchesInMemory) {
  ClassificationSpec spec;
  spec.num_samples = 16;
  spec.num_features = 6;
  spec.num_classes = 2;
  spec.class_separation = 2.5;
  spec.seed = 17;
  const Dataset data = MakeClassification(spec);

  FederationConfig cfg;
  cfg.num_parties = 3;
  cfg.params.tree.task = TreeTask::kClassification;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 2;
  cfg.params.tree.max_splits = 4;
  cfg.params.tree.min_samples_split = 5;
  cfg.params.key_bits = 256;

  auto fingerprint = [&](NetBackend backend,
                         std::vector<Bytes>* prints) -> Status {
    cfg.backend = backend;
    prints->assign(cfg.num_parties, {});
    std::mutex mu;
    return RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
      TrainTreeOptions opts;
      opts.protocol = Protocol::kBasic;
      PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
      const auto digest = Sha256::Hash(SerializePivotTree(tree));
      std::lock_guard<std::mutex> lock(mu);
      (*prints)[ctx.id()] = Bytes(digest.begin(), digest.end());
      return Status::Ok();
    });
  };

  std::vector<Bytes> in_memory, socket;
  ASSERT_TRUE(fingerprint(NetBackend::kInMemory, &in_memory).ok());
  const Status st = fingerprint(NetBackend::kSocket, &socket);
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (int p = 0; p < cfg.num_parties; ++p) {
    EXPECT_EQ(socket[p], in_memory[p])
        << "party " << p << " diverged between transports";
  }
}

}  // namespace
}  // namespace pivot
