#include <gtest/gtest.h>

#include <cmath>

#include "data/standardize.h"
#include "data/synthetic.h"
#include "tree/cart.h"
#include "tree/export.h"

namespace pivot {
namespace {

TEST(TreeExportTest, DebugStringShowsStructure) {
  Dataset d;
  for (int i = -10; i <= 10; ++i) {
    d.features.push_back({static_cast<double>(i)});
    d.labels.push_back(i > 0 ? 1.0 : 0.0);
  }
  TreeParams params;
  params.max_depth = 1;
  params.max_splits = 32;
  params.min_samples_split = 2;
  TreeModel tree = TrainCart(d, params);
  std::string text = TreeToDebugString(tree);
  EXPECT_NE(text.find("f0 <= "), std::string::npos);
  EXPECT_NE(text.find("leaf: 0"), std::string::npos);
  EXPECT_NE(text.find("leaf: 1"), std::string::npos);
}

TEST(TreeExportTest, EmptyTree) {
  TreeModel empty;
  EXPECT_EQ(TreeToDebugString(empty), "(empty tree)\n");
}

TEST(TreeExportTest, DotOutputIsWellFormed) {
  Dataset d;
  for (int i = 0; i < 30; ++i) {
    d.features.push_back({static_cast<double>(i), static_cast<double>(i % 7)});
    d.labels.push_back(i % 2);
  }
  TreeParams params;
  params.max_depth = 2;
  TreeModel tree = TrainCart(d, params);
  std::string dot = TreeToDot(tree, "mytree");
  EXPECT_EQ(dot.find("digraph mytree {"), 0u);
  EXPECT_NE(dot.find("}"), std::string::npos);
  // One declaration per node.
  size_t count = 0;
  for (size_t pos = 0; (pos = dot.find("  n", pos)) != std::string::npos;
       ++count, ++pos) {
  }
  EXPECT_GE(count, tree.nodes().size());
}

TEST(StandardizeTest, ZeroMeanUnitVariance) {
  ClassificationSpec spec;
  spec.num_samples = 200;
  spec.num_features = 5;
  Dataset d = MakeClassification(spec);
  StandardizeStats stats = ComputeStandardizeStats(d);
  Dataset z = Standardize(d, stats);
  for (size_t j = 0; j < z.num_features(); ++j) {
    double mean = 0, var = 0;
    for (const auto& row : z.features) mean += row[j];
    mean /= z.num_samples();
    for (const auto& row : z.features) var += (row[j] - mean) * (row[j] - mean);
    var /= z.num_samples();
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
  EXPECT_EQ(z.labels, d.labels);
}

TEST(StandardizeTest, ConstantColumnSafe) {
  Dataset d;
  d.features = {{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}};
  d.labels = {0, 1, 0};
  StandardizeStats stats = ComputeStandardizeStats(d);
  Dataset z = Standardize(d, stats);
  for (const auto& row : z.features) {
    EXPECT_DOUBLE_EQ(row[0], 0.0);  // centered, divisor clamped to 1
    EXPECT_TRUE(std::isfinite(row[1]));
  }
}

TEST(StandardizeTest, ApplyMatchesBatch) {
  ClassificationSpec spec;
  spec.num_samples = 50;
  spec.num_features = 3;
  Dataset d = MakeClassification(spec);
  StandardizeStats stats = ComputeStandardizeStats(d);
  Dataset z = Standardize(d, stats);
  for (size_t i = 0; i < d.num_samples(); ++i) {
    EXPECT_EQ(stats.Apply(d.features[i]), z.features[i]);
  }
}

}  // namespace
}  // namespace pivot
