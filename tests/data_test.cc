#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "data/synthetic.h"

namespace pivot {
namespace {

Dataset TinyDataset() {
  Dataset d;
  d.features = {{1, 10, 100}, {2, 20, 200}, {3, 30, 300}, {4, 40, 400}};
  d.labels = {0, 1, 0, 1};
  return d;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.num_samples(), 4u);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_EQ(d.NumClasses(), 2);
  EXPECT_EQ(d.Column(1), (std::vector<double>{10, 20, 30, 40}));
}

TEST(DatasetTest, SplitTrainTestPartitions) {
  ClassificationSpec spec;
  spec.num_samples = 100;
  Dataset d = MakeClassification(spec);
  Rng rng(3);
  TrainTestSplit split = SplitTrainTest(d, 0.25, rng);
  EXPECT_EQ(split.test.num_samples(), 25u);
  EXPECT_EQ(split.train.num_samples(), 75u);
  EXPECT_EQ(split.train.num_features(), d.num_features());
}

TEST(DatasetTest, VerticalPartitionRoundTrips) {
  Dataset d = TinyDataset();
  for (int m : {1, 2, 3}) {
    VerticalPartition part = PartitionVertically(d, m);
    ASSERT_EQ(part.views.size(), static_cast<size_t>(m));
    // Feature indices are disjoint and cover all features.
    std::set<int> seen;
    for (const VerticalView& v : part.views) {
      for (int j : v.feature_indices) {
        EXPECT_TRUE(seen.insert(j).second) << "duplicate feature";
      }
    }
    EXPECT_EQ(seen.size(), d.num_features());
    // Labels live with the partition (super client), not in views.
    EXPECT_EQ(part.labels, d.labels);
    Dataset merged = MergeVerticalPartition(part);
    EXPECT_EQ(merged.features, d.features);
    EXPECT_EQ(merged.labels, d.labels);
  }
}

TEST(DatasetTest, VerticalViewsHoldLocalColumns) {
  Dataset d = TinyDataset();
  VerticalPartition part = PartitionVertically(d, 2);
  // Round-robin: client 0 gets features {0, 2}, client 1 gets {1}.
  EXPECT_EQ(part.views[0].feature_indices, (std::vector<int>{0, 2}));
  EXPECT_EQ(part.views[1].feature_indices, (std::vector<int>{1}));
  EXPECT_EQ(part.views[0].features[1], (std::vector<double>{2, 200}));
  EXPECT_EQ(part.views[1].features[3], (std::vector<double>{40}));
}

TEST(MetricsTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 1, 0}, {0, 1, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({1.0001, 2.0}, {1.0, 2.0}), 1.0);
}

TEST(MetricsTest, MeanSquaredError) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1, 2}, {1, 4}), 2.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({0}, {0}), 0.0);
}

TEST(CsvTest, SaveLoadRoundTrip) {
  Dataset d = TinyDataset();
  const std::string path = "/tmp/pivot_csv_test.csv";
  ASSERT_TRUE(SaveCsv(d, path).ok());
  Result<Dataset> loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().features, d.features);
  EXPECT_EQ(loaded.value().labels, d.labels);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(LoadCsv("/tmp/definitely_missing_pivot.csv").ok());
}

TEST(CsvTest, NonNumericCellErrorIsRedacted) {
  // A malformed cell may hold a label or feature value; the diagnostic
  // must report coordinates and length, never the cell bytes themselves
  // (Status messages cross party and log boundaries).
  const std::string path = "/tmp/pivot_csv_redact_test.csv";
  {
    std::ofstream out(path);
    out << "1.0,2.0\n3.0,secret_label_77\n";
  }
  Result<Dataset> loaded = LoadCsv(path);
  std::remove(path.c_str());
  ASSERT_FALSE(loaded.ok());
  const std::string& msg = loaded.status().message();
  EXPECT_EQ(msg.find("secret_label_77"), std::string::npos) << msg;
  EXPECT_NE(msg.find("row 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("col 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("15 bytes"), std::string::npos) << msg;
}

TEST(SyntheticTest, ClassificationShapeAndLabels) {
  ClassificationSpec spec;
  spec.num_samples = 500;
  spec.num_features = 10;
  spec.num_classes = 4;
  Dataset d = MakeClassification(spec);
  EXPECT_EQ(d.num_samples(), 500u);
  EXPECT_EQ(d.num_features(), 10u);
  EXPECT_EQ(d.NumClasses(), 4);
  for (double y : d.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 4);
  }
}

TEST(SyntheticTest, ClassificationIsDeterministicInSeed) {
  ClassificationSpec spec;
  spec.seed = 42;
  Dataset a = MakeClassification(spec);
  Dataset b = MakeClassification(spec);
  EXPECT_EQ(a.features, b.features);
  spec.seed = 43;
  Dataset c = MakeClassification(spec);
  EXPECT_NE(a.features, c.features);
}

TEST(SyntheticTest, ClassificationIsSeparable) {
  // With high separation, a 1-nearest-centroid rule on the informative
  // features should beat random guessing comfortably.
  ClassificationSpec spec;
  spec.num_samples = 400;
  spec.num_classes = 2;
  spec.class_separation = 3.0;
  Dataset d = MakeClassification(spec);
  // Proxy check: mean of feature 0 differs across classes.
  double mean0 = 0, mean1 = 0;
  int n0 = 0, n1 = 0;
  for (size_t i = 0; i < d.num_samples(); ++i) {
    if (d.labels[i] == 0) {
      mean0 += d.features[i][0];
      ++n0;
    } else {
      mean1 += d.features[i][0];
      ++n1;
    }
  }
  mean0 /= n0;
  mean1 /= n1;
  EXPECT_GT(std::abs(mean0 - mean1), 0.5);
}

TEST(SyntheticTest, RegressionLabelsBounded) {
  RegressionSpec spec;
  spec.num_samples = 300;
  Dataset d = MakeRegression(spec);
  EXPECT_EQ(d.num_samples(), 300u);
  double max_abs = 0;
  for (double y : d.labels) max_abs = std::max(max_abs, std::abs(y));
  EXPECT_LE(max_abs, 10.0 + 1e-9);
  EXPECT_GT(max_abs, 1.0);  // labels are not degenerate
}

}  // namespace
}  // namespace pivot
