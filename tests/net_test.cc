#include "net/network.h"

#include <gtest/gtest.h>

#include "net/codec.h"

namespace pivot {
namespace {

TEST(NetworkTest, PointToPoint) {
  InMemoryNetwork net(2);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      ep.Send(1, Bytes{1, 2, 3});
      PIVOT_ASSIGN_OR_RETURN(Bytes reply, ep.Recv(1));
      if (reply != Bytes{9}) return Status::Internal("bad reply");
    } else {
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
      if (msg != (Bytes{1, 2, 3})) return Status::Internal("bad msg");
      ep.Send(0, Bytes{9});
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(NetworkTest, FifoOrderPreserved) {
  InMemoryNetwork net(2);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      for (uint8_t i = 0; i < 10; ++i) ep.Send(1, Bytes{i});
    } else {
      for (uint8_t i = 0; i < 10; ++i) {
        PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
        if (msg[0] != i) return Status::Internal("order broken");
      }
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(NetworkTest, BroadcastAndGather) {
  InMemoryNetwork net(4);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    ep.Broadcast(Bytes{static_cast<uint8_t>(id)});
    Bytes own{static_cast<uint8_t>(id)};
    // Drain the broadcasts via explicit receives.
    for (int p = 0; p < 4; ++p) {
      if (p == id) continue;
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(p));
      if (msg[0] != p) return Status::Internal("wrong broadcast sender");
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(NetworkTest, GatherAllCollectsInOrder) {
  InMemoryNetwork net(3);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    ep.Broadcast(Bytes{static_cast<uint8_t>(10 + id)});
    PIVOT_ASSIGN_OR_RETURN(std::vector<Bytes> all,
                           ep.GatherAll(Bytes{static_cast<uint8_t>(10 + id)}));
    for (int p = 0; p < 3; ++p) {
      if (all[p][0] != 10 + p) return Status::Internal("gather order");
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(NetworkTest, RecvTimesOutInsteadOfHanging) {
  InMemoryNetwork net(2, /*recv_timeout_ms=*/50);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      Result<Bytes> r = ep.Recv(1);  // never sent
      if (r.ok()) return Status::Internal("expected timeout");
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(NetworkTest, TrafficCounters) {
  InMemoryNetwork net(2);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      ep.Send(1, Bytes(100, 0));
      if (ep.bytes_sent() != 100) return Status::Internal("bytes_sent");
      if (ep.messages_sent() != 1) return Status::Internal("messages_sent");
    } else {
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
      (void)msg;
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(net.total_bytes(), 100u);
}

TEST(NetworkTest, PartyErrorPropagatesWithId) {
  InMemoryNetwork net(2, 50);
  Status st = RunParties(net, [](int id, Endpoint&) -> Status {
    return id == 1 ? Status::Internal("boom") : Status::Ok();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("party 1"), std::string::npos);
}

TEST(CodecTest, BigIntVectorRoundTrip) {
  std::vector<BigInt> vals = {BigInt(0), BigInt(-123), BigInt(1) << 200};
  Bytes data = EncodeBigIntVector(vals);
  std::vector<BigInt> back = DecodeBigIntVector(data).value();
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], vals[0]);
  EXPECT_EQ(back[1], vals[1]);
  EXPECT_EQ(back[2], vals[2]);
}

TEST(CodecTest, U128VectorRoundTrip) {
  std::vector<u128> vals = {0, 1, (static_cast<u128>(1) << 100) + 7};
  Bytes data = EncodeU128Vector(vals);
  std::vector<u128> back = DecodeU128Vector(data).value();
  ASSERT_EQ(back.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(back[i] == vals[i]);
}

TEST(CodecTest, CiphertextVectorRoundTrip) {
  std::vector<Ciphertext> cts = {Ciphertext{BigInt(5)},
                                 Ciphertext{BigInt(1) << 300}};
  Bytes data = EncodeCiphertextVector(cts);
  std::vector<Ciphertext> back = DecodeCiphertextVector(data).value();
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].value, BigInt(5));
  EXPECT_EQ(back[1].value, BigInt(1) << 300);
}

TEST(CodecTest, MalformedInputRejected) {
  EXPECT_FALSE(DecodeBigIntVector(Bytes{1, 2}).ok());
  ByteWriter w;
  w.WriteU64(1000000);  // claims a million entries in 8 bytes
  EXPECT_FALSE(DecodeBigIntVector(w.data()).ok());
  EXPECT_FALSE(DecodeU128Vector(w.data()).ok());
}

}  // namespace
}  // namespace pivot
