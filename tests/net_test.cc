#include "net/network.h"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>

#include "net/codec.h"
#include "net/fault.h"
#include "net/wire.h"

namespace pivot {
namespace {

// Raw (unframed) channels: the PR-2 semantics where injected faults hit
// the application payload directly.
NetConfig RawConfig(int timeout_ms) {
  NetConfig c;
  c.recv_timeout_ms = timeout_ms;
  c.reliable = false;
  return c;
}

// Reliable channels with a fast backoff so recovery tests finish quickly.
NetConfig FastReliableConfig(int timeout_ms) {
  NetConfig c;
  c.recv_timeout_ms = timeout_ms;
  c.backoff_base_ms = 2;
  c.backoff_max_ms = 20;
  return c;
}

TEST(NetworkTest, PointToPoint) {
  InMemoryNetwork net(2);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes{1, 2, 3}));
      PIVOT_ASSIGN_OR_RETURN(Bytes reply, ep.Recv(1));
      if (reply != Bytes{9}) return Status::Internal("bad reply");
    } else {
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
      if (msg != (Bytes{1, 2, 3})) return Status::Internal("bad msg");
      PIVOT_RETURN_IF_ERROR(ep.Send(0, Bytes{9}));
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(NetworkTest, FifoOrderPreserved) {
  InMemoryNetwork net(2);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      for (uint8_t i = 0; i < 10; ++i) {
        PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes{i}));
      }
    } else {
      for (uint8_t i = 0; i < 10; ++i) {
        PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
        if (msg[0] != i) return Status::Internal("order broken");
      }
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(NetworkTest, BroadcastAndGather) {
  InMemoryNetwork net(4);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    PIVOT_RETURN_IF_ERROR(ep.Broadcast(Bytes{static_cast<uint8_t>(id)}));
    Bytes own{static_cast<uint8_t>(id)};
    // Drain the broadcasts via explicit receives.
    for (int p = 0; p < 4; ++p) {
      if (p == id) continue;
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(p));
      if (msg[0] != p) return Status::Internal("wrong broadcast sender");
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(NetworkTest, GatherAllCollectsInOrder) {
  InMemoryNetwork net(3);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    PIVOT_RETURN_IF_ERROR(
        ep.Broadcast(Bytes{static_cast<uint8_t>(10 + id)}));
    PIVOT_ASSIGN_OR_RETURN(std::vector<Bytes> all,
                           ep.GatherAll(Bytes{static_cast<uint8_t>(10 + id)}));
    for (int p = 0; p < 3; ++p) {
      if (all[p][0] != 10 + p) return Status::Internal("gather order");
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(NetworkTest, RecvTimesOutInsteadOfHanging) {
  InMemoryNetwork net(2, /*recv_timeout_ms=*/50);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      Result<Bytes> r = ep.Recv(1);  // never sent
      if (r.ok()) return Status::Internal("expected timeout");
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(NetworkTest, TrafficCounters) {
  InMemoryNetwork net(2);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes(100, 0)));
      if (ep.bytes_sent() != 100) return Status::Internal("bytes_sent");
      if (ep.messages_sent() != 1) return Status::Internal("messages_sent");
    } else {
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
      (void)msg;
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(net.total_bytes(), 100u);
}

TEST(NetworkTest, PartyErrorPropagatesWithId) {
  InMemoryNetwork net(2, 50);
  Status st = RunParties(net, [](int id, Endpoint&) -> Status {
    return id == 1 ? Status::Internal("boom") : Status::Ok();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("party 1"), std::string::npos);
}

TEST(NetworkTest, TimeoutErrorNamesChannel) {
  InMemoryNetwork net(2, /*recv_timeout_ms=*/50);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id != 0) return Status::Ok();
    Result<Bytes> r = ep.Recv(1);  // never sent
    if (r.ok()) return Status::Internal("expected timeout");
    return r.status();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("from party 1"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("at party 0"), std::string::npos);
  EXPECT_NE(st.message().find("queue depth"), std::string::npos);
}

TEST(NetworkTest, RecvCountersAndRounds) {
  InMemoryNetwork net(2);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes(100, 0)));
      PIVOT_ASSIGN_OR_RETURN(Bytes reply, ep.Recv(1));
      if (reply.size() != 50) return Status::Internal("reply size");
      if (ep.bytes_received() != 50) return Status::Internal("bytes_received");
      if (ep.messages_received() != 1) {
        return Status::Internal("messages_received");
      }
      if (ep.Rounds() != 1) return Status::Internal("rounds");
    } else {
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
      if (msg.size() != 100) return Status::Internal("msg size");
      PIVOT_RETURN_IF_ERROR(ep.Send(0, Bytes(50, 0)));
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.bytes_sent, 150u);
  EXPECT_EQ(stats.bytes_received, 150u);
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.messages_received, 2u);
  EXPECT_EQ(stats.rounds, 1u);
}

// Regression for the abort path (security-with-abort): when one of m
// parties fails, every peer — including one blocked inside GatherAll —
// must return non-OK well under a second, not after the recv timeout.
TEST(NetworkTest, AbortWakesBlockedPeersQuickly) {
  InMemoryNetwork net(3, /*recv_timeout_ms=*/30'000);
  std::mutex mu;
  std::vector<Status> per_party(3);
  const auto start = std::chrono::steady_clock::now();
  Status st = RunParties(net, [&](int id, Endpoint& ep) -> Status {
    Status out;
    if (id == 0) {
      Result<Bytes> r = ep.Recv(1);  // blocks until the abort lands
      out = r.ok() ? Status::Internal("unexpected message") : r.status();
    } else if (id == 1) {
      Result<std::vector<Bytes>> r = ep.GatherAll(Bytes{1});
      out = r.ok() ? Status::Internal("unexpected gather") : r.status();
    } else {
      out = Status::Internal("kaboom");
    }
    std::lock_guard<std::mutex> lock(mu);
    per_party[id] = out;
    return out;
  });
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_LT(ms, 1000.0);
  EXPECT_FALSE(st.ok());
  // Root cause preferred over abort echoes, prefixed with the party id.
  EXPECT_NE(st.message().find("party 2"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("kaboom"), std::string::npos);
  for (int p : {0, 1}) {
    EXPECT_EQ(per_party[p].code(), StatusCode::kAborted) << p;
    EXPECT_NE(per_party[p].message().find("party 2"), std::string::npos) << p;
  }
}

TEST(NetworkTest, SendFailsAfterAbort) {
  InMemoryNetwork net(2, /*recv_timeout_ms=*/30'000);
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 1) return Status::Internal("early exit");
    // A send-only loop must also terminate once the mesh aborts.
    for (int i = 0; i < 20'000; ++i) {
      Status s = ep.Send(1, Bytes{0});
      if (!s.ok()) return s;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return Status::Internal("send never failed");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
  EXPECT_NE(st.message().find("early exit"), std::string::npos);
}

TEST(FaultPlanTest, DeterministicFromSeed) {
  const FaultPlan a = FaultPlan::FromSeed(42, 3, 100);
  const FaultPlan b = FaultPlan::FromSeed(42, 3, 100);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString(), FaultPlan::FromSeed(43, 3, 100).ToString());
}

TEST(FaultPlanTest, DropCausesRecvTimeout) {
  InMemoryNetwork net(2, RawConfig(/*timeout_ms=*/50));
  FaultPlan plan;
  plan.Add({FaultKind::kDrop, /*party=*/0, /*peer=*/1, /*nth=*/0, 0, 0});
  net.set_fault_plan(std::move(plan));
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) return ep.Send(1, Bytes{7});
    Result<Bytes> r = ep.Recv(0);
    if (r.ok()) return Status::Internal("dropped message was delivered");
    return r.status();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("timed out"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(net.fired_fault_mask(), 1u);
}

TEST(FaultPlanTest, DuplicateDeliversTwice) {
  InMemoryNetwork net(2, RawConfig(/*timeout_ms=*/5'000));
  FaultPlan plan;
  plan.Add({FaultKind::kDuplicate, 0, 1, 0, 0, 0});
  net.set_fault_plan(std::move(plan));
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) return ep.Send(1, Bytes{7});
    for (int i = 0; i < 2; ++i) {
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
      if (msg != Bytes{7}) return Status::Internal("wrong duplicate body");
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(FaultPlanTest, CrashAbortsPeersWithPartyName) {
  InMemoryNetwork net(2, /*recv_timeout_ms=*/30'000);
  FaultPlan plan;
  plan.Add({FaultKind::kCrash, /*party=*/1, -1, /*nth=*/0, 0, 0});
  net.set_fault_plan(std::move(plan));
  const auto start = std::chrono::steady_clock::now();
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 1) return ep.Send(0, Bytes{1});  // fails: crashed at op 0
    Result<Bytes> r = ep.Recv(1);
    return r.ok() ? Status::Internal("expected abort") : r.status();
  });
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_LT(ms, 1000.0);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("party 1"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("crashed"), std::string::npos);
}

TEST(FaultPlanTest, TruncateShortensMessage) {
  InMemoryNetwork net(2, RawConfig(/*timeout_ms=*/5'000));
  FaultPlan plan;
  plan.Add({FaultKind::kTruncate, 0, 1, 0, 0, 0});
  net.set_fault_plan(std::move(plan));
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) return ep.Send(1, Bytes(10, 3));
    PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
    if (msg.size() != 5) return Status::Internal("not truncated");
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

// ----- Reliable channel layer -----------------------------------------

// A transiently dropped frame is recovered via probe NACK + retransmit:
// the receiver's Recv returns the intact payload and the run completes.
TEST(ReliableChannelTest, TransientDropMaskedByRetransmit) {
  InMemoryNetwork net(2, FastReliableConfig(/*timeout_ms=*/10'000));
  FaultPlan plan;
  plan.Add({FaultKind::kDrop, /*party=*/0, /*peer=*/1, /*nth=*/0, 0, 0});
  net.set_fault_plan(std::move(plan));
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes{42}));
      // Stay alive in Recv so the NACK from party 1 gets serviced.
      PIVOT_ASSIGN_OR_RETURN(Bytes ack, ep.Recv(1));
      if (ack != Bytes{1}) return Status::Internal("bad ack");
    } else {
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
      if (msg != Bytes{42}) return Status::Internal("bad payload");
      PIVOT_RETURN_IF_ERROR(ep.Send(0, Bytes{1}));
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  const NetworkStats stats = net.stats();
  EXPECT_GE(stats.retransmits, 1u);
  EXPECT_GE(stats.nacks_sent, 1u);
  // Logical counters are unaffected by the recovery traffic.
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.bytes_sent, 2u);
}

// A duplicated frame is delivered once; the second copy is suppressed by
// the sequence check and a following message still arrives in order.
TEST(ReliableChannelTest, DuplicateSuppressed) {
  InMemoryNetwork net(2, FastReliableConfig(/*timeout_ms=*/10'000));
  FaultPlan plan;
  plan.Add({FaultKind::kDuplicate, /*party=*/0, /*peer=*/1, /*nth=*/0, 0, 0});
  net.set_fault_plan(std::move(plan));
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes{7}));
      PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes{8}));
    } else {
      PIVOT_ASSIGN_OR_RETURN(Bytes a, ep.Recv(0));
      PIVOT_ASSIGN_OR_RETURN(Bytes b, ep.Recv(0));
      if (a != Bytes{7} || b != Bytes{8}) {
        return Status::Internal("duplicate leaked into the stream");
      }
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(net.stats().duplicates_suppressed, 1u);
}

// A transiently corrupted frame fails its CRC; the receiver NACKs and the
// retransmission (not re-faulted) delivers the original bytes.
TEST(ReliableChannelTest, ChecksumMismatchTriggersRetransmit) {
  InMemoryNetwork net(2, FastReliableConfig(/*timeout_ms=*/10'000));
  FaultPlan plan;
  plan.Add({FaultKind::kCorrupt, /*party=*/0, /*peer=*/1, /*nth=*/0, 0,
            /*bit=*/37});
  net.set_fault_plan(std::move(plan));
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes(64, 0xAB)));
      PIVOT_ASSIGN_OR_RETURN(Bytes ack, ep.Recv(1));
      (void)ack;
    } else {
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
      if (msg != Bytes(64, 0xAB)) return Status::Internal("payload damaged");
      PIVOT_RETURN_IF_ERROR(ep.Send(0, Bytes{1}));
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  const NetworkStats stats = net.stats();
  EXPECT_GE(stats.corrupt_frames, 1u);
  EXPECT_GE(stats.retransmits, 1u);
}

// A NACK for a frame that has been evicted from the bounded resend buffer
// is unrecoverable: the sender fails with a ProtocolError naming the
// window, and the mesh aborts.
TEST(ReliableChannelTest, ResendBufferEvictionAborts) {
  NetConfig cfg = FastReliableConfig(/*timeout_ms=*/10'000);
  cfg.resend_buffer_frames = 2;
  InMemoryNetwork net(2, cfg);
  FaultPlan plan;
  plan.Add({FaultKind::kDrop, /*party=*/0, /*peer=*/1, /*nth=*/0, 0, 0});
  net.set_fault_plan(std::move(plan));
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      // Push seq 0..7; the 2-frame window evicts the dropped seq 0 long
      // before the receiver's NACK for it can arrive.
      for (int i = 0; i < 8; ++i) {
        PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes{static_cast<uint8_t>(i)}));
      }
      Result<Bytes> r = ep.Recv(1);  // services the doomed NACK
      return r.ok() ? Status::Internal("expected eviction error") : r.status();
    }
    // Give the sender time to overrun its resend window first.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (int i = 0; i < 8; ++i) {
      Result<Bytes> r = ep.Recv(0);
      if (!r.ok()) return r.status();
    }
    return Status::Internal("dropped frame was delivered");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("resend"), std::string::npos) << st.ToString();
}

// A fatal corrupt fault damages every retransmission too; the receiver's
// evidence-backed retry budget runs out and the failure escalates through
// the abort path, reaching peers as kAborted.
TEST(ReliableChannelTest, RetryBudgetExhaustionEscalatesToAbort) {
  NetConfig cfg = FastReliableConfig(/*timeout_ms=*/30'000);
  cfg.retry_budget = 3;
  InMemoryNetwork net(2, cfg);
  FaultPlan plan;
  FaultAction corrupt;
  corrupt.kind = FaultKind::kCorrupt;
  corrupt.party = 0;
  corrupt.peer = 1;
  corrupt.nth = 0;
  corrupt.bit = 11;
  corrupt.fatal = true;
  plan.Add(corrupt);
  net.set_fault_plan(std::move(plan));
  std::mutex mu;
  std::vector<Status> per_party(2);
  Status st = RunParties(net, [&](int id, Endpoint& ep) -> Status {
    Status out;
    if (id == 0) {
      Status s = ep.Send(1, Bytes(32, 5));
      if (!s.ok()) {
        out = s;
      } else {
        Result<Bytes> r = ep.Recv(1);  // blocks servicing NACKs until abort
        out = r.ok() ? Status::Internal("expected abort") : r.status();
      }
    } else {
      Result<Bytes> r = ep.Recv(0);
      out = r.ok() ? Status::Internal("expected budget exhaustion")
                   : r.status();
    }
    std::lock_guard<std::mutex> lock(mu);
    per_party[id] = out;
    return out;
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("retry budget exhausted"), std::string::npos)
      << st.ToString();
  // The sender, blocked in Recv, is woken by the abort.
  EXPECT_EQ(per_party[0].code(), StatusCode::kAborted)
      << per_party[0].ToString();
  EXPECT_GE(net.stats().corrupt_frames, 3u);
}

TEST(NetConfigTest, FromEnvOverridesFields) {
  setenv("PIVOT_NET_RECV_TIMEOUT_MS", "1234", 1);
  setenv("PIVOT_NET_RETRY_BUDGET", "5", 1);
  setenv("PIVOT_NET_RELIABLE", "0", 1);
  setenv("PIVOT_NET_BACKOFF_BASE_MS", "3", 1);
  setenv("PIVOT_NET_BACKOFF_MAX_MS", "77", 1);
  setenv("PIVOT_NET_RESEND_FRAMES", "9", 1);
  const Result<NetConfig> cfg_or = NetConfig::FromEnv();
  unsetenv("PIVOT_NET_RECV_TIMEOUT_MS");
  unsetenv("PIVOT_NET_RETRY_BUDGET");
  unsetenv("PIVOT_NET_RELIABLE");
  unsetenv("PIVOT_NET_BACKOFF_BASE_MS");
  unsetenv("PIVOT_NET_BACKOFF_MAX_MS");
  unsetenv("PIVOT_NET_RESEND_FRAMES");
  ASSERT_TRUE(cfg_or.ok()) << cfg_or.status().ToString();
  const NetConfig& cfg = cfg_or.value();
  EXPECT_EQ(cfg.recv_timeout_ms, 1234);
  EXPECT_EQ(cfg.retry_budget, 5);
  EXPECT_FALSE(cfg.reliable);
  EXPECT_EQ(cfg.backoff_base_ms, 3);
  EXPECT_EQ(cfg.backoff_max_ms, 77);
  EXPECT_EQ(cfg.resend_buffer_frames, 9);
  // Unset variables leave the base untouched.
  const Result<NetConfig> plain = NetConfig::FromEnv();
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain.value().reliable);
}

TEST(NetConfigTest, FromEnvRejectsUnparsableValues) {
  setenv("PIVOT_NET_RECV_TIMEOUT_MS", "12s", 1);
  const Result<NetConfig> cfg = NetConfig::FromEnv();
  unsetenv("PIVOT_NET_RECV_TIMEOUT_MS");
  ASSERT_FALSE(cfg.ok());
  EXPECT_EQ(cfg.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(cfg.status().message().find("PIVOT_NET_RECV_TIMEOUT_MS"),
            std::string::npos)
      << cfg.status().ToString();
  EXPECT_NE(cfg.status().message().find("12s"), std::string::npos)
      << cfg.status().ToString();
}

TEST(NetConfigTest, FromEnvRejectsNonPositiveTimeoutsAndBudgets) {
  const auto reject = [](const char* name, const char* value,
                         const char* field) {
    setenv(name, value, 1);
    const Result<NetConfig> cfg = NetConfig::FromEnv();
    unsetenv(name);
    ASSERT_FALSE(cfg.ok()) << name << "=" << value;
    EXPECT_EQ(cfg.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(cfg.status().message().find(field), std::string::npos)
        << cfg.status().ToString();
  };
  reject("PIVOT_NET_RECV_TIMEOUT_MS", "0", "recv_timeout_ms");
  reject("PIVOT_NET_RECV_TIMEOUT_MS", "-5", "recv_timeout_ms");
  reject("PIVOT_NET_RETRY_BUDGET", "-1", "retry_budget");
  reject("PIVOT_NET_BACKOFF_BASE_MS", "0", "backoff_base_ms");
  reject("PIVOT_NET_BACKOFF_MAX_MS", "-3", "backoff_max_ms");
  reject("PIVOT_NET_RESEND_FRAMES", "0", "resend_buffer_frames");
}

TEST(NetConfigTest, FromEnvRejectsBackoffMaxBelowBase) {
  setenv("PIVOT_NET_BACKOFF_BASE_MS", "100", 1);
  setenv("PIVOT_NET_BACKOFF_MAX_MS", "50", 1);
  const Result<NetConfig> cfg = NetConfig::FromEnv();
  unsetenv("PIVOT_NET_BACKOFF_BASE_MS");
  unsetenv("PIVOT_NET_BACKOFF_MAX_MS");
  ASSERT_FALSE(cfg.ok());
  EXPECT_EQ(cfg.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultPlanTest, TransientOnlyMixHasNoFatalActions) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const FaultPlan plan = FaultPlan::FromSeed(
        seed, 3, /*fatal_ms=*/1000, 40, 12, FaultMix::kTransientOnly);
    for (const FaultAction& a : plan.actions()) {
      EXPECT_FALSE(a.fatal) << a.ToString();
      EXPECT_NE(a.kind, FaultKind::kCrash) << a.ToString();
    }
  }
}

TEST(FaultPlanTest, FatalOnlyMixIsAllFatalMessageFaults) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const FaultPlan plan = FaultPlan::FromSeed(
        seed, 3, /*fatal_ms=*/1000, 40, 12, FaultMix::kFatalOnly);
    EXPECT_FALSE(plan.empty());
    for (const FaultAction& a : plan.actions()) {
      EXPECT_TRUE(a.fatal) << a.ToString();
      EXPECT_NE(a.kind, FaultKind::kDuplicate) << a.ToString();
    }
  }
}

TEST(FaultPlanTest, CrashRecoveryMixHasExactlyOneTransientCrash) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const FaultPlan plan = FaultPlan::FromSeed(
        seed, 3, /*fatal_ms=*/1000, 40, 12, FaultMix::kCrashRecovery);
    int crashes = 0;
    for (const FaultAction& a : plan.actions()) {
      EXPECT_FALSE(a.fatal) << a.ToString();
      if (a.kind == FaultKind::kCrash) ++crashes;
    }
    EXPECT_EQ(crashes, 1) << plan.ToString();
  }
}

TEST(FaultPlanTest, WithoutFiredTransientKeepsFatalAndUnfired) {
  FaultPlan plan;
  FaultAction fatal_drop;
  fatal_drop.kind = FaultKind::kDrop;
  fatal_drop.fatal = true;
  plan.Add(fatal_drop);                                    // index 0
  plan.Add({FaultKind::kCorrupt, 0, 1, 2, 0, 0});          // index 1
  plan.Add({FaultKind::kDuplicate, 1, 0, 3, 0, 0});        // index 2
  const FaultPlan pruned = plan.WithoutFiredTransient(/*fired=*/0b010);
  ASSERT_EQ(pruned.actions().size(), 2u);
  EXPECT_TRUE(pruned.actions()[0].fatal);
  EXPECT_EQ(pruned.actions()[1].kind, FaultKind::kDuplicate);
}

TEST(CodecTest, BigIntVectorRoundTrip) {
  std::vector<BigInt> vals = {BigInt(0), BigInt(-123), BigInt(1) << 200};
  Bytes data = EncodeBigIntVector(vals);
  std::vector<BigInt> back = DecodeBigIntVector(data).value();
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], vals[0]);
  EXPECT_EQ(back[1], vals[1]);
  EXPECT_EQ(back[2], vals[2]);
}

TEST(CodecTest, U128VectorRoundTrip) {
  std::vector<u128> vals = {0, 1, (static_cast<u128>(1) << 100) + 7};
  Bytes data = EncodeU128Vector(vals);
  std::vector<u128> back = DecodeU128Vector(data).value();
  ASSERT_EQ(back.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(back[i] == vals[i]);
}

TEST(CodecTest, CiphertextVectorRoundTrip) {
  std::vector<Ciphertext> cts = {Ciphertext{BigInt(5)},
                                 Ciphertext{BigInt(1) << 300}};
  Bytes data = EncodeCiphertextVector(cts);
  std::vector<Ciphertext> back = DecodeCiphertextVector(data).value();
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].value, BigInt(5));
  EXPECT_EQ(back[1].value, BigInt(1) << 300);
}

// ----- socket stream framing (net/wire.h) ------------------------------
//
// The incremental reader must survive every split TCP can produce:
// partial writes on the sender side show up as short reads here, so a
// frame may arrive in any number of pieces, including one byte at a
// time, or glued to its neighbors in a single read.

TEST(StreamFramingTest, OneByteAtATimeReassembles) {
  const Bytes frame =
      EncodeStreamFrame(StreamFrameType::kData, Bytes{0xAA, 0xBB, 0xCC});
  StreamFrameReader reader(1 << 20);
  std::vector<StreamFrame> out;
  for (size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE(reader.Feed(&frame[i], 1, &out).ok());
    if (i + 1 < frame.size()) {
      EXPECT_TRUE(out.empty()) << "frame completed " << (frame.size() - i - 1)
                               << " bytes early";
      // After the first byte the reader is always mid-frame.
      EXPECT_TRUE(reader.mid_frame());
    }
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, static_cast<uint8_t>(StreamFrameType::kData));
  EXPECT_EQ(out[0].body, (Bytes{0xAA, 0xBB, 0xCC}));
  EXPECT_FALSE(reader.mid_frame());
}

TEST(StreamFramingTest, CoalescedFramesSplitAtEveryOffset) {
  // Two frames in one buffer, cut at every possible position: both must
  // come out intact regardless of where the read boundary lands.
  Bytes wire = EncodeStreamFrame(StreamFrameType::kNack, EncodeNackBody(7));
  const Bytes second =
      EncodeStreamFrame(StreamFrameType::kHeartbeat, EncodeHeartbeatBody(3));
  wire.insert(wire.end(), second.begin(), second.end());
  for (size_t cut = 0; cut <= wire.size(); ++cut) {
    StreamFrameReader reader(1 << 20);
    std::vector<StreamFrame> out;
    ASSERT_TRUE(reader.Feed(wire.data(), cut, &out).ok());
    ASSERT_TRUE(reader.Feed(wire.data() + cut, wire.size() - cut, &out).ok());
    ASSERT_EQ(out.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(out[0].type, static_cast<uint8_t>(StreamFrameType::kNack));
    EXPECT_EQ(out[1].type, static_cast<uint8_t>(StreamFrameType::kHeartbeat));
    EXPECT_FALSE(reader.mid_frame());
  }
}

TEST(StreamFramingTest, MidFrameDropIsVisible) {
  // A connection that dies halfway through a frame leaves the reader
  // mid-frame; the receiver loop reports this in its drop diagnostics.
  const Bytes frame = EncodeStreamFrame(StreamFrameType::kData, Bytes(64, 9));
  StreamFrameReader reader(1 << 20);
  std::vector<StreamFrame> out;
  ASSERT_TRUE(reader.Feed(frame.data(), frame.size() / 2, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(reader.mid_frame());
}

TEST(StreamFramingTest, ZeroLengthPrefixRejected) {
  // Length counts the type byte, so zero cannot encode any frame.
  const uint8_t header[5] = {0, 0, 0, 0, 0};
  StreamFrameReader reader(1 << 20);
  std::vector<StreamFrame> out;
  Status st = reader.Feed(header, sizeof(header), &out);
  EXPECT_EQ(st.code(), StatusCode::kProtocolError) << st.ToString();
}

TEST(StreamFramingTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  // A corrupt or hostile length prefix must fail when the *header*
  // completes — no payload buffer may be sized from an untrusted length.
  // (If the reader tried to allocate first, this 4 GiB claim from five
  // bytes of input would be an OOM lever.)
  uint8_t header[5] = {0xFF, 0xFF, 0xFF, 0xFF, 1};
  StreamFrameReader reader(/*max_frame_bytes=*/1024);
  std::vector<StreamFrame> out;
  Status st = reader.Feed(header, sizeof(header), &out);
  ASSERT_EQ(st.code(), StatusCode::kProtocolError) << st.ToString();
  EXPECT_NE(st.ToString().find("length prefix"), std::string::npos);
}

TEST(StreamFramingTest, MaxSizedFrameAccepted) {
  // The limit is inclusive: a body of exactly max_frame_bytes parses.
  const Bytes body(1024, 0x5A);
  const Bytes frame = EncodeStreamFrame(StreamFrameType::kData, body);
  StreamFrameReader reader(/*max_frame_bytes=*/1024);
  std::vector<StreamFrame> out;
  ASSERT_TRUE(reader.Feed(frame.data(), frame.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].body, body);
}

TEST(StreamFramingTest, EmptyBodyFrameCompletesOnHeader) {
  // Heartbeat-style frames with an empty body are legal: length 1 covers
  // just the type byte and the frame completes with no body bytes.
  const Bytes frame = EncodeStreamFrame(StreamFrameType::kAbort, Bytes{});
  StreamFrameReader reader(1 << 20);
  std::vector<StreamFrame> out;
  ASSERT_TRUE(reader.Feed(frame.data(), frame.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].body.empty());
  EXPECT_FALSE(reader.mid_frame());
}

TEST(CodecTest, MalformedInputRejected) {
  EXPECT_FALSE(DecodeBigIntVector(Bytes{1, 2}).ok());
  ByteWriter w;
  w.WriteU64(1000000);  // claims a million entries in 8 bytes
  EXPECT_FALSE(DecodeBigIntVector(w.data()).ok());
  EXPECT_FALSE(DecodeU128Vector(w.data()).ok());
}

}  // namespace
}  // namespace pivot
