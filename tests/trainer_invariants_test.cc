#include <gtest/gtest.h>

#include <mutex>
#include <tuple>

#include "data/synthetic.h"
#include "pivot/runner.h"
#include "pivot/trainer.h"

namespace pivot {
namespace {

// Structural invariants of trained Pivot trees over a parameter grid:
// protocol x task x (m, depth). Every tree must be a well-formed binary
// tree within the depth budget, with valid owners/features and exactly
// one more leaf than internal node.

using GridParam = std::tuple<Protocol, TreeTask, int /*m*/, int /*depth*/>;

class TrainerInvariantsTest : public ::testing::TestWithParam<GridParam> {};

int DepthOf(const PivotTree& tree, int id) {
  const PivotNode& n = tree.nodes[id];
  if (n.is_leaf) return 0;
  return 1 + std::max(DepthOf(tree, n.left), DepthOf(tree, n.right));
}

TEST_P(TrainerInvariantsTest, WellFormedTree) {
  const auto [protocol, task, m, depth] = GetParam();
  Dataset data;
  if (task == TreeTask::kRegression) {
    RegressionSpec spec;
    spec.num_samples = 30;
    spec.num_features = 2 * m;
    spec.seed = 1000 + m + depth;
    data = MakeRegression(spec);
  } else {
    ClassificationSpec spec;
    spec.num_samples = 30;
    spec.num_features = 2 * m;
    spec.num_classes = 2;
    spec.seed = 2000 + m + depth;
    data = MakeClassification(spec);
  }
  FederationConfig cfg;
  cfg.num_parties = m;
  cfg.params.tree.task = task;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = depth;
  cfg.params.tree.max_splits = 3;
  cfg.params.tree.min_samples_split = 4;
  cfg.params.key_bits = protocol == Protocol::kEnhanced ? 384 : 256;

  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.protocol = protocol;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));

    if (tree.nodes.empty()) return Status::Internal("empty tree");
    if (DepthOf(tree, 0) > depth) return Status::Internal("depth exceeded");
    if (tree.NumLeaves() != tree.NumInternalNodes() + 1) {
      return Status::Internal("leaf/internal count broken");
    }
    std::vector<int> seen(tree.nodes.size(), 0);
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      const PivotNode& n = tree.nodes[i];
      if (n.is_leaf) continue;
      if (n.left < 0 || n.right < 0 ||
          n.left >= static_cast<int>(tree.nodes.size()) ||
          n.right >= static_cast<int>(tree.nodes.size()) ||
          n.left == n.right) {
        return Status::Internal("bad child links");
      }
      ++seen[n.left];
      ++seen[n.right];
      if (n.owner < -1 || n.owner >= m) return Status::Internal("bad owner");
      if (protocol == Protocol::kBasic) {
        if (n.owner < 0 || n.feature_local < 0) {
          return Status::Internal("basic node missing identity");
        }
        const int d_local = static_cast<int>(
            PartitionVertically(data, m).views[n.owner].num_features());
        if (n.feature_local >= d_local) {
          return Status::Internal("feature index out of range");
        }
      }
      if (task == TreeTask::kClassification &&
          protocol == Protocol::kBasic) {
        // leaf classes valid
      }
    }
    // Every non-root node has exactly one parent; the root has none.
    if (seen[0] != 0) return Status::Internal("root has a parent");
    for (size_t i = 1; i < tree.nodes.size(); ++i) {
      if (seen[i] != 1) return Status::Internal("node parent count != 1");
    }
    if (protocol == Protocol::kBasic &&
        task == TreeTask::kClassification) {
      for (const PivotNode& n : tree.nodes) {
        if (n.is_leaf && (n.leaf_value < 0 || n.leaf_value > 1)) {
          return Status::Internal("leaf class out of range");
        }
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TrainerInvariantsTest,
    ::testing::Values(
        GridParam{Protocol::kBasic, TreeTask::kClassification, 2, 1},
        GridParam{Protocol::kBasic, TreeTask::kClassification, 3, 2},
        GridParam{Protocol::kBasic, TreeTask::kRegression, 2, 2},
        GridParam{Protocol::kEnhanced, TreeTask::kClassification, 2, 2},
        GridParam{Protocol::kEnhanced, TreeTask::kRegression, 2, 1}));

// Parallel threshold decryption must not change results.
TEST(ParallelDecryptionTest, SameTreeAsSequential) {
  ClassificationSpec spec;
  spec.num_samples = 30;
  spec.num_features = 4;
  spec.seed = 99;
  Dataset data = MakeClassification(spec);

  auto train = [&](int threads) {
    FederationConfig cfg;
    cfg.num_parties = 2;
    cfg.params.tree.num_classes = 2;
    cfg.params.tree.max_depth = 2;
    cfg.params.key_bits = 256;
    cfg.params.crypto_threads = threads;
    std::vector<PivotNode> nodes;
    std::mutex mu;
    Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
      TrainTreeOptions opts;
      PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
      if (ctx.id() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        nodes = tree.nodes;
      }
      return Status::Ok();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return nodes;
  };
  auto seq = train(1);
  auto par = train(4);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].owner, par[i].owner);
    EXPECT_DOUBLE_EQ(seq[i].threshold, par[i].threshold);
    EXPECT_DOUBLE_EQ(seq[i].leaf_value, par[i].leaf_value);
  }
}

}  // namespace
}  // namespace pivot
