#include "psi/psi.h"

#include <gtest/gtest.h>

#include <mutex>

namespace pivot {
namespace {

// Runs m-party PSI with the given per-party id sets and returns each
// party's computed intersection.
std::vector<std::vector<uint64_t>> RunPsi(
    const std::vector<std::vector<uint64_t>>& sets) {
  const int m = static_cast<int>(sets.size());
  InMemoryNetwork net(m);
  std::vector<std::vector<uint64_t>> results(m);
  std::mutex mu;
  Status st = RunParties(net, [&](int id, Endpoint& ep) -> Status {
    Rng rng(1000 + id);
    PIVOT_ASSIGN_OR_RETURN(std::vector<uint64_t> inter,
                           IntersectSampleIds(ep, sets[id], rng));
    std::lock_guard<std::mutex> lock(mu);
    results[id] = std::move(inter);
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return results;
}

TEST(PsiTest, TwoPartyIntersection) {
  auto results = RunPsi({{1, 2, 3, 4, 5}, {4, 2, 9, 100}});
  EXPECT_EQ(results[0], (std::vector<uint64_t>{2, 4}));
  EXPECT_EQ(results[1], (std::vector<uint64_t>{4, 2}));
}

TEST(PsiTest, ThreePartyIntersection) {
  auto results = RunPsi({{10, 20, 30, 40}, {20, 40, 50}, {40, 20, 60, 70}});
  EXPECT_EQ(results[0], (std::vector<uint64_t>{20, 40}));
  EXPECT_EQ(results[1], (std::vector<uint64_t>{20, 40}));
  EXPECT_EQ(results[2], (std::vector<uint64_t>{40, 20}));
}

TEST(PsiTest, DisjointSetsGiveEmptyIntersection) {
  auto results = RunPsi({{1, 2}, {3, 4}, {5, 6}});
  for (const auto& r : results) EXPECT_TRUE(r.empty());
}

TEST(PsiTest, IdenticalSets) {
  auto results = RunPsi({{7, 8, 9}, {9, 8, 7}});
  EXPECT_EQ(results[0].size(), 3u);
  EXPECT_EQ(results[1].size(), 3u);
}

TEST(PsiTest, SinglePartyReturnsOwnSet) {
  auto results = RunPsi({{5, 6, 7}});
  EXPECT_EQ(results[0], (std::vector<uint64_t>{5, 6, 7}));
}

TEST(PsiTest, UnevenSizesAndLargeIds) {
  auto results =
      RunPsi({{0xFFFFFFFFFFFFFFFFULL, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}});
  EXPECT_EQ(results[0], (std::vector<uint64_t>{1}));
  EXPECT_EQ(results[1], (std::vector<uint64_t>{1}));
}

TEST(PsiTest, BlindedEncodingsHideNonMembers) {
  // Structural property: two different ids never produce the same group
  // element before blinding (hash injectivity in practice), and the
  // protocol returns only common ids — checked by a superset/subset case.
  auto results = RunPsi({{1, 2, 3, 4, 5, 6}, {2, 4, 6}});
  EXPECT_EQ(results[0], (std::vector<uint64_t>{2, 4, 6}));
}

}  // namespace
}  // namespace pivot
