#include "tree/cart.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "tree/forest.h"
#include "tree/gbdt.h"
#include "tree/splits.h"
#include "tree/tree_model.h"

namespace pivot {
namespace {

TEST(SplitCandidatesTest, MidpointsOfDistinctValues) {
  std::vector<double> candidates = ComputeSplitCandidates({1, 2, 3}, 8);
  EXPECT_EQ(candidates, (std::vector<double>{1.5, 2.5}));
}

TEST(SplitCandidatesTest, HandlesDuplicatesAndConstants) {
  EXPECT_EQ(ComputeSplitCandidates({5, 5, 5}, 8).size(), 0u);
  std::vector<double> c = ComputeSplitCandidates({1, 1, 2, 2}, 8);
  EXPECT_EQ(c, (std::vector<double>{1.5}));
}

TEST(SplitCandidatesTest, RespectsMaxSplits) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  std::vector<double> c = ComputeSplitCandidates(values, 8);
  EXPECT_LE(c.size(), 8u);
  EXPECT_GE(c.size(), 4u);
  for (size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
}

TEST(TreeModelTest, PredictRouting) {
  TreeModel model;
  TreeNode root;
  root.feature = 0;
  root.threshold = 5.0;
  int root_id = model.AddNode(root);
  TreeNode l, r;
  l.is_leaf = true;
  l.leaf_value = 1.0;
  r.is_leaf = true;
  r.leaf_value = 2.0;
  model.node(root_id).left = model.AddNode(l);
  model.node(root_id).right = model.AddNode(r);

  EXPECT_DOUBLE_EQ(model.Predict({3.0}), 1.0);
  EXPECT_DOUBLE_EQ(model.Predict({5.0}), 1.0);  // <= goes left
  EXPECT_DOUBLE_EQ(model.Predict({7.0}), 2.0);
  EXPECT_EQ(model.NumInternalNodes(), 1);
  EXPECT_EQ(model.NumLeaves(), 2);
  EXPECT_EQ(model.MaxDepth(), 1);
}

TEST(GiniGainTest, PerfectSplitMaximizesGain) {
  // 4 of class 0 left, 4 of class 1 right: gain = 1 - 0.5 = 0.5.
  double perfect = GiniGain({4, 0}, {0, 4});
  EXPECT_NEAR(perfect, 0.5, 1e-12);
  // Useless split: same distribution both sides.
  double useless = GiniGain({2, 2}, {2, 2});
  EXPECT_NEAR(useless, 0.0, 1e-12);
  EXPECT_GT(perfect, GiniGain({3, 1}, {1, 3}));
}

TEST(GiniGainTest, EmptyChildGivesZeroGain) {
  EXPECT_NEAR(GiniGain({3, 2}, {0, 0}), 0.0, 1e-12);
  EXPECT_NEAR(GiniGain({0, 0}, {0, 0}), 0.0, 1e-12);
}

TEST(VarianceGainTest, SeparatingMeansGivesPositiveGain) {
  // Left: values {1,1}, right: values {5,5}: total variance 4, children 0.
  double gain = VarianceGain(2, 2, 2, 2, 10, 50);
  EXPECT_NEAR(gain, 4.0, 1e-12);
  // No separation: zero gain.
  EXPECT_NEAR(VarianceGain(2, 6, 26, 2, 6, 26), 0.0, 1e-12);
}

TEST(CartTest, LearnsSimpleThresholdRule) {
  // y = [x > 0]; tree should recover it exactly.
  Dataset d;
  for (int i = -20; i <= 20; ++i) {
    if (i == 0) continue;
    d.features.push_back({static_cast<double>(i)});
    d.labels.push_back(i > 0 ? 1.0 : 0.0);
  }
  TreeParams params;
  params.max_depth = 2;
  params.num_classes = 2;
  // Keep every midpoint as a candidate so the exact boundary is available.
  params.max_splits = 64;
  params.min_samples_split = 2;
  TreeModel model = TrainCart(d, params);
  EXPECT_DOUBLE_EQ(Accuracy(PredictAll(model, d), d.labels), 1.0);
}

TEST(CartTest, PureNodeBecomesLeafEarly) {
  Dataset d;
  for (int i = 0; i < 20; ++i) {
    d.features.push_back({static_cast<double>(i)});
    d.labels.push_back(0.0);  // single class
  }
  TreeParams params;
  TreeModel model = TrainCart(d, params);
  EXPECT_EQ(model.NumInternalNodes(), 0);
  EXPECT_DOUBLE_EQ(model.Predict({5}), 0.0);
}

TEST(CartTest, RespectsMaxDepth) {
  ClassificationSpec spec;
  spec.num_samples = 400;
  spec.num_features = 8;
  Dataset d = MakeClassification(spec);
  for (int depth : {1, 2, 3}) {
    TreeParams params;
    params.num_classes = spec.num_classes;
    params.max_depth = depth;
    params.min_samples_split = 2;
    TreeModel model = TrainCart(d, params);
    EXPECT_LE(model.MaxDepth(), depth);
  }
}

TEST(CartTest, BeatsMajorityClassOnSyntheticData) {
  ClassificationSpec spec;
  spec.num_samples = 600;
  spec.num_features = 10;
  spec.num_classes = 2;
  spec.class_separation = 2.0;
  Dataset d = MakeClassification(spec);
  Rng rng(5);
  TrainTestSplit split = SplitTrainTest(d, 0.3, rng);

  TreeParams params;
  params.num_classes = 2;
  params.max_depth = 4;
  TreeModel model = TrainCart(split.train, params);
  double acc = Accuracy(PredictAll(model, split.test), split.test.labels);
  EXPECT_GT(acc, 0.7);
}

TEST(CartTest, RegressionReducesMseVsMeanPredictor) {
  RegressionSpec spec;
  spec.num_samples = 600;
  Dataset d = MakeRegression(spec);
  Rng rng(6);
  TrainTestSplit split = SplitTrainTest(d, 0.3, rng);

  TreeParams params;
  params.task = TreeTask::kRegression;
  params.max_depth = 5;
  TreeModel model = TrainCart(split.train, params);

  double mean = 0;
  for (double y : split.train.labels) mean += y;
  mean /= split.train.labels.size();
  std::vector<double> mean_pred(split.test.num_samples(), mean);

  double tree_mse = MeanSquaredError(PredictAll(model, split.test),
                                     split.test.labels);
  double mean_mse = MeanSquaredError(mean_pred, split.test.labels);
  EXPECT_LT(tree_mse, 0.8 * mean_mse);
}

TEST(CartTest, FeatureRemovedAlongPath) {
  // Algorithm 1 removes a used feature from F; with one feature the tree
  // can split at most once regardless of depth budget.
  Dataset d;
  for (int i = 0; i < 40; ++i) {
    d.features.push_back({static_cast<double>(i % 10)});
    d.labels.push_back((i % 10) < 5 ? 0.0 : 1.0);
  }
  TreeParams params;
  params.max_depth = 5;
  params.min_samples_split = 2;
  params.max_splits = 16;
  TreeModel model = TrainCart(d, params);
  EXPECT_LE(model.MaxDepth(), 1);
}

TEST(ForestTest, ClassificationVoteBeatsChance) {
  ClassificationSpec spec;
  spec.num_samples = 500;
  spec.num_classes = 3;
  spec.class_separation = 2.0;
  Dataset d = MakeClassification(spec);
  Rng rng(9);
  TrainTestSplit split = SplitTrainTest(d, 0.3, rng);

  ForestParams params;
  params.tree.num_classes = 3;
  params.tree.max_depth = 4;
  params.num_trees = 10;
  ForestModel model = TrainForest(split.train, params);
  EXPECT_EQ(model.trees.size(), 10u);
  double acc = Accuracy(PredictAll(model, split.test), split.test.labels);
  EXPECT_GT(acc, 0.55);
}

TEST(ForestTest, RegressionMeanAggregation) {
  RegressionSpec spec;
  spec.num_samples = 400;
  Dataset d = MakeRegression(spec);
  ForestParams params;
  params.tree.task = TreeTask::kRegression;
  params.num_trees = 5;
  ForestModel model = TrainForest(d, params);
  // Aggregate equals mean of individual trees.
  const auto& row = d.features[0];
  double mean = 0;
  for (const TreeModel& t : model.trees) mean += t.Predict(row);
  mean /= model.trees.size();
  EXPECT_NEAR(model.Predict(row), mean, 1e-12);
}

TEST(GbdtTest, RegressionImprovesWithRounds) {
  RegressionSpec spec;
  spec.num_samples = 500;
  Dataset d = MakeRegression(spec);
  Rng rng(11);
  TrainTestSplit split = SplitTrainTest(d, 0.3, rng);

  GbdtParams p1;
  p1.tree.task = TreeTask::kRegression;
  p1.tree.max_depth = 3;
  p1.num_rounds = 1;
  GbdtParams p8 = p1;
  p8.num_rounds = 8;

  double mse1 = MeanSquaredError(
      PredictAll(TrainGbdt(split.train, p1), split.test), split.test.labels);
  double mse8 = MeanSquaredError(
      PredictAll(TrainGbdt(split.train, p8), split.test), split.test.labels);
  EXPECT_LT(mse8, mse1);
}

TEST(GbdtTest, ClassificationOneVsRest) {
  ClassificationSpec spec;
  spec.num_samples = 500;
  spec.num_classes = 3;
  spec.class_separation = 2.0;
  Dataset d = MakeClassification(spec);
  Rng rng(13);
  TrainTestSplit split = SplitTrainTest(d, 0.3, rng);

  GbdtParams params;
  params.tree.task = TreeTask::kClassification;
  params.tree.num_classes = 3;
  params.tree.max_depth = 3;
  params.num_rounds = 5;
  GbdtModel model = TrainGbdt(split.train, params);
  EXPECT_EQ(model.trees.size(), 3u);       // one forest per class
  EXPECT_EQ(model.trees[0].size(), 5u);    // W rounds each
  double acc = Accuracy(PredictAll(model, split.test), split.test.labels);
  EXPECT_GT(acc, 0.6);
}

TEST(GbdtTest, PredictionsAreFiniteAndInRange) {
  ClassificationSpec spec;
  spec.num_samples = 200;
  spec.num_classes = 4;
  Dataset d = MakeClassification(spec);
  GbdtParams params;
  params.tree.task = TreeTask::kClassification;
  params.tree.num_classes = 4;
  params.num_rounds = 3;
  GbdtModel model = TrainGbdt(d, params);
  for (double p : PredictAll(model, d)) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

}  // namespace
}  // namespace pivot
