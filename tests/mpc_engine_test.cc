#include "mpc/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/fixed_point.h"
#include "mpc/dp.h"
#include "net/network.h"

namespace pivot {
namespace {

constexpr double kFixTol = 3.0 / (1 << 16);  // a few ulp of f=16 fixed point

[[maybe_unused]] u128 ToFix(double x) {
  return FpFromSigned(FixedFromDouble(x));
}
double FromFix(u128 v) {
  return FixedToDouble(static_cast<int64_t>(FpToSigned(v)));
}

// Runs `body` as an SPMD protocol over `m` parties and asserts success.
void RunMpc(int m, const std::function<Status(MpcEngine&, Preprocessing&)>& body,
            uint64_t seed = 1234) {
  InMemoryNetwork net(m);
  Status st = RunParties(net, [&](int id, Endpoint& ep) -> Status {
    Preprocessing prep(id, m, seed);
    MpcEngine eng(&ep, &prep, seed * 31 + id);
    return body(eng, prep);
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

#define MPC_EXPECT_OK(expr)                                \
  do {                                                     \
    if (!(expr).ok()) return (expr).status();              \
  } while (0)

class EngineBasicTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineBasicTest, InputOpenRoundTrip) {
  RunMpc(GetParam(), [](MpcEngine& eng, Preprocessing&) -> Status {
    for (i128 v : {i128{0}, i128{42}, i128{-17}, i128{1} << 60}) {
      PIVOT_ASSIGN_OR_RETURN(u128 share, eng.Input(0, v));
      PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(share));
      if (FpToSigned(opened) != v) return Status::Internal("open mismatch");
    }
    return Status::Ok();
  });
}

TEST_P(EngineBasicTest, InputFromEveryOwner) {
  const int m = GetParam();
  RunMpc(m, [m](MpcEngine& eng, Preprocessing&) -> Status {
    for (int owner = 0; owner < m; ++owner) {
      PIVOT_ASSIGN_OR_RETURN(u128 share, eng.Input(owner, 100 + owner));
      PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(share));
      if (FpToSigned(opened) != 100 + owner) {
        return Status::Internal("owner input mismatch");
      }
    }
    return Status::Ok();
  });
}

TEST_P(EngineBasicTest, SharesLookRandom) {
  // With more than one party, an individual share should not equal the
  // secret (overwhelmingly).
  const int m = GetParam();
  if (m == 1) return;
  RunMpc(m, [](MpcEngine& eng, Preprocessing&) -> Status {
    int hits = 0;
    for (int i = 0; i < 32; ++i) {
      PIVOT_ASSIGN_OR_RETURN(u128 share, eng.Input(0, 7));
      if (share == 7) ++hits;
    }
    if (hits > 1) return Status::Internal("shares leak the secret");
    return Status::Ok();
  });
}

TEST_P(EngineBasicTest, LinearOps) {
  RunMpc(GetParam(), [](MpcEngine& eng, Preprocessing&) -> Status {
    PIVOT_ASSIGN_OR_RETURN(u128 a, eng.Input(0, 30));
    PIVOT_ASSIGN_OR_RETURN(u128 b, eng.Input(0, 12));
    PIVOT_ASSIGN_OR_RETURN(u128 sum, eng.Open(MpcEngine::Add(a, b)));
    PIVOT_ASSIGN_OR_RETURN(u128 diff, eng.Open(MpcEngine::Sub(a, b)));
    PIVOT_ASSIGN_OR_RETURN(u128 neg, eng.Open(MpcEngine::Neg(a)));
    PIVOT_ASSIGN_OR_RETURN(u128 scaled, eng.Open(MpcEngine::MulPub(a, 3)));
    PIVOT_ASSIGN_OR_RETURN(u128 shifted, eng.Open(eng.AddConst(a, -50)));
    if (FpToSigned(sum) != 42) return Status::Internal("add");
    if (FpToSigned(diff) != 18) return Status::Internal("sub");
    if (FpToSigned(neg) != -30) return Status::Internal("neg");
    if (FpToSigned(scaled) != 90) return Status::Internal("mulpub");
    if (FpToSigned(shifted) != -20) return Status::Internal("addconst");
    return Status::Ok();
  });
}

TEST_P(EngineBasicTest, BeaverMultiplication) {
  RunMpc(GetParam(), [](MpcEngine& eng, Preprocessing&) -> Status {
    Rng vals(55);
    for (int i = 0; i < 20; ++i) {
      i128 x = static_cast<i128>(vals.NextInRange(-1000000, 1000000));
      i128 y = static_cast<i128>(vals.NextInRange(-1000000, 1000000));
      PIVOT_ASSIGN_OR_RETURN(u128 a, eng.Input(0, x));
      PIVOT_ASSIGN_OR_RETURN(u128 b, eng.Input(0, y));
      PIVOT_ASSIGN_OR_RETURN(u128 c, eng.Mul(a, b));
      PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(c));
      if (FpToSigned(opened) != x * y) return Status::Internal("mul mismatch");
    }
    return Status::Ok();
  });
}

TEST_P(EngineBasicTest, BatchedMultiplication) {
  RunMpc(GetParam(), [](MpcEngine& eng, Preprocessing&) -> Status {
    std::vector<i128> xs = {3, -4, 0, 1000};
    std::vector<i128> ys = {7, 5, 99, -1000};
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> a, eng.InputVector(0, xs, 4));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> b, eng.InputVector(0, ys, 4));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> c, eng.MulVec(a, b));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(c));
    for (int i = 0; i < 4; ++i) {
      if (FpToSigned(opened[i]) != xs[i] * ys[i]) {
        return Status::Internal("batched mul mismatch");
      }
    }
    return Status::Ok();
  });
}

INSTANTIATE_TEST_SUITE_P(Parties, EngineBasicTest, ::testing::Values(1, 2, 3, 5));

TEST(EngineFixedTest, MulFixed) {
  RunMpc(3, [](MpcEngine& eng, Preprocessing&) -> Status {
    for (auto [x, y] : {std::pair{1.5, 2.0}, {0.25, -8.0}, {-3.5, -2.0},
                        {100.0, 0.001}}) {
      PIVOT_ASSIGN_OR_RETURN(u128 a, eng.Input(0, FixedFromDouble(x)));
      PIVOT_ASSIGN_OR_RETURN(u128 b, eng.Input(0, FixedFromDouble(y)));
      PIVOT_ASSIGN_OR_RETURN(u128 c, eng.MulFixed(a, b));
      PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(c));
      // Compare against the product of the *quantized* inputs.
      const double want = FixedToDouble(FixedFromDouble(x)) *
                          FixedToDouble(FixedFromDouble(y));
      if (std::abs(FromFix(opened) - want) > kFixTol) {
        return Status::Internal("mulfixed out of tolerance");
      }
    }
    return Status::Ok();
  });
}

TEST(EngineTruncTest, TruncPrWithinOneUlp) {
  RunMpc(2, [](MpcEngine& eng, Preprocessing&) -> Status {
    Rng vals(77);
    std::vector<i128> xs;
    for (int i = 0; i < 50; ++i) {
      xs.push_back(static_cast<i128>(vals.NextInRange(-1'000'000'000,
                                                      1'000'000'000)));
    }
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, xs, xs.size()));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> trunc,
                           eng.TruncPrVec(shares, 16, 64));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(trunc));
    for (size_t i = 0; i < xs.size(); ++i) {
      i128 expected = xs[i] >> 16;  // floor division
      i128 got = FpToSigned(opened[i]);
      if (got != expected && got != expected + 1) {
        return Status::Internal("truncpr error > 1 ulp");
      }
    }
    return Status::Ok();
  });
}

TEST(EngineTruncTest, TruncExactIsExact) {
  RunMpc(3, [](MpcEngine& eng, Preprocessing&) -> Status {
    Rng vals(88);
    std::vector<i128> xs = {0, 1, -1, 65535, 65536, -65536, -65537};
    for (int i = 0; i < 40; ++i) {
      xs.push_back(static_cast<i128>(vals.NextInRange(-1'000'000'000'000,
                                                      1'000'000'000'000)));
    }
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, xs, xs.size()));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> trunc,
                           eng.TruncExactVec(shares, 16, 64));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(trunc));
    for (size_t i = 0; i < xs.size(); ++i) {
      // Floor division by 2^16 (arithmetic shift).
      i128 expected = xs[i] >> 16;
      if (FpToSigned(opened[i]) != expected) {
        return Status::Internal("truncexact mismatch at " + std::to_string(i));
      }
    }
    return Status::Ok();
  });
}

TEST(EngineCompareTest, LessThanZero) {
  RunMpc(3, [](MpcEngine& eng, Preprocessing&) -> Status {
    std::vector<i128> xs = {0, 1, -1, 5, -5, (i128{1} << 62), -(i128{1} << 62),
                            65536, -65536};
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, xs, xs.size()));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> bits,
                           eng.LessThanZeroVec(shares, 64));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(bits));
    for (size_t i = 0; i < xs.size(); ++i) {
      i128 expected = xs[i] < 0 ? 1 : 0;
      if (FpToSigned(opened[i]) != expected) {
        return Status::Internal("ltz mismatch at " + std::to_string(i));
      }
    }
    return Status::Ok();
  });
}

TEST(EngineCompareTest, LessThanAndSelect) {
  RunMpc(2, [](MpcEngine& eng, Preprocessing&) -> Status {
    PIVOT_ASSIGN_OR_RETURN(u128 a, eng.Input(0, 10));
    PIVOT_ASSIGN_OR_RETURN(u128 b, eng.Input(0, 20));
    PIVOT_ASSIGN_OR_RETURN(u128 lt, eng.LessThan(a, b, 64));
    PIVOT_ASSIGN_OR_RETURN(u128 gt, eng.LessThan(b, a, 64));
    PIVOT_ASSIGN_OR_RETURN(u128 lt_open, eng.Open(lt));
    PIVOT_ASSIGN_OR_RETURN(u128 gt_open, eng.Open(gt));
    if (FpToSigned(lt_open) != 1 || FpToSigned(gt_open) != 0) {
      return Status::Internal("lessthan mismatch");
    }
    PIVOT_ASSIGN_OR_RETURN(u128 sel, eng.Select(lt, a, b));
    PIVOT_ASSIGN_OR_RETURN(u128 sel_open, eng.Open(sel));
    if (FpToSigned(sel_open) != 10) return Status::Internal("select mismatch");
    return Status::Ok();
  });
}

TEST(EngineCompareTest, ArgmaxFindsMaximum) {
  RunMpc(3, [](MpcEngine& eng, Preprocessing&) -> Status {
    std::vector<i128> vals = {3, -7, 22, 21, 0, 22, 8};  // max 22 first at 2
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, vals, vals.size()));
    PIVOT_ASSIGN_OR_RETURN(MpcEngine::ArgmaxShares best,
                           eng.Argmax(shares, 64));
    PIVOT_ASSIGN_OR_RETURN(u128 idx, eng.Open(best.index));
    PIVOT_ASSIGN_OR_RETURN(u128 max, eng.Open(best.max));
    if (FpToSigned(max) != 22) return Status::Internal("argmax value");
    if (FpToSigned(idx) != 2) return Status::Internal("argmax index");
    return Status::Ok();
  });
}

TEST(EngineCompareTest, ArgmaxSingleElement) {
  RunMpc(2, [](MpcEngine& eng, Preprocessing&) -> Status {
    PIVOT_ASSIGN_OR_RETURN(u128 v, eng.Input(0, -5));
    PIVOT_ASSIGN_OR_RETURN(MpcEngine::ArgmaxShares best, eng.Argmax({v}, 64));
    PIVOT_ASSIGN_OR_RETURN(u128 idx, eng.Open(best.index));
    if (FpToSigned(idx) != 0) return Status::Internal("argmax single");
    return Status::Ok();
  });
}

TEST(EngineCompareTest, OneHotSelectsIndex) {
  RunMpc(3, [](MpcEngine& eng, Preprocessing&) -> Status {
    for (int target : {0, 3, 6}) {
      PIVOT_ASSIGN_OR_RETURN(u128 idx, eng.Input(0, target));
      PIVOT_ASSIGN_OR_RETURN(std::vector<u128> onehot, eng.OneHot(idx, 7));
      PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(onehot));
      for (int t = 0; t < 7; ++t) {
        i128 expected = (t == target) ? 1 : 0;
        if (FpToSigned(opened[t]) != expected) {
          return Status::Internal("onehot mismatch");
        }
      }
    }
    return Status::Ok();
  });
}

TEST(EngineBitTest, BitDecomposition) {
  RunMpc(2, [](MpcEngine& eng, Preprocessing&) -> Status {
    std::vector<i128> xs = {0, 1, 2, 255, 256, 123456789, (i128{1} << 40)};
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, xs, xs.size()));
    PIVOT_ASSIGN_OR_RETURN(auto bits, eng.BitDecVec(shares, 48));
    for (size_t i = 0; i < xs.size(); ++i) {
      PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(bits[i]));
      for (int j = 0; j < 48; ++j) {
        i128 expected = (xs[i] >> j) & 1;
        if (FpToSigned(opened[j]) != expected) {
          return Status::Internal("bitdec mismatch");
        }
      }
    }
    return Status::Ok();
  });
}

TEST(EngineDivTest, ReciprocalAccuracy) {
  RunMpc(2, [](MpcEngine& eng, Preprocessing&) -> Status {
    // Spans tiny fractions to large counts (the Pivot workload range).
    std::vector<double> xs = {0.001, 0.5, 1.0, 3.0, 7.77, 100.0, 50000.0,
                              1000000.0};
    std::vector<i128> raw;
    for (double x : xs) raw.push_back(FixedFromDouble(x));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, raw, raw.size()));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> recip, eng.ReciprocalVec(shares));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(recip));
    for (size_t i = 0; i < xs.size(); ++i) {
      double got = FromFix(opened[i]);
      // The reference is the reciprocal of the quantized input.
      double want = 1.0 / FixedToDouble(FixedFromDouble(xs[i]));
      double tol = std::max(1e-3 * want, 2.0 * kFixTol);
      if (std::abs(got - want) > tol) {
        return Status::Internal("reciprocal off: x=" + std::to_string(xs[i]) +
                                " got=" + std::to_string(got));
      }
    }
    return Status::Ok();
  });
}

TEST(EngineDivTest, DivisionMatchesPlain) {
  RunMpc(3, [](MpcEngine& eng, Preprocessing&) -> Status {
    std::vector<std::pair<double, double>> cases = {
        {1.0, 3.0}, {10.0, 4.0}, {-5.0, 2.0}, {7.0, 7.0}, {0.0, 9.0},
        {3.0, 1000.0}, {250000.0, 5.0}};
    for (auto [num, den] : cases) {
      PIVOT_ASSIGN_OR_RETURN(u128 a, eng.Input(0, FixedFromDouble(num)));
      PIVOT_ASSIGN_OR_RETURN(u128 b, eng.Input(0, FixedFromDouble(den)));
      PIVOT_ASSIGN_OR_RETURN(u128 q, eng.DivFixed(a, b));
      PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(q));
      double got = FromFix(opened);
      double want = num / den;
      double tol = std::max(2e-3 * std::abs(want), 3.0 * kFixTol);
      if (std::abs(got - want) > tol) {
        return Status::Internal("division off: " + std::to_string(num) + "/" +
                                std::to_string(den) + " got " +
                                std::to_string(got));
      }
    }
    return Status::Ok();
  });
}

TEST(EngineExpTest, ExpAccuracy) {
  RunMpc(2, [](MpcEngine& eng, Preprocessing&) -> Status {
    std::vector<double> xs = {-4.0, -1.0, -0.1, 0.0, 0.1, 1.0, 2.5, 4.0};
    std::vector<i128> raw;
    for (double x : xs) raw.push_back(FixedFromDouble(x));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, raw, raw.size()));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> exps, eng.ExpFixedVec(shares));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(exps));
    for (size_t i = 0; i < xs.size(); ++i) {
      double got = FromFix(opened[i]);
      double want = std::exp(xs[i]);
      // Limit-formula approximation: ~1% relative error budget.
      if (std::abs(got - want) > 0.02 * want + 3 * kFixTol) {
        return Status::Internal("exp off at x=" + std::to_string(xs[i]) +
                                " got=" + std::to_string(got));
      }
    }
    return Status::Ok();
  });
}

TEST(EngineExpTest, LogAccuracy) {
  RunMpc(2, [](MpcEngine& eng, Preprocessing&) -> Status {
    std::vector<double> xs = {0.001, 0.01, 0.5, 0.9999, 1.0, 2.0, 100.0,
                              65536.0};
    std::vector<i128> raw;
    for (double x : xs) raw.push_back(FixedFromDouble(x));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, raw, raw.size()));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> logs, eng.LogFixedVec(shares));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(logs));
    for (size_t i = 0; i < xs.size(); ++i) {
      double got = FromFix(opened[i]);
      double want = std::log(FixedToDouble(FixedFromDouble(xs[i])));
      if (std::abs(got - want) > 0.002 + 5 * kFixTol) {
        return Status::Internal("log off at x=" + std::to_string(xs[i]) +
                                " got=" + std::to_string(got) + " want=" +
                                std::to_string(want));
      }
    }
    return Status::Ok();
  });
}

TEST(EngineExpTest, SoftmaxNormalizesAndOrders) {
  RunMpc(2, [](MpcEngine& eng, Preprocessing&) -> Status {
    std::vector<double> logits = {0.5, 2.0, -1.0, 1.0};
    std::vector<i128> raw;
    for (double x : logits) raw.push_back(FixedFromDouble(x));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           eng.InputVector(0, raw, raw.size()));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> probs, eng.Softmax(shares));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, eng.OpenVec(probs));
    double total = 0.0;
    std::vector<double> p;
    for (u128 v : opened) {
      p.push_back(FromFix(v));
      total += p.back();
    }
    if (std::abs(total - 1.0) > 0.01) return Status::Internal("softmax sum");
    // Ordering must match logits: index 1 largest, index 2 smallest.
    if (!(p[1] > p[3] && p[3] > p[0] && p[0] > p[2])) {
      return Status::Internal("softmax ordering");
    }
    // Cross-check against plaintext softmax.
    double denom = 0.0;
    for (double x : logits) denom += std::exp(x);
    for (size_t i = 0; i < logits.size(); ++i) {
      if (std::abs(p[i] - std::exp(logits[i]) / denom) > 0.02) {
        return Status::Internal("softmax value off");
      }
    }
    return Status::Ok();
  });
}

TEST(MpcDpTest, LaplaceMomentsRoughlyCorrect) {
  RunMpc(2, [](MpcEngine& eng, Preprocessing& prep) -> Status {
    const double mu = 1.0, b = 2.0;
    const int n = 60;
    double sum = 0.0, sumsq = 0.0;
    for (int i = 0; i < n; ++i) {
      PIVOT_ASSIGN_OR_RETURN(u128 x, SampleLaplaceShared(eng, prep, mu, b));
      PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(x));
      double v = FromFix(opened);
      if (std::abs(v - mu) > 40.0) return Status::Internal("laplace outlier");
      sum += v;
      sumsq += (v - mu) * (v - mu);
    }
    const double mean = sum / n;
    const double var = sumsq / n;
    // Loose bounds: Laplace(1, 2) has mean 1, var 2b^2 = 8.
    if (std::abs(mean - mu) > 1.5) return Status::Internal("laplace mean off");
    if (var < 2.0 || var > 30.0) return Status::Internal("laplace var off");
    return Status::Ok();
  });
}

TEST(MpcDpTest, ExponentialMechanismPrefersHighScore) {
  RunMpc(2, [](MpcEngine& eng, Preprocessing& prep) -> Status {
    // Score 2 is overwhelmingly better under eps=8, delta=1.
    std::vector<i128> scores = {FixedFromDouble(0.1), FixedFromDouble(0.2),
                                FixedFromDouble(1.9), FixedFromDouble(0.3)};
    int hits = 0;
    const int trials = 6;
    for (int trial = 0; trial < trials; ++trial) {
      PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                             eng.InputVector(0, scores, scores.size()));
      PIVOT_ASSIGN_OR_RETURN(
          u128 idx, ExponentialMechanismIndex(eng, prep, shares, 8.0, 1.0));
      PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(idx));
      i128 v = FpToSigned(opened);
      if (v < 0 || v > 3) return Status::Internal("index out of range");
      if (v == 2) ++hits;
    }
    if (hits < trials - 1) return Status::Internal("mechanism not selective");
    return Status::Ok();
  });
}

TEST(EngineStatsTest, RoundsAreCounted) {
  RunMpc(2, [](MpcEngine& eng, Preprocessing&) -> Status {
    uint64_t before = eng.rounds();
    PIVOT_ASSIGN_OR_RETURN(u128 a, eng.Input(0, 1));
    PIVOT_ASSIGN_OR_RETURN(u128 b, eng.Input(0, 2));
    PIVOT_ASSIGN_OR_RETURN(u128 c, eng.Mul(a, b));
    (void)c;
    if (eng.rounds() <= before) return Status::Internal("rounds not counted");
    return Status::Ok();
  });
}

}  // namespace
}  // namespace pivot
