// Serving subsystem tests.
//
// Three layers:
//   1. RequestQueue / BatchScheduler unit tests — coalescing, linger,
//      close semantics, and the follower-side PopExactly contract.
//   2. Bit-exactness — the batched prediction path (PredictPivotBatch,
//      ServingSession, and the rewritten PredictPivotMany) must produce
//      predictions identical to the per-sample scalar protocol, double
//      for double, for every batch size and crypto thread count, on both
//      the basic and the enhanced protocol.
//   3. Serve-loop end-to-end — the coordinator/follower batch
//      announcement protocol drains mirrored queues and reports sane
//      serving statistics.

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "pivot/prediction.h"
#include "pivot/runner.h"
#include "pivot/trainer.h"
#include "serve/serving_session.h"

namespace pivot {
namespace {

constexpr int kParties = 3;

Dataset TinyData() {
  ClassificationSpec spec;
  spec.num_samples = 16;
  spec.num_features = 6;
  spec.num_classes = 2;
  spec.class_separation = 2.5;
  spec.seed = 91;
  return MakeClassification(spec);
}

FederationConfig TinyConfig(int key_bits, int crypto_threads = 1) {
  FederationConfig cfg;
  cfg.num_parties = kParties;
  cfg.params.tree.task = TreeTask::kClassification;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 2;
  cfg.params.tree.max_splits = 4;
  cfg.params.tree.min_samples_split = 5;
  cfg.params.key_bits = key_bits;
  cfg.params.crypto_threads = crypto_threads;
  return cfg;
}

// Trains one tiny tree per party and returns every party's view.
std::vector<PivotTree> TrainViews(Protocol protocol, int key_bits) {
  const Dataset data = TinyData();
  std::vector<PivotTree> views(kParties);
  std::mutex mu;
  Status st = RunFederation(data, TinyConfig(key_bits),
                            [&](PartyContext& ctx) -> Status {
                              TrainTreeOptions opts;
                              opts.protocol = protocol;
                              PIVOT_ASSIGN_OR_RETURN(PivotTree tree,
                                                     TrainPivotTree(ctx, opts));
                              std::lock_guard<std::mutex> lock(mu);
                              views[ctx.id()] = std::move(tree);
                              return Status::Ok();
                            });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return views;
}

// Per-sample scalar prediction over the whole tiny set — the reference
// the batched paths must reproduce exactly.
std::vector<double> ScalarPredict(const std::vector<PivotTree>& views,
                                  int key_bits) {
  const Dataset data = TinyData();
  std::vector<double> preds;
  std::mutex mu;
  Status st = RunFederation(
      data, TinyConfig(key_bits), [&](PartyContext& ctx) -> Status {
        const auto rows = SliceRowsForParty(data, ctx.id(), kParties);
        std::vector<double> mine;
        for (const auto& row : rows) {
          PIVOT_ASSIGN_OR_RETURN(double p,
                                 PredictPivot(ctx, views[ctx.id()], row));
          mine.push_back(p);
        }
        if (ctx.id() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          preds = std::move(mine);
        }
        return Status::Ok();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return preds;
}

// Serves the whole tiny set through ServingSession::Serve with the given
// batch size and thread count; returns party 0's predictions and stats.
std::vector<double> ServePredict(const std::vector<PivotTree>& views,
                                 int key_bits, int batch_size,
                                 int crypto_threads,
                                 serve::ServingStats* stats_out = nullptr) {
  const Dataset data = TinyData();
  std::vector<double> preds;
  std::mutex mu;
  Status st = RunFederation(
      data, TinyConfig(key_bits, crypto_threads),
      [&](PartyContext& ctx) -> Status {
        serve::ServeOptions opts;
        opts.batch_size = batch_size;
        opts.max_wait_ms = 0;
        opts.prewarm_pairs = 64;
        serve::ServingSession session(ctx, views[ctx.id()], opts);
        PIVOT_RETURN_IF_ERROR(session.Warmup());
        serve::RequestQueue queue;
        for (auto& row : SliceRowsForParty(data, ctx.id(), kParties)) {
          queue.Push(std::move(row));
        }
        queue.Close();
        std::vector<double> mine;
        PIVOT_ASSIGN_OR_RETURN(serve::ServingStats stats,
                               session.Serve(queue, &mine));
        if (ctx.id() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          preds = std::move(mine);
          if (stats_out != nullptr) *stats_out = stats;
        }
        return Status::Ok();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return preds;
}

// ---------------------------------------------------------------------------
// 1. Queue / scheduler units.
// ---------------------------------------------------------------------------

TEST(RequestQueueTest, PopBatchCoalescesUpToMax) {
  serve::RequestQueue q;
  for (int i = 0; i < 5; ++i) q.Push({double(i)});
  auto batch = q.PopBatch(/*max=*/3, /*linger_ms=*/0);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].features[0], 0.0);
  EXPECT_EQ(batch[2].features[0], 2.0);
  batch = q.PopBatch(3, 0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(RequestQueueTest, RequestIdsAreAssignedInOrder) {
  serve::RequestQueue q;
  q.Push({1.0});
  q.Push({2.0});
  auto batch = q.PopBatch(8, 0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_LT(batch[0].id, batch[1].id);
}

TEST(RequestQueueTest, PopBatchOnClosedEmptyQueueReturnsEmpty) {
  serve::RequestQueue q;
  q.Close();
  EXPECT_TRUE(q.PopBatch(4, 0).empty());
  // Pushes after close are dropped, not queued.
  q.Push({1.0});
  EXPECT_EQ(q.depth(), 0u);
}

TEST(RequestQueueTest, CloseDrainsRemainingRequests) {
  serve::RequestQueue q;
  q.Push({1.0});
  q.Close();
  EXPECT_EQ(q.PopBatch(4, 0).size(), 1u);
  EXPECT_TRUE(q.PopBatch(4, 0).empty());
}

TEST(RequestQueueTest, PopBatchLingersForLateArrivals) {
  serve::RequestQueue q;
  q.Push({1.0});
  std::thread late([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Push({2.0});
  });
  // A generous linger lets the late push join the first batch.
  auto batch = q.PopBatch(/*max=*/2, /*linger_ms=*/2000);
  late.join();
  EXPECT_EQ(batch.size(), 2u);
}

TEST(RequestQueueTest, PopExactlyDeliversAnnouncedCount) {
  serve::RequestQueue q;
  for (int i = 0; i < 4; ++i) q.Push({double(i)});
  Result<std::vector<serve::ServeRequest>> got = q.PopExactly(3, 1000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().size(), 3u);
  EXPECT_EQ(q.depth(), 1u);
}

TEST(RequestQueueTest, PopExactlyTimesOutWhenStarved) {
  serve::RequestQueue q;
  q.Push({1.0});
  Result<std::vector<serve::ServeRequest>> got = q.PopExactly(3, 30);
  EXPECT_FALSE(got.ok());
  // The one queued request must still be there: a timed-out pop takes
  // nothing.
  EXPECT_EQ(q.depth(), 1u);
}

TEST(RequestQueueTest, PopExactlyFailsFastOnShortClosedQueue) {
  serve::RequestQueue q;
  q.Push({1.0});
  q.Close();
  Result<std::vector<serve::ServeRequest>> got = q.PopExactly(3, 10'000);
  EXPECT_FALSE(got.ok());
}

TEST(BatchSchedulerTest, NextBatchHonorsBatchSize) {
  serve::RequestQueue q;
  for (int i = 0; i < 10; ++i) q.Push({double(i)});
  serve::ServeOptions opts;
  opts.batch_size = 4;
  opts.max_wait_ms = 0;
  serve::BatchScheduler sched(&q, opts);
  EXPECT_EQ(sched.NextBatch().size(), 4u);
  EXPECT_EQ(sched.NextBatch().size(), 4u);
  EXPECT_EQ(sched.NextBatch().size(), 2u);
  q.Close();
  EXPECT_TRUE(sched.NextBatch().empty());
}

// ---------------------------------------------------------------------------
// 2. Bit-exactness against the scalar protocol.
// ---------------------------------------------------------------------------

TEST(ServingBitExactTest, BasicBatchedMatchesScalarAtEveryBatchSize) {
  const auto views = TrainViews(Protocol::kBasic, 256);
  const auto scalar = ScalarPredict(views, 256);
  ASSERT_EQ(scalar.size(), TinyData().num_samples());
  for (int batch_size : {1, 2, 3, 4, 8}) {
    const auto batched = ServePredict(views, 256, batch_size, 1);
    EXPECT_EQ(batched, scalar) << "batch_size=" << batch_size;
  }
}

TEST(ServingBitExactTest, EnhancedBatchedMatchesScalarAtEveryBatchSize) {
  const auto views = TrainViews(Protocol::kEnhanced, 384);
  const auto scalar = ScalarPredict(views, 384);
  ASSERT_EQ(scalar.size(), TinyData().num_samples());
  for (int batch_size : {1, 3, 8}) {
    const auto batched = ServePredict(views, 384, batch_size, 1);
    EXPECT_EQ(batched, scalar) << "batch_size=" << batch_size;
  }
}

TEST(ServingBitExactTest, CryptoThreadCountDoesNotChangePredictions) {
  const auto views = TrainViews(Protocol::kBasic, 256);
  const auto scalar = ScalarPredict(views, 256);
  const auto fanned = ServePredict(views, 256, /*batch_size=*/4,
                                   /*crypto_threads=*/4);
  EXPECT_EQ(fanned, scalar);
}

TEST(ServingBitExactTest, PredictPivotManyMatchesScalar) {
  const auto views = TrainViews(Protocol::kBasic, 256);
  const auto scalar = ScalarPredict(views, 256);
  const Dataset data = TinyData();
  std::vector<double> many;
  std::mutex mu;
  Status st = RunFederation(
      data, TinyConfig(256), [&](PartyContext& ctx) -> Status {
        const auto rows = SliceRowsForParty(data, ctx.id(), kParties);
        PIVOT_ASSIGN_OR_RETURN(std::vector<double> preds,
                               PredictPivotMany(ctx, views[ctx.id()], rows));
        if (ctx.id() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          many = std::move(preds);
        }
        return Status::Ok();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(many, scalar);
}

// ---------------------------------------------------------------------------
// 3. Serve-loop end-to-end.
// ---------------------------------------------------------------------------

TEST(ServingSessionTest, ServeReportsSaneStats) {
  const auto views = TrainViews(Protocol::kBasic, 256);
  serve::ServingStats stats;
  const auto preds = ServePredict(views, 256, /*batch_size=*/4,
                                  /*crypto_threads=*/1, &stats);
  const size_t n = TinyData().num_samples();
  ASSERT_EQ(preds.size(), n);
  EXPECT_EQ(stats.requests, n);
  EXPECT_EQ(stats.batches, (n + 3) / 4);
  EXPECT_GT(stats.requests_per_sec, 0.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.mean_occupancy, 0.0);
  EXPECT_LE(stats.mean_occupancy, 1.0);
  EXPECT_LE(stats.p50_ms, stats.p99_ms);
  EXPECT_LE(stats.p99_ms, stats.max_ms + 1e-9);
  EXPECT_GE(stats.max_queue_depth, 1u);
}

TEST(ServingSessionTest, EmptyClosedQueueServesNothing) {
  const auto views = TrainViews(Protocol::kBasic, 256);
  const Dataset data = TinyData();
  Status st = RunFederation(
      data, TinyConfig(256), [&](PartyContext& ctx) -> Status {
        serve::ServeOptions opts;
        serve::ServingSession session(ctx, views[ctx.id()], opts);
        serve::RequestQueue queue;
        queue.Close();
        std::vector<double> preds;
        PIVOT_ASSIGN_OR_RETURN(serve::ServingStats stats,
                               session.Serve(queue, &preds));
        if (stats.requests != 0 || !preds.empty()) {
          return Status::Internal("served requests from an empty queue");
        }
        return Status::Ok();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(ServingSessionTest, WarmupIsIdempotent) {
  const auto views = TrainViews(Protocol::kBasic, 256);
  const Dataset data = TinyData();
  Status st = RunFederation(
      data, TinyConfig(256), [&](PartyContext& ctx) -> Status {
        serve::ServeOptions opts;
        opts.prewarm_pairs = 8;
        serve::ServingSession session(ctx, views[ctx.id()], opts);
        PIVOT_RETURN_IF_ERROR(session.Warmup());
        PIVOT_RETURN_IF_ERROR(session.Warmup());
        return Status::Ok();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace pivot
