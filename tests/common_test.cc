#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/fixed_point.h"
#include "common/op_counters.h"
#include "common/rng.h"
#include "common/status.h"

namespace pivot {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesStringify) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kNotFound, StatusCode::kUnimplemented, StatusCode::kIoError,
        StatusCode::kProtocolError, StatusCode::kIntegrityError}) {
    EXPECT_STRNE(StatusCodeToString(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Doubled(Result<int> in) {
  PIVOT_ASSIGN_OR_RETURN(int v, in);
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_EQ(Doubled(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversSmallRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(42);
  Rng child = parent.Fork();
  // Child stream should differ from parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 2);
}

TEST(BytesTest, RoundTripScalars) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteI64(-77);
  w.WriteDouble(3.25);
  w.WriteString("hello");
  w.WriteBytes({1, 2, 3});

  ByteReader r(w.data());
  EXPECT_EQ(r.ReadU8().value(), 0xab);
  EXPECT_EQ(r.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.ReadI64().value(), -77);
  EXPECT_DOUBLE_EQ(r.ReadDouble().value(), 3.25);
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_EQ(r.ReadBytes().value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncatedReadFails) {
  ByteWriter w;
  w.WriteU32(5);
  ByteReader r(w.data());
  EXPECT_TRUE(r.ReadU64().status().code() == StatusCode::kOutOfRange);
}

TEST(BytesTest, TruncatedBlobFails) {
  ByteWriter w;
  w.WriteU64(100);  // claims 100 payload bytes that are not present
  ByteReader r(w.data());
  EXPECT_FALSE(r.ReadBytes().ok());
}

TEST(FixedPointTest, RoundTrip) {
  for (double x : {0.0, 1.0, -1.0, 0.5, -0.25, 123.456, -9999.125}) {
    int64_t enc = FixedFromDouble(x);
    EXPECT_NEAR(FixedToDouble(enc), x, 1.0 / kDefaultFixedPoint.Scale());
  }
}

TEST(FixedPointTest, MulRenormalizes) {
  int64_t a = FixedFromDouble(1.5);
  int64_t b = FixedFromDouble(2.0);
  EXPECT_NEAR(FixedToDouble(FixedMul(a, b)), 3.0, 1e-4);
}

TEST(FixedPointTest, NegativeProducts) {
  int64_t a = FixedFromDouble(-1.5);
  int64_t b = FixedFromDouble(2.5);
  EXPECT_NEAR(FixedToDouble(FixedMul(a, b)), -3.75, 1e-4);
}

TEST(OpCountersTest, SnapshotDelta) {
  OpCounters::Global().Reset();
  OpSnapshot before = OpSnapshot::Take();
  OpCounters::Global().AddCiphertextOp(3);
  OpCounters::Global().AddThresholdDecryption();
  OpCounters::Global().AddSecureOp(10);
  OpCounters::Global().AddSecureComparison(2);
  OpCounters::Global().AddBytesSent(100);
  OpCounters::Global().AddMessage();
  OpSnapshot delta = OpSnapshot::Take().Delta(before);
  EXPECT_EQ(delta.ce, 3u);
  EXPECT_EQ(delta.cd, 1u);
  EXPECT_EQ(delta.cs, 10u);
  EXPECT_EQ(delta.cc, 2u);
  EXPECT_EQ(delta.bytes, 100u);
  EXPECT_EQ(delta.messages, 1u);
  EXPECT_NE(delta.ToString().find("Ce=3"), std::string::npos);
}

TEST(OpCountersTest, CheckpointTimingsAccumulate) {
  OpCounters::Global().Reset();
  OpSnapshot before = OpSnapshot::Take();
  OpCounters::Global().AddCheckpointWrite(120);
  OpCounters::Global().AddCheckpointWrite(80);
  OpCounters::Global().AddCheckpointRestore(500);
  OpSnapshot delta = OpSnapshot::Take().Delta(before);
  EXPECT_EQ(delta.ckpt_writes, 2u);
  EXPECT_EQ(delta.ckpt_write_us, 200u);
  EXPECT_EQ(delta.ckpt_restores, 1u);
  EXPECT_EQ(delta.ckpt_restore_us, 500u);
  EXPECT_NE(delta.ToString().find("ckpt_writes=2"), std::string::npos);
}

TEST(Crc32Test, KnownVectors) {
  // IEEE CRC-32 reference values ("check" value from the CRC catalogue).
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(digits, sizeof(digits)), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0x00000000u);
  const uint8_t a[] = {'a'};
  EXPECT_EQ(Crc32(a, 1), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Bytes data(257);
  Rng rng(7);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
  const uint32_t oneshot = Crc32(data.data(), data.size());
  uint32_t crc = 0;
  crc = Crc32Update(crc, data.data(), 100);
  crc = Crc32Update(crc, data.data() + 100, 57);
  crc = Crc32Update(crc, data.data() + 157, 100);
  EXPECT_EQ(crc, oneshot);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  Bytes data(64, 0x5A);
  const uint32_t clean = Crc32(data.data(), data.size());
  data[20] ^= 1u << 3;
  EXPECT_NE(Crc32(data.data(), data.size()), clean);
}

TEST(RngStateTest, SaveRestoreReplaysStream) {
  Rng rng(0x12345);
  for (int i = 0; i < 10; ++i) (void)rng.NextU64();
  const RngState state = rng.SaveState();
  std::vector<uint64_t> expect;
  for (int i = 0; i < 8; ++i) expect.push_back(rng.NextU64());
  const double g = rng.NextGaussian();

  rng.RestoreState(state);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rng.NextU64(), expect[i]) << i;
  EXPECT_EQ(rng.NextGaussian(), g);
}

TEST(RngStateTest, RestoreIntoDifferentInstanceMatches) {
  Rng a(99);
  (void)a.NextGaussian();  // exercise the cached-gaussian slot
  Rng b(1);
  b.RestoreState(a.SaveState());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_EQ(a.NextGaussian(), b.NextGaussian());
}

}  // namespace
}  // namespace pivot
