#include "pivot/logreg.h"

#include <gtest/gtest.h>

#include <mutex>

#include "data/synthetic.h"
#include "linear/logistic.h"
#include "pivot/runner.h"

namespace pivot {
namespace {

Dataset SeparableData(int n, int d, uint64_t seed) {
  ClassificationSpec spec;
  spec.num_samples = n;
  spec.num_features = d;
  spec.num_classes = 2;
  spec.class_separation = 3.0;
  spec.seed = seed;
  return MakeClassification(spec);
}

TEST(PlainLogisticTest, LearnsSeparableData) {
  Dataset data = SeparableData(300, 6, 5);
  LogisticParams params;
  params.epochs = 20;
  LogisticModel model = TrainLogisticPlain(data, params);
  std::vector<double> preds;
  for (const auto& row : data.features) preds.push_back(model.PredictLabel(row));
  EXPECT_GT(Accuracy(preds, data.labels), 0.85);
}

TEST(PlainLogisticTest, ProbabilitiesAreCalibrated) {
  Dataset data = SeparableData(200, 4, 6);
  LogisticModel model = TrainLogisticPlain(data, LogisticParams());
  for (const auto& row : data.features) {
    double p = model.PredictProbability(row);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(PivotLogRegTest, TracksPlaintextBaseline) {
  Dataset data = SeparableData(60, 4, 7);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params.key_bits = 512;

  LogisticParams np_params;
  np_params.epochs = 3;
  np_params.learning_rate = 0.5;
  np_params.batch_size = 16;
  LogisticModel np = TrainLogisticPlain(data, np_params);
  std::vector<double> np_preds;
  for (const auto& row : data.features) np_preds.push_back(np.PredictLabel(row));
  const double np_acc = Accuracy(np_preds, data.labels);

  double pivot_acc = -1;
  std::mutex mu;
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    PivotLogRegParams params;
    params.epochs = 3;
    params.learning_rate = 0.5;
    params.batch_size = 16;
    PIVOT_ASSIGN_OR_RETURN(PivotLogRegModel model,
                           TrainPivotLogReg(ctx, params));
    // Distributed prediction on the training rows (thresholded at 0.5).
    auto rows = SliceRowsForParty(data, ctx.id(), 2);
    int correct = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      PIVOT_ASSIGN_OR_RETURN(double prob,
                             PredictPivotLogReg(ctx, model, rows[i]));
      if (prob < -0.01 || prob > 1.01) {
        return Status::Internal("probability out of range");
      }
      correct += ((prob >= 0.5 ? 1.0 : 0.0) == data.labels[i]);
    }
    if (ctx.id() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      pivot_acc = static_cast<double>(correct) / rows.size();
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  // The private model should be in the same accuracy regime as the
  // plaintext one (fixed point + secure sigmoid approximation allowed).
  EXPECT_GT(pivot_acc, np_acc - 0.15);
  EXPECT_GT(pivot_acc, 0.6);
}

TEST(PivotLogRegTest, SmallKeyRejected) {
  Dataset data = SeparableData(20, 4, 8);
  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params.key_bits = 256;
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    Result<PivotLogRegModel> r = TrainPivotLogReg(ctx, PivotLogRegParams());
    if (r.ok()) return Status::Internal("expected key rejection");
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace pivot
