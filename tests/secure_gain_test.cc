#include "pivot/secure_gain.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/fixed_point.h"
#include "net/network.h"
#include "tree/cart.h"

namespace pivot {
namespace {

// Randomized cross-check: the secure gain pipeline must reproduce the
// plaintext GiniGain / VarianceGain formulas (used by the NP baselines)
// to fixed-point accuracy, for arbitrary split statistics. This is the
// invariant behind the Table 3 accuracy parity.

struct ClsSplit {
  std::vector<double> left_counts, right_counts;
};

void RunGainCheck(bool regression, int num_classes, uint64_t seed) {
  const int m = 2;
  Rng data_rng(seed);

  // Random node statistics.
  const int t_count = 6;
  const int per_split = regression ? 6 : 2 + 2 * num_classes;

  // Plain values: [slot][split] (counts; sums for regression).
  std::vector<std::vector<double>> plain(per_split,
                                         std::vector<double>(t_count));
  std::vector<double> node_count(t_count, 0);
  std::vector<ClsSplit> cls(t_count);
  std::vector<double> expected(t_count);
  double node_sum = 0, node_sumsq = 0, total = 0;

  if (!regression) {
    for (int s = 0; s < t_count; ++s) {
      cls[s].left_counts.resize(num_classes);
      cls[s].right_counts.resize(num_classes);
    }
    // All splits partition the SAME node population: fix per-class totals,
    // split them randomly per candidate.
    std::vector<double> class_totals(num_classes);
    for (int k = 0; k < num_classes; ++k) {
      class_totals[k] = static_cast<double>(5 + data_rng.NextBelow(40));
      total += class_totals[k];
    }
    for (int s = 0; s < t_count; ++s) {
      double nl = 0, nr = 0;
      for (int k = 0; k < num_classes; ++k) {
        double lk = static_cast<double>(
            data_rng.NextBelow(static_cast<uint64_t>(class_totals[k]) + 1));
        cls[s].left_counts[k] = lk;
        cls[s].right_counts[k] = class_totals[k] - lk;
        plain[2 + 2 * k][s] = lk;
        plain[3 + 2 * k][s] = class_totals[k] - lk;
        nl += lk;
        nr += class_totals[k] - lk;
      }
      plain[0][s] = nl;
      plain[1][s] = nr;
      expected[s] = GiniGain(cls[s].left_counts, cls[s].right_counts);
    }
  } else {
    // Fixed node population of labeled samples; random split assignment.
    const int n = 40;
    std::vector<double> ys(n);
    for (double& y : ys) y = data_rng.NextGaussian() * 3.0;
    for (double y : ys) {
      node_sum += y;
      node_sumsq += y * y;
    }
    total = n;
    for (int s = 0; s < t_count; ++s) {
      double nl = 0, sl = 0, ql = 0;
      for (int t = 0; t < n; ++t) {
        if (data_rng.NextBelow(2)) {
          nl += 1;
          sl += ys[t];
          ql += ys[t] * ys[t];
        }
      }
      plain[0][s] = nl;
      plain[1][s] = total - nl;
      plain[2][s] = sl;
      plain[3][s] = node_sum - sl;
      plain[4][s] = ql;
      plain[5][s] = node_sumsq - ql;
      expected[s] = VarianceGain(nl, sl, ql, total - nl, node_sum - sl,
                                 node_sumsq - ql);
    }
  }

  InMemoryNetwork net(m);
  Status st = RunParties(net, [&](int id, Endpoint& ep) -> Status {
    Preprocessing prep(id, m, seed * 3 + 1);
    MpcEngine eng(&ep, &prep, seed + id);
    [[maybe_unused]] const int f = eng.config().frac_bits;

    // Share the statistics (counts at integer scale, sums fixed-point —
    // matching the trainer's conventions).
    std::vector<std::vector<u128>> stats(per_split);
    for (int slot = 0; slot < per_split; ++slot) {
      std::vector<i128> vals(t_count);
      for (int s = 0; s < t_count; ++s) {
        const bool fixed_scaled = regression && slot >= 2;
        vals[s] = fixed_scaled ? FixedFromDouble(plain[slot][s])
                               : static_cast<i128>(std::llround(plain[slot][s]));
      }
      PIVOT_ASSIGN_OR_RETURN(stats[slot], eng.InputVector(0, vals, t_count));
    }
    std::vector<u128> agg;
    {
      std::vector<i128> vals;
      vals.push_back(static_cast<i128>(std::llround(total)));
      if (regression) {
        vals.push_back(FixedFromDouble(node_sum));
        vals.push_back(FixedFromDouble(node_sumsq));
      } else {
        for (int k = 0; k < num_classes; ++k) {
          double g = 0;
          // class totals = left + right of any split (use split 0).
          g = plain[2 + 2 * k][0] + plain[3 + 2 * k][0];
          vals.push_back(static_cast<i128>(std::llround(g)));
        }
      }
      PIVOT_ASSIGN_OR_RETURN(agg, eng.InputVector(0, vals, vals.size()));
    }

    PIVOT_ASSIGN_OR_RETURN(
        SecureGainResult gains,
        ComputeSecureGains(eng, stats, agg, regression, num_classes));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> scores,
                           eng.OpenVec(gains.scores));
    PIVOT_ASSIGN_OR_RETURN(u128 node_term, eng.Open(gains.node_term));

    for (int s = 0; s < t_count; ++s) {
      const double full_gain =
          FixedToDouble(static_cast<int64_t>(FpToSigned(scores[s]))) -
          FixedToDouble(static_cast<int64_t>(FpToSigned(node_term)));
      // Fixed-point + secure-division tolerance.
      const double tol = regression ? 0.05 : 0.01;
      if (std::abs(full_gain - expected[s]) > tol) {
        return Status::Internal(
            "gain mismatch at split " + std::to_string(s) + ": got " +
            std::to_string(full_gain) + " want " + std::to_string(expected[s]));
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(SecureGainTest, BinaryGiniMatchesPlaintext) {
  RunGainCheck(/*regression=*/false, 2, 11);
}

TEST(SecureGainTest, FourClassGiniMatchesPlaintext) {
  RunGainCheck(/*regression=*/false, 4, 12);
}

TEST(SecureGainTest, VarianceGainMatchesPlaintext) {
  RunGainCheck(/*regression=*/true, 2, 13);
}

TEST(SecureGainTest, MultipleSeeds) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    RunGainCheck(false, 3, seed);
  }
}

TEST(SecureGainTest, EmptyChildGivesNoAdvantage) {
  // A split sending everything left must score no better than the node
  // itself (full gain ~ 0).
  const int m = 2;
  InMemoryNetwork net(m);
  Status st = RunParties(net, [&](int id, Endpoint& ep) -> Status {
    Preprocessing prep(id, m, 99);
    MpcEngine eng(&ep, &prep, 3 + id);
    // 10 samples, 6/4 class balance, all on the left child.
    std::vector<std::vector<u128>> stats(6);
    PIVOT_ASSIGN_OR_RETURN(stats[0], eng.InputVector(0, {10}, 1));  // n_l
    PIVOT_ASSIGN_OR_RETURN(stats[1], eng.InputVector(0, {0}, 1));   // n_r
    PIVOT_ASSIGN_OR_RETURN(stats[2], eng.InputVector(0, {6}, 1));   // g_l0
    PIVOT_ASSIGN_OR_RETURN(stats[3], eng.InputVector(0, {0}, 1));   // g_r0
    PIVOT_ASSIGN_OR_RETURN(stats[4], eng.InputVector(0, {4}, 1));   // g_l1
    PIVOT_ASSIGN_OR_RETURN(stats[5], eng.InputVector(0, {0}, 1));   // g_r1
    std::vector<u128> agg;
    PIVOT_ASSIGN_OR_RETURN(agg, eng.InputVector(0, {10, 6, 4}, 3));
    PIVOT_ASSIGN_OR_RETURN(SecureGainResult gains,
                           ComputeSecureGains(eng, stats, agg, false, 2));
    PIVOT_ASSIGN_OR_RETURN(u128 score, eng.Open(gains.scores[0]));
    PIVOT_ASSIGN_OR_RETURN(u128 node, eng.Open(gains.node_term));
    const double full =
        FixedToDouble(static_cast<int64_t>(FpToSigned(score))) -
        FixedToDouble(static_cast<int64_t>(FpToSigned(node)));
    if (std::abs(full) > 0.01) return Status::Internal("empty split gained");
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace pivot
