#!/bin/sh
# Tier-3 chaos acceptance for the federation orchestrator.
#
# Tier 1 injects faults inside one process (pivot/fault.h), tier 2
# severs sockets between live processes (net/fault.h); this tier kills
# whole party PROCESSES under `pivot_cli orchestrate` and demands the
# same end state:
#
#   1. a fault-free orchestrated 3-party run trains and fingerprints;
#   2. a run with an explicit SIGKILL mid-training converges to the
#      bit-identical model (generation restart + checkpoint resume),
#      charging the restart budget only to the party that was killed;
#   3. seeded chaos plans (PIVOT_CHAOS3_SEEDS, default "7 11") replay
#      deterministically and also converge to the same fingerprint;
#   4. a kill schedule that exhausts one party's restart budget tears
#      the federation down before its deadline and names that party as
#      the root cause in report.json.
#
# Usage: orchestrator_chaos_test.sh /path/to/pivot_cli
set -eu

CLI=${1:-tools/pivot_cli}
if [ ! -x "$CLI" ]; then
  echo "SKIP: pivot_cli not found at $CLI"
  exit 0
fi
CLI=$(cd "$(dirname "$CLI")" && pwd)/$(basename "$CLI")

DIR=$(mktemp -d "${TMPDIR:-/tmp}/pivot_orch_chaos.XXXXXX")
trap 'rm -rf "$DIR"' EXIT
cd "$DIR"

# Deterministic headerless CSV: 6 features + binary label, 60 rows (same
# generator as socket_resume_test.sh).
awk 'BEGIN {
  seed = 42;
  for (i = 0; i < 60; i++) {
    s = "";
    sum = 0;
    for (j = 0; j < 6; j++) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      x = (seed % 10000) / 10000.0;
      if (j == 0 || j == 3) sum += x;
      s = s x ",";
    }
    print s (sum > 1.0 ? 1 : 0);
  }
}' > train.csv

cat > fed.spec <<EOF
parties = 3
data = $DIR/train.csv
out = model
depth = 3
key_bits = 256
EOF

fingerprint() {
  sed -n 's/.*"model_fingerprint": "\([0-9a-f]*\)".*/\1/p' "$1/report.json"
}

restarts_of() {  # restarts_of <workdir> <party>
  sed -n 's/.*"party": '"$2"', "phase": "[a-z-]*", "restarts": \([0-9]*\),.*/\1/p' \
      "$1/report.json"
}

echo "== fault-free orchestrated run =="
"$CLI" orchestrate --spec fed.spec --workdir "$DIR/base" \
    --deadline-ms 120000 > base.out 2> base.log
BASE_FP=$(fingerprint "$DIR/base")
if [ -z "$BASE_FP" ]; then
  echo "FAIL: fault-free run produced no model fingerprint"
  tail -n 10 base.log
  exit 1
fi
echo "   fingerprint $BASE_FP"

echo "== explicit SIGKILL of party 1 mid-training =="
"$CLI" orchestrate --spec fed.spec --workdir "$DIR/kill1" \
    --faults "900:kill:1" --deadline-ms 120000 > kill1.out 2> kill1.log
FP=$(fingerprint "$DIR/kill1")
if [ "$FP" != "$BASE_FP" ]; then
  echo "FAIL: fingerprint after SIGKILL ($FP) != fault-free ($BASE_FP)"
  tail -n 10 kill1.log
  exit 1
fi
for i in 0 1 2; do
  if ! cmp -s "$DIR/base/model.party$i.bin" "$DIR/kill1/model.party$i.bin"; then
    echo "FAIL: party $i model bytes differ from the fault-free run"
    exit 1
  fi
done
# Restart attribution: the killed party burned budget, the collateral
# generation restarts of its peers were free.
if [ "$(restarts_of "$DIR/kill1" 1)" -lt 1 ]; then
  echo "FAIL: killed party shows no restart in report.json"
  exit 1
fi
if [ "$(restarts_of "$DIR/kill1" 0)" -ne 0 ] || \
   [ "$(restarts_of "$DIR/kill1" 2)" -ne 0 ]; then
  echo "FAIL: collateral restart burned a surviving party's budget"
  cat "$DIR/kill1/report.json"
  exit 1
fi
echo "   bit-identical; budget charged to party 1 only"

for SEED in ${PIVOT_CHAOS3_SEEDS:-7 11}; do
  echo "== seeded chaos, seed $SEED =="
  "$CLI" orchestrate --spec fed.spec --workdir "$DIR/seed$SEED" \
      --chaos-seed "$SEED" --chaos-window-ms 3000 --chaos-count 3 \
      --deadline-ms 120000 > "seed$SEED.out" 2> "seed$SEED.log"
  FP=$(fingerprint "$DIR/seed$SEED")
  if [ "$FP" != "$BASE_FP" ]; then
    echo "FAIL: seed $SEED fingerprint ($FP) != fault-free ($BASE_FP)"
    grep "chaos plan" "seed$SEED.log" || true
    tail -n 10 "seed$SEED.log"
    exit 1
  fi
  echo "   bit-identical under plan: $(sed -n 's/.*chaos plan: //p' "seed$SEED.log")"
done

echo "== restart budget exhaustion names the root cause =="
cat > fed_budget.spec <<EOF
parties = 3
data = $DIR/train.csv
out = model
depth = 3
key_bits = 256
max_restarts = 1
EOF
RC=0
"$CLI" orchestrate --spec fed_budget.spec --workdir "$DIR/budget" \
    --faults "500:kill:1;2500:kill:1;4500:kill:1" --deadline-ms 60000 \
    > budget.out 2> budget.log || RC=$?
if [ "$RC" -ne 1 ]; then
  echo "FAIL: budget exhaustion run exited $RC, want 1"
  tail -n 10 budget.log
  exit 1
fi
if ! grep -q '"root_cause_party": 1' "$DIR/budget/report.json"; then
  echo "FAIL: report.json does not name party 1 as the root cause"
  cat "$DIR/budget/report.json"
  exit 1
fi
if ! grep -q 'beyond recovery' "$DIR/budget/report.json"; then
  echo "FAIL: report.json lacks the budget-exhaustion root cause"
  cat "$DIR/budget/report.json"
  exit 1
fi
# The teardown must have finished well before the 60 s federation
# deadline — escalation, not timeout, ended this run.
if grep -q 'deadline.*exceeded' "$DIR/budget/report.json"; then
  echo "FAIL: budget run ended by deadline instead of escalation"
  exit 1
fi
echo "   torn down with root_cause_party=1"

echo "PASS: orchestrated chaos tier 3 (kills, seeds, budget exhaustion)"
