#include <gtest/gtest.h>

#include <chrono>

#include "crypto/paillier.h"
#include "mpc/preprocessing.h"
#include "net/network.h"

namespace pivot {
namespace {

// ---------------------------------------------------------------------------
// Paillier: randomized homomorphic-circuit property test. A random
// sequence of Add / ScalarMul / AddPlain ops applied to ciphertexts must
// track the same sequence applied to plaintexts mod n.
// ---------------------------------------------------------------------------

class PaillierPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PaillierPropertyTest, RandomCircuitTracksPlaintext) {
  Rng rng(GetParam());
  static PaillierKeyPair* keys = nullptr;
  if (keys == nullptr) {
    Rng key_rng(2026);
    keys = new PaillierKeyPair(GeneratePaillierKeyPair(256, key_rng));
  }
  const BigInt& n = keys->pk.n();

  // Working set of (ciphertext, expected plaintext) pairs.
  std::vector<std::pair<Ciphertext, BigInt>> slots;
  for (int i = 0; i < 4; ++i) {
    BigInt v(static_cast<int64_t>(rng.NextBelow(1'000'000)));
    slots.push_back({keys->pk.Encrypt(v, rng), v});
  }
  for (int step = 0; step < 30; ++step) {
    const size_t a = rng.NextBelow(slots.size());
    const size_t b = rng.NextBelow(slots.size());
    switch (rng.NextBelow(4)) {
      case 0:  // homomorphic add
        slots[a].first = keys->pk.Add(slots[a].first, slots[b].first);
        slots[a].second = slots[a].second.ModAdd(slots[b].second, n);
        break;
      case 1: {  // scalar multiply
        BigInt k(static_cast<int64_t>(rng.NextBelow(1000)));
        slots[a].first = keys->pk.ScalarMul(k, slots[a].first);
        slots[a].second = slots[a].second.ModMul(k, n);
        break;
      }
      case 2: {  // add plaintext constant
        BigInt k(static_cast<int64_t>(rng.NextBelow(100000)));
        slots[a].first = keys->pk.AddPlain(slots[a].first, k);
        slots[a].second = slots[a].second.ModAdd(k, n);
        break;
      }
      default:  // rerandomize (no plaintext change)
        slots[a].first = keys->pk.Rerandomize(slots[a].first, rng);
        break;
    }
  }
  for (auto& [ct, expected] : slots) {
    EXPECT_EQ(keys->sk.Decrypt(ct).value(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaillierPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Preprocessing: the dealer's correlated randomness must satisfy its
// invariants when the per-party shares are summed, across party counts.
// ---------------------------------------------------------------------------

class DealerInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(DealerInvariantTest, TriplesMultiplyCorrectly) {
  const int m = GetParam();
  std::vector<Preprocessing> parties;
  for (int i = 0; i < m; ++i) parties.emplace_back(i, m, 777);
  for (int round = 0; round < 20; ++round) {
    u128 a = 0, b = 0, c = 0;
    for (int i = 0; i < m; ++i) {
      Preprocessing::Triple t = parties[i].NextTriple();
      a = FpAdd(a, t.a);
      b = FpAdd(b, t.b);
      c = FpAdd(c, t.c);
    }
    EXPECT_TRUE(FpMul(a, b) == c) << "round " << round;
  }
}

TEST_P(DealerInvariantTest, BitsAreBits) {
  const int m = GetParam();
  std::vector<Preprocessing> parties;
  for (int i = 0; i < m; ++i) parties.emplace_back(i, m, 778);
  int ones = 0;
  for (int round = 0; round < 64; ++round) {
    u128 bit = 0;
    for (int i = 0; i < m; ++i) bit = FpAdd(bit, parties[i].NextBitShare());
    ASSERT_TRUE(bit == 0 || bit == 1);
    ones += (bit == 1);
  }
  EXPECT_GT(ones, 10);  // not constant
  EXPECT_LT(ones, 54);
}

TEST_P(DealerInvariantTest, TruncMasksDecomposeCorrectly) {
  const int m = GetParam();
  std::vector<Preprocessing> parties;
  for (int i = 0; i < m; ++i) parties.emplace_back(i, m, 779);
  for (int round = 0; round < 10; ++round) {
    std::vector<Preprocessing::TruncMask> masks;
    for (int i = 0; i < m; ++i) masks.push_back(parties[i].NextTruncMask(16, 24));
    // Reconstruct each bit; all must be 0/1; r1 < 2^24.
    for (int j = 0; j < 16; ++j) {
      u128 bit = 0;
      for (int i = 0; i < m; ++i) {
        bit = FpAdd(bit, masks[i].low_bit_shares[j]);
      }
      ASSERT_TRUE(bit == 0 || bit == 1);
    }
    u128 r1 = 0;
    for (int i = 0; i < m; ++i) r1 = FpAdd(r1, masks[i].r1_share);
    EXPECT_TRUE(r1 < (static_cast<u128>(1) << 24));
  }
}

TEST_P(DealerInvariantTest, DifferentSeedsDifferentStreams) {
  const int m = GetParam();
  Preprocessing a(0, m, 1), b(0, m, 2);
  int same = 0;
  for (int i = 0; i < 16; ++i) {
    same += (a.NextRandomShare() == b.NextRandomShare());
  }
  EXPECT_LT(same, 2);
}

INSTANTIATE_TEST_SUITE_P(Parties, DealerInvariantTest,
                         ::testing::Values(1, 2, 3, 5));

// ---------------------------------------------------------------------------
// Network simulation: the LAN emulation must actually delay messages.
// ---------------------------------------------------------------------------

TEST(NetworkSimTest, LatencyDelaysSends) {
  NetworkSim sim;
  sim.latency_us = 2000;  // 2 ms per message
  InMemoryNetwork net(2, 60'000, sim);
  const auto start = std::chrono::steady_clock::now();
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      for (int i = 0; i < 10; ++i) {
        PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes{1}));
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
        (void)msg;
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok());
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_GE(ms, 18.0);  // 10 messages x 2 ms, minus scheduling slack
}

TEST(NetworkSimTest, BandwidthDelaysLargeMessages) {
  NetworkSim sim;
  sim.bandwidth_gbps = 0.001;  // 1 Mbps: 1 MB takes ~8 s -> use 10 KB ~ 80 ms
  InMemoryNetwork net(2, 60'000, sim);
  const auto start = std::chrono::steady_clock::now();
  Status st = RunParties(net, [](int id, Endpoint& ep) -> Status {
    if (id == 0) {
      PIVOT_RETURN_IF_ERROR(ep.Send(1, Bytes(10'000, 7)));
    } else {
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, ep.Recv(0));
      if (msg.size() != 10'000) return Status::Internal("size");
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok());
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_GE(ms, 60.0);
}

TEST(NetworkSimTest, DisabledByDefault) {
  NetworkSim sim;
  EXPECT_FALSE(sim.enabled());
  sim.latency_us = 1;
  EXPECT_TRUE(sim.enabled());
}

}  // namespace
}  // namespace pivot
