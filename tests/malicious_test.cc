#include "pivot/malicious.h"

#include <gtest/gtest.h>

#include "crypto/threshold_paillier.h"
#include "data/synthetic.h"
#include "mpc/mac.h"
#include "pivot/runner.h"

namespace pivot {
namespace {

// ---------------------------------------------------------------------------
// MAC-authenticated shares (SPDZ MACs, Section 9.1.1)
// ---------------------------------------------------------------------------

void RunAuth(int m, const std::function<Status(AuthEngine&)>& body) {
  InMemoryNetwork net(m);
  Status st = RunParties(net, [&](int id, Endpoint& ep) -> Status {
    AuthDealer dealer(id, m, 777);
    AuthEngine eng(&ep, &dealer);
    return body(eng);
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(AuthShareTest, InputOpenRoundTrip) {
  RunAuth(3, [](AuthEngine& eng) -> Status {
    for (i128 v : {i128{0}, i128{42}, i128{-5}, i128{1} << 50}) {
      PIVOT_ASSIGN_OR_RETURN(AuthShare s, eng.Input(1, v));
      PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(s));
      if (FpToSigned(opened) != v) return Status::Internal("open mismatch");
    }
    return Status::Ok();
  });
}

TEST(AuthShareTest, LinearOpsPreserveMacs) {
  RunAuth(2, [](AuthEngine& eng) -> Status {
    PIVOT_ASSIGN_OR_RETURN(AuthShare a, eng.Input(0, 30));
    PIVOT_ASSIGN_OR_RETURN(AuthShare b, eng.Input(1, 12));
    PIVOT_ASSIGN_OR_RETURN(u128 sum, eng.Open(AuthEngine::Add(a, b)));
    PIVOT_ASSIGN_OR_RETURN(u128 diff, eng.Open(AuthEngine::Sub(a, b)));
    PIVOT_ASSIGN_OR_RETURN(u128 scaled, eng.Open(AuthEngine::MulPub(a, 3)));
    PIVOT_ASSIGN_OR_RETURN(u128 shifted, eng.Open(eng.AddConst(a, 12)));
    if (FpToSigned(sum) != 42 || FpToSigned(diff) != 18 ||
        FpToSigned(scaled) != 90 || FpToSigned(shifted) != 42) {
      return Status::Internal("authenticated linear ops wrong");
    }
    return Status::Ok();
  });
}

TEST(AuthShareTest, AuthenticatedMultiplication) {
  RunAuth(3, [](AuthEngine& eng) -> Status {
    PIVOT_ASSIGN_OR_RETURN(AuthShare a, eng.Input(0, -6));
    PIVOT_ASSIGN_OR_RETURN(AuthShare b, eng.Input(0, 7));
    PIVOT_ASSIGN_OR_RETURN(AuthShare c, eng.Mul(a, b));
    PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(c));
    if (FpToSigned(opened) != -42) return Status::Internal("mul mismatch");
    return Status::Ok();
  });
}

TEST(AuthShareTest, TamperedShareIsDetected) {
  RunAuth(2, [](AuthEngine& eng) -> Status {
    PIVOT_ASSIGN_OR_RETURN(AuthShare s, eng.Input(0, 100));
    // Party 1 adds 1 to its share of the value without fixing the MAC.
    AuthShare cheat = eng.party_id() == 1 ? AuthEngine::Tamper(s, 1) : s;
    Result<u128> opened = eng.Open(cheat);
    if (opened.ok()) return Status::Internal("tampering went undetected");
    if (opened.status().code() != StatusCode::kIntegrityError) {
      return Status::Internal("wrong error: " + opened.status().ToString());
    }
    return Status::Ok();
  });
}

TEST(AuthShareTest, TamperAtAnyBatchIndexDetected) {
  // The MAC check folds all z-shares into one constant-time verdict
  // (ct::AllZeroU128); tampering with the first, middle, or last element
  // of a batch must be caught identically.
  for (size_t bad : {size_t{0}, size_t{2}, size_t{4}}) {
    RunAuth(2, [bad](AuthEngine& eng) -> Status {
      std::vector<AuthShare> batch;
      for (int v = 0; v < 5; ++v) {
        PIVOT_ASSIGN_OR_RETURN(AuthShare s, eng.Input(0, v * 11));
        batch.push_back(s);
      }
      if (eng.party_id() == 1) {
        batch[bad] = AuthEngine::Tamper(batch[bad], 1);
      }
      Result<std::vector<u128>> opened = eng.OpenVec(batch);
      if (opened.ok()) return Status::Internal("batch tamper undetected");
      if (opened.status().code() != StatusCode::kIntegrityError) {
        return Status::Internal("wrong error: " + opened.status().ToString());
      }
      return Status::Ok();
    });
  }
}

TEST(AuthShareTest, TamperedMulInputDetected) {
  RunAuth(2, [](AuthEngine& eng) -> Status {
    PIVOT_ASSIGN_OR_RETURN(AuthShare a, eng.Input(0, 5));
    PIVOT_ASSIGN_OR_RETURN(AuthShare b, eng.Input(0, 9));
    AuthShare cheat = eng.party_id() == 0 ? AuthEngine::Tamper(a, 3) : a;
    // The tamper is caught when the Beaver masks are opened inside Mul.
    Result<AuthShare> c = eng.Mul(cheat, b);
    if (c.ok()) {
      Result<u128> opened = eng.Open(c.value());
      if (opened.ok()) return Status::Internal("tampered mul undetected");
    }
    return Status::Ok();
  });
}

// ---------------------------------------------------------------------------
// ZKP-verified local computation (Section 9.1.2)
// ---------------------------------------------------------------------------

class MaliciousZkpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(4242);
    keys_ = new ThresholdPaillier(GenerateThresholdPaillier(256, 2, *rng_));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
  }
  static Rng* rng_;
  static ThresholdPaillier* keys_;
};

Rng* MaliciousZkpTest::rng_ = nullptr;
ThresholdPaillier* MaliciousZkpTest::keys_ = nullptr;

TEST_F(MaliciousZkpTest, CommitmentProvesOpenability) {
  std::vector<uint8_t> bits = {1, 0, 1, 1};
  CommittedVector committed = CommitIndicatorVector(keys_->pk, bits, *rng_);
  CommitmentWithProofs proofs = ProveCommitment(keys_->pk, committed, *rng_);
  EXPECT_TRUE(VerifyCommitment(keys_->pk, proofs).ok());
  // Swapping a commitment invalidates its proof.
  std::swap(proofs.commitments[0], proofs.commitments[1]);
  EXPECT_FALSE(VerifyCommitment(keys_->pk, proofs).ok());
}

TEST_F(MaliciousZkpTest, HonestStatisticVerifies) {
  std::vector<uint8_t> bits = {1, 0, 1, 0, 1};
  CommittedVector committed = CommitIndicatorVector(keys_->pk, bits, *rng_);
  std::vector<Ciphertext> gamma;
  for (int g : {1, 1, 0, 1, 1}) {
    gamma.push_back(keys_->pk.Encrypt(BigInt(g), *rng_));
  }
  VerifiedStatistic stat =
      ComputeVerifiedSplitStatistic(keys_->pk, committed, gamma, *rng_);
  EXPECT_TRUE(VerifySplitStatistic(keys_->pk, committed.commitments, gamma,
                                   stat)
                  .ok());
  // Statistic decrypts to the true overlap count (positions 0 and 4).
  EXPECT_EQ(JointDecrypt(*keys_, stat.stat).value(), BigInt(2));
}

TEST_F(MaliciousZkpTest, InflatedStatisticRejected) {
  std::vector<uint8_t> bits = {1, 0};
  CommittedVector committed = CommitIndicatorVector(keys_->pk, bits, *rng_);
  std::vector<Ciphertext> gamma = {keys_->pk.Encrypt(BigInt(1), *rng_),
                                   keys_->pk.Encrypt(BigInt(1), *rng_)};
  VerifiedStatistic stat =
      ComputeVerifiedSplitStatistic(keys_->pk, committed, gamma, *rng_);
  // A malicious client swaps in a bigger count.
  stat.stat = keys_->pk.Encrypt(BigInt(5), *rng_);
  EXPECT_FALSE(VerifySplitStatistic(keys_->pk, committed.commitments, gamma,
                                    stat)
                   .ok());
}

TEST_F(MaliciousZkpTest, GammaEntryVerifies) {
  BigInt beta(1);
  BigInt r = keys_->pk.SampleUnit(*rng_).value();
  Ciphertext beta_commit = keys_->pk.EncryptWithRandomness(beta, r);
  Ciphertext alpha = keys_->pk.Encrypt(BigInt(1), *rng_);
  VerifiedGammaEntry entry =
      ComputeVerifiedGammaEntry(keys_->pk, beta_commit, beta, r, alpha, *rng_);
  EXPECT_TRUE(VerifyGammaEntry(keys_->pk, beta_commit, alpha, entry).ok());
  EXPECT_EQ(JointDecrypt(*keys_, entry.gamma).value(), BigInt(1));
  // A gamma entry computed from a different beta fails verification.
  VerifiedGammaEntry forged = entry;
  forged.gamma = keys_->pk.ScalarMul(BigInt(2), alpha);
  EXPECT_FALSE(VerifyGammaEntry(keys_->pk, beta_commit, alpha, forged).ok());
}

// ---------------------------------------------------------------------------
// Verified conversion (modified Algorithm 2, Section 9.1.1)
// ---------------------------------------------------------------------------

TEST(VerifiedConversionTest, HonestPartiesProduceCorrectShares) {
  ClassificationSpec spec;
  spec.num_samples = 8;
  spec.num_features = 4;
  Dataset data = MakeClassification(spec);
  FederationConfig cfg;
  cfg.num_parties = 3;
  cfg.params.key_bits = 256;
  Status st = RunFederation(data, cfg, [&](PartyContext& ctx) -> Status {
    std::vector<Ciphertext> cts;
    if (ctx.id() == 0) {
      for (int v : {7, 0, 123456}) {
        cts.push_back(ctx.pk().Encrypt(BigInt(v), ctx.rng()));
      }
    }
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                           VerifiedCiphertextsToShares(ctx, cts, 0));
    // Reconstruct through the engine to check the values.
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened,
                           ctx.engine().OpenVec(shares));
    if (FpToSigned(opened[0]) != 7 || FpToSigned(opened[1]) != 0 ||
        FpToSigned(opened[2]) != 123456) {
      return Status::Internal("verified conversion wrong values");
    }
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace pivot
