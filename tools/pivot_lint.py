#!/usr/bin/env python3
"""pivot_lint: repo-invariant checks the C++ compiler cannot express.

Rules (see DESIGN.md, "Correctness tooling"):

  banned-random     rand()/srand()/std::random_device anywhere except
                    src/common/rng.* — all randomness must flow through the
                    seeded Rng so multi-party protocol runs stay
                    deterministic and reproducible.

  secret-print      printf/std::cout/puts/fprintf(stdout, ...) inside src/.
                    Library code handles shares, ciphertexts, and key
                    material; it must never print to stdout. Diagnostics go
                    to stderr (PIVOT_CHECK) or into Status messages. Tools,
                    benches, examples, and tests are exempt.

  include-guard     Headers under src/, tools/, and bench/ must use the
                    canonical guard PIVOT_<RELPATH>_H_ (src/ is stripped
                    from the prefix: src/net/network.h ->
                    PIVOT_NET_NETWORK_H_; elsewhere the full path is used:
                    bench/bench_util.h -> PIVOT_BENCH_BENCH_UTIL_H_), with
                    a matching #define.

  unchecked-value   .value() on a Result inside src/, tools/, or bench/
                    without a preceding check in the same function (an ok()
                    test, a PIVOT_CHECK, or a PIVOT_ASSIGN_OR_RETURN /
                    PIVOT_RETURN_IF_ERROR). src/common/status.h (the
                    definition site) is exempt.

  unbounded-wait    condition_variable wait() without a timeout, or a raw
                    MessageQueue Pop(), in src/ outside src/net/. Blocking
                    primitives must live behind the network layer, whose
                    waits are bounded by recv_timeout_ms and woken by
                    Abort(); an unbounded wait elsewhere can hang the party
                    mesh forever when a peer dies (see DESIGN.md, "Fault
                    model"). Use wait_for/wait_until or Endpoint Recv.

  raw-std-thread    std::thread (or #include <thread>) in src/ outside
                    src/common/ and src/net/. Compute parallelism must go
                    through the shared ThreadPool (common/thread_pool.h)
                    so fan-out is centrally capped and deterministic;
                    party threads live in the runner behind src/net/
                    channels (see DESIGN.md, "Parallelism model").

  unbounded-retry   an unbounded loop (while (true) / for (;;)) that talks
                    about retrying (retry/retransmit/resend/backoff/nack)
                    with no budget in scope (retry_budget, a deadline, or
                    max_restarts) in src/. Recovery loops must be bounded
                    so a persistent fault exhausts its budget and
                    escalates to the abort path instead of spinning
                    forever (see DESIGN.md, "Fault model").

  raw-socket        raw socket API use — socket(2)/::send/::recv and
                    friends, sockaddr types, or the BSD socket headers —
                    in src/, tools/, or bench/ outside src/net/. All
                    byte-moving goes through the Endpoint abstraction so
                    framing, reliability, supervision, and fault
                    injection cannot be bypassed (see DESIGN.md,
                    "Transport model"). Tests are exempt (they drive
                    SocketNetwork directly).

  raw-process       process-control syscalls — fork/exec*/kill/waitpid
                    and friends, system(3)/popen(3) — in src/, tools/,
                    or bench/ outside src/orchestrator/. Child processes
                    are spawned, signalled, and reaped only through
                    orchestrator/process.h so every child is supervised,
                    its logs captured, and its exit reaped and
                    attributed (see DESIGN.md, "Orchestration model").
                    Tests are exempt (shell-script harnesses kill
                    parties directly).

Usage:
  tools/pivot_lint.py [ROOT]            lint the whole tree (default: cwd)
  tools/pivot_lint.py ROOT --files F... lint specific files only

Exit status: 0 if clean, 1 if any finding, 2 on usage error.
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")
SKIP_DIR_NAMES = {".git", "bench_results", "third_party", "__pycache__"}
SKIP_DIR_PREFIXES = ("build",)

RE_BANNED_RANDOM = re.compile(
    r"(?<![A-Za-z0-9_])(?:srand|rand)\s*\(|(?<![A-Za-z0-9_])random_device\b"
)
RE_SECRET_PRINT = re.compile(
    r"(?<![A-Za-z0-9_])printf\s*\(|std::cout\b|(?<![A-Za-z0-9_])puts\s*\(|"
    r"fprintf\s*\(\s*stdout\b"
)
RE_VALUE_CALL = re.compile(r"\.value\(\)")
RE_VALUE_CHECKED = re.compile(
    r"\bok\s*\(\)|PIVOT_ASSIGN_OR_RETURN|PIVOT_RETURN_IF_ERROR|PIVOT_CHECK"
)
RE_LINE_COMMENT = re.compile(r"//.*$")
RE_UNBOUNDED_WAIT = re.compile(
    r"(?:\.|->)wait\s*\(|(?:\.|->)Pop\s*\(|MessageQueue::Pop\b"
)
RE_UNBOUNDED_LOOP = re.compile(r"while\s*\(\s*(?:true|1)\s*\)|for\s*\(\s*;\s*;")
RE_RAW_STD_THREAD = re.compile(r"\bstd::thread\b|#\s*include\s*<thread>")
RE_RETRY_KEYWORD = re.compile(
    r"retry|retransmit|resend|backoff|nack", re.IGNORECASE)
RE_RETRY_BOUND = re.compile(
    r"budget|deadline|max_restarts", re.IGNORECASE)
# Raw socket surface: the BSD socket headers, the sockaddr family, and
# ::-qualified (or socket(2) itself, bare) syscalls. Lowercase send/recv
# are matched only with explicit :: qualification so Endpoint method
# calls (ep.Send / ep->Recv) and unrelated identifiers never trip it.
RE_RAW_SOCKET = re.compile(
    r"#\s*include\s*<(?:sys/socket\.h|sys/un\.h|netinet/[^>]+|arpa/inet\.h)>"
    r"|\bsockaddr(?:_in|_un|_storage)?\b"
    r"|::\s*(?:socket|send|recv|sendto|recvfrom|sendmsg|recvmsg|connect|"
    r"bind|listen|accept|setsockopt|getsockname)\s*\("
    r"|(?<![A-Za-z0-9_:.>])socket\s*\(")
# Process-control surface. Only full identifiers followed by '(' are
# matched, so cv.wait_for(...), kill_sent, force_kill(...) and "SIGKILL"
# strings never trip it; ::-qualified calls still do (':' is outside the
# lookbehind class). Plain wait() is deliberately absent — it collides
# with condition_variable::wait, and waitpid covers the repo.
RE_RAW_PROCESS = re.compile(
    r"(?<![A-Za-z0-9_])(?:fork|vfork|execv|execve|execvp|execvpe|execl|"
    r"execlp|execle|posix_spawn|posix_spawnp|waitpid|wait3|wait4|kill|"
    r"killpg|system|popen)\s*\(")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def is_rng_impl(rel):
    return rel in ("src/common/rng.h", "src/common/rng.cc")


def strip_comment(line):
    """Drop a trailing // comment so commented-out code is not flagged."""
    return RE_LINE_COMMENT.sub("", line)


def expected_guard(rel):
    """src/net/network.h -> PIVOT_NET_NETWORK_H_ (src/ is stripped);
    bench/bench_util.h -> PIVOT_BENCH_BENCH_UTIL_H_ (full path kept)."""
    stem = rel[len("src/"):] if rel.startswith("src/") else rel
    return "PIVOT_" + re.sub(r"[/.\-]", "_", stem).upper() + "_"


def check_banned_random(rel, lines, findings):
    if is_rng_impl(rel):
        return
    for i, line in enumerate(lines, 1):
        if RE_BANNED_RANDOM.search(strip_comment(line)):
            findings.append(Finding(
                rel, i, "banned-random",
                "rand()/srand()/std::random_device outside src/common/rng.*; "
                "use pivot::Rng so runs stay deterministic"))


def check_secret_print(rel, lines, findings):
    if not rel.startswith("src/"):
        return
    for i, line in enumerate(lines, 1):
        if RE_SECRET_PRINT.search(strip_comment(line)):
            findings.append(Finding(
                rel, i, "secret-print",
                "stdout printing in library code (share/ciphertext hygiene); "
                "use stderr or Status messages"))


def check_include_guard(rel, lines, findings):
    if not (rel.startswith(("src/", "tools/", "bench/")) and
            rel.endswith((".h", ".hpp"))):
        return
    want = expected_guard(rel)
    ifndef_idx = None
    guard = None
    for i, line in enumerate(lines, 1):
        m = re.match(r"\s*#ifndef\s+(\S+)", line)
        if m:
            ifndef_idx, guard = i, m.group(1)
            break
    if guard is None:
        findings.append(Finding(rel, 1, "include-guard",
                                f"missing include guard (expected {want})"))
        return
    if guard != want:
        findings.append(Finding(rel, ifndef_idx, "include-guard",
                                f"guard is {guard}, expected {want}"))
        return
    defines = any(re.match(r"\s*#define\s+" + re.escape(want) + r"\b", l)
                  for l in lines)
    if not defines:
        findings.append(Finding(rel, ifndef_idx, "include-guard",
                                f"#ifndef {want} without matching #define"))


def check_unchecked_value(rel, lines, findings):
    if not rel.startswith(("src/", "tools/", "bench/")) or \
            rel == "src/common/status.h":
        return
    for i, line in enumerate(lines, 1):
        code = strip_comment(line)
        if not RE_VALUE_CALL.search(code):
            continue
        # Scan backwards through the enclosing function (approximated as
        # everything up to the previous column-0 '}' or the file start)
        # looking for an ok() check or a check/propagation macro.
        checked = False
        for j in range(i - 2, -1, -1):
            prev = lines[j]
            if prev.startswith("}"):
                break
            if RE_VALUE_CHECKED.search(strip_comment(prev)):
                checked = True
                break
        if not checked:
            findings.append(Finding(
                rel, i, "unchecked-value",
                ".value() on a Result with no preceding ok() check or "
                "PIVOT_* check macro in the same function"))


def check_unbounded_wait(rel, lines, findings):
    if not rel.startswith("src/") or rel.startswith("src/net/"):
        return
    for i, line in enumerate(lines, 1):
        if RE_UNBOUNDED_WAIT.search(strip_comment(line)):
            findings.append(Finding(
                rel, i, "unbounded-wait",
                "unbounded wait()/raw MessageQueue Pop() outside src/net/; "
                "blocking must go through Endpoint so Abort() and "
                "recv_timeout_ms can wake it"))


def check_raw_std_thread(rel, lines, findings):
    if not rel.startswith("src/"):
        return
    if rel.startswith(("src/common/", "src/net/")):
        return
    for i, line in enumerate(lines, 1):
        if RE_RAW_STD_THREAD.search(strip_comment(line)):
            findings.append(Finding(
                rel, i, "raw-std-thread",
                "raw std::thread outside src/common/ and src/net/; use the "
                "shared ThreadPool (common/thread_pool.h) so fan-out stays "
                "centrally capped and thread-count invariant"))


def check_unbounded_retry(rel, lines, findings):
    if not rel.startswith("src/"):
        return
    # Segment the file at column-0 '}' (function-level approximation, as
    # in check_unchecked_value) and flag segments that contain an
    # unbounded loop and retry vocabulary but never reference a bound.
    boundaries = [0]
    for i, line in enumerate(lines, 1):
        if line.startswith("}"):
            boundaries.append(i)
    boundaries.append(len(lines))
    for start, end in zip(boundaries, boundaries[1:]):
        seg = [strip_comment(l) for l in lines[start:end]]
        loop_line = None
        for off, code in enumerate(seg):
            if RE_UNBOUNDED_LOOP.search(code):
                loop_line = start + off + 1
                break
        if loop_line is None:
            continue
        text = "\n".join(seg)
        if RE_RETRY_KEYWORD.search(text) and not RE_RETRY_BOUND.search(text):
            findings.append(Finding(
                rel, loop_line, "unbounded-retry",
                "unbounded retry/backoff loop with no budget in scope; "
                "bound it (retry_budget, a deadline, or max_restarts) so a "
                "persistent fault escalates instead of spinning forever"))


def check_raw_socket(rel, lines, findings):
    if not rel.startswith(("src/", "tools/", "bench/")):
        return
    if rel.startswith("src/net/"):
        return
    for i, line in enumerate(lines, 1):
        if RE_RAW_SOCKET.search(strip_comment(line)):
            findings.append(Finding(
                rel, i, "raw-socket",
                "raw socket API outside src/net/; all transport goes "
                "through Endpoint/SocketNetwork so framing, reliability, "
                "supervision and fault injection cannot be bypassed"))


def check_raw_process(rel, lines, findings):
    if not rel.startswith(("src/", "tools/", "bench/")):
        return
    if rel.startswith("src/orchestrator/"):
        return
    for i, line in enumerate(lines, 1):
        if RE_RAW_PROCESS.search(strip_comment(line)):
            findings.append(Finding(
                rel, i, "raw-process",
                "process-control syscall outside src/orchestrator/; "
                "fork/exec/kill/waitpid go through orchestrator/process.h "
                "so every child is supervised, logged, and reaped"))


CHECKS = (
    check_banned_random,
    check_secret_print,
    check_include_guard,
    check_unchecked_value,
    check_unbounded_wait,
    check_raw_std_thread,
    check_unbounded_retry,
    check_raw_socket,
    check_raw_process,
)


def lint_file(root, rel):
    path = os.path.join(root, rel)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [Finding(rel, 0, "io", f"cannot read file: {e}")]
    findings = []
    for check in CHECKS:
        check(rel, lines, findings)
    return findings


def collect_files(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in SKIP_DIR_NAMES
            and not any(d.startswith(p) for p in SKIP_DIR_PREFIXES))
        for name in sorted(filenames):
            if name.endswith(CXX_EXTENSIONS):
                out.append(os.path.relpath(os.path.join(dirpath, name), root))
    return out


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--files", nargs="*", default=None,
                        help="lint only these paths (relative to ROOT)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"pivot_lint: not a directory: {root}", file=sys.stderr)
        return 2

    rels = (args.files if args.files is not None else collect_files(root))
    findings = []
    for rel in rels:
        rel = rel.replace(os.sep, "/")
        findings.extend(lint_file(root, rel))

    for f in findings:
        print(f)
    if findings:
        print(f"pivot_lint: {len(findings)} finding(s) in "
              f"{len(set(f.path for f in findings))} file(s)",
              file=sys.stderr)
        return 1
    print(f"pivot_lint: OK ({len(rels)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
