#!/usr/bin/env python3
"""Self-test for pivot_taint.py.

Two layers:
  * the fixture corpus in tools/taint_fixtures/ — one known-leaky snippet
    per rule, each of which must trip EXACTLY its own rule exactly once,
    plus a clean snippet that must produce no findings;
  * unit tests for the taint machinery (propagation, sanitizer stripping,
    suppression handling) on synthetic snippets in a temp tree.
"""

import contextlib
import io
import os
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
sys.path.insert(0, TOOLS_DIR)
import pivot_taint  # noqa: E402

FIXTURE_DIR = "tools/taint_fixtures"


def run_taint(root, files):
    """Runs the analyzer CLI; returns (exit_code, [finding lines])."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = pivot_taint.main([root, "--files"] + files)
    lines = [ln for ln in out.getvalue().splitlines()
             if "[taint:" in ln]
    return code, lines


def run_snippet(content, rel="src/mpc/snippet.cc"):
    """Analyzes one synthetic file against the real taint model."""
    with tempfile.TemporaryDirectory() as root:
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return run_taint(root, [rel])


def rules_of(lines):
    return [ln.split("[taint:")[1].split("]")[0] for ln in lines]


class FixtureCorpusTest(unittest.TestCase):
    """Each fixture trips exactly one finding of exactly its rule."""

    EXPECTED = {
        "leaky_status.cc": "status-leak",
        "leaky_print.cc": "secret-print",
        "leaky_serve.cc": "secret-print",
        "leaky_send.cc": "raw-send",
        "leaky_branch.cc": "secret-branch",
        "leaky_compare.cc": "non-ct-compare",
        "leaky_vartime.cc": "variable-time-call",
        "leaky_suppression.cc": "bad-suppression",
    }

    def test_every_rule_has_a_fixture(self):
        self.assertEqual(sorted(set(self.EXPECTED.values())),
                         sorted(set(pivot_taint.RULES) | {"bad-suppression"}))

    def test_leaky_fixtures_trip_their_rule_once(self):
        for name, rule in sorted(self.EXPECTED.items()):
            rel = f"{FIXTURE_DIR}/{name}"
            self.assertTrue(
                os.path.exists(os.path.join(REPO_ROOT, rel)),
                f"fixture missing: {rel}")
            code, lines = run_taint(REPO_ROOT, [rel])
            self.assertEqual(code, 1, f"{name}: expected exit 1")
            self.assertEqual(
                rules_of(lines), [rule],
                f"{name}: expected exactly one [{rule}], got {lines}")

    def test_clean_fixture_is_clean(self):
        code, lines = run_taint(
            REPO_ROOT, [f"{FIXTURE_DIR}/clean_sanitized.cc"])
        self.assertEqual((code, lines), (0, []))


class PropagationTest(unittest.TestCase):
    def test_assignment_propagates_taint(self):
        code, lines = run_snippet(
            "void F(Endpoint* ep) {\n"
            "  u128 key = 1;  // pivot:secret\n"
            "  u128 copy = key;\n"
            "  ep->Send(1, EncodeU128(copy));\n"
            "}\n")
        self.assertEqual(rules_of(lines), ["raw-send"])

    def test_registry_field_is_tainted(self):
        code, lines = run_snippet(
            "void F() {\n"
            "  if (sk.lambda_ > 0) { Use(); }\n"
            "}\n")
        self.assertEqual(rules_of(lines), ["secret-branch"])

    def test_secret_type_declaration(self):
        code, lines = run_snippet(
            "void F() {\n"
            "  PaillierPrivateKey sk = MakeKey();\n"
            "  std::printf(\"%d\\n\", sk.bits);\n"
            "}\n")
        self.assertEqual(rules_of(lines), ["secret-print"])

    def test_qualified_type_marker_names_the_variable(self):
        # Regression: `std::string line; // pivot:secret` must taint
        # `line`, not the namespace token `std`.
        code, lines = run_snippet(
            "void F() {\n"
            "  std::string cell;  // pivot:secret\n"
            "  std::string other;\n"
            "  if (other > \"x\") { Use(); }\n"
            "  if (cell > \"x\") { Use(); }\n"
            "}\n")
        self.assertEqual(len(lines), 1, lines)
        self.assertIn("snippet.cc:5", lines[0])


class SanitizerTest(unittest.TestCase):
    def test_encryption_declassifies(self):
        code, lines = run_snippet(
            "Status F(Endpoint* ep, const PaillierPublicKey& pk, Rng& rng) {\n"
            "  BigInt m(1);  // pivot:secret\n"
            "  Ciphertext c = pk.Encrypt(m, rng);\n"
            "  return ep->Send(1, EncodeBigInt(c.value));\n"
            "}\n")
        self.assertEqual((code, lines), (0, []))

    def test_lengths_are_public(self):
        code, lines = run_snippet(
            "void F() {\n"
            "  Bytes share_bytes;  // pivot:secret\n"
            "  std::printf(\"%zu\\n\", share_bytes.size());\n"
            "}\n")
        self.assertEqual((code, lines), (0, []))

    def test_ct_predicates_are_sanctioned(self):
        code, lines = run_snippet(
            "bool F() {\n"
            "  u128 mac = Get();  // pivot:secret\n"
            "  u128 expect = Get2();  // pivot:secret\n"
            "  if (!ct::EqualU128(mac, expect)) { return false; }\n"
            "  return true;\n"
            "}\n")
        self.assertEqual((code, lines), (0, []))

    def test_plain_equality_is_flagged(self):
        code, lines = run_snippet(
            "bool F() {\n"
            "  u128 mac = Get();  // pivot:secret\n"
            "  if (mac == 0) { return false; }\n"
            "  return true;\n"
            "}\n")
        self.assertEqual(sorted(rules_of(lines)),
                         ["non-ct-compare", "secret-branch"])


class SuppressionTest(unittest.TestCase):
    def test_suppression_with_reason_is_honored(self):
        code, lines = run_snippet(
            "void F(Endpoint* ep) {\n"
            "  u128 share = Get();  // pivot:secret\n"
            "  // pivot-taint: allow(raw-send) share is uniform, test.\n"
            "  ep->Send(1, EncodeU128(share));\n"
            "}\n")
        self.assertEqual((code, lines), (0, []))

    def test_multiline_comment_block_suppression(self):
        code, lines = run_snippet(
            "void F(Endpoint* ep) {\n"
            "  u128 share = Get();  // pivot:secret\n"
            "  // pivot-taint: allow(raw-send) the reason for this flow\n"
            "  // wraps across two comment lines above the statement.\n"
            "  ep->Send(1, EncodeU128(share));\n"
            "}\n")
        self.assertEqual((code, lines), (0, []))

    def test_comma_list_suppresses_multiple_rules(self):
        code, lines = run_snippet(
            "bool F() {\n"
            "  u128 mac = Get();  // pivot:secret\n"
            "  // pivot-taint: allow(secret-branch, non-ct-compare) test.\n"
            "  if (mac == 0) { return false; }\n"
            "  return true;\n"
            "}\n")
        self.assertEqual((code, lines), (0, []))

    def test_empty_reason_is_a_finding(self):
        code, lines = run_snippet(
            "void F(Endpoint* ep) {\n"
            "  u128 share = Get();  // pivot:secret\n"
            "  // pivot-taint: allow(raw-send)\n"
            "  ep->Send(1, EncodeU128(share));\n"
            "}\n")
        self.assertEqual(rules_of(lines), ["bad-suppression"])

    def test_wrong_rule_does_not_suppress(self):
        code, lines = run_snippet(
            "void F(Endpoint* ep) {\n"
            "  u128 share = Get();  // pivot:secret\n"
            "  // pivot-taint: allow(secret-print) mismatched rule.\n"
            "  ep->Send(1, EncodeU128(share));\n"
            "}\n")
        self.assertEqual(rules_of(lines), ["raw-send"])


class TreeTest(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        """The shipped tree must analyze clean (suppressions all carry
        reasons); this is the same invariant the `pivot_taint` ctest
        entry enforces."""
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = pivot_taint.main([REPO_ROOT])
        self.assertEqual(code, 0, out.getvalue())


if __name__ == "__main__":
    unittest.main(verbosity=2)
