#!/usr/bin/env python3
"""Self-test for pivot_lint.py: feeds known-bad and known-good snippets
through each rule and asserts the expected findings."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import pivot_lint  # noqa: E402


def run_lint(files):
    """files: {relpath: content}. Returns (exit_code, [finding_str...])."""
    with tempfile.TemporaryDirectory() as root:
        for rel, content in files.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        findings = []
        for rel in sorted(files):
            findings.extend(pivot_lint.lint_file(root, rel))
        return findings


def rules(findings):
    return sorted(set(f.rule for f in findings))


GOOD_HEADER = """#ifndef PIVOT_FOO_BAR_H_
#define PIVOT_FOO_BAR_H_
namespace pivot {}
#endif  // PIVOT_FOO_BAR_H_
"""


class BannedRandomTest(unittest.TestCase):
    def test_flags_rand_outside_rng(self):
        findings = run_lint({"src/mpc/engine.cc": "int x = rand();\n"})
        self.assertEqual(rules(findings), ["banned-random"])

    def test_flags_random_device(self):
        findings = run_lint(
            {"src/crypto/keygen.cc": "std::random_device rd;\n"})
        self.assertEqual(rules(findings), ["banned-random"])

    def test_flags_srand_in_tests_too(self):
        findings = run_lint({"tests/foo_test.cc": "srand(42);\n"})
        self.assertEqual(rules(findings), ["banned-random"])

    def test_allows_rng_impl(self):
        findings = run_lint(
            {"src/common/rng.cc": "std::random_device seed_source;\n"})
        self.assertEqual(findings, [])

    def test_ignores_identifiers_containing_rand(self):
        findings = run_lint(
            {"src/mpc/engine.cc": "int operand(int x);\n"
                                  "auto v = Brand(3);\n"})
        self.assertEqual(findings, [])

    def test_ignores_comments(self):
        findings = run_lint(
            {"src/mpc/engine.cc": "// unlike rand(), Rng is seeded\n"})
        self.assertEqual(findings, [])


class SecretPrintTest(unittest.TestCase):
    def test_flags_cout_in_src(self):
        findings = run_lint(
            {"src/crypto/paillier.cc": 'std::cout << share << "\\n";\n'})
        self.assertEqual(rules(findings), ["secret-print"])

    def test_flags_printf_in_src(self):
        findings = run_lint(
            {"src/mpc/engine.cc": 'printf("%llu", cipher);\n'})
        self.assertEqual(rules(findings), ["secret-print"])

    def test_flags_fprintf_stdout(self):
        findings = run_lint(
            {"src/mpc/engine.cc": 'fprintf(stdout, "%llu", c);\n'})
        self.assertEqual(rules(findings), ["secret-print"])

    def test_allows_fprintf_stderr(self):
        findings = run_lint(
            {"src/common/check.cc": 'fprintf(stderr, "check failed");\n'})
        self.assertEqual(findings, [])

    def test_allows_stdout_in_tools_and_bench(self):
        findings = run_lint({
            "tools/cli.cc": 'std::cout << "auc=" << auc;\n',
            "bench/bench_x.cc": 'printf("%.3f s", secs);\n',
        })
        self.assertEqual(findings, [])


class IncludeGuardTest(unittest.TestCase):
    def test_accepts_canonical_guard(self):
        findings = run_lint({"src/foo/bar.h": GOOD_HEADER})
        self.assertEqual(findings, [])

    def test_flags_wrong_guard_name(self):
        bad = GOOD_HEADER.replace("PIVOT_FOO_BAR_H_", "BAR_H")
        findings = run_lint({"src/foo/bar.h": bad})
        self.assertEqual(rules(findings), ["include-guard"])

    def test_flags_missing_guard(self):
        findings = run_lint({"src/foo/bar.h": "namespace pivot {}\n"})
        self.assertEqual(rules(findings), ["include-guard"])

    def test_flags_ifndef_without_define(self):
        bad = "#ifndef PIVOT_FOO_BAR_H_\nnamespace pivot {}\n#endif\n"
        findings = run_lint({"src/foo/bar.h": bad})
        self.assertEqual(rules(findings), ["include-guard"])

    def test_ignores_headers_outside_covered_dirs(self):
        # tests/ and examples/ headers are exempt; bench/ and tools/ are
        # covered (see ToolsAndBenchCoverageTest).
        findings = run_lint({"tests/util.h": "#ifndef WHATEVER_H\n"
                                             "#define WHATEVER_H\n"
                                             "#endif\n"})
        self.assertEqual(findings, [])


class UncheckedValueTest(unittest.TestCase):
    def test_flags_value_without_check(self):
        code = ("int F() {\n"
                "  Result<int> r = Parse();\n"
                "  return r.value();\n"
                "}\n")
        findings = run_lint({"src/net/codec.cc": code})
        self.assertEqual(rules(findings), ["unchecked-value"])

    def test_accepts_value_after_ok_check(self):
        code = ("int F() {\n"
                "  Result<int> r = Parse();\n"
                "  if (!r.ok()) return -1;\n"
                "  return r.value();\n"
                "}\n")
        findings = run_lint({"src/net/codec.cc": code})
        self.assertEqual(findings, [])

    def test_accepts_value_after_pivot_check(self):
        code = ("int F() {\n"
                "  Result<int> r = Parse();\n"
                "  PIVOT_CHECK_MSG(r.ok(), \"parse\");\n"
                "  return r.value();\n"
                "}\n")
        findings = run_lint({"src/net/codec.cc": code})
        self.assertEqual(findings, [])

    def test_check_in_previous_function_does_not_count(self):
        code = ("int G() {\n"
                "  Result<int> a = Parse();\n"
                "  if (!a.ok()) return -1;\n"
                "  return a.value();\n"
                "}\n"
                "int F() {\n"
                "  Result<int> r = Parse();\n"
                "  return r.value();\n"
                "}\n")
        findings = run_lint({"src/net/codec.cc": code})
        self.assertEqual(rules(findings), ["unchecked-value"])
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 8)

    def test_has_value_is_not_value(self):
        code = "bool F() { return opt.has_value(); }\n"
        findings = run_lint({"src/pivot/params.h": code})
        # params.h has no guard in this snippet; restrict to the rule
        self.assertNotIn("unchecked-value", rules(findings))

    def test_status_definition_site_exempt(self):
        code = "lhs = std::move(res).value();\n"
        findings = run_lint({"src/common/status.h": code})
        self.assertNotIn("unchecked-value", rules(findings))

    def test_tests_directory_exempt(self):
        findings = run_lint(
            {"tests/foo_test.cc": "auto v = r.value();\n"})
        self.assertEqual(findings, [])


class UnboundedWaitTest(unittest.TestCase):
    def test_flags_cv_wait_in_src(self):
        code = ("void F() {\n"
                "  std::unique_lock<std::mutex> lk(mu);\n"
                "  cv.wait(lk, [&] { return ready; });\n"
                "}\n")
        findings = run_lint({"src/mpc/engine.cc": code})
        self.assertEqual(rules(findings), ["unbounded-wait"])

    def test_flags_raw_pop_in_src(self):
        findings = run_lint(
            {"src/pivot/trainer.cc": "auto msg = queue->Pop(1000);\n"})
        self.assertEqual(rules(findings), ["unbounded-wait"])

    def test_allows_wait_for_with_timeout(self):
        code = "cv.wait_for(lk, std::chrono::milliseconds(50));\n"
        findings = run_lint({"src/mpc/engine.cc": code})
        self.assertEqual(findings, [])

    def test_allows_wait_inside_net_layer(self):
        code = "cv_.wait(lock, [&] { return poisoned_ || !queue_.empty(); });\n"
        findings = run_lint({"src/net/network.cc": code})
        self.assertEqual(findings, [])

    def test_ignores_tests_and_tools(self):
        findings = run_lint({"tests/net_test.cc": "cv.wait(lk);\n",
                             "tools/cli.cc": "q.Pop(10);\n"})
        self.assertEqual(findings, [])

    def test_ignores_comments(self):
        findings = run_lint(
            {"src/mpc/engine.cc": "// never cv.wait( without a timeout\n"})
        self.assertEqual(findings, [])


class RawStdThreadTest(unittest.TestCase):
    def test_flags_std_thread_in_src(self):
        code = "std::thread worker([&] { Run(); });\n"
        findings = run_lint({"src/pivot/context.cc": code})
        self.assertEqual(rules(findings), ["raw-std-thread"])

    def test_flags_thread_include_in_src(self):
        findings = run_lint({"src/crypto/paillier.cc": "#include <thread>\n"})
        self.assertEqual(rules(findings), ["raw-std-thread"])

    def test_allows_thread_pool_home(self):
        code = "#include <thread>\nstd::thread t;\n"
        findings = run_lint({"src/common/thread_pool.cc": code})
        self.assertEqual(findings, [])

    def test_allows_party_threads_in_net(self):
        code = "std::thread party([&] { RunParty(); });\n"
        findings = run_lint({"src/net/runner_threads.cc": code})
        self.assertEqual(findings, [])

    def test_tests_bench_and_tools_exempt(self):
        code = "#include <thread>\nstd::thread t([] {});\n"
        findings = run_lint({"tests/pool_test.cc": code,
                             "bench/bench_x.cc": code,
                             "tools/cli.cc": code})
        self.assertEqual(findings, [])

    def test_this_thread_is_not_flagged(self):
        code = "std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
        findings = run_lint({"src/pivot/trainer.cc": code})
        self.assertEqual(findings, [])

    def test_ignores_comments(self):
        code = "// replaced the std::thread pool with ThreadPool\n"
        findings = run_lint({"src/pivot/context.cc": code})
        self.assertEqual(findings, [])


class UnboundedRetryTest(unittest.TestCase):
    def test_flags_while_true_retry_without_budget(self):
        code = ("void F() {\n"
                "  while (true) {\n"
                "    if (Retransmit()) break;\n"
                "    SleepBackoff();\n"
                "  }\n"
                "}\n")
        findings = run_lint({"src/net/network.cc": code})
        self.assertEqual(rules(findings), ["unbounded-retry"])

    def test_flags_forever_loop_with_nack(self):
        code = ("void F() {\n"
                "  for (;;) {\n"
                "    SendNack(peer, seq);\n"
                "  }\n"
                "}\n")
        findings = run_lint({"src/net/network.cc": code})
        self.assertEqual(rules(findings), ["unbounded-retry"])

    def test_accepts_loop_referencing_budget(self):
        code = ("void F() {\n"
                "  for (;;) {\n"
                "    if (++evidence > cfg.retry_budget) return;\n"
                "    SendNack(peer, seq);\n"
                "  }\n"
                "}\n")
        findings = run_lint({"src/net/network.cc": code})
        self.assertEqual(findings, [])

    def test_accepts_loop_referencing_deadline(self):
        code = ("void F() {\n"
                "  while (true) {\n"
                "    if (Now() > deadline) return;\n"
                "    Retransmit();\n"
                "  }\n"
                "}\n")
        findings = run_lint({"src/net/network.cc": code})
        self.assertEqual(findings, [])

    def test_accepts_unbounded_loop_without_retry_vocabulary(self):
        code = ("void F() {\n"
                "  while (true) {\n"
                "    Step();\n"
                "  }\n"
                "}\n")
        findings = run_lint({"src/net/network.cc": code})
        self.assertEqual(findings, [])

    def test_bounded_for_loop_not_flagged(self):
        code = ("void F() {\n"
                "  for (int i = 0; i < 3; ++i) {\n"
                "    Retransmit();\n"
                "  }\n"
                "}\n")
        findings = run_lint({"src/net/network.cc": code})
        self.assertEqual(findings, [])

    def test_budget_in_other_function_does_not_count(self):
        code = ("void G() {\n"
                "  if (n > retry_budget) return;\n"
                "}\n"
                "void F() {\n"
                "  while (true) {\n"
                "    Retransmit();\n"
                "  }\n"
                "}\n")
        findings = run_lint({"src/net/network.cc": code})
        self.assertEqual(rules(findings), ["unbounded-retry"])
        self.assertEqual(findings[0].line, 5)

    def test_tests_and_tools_exempt(self):
        code = "while (true) { Retransmit(); }\n"
        findings = run_lint({"tests/x_test.cc": code,
                             "tools/cli.cc": code})
        self.assertEqual(findings, [])

    def test_ignores_commented_retry(self):
        code = ("void F() {\n"
                "  while (true) {\n"
                "    // no retransmit here, just polling\n"
                "    Step();\n"
                "  }\n"
                "}\n")
        findings = run_lint({"src/net/network.cc": code})
        self.assertEqual(findings, [])


class ExpectedGuardTest(unittest.TestCase):
    def test_mapping(self):
        self.assertEqual(pivot_lint.expected_guard("src/net/network.h"),
                         "PIVOT_NET_NETWORK_H_")
        self.assertEqual(pivot_lint.expected_guard("src/common/op_counters.h"),
                         "PIVOT_COMMON_OP_COUNTERS_H_")

    def test_mapping_outside_src_keeps_prefix(self):
        self.assertEqual(pivot_lint.expected_guard("bench/bench_util.h"),
                         "PIVOT_BENCH_BENCH_UTIL_H_")
        self.assertEqual(pivot_lint.expected_guard("tools/arg_parse.h"),
                         "PIVOT_TOOLS_ARG_PARSE_H_")


class ToolsAndBenchCoverageTest(unittest.TestCase):
    """tools/ and bench/ are linted for guards and unchecked .value()."""

    def test_bench_header_needs_canonical_guard(self):
        good = ("#ifndef PIVOT_BENCH_BENCH_UTIL_H_\n"
                "#define PIVOT_BENCH_BENCH_UTIL_H_\n"
                "#endif\n")
        self.assertEqual(run_lint({"bench/bench_util.h": good}), [])
        bad = good.replace("PIVOT_BENCH_BENCH_UTIL_H_", "BENCH_UTIL_H")
        findings = run_lint({"bench/bench_util.h": bad})
        self.assertEqual(rules(findings), ["include-guard"])

    def test_tools_header_missing_guard_flagged(self):
        findings = run_lint({"tools/helper.h": "namespace pivot {}\n"})
        self.assertEqual(rules(findings), ["include-guard"])

    def test_unchecked_value_in_tools_flagged(self):
        findings = run_lint(
            {"tools/cli.cc": "int n = data.value().num_samples();\n"})
        self.assertEqual(rules(findings), ["unchecked-value"])

    def test_checked_value_in_bench_allowed(self):
        findings = run_lint(
            {"bench/bench_x.cc": "if (!r.ok()) std::exit(1);\n"
                                 "double s = r.value().seconds;\n"})
        self.assertEqual(findings, [])

    def test_examples_remain_exempt(self):
        findings = run_lint(
            {"examples/demo.cc": "int n = data.value().num_samples();\n"})
        self.assertEqual(findings, [])


class RawSocketTest(unittest.TestCase):
    def test_flags_socket_header_include(self):
        findings = run_lint(
            {"src/pivot/runner.cc": "#include <sys/socket.h>\n"})
        self.assertEqual(rules(findings), ["raw-socket"])

    def test_flags_netinet_and_unix_headers(self):
        findings = run_lint(
            {"src/serve/session.cc": "#include <netinet/in.h>\n",
             "tools/pivot_cli.cc": "#include <sys/un.h>\n"})
        self.assertEqual(rules(findings), ["raw-socket"])
        self.assertEqual(len(findings), 2)

    def test_flags_socket_call(self):
        findings = run_lint(
            {"src/pivot/runner.cc":
             "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"})
        self.assertEqual(rules(findings), ["raw-socket"])

    def test_flags_qualified_send_recv(self):
        findings = run_lint(
            {"tools/pivot_cli.cc": "::send(fd, buf, n, 0);\n"
                                   "::recv(fd, buf, n, 0);\n"})
        self.assertEqual(rules(findings), ["raw-socket"])
        self.assertEqual(len(findings), 2)

    def test_flags_sockaddr_types(self):
        findings = run_lint(
            {"bench/bench_net.cc": "sockaddr_in addr{};\n"})
        self.assertEqual(rules(findings), ["raw-socket"])

    def test_allows_net_layer_home(self):
        code = ("#include <sys/socket.h>\n"
                "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n"
                "sockaddr_in sin{};\n")
        findings = run_lint({"src/net/socket.cc": code})
        self.assertEqual(findings, [])

    def test_endpoint_methods_not_flagged(self):
        code = ("st = ep.Send(1, msg);\n"
                "r = ep->Recv(0);\n"
                "net.endpoint().Send(2, bytes);\n")
        findings = run_lint({"src/pivot/runner.cc": code})
        self.assertEqual(findings, [])

    def test_identifiers_containing_socket_not_flagged(self):
        code = ("SocketNetwork net(0, 2);\n"
                "websocket_config cfg;\n"
                "Status OpenSocket(int x);\n")
        findings = run_lint({"src/pivot/runner.cc": code})
        self.assertEqual(findings, [])

    def test_tests_exempt(self):
        findings = run_lint(
            {"tests/socket_test.cc": "#include <sys/socket.h>\n"})
        self.assertEqual(findings, [])

    def test_ignores_comments(self):
        findings = run_lint(
            {"src/pivot/runner.cc": "// dials via socket(2) internally\n"})
        self.assertEqual(findings, [])


class RawProcessTest(unittest.TestCase):
    def test_flags_fork_and_exec(self):
        findings = run_lint(
            {"src/pivot/runner.cc": "pid_t pid = fork();\n"
                                    "execv(argv[0], argv.data());\n"})
        self.assertEqual(rules(findings), ["raw-process"])
        self.assertEqual(len(findings), 2)

    def test_flags_qualified_kill_and_waitpid(self):
        findings = run_lint(
            {"tools/pivot_cli.cc": "::kill(pid, SIGTERM);\n"
                                   "::waitpid(-1, &st, WNOHANG);\n"})
        self.assertEqual(rules(findings), ["raw-process"])
        self.assertEqual(len(findings), 2)

    def test_flags_system_and_popen(self):
        findings = run_lint(
            {"bench/bench_x.cc": 'system("rm -rf scratch");\n'
                                 'FILE* f = popen("ls", "r");\n'})
        self.assertEqual(rules(findings), ["raw-process"])
        self.assertEqual(len(findings), 2)

    def test_allows_orchestrator_home(self):
        code = ("const pid_t pid = ::fork();\n"
                "::execv(argv[0], argv.data());\n"
                "::kill(pid, SIGKILL);\n"
                "::waitpid(-1, &wstatus, WNOHANG);\n")
        findings = run_lint({"src/orchestrator/process.cc": code})
        self.assertEqual(findings, [])

    def test_lookalike_identifiers_not_flagged(self):
        code = ("cv.wait_for(lock, 20ms);\n"
                "slot.kill_sent = true;\n"
                "callbacks.force_kill(party, pid, reason);\n"
                'log("SIGKILL delivered");\n'
                "int ecosystem(int x);\n")
        findings = run_lint({"src/pivot/runner.cc": code})
        self.assertEqual(findings, [])

    def test_tests_and_comments_exempt(self):
        findings = run_lint(
            {"tests/chaos_test.cc": "::kill(victim, SIGKILL);\n",
             "src/pivot/runner.cc": "// the orchestrator calls kill(2)\n"})
        self.assertEqual(findings, [])


if __name__ == "__main__":
    unittest.main()
