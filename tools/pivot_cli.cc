// pivot_cli — train and score Pivot models on CSV data from the command
// line, simulating the m-party federation in one process.
//
//   pivot_cli train --data train.csv [--task classification|regression]
//             [--classes C] [--parties M] [--depth H] [--splits B]
//             [--protocol basic|enhanced] [--key-bits K] --out PREFIX
//       Trains one Pivot decision tree; writes PREFIX.party<i>.bin (each
//       party's model view) and prints the training summary.
//
//   pivot_cli predict --data test.csv --model PREFIX [--parties M]
//       Loads every party's view and runs the federated prediction
//       protocol per row; prints predictions (and accuracy/MSE when the
//       CSV's label column is present).
//
//   pivot_cli serve --data requests.csv --model PREFIX [--parties M]
//             [--batch-size B] [--max-wait MS] [--repeat R] [--prewarm 0|1]
//       Sustained-traffic mode: pins the model in a per-party
//       ServingSession (warm prediction cache + pre-warmed encryption-
//       randomness pool), streams the CSV rows through per-party request
//       queues, and serves them in coalesced batches — one batched
//       protocol sweep per batch. Prints throughput/latency stats and the
//       cost report instead of per-row predictions.
//
//   pivot_cli party --party-id I --peers addr0,addr1,... --data train.csv
//             --out PREFIX [--super S] [--checkpoint-dir DIR]
//             [--max-restarts R] [--control-fd N --go-fd N
//             [--go-timeout-ms MS]] [train flags]
//       Launches ONE party of a real multi-process federation over the
//       socket transport (net/socket.h). Addresses are "host:port" or
//       "unix:PATH", one per party in rank order; each process binds its
//       own entry and dials/accepts the rest. With --checkpoint-dir the
//       party persists its checkpoints, so a SIGKILL'd process can be
//       relaunched with the same command line and rejoin the federation,
//       resuming at the negotiated min-index for a bit-identical final
//       model. Writes only this party's view, PREFIX.party<I>.bin.
//       SIGTERM/SIGINT request a graceful shutdown: the mesh is aborted,
//       the persisted checkpoint store already holds the latest snapshot,
//       and the process exits with the distinct code 3 so a supervisor
//       can tell "asked to stop" from "crashed". Under the orchestrator,
//       --control-fd/--go-fd carry the readiness/liveness protocol: the
//       party writes HELLO/READY/ALIVE/BYE lines and blocks at the
//       readiness barrier until the orchestrator answers GO.
//
//   pivot_cli orchestrate --spec federation.spec [--workdir DIR]
//             [--faults SCHED | --chaos-seed N [--chaos-count K]
//             [--chaos-window-ms MS]] [--deadline-ms MS]
//       One-command federation: reads the spec (src/orchestrator/spec.h
//       documents the format), renders one `pivot_cli party` command per
//       party, spawns and supervises them (readiness barrier, health-
//       checked restarts with deterministic backoff, restart budgets,
//       SIGTERM-propagating teardown), optionally injects seeded
//       process-level chaos (SIGKILL/SIGSTOP/SIGCONT/SIGTERM), and
//       verifies + fingerprints the collected model views. Writes
//       report.json into the workdir. Exit codes: 0 success, 1 failure
//       (report names the root-cause party), 4 interrupted.
//
// CSV format: headerless numeric rows, last column = label.

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

#include "orchestrator/fault.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/process.h"
#include "orchestrator/spec.h"

#include "common/op_counters.h"
#include "data/dataset.h"
#include "pivot/prediction.h"
#include "pivot/runner.h"
#include "pivot/serialize.h"
#include "pivot/trainer.h"
#include "serve/serving_session.h"

using namespace pivot;

namespace {

// Exit code for "asked to stop and stopped cleanly" — distinct from 0
// (finished training) and 1 (failed), so the orchestrator can tell a
// graceful shutdown from a crash when aggregating exit codes.
constexpr int kGracefulShutdownExit = 3;

// Set by the SIGTERM/SIGINT handler; polled from the runner's supervisor
// tick (which aborts the mesh, waking blocked receives within a
// heartbeat) and from the party/orchestrator loops.
volatile std::sig_atomic_t g_shutdown = 0;

void HandleShutdownSignal(int /*signo*/) { g_shutdown = 1; }

// SA_RESTART keeps mid-syscall protocol reads intact: the handler only
// sets the flag, and the supervisor tick turns it into a mesh abort.
void InstallShutdownHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  // A peer (or the orchestrator) closing a pipe mid-write must surface
  // as an error return, not kill the process.
  signal(SIGPIPE, SIG_IGN);
}

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoi(it->second);
  }
};

Result<Args> ParseArgs(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      return Status::InvalidArgument(std::string("bad flag: ") + argv[i]);
    }
    args.flags[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pivot_cli train --data train.csv --out PREFIX\n"
               "            [--task classification|regression] [--classes C]\n"
               "            [--parties M] [--depth H] [--splits B]\n"
               "            [--protocol basic|enhanced] [--key-bits K]\n"
               "            [--crypto-threads T]\n"
               "  pivot_cli predict --data test.csv --model PREFIX "
               "[--parties M]\n"
               "  pivot_cli serve --data requests.csv --model PREFIX\n"
               "            [--parties M] [--batch-size B] [--max-wait MS]\n"
               "            [--repeat R] [--prewarm 0|1] "
               "[--crypto-threads T]\n"
               "  pivot_cli party --party-id I --peers addr0,addr1,...\n"
               "            --data train.csv --out PREFIX [--super S]\n"
               "            [--checkpoint-dir DIR] [--max-restarts R]\n"
               "            [--control-fd N --go-fd N [--go-timeout-ms MS]]\n"
               "            [train flags]\n"
               "  pivot_cli orchestrate --spec federation.spec\n"
               "            [--workdir DIR] [--deadline-ms MS]\n"
               "            [--faults SCHED | --chaos-seed N\n"
               "            [--chaos-count K] [--chaos-window-ms MS]]\n");
  return 2;
}

// Loads every party's serialized model view (PREFIX.party<i>.bin).
Result<std::vector<PivotTree>> LoadViews(const std::string& prefix, int m) {
  std::vector<PivotTree> views(m);
  for (int p = 0; p < m; ++p) {
    const std::string path = prefix + ".party" + std::to_string(p) + ".bin";
    PIVOT_ASSIGN_OR_RETURN(Bytes blob, LoadModelBytes(path));
    PIVOT_ASSIGN_OR_RETURN(views[p], DeserializePivotTree(blob));
  }
  return views;
}

int RunTrain(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string out_prefix = args.Get("out", "");
  if (data_path.empty() || out_prefix.empty()) return Usage();

  Result<Dataset> data = LoadCsv(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }

  FederationConfig cfg;
  cfg.num_parties = args.GetInt("parties", 3);
  const bool regression = args.Get("task", "classification") == "regression";
  cfg.params.tree.task =
      regression ? TreeTask::kRegression : TreeTask::kClassification;
  cfg.params.tree.num_classes =
      args.GetInt("classes", regression ? 2 : data.value().NumClasses());
  cfg.params.tree.max_depth = args.GetInt("depth", 4);
  cfg.params.tree.max_splits = args.GetInt("splits", 8);
  const bool enhanced = args.Get("protocol", "basic") == "enhanced";
  cfg.params.key_bits = args.GetInt("key-bits", enhanced ? 512 : 256);
  // Fan-out cap for the batched crypto kernels; results are bit-identical
  // for every value (see DESIGN.md, "Parallelism model").
  cfg.params.crypto_threads = args.GetInt("crypto-threads", 1);
  // Reliable-channel tunables (timeouts, retry budget, backoff) are
  // environment-overridable; see net/network.h.
  Result<NetConfig> net_cfg = NetConfig::FromEnv(cfg.net);
  if (!net_cfg.ok()) {
    std::fprintf(stderr, "error: %s\n", net_cfg.status().ToString().c_str());
    return 1;
  }
  cfg.net = net_cfg.value();

  std::printf("training a %s-protocol Pivot tree: %zu samples, %zu features, "
              "%d parties...\n",
              enhanced ? "enhanced" : "basic", data.value().num_samples(),
              data.value().num_features(), cfg.num_parties);

  std::mutex mu;
  int internal_nodes = 0;
  NetworkStats net_stats;
  const OpSnapshot ops_before = OpSnapshot::Take();
  Status st = RunFederation(data.value(), cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.protocol = enhanced ? Protocol::kEnhanced : Protocol::kBasic;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    const std::string path =
        out_prefix + ".party" + std::to_string(ctx.id()) + ".bin";
    PIVOT_RETURN_IF_ERROR(SaveModelBytes(SerializePivotTree(tree), path));
    if (ctx.id() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      internal_nodes = tree.NumInternalNodes();
    }
    return Status::Ok();
  }, &net_stats);
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("done: %d internal nodes; model views written to %s.party*."
              "bin\n", internal_nodes, out_prefix.c_str());
  std::printf("network cost: %.2f MB sent in %llu messages, ~%llu rounds\n",
              static_cast<double>(net_stats.bytes_sent) / 1e6,
              static_cast<unsigned long long>(net_stats.messages_sent),
              static_cast<unsigned long long>(net_stats.rounds));
  std::printf("reliability: %llu retransmits, %llu duplicates suppressed, "
              "%llu corrupt frames, %llu nacks\n",
              static_cast<unsigned long long>(net_stats.retransmits),
              static_cast<unsigned long long>(net_stats.duplicates_suppressed),
              static_cast<unsigned long long>(net_stats.corrupt_frames),
              static_cast<unsigned long long>(net_stats.nacks_sent));
  const OpSnapshot ops = OpSnapshot::Take().Delta(ops_before);
  if (ops.pool_tasks > 0 || ops.batch_calls > 0) {
    std::printf("crypto kernels: %llu batch calls, %llu pool tasks, "
                "randomness pool %llu hits / %llu misses\n",
                static_cast<unsigned long long>(ops.batch_calls),
                static_cast<unsigned long long>(ops.pool_tasks),
                static_cast<unsigned long long>(ops.enc_pool_hits),
                static_cast<unsigned long long>(ops.enc_pool_misses));
  }
  if (ops.ckpt_writes > 0 || ops.ckpt_restores > 0) {
    std::printf("checkpointing: %llu writes (%llu us), %llu restores "
                "(%llu us)\n",
                static_cast<unsigned long long>(ops.ckpt_writes),
                static_cast<unsigned long long>(ops.ckpt_write_us),
                static_cast<unsigned long long>(ops.ckpt_restores),
                static_cast<unsigned long long>(ops.ckpt_restore_us));
  }
  return 0;
}

// One party process of a multi-process federation (socket transport).
int RunParty(const Args& args) {
  InstallShutdownHandlers();
  const std::string data_path = args.Get("data", "");
  const std::string out_prefix = args.Get("out", "");
  const std::string peers = args.Get("peers", "");
  if (data_path.empty() || out_prefix.empty() || peers.empty() ||
      args.flags.find("party-id") == args.flags.end()) {
    return Usage();
  }
  // Orchestrator control protocol (both fds inherited from the spawning
  // orchestrator; -1 = standalone party, no protocol).
  const int control_fd = args.GetInt("control-fd", -1);
  const int go_fd = args.GetInt("go-fd", -1);
  const int go_timeout_ms = args.GetInt("go-timeout-ms", 120'000);

  PartyConfig cfg;
  cfg.party_id = args.GetInt("party-id", 0);
  for (size_t start = 0; start <= peers.size();) {
    size_t comma = peers.find(',', start);
    if (comma == std::string::npos) comma = peers.size();
    cfg.addresses.push_back(peers.substr(start, comma - start));
    start = comma + 1;
  }
  const int m = static_cast<int>(cfg.addresses.size());
  if (cfg.party_id < 0 || cfg.party_id >= m) {
    std::fprintf(stderr, "error: --party-id %d out of range for %d peers\n",
                 cfg.party_id, m);
    return 1;
  }
  cfg.super_client = args.GetInt("super", 0);
  cfg.checkpoint_dir = args.Get("checkpoint-dir", "");
  cfg.max_restarts = args.GetInt("max-restarts", 5);

  Result<Dataset> data = LoadCsv(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }

  const bool regression = args.Get("task", "classification") == "regression";
  cfg.params.tree.task =
      regression ? TreeTask::kRegression : TreeTask::kClassification;
  cfg.params.tree.num_classes =
      args.GetInt("classes", regression ? 2 : data.value().NumClasses());
  cfg.params.tree.max_depth = args.GetInt("depth", 4);
  cfg.params.tree.max_splits = args.GetInt("splits", 8);
  const bool enhanced = args.Get("protocol", "basic") == "enhanced";
  cfg.params.key_bits = args.GetInt("key-bits", enhanced ? 512 : 256);
  cfg.params.crypto_threads = args.GetInt("crypto-threads", 1);
  Result<NetConfig> net_cfg = NetConfig::FromEnv(cfg.net);
  if (!net_cfg.ok()) {
    std::fprintf(stderr, "error: %s\n", net_cfg.status().ToString().c_str());
    return 1;
  }
  cfg.net = net_cfg.value();

  if (control_fd >= 0) {
    (void)orch::WriteAll(control_fd, "HELLO pid=" +
                                         std::to_string(::getpid()) + "\n");
    // Liveness export: one ALIVE per supervisor tick feeds the
    // orchestrator's stall detector (a SIGSTOPped party goes mute and
    // gets force-killed into the crash-resume path).
    cfg.on_alive = [control_fd]() {
      (void)orch::WriteAll(control_fd, "ALIVE\n");
    };
    // Readiness barrier: announce the mesh is up, then hold all protocol
    // traffic until the orchestrator's GO. The nonce (pid.attempt) makes
    // a stale GO addressed to a previous incarnation or attempt
    // unmistakable — it is simply skipped.
    cfg.on_mesh_ready = [control_fd, go_fd, go_timeout_ms](
                            int attempt,
                            const std::function<bool()>& aborted) -> Status {
      const std::string nonce = std::to_string(::getpid()) + "." +
                                std::to_string(attempt);
      std::fprintf(stderr, "party: mesh up, READY nonce=%s\n", nonce.c_str());
      PIVOT_RETURN_IF_ERROR(
          orch::WriteAll(control_fd, "READY nonce=" + nonce + "\n"));
      if (go_fd < 0) return Status::Ok();
      const std::string want = "GO " + nonce;
      std::string buf;
      const int64_t barrier_deadline = orch::SteadyClockMs() + go_timeout_ms;
      while (orch::SteadyClockMs() < barrier_deadline) {
        if (g_shutdown != 0) {
          return Status::Aborted("shutdown requested at the barrier");
        }
        if (aborted()) {
          // A peer died while we waited; fail the attempt now so the
          // rebuilt mesh can re-enter the barrier, instead of burning
          // the whole GO deadline against a half-up federation.
          return Status::Aborted("mesh aborted at the readiness barrier");
        }
        buf += orch::ReadAvailable(go_fd);
        size_t start = 0;
        size_t nl;
        while ((nl = buf.find('\n', start)) != std::string::npos) {
          if (buf.compare(start, nl - start, want) == 0) {
            std::fprintf(stderr, "party: GO received for nonce=%s\n",
                         nonce.c_str());
            return Status::Ok();
          }
          start = nl + 1;  // stale GO for an earlier incarnation: skip
        }
        buf.erase(0, start);
        orch::SleepMs(20);
      }
      return Status::ProtocolError(
          "no GO from the orchestrator within " +
          std::to_string(go_timeout_ms) + " ms at the readiness barrier");
    };
  }
  cfg.shutdown_requested = []() { return g_shutdown != 0; };

  // Every process loads the full dataset and partitions deterministically;
  // the result matches the in-process harness bit for bit.
  VerticalPartition partition = PartitionVertically(data.value(), m);

  std::fprintf(stderr,
               "party %d/%d (%s, super=%d): training a %s-protocol Pivot "
               "tree over sockets...\n",
               cfg.party_id, m, cfg.addresses[cfg.party_id].c_str(),
               cfg.super_client, enhanced ? "enhanced" : "basic");

  NetworkStats net_stats;
  Status st = RunPartyFederation(
      partition, cfg,
      [&](PartyContext& ctx) -> Status {
        TrainTreeOptions opts;
        opts.protocol = enhanced ? Protocol::kEnhanced : Protocol::kBasic;
        PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
        const std::string path =
            out_prefix + ".party" + std::to_string(ctx.id()) + ".bin";
        return SaveModelBytes(SerializePivotTree(tree), path);
      },
      &net_stats);
  const int exit_code =
      st.ok() ? 0 : (g_shutdown != 0 ? kGracefulShutdownExit : 1);
  if (control_fd >= 0) {
    (void)orch::WriteAll(control_fd,
                         "BYE code=" + std::to_string(exit_code) + "\n");
  }
  if (exit_code == kGracefulShutdownExit) {
    // The persistent checkpoint store mirrors every snapshot to disk as
    // it is taken (pivot/checkpoint.h), so the latest state is already
    // flushed; a relaunch resumes from here bit-identically.
    std::fprintf(stderr,
                 "party %d: graceful shutdown (checkpoints persisted); "
                 "relaunch to resume\n",
                 cfg.party_id);
    return kGracefulShutdownExit;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "party %d failed: %s\n", cfg.party_id,
                 st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "party %d done: %.2f MB sent in %llu messages; "
               "%llu retransmits, %llu reconnects, %llu heartbeats\n",
               cfg.party_id,
               static_cast<double>(net_stats.bytes_sent) / 1e6,
               static_cast<unsigned long long>(net_stats.messages_sent),
               static_cast<unsigned long long>(net_stats.retransmits),
               static_cast<unsigned long long>(net_stats.reconnects),
               static_cast<unsigned long long>(net_stats.heartbeats));
  return 0;
}

int RunPredict(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string prefix = args.Get("model", "");
  if (data_path.empty() || prefix.empty()) return Usage();
  const int m = args.GetInt("parties", 3);

  Result<Dataset> data = LoadCsv(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }

  Result<std::vector<PivotTree>> views_or = LoadViews(prefix, m);
  if (!views_or.ok()) {
    std::fprintf(stderr, "error: %s\n", views_or.status().ToString().c_str());
    return 1;
  }
  std::vector<PivotTree> views = std::move(views_or).value();

  FederationConfig cfg;
  cfg.num_parties = m;
  cfg.params.tree.task = views[0].task;
  cfg.params.tree.num_classes = views[0].num_classes;
  cfg.params.key_bits =
      views[0].protocol == Protocol::kEnhanced ? 512 : 256;

  std::vector<double> predictions(data.value().num_samples(), 0.0);
  std::mutex mu;
  Status st = RunFederation(data.value(), cfg, [&](PartyContext& ctx) -> Status {
    auto rows = SliceRowsForParty(data.value(), ctx.id(), m);
    PIVOT_ASSIGN_OR_RETURN(std::vector<double> preds,
                           PredictPivotMany(ctx, views[ctx.id()], rows));
    if (ctx.id() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      predictions = std::move(preds);
    }
    return Status::Ok();
  });
  if (!st.ok()) {
    std::fprintf(stderr, "prediction failed: %s\n", st.ToString().c_str());
    return 1;
  }

  for (size_t i = 0; i < predictions.size(); ++i) {
    std::printf("%zu,%g\n", i, predictions[i]);
  }
  if (views[0].task == TreeTask::kRegression) {
    std::fprintf(stderr, "mse: %.6f\n",
                 MeanSquaredError(predictions, data.value().labels));
  } else {
    std::fprintf(stderr, "accuracy: %.4f\n",
                 Accuracy(predictions, data.value().labels));
  }
  return 0;
}

int RunServe(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string prefix = args.Get("model", "");
  if (data_path.empty() || prefix.empty()) return Usage();
  const int m = args.GetInt("parties", 3);
  const int repeat = std::max(1, args.GetInt("repeat", 1));

  Result<Dataset> data = LoadCsv(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<PivotTree>> views_or = LoadViews(prefix, m);
  if (!views_or.ok()) {
    std::fprintf(stderr, "error: %s\n", views_or.status().ToString().c_str());
    return 1;
  }
  std::vector<PivotTree> views = std::move(views_or).value();

  FederationConfig cfg;
  cfg.num_parties = m;
  cfg.params.tree.task = views[0].task;
  cfg.params.tree.num_classes = views[0].num_classes;
  cfg.params.key_bits = views[0].protocol == Protocol::kEnhanced ? 512 : 256;
  cfg.params.crypto_threads = args.GetInt("crypto-threads", 1);
  Result<NetConfig> net_cfg = NetConfig::FromEnv(cfg.net);
  if (!net_cfg.ok()) {
    std::fprintf(stderr, "error: %s\n", net_cfg.status().ToString().c_str());
    return 1;
  }
  cfg.net = net_cfg.value();

  serve::ServeOptions opts;
  opts.batch_size = std::min(4096, std::max(1, args.GetInt("batch-size", 16)));
  opts.max_wait_ms = std::max(0, args.GetInt("max-wait", 5));
  const uint64_t total_requests =
      static_cast<uint64_t>(data.value().num_samples()) * repeat;
  if (args.GetInt("prewarm", 1) != 0) {
    // One offline (r, r^n) pair per encrypted prediction-vector entry this
    // party will touch: requests x leaves.
    opts.prewarm_pairs =
        total_requests * static_cast<uint64_t>(views[0].NumLeaves());
  }

  std::printf("serving %llu requests (%zu rows x %d) with batch_size=%d, "
              "max_wait=%dms, prewarm_pairs=%llu...\n",
              static_cast<unsigned long long>(total_requests),
              data.value().num_samples(), repeat, opts.batch_size,
              opts.max_wait_ms,
              static_cast<unsigned long long>(opts.prewarm_pairs));

  std::vector<double> predictions;
  serve::ServingStats stats;
  std::mutex mu;
  NetworkStats net_stats;
  const OpSnapshot ops_before = OpSnapshot::Take();
  Status st = RunFederation(
      data.value(), cfg,
      [&](PartyContext& ctx) -> Status {
        serve::ServingSession session(ctx, views[ctx.id()], opts);
        // Warm the per-model caches and the randomness pool before any
        // request is enqueued, so latency measures serving, not setup.
        PIVOT_RETURN_IF_ERROR(session.Warmup());
        const auto rows = SliceRowsForParty(data.value(), ctx.id(), m);
        serve::RequestQueue queue;
        for (int r = 0; r < repeat; ++r) {
          for (const auto& row : rows) queue.Push(row);
        }
        queue.Close();
        std::vector<double> preds;
        PIVOT_ASSIGN_OR_RETURN(serve::ServingStats party_stats,
                               session.Serve(queue, &preds));
        if (ctx.id() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          predictions = std::move(preds);
          stats = party_stats;
        }
        return Status::Ok();
      },
      &net_stats);
  if (!st.ok()) {
    std::fprintf(stderr, "serving failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("served %llu requests in %llu batches: %.1f req/s, occupancy "
              "%.2f, max queue depth %llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              stats.requests_per_sec, stats.mean_occupancy,
              static_cast<unsigned long long>(stats.max_queue_depth));
  std::printf("latency: p50 %.2f ms, p99 %.2f ms, mean %.2f ms, max %.2f ms\n",
              stats.p50_ms, stats.p99_ms, stats.mean_ms, stats.max_ms);
  std::vector<double> labels;
  for (int r = 0; r < repeat; ++r) {
    labels.insert(labels.end(), data.value().labels.begin(),
                  data.value().labels.end());
  }
  if (!labels.empty() && predictions.size() == labels.size()) {
    if (views[0].task == TreeTask::kRegression) {
      std::printf("mse: %.6f\n", MeanSquaredError(predictions, labels));
    } else {
      std::printf("accuracy: %.4f\n", Accuracy(predictions, labels));
    }
  }
  std::printf("network cost: %.2f MB sent in %llu messages, ~%llu rounds\n",
              static_cast<double>(net_stats.bytes_sent) / 1e6,
              static_cast<unsigned long long>(net_stats.messages_sent),
              static_cast<unsigned long long>(net_stats.rounds));
  const OpSnapshot ops = OpSnapshot::Take().Delta(ops_before);
  std::printf("crypto kernels: %llu batch calls, %llu pool tasks, "
              "randomness pool %llu hits / %llu misses\n",
              static_cast<unsigned long long>(ops.batch_calls),
              static_cast<unsigned long long>(ops.pool_tasks),
              static_cast<unsigned long long>(ops.enc_pool_hits),
              static_cast<unsigned long long>(ops.enc_pool_misses));
  std::printf("serving counters: %llu requests / %llu batches\n",
              static_cast<unsigned long long>(ops.serve_requests),
              static_cast<unsigned long long>(ops.serve_batches));
  return 0;
}

// Resolves the running binary's own path so the orchestrator can spawn
// party processes of the exact same build; falls back to argv[0].
std::string SelfExe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return argv0 != nullptr ? std::string(argv0) : std::string("pivot_cli");
}

// One-command federation: spawn + supervise every party (see
// src/orchestrator/orchestrator.h).
int RunOrchestrate(const Args& args, const char* argv0) {
  InstallShutdownHandlers();
  const std::string spec_path = args.Get("spec", "");
  if (spec_path.empty()) return Usage();
  Result<orch::FederationSpec> spec = orch::LoadFederationSpec(spec_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    return 2;
  }

  orch::OrchestratorOptions options;
  options.spec = spec.value();
  std::string workdir = args.Get("workdir", "");
  if (workdir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    workdir = std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
              "/pivot_orch." + std::to_string(::getpid());
  }
  if (workdir.front() != '/') {
    char cwd[4096];
    if (::getcwd(cwd, sizeof(cwd)) != nullptr) {
      workdir = std::string(cwd) + "/" + workdir;
    }
  }
  options.workdir = workdir;
  options.cli =
      spec.value().cli.empty() ? SelfExe(argv0) : spec.value().cli;
  options.deadline_ms = args.GetInt("deadline-ms", 0);

  const std::string faults = args.Get("faults", "");
  if (!faults.empty()) {
    Result<orch::ProcFaultPlan> plan =
        orch::ProcFaultPlan::Parse(faults, spec.value().parties);
    if (!plan.ok()) {
      std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
      return 2;
    }
    options.faults = plan.value();
  } else if (args.flags.find("chaos-seed") != args.flags.end()) {
    const uint64_t seed =
        std::strtoull(args.Get("chaos-seed", "0").c_str(), nullptr, 10);
    options.faults = orch::ProcFaultPlan::FromSeed(
        seed, spec.value().parties, args.GetInt("chaos-window-ms", 8'000),
        args.GetInt("chaos-count", 3));
  }
  options.interrupted = []() { return g_shutdown != 0; };

  orch::Orchestrator orchestrator(std::move(options));
  Result<orch::OrchestratorReport> run = orchestrator.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const orch::OrchestratorReport& report = run.value();
  std::printf("federation %s in %lld ms (workdir %s)\n",
              report.ok ? "complete"
                        : (report.interrupted ? "interrupted" : "FAILED"),
              static_cast<long long>(report.wall_ms), workdir.c_str());
  for (const orch::PartyOutcome& p : report.parties) {
    std::printf("  party %d: %s, %d restart(s), last exit %d (%s)\n",
                p.party, p.phase.c_str(), p.restarts, p.last_exit_code,
                p.last_exit.empty() ? "never exited" : p.last_exit.c_str());
  }
  if (report.ok) {
    std::printf("model fingerprint: %s\n", report.model_fingerprint.c_str());
    std::printf("model views: %s/%s.party*.bin\n", workdir.c_str(),
                spec.value().out.c_str());
  } else {
    std::printf("root cause: %s\n", report.root_cause.c_str());
    if (report.root_cause_party >= 0) {
      std::printf("root-cause party: %d\n", report.root_cause_party);
    }
  }
  std::printf("report: %s\n", report.report_path.c_str());
  return report.ExitCode();
}

}  // namespace

int main(int argc, char** argv) {
  Result<Args> args = ParseArgs(argc, argv);
  if (!args.ok()) return Usage();
  if (args.value().command == "train") return RunTrain(args.value());
  if (args.value().command == "party") return RunParty(args.value());
  if (args.value().command == "predict") return RunPredict(args.value());
  if (args.value().command == "serve") return RunServe(args.value());
  if (args.value().command == "orchestrate") {
    return RunOrchestrate(args.value(), argv[0]);
  }
  return Usage();
}
