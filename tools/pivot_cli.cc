// pivot_cli — train and score Pivot models on CSV data from the command
// line, simulating the m-party federation in one process.
//
//   pivot_cli train --data train.csv [--task classification|regression]
//             [--classes C] [--parties M] [--depth H] [--splits B]
//             [--protocol basic|enhanced] [--key-bits K] --out PREFIX
//       Trains one Pivot decision tree; writes PREFIX.party<i>.bin (each
//       party's model view) and prints the training summary.
//
//   pivot_cli predict --data test.csv --model PREFIX [--parties M]
//       Loads every party's view and runs the federated prediction
//       protocol per row; prints predictions (and accuracy/MSE when the
//       CSV's label column is present).
//
// CSV format: headerless numeric rows, last column = label.

#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

#include "common/op_counters.h"
#include "data/dataset.h"
#include "pivot/prediction.h"
#include "pivot/runner.h"
#include "pivot/serialize.h"
#include "pivot/trainer.h"

using namespace pivot;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoi(it->second);
  }
};

Result<Args> ParseArgs(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      return Status::InvalidArgument(std::string("bad flag: ") + argv[i]);
    }
    args.flags[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pivot_cli train --data train.csv --out PREFIX\n"
               "            [--task classification|regression] [--classes C]\n"
               "            [--parties M] [--depth H] [--splits B]\n"
               "            [--protocol basic|enhanced] [--key-bits K]\n"
               "            [--crypto-threads T]\n"
               "  pivot_cli predict --data test.csv --model PREFIX "
               "[--parties M]\n");
  return 2;
}

int RunTrain(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string out_prefix = args.Get("out", "");
  if (data_path.empty() || out_prefix.empty()) return Usage();

  Result<Dataset> data = LoadCsv(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }

  FederationConfig cfg;
  cfg.num_parties = args.GetInt("parties", 3);
  const bool regression = args.Get("task", "classification") == "regression";
  cfg.params.tree.task =
      regression ? TreeTask::kRegression : TreeTask::kClassification;
  cfg.params.tree.num_classes =
      args.GetInt("classes", regression ? 2 : data.value().NumClasses());
  cfg.params.tree.max_depth = args.GetInt("depth", 4);
  cfg.params.tree.max_splits = args.GetInt("splits", 8);
  const bool enhanced = args.Get("protocol", "basic") == "enhanced";
  cfg.params.key_bits = args.GetInt("key-bits", enhanced ? 512 : 256);
  // Fan-out cap for the batched crypto kernels; results are bit-identical
  // for every value (see DESIGN.md, "Parallelism model").
  cfg.params.crypto_threads = args.GetInt("crypto-threads", 1);
  // Reliable-channel tunables (timeouts, retry budget, backoff) are
  // environment-overridable; see net/network.h.
  cfg.net = NetConfig::FromEnv(cfg.net);

  std::printf("training a %s-protocol Pivot tree: %zu samples, %zu features, "
              "%d parties...\n",
              enhanced ? "enhanced" : "basic", data.value().num_samples(),
              data.value().num_features(), cfg.num_parties);

  std::mutex mu;
  int internal_nodes = 0;
  NetworkStats net_stats;
  const OpSnapshot ops_before = OpSnapshot::Take();
  Status st = RunFederation(data.value(), cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.protocol = enhanced ? Protocol::kEnhanced : Protocol::kBasic;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));
    const std::string path =
        out_prefix + ".party" + std::to_string(ctx.id()) + ".bin";
    PIVOT_RETURN_IF_ERROR(SaveModelBytes(SerializePivotTree(tree), path));
    if (ctx.id() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      internal_nodes = tree.NumInternalNodes();
    }
    return Status::Ok();
  }, &net_stats);
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("done: %d internal nodes; model views written to %s.party*."
              "bin\n", internal_nodes, out_prefix.c_str());
  std::printf("network cost: %.2f MB sent in %llu messages, ~%llu rounds\n",
              static_cast<double>(net_stats.bytes_sent) / 1e6,
              static_cast<unsigned long long>(net_stats.messages_sent),
              static_cast<unsigned long long>(net_stats.rounds));
  std::printf("reliability: %llu retransmits, %llu duplicates suppressed, "
              "%llu corrupt frames, %llu nacks\n",
              static_cast<unsigned long long>(net_stats.retransmits),
              static_cast<unsigned long long>(net_stats.duplicates_suppressed),
              static_cast<unsigned long long>(net_stats.corrupt_frames),
              static_cast<unsigned long long>(net_stats.nacks_sent));
  const OpSnapshot ops = OpSnapshot::Take().Delta(ops_before);
  if (ops.pool_tasks > 0 || ops.batch_calls > 0) {
    std::printf("crypto kernels: %llu batch calls, %llu pool tasks, "
                "randomness pool %llu hits / %llu misses\n",
                static_cast<unsigned long long>(ops.batch_calls),
                static_cast<unsigned long long>(ops.pool_tasks),
                static_cast<unsigned long long>(ops.enc_pool_hits),
                static_cast<unsigned long long>(ops.enc_pool_misses));
  }
  if (ops.ckpt_writes > 0 || ops.ckpt_restores > 0) {
    std::printf("checkpointing: %llu writes (%llu us), %llu restores "
                "(%llu us)\n",
                static_cast<unsigned long long>(ops.ckpt_writes),
                static_cast<unsigned long long>(ops.ckpt_write_us),
                static_cast<unsigned long long>(ops.ckpt_restores),
                static_cast<unsigned long long>(ops.ckpt_restore_us));
  }
  return 0;
}

int RunPredict(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string prefix = args.Get("model", "");
  if (data_path.empty() || prefix.empty()) return Usage();
  const int m = args.GetInt("parties", 3);

  Result<Dataset> data = LoadCsv(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }

  // Load every party's model view.
  std::vector<PivotTree> views(m);
  for (int p = 0; p < m; ++p) {
    const std::string path = prefix + ".party" + std::to_string(p) + ".bin";
    Result<Bytes> blob = LoadModelBytes(path);
    if (!blob.ok()) {
      std::fprintf(stderr, "error: %s\n", blob.status().ToString().c_str());
      return 1;
    }
    Result<PivotTree> tree = DeserializePivotTree(blob.value());
    if (!tree.ok()) {
      std::fprintf(stderr, "error: %s\n", tree.status().ToString().c_str());
      return 1;
    }
    views[p] = std::move(tree).value();
  }

  FederationConfig cfg;
  cfg.num_parties = m;
  cfg.params.tree.task = views[0].task;
  cfg.params.tree.num_classes = views[0].num_classes;
  cfg.params.key_bits =
      views[0].protocol == Protocol::kEnhanced ? 512 : 256;

  std::vector<double> predictions(data.value().num_samples(), 0.0);
  std::mutex mu;
  Status st = RunFederation(data.value(), cfg, [&](PartyContext& ctx) -> Status {
    auto rows = SliceRowsForParty(data.value(), ctx.id(), m);
    PIVOT_ASSIGN_OR_RETURN(std::vector<double> preds,
                           PredictPivotMany(ctx, views[ctx.id()], rows));
    if (ctx.id() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      predictions = std::move(preds);
    }
    return Status::Ok();
  });
  if (!st.ok()) {
    std::fprintf(stderr, "prediction failed: %s\n", st.ToString().c_str());
    return 1;
  }

  for (size_t i = 0; i < predictions.size(); ++i) {
    std::printf("%zu,%g\n", i, predictions[i]);
  }
  if (views[0].task == TreeTask::kRegression) {
    std::fprintf(stderr, "mse: %.6f\n",
                 MeanSquaredError(predictions, data.value().labels));
  } else {
    std::fprintf(stderr, "accuracy: %.4f\n",
                 Accuracy(predictions, data.value().labels));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Result<Args> args = ParseArgs(argc, argv);
  if (!args.ok()) return Usage();
  if (args.value().command == "train") return RunTrain(args.value());
  if (args.value().command == "predict") return RunPredict(args.value());
  return Usage();
}
