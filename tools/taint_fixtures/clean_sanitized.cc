// Taint-analyzer fixture: must produce ZERO findings — every secret flow
// below passes through a sanctioned sanitizer or a valid suppression.
// Not compiled — scanned by tools/pivot_taint_test.py.
#include <cstdio>

#include "net/channel.h"

namespace pivot {

Status SanitizedFlows(Endpoint* endpoint, const PaillierPublicKey& pk,
                      Rng& rng) {
  BigInt value(7);  // pivot:secret
  // Encryption declassifies: ciphertexts may leave the party.
  Ciphertext c = pk.Encrypt(value, rng);
  PIVOT_RETURN_IF_ERROR(endpoint->Send(1, EncodeBigInt(c.value)));
  // Lengths are public even when contents are secret.
  Bytes shares;  // pivot:secret
  std::printf("sent %zu share bytes\n", shares.size());
  // A suppression with a reason is honored.
  // pivot-taint: allow(secret-print) fixture: documents the suppression
  // format; a real site must justify why the flow is safe.
  std::printf("%d\n", static_cast<int>(shares[0]));
  return Status::Ok();
}

}  // namespace pivot
