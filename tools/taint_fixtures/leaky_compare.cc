// Taint-analyzer fixture: must trip exactly one [taint:non-ct-compare].
// Not compiled — scanned by tools/pivot_taint_test.py.
#include <cstring>

namespace pivot {

bool MacBytesMatch(const unsigned char* theirs, int len) {
  unsigned char mac_bytes[32];  // pivot:secret
  return std::memcmp(mac_bytes, theirs, len) == 0;
}

}  // namespace pivot
