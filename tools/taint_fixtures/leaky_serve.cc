// Taint-analyzer fixture: must trip exactly one [taint:secret-print].
// Not compiled — scanned by tools/pivot_taint_test.py.
//
// Serving surface: a decrypted prediction batch is the querying party's
// private output. Debug-logging an entry — even "just the first one" —
// leaks what the protocol computed under encryption.
#include <cstdio>

namespace pivot {

void DebugLogBatch(ServingSession& session, const Rows& rows) {
  std::vector<double> preds = PredictBatch(session, rows);
  std::printf("served batch, first prediction = %f\n", preds[0]);
}

}  // namespace pivot
