// Taint-analyzer fixture: must trip exactly one [taint:secret-print].
// Not compiled — scanned by tools/pivot_taint_test.py.
#include <cstdio>

namespace pivot {

void DebugDumpKey() {
  unsigned long long lambda_bits = 0;  // pivot:secret
  std::printf("key material: %llu\n", lambda_bits);
}

}  // namespace pivot
