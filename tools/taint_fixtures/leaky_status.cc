// Taint-analyzer fixture: must trip exactly one [taint:status-leak].
// Not compiled — scanned by tools/pivot_taint_test.py.
#include "common/status.h"

namespace pivot {

Status ReportBadShare() {
  u128 share = 0;  // pivot:secret
  return Status::ProtocolError("bad share value: " + std::to_string(
      static_cast<unsigned long long>(share)));
}

}  // namespace pivot
