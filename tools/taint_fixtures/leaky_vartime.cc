// Taint-analyzer fixture: must trip exactly one [taint:variable-time-call].
// Not compiled — scanned by tools/pivot_taint_test.py.
#include "bigint/bigint.h"

namespace pivot {

BigInt RaiseToSecret(const BigInt& base, const BigInt& modulus) {
  BigInt exponent(12345);  // pivot:secret
  return base.ModExp(exponent, modulus);
}

}  // namespace pivot
