// Taint-analyzer fixture: must trip exactly one [taint:bad-suppression] —
// the allow() below matches the rule but carries no reason.
// Not compiled — scanned by tools/pivot_taint_test.py.
#include <cstdio>

namespace pivot {

void DumpWithEmptyExcuse() {
  unsigned long long seed_state = 0;  // pivot:secret
  // pivot-taint: allow(secret-print)
  std::printf("%llu\n", seed_state);
}

}  // namespace pivot
