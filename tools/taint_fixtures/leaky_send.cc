// Taint-analyzer fixture: must trip exactly one [taint:raw-send].
// Not compiled — scanned by tools/pivot_taint_test.py.
#include "net/channel.h"

namespace pivot {

Status LeakLabelsToPeer(Endpoint* endpoint) {
  Bytes label_bytes;  // pivot:secret
  return endpoint->Send(1, label_bytes);
}

}  // namespace pivot
