// Taint-analyzer fixture: must trip exactly one [taint:secret-branch].
// Not compiled — scanned by tools/pivot_taint_test.py.

namespace pivot {

int CountLabelOnes(const int* labels_raw, int n) {
  int count = 0;
  for (int i = 0; i < n; ++i) {
    int label = labels_raw[i];  // pivot:secret
    if (label > 0) {
      ++count;
    }
  }
  return count;
}

}  // namespace pivot
