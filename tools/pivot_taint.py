#!/usr/bin/env python3
"""pivot_taint: secret-flow taint analysis over the C++ sources.

Pivot's privacy claim (PAPER.md sections 4-5) is that secret material —
threshold-Paillier key shares, MPC secret shares and MAC keys, the super
client's label vector, and Rng seed state — never leaves a party except as
ciphertext or as protocol-published shares. pivot_lint.py checks syntactic
invariants; this tool tracks *dataflow*: it taints secret values at their
declarations and reports when tainted data reaches an observable sink.

Sources (where taint enters)
  * the annotation registry tools/taint_model.json:
      - secret_fields   : struct/class members holding secret material
      - secret_params   : (function, parameter) pairs that receive secrets
      - secret_types    : declaring a local of such a type taints it
      - secret_returns  : calls whose result is secret
  * inline `// pivot:secret` markers on a field or local declaration line
  * a generated summary pass: a function whose return expression is
    tainted propagates taint to its callers' results (one level of call
    propagation — summaries are not themselves re-summarized).

Sinks (rules; each finding names one)
  status-leak         tainted expression interpolated into a Status message
  secret-print        tainted expression printed (cerr/printf/CHECK text)
  raw-send            Endpoint Send/Broadcast of a buffer built from
                      tainted data that was not encrypted first
  secret-branch       if/while/for/switch/ternary condition on tainted data
                      (secret-dependent control flow = timing channel)
  non-ct-compare      ==, !=, memcmp or strcmp on tainted operands; use
                      common/ct.h (CtEqual / EqualU128 / AllZeroU128)
  variable-time-call  tainted argument to a declared variable-time callee
                      (ModExp, Gcd, ...) — runtime depends on secret value

Sanitizers (where taint is laundered, from the registry)
  * encryption (Encrypt*, Rerandomize*): output is ciphertext
  * hashing (Sha256 Finish): output is a digest
  * protocol declassification (Open/OpenVec/JointDecrypt): opened values
    are public by protocol definition
  * share splitting (ShareOf*): output is an additive share

Suppressions
  A true-by-the-rules but protocol-sanctioned flow is silenced with
      // pivot-taint: allow(<rule>) <reason>
  on the finding line or the line directly above. The reason is mandatory
  and must be non-empty: a suppression without a written justification is
  itself reported (bad-suppression) and fails the run.

Usage:
  tools/pivot_taint.py [ROOT]              analyze src/ under ROOT
  tools/pivot_taint.py ROOT --files F...   analyze specific files only
  tools/pivot_taint.py ROOT --summaries    also print generated summaries
  tools/pivot_taint.py ROOT --list-suppressions
                                           list every active suppression

Exit status: 0 if clean, 1 if any finding, 2 on usage error.
See DESIGN.md, "Leakage model".
"""

import argparse
import json
import os
import re
import sys

CXX_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")
SKIP_DIR_NAMES = {".git", "bench_results", "third_party", "__pycache__"}
SKIP_DIR_PREFIXES = ("build",)

RULES = (
    "status-leak",
    "secret-print",
    "raw-send",
    "secret-branch",
    "non-ct-compare",
    "variable-time-call",
)

RE_SUPPRESS = re.compile(
    r"//\s*pivot-taint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)\s*(.*?)\s*$")
RE_MARKER = re.compile(r"//\s*pivot:secret\b")
RE_IDENT = re.compile(r"[A-Za-z_]\w*")
RE_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "new",
    "delete", "do", "else", "case", "default", "break", "continue",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "alignof", "decltype", "noexcept", "throw", "static_assert",
}
MUTATOR_METHODS = {
    "push_back", "emplace_back", "insert", "assign", "append",
    "Update", "WriteBytes", "WriteRaw", "WriteU8", "WriteU32", "WriteU64",
    "WriteI64", "WriteDouble", "WriteString",
}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [taint:{self.rule}] {self.message}"


class Model:
    def __init__(self, doc):
        self.secret_fields = set(doc.get("secret_fields", []))
        self.secret_types = set(doc.get("secret_types", []))
        self.secret_returns = set(doc.get("secret_returns", []))
        # {"Func": ["param", ...]} — keys match the unqualified name.
        self.secret_params = {
            k: set(v) for k, v in doc.get("secret_params", {}).items()}
        # Member names that are public metadata even on tainted objects
        # (task kind, class counts, party ids): reading them does not
        # propagate taint.
        self.public_fields = set(doc.get("public_fields", []))
        self.sanitizers = set(doc.get("sanitizers", []))
        # {"Name": [positions]} — which operand's *value* drives the
        # callee's runtime: 0.. = argument index, -1 = method receiver.
        # (PowModN2(base, exp) is variable-time in the exponent, not the
        # base; flagging every operand would drown real findings.)
        self.variable_time = {
            k: list(v) for k, v in doc.get("variable_time", {}).items()}
        self.exempt_functions = set(doc.get("exempt_functions", []))
        self.exempt_files = set(doc.get("exempt_files", []))


def load_model(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return Model(doc)


# ---------------------------------------------------------------------------
# Lexical preprocessing
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving offsets."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def find_balanced(text, open_idx, open_ch="(", close_ch=")"):
    """Index just past the parenthesis group opening at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def split_top_level(text, sep=","):
    """Splits on `sep` at paren/bracket/brace/angle depth 0."""
    parts, depth, cur = [], 0, []
    for c in text:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def remove_calls(text, names):
    """Removes `obj.Name(...)` / `ns::Name(...)` call expressions for every
    name in `names`, so their (sanitized) results do not count as tainted."""
    if not names:
        return text
    pat = re.compile(
        r"(?:[A-Za-z_]\w*(?:::|\.|->))*(" +
        "|".join(re.escape(n) for n in sorted(names)) + r")\s*\(")
    while True:
        m = pat.search(text)
        if m is None:
            return text
        end = find_balanced(text, text.index("(", m.end() - 1))
        if end < 0:
            return text[:m.start()]
        text = text[:m.start()] + " " + text[end:]


# ---------------------------------------------------------------------------
# Function extraction
# ---------------------------------------------------------------------------

RE_FUNC_NAME = re.compile(r"(?:[A-Za-z_]\w*::)*(~?[A-Za-z_]\w*)\s*$")


class Function:
    def __init__(self, name, params_text, body_start, body_end, start_line):
        self.name = name
        self.params_text = params_text
        self.body_start = body_start  # offset just past '{'
        self.body_end = body_end      # offset of matching '}'
        self.start_line = start_line


def extract_functions(code):
    """Finds function definitions (best-effort, brace/paren matched)."""
    funcs = []
    i, n = 0, len(code)
    last_end = -1
    while i < n:
        op = code.find("(", i)
        if op < 0:
            break
        if op < last_end:  # inside a previously-recorded body
            i = op + 1
            continue
        name_m = RE_FUNC_NAME.search(code, 0, op)
        if not name_m or name_m.group(1) in CPP_KEYWORDS:
            i = op + 1
            continue
        close = find_balanced(code, op)
        if close < 0:
            break
        # Between ')' and '{': qualifiers, ctor-init list, trailing return.
        j = close
        depth = 0
        ok = False
        while j < n:
            c = code[j]
            if c in "([":
                depth += 1
            elif c in ")]":
                depth -= 1
            elif depth == 0:
                if c == "{":
                    ok = True
                    break
                if c in ";=}" or (c == "," and ":" not in code[close:j]):
                    break
            j += 1
        if not ok:
            i = op + 1
            continue
        body_end = find_balanced(code, j, "{", "}")
        if body_end < 0:
            break
        funcs.append(Function(
            name=name_m.group(1),
            params_text=code[op + 1:close - 1],
            body_start=j + 1,
            body_end=body_end - 1,
            start_line=code.count("\n", 0, j) + 1))
        last_end = body_end
        i = j + 1
    return funcs


def param_names(params_text):
    """Parameter names from a parameter-list string."""
    names = []
    for part in split_top_level(params_text):
        part = part.strip()
        if not part or part == "void":
            continue
        part = re.sub(r"=\s*[^,]*$", "", part).strip()  # default args
        m = re.search(r"([A-Za-z_]\w*)\s*(?:\[\s*\])?\s*$", part)
        if m and m.group(1) not in CPP_KEYWORDS:
            names.append(m.group(1))
    return names


def marker_decl_name(raw_line):
    """Declared name on a `// pivot:secret` declaration line.

    Cuts the initializer (`= ...`, `(...)`, `{...}`) and array extents,
    then takes the last identifier of the declarator — so qualified types
    (`std::string line`) yield the variable, not a namespace token.
    """
    text = strip_comments_and_strings(raw_line).strip().rstrip(";{,")
    for cut in (r"=[^=]", r"\(", r"\{", r"\["):
        m = re.search(cut, text)
        if m:
            text = text[:m.start()]
    idents = re.findall(r"[A-Za-z_]\w*", text)
    for name in reversed(idents):
        if name not in CPP_KEYWORDS:
            return name
    return None


# ---------------------------------------------------------------------------
# Statement iteration
# ---------------------------------------------------------------------------

def iter_statements(code, start, end, base_line):
    """Yields (line_no, statement_text) splitting on ; { } at paren depth 0."""
    depth = 0
    line = base_line
    stmt_start_line = base_line
    cur = []
    for i in range(start, end):
        c = code[i]
        if c == "\n":
            line += 1
        if c in "([":
            depth += 1
        elif c in ")]":
            depth = max(0, depth - 1)
        if depth == 0 and c in ";{}":
            text = "".join(cur).strip()
            if text:
                yield (stmt_start_line, text)
            cur = []
            stmt_start_line = line
            continue
        if not cur:
            if c.isspace():
                continue  # don't buffer leading whitespace: the statement's
            stmt_start_line = line  # line is that of its first real char
        cur.append(c)
    text = "".join(cur).strip()
    if text:
        yield (stmt_start_line, text)


# ---------------------------------------------------------------------------
# Taint analysis
# ---------------------------------------------------------------------------

RE_ASSIGN_OP = re.compile(r"(?<![=!<>+\-*/%&|^])=(?!=)|\+=|-=|\|=|&=|\^=")
RE_LHS_BASE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:(?:\[[^\]]*\])|(?:\.[A-Za-z_]\w*)|"
    r"(?:->[A-Za-z_]\w*))*\s*$")


def lhs_base_identifier(lhs_text):
    m = RE_LHS_BASE.search(lhs_text.strip())
    if m and m.group(1) not in CPP_KEYWORDS:
        return m.group(1)
    return None


class FileAnalysis:
    def __init__(self, rel, raw_text, model, summaries, in_ct_header=False):
        self.rel = rel
        self.raw_lines = raw_text.splitlines()
        self.code = strip_comments_and_strings(raw_text)
        self.model = model
        self.summaries = summaries
        self.in_ct_header = in_ct_header or rel.endswith("common/ct.h")
        self.findings = []
        self.suppressed = []  # (line, rule, reason)
        self._public_field_re = None
        self.markers = self._collect_markers()
        self.suppressions = self._collect_suppressions()
        self.functions = extract_functions(self.code)
        self.file_secret_fields = self._marker_fields()
        self.tainted_returns = set()
        self.clean_returns = set()

    # -- annotations ------------------------------------------------------

    def _collect_markers(self):
        out = set()
        for i, line in enumerate(self.raw_lines, 1):
            if RE_MARKER.search(line):
                out.add(i)
        return out

    def _collect_suppressions(self):
        out = {}
        for i, line in enumerate(self.raw_lines, 1):
            m = RE_SUPPRESS.search(line)
            if m:
                out[i] = (m.group(1), m.group(2))
        return out

    def _line_in_function(self, lineno):
        for f in self.functions:
            start = self.code.count("\n", 0, f.body_start) + 1
            end = self.code.count("\n", 0, f.body_end) + 1
            if start <= lineno <= end:
                return True
        return False

    def _marker_fields(self):
        """`// pivot:secret` on a declaration outside any function body
        declares a secret *field*: its name taints every file it is used
        in (the registry is the cross-file variant of this)."""
        fields = set()
        for lineno in self.markers:
            if self._line_in_function(lineno):
                continue
            name = marker_decl_name(self.raw_lines[lineno - 1])
            if name:
                fields.add(name)
        return fields

    # -- taint machinery --------------------------------------------------

    def _secret_call_names(self):
        return self.model.secret_returns | self.summaries

    RE_PUBLIC_LENGTH = re.compile(
        r"[A-Za-z_]\w*(?:\[[^\]]*\])*\s*(?:\.|->)\s*"
        r"(?:size|empty|length|capacity)\s*\(\s*\)")

    def _strip_sanitizers(self, text):
        # Container sizes are public throughout the protocol (batch sizes
        # and share counts are agreed up front), so `tainted.size()` does
        # not propagate taint; likewise declared-public metadata members.
        text = self.RE_PUBLIC_LENGTH.sub(" ", text)
        if self.model.public_fields:
            if self._public_field_re is None:
                self._public_field_re = re.compile(
                    r"[A-Za-z_]\w*(?:\[[^\]]*\])*\s*(?:\.|->)\s*(?:" +
                    "|".join(sorted(self.model.public_fields)) +
                    r")\b(?!\s*\()")
            text = self._public_field_re.sub(" ", text)
        return remove_calls(text, self.model.sanitizers)

    def _mentions_taint(self, text, tainted):
        """True if `text` (sanitizers already stripped) touches taint."""
        return bool(self._taint_atoms(text, tainted))

    def _taint_atoms(self, text, tainted):
        atoms = set()
        for m in RE_IDENT.finditer(text):
            name = m.group(0)
            # A name right after `.` or `->` is a member access: it only
            # matches registry/marker secret *fields*, never a tainted
            # local of the same name (`c.value` is about `c`, not the
            # local `value`).
            prefix = text[:m.start()].rstrip()
            is_member = prefix.endswith(".") or prefix.endswith("->")
            if not is_member and name in tainted:
                atoms.add(name)
            elif name in self.model.secret_fields or \
                    name in self.file_secret_fields:
                atoms.add(name)
        for m in RE_CALL.finditer(text):
            if m.group(1) in self._secret_call_names():
                atoms.add(m.group(1) + "()")
        return sorted(atoms)

    def _seed_taint(self, func, include_params=True):
        tainted = set()
        # secret_params are callee-context hardening contracts ("this
        # primitive must be safe for secret inputs"); they seed the body
        # analysis but are excluded when generating summaries, so that a
        # summary only says "returns data derived from a global secret"
        # and FpAdd-style primitives don't taint every call site.
        if include_params:
            declared = self.model.secret_params.get(func.name, set())
            for p in param_names(func.params_text):
                if p in declared:
                    tainted.add(p)
        # Parameters marked inline on the signature line(s).
        sig_line = func.start_line
        for lineno in self.markers:
            if abs(lineno - sig_line) <= 1 and not \
                    self._marker_line_is_local(func, lineno):
                for p in param_names(func.params_text):
                    if re.search(r"\b" + re.escape(p) + r"\b",
                                 self.raw_lines[lineno - 1]):
                        tainted.add(p)
        return tainted

    def _marker_line_is_local(self, func, lineno):
        body_first = self.code.count("\n", 0, func.body_start) + 1
        body_last = self.code.count("\n", 0, func.body_end) + 1
        return body_first <= lineno <= body_last

    def _propagate(self, func, tainted):
        """One fixpoint sweep; returns True if the taint set grew."""
        grew = False
        for lineno, stmt in iter_statements(
                self.code, func.body_start, func.body_end, func.start_line):
            clean = self._strip_sanitizers(stmt)

            # Inline marker on a local declaration.
            if lineno in self.markers and \
                    self._marker_line_is_local(func, lineno):
                name = marker_decl_name(self.raw_lines[lineno - 1])
                if name and name not in tainted:
                    tainted.add(name)
                    grew = True

            # Declaration of a secret type.
            dm = re.match(
                r"(?:const\s+)?(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)"
                r"(?:<[^;=]*>)?\s*[&*]*\s+([A-Za-z_]\w*)\s*(?:=|;|\{|$|\()",
                clean.strip())
            if dm and dm.group(1) in self.model.secret_types and \
                    dm.group(2) not in tainted:
                tainted.add(dm.group(2))
                grew = True
            # Secret type inside a template argument (vector<PartialKey>).
            tm = re.match(
                r"(?:const\s+)?[A-Za-z_][\w:]*\s*<([^;=]*)>\s*[&*]*\s*"
                r"([A-Za-z_]\w*)\s*(?:=|;|\{|$|\()", clean.strip())
            if tm and tm.group(2) not in tainted:
                inner = set(RE_IDENT.findall(tm.group(1)))
                if inner & self.model.secret_types:
                    tainted.add(tm.group(2))
                    grew = True

            # For-loop headers: the generic assignment rule below would
            # treat everything after `i =` (including the condition and
            # increment) as the right-hand side and taint the counter.
            fm = re.match(r"(?:\}\s*)?for\s*\(", clean.strip())
            if fm:
                s = clean.strip()
                end = find_balanced(s, s.index("(", fm.end() - 1))
                header = s[fm.end():end - 1] if end > 0 else s[fm.end():]
                rm = re.match(
                    r"[^;:]*?([A-Za-z_]\w*)\s*:\s*(.+)$", header, re.DOTALL)
                if rm and ";" not in header:
                    # Range-for: `for (const T& v : container)`.
                    if rm.group(1) not in tainted and \
                            self._mentions_taint(rm.group(2), tainted):
                        tainted.add(rm.group(1))
                        grew = True
                else:
                    clauses = split_top_level(header, ";")
                    op = RE_ASSIGN_OP.search(clauses[0])
                    if op:
                        lhs = lhs_base_identifier(clauses[0][:op.start()])
                        if lhs and lhs not in tainted and \
                                self._mentions_taint(
                                    clauses[0][op.end():], tainted):
                            tainted.add(lhs)
                            grew = True
                continue

            # PIVOT_ASSIGN_OR_RETURN(lhs-decl, rexpr)
            am = re.search(r"\bPIVOT_ASSIGN_OR_RETURN\s*\(", clean)
            if am:
                end = find_balanced(clean, clean.index("(", am.end() - 1))
                if end > 0:
                    inner = clean[am.end():end - 1]
                    parts = split_top_level(inner)
                    if len(parts) >= 2:
                        lhs = lhs_base_identifier(parts[0])
                        rhs = ",".join(parts[1:])
                        if lhs and lhs not in tainted and \
                                self._mentions_taint(rhs, tainted):
                            tainted.add(lhs)
                            grew = True
                continue

            # Plain assignment / initialized declaration.
            op = RE_ASSIGN_OP.search(clean)
            if op:
                lhs = lhs_base_identifier(clean[:op.start()])
                rhs = clean[op.end():]
                if lhs and lhs not in tainted and \
                        self._mentions_taint(rhs, tainted):
                    tainted.add(lhs)
                    grew = True

            # Mutation through a growing/writing method taints the object.
            for mm in re.finditer(
                    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*(" +
                    "|".join(MUTATOR_METHODS) + r")\s*\(", clean):
                base = mm.group(1)
                end = find_balanced(clean, clean.index("(", mm.end() - 1))
                args = clean[mm.end():end - 1] if end > 0 else ""
                if base not in tainted and \
                        self._mentions_taint(args, tainted):
                    tainted.add(base)
                    grew = True

            # Encode*(value..., writer): the writer receives the taint.
            for em in re.finditer(r"\b(Encode\w*)\s*\(", clean):
                end = find_balanced(clean, clean.index("(", em.end() - 1))
                if end < 0:
                    continue
                parts = split_top_level(clean[em.end():end - 1])
                if len(parts) < 2:
                    continue
                writer = lhs_base_identifier(parts[-1])
                if writer and writer not in tainted and \
                        self._mentions_taint(",".join(parts[:-1]), tainted):
                    tainted.add(writer)
                    grew = True
        return grew

    def _return_is_tainted(self, func, tainted):
        for _, stmt in iter_statements(
                self.code, func.body_start, func.body_end, func.start_line):
            m = re.match(r"return\b(.*)", stmt.strip(), re.DOTALL)
            if m and self._mentions_taint(
                    self._strip_sanitizers(m.group(1)), tainted):
                return True
        return False

    # -- sinks ------------------------------------------------------------

    def _report(self, lineno, rule, message):
        # A suppression applies on the finding line itself, on the previous
        # line (trailing comment on a wrapped statement), or anywhere in
        # the contiguous //-comment block directly above the statement —
        # suppression reasons are encouraged to span several lines.
        sup = self.suppressions.get(lineno) or \
            self.suppressions.get(lineno - 1)
        if sup is None:
            ln = lineno - 1
            while ln >= 1 and \
                    self.raw_lines[ln - 1].strip().startswith("//"):
                if ln in self.suppressions:
                    sup = self.suppressions[ln]
                    break
                ln -= 1
        if sup is not None:
            sup_rules, reason = sup
            if rule in {r.strip() for r in sup_rules.split(",")}:
                if reason:
                    self.suppressed.append((lineno, rule, reason))
                    return
                self.findings.append(Finding(
                    self.rel, lineno, "bad-suppression",
                    f"suppression of [{rule}] has no reason; write "
                    "`// pivot-taint: allow(" + rule + ") <why this flow "
                    "is safe>`"))
                return
        self.findings.append(Finding(self.rel, lineno, rule, message))

    def _check_sinks(self, func, tainted):
        for lineno, stmt in iter_statements(
                self.code, func.body_start, func.body_end, func.start_line):
            clean = self._strip_sanitizers(stmt)
            self._check_branch(lineno, clean, tainted)
            self._check_compare(lineno, clean, tainted)
            self._check_status(lineno, clean, tainted)
            self._check_print(lineno, clean, tainted)
            self._check_send(lineno, clean, tainted)
            self._check_variable_time(lineno, clean, tainted)

    def _check_branch(self, lineno, stmt, tainted):
        s = stmt.strip()
        for kw in ("if", "while", "switch"):
            m = re.match(r"(?:\}\s*)?(?:else\s+)?" + kw + r"\s*\(", s)
            if m:
                end = find_balanced(s, s.index("(", m.end() - 1))
                cond = s[m.end():end - 1] if end > 0 else s[m.end():]
                atoms = self._taint_atoms(cond, tainted)
                if atoms:
                    self._report(
                        lineno, "secret-branch",
                        f"{kw} condition depends on secret data "
                        f"({', '.join(atoms)}); secret-dependent control "
                        "flow is a timing channel — restructure with "
                        "common/ct.h selects/masks")
                return
        m = re.match(r"for\s*\(", s)
        if m:
            end = find_balanced(s, s.index("(", m.end() - 1))
            clauses = split_top_level(
                s[m.end():end - 1] if end > 0 else s[m.end():], ";")
            cond = clauses[1] if len(clauses) >= 2 else ""
            atoms = self._taint_atoms(cond, tainted)
            if atoms:
                self._report(
                    lineno, "secret-branch",
                    f"loop bound depends on secret data "
                    f"({', '.join(atoms)}); iteration count leaks through "
                    "timing — bound the loop by a public size")
            return
        q = s.find("?")
        if q > 0 and ":" in s[q:]:
            # The ternary condition is the trailing expression before `?`,
            # bounded by the nearest (, comma, logical operator, or
            # statement keyword — not everything since line start.
            cond = re.split(r"[(,;{]|&&|\|\||\breturn\b", s[:q])[-1]
            op = RE_ASSIGN_OP.search(cond)
            if op:
                cond = cond[op.end():]
            atoms = self._taint_atoms(cond, tainted)
            if atoms:
                self._report(
                    lineno, "secret-branch",
                    f"ternary condition depends on secret data "
                    f"({', '.join(atoms)}); use a constant-time select "
                    "(common/ct.h CtSelect/SelectU128)")

    def _check_compare(self, lineno, stmt, tainted):
        if self.in_ct_header:
            return  # the constant-time implementations themselves
        for m in re.finditer(
                r"([^=!<>&|,;?:]{1,120}?)\s*(==|!=)\s*([^=&|,;?:)]{1,120})",
                stmt):
            left, right = m.group(1), m.group(3)
            atoms = self._taint_atoms(left, tainted) + \
                self._taint_atoms(right, tainted)
            if atoms:
                self._report(
                    lineno, "non-ct-compare",
                    f"variable-time {m.group(2)} on secret data "
                    f"({', '.join(sorted(set(atoms)))}); route through "
                    "common/ct.h (CtEqual / EqualU128 / AllZeroU128)")
                return
        for m in re.finditer(r"\b(memcmp|strcmp|strncmp)\s*\(", stmt):
            end = find_balanced(stmt, stmt.index("(", m.end() - 1))
            args = stmt[m.end():end - 1] if end > 0 else stmt[m.end():]
            atoms = self._taint_atoms(args, tainted)
            if atoms:
                self._report(
                    lineno, "non-ct-compare",
                    f"{m.group(1)} on secret data "
                    f"({', '.join(atoms)}); memcmp early-exits on the "
                    "first differing byte — use ct::CtEqual")
                return

    def _check_status(self, lineno, stmt, tainted):
        for m in re.finditer(r"\bStatus(?:::[A-Za-z]+)?\s*\(", stmt):
            end = find_balanced(stmt, stmt.index("(", m.end() - 1))
            args = stmt[m.end():end - 1] if end > 0 else stmt[m.end():]
            atoms = self._taint_atoms(args, tainted)
            if atoms:
                self._report(
                    lineno, "status-leak",
                    f"secret data ({', '.join(atoms)}) interpolated into a "
                    "Status message; error text crosses party and log "
                    "boundaries — log lengths or digests instead")
                return

    def _check_print(self, lineno, stmt, tainted):
        printish = re.search(
            r"std::cerr\b|std::cout\b|\bfprintf\s*\(|\bprintf\s*\(|"
            r"\bputs\s*\(", stmt)
        if printish:
            atoms = self._taint_atoms(stmt, tainted)
            if atoms:
                self._report(
                    lineno, "secret-print",
                    f"secret data ({', '.join(atoms)}) written to a "
                    "stdio stream; never print key/share material")
            return
        m = re.search(r"\bPIVOT_CHECK_MSG\s*\(", stmt)
        if m:
            end = find_balanced(stmt, stmt.index("(", m.end() - 1))
            parts = split_top_level(stmt[m.end():end - 1] if end > 0
                                    else stmt[m.end():])
            if len(parts) >= 2:
                atoms = self._taint_atoms(",".join(parts[1:]), tainted)
                if atoms:
                    self._report(
                        lineno, "secret-print",
                        f"secret data ({', '.join(atoms)}) in a "
                        "PIVOT_CHECK_MSG message (printed to stderr on "
                        "failure)")

    def _check_send(self, lineno, stmt, tainted):
        for m in re.finditer(r"\b(?:Send|Broadcast)\s*\(", stmt):
            end = find_balanced(stmt, stmt.index("(", m.end() - 1))
            args = stmt[m.end():end - 1] if end > 0 else stmt[m.end():]
            atoms = self._taint_atoms(args, tainted)
            if atoms:
                self._report(
                    lineno, "raw-send",
                    f"secret data ({', '.join(atoms)}) sent over an "
                    "Endpoint without encryption; only ciphertexts and "
                    "protocol-published shares may leave a party")
                return

    RE_VT_CALL = re.compile(
        r"(?:([A-Za-z_]\w*(?:\[[^\]]*\])*)\s*(?:\.|->)\s*)?"
        r"([A-Za-z_]\w*)\s*\(")

    def _check_variable_time(self, lineno, stmt, tainted):
        for m in re.finditer(self.RE_VT_CALL, stmt):
            positions = self.model.variable_time.get(m.group(2))
            if positions is None:
                continue
            end = find_balanced(stmt, stmt.index("(", m.end() - 1))
            args = split_top_level(
                stmt[m.end():end - 1] if end > 0 else stmt[m.end():])
            atoms = []
            for pos in positions:
                if pos == -1:
                    operand = m.group(1) or ""
                elif pos < len(args):
                    operand = args[pos]
                else:
                    continue
                atoms += self._taint_atoms(operand, tainted)
            if atoms:
                self._report(
                    lineno, "variable-time-call",
                    f"secret data ({', '.join(sorted(set(atoms)))}) in a "
                    f"timing-relevant operand of variable-time "
                    f"{m.group(2)}(); its runtime depends on the operand "
                    "value")
                return

    # -- driver -----------------------------------------------------------

    def analyze_function(self, func, collect_summaries_only=False):
        if func.name in self.model.exempt_functions:
            return
        tainted = self._seed_taint(
            func, include_params=not collect_summaries_only)
        for _ in range(12):
            if not self._propagate(func, tainted):
                break
        if collect_summaries_only:
            if self._return_is_tainted(func, tainted):
                self.tainted_returns.add(func.name)
            else:
                self.clean_returns.add(func.name)
        else:
            self._check_sinks(func, tainted)

    def run(self, collect_summaries_only=False):
        for ex in self.model.exempt_files:
            if self.rel == ex or (ex.endswith("/") and
                                  self.rel.startswith(ex)):
                return
        for func in self.functions:
            self.analyze_function(func, collect_summaries_only)


# ---------------------------------------------------------------------------
# Main
# ---------------------------------------------------------------------------

def collect_files(root):
    out = []
    src_root = os.path.join(root, "src")
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in SKIP_DIR_NAMES
            and not any(d.startswith(p) for p in SKIP_DIR_PREFIXES))
        for name in sorted(filenames):
            if name.endswith(CXX_EXTENSIONS):
                out.append(os.path.relpath(os.path.join(dirpath, name), root))
    return out


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--files", nargs="*", default=None,
                        help="analyze only these paths (relative to ROOT)")
    parser.add_argument("--model", default=None,
                        help="path to taint_model.json (default: next to "
                             "this script)")
    parser.add_argument("--summaries", action="store_true",
                        help="print the generated call summaries")
    parser.add_argument("--list-suppressions", action="store_true",
                        help="list active suppressions and their reasons")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"pivot_taint: not a directory: {root}", file=sys.stderr)
        return 2
    model_path = args.model or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "taint_model.json")
    try:
        model = load_model(model_path)
    except (OSError, ValueError) as e:
        print(f"pivot_taint: cannot load model {model_path}: {e}",
              file=sys.stderr)
        return 2

    rels = args.files if args.files is not None else collect_files(root)
    rels = [r.replace(os.sep, "/") for r in rels]

    texts = {}
    for rel in rels:
        try:
            with open(os.path.join(root, rel), "r", encoding="utf-8",
                      errors="replace") as f:
                texts[rel] = f.read()
        except OSError as e:
            print(f"{rel}:0: [taint:io] cannot read file: {e}")
            return 1

    # Pass 1: generate return-taint summaries per function name. Summaries
    # are keyed by unqualified name, so a name is summarized as tainted
    # only when EVERY definition of it has a tainted return — otherwise
    # e.g. AuthEngine::Mul (MAC-carrying) would alias MpcEngine::Mul
    # (plain shares) and taint every call site of the latter.
    tainted_names, clean_names = set(), set()
    for rel, text in texts.items():
        fa = FileAnalysis(rel, text, model, set())
        fa.run(collect_summaries_only=True)
        tainted_names |= fa.tainted_returns
        clean_names |= fa.clean_returns
    summaries = tainted_names - clean_names
    if args.summaries:
        for name in sorted(summaries):
            print(f"summary: {name}() returns tainted data")
        for name in sorted(tainted_names & clean_names):
            print(f"summary: {name}() ambiguous (mixed definitions), "
                  "skipped")

    # Pass 2: full analysis with summaries as additional sources.
    findings, suppressed = [], []
    for rel, text in texts.items():
        fa = FileAnalysis(rel, text, model, summaries)
        fa.run()
        findings.extend(fa.findings)
        suppressed.extend((rel, ln, rule, reason)
                          for ln, rule, reason in fa.suppressed)

    if args.list_suppressions:
        for rel, ln, rule, reason in sorted(suppressed):
            print(f"suppressed: {rel}:{ln}: [taint:{rule}] {reason}")

    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f)
    if findings:
        print(f"pivot_taint: {len(findings)} finding(s) in "
              f"{len(set(f.path for f in findings))} file(s) "
              f"({len(suppressed)} suppressed)", file=sys.stderr)
        return 1
    print(f"pivot_taint: OK ({len(rels)} files, "
          f"{len(summaries)} tainted-return summaries, "
          f"{len(suppressed)} suppressed)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
