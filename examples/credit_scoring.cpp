// Credit scoring: the paper's motivating scenario (Figure 1).
//
// A bank and a fintech company jointly evaluate credit-card applications.
// Both organizations know the same customers; the bank holds account
// features and the ground-truth labels (approved / rejected), the fintech
// holds online-transaction features. Neither may reveal its columns.
//
// This example trains the model twice:
//  - with the basic protocol (the final tree is public to both parties),
//  - with the enhanced protocol (split thresholds and leaf labels stay
//    secret-shared, mitigating the training-label / feature-value
//    leakages of Section 5.1),
// and then scores fresh applications with the distributed prediction
// protocols, printing what each organization actually gets to see.

#include <cstdio>

#include "data/synthetic.h"
#include "pivot/prediction.h"
#include "pivot/runner.h"
#include "pivot/trainer.h"

using namespace pivot;

namespace {

constexpr int kBank = 0;     // super client: holds the labels
constexpr int kFintech = 1;

// A credit-card-application-like dataset: 10 features (5 bank-side, 5
// fintech-side), binary approval label.
Dataset MakeCreditData() {
  ClassificationSpec spec;
  spec.num_samples = 400;
  spec.num_features = 10;
  spec.num_classes = 2;
  spec.class_separation = 2.2;
  spec.seed = 20260704;
  return MakeClassification(spec);
}

}  // namespace

int main() {
  Dataset data = MakeCreditData();
  Rng rng(5);
  TrainTestSplit split = SplitTrainTest(data, 0.2, rng);

  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.super_client = kBank;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 3;
  cfg.params.tree.max_splits = 8;
  cfg.params.key_bits = 384;  // enhanced protocol needs the headroom

  std::printf("== Vertical FL credit scoring: bank + fintech ==\n\n");

  Status st = RunFederation(split.train, cfg, [&](PartyContext& ctx) -> Status {
    const char* who = ctx.id() == kBank ? "bank" : "fintech";

    // ---- Basic protocol: the tree is public to both parties. ----
    TrainTreeOptions basic;
    basic.protocol = Protocol::kBasic;
    PIVOT_ASSIGN_OR_RETURN(PivotTree public_tree, TrainPivotTree(ctx, basic));

    // ---- Enhanced protocol: thresholds and leaf labels stay hidden. ----
    TrainTreeOptions enhanced;
    enhanced.protocol = Protocol::kEnhanced;
    PIVOT_ASSIGN_OR_RETURN(PivotTree hidden_tree,
                           TrainPivotTree(ctx, enhanced));

    if (ctx.id() == kBank) {
      std::printf("[basic]    both parties see the full tree, e.g. root: "
                  "client %d, local feature %d, threshold %.3f\n",
                  public_tree.nodes[0].owner,
                  public_tree.nodes[0].feature_local,
                  public_tree.nodes[0].threshold);
      std::printf("[enhanced] parties see only the split owner/feature; the "
                  "root threshold field is %.3f (concealed; real value lives "
                  "in secret shares)\n\n",
                  hidden_tree.nodes[0].threshold);
    }

    // ---- Score 8 fresh applications with both models. ----
    auto my_rows = SliceRowsForParty(split.test, ctx.id(), cfg.num_parties);
    int agree = 0;
    int approved = 0;
    for (int i = 0; i < 8; ++i) {
      PIVOT_ASSIGN_OR_RETURN(double pub,
                             PredictPivot(ctx, public_tree, my_rows[i]));
      PIVOT_ASSIGN_OR_RETURN(double hid,
                             PredictPivot(ctx, hidden_tree, my_rows[i]));
      agree += (pub == hid);
      approved += (pub == 1.0);
      if (ctx.id() == kBank) {
        std::printf("application %d: basic=%s enhanced=%s (truth=%s)\n", i,
                    pub == 1.0 ? "approve" : "reject",
                    hid == 1.0 ? "approve" : "reject",
                    split.test.labels[i] == 1.0 ? "approve" : "reject");
      }
    }
    if (ctx.id() == kBank) {
      std::printf("\nbasic/enhanced agreement: %d/8; approved: %d/8\n", agree,
                  approved);
    } else {
      // The fintech learns only the final predictions it was part of.
      std::printf("(%s sees only the agreed outputs, never the bank's "
                  "labels)\n", who);
    }
    return Status::Ok();
  });
  if (!st.ok()) {
    std::fprintf(stderr, "federation failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
