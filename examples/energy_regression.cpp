// Energy-consumption regression with federated tree ensembles.
//
// Mirrors the paper's appliances-energy workload (a regression task over
// sensor features held by different building subsystems). Three parties
// train a Pivot random forest and a Pivot GBDT on vertically partitioned
// data and report test MSE against the non-private sklearn-style
// baselines implemented in src/tree/.

#include <cstdio>

#include "data/synthetic.h"
#include "pivot/ensemble.h"
#include "pivot/runner.h"
#include "tree/forest.h"
#include "tree/gbdt.h"

using namespace pivot;

int main() {
  RegressionSpec spec;
  spec.num_samples = 300;
  spec.num_features = 9;
  spec.noise = 0.15;
  spec.seed = 42;
  Dataset data = MakeRegression(spec);
  Rng rng(3);
  TrainTestSplit split = SplitTrainTest(data, 0.25, rng);

  FederationConfig cfg;
  cfg.num_parties = 3;
  cfg.params.tree.task = TreeTask::kRegression;
  cfg.params.tree.max_depth = 3;
  cfg.params.tree.max_splits = 6;
  cfg.params.key_bits = 384;  // GBDT carries encrypted residual labels

  const int kTrees = 4;
  const int kProbe = 12;  // test samples scored through the protocols

  std::printf("Training federated ensembles on %zu samples, %d parties...\n",
              split.train.num_samples(), cfg.num_parties);

  double rf_mse = -1, gbdt_mse = -1;
  Status st = RunFederation(split.train, cfg, [&](PartyContext& ctx) -> Status {
    auto my_rows = SliceRowsForParty(split.test, ctx.id(), cfg.num_parties);
    my_rows.resize(kProbe);
    std::vector<double> truth(split.test.labels.begin(),
                              split.test.labels.begin() + kProbe);

    EnsembleOptions rf_opts;
    rf_opts.num_trees = kTrees;
    PIVOT_ASSIGN_OR_RETURN(PivotEnsemble rf, TrainPivotForest(ctx, rf_opts));
    PIVOT_ASSIGN_OR_RETURN(std::vector<double> rf_preds,
                           PredictPivotEnsembleMany(ctx, rf, my_rows));

    EnsembleOptions gbdt_opts;
    gbdt_opts.num_trees = kTrees;
    gbdt_opts.learning_rate = 0.5;
    PIVOT_ASSIGN_OR_RETURN(PivotEnsemble gbdt, TrainPivotGbdt(ctx, gbdt_opts));
    PIVOT_ASSIGN_OR_RETURN(std::vector<double> gbdt_preds,
                           PredictPivotEnsembleMany(ctx, gbdt, my_rows));

    if (ctx.id() == 0) {
      rf_mse = MeanSquaredError(rf_preds, truth);
      gbdt_mse = MeanSquaredError(gbdt_preds, truth);
    }
    return Status::Ok();
  });
  if (!st.ok()) {
    std::fprintf(stderr, "federation failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Non-private baselines with identical hyper-parameters.
  ForestParams np_rf;
  np_rf.tree = cfg.params.tree;
  np_rf.num_trees = kTrees;
  ForestModel rf = TrainForest(split.train, np_rf);

  GbdtParams np_gbdt;
  np_gbdt.tree = cfg.params.tree;
  np_gbdt.num_rounds = kTrees;
  np_gbdt.learning_rate = 0.5;
  GbdtModel gbdt = TrainGbdt(split.train, np_gbdt);

  Dataset probe;
  probe.features.assign(split.test.features.begin(),
                        split.test.features.begin() + kProbe);
  probe.labels.assign(split.test.labels.begin(),
                      split.test.labels.begin() + kProbe);

  std::printf("\n%-12s %10s %10s\n", "model", "Pivot MSE", "NP MSE");
  std::printf("%-12s %10.4f %10.4f\n", "RF", rf_mse,
              MeanSquaredError(PredictAll(rf, probe), probe.labels));
  std::printf("%-12s %10.4f %10.4f\n", "GBDT", gbdt_mse,
              MeanSquaredError(PredictAll(gbdt, probe), probe.labels));
  std::printf("\n(Private and plaintext ensembles are close; residual "
              "differences come from fixed-point arithmetic and bootstrap "
              "draws.)\n");
  return 0;
}
