// End-to-end vertical FL pipeline, covering the paper's whole lifecycle:
//
//   1. initialization: the parties privately align their common customers
//      with multi-party PSI (Section 3.1's assumption, implemented in
//      src/psi/);
//   2. model training: a Pivot decision tree (Section 4) and a vertical
//      logistic regression (the Section 7.3 extension) on the aligned
//      samples;
//   3. model persistence: each party saves its model view to disk and
//      reloads it (src/pivot/serialize.h);
//   4. model prediction: joint scoring of fresh samples.

#include <cstdio>

#include "data/synthetic.h"
#include "pivot/logreg.h"
#include "pivot/prediction.h"
#include "pivot/runner.h"
#include "pivot/serialize.h"
#include "pivot/trainer.h"
#include "psi/psi.h"

using namespace pivot;

int main() {
  // Universe of customers; each organization knows a subset.
  ClassificationSpec spec;
  spec.num_samples = 120;
  spec.num_features = 8;
  spec.num_classes = 2;
  spec.class_separation = 2.5;
  spec.seed = 404;
  Dataset universe = MakeClassification(spec);

  // Party 0 knows customers 0..99, party 1 knows 20..119: the protocols
  // may only run on the 80 common ones.
  std::vector<std::vector<uint64_t>> known = {{}, {}};
  for (uint64_t id = 0; id < 100; ++id) known[0].push_back(id);
  for (uint64_t id = 20; id < 120; ++id) known[1].push_back(id);

  FederationConfig cfg;
  cfg.num_parties = 2;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 3;
  cfg.params.key_bits = 512;  // logistic regression needs the headroom

  // --- Stage 1: PSI over the raw customer-id sets. ---
  std::vector<uint64_t> common;
  {
    InMemoryNetwork net(2);
    Status st = RunParties(net, [&](int id, Endpoint& ep) -> Status {
      Rng rng(900 + id);
      PIVOT_ASSIGN_OR_RETURN(std::vector<uint64_t> inter,
                             IntersectSampleIds(ep, known[id], rng));
      if (id == 0) common = inter;
      return Status::Ok();
    });
    if (!st.ok()) {
      std::fprintf(stderr, "PSI failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("PSI: %zu customers in common (out of %zu / %zu known)\n",
              common.size(), known[0].size(), known[1].size());

  // Build the aligned training set from the intersection.
  Dataset aligned;
  for (uint64_t id : common) {
    aligned.features.push_back(universe.features[id]);
    aligned.labels.push_back(universe.labels[id]);
  }

  // --- Stages 2-4 inside one federation run. ---
  Status st = RunFederation(aligned, cfg, [&](PartyContext& ctx) -> Status {
    // Train a decision tree and a logistic regression on the same data.
    TrainTreeOptions tree_opts;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, tree_opts));

    PivotLogRegParams lr_params;
    lr_params.epochs = 3;
    PIVOT_ASSIGN_OR_RETURN(PivotLogRegModel logreg,
                           TrainPivotLogReg(ctx, lr_params));

    // Persist + reload the tree (each party keeps its own view).
    const std::string path =
        "/tmp/pivot_pipeline_party" + std::to_string(ctx.id()) + ".bin";
    PIVOT_RETURN_IF_ERROR(SaveModelBytes(SerializePivotTree(tree), path));
    PIVOT_ASSIGN_OR_RETURN(Bytes blob, LoadModelBytes(path));
    PIVOT_ASSIGN_OR_RETURN(PivotTree reloaded, DeserializePivotTree(blob));

    // Joint scoring with the reloaded model and with the regression.
    auto rows = SliceRowsForParty(aligned, ctx.id(), 2);
    int tree_correct = 0;
    double lr_correct = 0;
    const int probe = 10;
    for (int i = 0; i < probe; ++i) {
      PIVOT_ASSIGN_OR_RETURN(double tree_pred,
                             PredictPivot(ctx, reloaded, rows[i]));
      PIVOT_ASSIGN_OR_RETURN(double prob,
                             PredictPivotLogReg(ctx, logreg, rows[i]));
      tree_correct += (tree_pred == aligned.labels[i]);
      lr_correct += ((prob >= 0.5 ? 1.0 : 0.0) == aligned.labels[i]);
    }
    if (ctx.id() == 0) {
      std::printf("decision tree   : %d/%d correct on probe samples\n",
                  tree_correct, probe);
      std::printf("logistic regr.  : %.0f/%d correct on probe samples\n",
                  lr_correct, probe);
      std::printf("model views persisted to /tmp/pivot_pipeline_party*.bin\n");
    }
    return Status::Ok();
  });
  if (!st.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
