// Healthcare analytics with defense in depth: enhanced protocol +
// differential privacy.
//
// A hospital (labels: diagnosis) and two labs (feature panels) train a
// diagnosis tree. Beyond hiding all intermediate values (every Pivot
// protocol does that), this deployment also:
//   - conceals the model's thresholds and leaf labels (enhanced protocol,
//     Section 5), so colluding parties cannot run the label/feature
//     inference attacks of Section 5.1, and
//   - samples Laplace noise and applies the exponential mechanism inside
//     MPC (Section 9.2), so even the *released structure* is
//     differentially private with budget B = 2·eps·(h+1).

#include <cstdio>

#include "data/synthetic.h"
#include "pivot/prediction.h"
#include "pivot/runner.h"
#include "pivot/trainer.h"

using namespace pivot;

int main() {
  ClassificationSpec spec;
  spec.num_samples = 300;
  spec.num_features = 9;
  spec.num_classes = 3;  // healthy / condition A / condition B
  spec.class_separation = 2.5;
  spec.seed = 99;
  Dataset data = MakeClassification(spec);
  Rng rng(11);
  TrainTestSplit split = SplitTrainTest(data, 0.2, rng);

  FederationConfig cfg;
  cfg.num_parties = 3;
  cfg.super_client = 0;  // the hospital
  cfg.params.tree.num_classes = 3;
  cfg.params.tree.max_depth = 3;
  cfg.params.tree.max_splits = 6;
  cfg.params.key_bits = 384;
  cfg.params.dp.enabled = true;
  cfg.params.dp.epsilon_per_query = 1.0;

  const double budget =
      2.0 * cfg.params.dp.epsilon_per_query * (cfg.params.tree.max_depth + 1);
  std::printf("Hospital + 2 labs, enhanced protocol, DP budget B = %.1f\n\n",
              budget);

  Status st = RunFederation(split.train, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;
    opts.protocol = Protocol::kEnhanced;
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));

    if (ctx.id() == 0) {
      std::printf("released structure: %d internal nodes / %d leaves\n",
                  tree.NumInternalNodes(), tree.NumLeaves());
      std::printf("feature owners along the tree:");
      for (const PivotNode& n : tree.nodes) {
        if (!n.is_leaf) std::printf(" u%d.f%d", n.owner, n.feature_local);
      }
      std::printf("\n(no thresholds, no leaf diagnoses are visible)\n\n");
    }

    // Joint diagnosis of new patients: only the final class is revealed.
    auto my_rows = SliceRowsForParty(split.test, ctx.id(), cfg.num_parties);
    int correct = 0;
    const int probe = 10;
    for (int i = 0; i < probe; ++i) {
      PIVOT_ASSIGN_OR_RETURN(double pred, PredictPivot(ctx, tree, my_rows[i]));
      correct += (pred == split.test.labels[i]);
    }
    if (ctx.id() == 0) {
      std::printf("joint diagnosis on %d held-out patients: %d correct\n",
                  probe, correct);
      std::printf("(DP noise trades some accuracy for a formal privacy "
                  "guarantee on the released model)\n");
    }
    return Status::Ok();
  });
  if (!st.ok()) {
    std::fprintf(stderr, "federation failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
