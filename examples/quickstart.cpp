// Quickstart: train a privacy-preserving decision tree across three
// simulated clients and compare it with the non-private baseline.
//
// The three parties hold disjoint feature columns of the same samples;
// party 0 (the "super client") additionally holds the labels. Training
// runs the Pivot basic protocol: threshold-Paillier-encrypted statistics,
// secret-shared best-split selection, and a plaintext released model.

#include <cstdio>

#include "data/synthetic.h"
#include "pivot/prediction.h"
#include "pivot/runner.h"
#include "pivot/trainer.h"
#include "tree/cart.h"

using namespace pivot;

int main() {
  // 1. A synthetic binary-classification dataset (600 samples, 9 features).
  ClassificationSpec spec;
  spec.num_samples = 600;
  spec.num_features = 9;
  spec.num_classes = 2;
  spec.class_separation = 2.0;
  spec.seed = 7;
  Dataset data = MakeClassification(spec);
  Rng rng(1);
  TrainTestSplit split = SplitTrainTest(data, 0.25, rng);

  // 2. Federation setup: 3 clients, party 0 holds the labels.
  FederationConfig cfg;
  cfg.num_parties = 3;
  cfg.params.tree.task = TreeTask::kClassification;
  cfg.params.tree.num_classes = 2;
  cfg.params.tree.max_depth = 3;
  cfg.params.tree.max_splits = 8;
  cfg.params.key_bits = 256;

  std::printf("Training a Pivot decision tree across %d clients...\n",
              cfg.num_parties);

  double pivot_accuracy = -1.0;
  Status st = RunFederation(split.train, cfg, [&](PartyContext& ctx) -> Status {
    TrainTreeOptions opts;  // basic protocol
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, opts));

    // Federated prediction on the test set: each party supplies only its
    // own feature slice per sample (Algorithm 4 of the paper).
    auto my_rows = SliceRowsForParty(split.test, ctx.id(), cfg.num_parties);
    PIVOT_ASSIGN_OR_RETURN(std::vector<double> preds,
                           PredictPivotMany(ctx, tree, my_rows));
    if (ctx.id() == 0) {
      pivot_accuracy = Accuracy(preds, split.test.labels);
      std::printf("  model: %d internal nodes, %d leaves\n",
                  tree.NumInternalNodes(), tree.NumLeaves());
    }
    return Status::Ok();
  });
  if (!st.ok()) {
    std::fprintf(stderr, "federation failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Non-private reference with identical hyper-parameters.
  TreeModel np = TrainCart(split.train, cfg.params.tree);
  double np_accuracy = Accuracy(PredictAll(np, split.test), split.test.labels);

  std::printf("Pivot-DT  test accuracy: %.4f\n", pivot_accuracy);
  std::printf("NP-DT     test accuracy: %.4f\n", np_accuracy);
  std::printf("(The private tree matches the plaintext tree up to "
              "fixed-point rounding.)\n");
  return 0;
}
