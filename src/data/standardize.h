#ifndef PIVOT_DATA_STANDARDIZE_H_
#define PIVOT_DATA_STANDARDIZE_H_

#include "data/dataset.h"

namespace pivot {

// Per-feature standardization (zero mean, unit variance), the usual
// preprocessing before the logistic-regression extension (whose secure
// sigmoid expects bounded scores). In vertical FL each client standardizes
// its own columns locally — column statistics never cross parties — so a
// plain local transform is faithful to the deployment model.
struct StandardizeStats {
  std::vector<double> mean;
  std::vector<double> stddev;  // >= epsilon

  // Applies the transform to a feature row (sizes must match).
  std::vector<double> Apply(const std::vector<double>& row) const;
};

// Computes column statistics of `data` and returns the standardized copy.
StandardizeStats ComputeStandardizeStats(const Dataset& data);
Dataset Standardize(const Dataset& data, const StandardizeStats& stats);

}  // namespace pivot

#endif  // PIVOT_DATA_STANDARDIZE_H_
