#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pivot {

Dataset MakeClassification(const ClassificationSpec& spec) {
  PIVOT_CHECK(spec.num_samples > 0 && spec.num_features > 0 &&
              spec.num_classes >= 2);
  Rng rng(spec.seed);
  const int informative = std::max(
      1, static_cast<int>(spec.num_features * spec.informative_fraction));

  // Per-class centroids on the informative subspace.
  std::vector<std::vector<double>> centroids(spec.num_classes);
  for (auto& c : centroids) {
    c.resize(informative);
    for (double& v : c) v = rng.NextGaussian() * spec.class_separation;
  }

  Dataset data;
  data.features.reserve(spec.num_samples);
  data.labels.reserve(spec.num_samples);
  for (int i = 0; i < spec.num_samples; ++i) {
    const int cls = static_cast<int>(rng.NextBelow(spec.num_classes));
    std::vector<double> row(spec.num_features);
    for (int j = 0; j < spec.num_features; ++j) {
      double v = rng.NextGaussian();
      if (j < informative) v += centroids[cls][j];
      row[j] = std::clamp(v, -999.0, 999.0);
    }
    data.features.push_back(std::move(row));
    data.labels.push_back(cls);
  }
  return data;
}

Dataset MakeRegression(const RegressionSpec& spec) {
  PIVOT_CHECK(spec.num_samples > 0 && spec.num_features > 0);
  Rng rng(spec.seed);
  const int informative = std::max(
      1, static_cast<int>(spec.num_features * spec.informative_fraction));

  std::vector<double> weights(informative);
  for (double& w : weights) w = rng.NextGaussian();
  // Piecewise structure: per-informative-feature threshold and bump.
  std::vector<double> thresholds(informative), bumps(informative);
  for (int j = 0; j < informative; ++j) {
    thresholds[j] = rng.NextGaussian() * 0.5;
    bumps[j] = rng.NextGaussian();
  }

  Dataset data;
  data.features.reserve(spec.num_samples);
  std::vector<double> raw_labels;
  raw_labels.reserve(spec.num_samples);
  for (int i = 0; i < spec.num_samples; ++i) {
    std::vector<double> row(spec.num_features);
    for (int j = 0; j < spec.num_features; ++j) {
      row[j] = std::clamp(rng.NextGaussian(), -999.0, 999.0);
    }
    double y = 0.0;
    for (int j = 0; j < informative; ++j) {
      y += weights[j] * row[j];
      if (spec.piecewise && row[j] > thresholds[j]) y += bumps[j];
    }
    y += rng.NextGaussian() * spec.noise * std::sqrt(
             static_cast<double>(informative));
    raw_labels.push_back(y);
    data.features.push_back(std::move(row));
  }

  // Normalize labels into roughly [-10, 10] so fixed-point protocols have
  // comfortable headroom.
  double max_abs = 1e-9;
  for (double y : raw_labels) max_abs = std::max(max_abs, std::abs(y));
  data.labels.reserve(spec.num_samples);
  for (double y : raw_labels) data.labels.push_back(10.0 * y / max_abs);
  return data;
}

}  // namespace pivot
