#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>
#include <string>

#include "common/check.h"

namespace pivot {

int Dataset::NumClasses() const {
  std::set<int> classes;
  for (double y : labels) classes.insert(static_cast<int>(y));
  return static_cast<int>(classes.size());
}

std::vector<double> Dataset::Column(size_t j) const {
  std::vector<double> col;
  col.reserve(num_samples());
  for (const auto& row : features) col.push_back(row[j]);
  return col;
}

TrainTestSplit SplitTrainTest(const Dataset& data, double test_fraction,
                              Rng& rng) {
  PIVOT_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  const size_t n = data.num_samples();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates shuffle.
  for (size_t i = n; i > 1; --i) {
    size_t j = rng.NextBelow(i);
    std::swap(order[i - 1], order[j]);
  }
  const size_t test_count = std::max<size_t>(1, static_cast<size_t>(
                                                    n * test_fraction));
  TrainTestSplit split;
  for (size_t i = 0; i < n; ++i) {
    Dataset& dst = (i < test_count) ? split.test : split.train;
    dst.features.push_back(data.features[order[i]]);
    dst.labels.push_back(data.labels[order[i]]);
  }
  return split;
}

VerticalPartition PartitionVertically(const Dataset& data, int num_clients) {
  PIVOT_CHECK_MSG(num_clients >= 1, "need at least one client");
  PIVOT_CHECK_MSG(data.num_features() >= static_cast<size_t>(num_clients),
                  "fewer features than clients");
  VerticalPartition part;
  part.labels = data.labels;
  part.views.resize(num_clients);
  const size_t d = data.num_features();
  for (size_t j = 0; j < d; ++j) {
    part.views[j % num_clients].feature_indices.push_back(static_cast<int>(j));
  }
  const size_t n = data.num_samples();
  for (int c = 0; c < num_clients; ++c) {
    VerticalView& view = part.views[c];
    view.features.resize(n);
    for (size_t i = 0; i < n; ++i) {
      view.features[i].reserve(view.feature_indices.size());
      for (int j : view.feature_indices) {
        view.features[i].push_back(data.features[i][j]);
      }
    }
  }
  return part;
}

Dataset MergeVerticalPartition(const VerticalPartition& partition) {
  Dataset data;
  data.labels = partition.labels;
  size_t d = 0;
  for (const VerticalView& view : partition.views) d += view.num_features();
  const size_t n = partition.views.empty() ? 0 : partition.views[0].features.size();
  data.features.assign(n, std::vector<double>(d, 0.0));
  for (const VerticalView& view : partition.views) {
    for (size_t local = 0; local < view.feature_indices.size(); ++local) {
      const int global = view.feature_indices[local];
      for (size_t i = 0; i < n; ++i) {
        data.features[i][global] = view.features[i][local];
      }
    }
  }
  return data;
}

double Accuracy(const std::vector<double>& predictions,
                const std::vector<double>& truth) {
  PIVOT_CHECK(predictions.size() == truth.size() && !truth.empty());
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (std::lround(predictions[i]) == std::lround(truth[i])) ++correct;
  }
  return static_cast<double>(correct) / truth.size();
}

double MeanSquaredError(const std::vector<double>& predictions,
                        const std::vector<double>& truth) {
  PIVOT_CHECK(predictions.size() == truth.size() && !truth.empty());
  double sum = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double diff = predictions[i] - truth[i];
    sum += diff * diff;
  }
  return sum / truth.size();
}

Result<Dataset> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  Dataset data;
  std::string line;  // pivot:secret — raw rows hold feature and label bytes
  size_t expected_cols = 0;
  size_t row_index = 0;
  // pivot-taint: allow(secret-branch) local parsing by the data owner:
  // only the owner can observe its own load-time, no cross-party channel.
  while (std::getline(in, line)) {
    ++row_index;
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;  // pivot:secret — may contain a label value
    size_t col_index = 0;
    // pivot-taint: allow(secret-branch) local parsing by the data owner.
    while (std::getline(ss, cell, ',')) {
      ++col_index;
      char* end = nullptr;
      double v = std::strtod(cell.c_str(), &end);
      // pivot-taint: allow(secret-branch, non-ct-compare) pointer compare
      // against the cell's own start; local parse, owner-only timing.
      if (end == cell.c_str()) {
        // Redacted diagnostic: cell contents can be a label or feature
        // value, so report only coordinates and length, never the bytes.
        return Status::IoError("non-numeric cell in " + path + " at row " +
                               std::to_string(row_index) + ", col " +
                               std::to_string(col_index) + " (" +
                               std::to_string(cell.size()) + " bytes)");
      }
      row.push_back(v);
    }
    if (row.size() < 2) return Status::IoError("row needs >= 2 columns");
    if (expected_cols == 0) {
      expected_cols = row.size();
    } else if (row.size() != expected_cols) {
      return Status::IoError("ragged CSV row in " + path);
    }
    data.labels.push_back(row.back());
    row.pop_back();
    data.features.push_back(std::move(row));
  }
  if (data.num_samples() == 0) return Status::IoError("empty CSV " + path);
  return data;
}

Status SaveCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write " + path);
  for (size_t i = 0; i < data.num_samples(); ++i) {
    for (double v : data.features[i]) out << v << ',';
    out << data.labels[i] << '\n';
  }
  return Status::Ok();
}

}  // namespace pivot
