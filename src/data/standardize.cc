#include "data/standardize.h"

#include <cmath>

#include "common/check.h"

namespace pivot {

std::vector<double> StandardizeStats::Apply(
    const std::vector<double>& row) const {
  PIVOT_CHECK(row.size() == mean.size());
  std::vector<double> out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean[j]) / stddev[j];
  }
  return out;
}

StandardizeStats ComputeStandardizeStats(const Dataset& data) {
  const size_t n = data.num_samples();
  const size_t d = data.num_features();
  PIVOT_CHECK(n > 0);
  StandardizeStats stats;
  stats.mean.assign(d, 0.0);
  stats.stddev.assign(d, 0.0);
  for (const auto& row : data.features) {
    for (size_t j = 0; j < d; ++j) stats.mean[j] += row[j];
  }
  for (double& m : stats.mean) m /= n;
  for (const auto& row : data.features) {
    for (size_t j = 0; j < d; ++j) {
      const double diff = row[j] - stats.mean[j];
      stats.stddev[j] += diff * diff;
    }
  }
  for (double& s : stats.stddev) {
    s = std::sqrt(s / n);
    if (s < 1e-9) s = 1.0;  // constant column: leave it centered only
  }
  return stats;
}

Dataset Standardize(const Dataset& data, const StandardizeStats& stats) {
  Dataset out;
  out.labels = data.labels;
  out.features.reserve(data.num_samples());
  for (const auto& row : data.features) {
    out.features.push_back(stats.Apply(row));
  }
  return out;
}

}  // namespace pivot
