#ifndef PIVOT_DATA_DATASET_H_
#define PIVOT_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace pivot {

// A dense dataset: n samples, d features, one label per sample.
// For classification the label is a class id in [0, num_classes);
// for regression it is a real value.
struct Dataset {
  std::vector<std::vector<double>> features;  // [sample][feature]
  std::vector<double> labels;                 // [sample]

  size_t num_samples() const { return features.size(); }
  size_t num_features() const {
    return features.empty() ? 0 : features[0].size();
  }

  // Number of distinct integer class labels (classification datasets).
  int NumClasses() const;

  // Column `j` of the feature matrix.
  std::vector<double> Column(size_t j) const;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

// Random shuffle split. test_fraction in (0, 1).
TrainTestSplit SplitTrainTest(const Dataset& data, double test_fraction,
                              Rng& rng);

// The vertical federated layout of Section 3.1: every client holds all n
// samples but only a disjoint subset of the feature columns; the labels
// belong to the super client alone.
struct VerticalView {
  // Global feature indices owned by this client, in local column order.
  std::vector<int> feature_indices;
  // Local feature matrix [sample][local_feature].
  std::vector<std::vector<double>> features;

  size_t num_features() const { return feature_indices.size(); }
};

struct VerticalPartition {
  std::vector<VerticalView> views;  // one per client
  std::vector<double> labels;      // held by the super client only
};

// Deals the d features round-robin into `num_clients` disjoint views
// (client i gets features i, i+m, i+2m, ...). REQUIRES d >= num_clients.
VerticalPartition PartitionVertically(const Dataset& data, int num_clients);

// Reassembles a Dataset from a vertical partition (test helper; a real
// deployment never materializes this).
Dataset MergeVerticalPartition(const VerticalPartition& partition);

// ----- Metrics --------------------------------------------------------------

// Fraction of exact label matches.
double Accuracy(const std::vector<double>& predictions,
                const std::vector<double>& truth);

// Mean squared error.
double MeanSquaredError(const std::vector<double>& predictions,
                        const std::vector<double>& truth);

// ----- CSV ------------------------------------------------------------------

// Loads a headerless numeric CSV; the last column is the label.
Result<Dataset> LoadCsv(const std::string& path);
Status SaveCsv(const Dataset& data, const std::string& path);

}  // namespace pivot

#endif  // PIVOT_DATA_DATASET_H_
