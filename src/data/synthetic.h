#ifndef PIVOT_DATA_SYNTHETIC_H_
#define PIVOT_DATA_SYNTHETIC_H_

#include "data/dataset.h"

namespace pivot {

// Synthetic dataset generators, the analogue of the sklearn
// make_classification / make_regression generators the paper uses for its
// efficiency evaluation ("we generate synthetic datasets with the sklearn
// library", Section 8.1). They are also used to build matched-shape
// stand-ins for the three real datasets of Table 3 (see DESIGN.md,
// substitution table).

struct ClassificationSpec {
  int num_samples = 1000;
  int num_features = 15;
  int num_classes = 4;
  // Fraction of features that carry class signal; the rest are noise.
  double informative_fraction = 0.6;
  // Distance between class centroids in units of the noise std.
  double class_separation = 1.5;
  uint64_t seed = 1;
};

// Gaussian blobs around per-class centroids on the informative features,
// pure noise on the rest; feature values are bounded (|x| < 1000).
Dataset MakeClassification(const ClassificationSpec& spec);

struct RegressionSpec {
  int num_samples = 1000;
  int num_features = 15;
  // Fraction of features entering the target.
  double informative_fraction = 0.6;
  // Std of the label noise relative to the signal std.
  double noise = 0.1;
  // Adds piecewise (tree-friendly) structure on top of the linear signal.
  bool piecewise = true;
  uint64_t seed = 1;
};

// Linear target plus optional axis-aligned piecewise bumps (so trees have
// structure to find), with labels normalized to roughly [-10, 10].
Dataset MakeRegression(const RegressionSpec& spec);

}  // namespace pivot

#endif  // PIVOT_DATA_SYNTHETIC_H_
