#include "orchestrator/orchestrator.h"

#include <errno.h>
#include <signal.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/sha256.h"
#include "pivot/serialize.h"

namespace pivot {
namespace orch {

namespace {

// The loop's sleep granularity bounds fault-injection timing skew: a
// fault scheduled at T fires within [T, T + kLoopSliceMs + one tick).
constexpr int kLoopSliceMs = 20;

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return Status::IoError("mkdir failed: " + path);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Resolves a spec-relative path against the workdir, the same way the
// chdir'd children see it.
std::string ResolvePath(const std::string& workdir, const std::string& path) {
  if (path.empty() || path.front() == '/') return path;
  return workdir + "/" + path;
}

}  // namespace

int OrchestratorReport::ExitCode() const {
  if (ok) return 0;
  if (interrupted) return 4;
  return 1;
}

Orchestrator::Orchestrator(OrchestratorOptions options)
    : options_(std::move(options)) {}

Orchestrator::~Orchestrator() {
  for (PartyIo& io : io_) {
    ClosePipe(io.control);
    ClosePipe(io.go);
  }
}

Result<int> Orchestrator::SpawnParty(int party) {
  const FederationSpec& spec = options_.spec;
  ChildSpec child;
  child.argv = PartyCommand(spec, party, options_.cli,
                            io_[party].control.write_fd,
                            io_[party].go.read_fd);
  child.cwd = options_.workdir;
  child.stdout_path =
      options_.workdir + "/logs/party" + std::to_string(party) + ".out.log";
  child.stderr_path =
      options_.workdir + "/logs/party" + std::to_string(party) + ".err.log";
  child.inherit_fds = {io_[party].control.write_fd, io_[party].go.read_fd};
  Result<int> pid = SpawnChild(child);
  if (pid.ok()) {
    std::fprintf(stderr, "orchestrator: party %d spawned (pid %d)\n", party,
                 pid.value());
  } else {
    std::fprintf(stderr, "orchestrator: party %d spawn failed: %s\n", party,
                 pid.status().ToString().c_str());
  }
  return pid;
}

void Orchestrator::DrainControl(int64_t now_ms) {
  for (int p = 0; p < options_.spec.parties; ++p) {
    PartyIo& io = io_[p];
    const std::string chunk = ReadAvailable(io.control.read_fd);
    if (chunk.empty()) continue;
    io.buffer += chunk;
    size_t start = 0;
    for (;;) {
      const size_t nl = io.buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = io.buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.rfind("READY nonce=", 0) == 0) {
        supervisor_->NoteReady(p, line.substr(12), now_ms);
      } else if (!line.empty()) {
        // HELLO / ALIVE / BYE all count as liveness for the stall clock.
        supervisor_->NoteControl(p, now_ms);
      }
    }
    io.buffer.erase(0, start);
  }
}

void Orchestrator::ReapAll(int64_t now_ms) {
  for (;;) {
    Result<ExitEvent> ev = ReapChild();
    if (!ev.ok()) break;  // NotFound = nothing waiting; errors end the pass
    const int party = supervisor_->PartyForPid(ev.value().pid);
    if (party < 0) {
      std::fprintf(stderr, "orchestrator: reaped unknown pid %d (%s)\n",
                   ev.value().pid, ev.value().Describe().c_str());
      continue;
    }
    const int code = ev.value().exited ? ev.value().exit_code
                                       : 128 + ev.value().signal;
    std::fprintf(stderr, "orchestrator: party %d (pid %d) %s\n", party,
                 ev.value().pid, ev.value().Describe().c_str());
    supervisor_->NoteExited(party, code, ev.value().Describe(), now_ms);
  }
}

void Orchestrator::FireFaults(int64_t elapsed_ms) {
  for (const ProcFault& fault : options_.faults.TakeDue(elapsed_ms)) {
    const PartyStatus status = supervisor_->Describe(fault.party);
    if (status.pid <= 0) {
      std::fprintf(stderr,
                   "orchestrator: fault %s skipped (party %d has no live "
                   "process, phase %s)\n",
                   fault.ToString().c_str(), fault.party,
                   PartyPhaseName(status.phase));
      continue;
    }
    int signo = SIGKILL;
    switch (fault.kind) {
      case ProcFaultKind::kKill:
        signo = SIGKILL;
        break;
      case ProcFaultKind::kStop:
        signo = SIGSTOP;
        break;
      case ProcFaultKind::kCont:
        signo = SIGCONT;
        break;
      case ProcFaultKind::kTerm:
        signo = SIGTERM;
        break;
    }
    std::fprintf(stderr, "orchestrator: chaos fault %s -> pid %d\n",
                 fault.ToString().c_str(), status.pid);
    const Status st = SignalProcess(status.pid, signo);
    if (!st.ok()) {
      std::fprintf(stderr, "orchestrator: fault delivery: %s\n",
                   st.ToString().c_str());
    }
  }
}

void Orchestrator::Teardown(const char* why) {
  std::fprintf(stderr, "orchestrator: tearing the federation down (%s)\n",
               why);
  // From here exits are facts for the report, not supervision events:
  // without this, the teardown SIGTERMs would read as crashes and spin
  // up pointless backoff/generation-restart state.
  supervisor_->Quiesce();
  const int parties = options_.spec.parties;
  int live = 0;
  for (int p = 0; p < parties; ++p) {
    const PartyStatus status = supervisor_->Describe(p);
    if (status.pid > 0) {
      // SIGCONT first so a chaos-frozen party can see the SIGTERM.
      (void)SignalProcess(status.pid, SIGCONT);
      (void)SignalProcess(status.pid, SIGTERM);
      ++live;
    }
  }
  if (live == 0) return;
  const int64_t deadline = SteadyClockMs() + options_.spec.term_grace_ms;
  while (SteadyClockMs() < deadline) {
    ReapAll(SteadyClockMs());
    live = 0;
    for (int p = 0; p < parties; ++p) {
      if (supervisor_->Describe(p).pid > 0) ++live;
    }
    if (live == 0) return;
    SleepMs(kLoopSliceMs);
  }
  // Grace expired: no process outlives the orchestrator.
  for (int p = 0; p < parties; ++p) {
    const PartyStatus status = supervisor_->Describe(p);
    if (status.pid > 0) {
      std::fprintf(stderr,
                   "orchestrator: party %d (pid %d) ignored SIGTERM for "
                   "%d ms; force-killing it\n",
                   p, status.pid, options_.spec.term_grace_ms);
      (void)SignalProcess(status.pid, SIGKILL);
    }
  }
  // One bounded reap sweep so the report reflects the kills.
  const int64_t kill_deadline = SteadyClockMs() + 2'000;
  while (SteadyClockMs() < kill_deadline) {
    ReapAll(SteadyClockMs());
    int remaining = 0;
    for (int p = 0; p < parties; ++p) {
      if (supervisor_->Describe(p).pid > 0) ++remaining;
    }
    if (remaining == 0) break;
    SleepMs(kLoopSliceMs);
  }
}

void Orchestrator::CollectModels(OrchestratorReport& report) {
  const std::string prefix =
      ResolvePath(options_.workdir, options_.spec.out);
  Sha256 combined;
  bool complete = true;
  for (PartyOutcome& outcome : report.parties) {
    outcome.model_path =
        prefix + ".party" + std::to_string(outcome.party) + ".bin";
    Result<Bytes> blob = LoadModelBytes(outcome.model_path);
    if (!blob.ok()) {
      complete = false;
      continue;
    }
    outcome.model_sha256 = HexDigest(Sha256::Hash(blob.value()));
    combined.Update(outcome.model_sha256);
  }
  if (complete) {
    report.model_fingerprint = HexDigest(combined.Finish());
  }
}

void Orchestrator::WriteReport(OrchestratorReport& report) {
  report.report_path = options_.workdir + "/report.json";
  std::string json = "{\n";
  json += "  \"ok\": " + std::string(report.ok ? "true" : "false") + ",\n";
  json += "  \"interrupted\": " +
          std::string(report.interrupted ? "true" : "false") + ",\n";
  json += "  \"root_cause_party\": " +
          std::to_string(report.root_cause_party) + ",\n";
  json += "  \"root_cause\": \"" + JsonEscape(report.root_cause) + "\",\n";
  json += "  \"wall_ms\": " + std::to_string(report.wall_ms) + ",\n";
  json += "  \"model_fingerprint\": \"" +
          JsonEscape(report.model_fingerprint) + "\",\n";
  json += "  \"parties\": [\n";
  for (size_t i = 0; i < report.parties.size(); ++i) {
    const PartyOutcome& p = report.parties[i];
    json += "    {\"party\": " + std::to_string(p.party) +
            ", \"phase\": \"" + JsonEscape(p.phase) +
            "\", \"restarts\": " + std::to_string(p.restarts) +
            ", \"last_exit_code\": " + std::to_string(p.last_exit_code) +
            ", \"last_exit\": \"" + JsonEscape(p.last_exit) +
            "\", \"log\": \"" + JsonEscape(p.log_path) +
            "\", \"model\": \"" + JsonEscape(p.model_path) +
            "\", \"model_sha256\": \"" + JsonEscape(p.model_sha256) + "\"}";
    json += (i + 1 < report.parties.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen(report.report_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "orchestrator: cannot write %s\n",
                 report.report_path.c_str());
    report.report_path.clear();
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

Result<OrchestratorReport> Orchestrator::Run() {
  FederationSpec& spec = options_.spec;
  if (options_.workdir.empty() || options_.workdir.front() != '/') {
    return Status::InvalidArgument(
        "orchestrator: workdir must be an absolute path");
  }
  PIVOT_RETURN_IF_ERROR(EnsureDir(options_.workdir));
  PIVOT_RETURN_IF_ERROR(EnsureDir(options_.workdir + "/logs"));
  if (spec.addresses.empty()) {
    // Auto-assign a unix-socket mesh under the workdir: zero config for
    // single-host federations, per-run paths for free.
    for (int p = 0; p < spec.parties; ++p) {
      spec.addresses.push_back("unix:" + options_.workdir + "/p" +
                               std::to_string(p) + ".sock");
    }
  }
  PIVOT_RETURN_IF_ERROR(ValidateFederationSpec(spec));

  io_.resize(spec.parties);
  for (int p = 0; p < spec.parties; ++p) {
    // Both read ends are non-blocking: the orchestrator polls control
    // from its loop, and the CHILD polls go (it inherits the read end,
    // and O_NONBLOCK travels with the open file description) so the
    // barrier wait can interleave abort and shutdown checks.
    PIVOT_ASSIGN_OR_RETURN(io_[p].control, MakePipe(/*nonblocking_read=*/true));
    PIVOT_ASSIGN_OR_RETURN(io_[p].go, MakePipe(/*nonblocking_read=*/true));
  }

  ProcessSupervisorConfig sup_config;
  sup_config.max_restarts = spec.max_restarts;
  sup_config.backoff_base_ms = spec.backoff_base_ms;
  sup_config.backoff_max_ms = spec.backoff_max_ms;
  sup_config.ready_timeout_ms = spec.ready_timeout_ms;
  sup_config.stall_timeout_ms = spec.stall_timeout_ms;
  sup_config.restart_grace_ms = spec.term_grace_ms;

  ProcessSupervisor::Callbacks callbacks;
  callbacks.spawn = [this](int party) { return SpawnParty(party); };
  callbacks.force_kill = [](int /*party*/, int pid,
                            const std::string& reason) {
    std::fprintf(stderr, "orchestrator: %s\n", reason.c_str());
    // SIGCONT first: SIGKILL is queued even for a stopped process, but
    // thawing keeps the kernel from leaving it in T state under ptrace.
    (void)SignalProcess(pid, SIGCONT);
    (void)SignalProcess(pid, SIGKILL);
  };
  callbacks.request_restart = [](int party, int pid) {
    std::fprintf(stderr,
                 "orchestrator: peer crash doomed this mesh generation; "
                 "asking party %d (pid %d) to restart (budget-free)\n",
                 party, pid);
    // SIGCONT first so a chaos-frozen party can act on the SIGTERM.
    (void)SignalProcess(pid, SIGCONT);
    (void)SignalProcess(pid, SIGTERM);
  };
  callbacks.send_go = [this](int party, const std::string& nonce) {
    std::fprintf(stderr, "orchestrator: barrier released for party %d\n",
                 party);
    (void)WriteAll(io_[party].go.write_fd, "GO " + nonce + "\n");
  };
  callbacks.escalate = [this](int party, const Status& cause) {
    if (failed_party_ < 0) {
      failed_party_ = party;
      failure_ = cause;
    }
    std::fprintf(stderr, "orchestrator: ESCALATION: %s\n",
                 cause.ToString().c_str());
  };
  supervisor_ = std::make_unique<ProcessSupervisor>(spec.parties, sup_config,
                                                    callbacks);

  std::fprintf(stderr,
               "orchestrator: %d-party federation in %s (budget: %d "
               "restarts/party, backoff %d..%d ms)\n",
               spec.parties, options_.workdir.c_str(),
               sup_config.max_restarts, sup_config.backoff_base_ms,
               sup_config.backoff_max_ms);
  if (!options_.faults.faults().empty()) {
    std::fprintf(stderr, "orchestrator: chaos plan: %s\n",
                 options_.faults.ToString().c_str());
  }

  OrchestratorReport report;
  const int64_t start_ms = SteadyClockMs();
  // The supervise loop. Bounded by: AllDone, escalation (AnyFailed), the
  // federation deadline, or operator interrupt — every iteration makes
  // one bounded pass and sleeps at most kLoopSliceMs.
  for (;;) {
    const int64_t now_ms = SteadyClockMs();
    const int64_t elapsed_ms = now_ms - start_ms;

    if (options_.interrupted && options_.interrupted()) {
      report.interrupted = true;
      report.root_cause = "interrupted by the operator";
      Teardown("operator interrupt");
      break;
    }
    DrainControl(now_ms);
    ReapAll(now_ms);
    FireFaults(elapsed_ms);
    const int hint = supervisor_->Tick(now_ms);

    if (supervisor_->AllDone()) {
      report.ok = true;
      break;
    }
    if (supervisor_->AnyFailed()) {
      report.root_cause_party = failed_party_;
      report.root_cause = failure_.ok() ? "restart budget exhausted"
                                        : failure_.message();
      Teardown("restart budget exhausted");
      break;
    }
    if (options_.deadline_ms > 0 && elapsed_ms > options_.deadline_ms) {
      report.root_cause = "federation deadline of " +
                          std::to_string(options_.deadline_ms) +
                          " ms exceeded";
      Teardown("deadline exceeded");
      break;
    }
    SleepMs(std::min(hint, kLoopSliceMs));
  }
  report.wall_ms = SteadyClockMs() - start_ms;

  for (int p = 0; p < spec.parties; ++p) {
    const PartyStatus status = supervisor_->Describe(p);
    PartyOutcome outcome;
    outcome.party = p;
    outcome.phase = PartyPhaseName(status.phase);
    outcome.restarts = status.restarts;
    outcome.last_exit_code = status.last_exit_code;
    outcome.last_exit = status.last_exit;
    outcome.log_path =
        options_.workdir + "/logs/party" + std::to_string(p) + ".err.log";
    report.parties.push_back(std::move(outcome));
  }
  if (report.ok) CollectModels(report);
  WriteReport(report);

  std::fprintf(stderr, "orchestrator: %s in %lld ms%s%s\n",
               report.ok ? "federation complete"
                         : (report.interrupted ? "interrupted" : "FAILED"),
               static_cast<long long>(report.wall_ms),
               report.root_cause.empty() ? "" : ": ",
               report.root_cause.c_str());
  return report;
}

}  // namespace orch
}  // namespace pivot
