#ifndef PIVOT_ORCHESTRATOR_SUPERVISOR_H_
#define PIVOT_ORCHESTRATOR_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace pivot {
namespace orch {

// Process-level supervision state machine (DESIGN.md, "Orchestration
// model"): the process twin of net/supervisor.h's ConnectionSupervisor,
// with the same architecture — a passive state machine that owns no
// thread, no pid and no pipe. The orchestrator's supervise loop calls
// Tick(now_ms) and feeds it events (NoteExited / NoteReady /
// NoteControl); every side effect (spawning a party, force-killing a
// stalled one, releasing the readiness barrier, escalating to teardown)
// goes through the Callbacks struct. That keeps restart budgets,
// deterministic backoff and barrier release unit-testable with fake
// clocks and recording callbacks (tests/orchestrator_test.cc), exactly
// like the connection supervisor's Tick tests.
//
// Per-party lifecycle:
//
//   kIdle ──spawn──► kLaunching ──READY──► kWaiting ──GO──► kRunning
//     ▲                  │ ready timeout       │                │ READY again
//     │                  ▼ (SIGKILL)           │ exit           │ (peer died,
//     │              [exit event]◄─────────────┘◄── stall ──────┤  mesh rebuilt)
//     │                  │                          (SIGKILL)   ▼
//     ├──backoff──── kBackoff ◄── budget left ── exit!=0 ◄── kWaiting
//     │                  │            │
//     │                  │            └─ every live PEER ──► kRestarting
//     │                  │                (SIGTERM; exits are budget-free)
//     │                  │                       │ exit (any code)
//     │                  └── budget ◄────────────┘
//     │                      exhausted ──► kFailed (escalate, naming
//     │                                    the crashed party)
//     └── kRestarting exits respawn here, synced to the generation start
//   exit 0 from any phase ──► kDone
//
// The readiness barrier: a party reports READY once its socket mesh is
// fully established (every peer connected), then blocks until the
// orchestrator answers GO. A slow-starting or respawned party cannot
// burn its peers' in-process retry budgets, because peers wait at the
// barrier instead of timing out against a half-up mesh.
//
// Generation restart: a crash dooms the whole mesh generation, not just
// the crashed party. Handshakes are incarnation-stamped (net/socket.h),
// so the respawned process's fresh incarnation aborts every survivor's
// established attempt; survivors then redial with fresh incarnations of
// their own, aborting each other in turn. Letting survivors ride that
// out is a livelock: convergence needs all parties' final attempts to
// establish in one overlapping window, which staggered respawns never
// reliably produce (observed: in-process attempt budgets burned, 60 s
// wedges, 18 barrier releases without convergence). Instead the
// supervisor treats the crash as fatal to the generation: the crashed
// party burns one restart and backs off as usual, and every live peer
// is asked to restart too (SIGTERM -> graceful exit with checkpoints
// persisted -> budget-FREE respawn, synced to the crashed party's
// respawn time). All processes then cold-start together — the one mesh
// formation case that is deterministic — and resume from the min-index
// checkpoint, bit-identical. Budget-free collateral exits keep the
// restart budget attributing blame to the party that actually crashed.
// A kDone peer is pulled back in the same way (no process to SIGTERM;
// it just respawns): resume needs every party, and a finished party
// replays deterministically to the same model bytes.
//
// Release rule: a waiting party is released as soon as NO party is down
// (every phase is kWaiting/kRunning/kDone) — deliberately weaker than
// "all parties waiting". Strict simultaneity deadlocks on the READY/GO
// race: a party whose mesh attempt dies between sending READY and
// reading GO re-arms its barrier with a fresh nonce, while a peer that
// accepted its own GO is already kRunning, blocked in Recv on the
// waiting parties — so "all waiting" would never hold again. With the
// weaker rule the late party is simply released into the live mesh; if
// that mesh generation is already doomed the attempt aborts and
// re-enters the barrier, costing one retry instead of a deadlock.

struct ProcessSupervisorConfig {
  // Respawns per party beyond its first launch; exhaustion escalates.
  int max_restarts = 3;
  // Deterministic exponential respawn backoff: base * 2^(restart-1),
  // capped at max. No jitter — chaos runs must replay identically.
  int backoff_base_ms = 250;
  int backoff_max_ms = 2'000;
  // Spawn -> READY deadline; a party that cannot bring its mesh up in
  // time is SIGKILLed and treated as crashed (burns a restart).
  int ready_timeout_ms = 60'000;
  // Control-pipe silence while running; a live-but-mute process (hung,
  // or SIGSTOPped by the chaos driver) is SIGKILLed and respawned, so a
  // wedged party converges to the same crash-resume path.
  int stall_timeout_ms = 60'000;
  // SIGTERM -> exit deadline for a collateral generation restart; a
  // party that ignores the request is SIGKILLed (still budget-free).
  int restart_grace_ms = 5'000;
};

enum class PartyPhase {
  kIdle,        // not yet spawned
  kLaunching,   // spawned; establishing the mesh, READY not yet seen
  kWaiting,     // READY received; blocked on the GO barrier
  kRunning,     // GO sent; training
  kRestarting,  // a peer crashed; asked to exit for a generation restart
  kBackoff,     // exited abnormally; respawn scheduled
  kDone,        // exited 0
  kFailed,      // restart budget exhausted; escalated
};

const char* PartyPhaseName(PartyPhase phase);

// Snapshot of one party's supervision state, for reports and tests.
struct PartyStatus {
  PartyPhase phase = PartyPhase::kIdle;
  int pid = -1;             // -1 when no live process
  int restarts = 0;         // respawns consumed
  int last_exit_code = -1;  // -1 = none yet; signals encoded as 128+sig
  std::string last_exit;    // human-readable last exit description
};

class ProcessSupervisor {
 public:
  struct Callbacks {
    // Launch party `party`'s process; returns its pid. A spawn error is
    // treated like an immediate crash (burns a restart).
    std::function<Result<int>(int party)> spawn;
    // Force-kill a party that missed its ready deadline or stalled.
    std::function<void(int party, int pid, const std::string& reason)>
        force_kill;
    // Release the barrier for one party: answer its `nonce` READY with GO.
    std::function<void(int party, const std::string& nonce)> send_go;
    // Ask a live peer of a crashed party to exit for a generation
    // restart (SIGTERM; its subsequent exit is budget-free).
    std::function<void(int party, int pid)> request_restart;
    // Restart budget exhausted: escalate to federation teardown. `cause`
    // names the party and why it is beyond recovery.
    std::function<void(int party, const Status& cause)> escalate;
  };

  ProcessSupervisor(int num_parties, ProcessSupervisorConfig config,
                    Callbacks callbacks);

  // Event feed from the supervise loop.
  // A reaped child. `exit_code` is the wait status description: for a
  // normal exit the code, for a signal death 128+signo (shell
  // convention); `detail` is a human-readable description for reports.
  void NoteExited(int party, int exit_code, const std::string& detail,
                  int64_t now_ms);
  // Party reported READY over the control pipe with barrier nonce.
  void NoteReady(int party, const std::string& nonce, int64_t now_ms);
  // Any control-pipe traffic from the party (HELLO/ALIVE/BYE): feeds the
  // stall detector.
  void NoteControl(int party, int64_t now_ms);

  // Teardown has been decided: from here on NoteExited only records exit
  // facts for the report (exit 0 still lands in kDone) — no respawns, no
  // budget burn, no generation restarts from the teardown SIGTERMs.
  void Quiesce();

  // One supervision pass: spawns parties that are due (first launch or
  // backoff expiry), kills ready-timeout and stall offenders, releases
  // the barrier when every party is waiting at it, escalates exhausted
  // budgets. Returns a sleep hint in ms (1..backoff_base_ms).
  int Tick(int64_t now_ms);

  PartyStatus Describe(int party) const;
  // pid -> party for reap routing; -1 if unknown.
  int PartyForPid(int pid) const;
  // True when every party reached kDone.
  bool AllDone() const;
  // True when any party reached kFailed.
  bool AnyFailed() const;

  const ProcessSupervisorConfig& config() const { return config_; }

 private:
  struct PartySlot {
    PartyPhase phase = PartyPhase::kIdle;
    int pid = -1;
    int restarts = 0;
    int backoff_ms = 0;
    int64_t respawn_at_ms = 0;   // valid in kBackoff
    int64_t restart_deadline_ms = 0;  // valid in kRestarting
    int64_t spawned_at_ms = 0;   // valid from spawn
    int64_t last_control_ms = 0;
    std::string ready_nonce;     // valid in kWaiting
    bool kill_sent = false;      // force-kill issued, waiting for reap
    int last_exit_code = -1;
    std::string last_exit;
  };

  // Marks an abnormal exit: either schedules a respawn (budget left) or
  // flips to kFailed and returns the escalation status.
  Status HandleCrashLocked(PartySlot& slot, int party, int64_t now_ms);
  // Respawn time for a budget-free generation-restart exit: no earlier
  // than any pending respawn, so the generation cold-starts together.
  int64_t SyncedRespawnLocked(int64_t now_ms) const;

  int num_parties_;
  ProcessSupervisorConfig config_;
  Callbacks callbacks_;
  mutable std::mutex mu_;
  bool quiesced_ = false;
  std::vector<PartySlot> parties_;
};

}  // namespace orch
}  // namespace pivot

#endif  // PIVOT_ORCHESTRATOR_SUPERVISOR_H_
