#ifndef PIVOT_ORCHESTRATOR_ORCHESTRATOR_H_
#define PIVOT_ORCHESTRATOR_ORCHESTRATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "orchestrator/fault.h"
#include "orchestrator/process.h"
#include "orchestrator/spec.h"
#include "orchestrator/supervisor.h"

namespace pivot {
namespace orch {

// The federation orchestrator: turns an N-party federation into one
// command. It renders per-party command lines from a FederationSpec,
// spawns one `pivot_cli party` process per party with captured logs,
// and runs a strictly single-threaded supervise loop that
//
//   - drains the per-party control pipes (HELLO/READY/ALIVE/BYE),
//   - reaps exited children (waitpid, non-blocking),
//   - fires due process-level chaos faults (SIGKILL/SIGSTOP/...),
//   - ticks the ProcessSupervisor (respawns with deterministic backoff,
//     ready/stall force-kills, barrier release, budget escalation),
//
// until every party exits 0 (success), a restart budget is exhausted
// (teardown naming the root-cause party), the deadline passes, or the
// operator interrupts it. Teardown is always graceful-first: SIGTERM to
// every live party, a term_grace_ms wait for checkpoint-flush + exit,
// then SIGKILL for stragglers — no process outlives the orchestrator.
//
// Single-threadedness is load-bearing: it is what makes fork() safe
// (see process.h) and it means every decision in the loop is ordered,
// so a chaos run driven by a seeded ProcFaultPlan is reproducible.
//
// Progress goes to stderr; results go into the returned report and a
// report.json in the workdir. Nothing here prints to stdout (the
// secret-print lint rule applies to src/ as usual).

struct OrchestratorOptions {
  FederationSpec spec;
  // Absolute run directory: children chdir here, so every relative path
  // in the spec (out, checkpoint_dir) is isolated per run. Holds
  // logs/party<i>.{out,err}.log, auto-assigned unix sockets, report.json.
  std::string workdir;
  // Path to the pivot_cli binary used for party processes.
  std::string cli;
  // Deterministic process-fault schedule; empty = fault-free run.
  ProcFaultPlan faults;
  // Whole-federation wall-clock budget; 0 = unlimited. Exceeding it
  // triggers teardown with a deadline root cause.
  int64_t deadline_ms = 0;
  // Polled each loop pass; true => graceful teardown, exit code 4. The
  // CLI wires its SIGTERM/SIGINT flag in here.
  std::function<bool()> interrupted;
};

struct PartyOutcome {
  int party = 0;
  std::string phase;        // final PartyPhaseName
  int restarts = 0;         // respawns consumed
  int last_exit_code = -1;  // signals encoded as 128+sig
  std::string last_exit;
  std::string log_path;     // captured stderr
  std::string model_path;   // this party's model view
  std::string model_sha256; // empty when the view was never written
};

struct OrchestratorReport {
  bool ok = false;
  bool interrupted = false;
  int root_cause_party = -1;   // -1 when no single party is to blame
  std::string root_cause;      // empty on success
  int64_t wall_ms = 0;
  // SHA256 over the concatenated per-party view digests: one string
  // that two orchestrated runs can compare for bit-identity.
  std::string model_fingerprint;
  std::vector<PartyOutcome> parties;
  std::string report_path;     // the report.json written in the workdir

  // 0 = success, 4 = interrupted by the operator, 1 = any other failure.
  int ExitCode() const;
};

class Orchestrator {
 public:
  explicit Orchestrator(OrchestratorOptions options);
  ~Orchestrator();

  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  // Runs the federation to completion. Infrastructure errors (bad
  // workdir, pipe exhaustion) surface as a Status; protocol-level
  // failures (budget exhaustion, deadline) come back as a report with
  // ok=false and a root cause.
  Result<OrchestratorReport> Run();

 private:
  struct PartyIo {
    Pipe control;        // child writes, orchestrator reads (non-blocking)
    Pipe go;             // orchestrator writes, child reads
    std::string buffer;  // partial control line carried across reads
  };

  Result<int> SpawnParty(int party);
  void DrainControl(int64_t now_ms);
  void ReapAll(int64_t now_ms);
  void FireFaults(int64_t elapsed_ms);
  // SIGTERM every live party, wait term_grace_ms, SIGKILL stragglers.
  void Teardown(const char* why);
  void CollectModels(OrchestratorReport& report);
  void WriteReport(OrchestratorReport& report);

  OrchestratorOptions options_;
  std::vector<PartyIo> io_;
  std::unique_ptr<ProcessSupervisor> supervisor_;
  // Set by the escalate callback; first escalation wins.
  int failed_party_ = -1;
  Status failure_ = Status::Ok();
};

}  // namespace orch
}  // namespace pivot

#endif  // PIVOT_ORCHESTRATOR_ORCHESTRATOR_H_
