#include "orchestrator/process.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace pivot {
namespace orch {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

// Child-side helper between fork and exec: async-signal-safe calls only
// (open/dup2/close/chdir/execv/_exit — no allocation, no stdio).
[[noreturn]] void ExecChild(const ChildSpec& spec,
                            const std::vector<char*>& argv) {
#ifdef __linux__
  // Die with the orchestrator: a SIGKILLed supervisor must not leak a
  // silent background federation.
  ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif
  if (!spec.cwd.empty() && ::chdir(spec.cwd.c_str()) != 0) _exit(125);
  if (!spec.stdout_path.empty()) {
    int fd = ::open(spec.stdout_path.c_str(),
                    O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0 || ::dup2(fd, STDOUT_FILENO) < 0) _exit(126);
    if (fd != STDOUT_FILENO) ::close(fd);
  }
  if (!spec.stderr_path.empty()) {
    int fd = ::open(spec.stderr_path.c_str(),
                    O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0 || ::dup2(fd, STDERR_FILENO) < 0) _exit(126);
    if (fd != STDERR_FILENO) ::close(fd);
  }
  // Close everything above stderr except the fds this child inherits, so
  // no party holds a sibling's control pipe open (a dangling write end
  // would keep the orchestrator's read side from ever seeing EOF).
  const long max_fd = ::sysconf(_SC_OPEN_MAX);
  for (int fd = STDERR_FILENO + 1; fd < (max_fd > 0 ? max_fd : 1024); ++fd) {
    if (std::find(spec.inherit_fds.begin(), spec.inherit_fds.end(), fd) ==
        spec.inherit_fds.end()) {
      ::close(fd);
    }
  }
  ::execv(argv[0], argv.data());
  _exit(127);
}

}  // namespace

Result<int> SpawnChild(const ChildSpec& spec) {
  if (spec.argv.empty()) {
    return Status::InvalidArgument("SpawnChild: empty argv");
  }
  // Built before fork: the child must not allocate.
  std::vector<char*> argv;
  argv.reserve(spec.argv.size() + 1);
  for (const std::string& a : spec.argv) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return Errno("fork failed");
  if (pid == 0) ExecChild(spec, argv);
  return static_cast<int>(pid);
}

std::string ExitEvent::Describe() const {
  if (exited) return "exit code " + std::to_string(exit_code);
  if (signaled) {
    const char* name = ::strsignal(signal);
    return "killed by signal " + std::to_string(signal) +
           (name != nullptr ? std::string(" (") + name + ")" : "");
  }
  return "unknown exit";
}

Result<ExitEvent> ReapChild() {
  int wstatus = 0;
  const pid_t pid = ::waitpid(-1, &wstatus, WNOHANG);
  if (pid == 0 || (pid < 0 && errno == ECHILD)) {
    return Status::NotFound("no exited child");
  }
  if (pid < 0) return Errno("waitpid failed");
  ExitEvent ev;
  ev.pid = static_cast<int>(pid);
  if (WIFEXITED(wstatus)) {
    ev.exited = true;
    ev.exit_code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    ev.signaled = true;
    ev.signal = WTERMSIG(wstatus);
  }
  return ev;
}

Status SignalProcess(int pid, int signo) {
  if (pid <= 0) {
    // Guard against kill(0, ...) / kill(-1, ...): a stale pid must never
    // fan a chaos signal out to the whole process group.
    return Status::InvalidArgument("SignalProcess: bad pid " +
                                   std::to_string(pid));
  }
  if (::kill(static_cast<pid_t>(pid), signo) != 0) {
    if (errno == ESRCH) {
      return Status::NotFound("process " + std::to_string(pid) + " is gone");
    }
    return Errno("kill(" + std::to_string(pid) + ", " +
                 std::to_string(signo) + ") failed");
  }
  return Status::Ok();
}

Result<Pipe> MakePipe(bool nonblocking_read) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return Errno("pipe failed");
  if (nonblocking_read) {
    const int flags = ::fcntl(fds[0], F_GETFL, 0);
    if (flags < 0 || ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK) < 0) {
      const Status st = Errno("fcntl(O_NONBLOCK) failed");
      ::close(fds[0]);
      ::close(fds[1]);
      return st;
    }
  }
  Pipe p;
  p.read_fd = fds[0];
  p.write_fd = fds[1];
  return p;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

void ClosePipe(Pipe& pipe) {
  CloseFd(pipe.read_fd);
  CloseFd(pipe.write_fd);
  pipe.read_fd = pipe.write_fd = -1;
}

std::string ReadAvailable(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN (drained), EOF, or error: caller only needs the bytes
  }
  return out;
}

Status WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write failed");
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

void SleepMs(int ms) {
  timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1'000'000L;
  ::nanosleep(&ts, nullptr);
}

int64_t SteadyClockMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace orch
}  // namespace pivot
