#include "orchestrator/spec.h"

#include <cstdio>
#include <map>

namespace pivot {
namespace orch {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

Result<int> ParseInt(const std::string& key, const std::string& value) {
  if (value.empty()) {
    return Status::InvalidArgument("spec: empty value for " + key);
  }
  size_t pos = 0;
  long v = 0;
  bool neg = false;
  if (value[pos] == '-') {
    neg = true;
    ++pos;
  }
  if (pos == value.size()) {
    return Status::InvalidArgument("spec: bad integer for " + key + ": '" +
                                   value + "'");
  }
  for (; pos < value.size(); ++pos) {
    if (value[pos] < '0' || value[pos] > '9') {
      return Status::InvalidArgument("spec: bad integer for " + key + ": '" +
                                     value + "'");
    }
    v = v * 10 + (value[pos] - '0');
    if (v > 2'000'000'000) {
      return Status::InvalidArgument("spec: integer out of range for " + key);
    }
  }
  return static_cast<int>(neg ? -v : v);
}

}  // namespace

Status ValidateFederationSpec(const FederationSpec& spec) {
  if (spec.parties < 1) {
    return Status::InvalidArgument("spec: parties must be >= 1");
  }
  if (spec.super_client < 0 || spec.super_client >= spec.parties) {
    return Status::InvalidArgument(
        "spec: super = " + std::to_string(spec.super_client) +
        " out of range for " + std::to_string(spec.parties) + " parties");
  }
  if (spec.data.empty()) {
    return Status::InvalidArgument("spec: data is required");
  }
  if (spec.out.empty()) {
    return Status::InvalidArgument("spec: out is required");
  }
  if (!spec.addresses.empty() &&
      static_cast<int>(spec.addresses.size()) != spec.parties) {
    return Status::InvalidArgument(
        "spec: got " + std::to_string(spec.addresses.size()) +
        " address entries for " + std::to_string(spec.parties) + " parties");
  }
  for (size_t i = 0; i < spec.addresses.size(); ++i) {
    if (spec.addresses[i].empty()) {
      return Status::InvalidArgument("spec: address." + std::to_string(i) +
                                     " missing (addresses must be "
                                     "contiguous from 0)");
    }
  }
  if (spec.task != "classification" && spec.task != "regression") {
    return Status::InvalidArgument("spec: task must be classification or "
                                   "regression, got '" + spec.task + "'");
  }
  if (spec.protocol != "basic" && spec.protocol != "enhanced") {
    return Status::InvalidArgument("spec: protocol must be basic or "
                                   "enhanced, got '" + spec.protocol + "'");
  }
  if (spec.max_restarts < 0 || spec.party_max_restarts < 0) {
    return Status::InvalidArgument("spec: restart budgets must be >= 0");
  }
  if (spec.backoff_base_ms < 1 || spec.backoff_max_ms < spec.backoff_base_ms) {
    return Status::InvalidArgument(
        "spec: need 1 <= backoff_base_ms <= backoff_max_ms");
  }
  if (spec.ready_timeout_ms < 1 || spec.stall_timeout_ms < 1 ||
      spec.term_grace_ms < 0 || spec.go_timeout_ms < 1) {
    return Status::InvalidArgument("spec: timeouts must be positive");
  }
  return Status::Ok();
}

Result<FederationSpec> ParseFederationSpec(const std::string& text) {
  FederationSpec spec;
  std::map<int, std::string> addresses;
  size_t start = 0;
  int lineno = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(start, nl - start);
    start = nl + 1;
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("spec line " + std::to_string(lineno) +
                                     ": expected 'key = value', got '" +
                                     line + "'");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));

    if (key.rfind("address.", 0) == 0) {
      PIVOT_ASSIGN_OR_RETURN(int idx, ParseInt(key, key.substr(8)));
      if (idx < 0) {
        return Status::InvalidArgument("spec: bad address index in " + key);
      }
      addresses[idx] = value;
      continue;
    }

    if (key == "parties") {
      PIVOT_ASSIGN_OR_RETURN(spec.parties, ParseInt(key, value));
    } else if (key == "super") {
      PIVOT_ASSIGN_OR_RETURN(spec.super_client, ParseInt(key, value));
    } else if (key == "data") {
      spec.data = value;
    } else if (key == "out") {
      spec.out = value;
    } else if (key == "checkpoint_dir") {
      spec.checkpoint_dir = value;
    } else if (key == "task") {
      spec.task = value;
    } else if (key == "classes") {
      PIVOT_ASSIGN_OR_RETURN(spec.classes, ParseInt(key, value));
    } else if (key == "depth") {
      PIVOT_ASSIGN_OR_RETURN(spec.depth, ParseInt(key, value));
    } else if (key == "splits") {
      PIVOT_ASSIGN_OR_RETURN(spec.splits, ParseInt(key, value));
    } else if (key == "protocol") {
      spec.protocol = value;
    } else if (key == "key_bits") {
      PIVOT_ASSIGN_OR_RETURN(spec.key_bits, ParseInt(key, value));
    } else if (key == "crypto_threads") {
      PIVOT_ASSIGN_OR_RETURN(spec.crypto_threads, ParseInt(key, value));
    } else if (key == "party_max_restarts") {
      PIVOT_ASSIGN_OR_RETURN(spec.party_max_restarts, ParseInt(key, value));
    } else if (key == "max_restarts") {
      PIVOT_ASSIGN_OR_RETURN(spec.max_restarts, ParseInt(key, value));
    } else if (key == "backoff_base_ms") {
      PIVOT_ASSIGN_OR_RETURN(spec.backoff_base_ms, ParseInt(key, value));
    } else if (key == "backoff_max_ms") {
      PIVOT_ASSIGN_OR_RETURN(spec.backoff_max_ms, ParseInt(key, value));
    } else if (key == "ready_timeout_ms") {
      PIVOT_ASSIGN_OR_RETURN(spec.ready_timeout_ms, ParseInt(key, value));
    } else if (key == "stall_timeout_ms") {
      PIVOT_ASSIGN_OR_RETURN(spec.stall_timeout_ms, ParseInt(key, value));
    } else if (key == "term_grace_ms") {
      PIVOT_ASSIGN_OR_RETURN(spec.term_grace_ms, ParseInt(key, value));
    } else if (key == "go_timeout_ms") {
      PIVOT_ASSIGN_OR_RETURN(spec.go_timeout_ms, ParseInt(key, value));
    } else if (key == "cli") {
      spec.cli = value;
    } else {
      return Status::InvalidArgument("spec line " + std::to_string(lineno) +
                                     ": unknown key '" + key + "'");
    }
  }

  if (!addresses.empty()) {
    spec.addresses.assign(spec.parties, "");
    for (const auto& [idx, addr] : addresses) {
      if (idx >= spec.parties) {
        return Status::InvalidArgument(
            "spec: address." + std::to_string(idx) + " out of range for " +
            std::to_string(spec.parties) + " parties");
      }
      spec.addresses[idx] = addr;
    }
  }

  PIVOT_RETURN_IF_ERROR(ValidateFederationSpec(spec));
  return spec;
}

Result<FederationSpec> LoadFederationSpec(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open spec file: " + path);
  }
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  Result<FederationSpec> spec = ParseFederationSpec(text);
  if (!spec.ok()) {
    return Status(spec.status().code(),
                  path + ": " + spec.status().message());
  }
  return spec;
}

std::vector<std::string> PartyCommand(const FederationSpec& spec, int party,
                                      const std::string& cli, int control_fd,
                                      int go_fd) {
  std::string peers;
  for (size_t j = 0; j < spec.addresses.size(); ++j) {
    if (j > 0) peers += ",";
    peers += spec.addresses[j];
  }
  std::vector<std::string> argv = {
      cli, "party",
      "--party-id", std::to_string(party),
      "--peers", peers,
      "--data", spec.data,
      "--out", spec.out,
      "--super", std::to_string(spec.super_client),
      "--task", spec.task,
      "--depth", std::to_string(spec.depth),
      "--splits", std::to_string(spec.splits),
      "--protocol", spec.protocol,
      "--crypto-threads", std::to_string(spec.crypto_threads),
      "--max-restarts", std::to_string(spec.party_max_restarts),
  };
  if (!spec.checkpoint_dir.empty()) {
    argv.push_back("--checkpoint-dir");
    argv.push_back(spec.checkpoint_dir);
  }
  if (spec.classes > 0) {
    argv.push_back("--classes");
    argv.push_back(std::to_string(spec.classes));
  }
  if (spec.key_bits > 0) {
    argv.push_back("--key-bits");
    argv.push_back(std::to_string(spec.key_bits));
  }
  if (control_fd >= 0) {
    argv.push_back("--control-fd");
    argv.push_back(std::to_string(control_fd));
  }
  if (go_fd >= 0) {
    argv.push_back("--go-fd");
    argv.push_back(std::to_string(go_fd));
    argv.push_back("--go-timeout-ms");
    argv.push_back(std::to_string(spec.go_timeout_ms));
  }
  return argv;
}

}  // namespace orch
}  // namespace pivot
