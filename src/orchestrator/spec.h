#ifndef PIVOT_ORCHESTRATOR_SPEC_H_
#define PIVOT_ORCHESTRATOR_SPEC_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace pivot {
namespace orch {

// One federation, one file (DESIGN.md, "Orchestration model"). The spec
// names every knob an N-party deployment needs — parties, endpoints,
// data/checkpoint/model paths, training parameters, and the supervision
// budgets — and the orchestrator renders it into one `pivot_cli party`
// command line per party. Paths in the spec may be relative; the
// orchestrator runs every party with its working directory set to the
// run's --workdir, so relative out/checkpoint paths land there while a
// shared absolute data path can be reused across runs.
//
// Format: line-based `key = value`, `#` comments, blank lines ignored.
// Unknown keys are an error (a typo silently falling back to a default
// is how a 3-party chaos run quietly trains with the wrong depth).
//
//   parties = 3              # number of party processes
//   data = /abs/train.csv    # training CSV (headerless, label last)
//   out = model              # model prefix -> model.party<i>.bin
//   checkpoint_dir = ckpt    # per-party persistent checkpoint stores
//   address.0 = unix:/tmp/p0.sock   # optional; default: per-run unix
//   address.1 = 127.0.0.1:9100      # sockets under the workdir
//   task = classification    # or regression
//   depth = 4
//   splits = 8
//   classes = 0              # 0 = derive from the data
//   protocol = basic         # or enhanced
//   key_bits = 0             # 0 = protocol default
//   crypto_threads = 1
//   super = 0                # the label-holding super client
//   party_max_restarts = 5   # in-process attempt budget per party
//   max_restarts = 3         # process-level respawns per party
//   backoff_base_ms = 250    # deterministic exponential respawn backoff
//   backoff_max_ms = 2000
//   ready_timeout_ms = 60000 # spawn -> READY deadline
//   stall_timeout_ms = 60000 # control-pipe silence => hung, SIGKILL
//   term_grace_ms = 5000     # SIGTERM -> SIGKILL teardown grace
//   go_timeout_ms = 120000   # party-side READY -> GO barrier deadline
//   cli =                    # pivot_cli path override (default: self)

struct FederationSpec {
  int parties = 3;
  int super_client = 0;
  std::string data;
  std::string out = "model";
  std::string checkpoint_dir = "ckpt";
  // addresses[i] = party i's listen address; empty = auto unix sockets
  // under the orchestrator's workdir.
  std::vector<std::string> addresses;

  // Training parameters, forwarded verbatim to `pivot_cli party`.
  std::string task = "classification";
  int classes = 0;
  int depth = 4;
  int splits = 8;
  std::string protocol = "basic";
  int key_bits = 0;
  int crypto_threads = 1;
  int party_max_restarts = 5;

  // Process supervision budgets (DESIGN.md, "Orchestration model").
  int max_restarts = 3;
  int backoff_base_ms = 250;
  int backoff_max_ms = 2'000;
  int ready_timeout_ms = 60'000;
  int stall_timeout_ms = 60'000;
  int term_grace_ms = 5'000;
  int go_timeout_ms = 120'000;

  std::string cli;
};

// Parses the spec text. Unknown keys, malformed integers, out-of-range
// addresses and inconsistent party counts are errors.
Result<FederationSpec> ParseFederationSpec(const std::string& text);

// Reads and parses a spec file.
Result<FederationSpec> LoadFederationSpec(const std::string& path);

// Validates cross-field invariants (party count vs addresses vs super
// client, budgets non-negative). Parse runs this; the orchestrator runs
// it again after filling default addresses.
[[nodiscard]] Status ValidateFederationSpec(const FederationSpec& spec);

// Renders party `i`'s full command line (argv[0] = `cli`). `control_fd`
// and `go_fd` are the child's inherited control-protocol descriptors
// (child -> orchestrator readiness/heartbeats, orchestrator -> child GO
// barrier release); pass -1 to omit, which yields a standalone party
// command usable without an orchestrator. Requires spec.addresses to be
// fully populated.
std::vector<std::string> PartyCommand(const FederationSpec& spec, int party,
                                      const std::string& cli, int control_fd,
                                      int go_fd);

}  // namespace orch
}  // namespace pivot

#endif  // PIVOT_ORCHESTRATOR_SPEC_H_
