#include "orchestrator/supervisor.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pivot {
namespace orch {

const char* PartyPhaseName(PartyPhase phase) {
  switch (phase) {
    case PartyPhase::kIdle:
      return "idle";
    case PartyPhase::kLaunching:
      return "launching";
    case PartyPhase::kWaiting:
      return "waiting-at-barrier";
    case PartyPhase::kRunning:
      return "running";
    case PartyPhase::kRestarting:
      return "restarting";
    case PartyPhase::kBackoff:
      return "backoff";
    case PartyPhase::kDone:
      return "done";
    case PartyPhase::kFailed:
      return "failed";
  }
  return "unknown";
}

ProcessSupervisor::ProcessSupervisor(int num_parties,
                                     ProcessSupervisorConfig config,
                                     Callbacks callbacks)
    : num_parties_(num_parties),
      config_(config),
      callbacks_(std::move(callbacks)),
      parties_(num_parties) {
  PIVOT_CHECK(num_parties >= 1);
}

Status ProcessSupervisor::HandleCrashLocked(PartySlot& slot, int party,
                                            int64_t now_ms) {
  if (slot.restarts >= config_.max_restarts) {
    slot.phase = PartyPhase::kFailed;
    return Status::ProtocolError(
        "party " + std::to_string(party) + " is beyond recovery: " +
        slot.last_exit + " with the restart budget exhausted (" +
        std::to_string(slot.restarts) + "/" +
        std::to_string(config_.max_restarts) +
        " restarts used); tearing the federation down");
  }
  ++slot.restarts;
  // Deterministic exponential backoff, same shape as the connection
  // supervisor's redial schedule: base, 2*base, ... capped at max.
  int64_t backoff = config_.backoff_base_ms;
  for (int i = 1; i < slot.restarts && backoff < config_.backoff_max_ms; ++i) {
    backoff *= 2;
  }
  slot.backoff_ms =
      static_cast<int>(std::min<int64_t>(backoff, config_.backoff_max_ms));
  slot.respawn_at_ms = now_ms + slot.backoff_ms;
  slot.phase = PartyPhase::kBackoff;
  return Status::Ok();
}

int64_t ProcessSupervisor::SyncedRespawnLocked(int64_t now_ms) const {
  // A generation restarts together: every respawn lands at (or after)
  // the latest pending one, so all processes cold-start in the same
  // window and the mesh forms the way a first launch does.
  int64_t at = now_ms + config_.backoff_base_ms;
  for (const PartySlot& slot : parties_) {
    if (slot.phase == PartyPhase::kBackoff) {
      at = std::max(at, slot.respawn_at_ms);
    }
  }
  return at;
}

void ProcessSupervisor::NoteExited(int party, int exit_code,
                                   const std::string& detail, int64_t now_ms) {
  PIVOT_CHECK(party >= 0 && party < num_parties_);
  Status escalation = Status::Ok();
  std::vector<std::pair<int, int>> restart_requests;  // (party, pid)
  {
    std::lock_guard<std::mutex> lock(mu_);
    PartySlot& slot = parties_[party];
    slot.pid = -1;
    slot.kill_sent = false;
    slot.last_exit_code = exit_code;
    slot.last_exit = detail;
    if (quiesced_) {
      // Teardown reap: record the facts, no state machinery. Exit 0
      // still counts as done so a clean finish during teardown reads
      // correctly in the report.
      if (exit_code == 0) slot.phase = PartyPhase::kDone;
      return;
    }
    if (slot.phase == PartyPhase::kDone || slot.phase == PartyPhase::kFailed) {
      return;  // late reap after teardown decisions were already made
    }
    if (slot.phase == PartyPhase::kRestarting) {
      // Collateral exit from a generation restart: budget-free respawn,
      // synced to the generation start. The usual exit here is 3
      // (graceful, checkpoints persisted); 128+SIGKILL after the grace
      // deadline — or a chaos kill racing the request — lands here too
      // and is deliberately also free: checkpoints persist after every
      // mutation, so the resume is identical either way.
      slot.phase = PartyPhase::kBackoff;
      slot.backoff_ms = config_.backoff_base_ms;
      slot.respawn_at_ms = SyncedRespawnLocked(now_ms);
      return;
    }
    if (exit_code == 0) {
      slot.phase = PartyPhase::kDone;
      return;
    }
    escalation = HandleCrashLocked(slot, party, now_ms);
    if (escalation.ok()) {
      // The crash dooms the whole mesh generation (fresh handshake
      // incarnations abort every survivor's attempt — see the header):
      // ask every live peer to restart too, budget-free.
      for (int q = 0; q < num_parties_; ++q) {
        if (q == party) continue;
        PartySlot& peer = parties_[q];
        switch (peer.phase) {
          case PartyPhase::kLaunching:
          case PartyPhase::kWaiting:
          case PartyPhase::kRunning:
            peer.phase = PartyPhase::kRestarting;
            peer.kill_sent = false;
            peer.restart_deadline_ms = now_ms + config_.restart_grace_ms;
            restart_requests.emplace_back(q, peer.pid);
            break;
          case PartyPhase::kDone:
            // Resume needs every party at the table; a finished party
            // replays deterministically to the same model bytes.
            peer.phase = PartyPhase::kBackoff;
            peer.backoff_ms = config_.backoff_base_ms;
            peer.respawn_at_ms = slot.respawn_at_ms;
            break;
          case PartyPhase::kIdle:
          case PartyPhase::kRestarting:
          case PartyPhase::kBackoff:
          case PartyPhase::kFailed:
            break;  // already down or already on the way back
        }
      }
    }
  }
  for (const auto& [q, pid] : restart_requests) {
    if (callbacks_.request_restart) callbacks_.request_restart(q, pid);
  }
  if (!escalation.ok() && callbacks_.escalate) {
    callbacks_.escalate(party, escalation);
  }
}

void ProcessSupervisor::Quiesce() {
  std::lock_guard<std::mutex> lock(mu_);
  quiesced_ = true;
}

void ProcessSupervisor::NoteReady(int party, const std::string& nonce,
                                  int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  PartySlot& slot = parties_[party];
  slot.last_control_ms = now_ms;
  if (slot.phase != PartyPhase::kLaunching &&
      slot.phase != PartyPhase::kRunning &&
      slot.phase != PartyPhase::kWaiting) {
    return;  // READY from a process we already gave up on
  }
  // A kRunning party re-entering READY means its attempt failed (a peer
  // died) and the rebuilt mesh is up again: it re-arms the barrier.
  slot.phase = PartyPhase::kWaiting;
  slot.ready_nonce = nonce;
}

void ProcessSupervisor::NoteControl(int party, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  parties_[party].last_control_ms = now_ms;
}

int ProcessSupervisor::Tick(int64_t now_ms) {
  struct Kill {
    int party;
    int pid;
    std::string reason;
  };
  struct Go {
    int party;
    std::string nonce;
  };
  std::vector<int> spawns;
  std::vector<Kill> kills;
  std::vector<Go> gos;
  int64_t next_due = now_ms + 100;  // sleep-hint cap

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (quiesced_) return 100;  // teardown owns the processes now
    // The barrier is open while no party is down (unspawned, mid-launch,
    // in backoff, or beyond recovery). It is NOT "all parties waiting":
    // requiring global simultaneity deadlocks on the READY/GO race —
    // a party whose attempt dies between READY and GO re-arms its
    // barrier while a peer that accepted its GO is already running
    // (blocked in Recv on the waiting parties), so "all waiting" can
    // never become true again. Releasing against {waiting, running,
    // done} peers keeps the guarantee that matters — training never
    // starts while a peer is down — and the worst a premature GO can
    // cost is one attempt that aborts and re-enters the barrier.
    bool barrier_open = true;
    for (int p = 0; p < num_parties_; ++p) {
      const PartyPhase phase = parties_[p].phase;
      if (phase != PartyPhase::kWaiting && phase != PartyPhase::kRunning &&
          phase != PartyPhase::kDone) {
        barrier_open = false;
      }
    }
    for (int p = 0; p < num_parties_; ++p) {
      PartySlot& slot = parties_[p];
      switch (slot.phase) {
        case PartyPhase::kIdle:
          spawns.push_back(p);
          break;
        case PartyPhase::kLaunching: {
          const int64_t deadline =
              slot.spawned_at_ms + config_.ready_timeout_ms;
          if (!slot.kill_sent && now_ms >= deadline) {
            slot.kill_sent = true;
            kills.push_back(
                {p, slot.pid,
                 "party " + std::to_string(p) + " did not report READY "
                 "within " + std::to_string(config_.ready_timeout_ms) +
                 " ms of spawn; force-killing it"});
          }
          next_due = std::min(next_due, deadline);
          break;
        }
        case PartyPhase::kWaiting:
        case PartyPhase::kRunning: {
          const int64_t deadline =
              slot.last_control_ms + config_.stall_timeout_ms;
          if (!slot.kill_sent && now_ms >= deadline) {
            slot.kill_sent = true;
            kills.push_back(
                {p, slot.pid,
                 "party " + std::to_string(p) + " sent no control traffic "
                 "for " + std::to_string(now_ms - slot.last_control_ms) +
                 " ms (stall timeout " +
                 std::to_string(config_.stall_timeout_ms) +
                 " ms): process is alive but wedged; force-killing it"});
          }
          next_due = std::min(next_due, deadline);
          break;
        }
        case PartyPhase::kRestarting: {
          const int64_t deadline = slot.restart_deadline_ms;
          if (!slot.kill_sent && now_ms >= deadline) {
            slot.kill_sent = true;
            kills.push_back(
                {p, slot.pid,
                 "party " + std::to_string(p) + " did not exit within " +
                 std::to_string(config_.restart_grace_ms) +
                 " ms of a generation-restart request; force-killing it"});
          }
          next_due = std::min(next_due, deadline);
          break;
        }
        case PartyPhase::kBackoff:
          if (now_ms >= slot.respawn_at_ms) {
            spawns.push_back(p);
          }
          next_due = std::min(next_due, slot.respawn_at_ms);
          break;
        case PartyPhase::kDone:
        case PartyPhase::kFailed:
          break;
      }
    }
    if (barrier_open) {
      for (int p = 0; p < num_parties_; ++p) {
        if (parties_[p].phase == PartyPhase::kWaiting) {
          gos.push_back({p, parties_[p].ready_nonce});
          parties_[p].phase = PartyPhase::kRunning;
        }
      }
    }
  }

  // Side effects run without the lock: spawn forks, force_kill and
  // send_go do I/O, and all of them may feed events straight back in.
  std::vector<std::pair<int, Result<int>>> spawned;
  spawned.reserve(spawns.size());
  for (int p : spawns) {
    if (!callbacks_.spawn) continue;
    spawned.emplace_back(p, callbacks_.spawn(p));
  }
  for (const Kill& k : kills) {
    if (callbacks_.force_kill) callbacks_.force_kill(k.party, k.pid, k.reason);
  }
  for (const Go& g : gos) {
    if (callbacks_.send_go) callbacks_.send_go(g.party, g.nonce);
  }

  std::vector<std::pair<int, Status>> failed_spawns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [p, result] : spawned) {
      PartySlot& slot = parties_[p];
      if (result.ok()) {
        slot.phase = PartyPhase::kLaunching;
        slot.pid = result.value();
        slot.spawned_at_ms = now_ms;
        slot.last_control_ms = now_ms;
        slot.kill_sent = false;
        slot.ready_nonce.clear();
      } else {
        // A spawn error is an immediate crash: it burns a restart and
        // escalates once the budget is gone, like any other exit.
        slot.last_exit_code = 127;
        slot.last_exit = "spawn failed: " + result.status().ToString();
        const Status st = HandleCrashLocked(slot, p, now_ms);
        if (!st.ok()) failed_spawns.emplace_back(p, st);
      }
    }
  }
  for (const auto& [p, st] : failed_spawns) {
    if (callbacks_.escalate) callbacks_.escalate(p, st);
  }

  return static_cast<int>(std::clamp<int64_t>(next_due - now_ms, 1, 100));
}

PartyStatus ProcessSupervisor::Describe(int party) const {
  std::lock_guard<std::mutex> lock(mu_);
  const PartySlot& slot = parties_[party];
  PartyStatus status;
  status.phase = slot.phase;
  status.pid = slot.pid;
  status.restarts = slot.restarts;
  status.last_exit_code = slot.last_exit_code;
  status.last_exit = slot.last_exit;
  return status;
}

int ProcessSupervisor::PartyForPid(int pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (int p = 0; p < num_parties_; ++p) {
    if (parties_[p].pid == pid) return p;
  }
  return -1;
}

bool ProcessSupervisor::AllDone() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const PartySlot& slot : parties_) {
    if (slot.phase != PartyPhase::kDone) return false;
  }
  return true;
}

bool ProcessSupervisor::AnyFailed() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const PartySlot& slot : parties_) {
    if (slot.phase == PartyPhase::kFailed) return true;
  }
  return false;
}

}  // namespace orch
}  // namespace pivot
