#include "orchestrator/fault.h"

#include <algorithm>

#include "common/rng.h"

namespace pivot {
namespace orch {

namespace {

Result<ProcFaultKind> ParseKind(const std::string& word) {
  if (word == "kill") return ProcFaultKind::kKill;
  if (word == "stop") return ProcFaultKind::kStop;
  if (word == "cont") return ProcFaultKind::kCont;
  if (word == "term") return ProcFaultKind::kTerm;
  return Status::InvalidArgument("fault plan: unknown kind '" + word +
                                 "' (want kill|stop|cont|term)");
}

void SortByTime(std::vector<ProcFault>& faults) {
  std::stable_sort(faults.begin(), faults.end(),
                   [](const ProcFault& a, const ProcFault& b) {
                     return a.at_ms < b.at_ms;
                   });
}

}  // namespace

const char* ProcFaultKindName(ProcFaultKind kind) {
  switch (kind) {
    case ProcFaultKind::kKill:
      return "kill";
    case ProcFaultKind::kStop:
      return "stop";
    case ProcFaultKind::kCont:
      return "cont";
    case ProcFaultKind::kTerm:
      return "term";
  }
  return "unknown";
}

std::string ProcFault::ToString() const {
  return std::to_string(at_ms) + ":" + ProcFaultKindName(kind) + ":" +
         std::to_string(party);
}

Result<ProcFaultPlan> ProcFaultPlan::Parse(const std::string& text,
                                           int num_parties) {
  ProcFaultPlan plan;
  size_t start = 0;
  while (start <= text.size()) {
    size_t semi = text.find(';', start);
    if (semi == std::string::npos) semi = text.size();
    std::string entry = text.substr(start, semi - start);
    start = semi + 1;
    // strip whitespace
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) {
      entry.erase(entry.begin());
    }
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
      entry.pop_back();
    }
    if (entry.empty()) continue;

    const size_t c1 = entry.find(':');
    const size_t c2 = c1 == std::string::npos ? std::string::npos
                                              : entry.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      return Status::InvalidArgument(
          "fault plan: expected 'at_ms:kind:party', got '" + entry + "'");
    }
    ProcFault fault;
    try {
      fault.at_ms = std::stoll(entry.substr(0, c1));
      fault.party = std::stoi(entry.substr(c2 + 1));
    } catch (...) {
      return Status::InvalidArgument("fault plan: bad number in '" + entry +
                                     "'");
    }
    PIVOT_ASSIGN_OR_RETURN(fault.kind,
                           ParseKind(entry.substr(c1 + 1, c2 - c1 - 1)));
    if (fault.at_ms < 0) {
      return Status::InvalidArgument("fault plan: negative time in '" +
                                     entry + "'");
    }
    if (fault.party < 0 || fault.party >= num_parties) {
      return Status::InvalidArgument(
          "fault plan: party " + std::to_string(fault.party) +
          " out of range for " + std::to_string(num_parties) + " parties");
    }
    plan.faults_.push_back(fault);
  }
  SortByTime(plan.faults_);
  return plan;
}

ProcFaultPlan ProcFaultPlan::FromSeed(uint64_t seed, int num_parties,
                                      int64_t window_ms, int count) {
  ProcFaultPlan plan;
  if (num_parties < 1 || window_ms < 8 || count < 1) return plan;
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (int i = 0; i < count; ++i) {
    ProcFault fault;
    fault.at_ms = window_ms / 8 +
                  static_cast<int64_t>(rng.NextBelow(
                      static_cast<uint64_t>(window_ms - window_ms / 8)));
    fault.party = static_cast<int>(rng.NextBelow(
        static_cast<uint64_t>(num_parties)));
    // 3:1 kill vs stop. Every stop is paired with a cont so a seeded plan
    // can never leave a party frozen past the stall detector forever.
    if (rng.NextBelow(4) == 0) {
      fault.kind = ProcFaultKind::kStop;
      ProcFault thaw;
      thaw.at_ms = fault.at_ms + 1'000 +
                   static_cast<int64_t>(rng.NextBelow(2'000));
      thaw.party = fault.party;
      thaw.kind = ProcFaultKind::kCont;
      plan.faults_.push_back(fault);
      plan.faults_.push_back(thaw);
    } else {
      fault.kind = ProcFaultKind::kKill;
      plan.faults_.push_back(fault);
    }
  }
  SortByTime(plan.faults_);
  return plan;
}

std::vector<ProcFault> ProcFaultPlan::TakeDue(int64_t elapsed_ms) {
  std::vector<ProcFault> due;
  while (next_ < faults_.size() && faults_[next_].at_ms <= elapsed_ms) {
    due.push_back(faults_[next_]);
    ++next_;
  }
  return due;
}

std::string ProcFaultPlan::ToString() const {
  std::string out;
  for (size_t i = 0; i < faults_.size(); ++i) {
    if (i > 0) out += ";";
    out += faults_[i].ToString();
  }
  return out;
}

}  // namespace orch
}  // namespace pivot
