#ifndef PIVOT_ORCHESTRATOR_FAULT_H_
#define PIVOT_ORCHESTRATOR_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace pivot {
namespace orch {

// Process-level chaos driver (tier 3 of the fault ladder; tiers 1-2 are
// the in-process FaultPlan in pivot/fault.h and the socket-sever chaos in
// net/). Faults here are real signals delivered to real party processes
// by the orchestrator's supervise loop: SIGKILL exercises crash-resume
// through fork/exec respawn, SIGSTOP/SIGCONT exercise the stall detector
// (a stopped party is alive but mute, so the orchestrator must converge
// it to the crash path), SIGTERM exercises graceful shutdown.
//
// Plans are deterministic: either parsed from an explicit schedule
// string or derived from a seed via the repo's Rng, so a chaos run can
// be replayed bit-for-bit from its seed alone.

enum class ProcFaultKind {
  kKill,  // SIGKILL: hard crash, no cleanup
  kStop,  // SIGSTOP: freeze; stall detector must notice
  kCont,  // SIGCONT: thaw a frozen party
  kTerm,  // SIGTERM: graceful shutdown request
};

const char* ProcFaultKindName(ProcFaultKind kind);

struct ProcFault {
  int64_t at_ms = 0;  // offset from orchestrator start
  int party = 0;
  ProcFaultKind kind = ProcFaultKind::kKill;

  std::string ToString() const;  // "1500:kill:1"
};

class ProcFaultPlan {
 public:
  ProcFaultPlan() = default;

  // Parses "at_ms:kind:party[;at_ms:kind:party...]", e.g.
  // "1500:kill:1;4000:stop:2;6000:cont:2". Whitespace around entries is
  // ignored; entries are sorted by at_ms.
  static Result<ProcFaultPlan> Parse(const std::string& text,
                                     int num_parties);

  // Derives `count` faults from a seed: times uniform in
  // [window_ms/8, window_ms], parties uniform, kinds weighted toward
  // kKill with occasional kStop (each kStop is paired with a kCont
  // 1-3 s later so the plan cannot permanently freeze the federation).
  static ProcFaultPlan FromSeed(uint64_t seed, int num_parties,
                                int64_t window_ms, int count);

  // Faults due at or before `elapsed_ms` that have not been taken yet.
  // Each fault is handed out exactly once.
  std::vector<ProcFault> TakeDue(int64_t elapsed_ms);

  bool Exhausted() const { return next_ >= faults_.size(); }
  const std::vector<ProcFault>& faults() const { return faults_; }
  std::string ToString() const;  // ";"-joined schedule

 private:
  std::vector<ProcFault> faults_;  // sorted by at_ms
  size_t next_ = 0;
};

}  // namespace orch
}  // namespace pivot

#endif  // PIVOT_ORCHESTRATOR_FAULT_H_
