#ifndef PIVOT_ORCHESTRATOR_PROCESS_H_
#define PIVOT_ORCHESTRATOR_PROCESS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pivot {
namespace orch {

// Thin fork/exec/waitpid/kill wrappers for the orchestrator. This file
// (and its .cc) is the ONLY place in src/, tools/, or bench/ allowed to
// touch the process-control syscalls — the `raw-process` lint rule
// (tools/pivot_lint.py) enforces the confinement, for the same reason
// raw sockets are confined to src/net/: supervision policy must not be
// bypassable by ad-hoc kill/wait calls scattered through the tree.
//
// The orchestrator is strictly single-threaded, which is what makes
// fork() here safe: there are no locks to inherit in a half-held state
// and no helper threads whose absence the child could trip over.

// One child launch: argv (argv[0] = binary path), stdout/stderr capture
// files (appended, so a respawned party keeps one continuous log), an
// optional working directory, and the fds the child must inherit (the
// control-protocol pipe ends). Every other descriptor above stderr is
// closed in the child so one party cannot hold a sibling's pipe open.
struct ChildSpec {
  std::vector<std::string> argv;
  std::string stdout_path;
  std::string stderr_path;
  std::string cwd;                 // empty = inherit
  std::vector<int> inherit_fds;
};

// Forks and execs `spec`. On Linux the child asks the kernel to deliver
// SIGTERM when the orchestrator dies (PR_SET_PDEATHSIG), so a killed
// orchestrator cannot leak a silent background federation. Returns the
// child pid; exec failure surfaces as the child exiting with code 127.
Result<int> SpawnChild(const ChildSpec& spec);

// One reaped child (waitpid WNOHANG). Exactly one of `exited` /
// `signaled` is true.
struct ExitEvent {
  int pid = -1;
  bool exited = false;
  int exit_code = 0;
  bool signaled = false;
  int signal = 0;

  // "exit code N" or "killed by signal N".
  std::string Describe() const;
};

// Non-blocking reap of any exited child. Returns NotFound when no child
// has exited (or none exist); callers poll this from the supervise loop.
Result<ExitEvent> ReapChild();

// Sends `signo` to `pid`. NotFound once the process is gone.
[[nodiscard]] Status SignalProcess(int pid, int signo);

// An inter-process pipe for the control protocol. `read_fd` lives in the
// orchestrator (O_NONBLOCK so the supervise loop never blocks on a quiet
// party); `write_fd` is inherited by the child.
struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
};
Result<Pipe> MakePipe(bool nonblocking_read);
void ClosePipe(Pipe& pipe);
void CloseFd(int fd);

// Drains whatever is currently readable from a non-blocking fd.
// Returns the bytes read; empty on EAGAIN or EOF.
std::string ReadAvailable(int fd);

// Best-effort write of a full buffer to a (blocking) fd.
[[nodiscard]] Status WriteAll(int fd, const std::string& data);

// Sleeps the calling thread (nanosleep; no <thread> dependency).
void SleepMs(int ms);

// Steady-clock milliseconds, for the supervise loop's explicit clock.
int64_t SteadyClockMs();

}  // namespace orch
}  // namespace pivot

#endif  // PIVOT_ORCHESTRATOR_PROCESS_H_
