#include "mpc/dp.h"

#include "common/check.h"
#include "common/fixed_point.h"

namespace pivot {

namespace {

// Share of a secret uniform value in [0, 2^bits) built from dealer bits.
u128 SharedUniformBits(Preprocessing& prep, int bits) {
  u128 acc = 0;
  for (int j = 0; j < bits; ++j) {
    acc = FpAdd(acc, FpMul(prep.NextBitShare(), static_cast<u128>(1) << j));
  }
  return acc;
}

}  // namespace

Result<u128> SampleLaplaceShared(MpcEngine& eng, Preprocessing& prep,
                                 double mu, double scale) {
  const int f = eng.config().frac_bits;

  // |U| uniform in [0, 1/2) from f-1 secret bits; 1 - 2|U| in (2^-f, 1].
  const u128 ua = SharedUniformBits(prep, f - 1);
  u128 inner = eng.ConstantField(static_cast<u128>(1) << f);
  inner = FpSub(inner, FpAdd(ua, ua));

  // ln(1 - 2|U|) <= 0.
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> logs, eng.LogFixedVec({inner}));

  // Secret sign: s' = 1 - 2s for a secret bit s.
  const u128 sign_bit = prep.NextBitShare();
  u128 sign = eng.ConstantField(1);
  sign = FpSub(sign, FpAdd(sign_bit, sign_bit));

  // X = mu - scale · s' · ln(1 - 2|U|).
  PIVOT_ASSIGN_OR_RETURN(u128 signed_log, eng.Mul(sign, logs[0]));
  const u128 scale_fixed = FpFromSigned(FixedFromDouble(scale));
  PIVOT_ASSIGN_OR_RETURN(
      std::vector<u128> scaled,
      eng.TruncPrVec({FpMul(signed_log, scale_fixed)}, f, 70));
  u128 x = eng.ConstantField(FpFromSigned(FixedFromDouble(mu)));
  return FpSub(x, scaled[0]);
}

Result<u128> ExponentialMechanismIndex(MpcEngine& eng, Preprocessing& prep,
                                       const std::vector<u128>& score_shares,
                                       double epsilon, double sensitivity) {
  PIVOT_CHECK_MSG(!score_shares.empty(), "no scores to select from");
  PIVOT_CHECK_MSG(sensitivity > 0, "sensitivity must be positive");
  const int f = eng.config().frac_bits;
  const size_t r_count = score_shares.size();

  // 1. Scaled scores eps·score / (2·sensitivity).
  const u128 factor =
      FpFromSigned(FixedFromDouble(epsilon / (2.0 * sensitivity)));
  std::vector<u128> scaled(r_count);
  for (size_t r = 0; r < r_count; ++r) {
    scaled[r] = FpMul(score_shares[r], factor);
  }
  PIVOT_ASSIGN_OR_RETURN(scaled, eng.TruncPrVec(scaled, f, 70));

  // 2. Unnormalized probabilities and their normalization (lines 1-6 of
  // Algorithm 6).
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> probs, eng.ExpFixedVec(scaled));
  u128 total = 0;
  for (u128 p : probs) total = FpAdd(total, p);
  PIVOT_ASSIGN_OR_RETURN(
      std::vector<u128> norm,
      eng.DivFixedVec(probs, std::vector<u128>(r_count, total)));

  // 3. Shared CDF sub-intervals (line 7).
  std::vector<u128> cdf(r_count);
  u128 acc = 0;
  for (size_t r = 0; r < r_count; ++r) {
    acc = FpAdd(acc, norm[r]);
    cdf[r] = acc;
  }

  // 4. Secret uniform U in (0,1) (line 8) and interval membership test
  // (lines 9-14): the index is sum_r r·([U < F_r] - [U < F_{r-1}]).
  const u128 u = SharedUniformBits(prep, f);
  std::vector<u128> diffs(r_count);
  for (size_t r = 0; r < r_count; ++r) diffs[r] = FpSub(u, cdf[r]);
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> below,
                         eng.LessThanZeroVec(diffs, 40));

  u128 index = 0;
  u128 prev = 0;
  for (size_t r = 0; r < r_count; ++r) {
    const u128 hit = FpSub(below[r], prev);  // one-hot slot r
    index = FpAdd(index, FpMul(hit, static_cast<u128>(r)));
    prev = below[r];
  }
  return index;
}

}  // namespace pivot
