#ifndef PIVOT_MPC_PREPROCESSING_H_
#define PIVOT_MPC_PREPROCESSING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mpc/field.h"

namespace pivot {

// SPDZ-style offline phase, played by a trusted dealer.
//
// The paper's MPC substrate (SPDZ, Section 2.2) has two phases: a
// function-independent offline phase that produces correlated randomness
// (Beaver multiplication triples, shared random bits/masks) and an online
// phase that consumes it. The paper benchmarks *online time only*. This
// class reproduces that structure with a dealer simulation: every party
// constructs a Preprocessing instance from the same public seed, each
// instance deterministically generates the same global sequence of
// correlated randomness, and each party keeps only its own additive share.
//
// SECURITY NOTE (simulation shortcut): inside one instance the dealer's
// plaintext randomness is transiently visible; protocol code must only
// ever consume the returned *shares*. This mirrors MP-SPDZ's "fake
// offline" (insecure preprocessing) mode, which the paper's methodology of
// measuring online time corresponds to.
//
// Alignment requirement: parties run SPMD protocol code, so they request
// the same sequence of correlated values in the same order; the internal
// RNG streams then stay synchronized across parties by construction.
class Preprocessing {
 public:
  // All parties must pass the same `seed`, their own `party_id`.
  Preprocessing(int party_id, int num_parties, uint64_t seed);

  int party_id() const { return party_id_; }
  int num_parties() const { return num_parties_; }

  // Beaver triple: shares of (a, b, a*b).
  struct Triple {
    u128 a, b, c;
  };
  Triple NextTriple();

  // Share of a uniformly random field element.
  u128 NextRandomShare();

  // Share of a uniformly random bit.
  u128 NextBitShare();

  // Shared random mask r = r1 * 2^low_bits + r0, where r0 < 2^low_bits is
  // given bit-by-bit (shares of each bit) and r1 < 2^high_bits. This is
  // the correlated randomness consumed by the truncation / comparison /
  // bit-decomposition protocols (Catrina-de Hoogh style).
  struct TruncMask {
    std::vector<u128> low_bit_shares;  // shares of bits r0_0 .. r0_{low-1}
    u128 r1_share = 0;                 // share of r1
  };
  TruncMask NextTruncMask(int low_bits, int high_bits);

  // Number of correlated elements generated so far (for bench reporting).
  uint64_t triples_used() const { return triples_used_; }
  uint64_t masks_used() const { return masks_used_; }

  // Dealer-stream position, captured by training checkpoints
  // (pivot/checkpoint.h). Restoring it rewinds the correlated-randomness
  // stream so a resumed party consumes the same triples/masks the
  // uninterrupted run would have.
  struct PrepState {
    RngState rng;
    uint64_t triples_used = 0;
    uint64_t masks_used = 0;
  };
  PrepState SaveState() const {
    return PrepState{rng_.SaveState(), triples_used_, masks_used_};
  }
  void RestoreState(const PrepState& state) {
    rng_.RestoreState(state.rng);
    triples_used_ = state.triples_used;
    masks_used_ = state.masks_used;
  }

 private:
  // Deterministically produces all m shares of `value` and returns this
  // party's one. Consumes the same amount of randomness on every party.
  u128 ShareOf(u128 value);

  int party_id_;
  int num_parties_;
  Rng rng_;
  uint64_t triples_used_ = 0;
  uint64_t masks_used_ = 0;
};

}  // namespace pivot

#endif  // PIVOT_MPC_PREPROCESSING_H_
