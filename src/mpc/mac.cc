#include "mpc/mac.h"

#include "common/check.h"
#include "common/ct.h"
#include "common/op_counters.h"
#include "net/codec.h"

namespace pivot {

AuthDealer::AuthDealer(int party_id, int num_parties, uint64_t seed)
    : party_id_(party_id), num_parties_(num_parties), rng_(seed ^ 0x4d414353) {
  PIVOT_CHECK(party_id >= 0 && party_id < num_parties);
  mac_key_ = FpRandom(rng_);
  // Additive sharing of the global key.
  u128 sum = 0;
  u128 mine = 0;
  for (int i = 0; i + 1 < num_parties_; ++i) {
    u128 s = FpRandom(rng_);
    sum = FpAdd(sum, s);
    if (i == party_id_) mine = s;
  }
  if (party_id_ == num_parties_ - 1) mine = FpSub(mac_key_, sum);
  mac_key_share_ = mine;
}

AuthShare AuthDealer::ShareOfAuth(u128 value) {
  const u128 mac = FpMul(value, mac_key_);
  AuthShare out;
  // Value shares.
  u128 sum = 0;
  for (int i = 0; i + 1 < num_parties_; ++i) {
    u128 s = FpRandom(rng_);
    sum = FpAdd(sum, s);
    if (i == party_id_) out.value = s;
  }
  if (party_id_ == num_parties_ - 1) out.value = FpSub(value, sum);
  // MAC shares.
  sum = 0;
  for (int i = 0; i + 1 < num_parties_; ++i) {
    u128 s = FpRandom(rng_);
    sum = FpAdd(sum, s);
    if (i == party_id_) out.mac = s;
  }
  if (party_id_ == num_parties_ - 1) out.mac = FpSub(mac, sum);
  return out;
}

AuthShare AuthDealer::NextRandom() { return ShareOfAuth(FpRandom(rng_)); }

AuthDealer::AuthTriple AuthDealer::NextTriple() {
  const u128 a = FpRandom(rng_);
  const u128 b = FpRandom(rng_);
  AuthTriple t;
  t.a = ShareOfAuth(a);
  t.b = ShareOfAuth(b);
  t.c = ShareOfAuth(FpMul(a, b));
  return t;
}

AuthShare AuthDealer::ShareOfPublic(u128 value) { return ShareOfAuth(value); }

AuthEngine::AuthEngine(Endpoint* endpoint, AuthDealer* dealer)
    : endpoint_(endpoint), dealer_(dealer) {}

AuthShare AuthEngine::AddConst(const AuthShare& a, i128 c) const {
  const u128 cf = FpFromSigned(c);
  AuthShare out = a;
  if (party_id() == 0) out.value = FpAdd(out.value, cf);
  // MAC of a public constant: every party adds Delta_i · c.
  out.mac = FpAdd(out.mac, FpMul(dealer_->mac_key_share(), cf));
  return out;
}

Result<AuthShare> AuthEngine::Input(int owner, i128 value) {
  // Mask-based input: dealer hands out an authenticated random <r>; in a
  // real deployment the dealer would privately reveal r to the owner — the
  // shared-seed dealer simulation reconstructs it the same way here.
  AuthShare r = dealer_->NextRandom();
  // Reconstruct r towards the owner (over the network, value shares only).
  ByteWriter w;
  EncodeU128(r.value, w);
  Bytes mine = w.Take();
  u128 r_clear = r.value;
  if (num_parties() > 1) {
    if (party_id() == owner) {
      for (int p = 0; p < num_parties(); ++p) {
        if (p == party_id()) continue;
        PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(p));
        ByteReader rd(msg);
        PIVOT_ASSIGN_OR_RETURN(u128 v, DecodeU128(rd));
        r_clear = FpAdd(r_clear, v);
      }
    } else {
      PIVOT_RETURN_IF_ERROR(endpoint_->Send(owner, mine));
    }
  }
  // Owner broadcasts eps = value - r.
  u128 eps = 0;
  if (party_id() == owner) {
    eps = FpSub(FpFromSigned(value), r_clear);
    ByteWriter we;
    EncodeU128(eps, we);
    if (num_parties() > 1) {
      // pivot-taint: allow(raw-send) eps = value - r is one-time-pad
      // masked by the fresh dealer randomness r; broadcasting it is the
      // SPDZ input step.
      PIVOT_RETURN_IF_ERROR(endpoint_->Broadcast(we.Take()));
    }
  } else {
    PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(owner));
    ByteReader rd(msg);
    PIVOT_ASSIGN_OR_RETURN(eps, DecodeU128(rd));
  }
  // x = r + eps (public constant added with MAC adjustment).
  AuthShare out = r;
  if (party_id() == 0) out.value = FpAdd(out.value, eps);
  out.mac = FpAdd(out.mac, FpMul(dealer_->mac_key_share(), eps));
  return out;
}

Result<std::vector<u128>> AuthEngine::OpenVec(
    const std::vector<AuthShare>& shares) {
  const size_t n = shares.size();
  if (n == 0) return std::vector<u128>{};
  OpCounters::Global().AddSecureOp(n);

  // Round 1: open the values.
  std::vector<u128> value_shares(n);
  for (size_t i = 0; i < n; ++i) value_shares[i] = shares[i].value;
  std::vector<u128> opened = value_shares;
  if (num_parties() > 1) {
    PIVOT_RETURN_IF_ERROR(
        endpoint_->Broadcast(EncodeU128Vector(value_shares)));
    for (int p = 0; p < num_parties(); ++p) {
      if (p == party_id()) continue;
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(p));
      PIVOT_ASSIGN_OR_RETURN(std::vector<u128> theirs, DecodeU128Vector(msg));
      if (theirs.size() != n) {
        return Status::ProtocolError("opened vector size mismatch");
      }
      for (size_t i = 0; i < n; ++i) opened[i] = FpAdd(opened[i], theirs[i]);
    }
  }

  // Round 2: MAC check — z_i = mac_i - x·Delta_i must sum to zero.
  std::vector<u128> zs(n);
  for (size_t i = 0; i < n; ++i) {
    zs[i] = FpSub(shares[i].mac,
                  FpMul(opened[i], dealer_->mac_key_share()));
  }
  std::vector<u128> zsum = zs;
  if (num_parties() > 1) {
    // pivot-taint: allow(raw-send) MAC-check shares z_i = mac_i - x·Δ_i
    // are uniform under the secret MAC key and sum to zero iff the
    // opened values are untampered; publishing them IS the check.
    PIVOT_RETURN_IF_ERROR(endpoint_->Broadcast(EncodeU128Vector(zs)));
    for (int p = 0; p < num_parties(); ++p) {
      if (p == party_id()) continue;
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(p));
      PIVOT_ASSIGN_OR_RETURN(std::vector<u128> theirs, DecodeU128Vector(msg));
      if (theirs.size() != n) {
        return Status::ProtocolError("MAC share vector size mismatch");
      }
      for (size_t i = 0; i < n; ++i) zsum[i] = FpAdd(zsum[i], theirs[i]);
    }
  }
  // Constant-time verdict: fold every element before the single branch so
  // timing cannot reveal *which* index (and hence which value) failed.
  // An early-exit scan would leak the position of the first tampered
  // share through round latency.
  if (!ct::AllZeroU128(zsum.data(), zsum.size())) {
    return Status::IntegrityError("MAC check failed: share was tampered");
  }
  return opened;
}

Result<u128> AuthEngine::Open(const AuthShare& share) {
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> out, OpenVec({share}));
  return out[0];
}

Result<AuthShare> AuthEngine::Mul(const AuthShare& a, const AuthShare& b) {
  AuthDealer::AuthTriple t = dealer_->NextTriple();
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> ef,
                         OpenVec({Sub(a, t.a), Sub(b, t.b)}));
  const u128 e = ef[0];
  const u128 f = ef[1];
  // c = tc + e·tb + f·ta + e·f
  AuthShare out = t.c;
  out = Add(out, MulPub(t.b, e));
  out = Add(out, MulPub(t.a, f));
  const u128 ef_prod = FpMul(e, f);
  if (party_id() == 0) out.value = FpAdd(out.value, ef_prod);
  out.mac = FpAdd(out.mac, FpMul(dealer_->mac_key_share(), ef_prod));
  return out;
}

}  // namespace pivot
