#ifndef PIVOT_MPC_ENGINE_H_
#define PIVOT_MPC_ENGINE_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "mpc/field.h"
#include "mpc/preprocessing.h"
#include "net/network.h"

namespace pivot {

// Parameters of the fixed-point computation domain inside MPC.
struct MpcConfig {
  // Fractional bits of the fixed-point representation.
  int frac_bits = 16;
  // Logical values satisfy |x| < 2^(value_bits - 1).
  int value_bits = 64;
  // Statistical masking security (bits) for truncation/comparison opens.
  int stat_sec = 40;
};

// Semi-honest additive secret sharing engine (the online phase of the
// paper's SPDZ substrate, Section 2.2).
//
// One instance lives on each party's thread, bound to that party's network
// endpoint and its view of the offline phase. All methods are SPMD: every
// party calls the same method with its own shares, and the method returns
// that party's share of the result. Interactive primitives (anything
// returning Result) exchange messages; linear operations are local.
//
// Shares are elements of F_p (p = 2^127 - 1, see field.h). Logical values
// are signed fixed-point integers with cfg.frac_bits fractional bits.
class MpcEngine {
 public:
  MpcEngine(Endpoint* endpoint, Preprocessing* prep, uint64_t personal_seed,
            MpcConfig cfg = MpcConfig());

  int party_id() const { return endpoint_->id(); }
  int num_parties() const { return endpoint_->num_parties(); }
  const MpcConfig& config() const { return cfg_; }

  // ----- Input / constants / output -----------------------------------

  // Share of a public constant (party 0 holds it, others hold 0).
  u128 Constant(i128 v) const {
    return party_id() == 0 ? FpFromSigned(v) : 0;
  }
  u128 ConstantField(u128 v) const { return party_id() == 0 ? v : 0; }

  // Owner secret-shares `value` (ignored on other parties). One round.
  Result<u128> Input(int owner, i128 value);
  Result<std::vector<u128>> InputVector(int owner,
                                        const std::vector<i128>& values,
                                        size_t size);

  // Reconstructs values towards all parties. One round.
  Result<u128> Open(u128 share);
  Result<std::vector<u128>> OpenVec(const std::vector<u128>& shares);

  // ----- Linear operations (local) -------------------------------------

  static u128 Add(u128 a, u128 b) { return FpAdd(a, b); }
  static u128 Sub(u128 a, u128 b) { return FpSub(a, b); }
  static u128 Neg(u128 a) { return FpNeg(a); }
  u128 AddConst(u128 a, i128 c) const {
    return party_id() == 0 ? FpAdd(a, FpFromSigned(c)) : a;
  }
  u128 AddConstField(u128 a, u128 c) const {
    return party_id() == 0 ? FpAdd(a, c) : a;
  }
  static u128 MulPub(u128 a, u128 pub) { return FpMul(a, pub); }

  // ----- Multiplication (Beaver) ----------------------------------------

  Result<u128> Mul(u128 a, u128 b);
  // Element-wise products; single communication round.
  Result<std::vector<u128>> MulVec(const std::vector<u128>& a,
                                   const std::vector<u128>& b);

  // Fixed-point multiply: Mul followed by truncation of frac_bits.
  Result<u128> MulFixed(u128 a, u128 b);
  Result<std::vector<u128>> MulFixedVec(const std::vector<u128>& a,
                                        const std::vector<u128>& b);

  // ----- Truncation ------------------------------------------------------

  // Probabilistic truncation by 2^f (±1 ulp error): |x| < 2^(k_bound-1).
  Result<std::vector<u128>> TruncPrVec(const std::vector<u128>& xs, int f,
                                       int k_bound);
  // Exact truncation (floor division by 2^f).
  Result<std::vector<u128>> TruncExactVec(const std::vector<u128>& xs, int f,
                                          int k_bound);

  // ----- Comparisons ------------------------------------------------------

  // Shared bit [x < 0] for |x| < 2^(k_bound-1). Counted as Cc.
  Result<std::vector<u128>> LessThanZeroVec(const std::vector<u128>& xs,
                                            int k_bound);
  Result<u128> LessThanZero(u128 x, int k_bound);
  // Shared bit [a < b].
  Result<u128> LessThan(u128 a, u128 b, int k_bound);
  // cond ? a : b, cond a shared bit.
  Result<u128> Select(u128 cond, u128 a, u128 b);

  // Secure maximum scan (the paper's best-split selection loop): returns
  // shares of the maximum value and of its index.
  struct ArgmaxShares {
    u128 index = 0;  // shared index as a field element
    u128 max = 0;    // shared maximum value
  };
  // `k_bound` bounds the compared differences.
  Result<ArgmaxShares> Argmax(const std::vector<u128>& values, int k_bound);

  // Derived comparison helpers (each costs one or two comparisons).
  // |x| for |x| < 2^(k_bound-1).
  Result<std::vector<u128>> AbsVec(const std::vector<u128>& xs, int k_bound);
  // sign(x) in {-1, 0, 1} is NOT provided (zero-testing is a different
  // protocol); SignNonzero returns shares of -1/+1 for x != 0.
  Result<std::vector<u128>> SignNonzeroVec(const std::vector<u128>& xs,
                                           int k_bound);
  // min(a, b) element-wise.
  Result<std::vector<u128>> MinVec(const std::vector<u128>& a,
                                   const std::vector<u128>& b, int k_bound);
  // Secure minimum scan (same shape as Argmax).
  Result<ArgmaxShares> Argmin(const std::vector<u128>& values, int k_bound);

  // Converts a shared index i* into shares of the one-hot indicator vector
  // (lambda in the paper's private split selection): size `size`,
  // lambda_t = [t == i*]. Uses one equality test per position.
  Result<std::vector<u128>> OneHot(u128 index, size_t size);

  // ----- Bit machinery -----------------------------------------------------

  // Exact bit decomposition of non-negative integers x < 2^bits.
  Result<std::vector<std::vector<u128>>> BitDecVec(const std::vector<u128>& xs,
                                                   int bits);

  // ----- Division / exponential / softmax ---------------------------------

  // Fixed-point reciprocal 1/X for X > 0 (raw value 0 < x < 2^48).
  Result<std::vector<u128>> ReciprocalVec(const std::vector<u128>& xs);
  Result<u128> DivFixed(u128 numerator, u128 denominator);
  Result<std::vector<u128>> DivFixedVec(const std::vector<u128>& nums,
                                        const std::vector<u128>& dens);

  // Fixed-point exp(X) via the limit approximation (1 + X/2^l)^(2^l);
  // valid for |X| <= 2^(l-2) with l = 10. See DESIGN.md.
  Result<std::vector<u128>> ExpFixedVec(const std::vector<u128>& xs);

  // Fixed-point square root for X >= 0 (raw value < 2^48), via the
  // normalized Newton iteration for 1/sqrt followed by X·(1/sqrt(X)).
  Result<std::vector<u128>> SqrtFixedVec(const std::vector<u128>& xs);

  // Fixed-point natural logarithm for X > 0 (raw value < 2^48):
  // normalizes to [0.5, 1) and evaluates ln via the atanh series, then adds
  // back the exponent times ln 2. Used by the MPC Laplace sampler.
  Result<std::vector<u128>> LogFixedVec(const std::vector<u128>& xs);

  // Softmax over shared logits (secure exp + secure division).
  Result<std::vector<u128>> Softmax(const std::vector<u128>& logits);

  // Number of communication rounds this engine has participated in.
  uint64_t rounds() const { return rounds_; }

  // Engine-internal randomness/round position, captured by training
  // checkpoints (pivot/checkpoint.h) so a resumed party replays the exact
  // same masked-opening randomness as the uninterrupted run.
  struct EngineState {
    RngState rng;
    uint64_t rounds = 0;
  };
  EngineState SaveState() const { return EngineState{rng_.SaveState(), rounds_}; }
  void RestoreState(const EngineState& state) {
    rng_.RestoreState(state.rng);
    rounds_ = state.rounds;
  }

 private:
  // Shared-bit result of [c < r] for public c (per instance) against the
  // shared bits of r; all instances advance one bit level per round.
  Result<std::vector<u128>> BitLT(
      const std::vector<uint64_t>& c_public,
      const std::vector<std::vector<u128>>& r_bits);

  // Normalization of positive values into [0.5, 1) (Catrina-Saxena style),
  // shared by the reciprocal and logarithm pipelines.
  struct Normalized {
    // Raw shares in [2^(kRecipFrac-1), 2^kRecipFrac): X_norm in [0.5, 1).
    std::vector<u128> x2;
    // Shares of 2^(kNormBits+1-j) where j is the MSB index (denormalizer).
    std::vector<u128> c2;
    // Shares of the integer exponent e with X = X_norm · 2^e.
    std::vector<u128> exponent;
    // Shares of sqrt(2^e) at frac_bits (for SqrtFixedVec).
    std::vector<u128> sqrt_scale;
  };
  Result<Normalized> Normalize(const std::vector<u128>& xs);

  Endpoint* endpoint_;
  Preprocessing* prep_;
  Rng rng_;
  MpcConfig cfg_;
  uint64_t rounds_ = 0;
};

}  // namespace pivot

#endif  // PIVOT_MPC_ENGINE_H_
