#include "mpc/engine.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/op_counters.h"
#include "net/codec.h"

namespace pivot {

namespace {

// Catrina-Saxena initial approximation constant 2.9142 at 30 fractional
// bits, used by the Newton reciprocal iteration.
constexpr int kRecipFrac = 30;
// round(2.9142 * 2^30)
constexpr u128 kRecipInit = 3128781047ULL;
// Normalization domain for reciprocal inputs.
constexpr int kNormBits = 56;
// exp(x) ~ (1 + x/2^l)^(2^l).
constexpr int kExpLimitLog = 10;

}  // namespace

MpcEngine::MpcEngine(Endpoint* endpoint, Preprocessing* prep,
                     uint64_t personal_seed, MpcConfig cfg)
    : endpoint_(endpoint),
      prep_(prep),
      rng_(personal_seed ^ (0x9d3f * (endpoint->id() + 1))),
      cfg_(cfg) {
  PIVOT_CHECK(cfg_.frac_bits > 0 && cfg_.frac_bits < 60);
  PIVOT_CHECK(cfg_.value_bits + cfg_.stat_sec + 1 <= 126);
}

// ---------------------------------------------------------------------------
// Input / Open
// ---------------------------------------------------------------------------

Result<u128> MpcEngine::Input(int owner, i128 value) {
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                         InputVector(owner, {value}, 1));
  return shares[0];
}

Result<std::vector<u128>> MpcEngine::InputVector(
    int owner, const std::vector<i128>& values, size_t size) {
  const int m = num_parties();
  if (m == 1) {
    std::vector<u128> out(size);
    for (size_t i = 0; i < size; ++i) out[i] = FpFromSigned(values[i]);
    return out;
  }
  ++rounds_;
  if (party_id() == owner) {
    PIVOT_CHECK_MSG(values.size() == size, "input size mismatch");
    std::vector<std::vector<u128>> all(m, std::vector<u128>(size));
    for (size_t i = 0; i < size; ++i) {
      u128 sum = 0;
      for (int p = 0; p < m; ++p) {
        if (p == owner) continue;
        all[p][i] = FpRandom(rng_);
        sum = FpAdd(sum, all[p][i]);
      }
      all[owner][i] = FpSub(FpFromSigned(values[i]), sum);
    }
    for (int p = 0; p < m; ++p) {
      if (p != owner) {
        // pivot-taint: allow(raw-send) additive share distribution: each
        // vector all[p] is fresh uniform randomness, independent of the
        // secret unless all m shares are combined.
        PIVOT_RETURN_IF_ERROR(endpoint_->Send(p, EncodeU128Vector(all[p])));
      }
    }
    return all[owner];
  }
  PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(owner));
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> mine, DecodeU128Vector(msg));
  if (mine.size() != size) {
    return Status::ProtocolError("input share vector has wrong size");
  }
  return mine;
}

Result<u128> MpcEngine::Open(u128 share) {
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> out, OpenVec({share}));
  return out[0];
}

Result<std::vector<u128>> MpcEngine::OpenVec(const std::vector<u128>& shares) {
  if (shares.empty()) return std::vector<u128>{};
  if (num_parties() == 1) return shares;
  ++rounds_;
  PIVOT_RETURN_IF_ERROR(endpoint_->Broadcast(EncodeU128Vector(shares)));
  std::vector<u128> sum = shares;
  for (int p = 0; p < num_parties(); ++p) {
    if (p == party_id()) continue;
    PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(p));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> theirs, DecodeU128Vector(msg));
    if (theirs.size() != shares.size()) {
      return Status::ProtocolError("opened share vector size mismatch");
    }
    for (size_t i = 0; i < sum.size(); ++i) sum[i] = FpAdd(sum[i], theirs[i]);
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Multiplication
// ---------------------------------------------------------------------------

Result<u128> MpcEngine::Mul(u128 a, u128 b) {
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> out, MulVec({a}, {b}));
  return out[0];
}

Result<std::vector<u128>> MpcEngine::MulVec(const std::vector<u128>& a,
                                            const std::vector<u128>& b) {
  PIVOT_CHECK_MSG(a.size() == b.size(), "MulVec size mismatch");
  if (a.empty()) return std::vector<u128>{};
  const size_t n = a.size();
  OpCounters::Global().AddSecureOp(n);

  std::vector<Preprocessing::Triple> triples(n);
  std::vector<u128> masked(2 * n);
  for (size_t i = 0; i < n; ++i) {
    triples[i] = prep_->NextTriple();
    masked[i] = FpSub(a[i], triples[i].a);          // e = a - ta
    masked[n + i] = FpSub(b[i], triples[i].b);      // f = b - tb
  }
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, OpenVec(masked));

  std::vector<u128> c(n);
  for (size_t i = 0; i < n; ++i) {
    const u128 e = opened[i];
    const u128 f = opened[n + i];
    // ab = ef + e·tb + f·ta + ta·tb
    u128 share = triples[i].c;
    share = FpAdd(share, FpMul(e, triples[i].b));
    share = FpAdd(share, FpMul(f, triples[i].a));
    if (party_id() == 0) share = FpAdd(share, FpMul(e, f));
    c[i] = share;
  }
  return c;
}

Result<u128> MpcEngine::MulFixed(u128 a, u128 b) {
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> out, MulFixedVec({a}, {b}));
  return out[0];
}

Result<std::vector<u128>> MpcEngine::MulFixedVec(const std::vector<u128>& a,
                                                 const std::vector<u128>& b) {
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> prod, MulVec(a, b));
  // Product carries 2f fractional bits and up to 2(k-1) magnitude bits;
  // truncate back. Bound the product domain by 2*value_bits.
  const int k_bound = std::min(2 * cfg_.value_bits, 126 - cfg_.stat_sec - 1);
  return TruncPrVec(prod, cfg_.frac_bits, k_bound);
}

// ---------------------------------------------------------------------------
// Truncation
// ---------------------------------------------------------------------------

Result<std::vector<u128>> MpcEngine::TruncPrVec(const std::vector<u128>& xs,
                                                int f, int k_bound) {
  if (xs.empty()) return std::vector<u128>{};
  PIVOT_CHECK(f > 0 && f < k_bound);
  const int kappa = std::min(cfg_.stat_sec, 125 - k_bound);
  PIVOT_CHECK_MSG(kappa >= 20, "k_bound too large for statistical masking");
  const size_t n = xs.size();
  OpCounters::Global().AddSecureOp(n);

  const u128 offset = static_cast<u128>(1) << (k_bound - 1);
  std::vector<Preprocessing::TruncMask> masks;
  masks.reserve(n);
  std::vector<u128> ys(n);
  for (size_t i = 0; i < n; ++i) {
    masks.push_back(prep_->NextTruncMask(f, k_bound + kappa - f));
    u128 r0 = 0;
    for (int j = 0; j < f; ++j) {
      r0 = FpAdd(r0, FpMul(masks[i].low_bit_shares[j],
                           static_cast<u128>(1) << j));
    }
    u128 y = FpAdd(xs[i], AddConstField(0, offset));
    y = FpAdd(y, r0);
    y = FpAdd(y, FpMul(masks[i].r1_share, static_cast<u128>(1) << f));
    ys[i] = y;
  }
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, OpenVec(ys));

  std::vector<u128> out(n);
  const u128 offset_hi = offset >> f;
  for (size_t i = 0; i < n; ++i) {
    // floor(y / 2^f) = floor(xhat / 2^f) + r1 + carry (carry in {0,1}).
    const u128 c_hi = opened[i] >> f;
    u128 share = FpSub(ConstantField(c_hi), masks[i].r1_share);
    share = FpSub(share, ConstantField(offset_hi));
    out[i] = share;
  }
  return out;
}

Result<std::vector<u128>> MpcEngine::TruncExactVec(const std::vector<u128>& xs,
                                                   int f, int k_bound) {
  if (xs.empty()) return std::vector<u128>{};
  PIVOT_CHECK(f > 0 && f < k_bound && f <= 63);
  const int kappa = std::min(cfg_.stat_sec, 125 - k_bound);
  PIVOT_CHECK_MSG(kappa >= 20, "k_bound too large for statistical masking");
  const size_t n = xs.size();
  OpCounters::Global().AddSecureOp(n);

  const u128 offset = static_cast<u128>(1) << (k_bound - 1);
  std::vector<Preprocessing::TruncMask> masks;
  masks.reserve(n);
  std::vector<u128> ys(n);
  for (size_t i = 0; i < n; ++i) {
    masks.push_back(prep_->NextTruncMask(f, k_bound + kappa - f));
    u128 r0 = 0;
    for (int j = 0; j < f; ++j) {
      r0 = FpAdd(r0, FpMul(masks[i].low_bit_shares[j],
                           static_cast<u128>(1) << j));
    }
    u128 y = FpAdd(xs[i], AddConstField(0, offset));
    y = FpAdd(y, r0);
    y = FpAdd(y, FpMul(masks[i].r1_share, static_cast<u128>(1) << f));
    ys[i] = y;
  }
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, OpenVec(ys));

  // u = [c' < r0] via bitwise comparison on the masked low bits.
  std::vector<uint64_t> c_low(n);
  std::vector<std::vector<u128>> r_bits(n);
  for (size_t i = 0; i < n; ++i) {
    c_low[i] = static_cast<uint64_t>(opened[i] & ((static_cast<u128>(1) << f) - 1));
    r_bits[i] = masks[i].low_bit_shares;
  }
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> u, BitLT(c_low, r_bits));

  const u128 inv2f = FpInv(static_cast<u128>(1) << f);
  const u128 offset_hi = offset >> f;
  std::vector<u128> out(n);
  for (size_t i = 0; i < n; ++i) {
    // <xhat mod 2^f> = c' - <r0> + 2^f·<u>
    u128 r0 = 0;
    for (int j = 0; j < f; ++j) {
      r0 = FpAdd(r0, FpMul(masks[i].low_bit_shares[j],
                           static_cast<u128>(1) << j));
    }
    u128 low = FpSub(ConstantField(c_low[i]), r0);
    low = FpAdd(low, FpMul(u[i], static_cast<u128>(1) << f));
    // <floor(xhat / 2^f)> = (<xhat> - <xhat mod 2^f>) / 2^f (exact)
    u128 xhat = FpAdd(xs[i], AddConstField(0, offset));
    u128 hi = FpMul(FpSub(xhat, low), inv2f);
    out[i] = FpSub(hi, ConstantField(offset_hi));
  }
  return out;
}

Result<std::vector<u128>> MpcEngine::BitLT(
    const std::vector<uint64_t>& c_public,
    const std::vector<std::vector<u128>>& r_bits) {
  const size_t n = c_public.size();
  PIVOT_CHECK(r_bits.size() == n);
  if (n == 0) return std::vector<u128>{};
  const size_t f = r_bits[0].size();

  // e = "all more-significant bits equal so far"; acc = result.
  std::vector<u128> e(n, ConstantField(1));
  std::vector<u128> acc(n, 0);
  for (size_t level = f; level-- > 0;) {
    std::vector<u128> rj(n);
    for (size_t i = 0; i < n; ++i) rj[i] = r_bits[i][level];
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> t, MulVec(e, rj));
    for (size_t i = 0; i < n; ++i) {
      const bool c_bit = (c_public[i] >> level) & 1;
      if (c_bit) {
        // c_j = 1: no contribution; equality requires r_j = 1.
        e[i] = t[i];
      } else {
        // c_j = 0: r_j = 1 decides r > c; equality requires r_j = 0.
        acc[i] = FpAdd(acc[i], t[i]);
        e[i] = FpSub(e[i], t[i]);
      }
    }
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Comparisons
// ---------------------------------------------------------------------------

Result<std::vector<u128>> MpcEngine::LessThanZeroVec(
    const std::vector<u128>& xs, int k_bound) {
  OpCounters::Global().AddSecureComparison(xs.size());
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> trunc,
                         TruncExactVec(xs, k_bound - 1, k_bound));
  // floor(x / 2^(k-1)) is 0 for x >= 0 and -1 for x < 0.
  std::vector<u128> out(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) out[i] = FpNeg(trunc[i]);
  return out;
}

Result<u128> MpcEngine::LessThanZero(u128 x, int k_bound) {
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> out, LessThanZeroVec({x}, k_bound));
  return out[0];
}

Result<u128> MpcEngine::LessThan(u128 a, u128 b, int k_bound) {
  return LessThanZero(Sub(a, b), k_bound);
}

Result<u128> MpcEngine::Select(u128 cond, u128 a, u128 b) {
  PIVOT_ASSIGN_OR_RETURN(u128 t, Mul(cond, Sub(a, b)));
  return Add(b, t);
}

Result<MpcEngine::ArgmaxShares> MpcEngine::Argmax(
    const std::vector<u128>& values, int k_bound) {
  PIVOT_CHECK_MSG(!values.empty(), "Argmax of empty vector");
  ArgmaxShares best;
  best.max = values[0];
  best.index = ConstantField(0);
  for (size_t i = 1; i < values.size(); ++i) {
    PIVOT_ASSIGN_OR_RETURN(u128 gt, LessThanZero(Sub(best.max, values[i]),
                                                 k_bound));
    // One batched round for both selects.
    PIVOT_ASSIGN_OR_RETURN(
        std::vector<u128> upd,
        MulVec({gt, gt},
               {Sub(values[i], best.max),
                Sub(ConstantField(static_cast<u128>(i)), best.index)}));
    best.max = Add(best.max, upd[0]);
    best.index = Add(best.index, upd[1]);
  }
  return best;
}

Result<std::vector<u128>> MpcEngine::AbsVec(const std::vector<u128>& xs,
                                             int k_bound) {
  // |x| = x - 2·x·[x < 0].
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> neg, LessThanZeroVec(xs, k_bound));
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> prod, MulVec(neg, xs));
  std::vector<u128> out(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    out[i] = FpSub(xs[i], FpAdd(prod[i], prod[i]));
  }
  return out;
}

Result<std::vector<u128>> MpcEngine::SignNonzeroVec(
    const std::vector<u128>& xs, int k_bound) {
  // sign(x) = 1 - 2·[x < 0] for x != 0.
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> neg, LessThanZeroVec(xs, k_bound));
  std::vector<u128> out(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    out[i] = AddConstField(FpNeg(FpAdd(neg[i], neg[i])), 1);
  }
  return out;
}

Result<std::vector<u128>> MpcEngine::MinVec(const std::vector<u128>& a,
                                            const std::vector<u128>& b,
                                            int k_bound) {
  // min(a,b) = b + (a-b)·[a < b].
  std::vector<u128> diffs(a.size());
  for (size_t i = 0; i < a.size(); ++i) diffs[i] = Sub(a[i], b[i]);
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> lt,
                         LessThanZeroVec(diffs, k_bound));
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> prod, MulVec(lt, diffs));
  std::vector<u128> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = FpAdd(b[i], prod[i]);
  return out;
}

Result<MpcEngine::ArgmaxShares> MpcEngine::Argmin(
    const std::vector<u128>& values, int k_bound) {
  PIVOT_CHECK_MSG(!values.empty(), "Argmin of empty vector");
  ArgmaxShares best;
  best.max = values[0];
  best.index = ConstantField(0);
  for (size_t i = 1; i < values.size(); ++i) {
    PIVOT_ASSIGN_OR_RETURN(u128 lt, LessThanZero(Sub(values[i], best.max),
                                                 k_bound));
    PIVOT_ASSIGN_OR_RETURN(
        std::vector<u128> upd,
        MulVec({lt, lt},
               {Sub(values[i], best.max),
                Sub(ConstantField(static_cast<u128>(i)), best.index)}));
    best.max = Add(best.max, upd[0]);
    best.index = Add(best.index, upd[1]);
  }
  return best;
}

Result<std::vector<u128>> MpcEngine::OneHot(u128 index, size_t size) {
  PIVOT_CHECK(size > 0);
  // b_t = [index < t + 1], computed in one comparison batch; the one-hot
  // vector is the discrete derivative of b.
  std::vector<u128> diffs(size);
  const int k_bound = 40;  // indices are tiny; small bound keeps this cheap
  for (size_t t = 0; t < size; ++t) {
    diffs[t] = Sub(index, ConstantField(static_cast<u128>(t + 1)));
  }
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> below,
                         LessThanZeroVec(diffs, k_bound));
  std::vector<u128> onehot(size);
  onehot[0] = below[0];
  for (size_t t = 1; t < size; ++t) onehot[t] = FpSub(below[t], below[t - 1]);
  return onehot;
}

// ---------------------------------------------------------------------------
// Bit decomposition
// ---------------------------------------------------------------------------

Result<std::vector<std::vector<u128>>> MpcEngine::BitDecVec(
    const std::vector<u128>& xs, int bits) {
  PIVOT_CHECK(bits > 0 && bits <= 63);
  const int kappa = std::min(cfg_.stat_sec, 125 - bits);
  const size_t n = xs.size();
  if (n == 0) return std::vector<std::vector<u128>>{};
  OpCounters::Global().AddSecureOp(n);

  std::vector<Preprocessing::TruncMask> masks;
  masks.reserve(n);
  std::vector<u128> ys(n);
  for (size_t i = 0; i < n; ++i) {
    masks.push_back(prep_->NextTruncMask(bits, kappa));
    u128 r0 = 0;
    for (int j = 0; j < bits; ++j) {
      r0 = FpAdd(r0, FpMul(masks[i].low_bit_shares[j],
                           static_cast<u128>(1) << j));
    }
    ys[i] = FpAdd(xs[i], FpAdd(r0, FpMul(masks[i].r1_share,
                                         static_cast<u128>(1) << bits)));
  }
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened, OpenVec(ys));

  // x = c - r: ripple-borrow binary subtraction over the low `bits` bits,
  // with public c bits and shared r bits. One multiplication per level.
  std::vector<std::vector<u128>> out(n, std::vector<u128>(bits));
  std::vector<u128> borrow(n, 0);
  for (int j = 0; j < bits; ++j) {
    std::vector<u128> rj(n);
    for (size_t i = 0; i < n; ++i) rj[i] = masks[i].low_bit_shares[j];
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> rb, MulVec(rj, borrow));
    for (size_t i = 0; i < n; ++i) {
      const bool c_bit = (opened[i] >> j) & 1;
      // xor_rb = r_j XOR borrow
      const u128 xor_rb = FpSub(FpAdd(rj[i], borrow[i]),
                                FpAdd(rb[i], rb[i]));
      // x_j = c_j XOR r_j XOR borrow
      out[i][j] = c_bit ? FpSub(ConstantField(1), xor_rb) : xor_rb;
      // next borrow: c_j = 0 -> r + b - r·b ; c_j = 1 -> r·b
      borrow[i] = c_bit ? rb[i] : FpSub(FpAdd(rj[i], borrow[i]), rb[i]);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reciprocal / division
// ---------------------------------------------------------------------------

Result<MpcEngine::Normalized> MpcEngine::Normalize(const std::vector<u128>& xs) {
  const size_t n = xs.size();
  const int f = cfg_.frac_bits;

  // 1. Bits of x (as a raw field integer < 2^kNormBits).
  PIVOT_ASSIGN_OR_RETURN(std::vector<std::vector<u128>> bits,
                         BitDecVec(xs, kNormBits));

  // 2. MSB one-hot via prefix-OR from the top; accumulate the
  //    normalization factor c = 2^(kNormBits-1-j), the denormalizer
  //    c2 = 2^(kNormBits+1-j), and the exponent e = j + 1 - f (all affine
  //    in the one-hot bits, hence local).
  std::vector<u128> any_above(n, 0);
  std::vector<u128> c(n, 0);
  Normalized norm;
  norm.c2.assign(n, 0);
  norm.exponent.assign(n, 0);
  norm.sqrt_scale.assign(n, 0);
  for (int j = kNormBits - 1; j >= 0; --j) {
    std::vector<u128> bj(n);
    for (size_t i = 0; i < n; ++i) bj[i] = bits[i][j];
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> t, MulVec(any_above, bj));
    const u128 exp_coeff = FpFromSigned(j + 1 - f);
    // sqrt(2^(j+1-f)) at f fractional bits (public per-level constant).
    const u128 sqrt_coeff = FpFromSigned(static_cast<i128>(
        std::llround(std::ldexp(std::sqrt(std::ldexp(1.0, j + 1 - f)), f))));
    for (size_t i = 0; i < n; ++i) {
      const u128 y_new = FpSub(FpAdd(any_above[i], bj[i]), t[i]);
      const u128 m_j = FpSub(y_new, any_above[i]);  // [j is the MSB]
      any_above[i] = y_new;
      c[i] = FpAdd(c[i], FpMul(m_j, static_cast<u128>(1) << (kNormBits - 1 - j)));
      norm.c2[i] = FpAdd(norm.c2[i],
                         FpMul(m_j, static_cast<u128>(1) << (kNormBits + 1 - j)));
      norm.exponent[i] = FpAdd(norm.exponent[i], FpMul(m_j, exp_coeff));
      norm.sqrt_scale[i] = FpAdd(norm.sqrt_scale[i], FpMul(m_j, sqrt_coeff));
    }
  }

  // 3. x_norm = x·c in [2^(kNormBits-1), 2^kNormBits); shrink to the
  //    kRecipFrac domain: x2 in [2^(kRecipFrac-1), 2^kRecipFrac).
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> xnorm, MulVec(xs, c));
  PIVOT_ASSIGN_OR_RETURN(
      norm.x2, TruncExactVec(xnorm, kNormBits - kRecipFrac, kNormBits + 1));
  return norm;
}

Result<std::vector<u128>> MpcEngine::ReciprocalVec(const std::vector<u128>& xs) {
  const size_t n = xs.size();
  if (n == 0) return std::vector<u128>{};
  const int f = cfg_.frac_bits;

  PIVOT_ASSIGN_OR_RETURN(Normalized norm, Normalize(xs));
  const std::vector<u128>& x2 = norm.x2;
  const std::vector<u128>& c2 = norm.c2;

  // Newton iterations for w ~ 1/X_norm at kRecipFrac fractional bits.
  // w0 = 2.9142 - 2·x2 gives |1 - X·w0| <= 0.0858; 4 iterations square
  // the error far below the output precision.
  std::vector<u128> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = FpSub(ConstantField(kRecipInit), FpAdd(x2[i], x2[i]));
  }
  const u128 two = static_cast<u128>(2) << kRecipFrac;
  for (int iter = 0; iter < 4; ++iter) {
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> t, MulVec(w, x2));
    PIVOT_ASSIGN_OR_RETURN(t, TruncPrVec(t, kRecipFrac, 2 * kRecipFrac + 3));
    for (size_t i = 0; i < n; ++i) t[i] = FpSub(ConstantField(two), t[i]);
    PIVOT_ASSIGN_OR_RETURN(w, MulVec(w, t));
    PIVOT_ASSIGN_OR_RETURN(w, TruncPrVec(w, kRecipFrac, 2 * kRecipFrac + 3));
  }

  // 5. Denormalize. With MSB index j: 2^f·(1/X) = w·2^(2f-j-1-kRecipFrac),
  //    and c2 = 2^(kNormBits+1-j), so the result is
  //    Trunc(w·c2, kNormBits + kRecipFrac + 2 - 2f).
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> scaled, MulVec(w, c2));
  const int shift = kNormBits + kRecipFrac + 2 - 2 * f;
  PIVOT_CHECK(shift > 0 && shift <= 63);
  // Bound: w < 2^(kRecipFrac+1), c2 <= 2^(kNormBits+1) -> product < 2^88.
  return TruncExactVec(scaled, shift, kNormBits + kRecipFrac + 4);
}

Result<std::vector<u128>> MpcEngine::SqrtFixedVec(const std::vector<u128>& xs) {
  // Normalize X = Z · 2^e with Z in [0.5, 1), compute sqrt(Z) with a
  // Newton iteration on W = 1/sqrt(Z) (then sqrt(Z) = Z·W), and multiply
  // back the scale sqrt(2^e) — which the normalization pass folds from
  // the MSB one-hot as a linear functional with public per-level
  // constants (so the secret exponent never needs a parity split).
  const size_t n = xs.size();
  if (n == 0) return std::vector<u128>{};
  const int kb = 2 * kRecipFrac + 3;

  PIVOT_ASSIGN_OR_RETURN(Normalized norm, Normalize(xs));
  const std::vector<u128>& z = norm.x2;  // [0.5, 1) at kRecipFrac bits

  // W0 = 2.2 - 1.42·Z: |1 - Z·W0^2| < 0.2 over [0.5, 1); 4 iterations of
  // W <- W·(3 - Z·W^2)/2 square the error far below 2^-kRecipFrac... the
  // convergence is quadratic with factor ~1.5·err^2.
  constexpr u128 kSqrtInitA = 2362232013ULL;  // round(2.2  · 2^30)
  constexpr u128 kSqrtInitB = 1524713390ULL;  // round(1.42 · 2^30)
  std::vector<u128> w(n);
  for (size_t i = 0; i < n; ++i) {
    // Both terms at 2·kRecipFrac fractional bits before the truncation.
    w[i] = FpSub(ConstantField(kSqrtInitA << kRecipFrac),
                 MulPub(z[i], kSqrtInitB));
  }
  PIVOT_ASSIGN_OR_RETURN(w, TruncPrVec(w, kRecipFrac, kb));
  const u128 three = static_cast<u128>(3) << kRecipFrac;
  for (int iter = 0; iter < 4; ++iter) {
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> w2, MulVec(w, w));
    PIVOT_ASSIGN_OR_RETURN(w2, TruncPrVec(w2, kRecipFrac, kb));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> zw2, MulVec(z, w2));
    PIVOT_ASSIGN_OR_RETURN(zw2, TruncPrVec(zw2, kRecipFrac, kb));
    std::vector<u128> t(n);
    for (size_t i = 0; i < n; ++i) t[i] = FpSub(ConstantField(three), zw2[i]);
    PIVOT_ASSIGN_OR_RETURN(w, MulVec(w, t));
    PIVOT_ASSIGN_OR_RETURN(w, TruncPrVec(w, kRecipFrac + 1, kb));  // ... / 2
  }
  // sqrt(Z) = Z·W at kRecipFrac bits.
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> sqrt_z, MulVec(z, w));
  PIVOT_ASSIGN_OR_RETURN(sqrt_z, TruncPrVec(sqrt_z, kRecipFrac, kb));

  // sqrt(X) = sqrt(Z) · sqrt(2^e); the scale share carries f fractional
  // bits, so the product drops kRecipFrac bits to land on f.
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> out,
                         MulVec(sqrt_z, norm.sqrt_scale));
  return TruncExactVec(out, kRecipFrac, kRecipFrac + 62);
}

Result<std::vector<u128>> MpcEngine::LogFixedVec(const std::vector<u128>& xs) {
  const size_t n = xs.size();
  if (n == 0) return std::vector<u128>{};
  const int f = cfg_.frac_bits;
  const int kb = 2 * kRecipFrac + 3;  // product bound for f2-domain values

  PIVOT_ASSIGN_OR_RETURN(Normalized norm, Normalize(xs));
  const std::vector<u128>& z = norm.x2;  // X_norm in [0.5, 1) at kRecipFrac

  // ln z = 2·atanh(t), t = (z-1)/(z+1) in (-1/3, 0].
  const u128 one = static_cast<u128>(1) << kRecipFrac;
  std::vector<u128> num(n), den(n);
  for (size_t i = 0; i < n; ++i) {
    num[i] = FpSub(z[i], ConstantField(one));
    den[i] = FpAdd(z[i], ConstantField(one));
  }
  // 1/den via Newton; w0 = (2.9142 - den)/2 gives |1 - den·w0| <= 0.0858
  // over den in [1.5, 2).
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> half_den,
                         TruncPrVec(den, 1, kRecipFrac + 3));
  std::vector<u128> w(n);
  constexpr u128 kRecipInitHalf = 1564390523ULL;  // round(2.9142 * 2^29)
  for (size_t i = 0; i < n; ++i) {
    w[i] = FpSub(ConstantField(kRecipInitHalf), half_den[i]);
  }
  const u128 two = static_cast<u128>(2) << kRecipFrac;
  for (int iter = 0; iter < 4; ++iter) {
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> t, MulVec(w, den));
    PIVOT_ASSIGN_OR_RETURN(t, TruncPrVec(t, kRecipFrac, kb));
    for (size_t i = 0; i < n; ++i) t[i] = FpSub(ConstantField(two), t[i]);
    PIVOT_ASSIGN_OR_RETURN(w, MulVec(w, t));
    PIVOT_ASSIGN_OR_RETURN(w, TruncPrVec(w, kRecipFrac, kb));
  }

  // t = num/den; atanh series t + t^3/3 + t^5/5 (|t| <= 1/3: the t^7 term
  // is below 1e-4, within fixed-point tolerance).
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> t, MulVec(num, w));
  PIVOT_ASSIGN_OR_RETURN(t, TruncPrVec(t, kRecipFrac, kb));
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> t2, MulVec(t, t));
  PIVOT_ASSIGN_OR_RETURN(t2, TruncPrVec(t2, kRecipFrac, kb));
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> t3, MulVec(t2, t));
  PIVOT_ASSIGN_OR_RETURN(t3, TruncPrVec(t3, kRecipFrac, kb));
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> t5, MulVec(t3, t2));
  PIVOT_ASSIGN_OR_RETURN(t5, TruncPrVec(t5, kRecipFrac, kb));

  constexpr u128 kInvThree = 357913941ULL;  // round(2^30 / 3)
  constexpr u128 kInvFive = 214748365ULL;   // round(2^30 / 5)
  constexpr u128 kLn2 = 744261118ULL;       // round(ln 2 · 2^30)
  std::vector<u128> series(n);
  for (size_t i = 0; i < n; ++i) {
    series[i] = FpAdd(FpMul(t3[i], kInvThree), FpMul(t5[i], kInvFive));
  }
  PIVOT_ASSIGN_OR_RETURN(series, TruncPrVec(series, kRecipFrac, kb));
  std::vector<u128> result(n);
  for (size_t i = 0; i < n; ++i) {
    const u128 atanh = FpAdd(t[i], series[i]);
    // ln X = 2·atanh + e·ln2 (e is an integer share; the product with the
    // public fixed-point ln2 stays exact).
    result[i] = FpAdd(FpAdd(atanh, atanh), FpMul(norm.exponent[i], kLn2));
  }
  // Convert kRecipFrac -> f fractional bits. |ln X| < 40.
  return TruncExactVec(result, kRecipFrac - f, kRecipFrac + 8);
}

Result<u128> MpcEngine::DivFixed(u128 numerator, u128 denominator) {
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> out,
                         DivFixedVec({numerator}, {denominator}));
  return out[0];
}

Result<std::vector<u128>> MpcEngine::DivFixedVec(
    const std::vector<u128>& nums, const std::vector<u128>& dens) {
  PIVOT_CHECK(nums.size() == dens.size());
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> recip, ReciprocalVec(dens));
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> prod, MulVec(nums, recip));
  const int k_bound = std::min(2 * cfg_.value_bits, 126 - cfg_.stat_sec - 1);
  return TruncPrVec(prod, cfg_.frac_bits, k_bound);
}

// ---------------------------------------------------------------------------
// Exponential / softmax
// ---------------------------------------------------------------------------

Result<std::vector<u128>> MpcEngine::ExpFixedVec(const std::vector<u128>& xs) {
  const size_t n = xs.size();
  if (n == 0) return std::vector<u128>{};
  const int f = cfg_.frac_bits;
  const int f2 = f + kExpLimitLog;  // internal precision

  // t = 1 + x·2^-l, expressed directly at f2 fractional bits (the raw
  // field value of x already equals x·2^f = (x·2^-l)·2^f2).
  std::vector<u128> t(n);
  const u128 one_f2 = static_cast<u128>(1) << f2;
  for (size_t i = 0; i < n; ++i) t[i] = AddConstField(xs[i], one_f2);

  // Square l times: t <- t^2 (fixed point at f2).
  for (int s = 0; s < kExpLimitLog; ++s) {
    PIVOT_ASSIGN_OR_RETURN(t, MulVec(t, t));
    PIVOT_ASSIGN_OR_RETURN(t, TruncPrVec(t, f2, 80));
  }
  // Back to f fractional bits.
  return TruncPrVec(t, kExpLimitLog, 60);
}

Result<std::vector<u128>> MpcEngine::Softmax(const std::vector<u128>& logits) {
  PIVOT_CHECK(!logits.empty());
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> exps, ExpFixedVec(logits));
  u128 sum = 0;
  for (u128 e : exps) sum = FpAdd(sum, e);
  std::vector<u128> sums(logits.size(), sum);
  return DivFixedVec(exps, sums);
}

}  // namespace pivot
