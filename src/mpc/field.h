#ifndef PIVOT_MPC_FIELD_H_
#define PIVOT_MPC_FIELD_H_

#include <cstdint>

#include "bigint/bigint.h"
#include "common/check.h"
#include "common/rng.h"

namespace pivot {

// Arithmetic in the secret-sharing field F_p with p = 2^127 - 1 (Mersenne).
//
// This is the Z_q of the paper's additive secret sharing scheme
// (Section 2.2). A 127-bit prime leaves room for 64-bit fixed-point logical
// values plus 40+ bits of statistical masking used by the comparison and
// truncation protocols (DESIGN.md §3). Elements are stored in
// `unsigned __int128`; multiplication decomposes into 64-bit limbs and
// folds with the Mersenne identity 2^127 ≡ 1 (mod p).

using u128 = unsigned __int128;
using i128 = __int128;

inline constexpr u128 kFieldPrime = ((static_cast<u128>(1) << 127) - 1);

// Folds a value < 2^128 into [0, 2^127); result may still equal p.
inline u128 FpFold(u128 x) {
  return (x & kFieldPrime) + (x >> 127);
}

inline u128 FpReduce(u128 x) {
  x = FpFold(x);
  if (x >= kFieldPrime) x -= kFieldPrime;
  return x;
}

inline u128 FpAdd(u128 a, u128 b) {
  // a, b < p < 2^127, so the sum fits in 128 bits.
  u128 s = a + b;
  if (s >= kFieldPrime) s -= kFieldPrime;
  return s;
}

inline u128 FpSub(u128 a, u128 b) {
  return a >= b ? a - b : a + kFieldPrime - b;
}

inline u128 FpNeg(u128 a) { return a == 0 ? 0 : kFieldPrime - a; }

// Full 127x127 -> 254-bit product with Mersenne folding.
inline u128 FpMul(u128 a, u128 b) {
  const uint64_t a0 = static_cast<uint64_t>(a);
  const uint64_t a1 = static_cast<uint64_t>(a >> 64);
  const uint64_t b0 = static_cast<uint64_t>(b);
  const uint64_t b1 = static_cast<uint64_t>(b >> 64);

  const u128 p00 = static_cast<u128>(a0) * b0;
  const u128 p01 = static_cast<u128>(a0) * b1;
  const u128 p10 = static_cast<u128>(a1) * b0;
  const u128 p11 = static_cast<u128>(a1) * b1;  // < 2^126

  // acc = p11*2^128 + (p01 + p10)*2^64 + p00, tracked as acc1*2^128 + acc0.
  u128 mid = p01 + p10;
  const u128 mid_carry = (mid < p01) ? 1 : 0;  // overflow of the mid sum

  u128 acc0 = p00;
  u128 acc1 = p11 + (mid >> 64) + (mid_carry << 64);
  const u128 mid_lo_shifted = mid << 64;
  acc0 += mid_lo_shifted;
  if (acc0 < mid_lo_shifted) ++acc1;

  // value = acc1*2^128 + acc0 ≡ 2*acc1 + acc0 (mod 2^127 - 1).
  u128 r = FpFold(acc0) + FpFold(acc1 << 1);
  return FpReduce(r);
}

// a^e mod p via square-and-multiply.
inline u128 FpPow(u128 a, u128 e) {
  u128 result = 1;
  u128 base = a;
  while (e != 0) {
    if (e & 1) result = FpMul(result, base);
    base = FpMul(base, base);
    e >>= 1;
  }
  return result;
}

// Multiplicative inverse (a != 0) via Fermat: a^(p-2).
inline u128 FpInv(u128 a) {
  PIVOT_DCHECK(a != 0);
  return FpPow(a, kFieldPrime - 2);
}

// Uniform field element.
inline u128 FpRandom(Rng& rng) {
  for (;;) {
    u128 v = (static_cast<u128>(rng.NextU64()) << 64) | rng.NextU64();
    v &= kFieldPrime;  // 127 random bits
    if (v != kFieldPrime) return v;
  }
}

// Signed encode/decode: logical values live in (-p/2, p/2).
inline u128 FpFromSigned(i128 v) {
  return v >= 0 ? FpReduce(static_cast<u128>(v))
                : FpNeg(FpReduce(static_cast<u128>(-v)));
}

inline i128 FpToSigned(u128 v) {
  PIVOT_DCHECK(v < kFieldPrime);
  if (v > kFieldPrime / 2) return -static_cast<i128>(kFieldPrime - v);
  return static_cast<i128>(v);
}

// Conversions to/from BigInt (for the ciphertext <-> share bridge).
inline BigInt FpToBigInt(u128 v) {
  BigInt hi(static_cast<uint64_t>(v >> 64));
  BigInt lo(static_cast<uint64_t>(v));
  return (hi << 64) + lo;
}

inline u128 FpFromBigInt(const BigInt& v) {
  // Value may exceed p (e.g. a Paillier plaintext congruent to the logical
  // value mod p); reduce properly.
  BigInt r = v.Mod(FpToBigInt(kFieldPrime));
  u128 out = 0;
  const auto& limbs = r.limbs();
  if (!limbs.empty()) out = limbs[0];
  if (limbs.size() > 1) out |= static_cast<u128>(limbs[1]) << 64;
  return out;
}

}  // namespace pivot

#endif  // PIVOT_MPC_FIELD_H_
