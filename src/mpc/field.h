#ifndef PIVOT_MPC_FIELD_H_
#define PIVOT_MPC_FIELD_H_

#include <cstdint>

#include "bigint/bigint.h"
#include "common/check.h"
#include "common/ct.h"
#include "common/rng.h"

namespace pivot {

// Arithmetic in the secret-sharing field F_p with p = 2^127 - 1 (Mersenne).
//
// This is the Z_q of the paper's additive secret sharing scheme
// (Section 2.2). A 127-bit prime leaves room for 64-bit fixed-point logical
// values plus 40+ bits of statistical masking used by the comparison and
// truncation protocols (DESIGN.md §3). Elements are stored in
// `unsigned __int128`; multiplication decomposes into 64-bit limbs and
// folds with the Mersenne identity 2^127 ≡ 1 (mod p).

using u128 = unsigned __int128;
using i128 = __int128;

inline constexpr u128 kFieldPrime = ((static_cast<u128>(1) << 127) - 1);

// Folds a value < 2^128 into [0, 2^127); result may still equal p.
inline u128 FpFold(u128 x) {
  return (x & kFieldPrime) + (x >> 127);
}

// The Fp* primitives below are branchless: they run on secret shares, MAC
// values, and masks, so their timing must not depend on operand values
// (tools/pivot_taint.py annotates their parameters as secret). Conditional
// subtractions are expressed as arithmetic masks from common/ct.h.

inline u128 FpReduce(u128 x) {
  x = FpFold(x);
  // Subtract p iff x >= p, as a mask: x < 2^127 + 1 here, so x - p
  // underflows (top bit set) exactly when x < p.
  const u128 d = x - kFieldPrime;
  const u128 borrow = ct::MaskNonZeroU128(d >> 127);  // all-ones iff x < p
  return ct::SelectU128(borrow, x, d);
}

inline u128 FpAdd(u128 a, u128 b) {
  // a, b < p < 2^127, so the sum fits in 128 bits.
  const u128 s = a + b;
  const u128 d = s - kFieldPrime;
  const u128 borrow = ct::MaskNonZeroU128(d >> 127);
  return ct::SelectU128(borrow, s, d);
}

inline u128 FpSub(u128 a, u128 b) {
  // a - b, wrapping by +p iff a < b.
  const u128 d = a - b;
  const u128 borrow = ct::MaskNonZeroU128(d >> 127);  // all-ones iff a < b
  return d + (borrow & kFieldPrime);
}

inline u128 FpNeg(u128 a) {
  // p - a for a != 0, and 0 for a == 0, without branching on a.
  return (kFieldPrime - a) & ct::MaskNonZeroU128(a);
}

// Full 127x127 -> 254-bit product with Mersenne folding.
inline u128 FpMul(u128 a, u128 b) {
  const uint64_t a0 = static_cast<uint64_t>(a);
  const uint64_t a1 = static_cast<uint64_t>(a >> 64);
  const uint64_t b0 = static_cast<uint64_t>(b);
  const uint64_t b1 = static_cast<uint64_t>(b >> 64);

  const u128 p00 = static_cast<u128>(a0) * b0;
  const u128 p01 = static_cast<u128>(a0) * b1;
  const u128 p10 = static_cast<u128>(a1) * b0;
  const u128 p11 = static_cast<u128>(a1) * b1;  // < 2^126

  // acc = p11*2^128 + (p01 + p10)*2^64 + p00, tracked as acc1*2^128 + acc0.
  // Carries are computed as 0/1 comparison values (SETcc), not branches,
  // so multiplication time is independent of the operand bit patterns.
  u128 mid = p01 + p10;
  const u128 mid_carry = static_cast<u128>(mid < p01);  // mid-sum overflow

  u128 acc0 = p00;
  u128 acc1 = p11 + (mid >> 64) + (mid_carry << 64);
  const u128 mid_lo_shifted = mid << 64;
  acc0 += mid_lo_shifted;
  acc1 += static_cast<u128>(acc0 < mid_lo_shifted);

  // value = acc1*2^128 + acc0 ≡ 2*acc1 + acc0 (mod 2^127 - 1).
  u128 r = FpFold(acc0) + FpFold(acc1 << 1);
  return FpReduce(r);
}

// a^e mod p via square-and-multiply.
inline u128 FpPow(u128 a, u128 e) {
  u128 result = 1;
  u128 base = a;
  while (e != 0) {
    if (e & 1) result = FpMul(result, base);
    base = FpMul(base, base);
    e >>= 1;
  }
  return result;
}

// Multiplicative inverse (a != 0) via Fermat: a^(p-2).
inline u128 FpInv(u128 a) {
  PIVOT_DCHECK(a != 0);
  return FpPow(a, kFieldPrime - 2);
}

// Uniform field element.
inline u128 FpRandom(Rng& rng) {
  for (;;) {
    u128 v = (static_cast<u128>(rng.NextU64()) << 64) | rng.NextU64();
    v &= kFieldPrime;  // 127 random bits
    if (v != kFieldPrime) return v;
  }
}

// Signed encode/decode: logical values live in (-p/2, p/2).
inline u128 FpFromSigned(i128 v) {
  // Branchless sign split: select |v| by the sign mask, reduce, then
  // select the negation the same way (v is a secret logical value).
  const u128 uv = static_cast<u128>(v);
  const u128 neg = ct::MaskNonZeroU128(uv >> 127);  // all-ones iff v < 0
  const u128 mag = FpReduce(ct::SelectU128(neg, static_cast<u128>(0) - uv,
                                           uv));
  return ct::SelectU128(neg, FpNeg(mag), mag);
}

inline i128 FpToSigned(u128 v) {
  PIVOT_DCHECK(v < kFieldPrime);
  if (v > kFieldPrime / 2) return -static_cast<i128>(kFieldPrime - v);
  return static_cast<i128>(v);
}

// Conversions to/from BigInt (for the ciphertext <-> share bridge).
inline BigInt FpToBigInt(u128 v) {
  BigInt hi(static_cast<uint64_t>(v >> 64));
  BigInt lo(static_cast<uint64_t>(v));
  return (hi << 64) + lo;
}

inline u128 FpFromBigInt(const BigInt& v) {
  // Value may exceed p (e.g. a Paillier plaintext congruent to the logical
  // value mod p); reduce properly.
  BigInt r = v.Mod(FpToBigInt(kFieldPrime));
  u128 out = 0;
  const auto& limbs = r.limbs();
  if (!limbs.empty()) out = limbs[0];
  if (limbs.size() > 1) out |= static_cast<u128>(limbs[1]) << 64;
  return out;
}

}  // namespace pivot

#endif  // PIVOT_MPC_FIELD_H_
