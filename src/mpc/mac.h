#ifndef PIVOT_MPC_MAC_H_
#define PIVOT_MPC_MAC_H_

#include <vector>

#include "mpc/field.h"
#include "mpc/preprocessing.h"
#include "net/network.h"

namespace pivot {

// SPDZ information-theoretic MACs (Section 9.1.1 of the paper): every
// secret-shared value x is accompanied by a sharing of delta = x·Delta for
// a fixed global key Delta (itself additively shared). A party that
// modifies its share of x without the matching MAC adjustment is caught at
// opening time with overwhelming probability (the cheater would have to
// guess Delta).
//
// Simplification vs full SPDZ: the MAC-difference values are exchanged
// directly instead of being committed first (enough to *detect* additive
// share tampering, which is what the malicious-model tests exercise; a
// full commit-then-open would also prevent rushing adversaries).

// An authenticated share: this party's share of the value and of its MAC.
struct AuthShare {
  u128 value = 0;
  u128 mac = 0;
};

// Dealer-side generation of authenticated correlated randomness. Wraps a
// Preprocessing stream; all parties construct it with the same seed.
class AuthDealer {
 public:
  AuthDealer(int party_id, int num_parties, uint64_t seed);

  // This party's share of the global MAC key Delta.
  u128 mac_key_share() const { return mac_key_share_; }

  // Authenticated sharing of a dealer-chosen random value.
  AuthShare NextRandom();
  // Authenticated Beaver triple.
  struct AuthTriple {
    AuthShare a, b, c;
  };
  AuthTriple NextTriple();
  // Authenticated sharing of a public constant (used for Input masking).
  AuthShare ShareOfPublic(u128 value);

 private:
  AuthShare ShareOfAuth(u128 value);

  int party_id_;
  int num_parties_;
  Rng rng_;
  u128 mac_key_ = 0;  // dealer-known; parties only keep their share
  u128 mac_key_share_ = 0;
};

// Online engine for MAC-authenticated computation. SPMD like MpcEngine.
class AuthEngine {
 public:
  AuthEngine(Endpoint* endpoint, AuthDealer* dealer);

  int party_id() const { return endpoint_->id(); }
  int num_parties() const { return endpoint_->num_parties(); }

  // Owner secret-shares `value` with authentication (mask-based input:
  // the dealer supplies an authenticated random r, the owner opens
  // value - r publicly).
  Result<AuthShare> Input(int owner, i128 value);

  // Linear operations (local).
  static AuthShare Add(const AuthShare& a, const AuthShare& b) {
    return {FpAdd(a.value, b.value), FpAdd(a.mac, b.mac)};
  }
  static AuthShare Sub(const AuthShare& a, const AuthShare& b) {
    return {FpSub(a.value, b.value), FpSub(a.mac, b.mac)};
  }
  static AuthShare MulPub(const AuthShare& a, u128 k) {
    return {FpMul(a.value, k), FpMul(a.mac, k)};
  }
  AuthShare AddConst(const AuthShare& a, i128 c) const;

  // Authenticated multiplication via an authenticated Beaver triple.
  Result<AuthShare> Mul(const AuthShare& a, const AuthShare& b);

  // Opens values and verifies their MACs; kIntegrityError on tampering.
  Result<u128> Open(const AuthShare& share);
  Result<std::vector<u128>> OpenVec(const std::vector<AuthShare>& shares);

  // Testing hook: corrupt this party's share before the next operation.
  static AuthShare Tamper(const AuthShare& s, u128 delta) {
    return {FpAdd(s.value, delta), s.mac};
  }

 private:
  Endpoint* endpoint_;
  AuthDealer* dealer_;
};

}  // namespace pivot

#endif  // PIVOT_MPC_MAC_H_
