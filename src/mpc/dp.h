#ifndef PIVOT_MPC_DP_H_
#define PIVOT_MPC_DP_H_

#include <vector>

#include "mpc/engine.h"

namespace pivot {

// Differential-privacy samplers computed inside MPC (Section 9.2 of the
// paper): no party ever sees the sampled noise or the selected index in
// plaintext.

// Algorithm 5: returns a share of X ~ Laplace(mu, scale) via inverse
// transform sampling on a secret uniform draw:
//   X = mu - scale · sgn(U) · ln(1 - 2|U|),  U uniform in (-1/2, 1/2).
// Output is fixed-point at the engine's frac_bits.
Result<u128> SampleLaplaceShared(MpcEngine& eng, Preprocessing& prep,
                                 double mu, double scale);

// Algorithm 6: exponential mechanism. Given shares of R scores, privacy
// budget epsilon and score sensitivity, computes shared (unnormalized)
// probabilities exp(eps·score / (2·sensitivity)), normalizes them, builds
// the shared CDF, draws a secret uniform U in (0,1), and returns a share
// of the selected index (a field element in [0, R)).
//
// REQUIRES: |eps·score/(2·sensitivity)| <= 8 for every score (the secure
// exponential's domain); Gini/variance gains in Pivot satisfy this.
Result<u128> ExponentialMechanismIndex(MpcEngine& eng, Preprocessing& prep,
                                       const std::vector<u128>& score_shares,
                                       double epsilon, double sensitivity);

}  // namespace pivot

#endif  // PIVOT_MPC_DP_H_
