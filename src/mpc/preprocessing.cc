#include "mpc/preprocessing.h"

#include "common/check.h"

namespace pivot {

Preprocessing::Preprocessing(int party_id, int num_parties, uint64_t seed)
    : party_id_(party_id), num_parties_(num_parties), rng_(seed) {
  PIVOT_CHECK(party_id >= 0 && party_id < num_parties);
}

u128 Preprocessing::ShareOf(u128 value) {
  u128 sum = 0;
  u128 mine = 0;
  for (int i = 0; i + 1 < num_parties_; ++i) {
    u128 s = FpRandom(rng_);
    sum = FpAdd(sum, s);
    if (i == party_id_) mine = s;
  }
  u128 last = FpSub(value, sum);
  if (party_id_ == num_parties_ - 1) mine = last;
  return mine;
}

Preprocessing::Triple Preprocessing::NextTriple() {
  ++triples_used_;
  const u128 a = FpRandom(rng_);
  const u128 b = FpRandom(rng_);
  const u128 c = FpMul(a, b);
  Triple t;
  t.a = ShareOf(a);
  t.b = ShareOf(b);
  t.c = ShareOf(c);
  return t;
}

u128 Preprocessing::NextRandomShare() {
  return ShareOf(FpRandom(rng_));
}

u128 Preprocessing::NextBitShare() {
  return ShareOf(rng_.NextU64() & 1);
}

Preprocessing::TruncMask Preprocessing::NextTruncMask(int low_bits,
                                                      int high_bits) {
  PIVOT_CHECK(low_bits >= 0 && high_bits >= 0);
  PIVOT_CHECK_MSG(low_bits + high_bits <= 126,
                  "trunc mask exceeds field capacity");
  ++masks_used_;
  TruncMask mask;
  mask.low_bit_shares.reserve(low_bits);
  for (int j = 0; j < low_bits; ++j) {
    mask.low_bit_shares.push_back(ShareOf(rng_.NextU64() & 1));
  }
  u128 r1 = 0;
  if (high_bits > 0) {
    for (int taken = 0; taken < high_bits; taken += 64) {
      int chunk = std::min(64, high_bits - taken);
      uint64_t word = rng_.NextU64();
      if (chunk < 64) word &= (uint64_t{1} << chunk) - 1;
      r1 |= static_cast<u128>(word) << taken;
    }
  }
  mask.r1_share = ShareOf(r1);
  return mask;
}

}  // namespace pivot
