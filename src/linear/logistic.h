#ifndef PIVOT_LINEAR_LOGISTIC_H_
#define PIVOT_LINEAR_LOGISTIC_H_

#include "data/dataset.h"

namespace pivot {

// Plaintext logistic regression (mini-batch gradient descent), the
// non-private reference for the Section 7.3 extension. Binary labels
// (0/1).
struct LogisticParams {
  int epochs = 10;
  double learning_rate = 0.5;
  int batch_size = 16;
};

struct LogisticModel {
  std::vector<double> weights;  // one per feature
  double bias = 0.0;

  // P(y = 1 | x).
  double PredictProbability(const std::vector<double>& row) const;
  double PredictLabel(const std::vector<double>& row) const {
    return PredictProbability(row) >= 0.5 ? 1.0 : 0.0;
  }
};

LogisticModel TrainLogisticPlain(const Dataset& data,
                                 const LogisticParams& params);

}  // namespace pivot

#endif  // PIVOT_LINEAR_LOGISTIC_H_
