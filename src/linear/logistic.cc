#include "linear/logistic.h"

#include <cmath>

#include "common/check.h"

namespace pivot {

double LogisticModel::PredictProbability(const std::vector<double>& row) const {
  PIVOT_CHECK(row.size() == weights.size());
  double u = bias;
  for (size_t j = 0; j < row.size(); ++j) u += weights[j] * row[j];
  return 1.0 / (1.0 + std::exp(-u));
}

LogisticModel TrainLogisticPlain(const Dataset& data,
                                 const LogisticParams& params) {
  const size_t n = data.num_samples();
  const size_t d = data.num_features();
  PIVOT_CHECK(n > 0 && d > 0);
  LogisticModel model;
  model.weights.assign(d, 0.0);

  for (int epoch = 0; epoch < params.epochs; ++epoch) {
    for (size_t start = 0; start < n; start += params.batch_size) {
      const size_t end = std::min(n, start + params.batch_size);
      std::vector<double> grad(d, 0.0);
      double grad_bias = 0.0;
      for (size_t t = start; t < end; ++t) {
        const double err =
            model.PredictProbability(data.features[t]) - data.labels[t];
        for (size_t j = 0; j < d; ++j) grad[j] += err * data.features[t][j];
        grad_bias += err;
      }
      const double scale = params.learning_rate / (end - start);
      for (size_t j = 0; j < d; ++j) model.weights[j] -= scale * grad[j];
      model.bias -= scale * grad_bias;
    }
  }
  return model;
}

}  // namespace pivot
