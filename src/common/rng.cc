#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace pivot {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; splitmix cannot produce four
  // zeros from any seed, but keep a guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  PIVOT_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  PIVOT_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

void Rng::FillBytes(uint8_t* out, size_t len) {
  size_t i = 0;
  while (i + 8 <= len) {
    uint64_t v = NextU64();
    for (int b = 0; b < 8; ++b) out[i + b] = static_cast<uint8_t>(v >> (8 * b));
    i += 8;
  }
  if (i < len) {
    uint64_t v = NextU64();
    for (; i < len; ++i) {
      out[i] = static_cast<uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
}

std::vector<uint8_t> Rng::Bytes(size_t len) {
  std::vector<uint8_t> out(len);
  FillBytes(out.data(), len);
  return out;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xa5a5a5a5a5a5a5a5ULL); }

RngState Rng::SaveState() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_cached_gaussian = has_cached_gaussian_;
  st.cached_gaussian = cached_gaussian_;
  return st;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  // All-zero xoshiro state never advances; reject it the same way the
  // seeding path does.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

}  // namespace pivot
