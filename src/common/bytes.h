#ifndef PIVOT_COMMON_BYTES_H_
#define PIVOT_COMMON_BYTES_H_

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace pivot {

using Bytes = std::vector<uint8_t>;

// Append-only binary writer with little-endian fixed-width encodings and
// length-prefixed variable payloads. Used by the network layer and by the
// cryptographic serializers.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v);
  // Length-prefixed byte blob.
  void WriteBytes(const Bytes& b);
  void WriteRaw(const uint8_t* data, size_t len);
  void WriteString(const std::string& s);

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

// Sequential binary reader matching ByteWriter's encodings. All reads
// return an error Status on truncated input rather than aborting, so the
// network layer can reject malformed messages.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : buf_(buf.data()), size_(buf.size()) {}
  ByteReader(const uint8_t* data, size_t size) : buf_(data), size_(size) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<Bytes> ReadBytes();
  Result<std::string> ReadString();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Need(size_t n);

  const uint8_t* buf_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace pivot

#endif  // PIVOT_COMMON_BYTES_H_
