#include "common/status.h"

namespace pivot {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kProtocolError:
      return "ProtocolError";
    case StatusCode::kIntegrityError:
      return "IntegrityError";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace pivot
