#ifndef PIVOT_COMMON_OP_COUNTERS_H_
#define PIVOT_COMMON_OP_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace pivot {

// Global counters for the cost-model quantities of the paper's Table 2:
//   Ce - operations on homomorphically encrypted values
//   Cd - threshold decryptions
//   Cs - operations on secretly shared values
//   Cc - secure comparisons
// plus network traffic (bytes / messages / rounds). Counters are
// process-wide and thread-safe; the bench harness snapshots them around a
// protocol run to report per-experiment operation counts.
class OpCounters {
 public:
  static OpCounters& Global();

  void AddCiphertextOp(uint64_t n = 1) { ce_.fetch_add(n, std::memory_order_relaxed); }
  void AddThresholdDecryption(uint64_t n = 1) { cd_.fetch_add(n, std::memory_order_relaxed); }
  void AddSecureOp(uint64_t n = 1) { cs_.fetch_add(n, std::memory_order_relaxed); }
  void AddSecureComparison(uint64_t n = 1) { cc_.fetch_add(n, std::memory_order_relaxed); }
  void AddBytesSent(uint64_t n) { bytes_.fetch_add(n, std::memory_order_relaxed); }
  void AddMessage(uint64_t n = 1) { messages_.fetch_add(n, std::memory_order_relaxed); }
  // Checkpoint write/restore accounting (pivot/checkpoint.h): one call
  // per snapshot, carrying the serialize+store / load+restore time, so
  // resume overhead shows up next to the cost-model counters.
  void AddCheckpointWrite(uint64_t micros) {
    ckpt_writes_.fetch_add(1, std::memory_order_relaxed);
    ckpt_write_us_.fetch_add(micros, std::memory_order_relaxed);
  }
  void AddCheckpointRestore(uint64_t micros) {
    ckpt_restores_.fetch_add(1, std::memory_order_relaxed);
    ckpt_restore_us_.fetch_add(micros, std::memory_order_relaxed);
  }
  // Parallel crypto kernel accounting (common/thread_pool.h and
  // crypto/paillier_batch.h): tasks scheduled on the shared pool, batch
  // kernel invocations, and offline encryption-randomness pool drains
  // (hit = pair was precomputed, miss = computed inline on demand).
  void AddPoolTask(uint64_t n = 1) {
    pool_tasks_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddBatchCall(uint64_t n = 1) {
    batch_calls_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddEncPoolHit(uint64_t n = 1) {
    enc_pool_hits_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddEncPoolMiss(uint64_t n = 1) {
    enc_pool_misses_.fetch_add(n, std::memory_order_relaxed);
  }
  // Serving accounting (serve/serving_session.h): requests answered and
  // coalesced protocol batches executed; their ratio is the realized
  // batch occupancy the cost report prints.
  void AddServeRequests(uint64_t n) {
    serve_requests_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddServeBatch(uint64_t n = 1) {
    serve_batches_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t ciphertext_ops() const { return ce_.load(std::memory_order_relaxed); }
  uint64_t threshold_decryptions() const { return cd_.load(std::memory_order_relaxed); }
  uint64_t secure_ops() const { return cs_.load(std::memory_order_relaxed); }
  uint64_t secure_comparisons() const { return cc_.load(std::memory_order_relaxed); }
  uint64_t bytes_sent() const { return bytes_.load(std::memory_order_relaxed); }
  uint64_t messages() const { return messages_.load(std::memory_order_relaxed); }
  uint64_t checkpoint_writes() const {
    return ckpt_writes_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoint_write_micros() const {
    return ckpt_write_us_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoint_restores() const {
    return ckpt_restores_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoint_restore_micros() const {
    return ckpt_restore_us_.load(std::memory_order_relaxed);
  }
  uint64_t pool_tasks() const {
    return pool_tasks_.load(std::memory_order_relaxed);
  }
  uint64_t batch_calls() const {
    return batch_calls_.load(std::memory_order_relaxed);
  }
  uint64_t enc_pool_hits() const {
    return enc_pool_hits_.load(std::memory_order_relaxed);
  }
  uint64_t enc_pool_misses() const {
    return enc_pool_misses_.load(std::memory_order_relaxed);
  }
  uint64_t serve_requests() const {
    return serve_requests_.load(std::memory_order_relaxed);
  }
  uint64_t serve_batches() const {
    return serve_batches_.load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  std::atomic<uint64_t> ce_{0};
  std::atomic<uint64_t> cd_{0};
  std::atomic<uint64_t> cs_{0};
  std::atomic<uint64_t> cc_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> ckpt_writes_{0};
  std::atomic<uint64_t> ckpt_write_us_{0};
  std::atomic<uint64_t> ckpt_restores_{0};
  std::atomic<uint64_t> ckpt_restore_us_{0};
  std::atomic<uint64_t> pool_tasks_{0};
  std::atomic<uint64_t> batch_calls_{0};
  std::atomic<uint64_t> enc_pool_hits_{0};
  std::atomic<uint64_t> enc_pool_misses_{0};
  std::atomic<uint64_t> serve_requests_{0};
  std::atomic<uint64_t> serve_batches_{0};
};

// Immutable snapshot of the global counters; `Delta` computes the counts
// accumulated between two snapshots.
struct OpSnapshot {
  uint64_t ce = 0, cd = 0, cs = 0, cc = 0, bytes = 0, messages = 0;
  uint64_t ckpt_writes = 0, ckpt_write_us = 0;
  uint64_t ckpt_restores = 0, ckpt_restore_us = 0;
  uint64_t pool_tasks = 0, batch_calls = 0;
  uint64_t enc_pool_hits = 0, enc_pool_misses = 0;
  uint64_t serve_requests = 0, serve_batches = 0;

  static OpSnapshot Take();
  OpSnapshot Delta(const OpSnapshot& earlier) const;
  std::string ToString() const;
};

}  // namespace pivot

#endif  // PIVOT_COMMON_OP_COUNTERS_H_
