#ifndef PIVOT_COMMON_THREAD_POOL_H_
#define PIVOT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace pivot {

// Shared task pool for compute parallelism (batched Paillier kernels,
// threshold-decryption fan-out, offline randomness precomputation).
//
// Properties the crypto layer depends on:
//   - Lazily started: no worker threads exist until the first submission
//     (or an explicit Resize), so sequential runs pay nothing.
//   - Grow-only: Resize(k) ensures at least k workers. The pool is shared
//     by every simulated party in the process, so shrinking under one
//     party's feet is not supported; per-call fan-out is instead capped by
//     the `threads` argument of ParallelFor, which is what determinism
//     contracts key off (see DESIGN.md, "Parallelism model").
//   - Tasks return Status; a thrown exception is captured and converted to
//     kInternal (this codebase otherwise never throws).
//   - All waits are bounded (wait_for loops), matching the repo-wide
//     unbounded-wait lint rule; pool threads hold no locks while running
//     user tasks.
class ThreadPool {
 public:
  // Process-wide pool shared by all parties. Destroyed (and joined) at
  // process exit.
  static ThreadPool& Global();

  ThreadPool() = default;
  explicit ThreadPool(int threads) { Resize(threads); }
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Ensures at least `threads` workers are running (grow-only; <= 0 is a
  // no-op). Thread-safe.
  void Resize(int threads);
  int size() const;

  // Tracks a set of submitted tasks and joins on their completion.
  // Wait() returns the Status of the lowest-numbered failing task (OK if
  // all succeeded), so the reported error does not depend on scheduling.
  // A WaitGroup may be reused for a new round of submissions after Wait()
  // returns, including after an error.
  class WaitGroup {
   public:
    explicit WaitGroup(ThreadPool& pool);
    ~WaitGroup();

    WaitGroup(const WaitGroup&) = delete;
    WaitGroup& operator=(const WaitGroup&) = delete;

    // Schedules `task` on the pool (starting workers if needed).
    void Submit(std::function<Status()> task);
    // Blocks until every submitted task finished; returns the first error
    // in submission order.
    [[nodiscard]] Status Wait();

   private:
    friend class ThreadPool;
    ThreadPool& pool_;
    std::mutex mu_;
    std::condition_variable cv_;
    size_t pending_ = 0;
    size_t next_seq_ = 0;
    size_t error_seq_ = 0;
    Status first_error_;
  };

  // Fire-and-forget submission (offline randomness prefill). The task's
  // Status is discarded; completion is observed through the caller's own
  // synchronization (e.g. EncRandomnessPool's in-flight counter).
  void Post(std::function<Status()> task);

  // Runs fn(i) for every i in [0, count), fanning out across at most
  // `threads` contiguous chunks. The chunk partition is a pure function of
  // (count, threads) — NOT of the pool size — so a given (count, threads)
  // pair always produces the same per-index work assignment. Returns the
  // first non-OK Status (by chunk order); remaining chunks still run.
  // threads <= 1 or a small count runs inline on the caller.
  [[nodiscard]] Status ParallelFor(size_t count, int threads,
                                   const std::function<Status(size_t)>& fn);

 private:
  struct Task {
    std::function<Status()> fn;
    WaitGroup* group = nullptr;
    size_t seq = 0;
  };

  void WorkerLoop();
  void SubmitTask(Task task);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace pivot

#endif  // PIVOT_COMMON_THREAD_POOL_H_
