#include "common/bytes.h"

#include <cstring>

namespace pivot {

void ByteWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteBytes(const Bytes& b) {
  WriteU64(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void ByteWriter::WriteRaw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void ByteWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

Status ByteReader::Need(size_t n) {
  if (pos_ + n > size_) {
    return Status::OutOfRange("truncated buffer: need " + std::to_string(n) +
                              " bytes, have " + std::to_string(size_ - pos_));
  }
  return Status::Ok();
}

Result<uint8_t> ByteReader::ReadU8() {
  PIVOT_RETURN_IF_ERROR(Need(1));
  return buf_[pos_++];
}

Result<uint32_t> ByteReader::ReadU32() {
  PIVOT_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  PIVOT_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::ReadI64() {
  PIVOT_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::ReadDouble() {
  PIVOT_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<Bytes> ByteReader::ReadBytes() {
  PIVOT_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  PIVOT_RETURN_IF_ERROR(Need(len));
  Bytes out(buf_ + pos_, buf_ + pos_ + len);
  pos_ += len;
  return out;
}

Result<std::string> ByteReader::ReadString() {
  PIVOT_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  PIVOT_RETURN_IF_ERROR(Need(len));
  std::string out(reinterpret_cast<const char*>(buf_ + pos_), len);
  pos_ += len;
  return out;
}

}  // namespace pivot
