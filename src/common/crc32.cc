#include "common/crc32.h"

#include <array>

namespace pivot {

namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const uint8_t* data, size_t len) {
  const auto& table = Table();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const uint8_t* data, size_t len) {
  return Crc32Update(0, data, len);
}

}  // namespace pivot
