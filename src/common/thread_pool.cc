#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>

#include "common/check.h"
#include "common/op_counters.h"

namespace pivot {

namespace {

constexpr auto kIdlePoll = std::chrono::milliseconds(100);
// Below this batch size the fan-out overhead dominates; run inline.
constexpr size_t kMinParallelItems = 8;

Status RunTask(const std::function<Status()>& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("pool task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("pool task threw a non-std exception");
  }
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  // Joined by the static destructor at process exit; every protocol run
  // drains its own tasks via WaitGroup before returning.
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Resize(int threads) {
  std::lock_guard<std::mutex> lock(mu_);
  PIVOT_CHECK(!stop_);
  while (static_cast<int>(workers_.size()) < threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::SubmitTask(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PIVOT_CHECK(!stop_);
    // Lazily start a worker on first use so purely sequential runs never
    // spawn threads.
    if (workers_.empty()) workers_.emplace_back([this] { WorkerLoop(); });
    queue_.push_back(std::move(task));
  }
  OpCounters::Global().AddPoolTask();
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (queue_.empty() && !stop_) {
        cv_.wait_for(lock, kIdlePoll);
      }
      if (queue_.empty() && stop_) return;
      if (queue_.empty()) continue;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const Status st = RunTask(task.fn);
    if (WaitGroup* g = task.group) {
      // Notify while holding the lock: the moment a waiter can observe
      // pending_ == 0 it may destroy the WaitGroup, so the worker must be
      // completely done with `g` before releasing mu_.
      std::lock_guard<std::mutex> lock(g->mu_);
      if (!st.ok() &&
          (g->first_error_.ok() || task.seq < g->error_seq_)) {
        g->first_error_ = st;
        g->error_seq_ = task.seq;
      }
      --g->pending_;
      g->cv_.notify_all();
    }
  }
}

void ThreadPool::Post(std::function<Status()> task) {
  SubmitTask(Task{std::move(task), nullptr, 0});
}

ThreadPool::WaitGroup::WaitGroup(ThreadPool& pool) : pool_(pool) {}

ThreadPool::WaitGroup::~WaitGroup() {
  // A WaitGroup must not die with tasks in flight (they hold a pointer to
  // it); Wait() before destruction. The check keeps a misuse loud.
  std::unique_lock<std::mutex> lock(mu_);
  while (pending_ > 0) {
    cv_.wait_for(lock, kIdlePoll);
  }
}

void ThreadPool::WaitGroup::Submit(std::function<Status()> task) {
  size_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
    ++pending_;
  }
  pool_.SubmitTask(Task{std::move(task), this, seq});
}

Status ThreadPool::WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  while (pending_ > 0) {
    cv_.wait_for(lock, kIdlePoll);
  }
  // Reset the error state so the group can be reused for a new round.
  Status out = std::move(first_error_);
  first_error_ = Status::Ok();
  error_seq_ = 0;
  next_seq_ = 0;
  return out;
}

Status ThreadPool::ParallelFor(size_t count, int threads,
                               const std::function<Status(size_t)>& fn) {
  if (count == 0) return Status::Ok();
  const size_t fan_out =
      std::min<size_t>(std::max(threads, 1), count);
  if (fan_out <= 1 || count < kMinParallelItems) {
    for (size_t i = 0; i < count; ++i) {
      PIVOT_RETURN_IF_ERROR(fn(i));
    }
    return Status::Ok();
  }
  Resize(static_cast<int>(fan_out));
  WaitGroup wg(*this);
  for (size_t c = 0; c < fan_out; ++c) {
    const size_t begin = count * c / fan_out;
    const size_t end = count * (c + 1) / fan_out;
    wg.Submit([begin, end, &fn]() -> Status {
      for (size_t i = begin; i < end; ++i) {
        PIVOT_RETURN_IF_ERROR(fn(i));
      }
      return Status::Ok();
    });
  }
  return wg.Wait();
}

}  // namespace pivot
