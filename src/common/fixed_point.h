#ifndef PIVOT_COMMON_FIXED_POINT_H_
#define PIVOT_COMMON_FIXED_POINT_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace pivot {

// Fixed-point codec shared by the whole system.
//
// The cryptographic substrates (Paillier, additive secret sharing) operate
// on integers, so every real-valued quantity (feature values, labels,
// impurity gains, probabilities) is represented as round(x * 2^f). The
// paper's implementation does the same ("we convert the floating point
// datasets into fixed-point integer representation", Section 8).
struct FixedPointParams {
  // Fractional bits.
  int frac_bits = 16;
  // Total magnitude bound (|encoded| < 2^total_bits). Protocol-level
  // comparison/truncation protocols rely on this bound.
  int total_bits = 64;

  int64_t Scale() const { return int64_t{1} << frac_bits; }
};

inline constexpr FixedPointParams kDefaultFixedPoint{};

inline int64_t FixedFromDouble(double x, const FixedPointParams& fp = kDefaultFixedPoint) {
  double scaled = x * static_cast<double>(fp.Scale());
  PIVOT_CHECK_MSG(std::abs(scaled) < std::ldexp(1.0, fp.total_bits - 1),
                  "fixed-point overflow");
  return static_cast<int64_t>(std::llround(scaled));
}

inline double FixedToDouble(int64_t v, const FixedPointParams& fp = kDefaultFixedPoint) {
  return static_cast<double>(v) / static_cast<double>(fp.Scale());
}

// Product of two fixed-point values carries 2f fractional bits; divide by
// the scale to renormalize (plaintext analogue of secure truncation).
inline int64_t FixedMul(int64_t a, int64_t b, const FixedPointParams& fp = kDefaultFixedPoint) {
  __int128 p = static_cast<__int128>(a) * static_cast<__int128>(b);
  return static_cast<int64_t>(p >> fp.frac_bits);
}

}  // namespace pivot

#endif  // PIVOT_COMMON_FIXED_POINT_H_
