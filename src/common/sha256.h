#ifndef PIVOT_COMMON_SHA256_H_
#define PIVOT_COMMON_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace pivot {

// Incremental SHA-256 (FIPS 180-4). Used for Fiat-Shamir challenges in the
// zero-knowledge proofs of the malicious-model extension; implemented here
// so the library has no external crypto dependency.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;

  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(const std::string& s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  // Finalizes and returns the digest. The object must not be reused after.
  std::array<uint8_t, kDigestSize> Finish();

  // One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(const Bytes& data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  bool finished_ = false;
};

std::string HexDigest(const std::array<uint8_t, Sha256::kDigestSize>& digest);

}  // namespace pivot

#endif  // PIVOT_COMMON_SHA256_H_
