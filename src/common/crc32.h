#ifndef PIVOT_COMMON_CRC32_H_
#define PIVOT_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace pivot {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected). Used by the
// reliable-channel framing layer (net/network.h) to detect corrupted or
// truncated frames before they reach protocol code. Not cryptographic:
// it guards against injected transmission faults, not adversaries —
// integrity against malicious parties is the job of the malicious-model
// checks (pivot/malicious.h).
uint32_t Crc32(const uint8_t* data, size_t len);

// Incremental form: feed `crc` from a previous call (start with 0).
uint32_t Crc32Update(uint32_t crc, const uint8_t* data, size_t len);

}  // namespace pivot

#endif  // PIVOT_COMMON_CRC32_H_
