#ifndef PIVOT_COMMON_TIMER_H_
#define PIVOT_COMMON_TIMER_H_

#include <chrono>

namespace pivot {

// Simple wall-clock stopwatch used by the benchmark harness.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pivot

#endif  // PIVOT_COMMON_TIMER_H_
