#include "common/op_counters.h"

#include <sstream>

namespace pivot {

OpCounters& OpCounters::Global() {
  static OpCounters* counters = new OpCounters();
  return *counters;
}

void OpCounters::Reset() {
  ce_.store(0);
  cd_.store(0);
  cs_.store(0);
  cc_.store(0);
  bytes_.store(0);
  messages_.store(0);
}

OpSnapshot OpSnapshot::Take() {
  const OpCounters& g = OpCounters::Global();
  OpSnapshot s;
  s.ce = g.ciphertext_ops();
  s.cd = g.threshold_decryptions();
  s.cs = g.secure_ops();
  s.cc = g.secure_comparisons();
  s.bytes = g.bytes_sent();
  s.messages = g.messages();
  return s;
}

OpSnapshot OpSnapshot::Delta(const OpSnapshot& earlier) const {
  OpSnapshot d;
  d.ce = ce - earlier.ce;
  d.cd = cd - earlier.cd;
  d.cs = cs - earlier.cs;
  d.cc = cc - earlier.cc;
  d.bytes = bytes - earlier.bytes;
  d.messages = messages - earlier.messages;
  return d;
}

std::string OpSnapshot::ToString() const {
  std::ostringstream os;
  os << "Ce=" << ce << " Cd=" << cd << " Cs=" << cs << " Cc=" << cc
     << " bytes=" << bytes << " msgs=" << messages;
  return os.str();
}

}  // namespace pivot
