#include "common/op_counters.h"

#include <sstream>

namespace pivot {

OpCounters& OpCounters::Global() {
  static OpCounters* counters = new OpCounters();
  return *counters;
}

void OpCounters::Reset() {
  ce_.store(0);
  cd_.store(0);
  cs_.store(0);
  cc_.store(0);
  bytes_.store(0);
  messages_.store(0);
  ckpt_writes_.store(0);
  ckpt_write_us_.store(0);
  ckpt_restores_.store(0);
  ckpt_restore_us_.store(0);
}

OpSnapshot OpSnapshot::Take() {
  const OpCounters& g = OpCounters::Global();
  OpSnapshot s;
  s.ce = g.ciphertext_ops();
  s.cd = g.threshold_decryptions();
  s.cs = g.secure_ops();
  s.cc = g.secure_comparisons();
  s.bytes = g.bytes_sent();
  s.messages = g.messages();
  s.ckpt_writes = g.checkpoint_writes();
  s.ckpt_write_us = g.checkpoint_write_micros();
  s.ckpt_restores = g.checkpoint_restores();
  s.ckpt_restore_us = g.checkpoint_restore_micros();
  return s;
}

OpSnapshot OpSnapshot::Delta(const OpSnapshot& earlier) const {
  OpSnapshot d;
  d.ce = ce - earlier.ce;
  d.cd = cd - earlier.cd;
  d.cs = cs - earlier.cs;
  d.cc = cc - earlier.cc;
  d.bytes = bytes - earlier.bytes;
  d.messages = messages - earlier.messages;
  d.ckpt_writes = ckpt_writes - earlier.ckpt_writes;
  d.ckpt_write_us = ckpt_write_us - earlier.ckpt_write_us;
  d.ckpt_restores = ckpt_restores - earlier.ckpt_restores;
  d.ckpt_restore_us = ckpt_restore_us - earlier.ckpt_restore_us;
  return d;
}

std::string OpSnapshot::ToString() const {
  std::ostringstream os;
  os << "Ce=" << ce << " Cd=" << cd << " Cs=" << cs << " Cc=" << cc
     << " bytes=" << bytes << " msgs=" << messages;
  if (ckpt_writes > 0 || ckpt_restores > 0) {
    os << " ckpt_writes=" << ckpt_writes << "(" << ckpt_write_us << "us)"
       << " ckpt_restores=" << ckpt_restores << "(" << ckpt_restore_us
       << "us)";
  }
  return os.str();
}

}  // namespace pivot
