#include "common/op_counters.h"

#include <sstream>

namespace pivot {

OpCounters& OpCounters::Global() {
  static OpCounters* counters = new OpCounters();
  return *counters;
}

void OpCounters::Reset() {
  ce_.store(0);
  cd_.store(0);
  cs_.store(0);
  cc_.store(0);
  bytes_.store(0);
  messages_.store(0);
  ckpt_writes_.store(0);
  ckpt_write_us_.store(0);
  ckpt_restores_.store(0);
  ckpt_restore_us_.store(0);
  pool_tasks_.store(0);
  batch_calls_.store(0);
  enc_pool_hits_.store(0);
  enc_pool_misses_.store(0);
  serve_requests_.store(0);
  serve_batches_.store(0);
}

OpSnapshot OpSnapshot::Take() {
  const OpCounters& g = OpCounters::Global();
  OpSnapshot s;
  s.ce = g.ciphertext_ops();
  s.cd = g.threshold_decryptions();
  s.cs = g.secure_ops();
  s.cc = g.secure_comparisons();
  s.bytes = g.bytes_sent();
  s.messages = g.messages();
  s.ckpt_writes = g.checkpoint_writes();
  s.ckpt_write_us = g.checkpoint_write_micros();
  s.ckpt_restores = g.checkpoint_restores();
  s.ckpt_restore_us = g.checkpoint_restore_micros();
  s.pool_tasks = g.pool_tasks();
  s.batch_calls = g.batch_calls();
  s.enc_pool_hits = g.enc_pool_hits();
  s.enc_pool_misses = g.enc_pool_misses();
  s.serve_requests = g.serve_requests();
  s.serve_batches = g.serve_batches();
  return s;
}

OpSnapshot OpSnapshot::Delta(const OpSnapshot& earlier) const {
  OpSnapshot d;
  d.ce = ce - earlier.ce;
  d.cd = cd - earlier.cd;
  d.cs = cs - earlier.cs;
  d.cc = cc - earlier.cc;
  d.bytes = bytes - earlier.bytes;
  d.messages = messages - earlier.messages;
  d.ckpt_writes = ckpt_writes - earlier.ckpt_writes;
  d.ckpt_write_us = ckpt_write_us - earlier.ckpt_write_us;
  d.ckpt_restores = ckpt_restores - earlier.ckpt_restores;
  d.ckpt_restore_us = ckpt_restore_us - earlier.ckpt_restore_us;
  d.pool_tasks = pool_tasks - earlier.pool_tasks;
  d.batch_calls = batch_calls - earlier.batch_calls;
  d.enc_pool_hits = enc_pool_hits - earlier.enc_pool_hits;
  d.enc_pool_misses = enc_pool_misses - earlier.enc_pool_misses;
  d.serve_requests = serve_requests - earlier.serve_requests;
  d.serve_batches = serve_batches - earlier.serve_batches;
  return d;
}

std::string OpSnapshot::ToString() const {
  std::ostringstream os;
  os << "Ce=" << ce << " Cd=" << cd << " Cs=" << cs << " Cc=" << cc
     << " bytes=" << bytes << " msgs=" << messages;
  if (pool_tasks > 0 || batch_calls > 0) {
    os << " pool_tasks=" << pool_tasks << " batch_calls=" << batch_calls
       << " enc_pool=" << enc_pool_hits << "h/" << enc_pool_misses << "m";
  }
  if (serve_requests > 0 || serve_batches > 0) {
    os << " serve=" << serve_requests << "req/" << serve_batches << "batches";
  }
  if (ckpt_writes > 0 || ckpt_restores > 0) {
    os << " ckpt_writes=" << ckpt_writes << "(" << ckpt_write_us << "us)"
       << " ckpt_restores=" << ckpt_restores << "(" << ckpt_restore_us
       << "us)";
  }
  return os.str();
}

}  // namespace pivot
