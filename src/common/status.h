#ifndef PIVOT_COMMON_STATUS_H_
#define PIVOT_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace pivot {

// Error categories used across the library. Modeled after the
// Arrow/RocksDB convention of returning status objects instead of
// throwing exceptions (exceptions are not used in this codebase).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kNotFound,
  kUnimplemented,
  kIoError,
  kProtocolError,   // a multi-party protocol step failed or was aborted
  kIntegrityError,  // a ZKP or MAC check failed (malicious behaviour)
  kAborted,         // the party mesh was aborted after a peer failed
};

const char* StatusCodeToString(StatusCode code);

// A success-or-error value. Cheap to copy in the success case.
// [[nodiscard]]: silently dropping a Status can mask failed decryptions,
// aborted protocol rounds, or truncated wire reads — callers must consume
// it (propagate, check, or test-assert on it).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status IntegrityError(std::string msg) {
    return Status(StatusCode::kIntegrityError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

// A value-or-error. `value()` must only be called when `ok()`.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}               // NOLINT
  Result(Status status) : data_(std::move(status)) {}        // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }
  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }
  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

// Propagate a non-OK Status to the caller.
#define PIVOT_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::pivot::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

// Evaluate a Result expression; on error return its status, otherwise
// bind the value to `lhs`.
#define PIVOT_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  auto PIVOT_CONCAT_(_res_, __LINE__) = (rexpr);            \
  if (!PIVOT_CONCAT_(_res_, __LINE__).ok())                 \
    return PIVOT_CONCAT_(_res_, __LINE__).status();         \
  lhs = std::move(PIVOT_CONCAT_(_res_, __LINE__)).value()

#define PIVOT_CONCAT_INNER_(a, b) a##b
#define PIVOT_CONCAT_(a, b) PIVOT_CONCAT_INNER_(a, b)

}  // namespace pivot

#endif  // PIVOT_COMMON_STATUS_H_
