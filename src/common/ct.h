#ifndef PIVOT_COMMON_CT_H_
#define PIVOT_COMMON_CT_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace pivot {

// Constant-time primitives for secret-dependent data.
//
// Variable-time code on secret bytes (early-exit comparisons, branches on
// key or share material) is a timing side channel: a co-located observer —
// or, in a multi-party protocol, simply the other parties measuring round
// latency — can learn bits of the secret from how long an operation took.
// Everything in this header runs in time that depends only on operand
// *lengths*, never on operand *values* (lengths are public throughout the
// protocol: batch sizes, key widths and share counts are agreed up front).
//
// The taint analyzer (tools/pivot_taint.py) flags `==`/`!=`/`memcmp` on
// tainted data and secret-dependent branches; routing the operation through
// CtEqual / CtSelect / the mask helpers below is the sanctioned fix. See
// DESIGN.md, "Leakage model".

namespace ct {

using u128ct = unsigned __int128;

// Compiler value barrier: keeps the optimizer from reasoning about the
// accumulated difference and re-introducing an early exit.
inline uint32_t ValueBarrier(uint32_t v) {
#if defined(__GNUC__) || defined(__clang__)
  __asm__ volatile("" : "+r"(v) : : );
#endif
  return v;
}

// 0xFF..FF if v != 0, else 0 — without a data-dependent branch.
inline uint32_t MaskNonZeroU32(uint32_t v) {
  v = ValueBarrier(v);
  // For v != 0, v | -v has the top bit set; arithmetic shift smears it.
  return static_cast<uint32_t>(
      static_cast<int32_t>(v | (0u - v)) >> 31);
}

inline uint64_t MaskNonZeroU64(uint64_t v) {
  uint32_t folded = static_cast<uint32_t>(v) | static_cast<uint32_t>(v >> 32);
  uint64_t m = MaskNonZeroU32(folded);
  return (m << 32) | m;
}

inline u128ct MaskNonZeroU128(u128ct v) {
  uint64_t folded =
      static_cast<uint64_t>(v) | static_cast<uint64_t>(v >> 64);
  uint64_t m = MaskNonZeroU64(folded);
  return (static_cast<u128ct>(m) << 64) | m;
}

// 1 if v == 0, else 0, in constant time.
inline bool IsZeroU64(uint64_t v) { return (MaskNonZeroU64(v) & 1) == 0; }
inline bool IsZeroU128(u128ct v) {
  return (static_cast<uint64_t>(MaskNonZeroU128(v)) & 1) == 0;
}

// Constant-time equality of fixed-width words.
inline bool EqualU64(uint64_t a, uint64_t b) { return IsZeroU64(a ^ b); }
inline bool EqualU128(u128ct a, u128ct b) { return IsZeroU128(a ^ b); }

// Constant-time select: mask must be all-ones (take a) or all-zeros
// (take b), e.g. from MaskNonZeroU64.
inline uint64_t SelectU64(uint64_t mask, uint64_t a, uint64_t b) {
  return (a & mask) | (b & ~mask);
}
inline u128ct SelectU128(u128ct mask, u128ct a, u128ct b) {
  return (a & mask) | (b & ~mask);
}

// Byte-span equality: touches every byte of both spans regardless of where
// (or whether) they differ. REQUIRES equal lengths from the caller's
// protocol context; a length mismatch returns false immediately, which
// only reveals the (public) lengths.
inline bool CtEqual(const uint8_t* a, const uint8_t* b, size_t len) {
  uint32_t diff = 0;
  for (size_t i = 0; i < len; ++i) {
    diff |= static_cast<uint32_t>(a[i] ^ b[i]);
  }
  return MaskNonZeroU32(diff) == 0;
}

inline bool CtEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  return CtEqual(a.data(), b.data(), a.size());
}

// Byte-span select: out[i] = pick_a ? a[i] : b[i] without branching on
// pick_a. pick_a must be 0 or 1. out may alias a or b.
inline void CtSelect(uint8_t pick_a, const uint8_t* a, const uint8_t* b,
                     uint8_t* out, size_t len) {
  const uint8_t mask = static_cast<uint8_t>(
      MaskNonZeroU32(static_cast<uint32_t>(pick_a)));
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint8_t>((a[i] & mask) | (b[i] & ~mask));
  }
}

inline void CtSelect(uint8_t pick_a, const Bytes& a, const Bytes& b,
                     Bytes& out) {
  out.resize(a.size());
  CtSelect(pick_a, a.data(), b.data(), out.data(), a.size());
}

// Folds a vector-shaped check into one constant-time verdict: true iff
// every word is zero. The loop shape is identical for pass and fail, so
// timing cannot reveal *which* element failed (e.g. which MAC share was
// tampered with).
inline bool AllZeroU128(const u128ct* values, size_t count) {
  u128ct acc = 0;
  for (size_t i = 0; i < count; ++i) acc |= values[i];
  return IsZeroU128(acc);
}

}  // namespace ct

}  // namespace pivot

#endif  // PIVOT_COMMON_CT_H_
