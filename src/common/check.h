#ifndef PIVOT_COMMON_CHECK_H_
#define PIVOT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checks. A failed check indicates a bug in this library (not a
// recoverable runtime condition, which is reported via Status) and aborts.

#define PIVOT_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PIVOT_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define PIVOT_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PIVOT_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define PIVOT_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define PIVOT_DCHECK(cond) PIVOT_CHECK(cond)
#endif

#endif  // PIVOT_COMMON_CHECK_H_
