#ifndef PIVOT_COMMON_RNG_H_
#define PIVOT_COMMON_RNG_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace pivot {

// Deterministic pseudo-random generator (xoshiro256**). One instance per
// party / per component keeps multi-threaded protocol runs reproducible.
//
// This PRNG stands in for the secure randomness sources the paper's
// implementation draws from; determinism is what the test suite and the
// benchmark harness rely on. It satisfies the UniformRandomBitGenerator
// concept so it can drive <random> distributions as well.
// Complete serializable state of an Rng: the xoshiro words plus the
// Box-Muller cache. Capturing and restoring it rewinds the stream to an
// exact position, which is what training checkpoints rely on to make a
// resumed run bit-match the uninterrupted one (see pivot/checkpoint.h).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_gaussian = false;
  double cached_gaussian = 0.0;
};

class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  result_type operator()() { return NextU64(); }

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Standard normal via Box-Muller.
  double NextGaussian();

  void FillBytes(uint8_t* out, size_t len);
  std::vector<uint8_t> Bytes(size_t len);

  // Derive an independent child generator (for per-party seeding).
  Rng Fork();

  // Exact stream position, for checkpoint/resume.
  RngState SaveState() const;
  void RestoreState(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pivot

#endif  // PIVOT_COMMON_RNG_H_
