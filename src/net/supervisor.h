#ifndef PIVOT_NET_SUPERVISOR_H_
#define PIVOT_NET_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace pivot {

// Connection supervision for the socket transport (DESIGN.md, "Transport
// model"): per-peer heartbeats, dead-peer detection via missed-heartbeat
// timeouts, reconnect with deterministic exponential backoff, and
// escalation to the security-with-abort path when the retry budget is
// exhausted.
//
// The supervisor itself is a passive state machine: it owns no thread and
// no socket. SocketNetwork's supervisor thread calls Tick(now_ms)
// periodically, and the transport's accept/receiver threads feed it
// connection events (NoteConnected / NoteHeard / NoteDown). All side
// effects — sending a heartbeat, tearing down a connection, dialing,
// aborting the run — go through the Callbacks struct. That keeps the
// state machine deterministic and unit-testable with fake callbacks and
// fake clocks (tests/socket_test.cc), independent of real sockets.
//
// Time is passed in explicitly as a steady-clock millisecond reading;
// the supervisor never reads a clock itself.

struct SupervisorConfig {
  // Heartbeat cadence on every live connection. Heartbeats are traffic
  // like any other inbound frame, so a chatty protocol phase needs no
  // extra traffic and an idle connection stays observably alive.
  int heartbeat_interval_ms = 250;
  // A peer silent (no frames of any kind) for longer than this is
  // declared dead: the connection is severed and reconnection begins.
  // Must comfortably exceed the heartbeat interval so a few lost
  // heartbeats or a brief stall do not sever a healthy connection.
  int heartbeat_timeout_ms = 3'000;
  // Reconnection episode budget, bounded two ways: at most this many
  // dial attempts and at most reconnect_timeout_ms of wall clock,
  // whichever ends first. Exhaustion escalates to abort.
  int reconnect_attempts = 10;
  int reconnect_timeout_ms = 30'000;
  // Deterministic exponential backoff between dial attempts (same shape
  // as the reliable channel's NetConfig backoff).
  int backoff_base_ms = 10;
  int backoff_max_ms = 1'000;
};

enum class PeerState {
  kNeverConnected,  // no connection established yet (pre-Establish)
  kConnected,       // link up, heartbeats flowing
  kDown,            // link lost, reconnection episode in progress
};

const char* PeerStateName(PeerState state);

// Liveness snapshot for one peer; feeds Recv timeout diagnostics so a
// hung-peer abort names *why* the peer looked dead.
struct PeerHealth {
  PeerState state = PeerState::kNeverConnected;
  // Milliseconds since any frame arrived from the peer; -1 before the
  // first frame.
  int64_t last_heard_age_ms = -1;
  // Dial attempts burned in the current reconnection episode.
  int dial_attempts = 0;
  uint64_t reconnects = 0;        // successful re-establishments
  uint64_t heartbeats_sent = 0;
};

class ConnectionSupervisor {
 public:
  struct Callbacks {
    // Best-effort heartbeat to a connected peer.
    std::function<void(int peer)> send_heartbeat;
    // Tear down the connection to a peer that missed its heartbeat
    // deadline (close the fd, discard the stream parser).
    std::function<void(int peer, const std::string& reason)> sever;
    // One blocking dial attempt; OK means the connection (including the
    // handshake) is re-established. Only invoked for peers this party is
    // the dialer for.
    std::function<Status(int peer)> dial;
    // Reconnection budget exhausted: escalate to the abort path.
    std::function<void(int peer, const Status& cause)> escalate;
  };

  // `dials_to[p]` marks the peers this party dials (by rank: party i
  // dials j iff j < i); for the rest it accepts and, when they go down,
  // can only wait for them to dial back — bounded by the episode's time
  // budget alone.
  ConnectionSupervisor(int num_parties, int self, SupervisorConfig config,
                       Callbacks callbacks, std::vector<bool> dials_to);

  // Event feed from the transport threads (thread-safe).
  void NoteConnected(int peer, int64_t now_ms);
  void NoteHeard(int peer, int64_t now_ms);
  // Marks the link down (receiver saw EOF or a read error) and starts a
  // reconnection episode. No-op if already down.
  void NoteDown(int peer, int64_t now_ms, const std::string& reason);

  // One supervision pass: emits due heartbeats, severs silent peers,
  // drives due dial attempts, escalates exhausted episodes. Returns the
  // number of milliseconds until the next scheduled action (a sleep hint
  // for the calling thread, capped at heartbeat_interval_ms).
  int Tick(int64_t now_ms);

  PeerHealth Health(int peer, int64_t now_ms) const;
  // Human-readable liveness line for Recv timeout diagnostics, e.g.
  // "peer 2 connected, last heard 134 ms ago, 0 reconnects".
  std::string Describe(int peer, int64_t now_ms) const;

  const SupervisorConfig& config() const { return config_; }

 private:
  struct PeerSlot {
    PeerState state = PeerState::kNeverConnected;
    int64_t last_heard_ms = -1;
    int64_t next_heartbeat_ms = 0;
    // Reconnection episode (valid while state == kDown).
    int64_t episode_start_ms = 0;
    int64_t next_dial_ms = 0;
    int dial_attempts = 0;
    int backoff_ms = 0;
    bool escalated = false;
    uint64_t reconnects = 0;
    uint64_t heartbeats_sent = 0;
  };

  void StartEpisodeLocked(PeerSlot& slot, int64_t now_ms);

  int num_parties_;
  int self_;
  SupervisorConfig config_;
  Callbacks callbacks_;
  std::vector<bool> dials_to_;
  mutable std::mutex mu_;
  std::vector<PeerSlot> peers_;
};

}  // namespace pivot

#endif  // PIVOT_NET_SUPERVISOR_H_
