#ifndef PIVOT_NET_CODEC_H_
#define PIVOT_NET_CODEC_H_

#include <vector>

#include "bigint/bigint.h"
#include "common/bytes.h"
#include "common/status.h"
#include "crypto/paillier.h"

namespace pivot {

// Wire codecs for the message payloads the Pivot protocols exchange:
// big integers (ciphertexts, partial decryptions) and 128-bit field
// elements (secret shares). All formats are length-delimited and
// self-describing enough for the reader to reject truncated input.

using u128 = unsigned __int128;

void EncodeBigInt(const BigInt& v, ByteWriter& w);
Result<BigInt> DecodeBigInt(ByteReader& r);

Bytes EncodeBigIntVector(const std::vector<BigInt>& values);
Result<std::vector<BigInt>> DecodeBigIntVector(const Bytes& data);

Bytes EncodeCiphertextVector(const std::vector<Ciphertext>& values);
Result<std::vector<Ciphertext>> DecodeCiphertextVector(const Bytes& data);

// A batch of equally-sized ciphertext vectors shipped as one message —
// e.g. the B encrypted prediction vectors of one batched Algorithm 4
// round-robin hop (rows = samples, cols = leaves), stored row-major.
struct CiphertextMatrix {
  uint64_t rows = 0;
  uint64_t cols = 0;
  std::vector<Ciphertext> flat;  // rows * cols entries, row-major
};

// REQUIRES: flat.size() == rows * cols.
Bytes EncodeCiphertextMatrix(uint64_t rows, uint64_t cols,
                             const std::vector<Ciphertext>& flat);
Result<CiphertextMatrix> DecodeCiphertextMatrix(const Bytes& data);

void EncodeU128(u128 v, ByteWriter& w);
Result<u128> DecodeU128(ByteReader& r);

Bytes EncodeU128Vector(const std::vector<u128>& values);
Result<std::vector<u128>> DecodeU128Vector(const Bytes& data);

}  // namespace pivot

#endif  // PIVOT_NET_CODEC_H_
