#ifndef PIVOT_NET_CODEC_H_
#define PIVOT_NET_CODEC_H_

#include <vector>

#include "bigint/bigint.h"
#include "common/bytes.h"
#include "common/status.h"
#include "crypto/paillier.h"

namespace pivot {

// Wire codecs for the message payloads the Pivot protocols exchange:
// big integers (ciphertexts, partial decryptions) and 128-bit field
// elements (secret shares). All formats are length-delimited and
// self-describing enough for the reader to reject truncated input.

using u128 = unsigned __int128;

void EncodeBigInt(const BigInt& v, ByteWriter& w);
Result<BigInt> DecodeBigInt(ByteReader& r);

Bytes EncodeBigIntVector(const std::vector<BigInt>& values);
Result<std::vector<BigInt>> DecodeBigIntVector(const Bytes& data);

Bytes EncodeCiphertextVector(const std::vector<Ciphertext>& values);
Result<std::vector<Ciphertext>> DecodeCiphertextVector(const Bytes& data);

void EncodeU128(u128 v, ByteWriter& w);
Result<u128> DecodeU128(ByteReader& r);

Bytes EncodeU128Vector(const std::vector<u128>& values);
Result<std::vector<u128>> DecodeU128Vector(const Bytes& data);

}  // namespace pivot

#endif  // PIVOT_NET_CODEC_H_
