#ifndef PIVOT_NET_ENDPOINT_H_
#define PIVOT_NET_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace pivot {

// Party-local view of the party mesh — the transport abstraction every
// protocol layer (MPC engine, conversions, trainer, serving) is written
// against. Two backends implement it:
//
//   InMemoryEndpoint (net/network.h)  all m parties as threads of one
//                                     process, connected through FIFO
//                                     queues — the default for tests,
//                                     benches, and single-machine runs.
//   SocketEndpoint   (net/socket.h)   one party per process, connected
//                                     through real TCP or Unix-domain
//                                     sockets with heartbeats, reconnect
//                                     and crash-resume supervision.
//
// Both speak the same reliable frame format (net/wire.h), so a protocol
// run is bit-identical across backends. An Endpoint is thread-compatible:
// owned and driven by a single party thread.
//
// Traffic counters are *logical* (application payloads, not frame headers
// or retransmissions) so the paper's communication-cost accounting is
// unaffected by the reliability layer. They are atomic because the
// harness thread reads them (progress reporting, stats aggregation)
// while the party thread is still running.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  int id() const { return id_; }
  int num_parties() const { return num_parties_; }

  // Point-to-point send (to != id()). Fails once the mesh has aborted or
  // an injected fault has crashed this party, so send-only loops also
  // terminate promptly. In reliable mode the payload is framed
  // (seq + CRC32) and buffered for retransmission, and pending NACKs
  // from peers are serviced first.
  [[nodiscard]] virtual Status Send(int to, Bytes msg) = 0;

  // Blocking receive of the next message from `from`. In reliable mode
  // this delivers exactly the next in-sequence payload, masking
  // duplicate/dropped/damaged frames via suppression and NACK-triggered
  // retransmission. Timeout errors name the channel (sender, receiver,
  // elapsed ms, queue depth) and, on the socket backend, the peer's
  // liveness (connection state, last-heartbeat age). Abort errors name
  // the originating party.
  virtual Result<Bytes> Recv(int from) = 0;

  // Sends `msg` to every other party.
  [[nodiscard]] virtual Status Broadcast(const Bytes& msg);

  // Receives one message from every other party; slot id() holds `own`.
  virtual Result<std::vector<Bytes>> GatherAll(Bytes own);

  // Cumulative logical traffic through this endpoint.
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  uint64_t messages_received() const {
    return messages_received_.load(std::memory_order_relaxed);
  }
  // Reliability-layer counters (zero in raw mode).
  uint64_t retransmits() const {
    return retransmits_.load(std::memory_order_relaxed);
  }
  uint64_t duplicates_suppressed() const {
    return dup_suppressed_.load(std::memory_order_relaxed);
  }
  uint64_t corrupt_frames() const {
    return corrupt_frames_.load(std::memory_order_relaxed);
  }
  uint64_t nacks_sent() const {
    return nacks_sent_.load(std::memory_order_relaxed);
  }
  // Round estimate: number of send-phase -> recv-phase transitions this
  // party performed — the sequential communication rounds a LAN
  // deployment pays latency for.
  uint64_t Rounds() const { return rounds_.load(std::memory_order_relaxed); }

 protected:
  Endpoint(int id, int num_parties) : id_(id), num_parties_(num_parties) {}

  // Counter plumbing for backends. Send/Recv phase flips feed the round
  // estimate; Count* track logical payloads only.
  void NoteSendPhase() { in_send_phase_ = true; }
  void NoteRecvPhase() {
    if (in_send_phase_) {
      rounds_.fetch_add(1, std::memory_order_relaxed);
      in_send_phase_ = false;
    }
  }
  void CountSend(size_t payload_bytes) {
    bytes_sent_.fetch_add(payload_bytes, std::memory_order_relaxed);
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountRecv(size_t payload_bytes) {
    bytes_received_.fetch_add(payload_bytes, std::memory_order_relaxed);
    messages_received_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountRetransmit() {
    retransmits_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountDuplicate() {
    dup_suppressed_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountCorruptFrame() {
    corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountNack() { nacks_sent_.fetch_add(1, std::memory_order_relaxed); }

  // Atomics are not movable; backends that store endpoints by value
  // (InMemoryNetwork's vector) move them only before any party thread
  // starts, so copying the counter values is safe.
  void CopyCountersFrom(const Endpoint& other) {
    in_send_phase_ = other.in_send_phase_;
    bytes_sent_.store(other.bytes_sent(), std::memory_order_relaxed);
    messages_sent_.store(other.messages_sent(), std::memory_order_relaxed);
    bytes_received_.store(other.bytes_received(), std::memory_order_relaxed);
    messages_received_.store(other.messages_received(),
                             std::memory_order_relaxed);
    rounds_.store(other.Rounds(), std::memory_order_relaxed);
    retransmits_.store(other.retransmits(), std::memory_order_relaxed);
    dup_suppressed_.store(other.duplicates_suppressed(),
                          std::memory_order_relaxed);
    corrupt_frames_.store(other.corrupt_frames(), std::memory_order_relaxed);
    nacks_sent_.store(other.nacks_sent(), std::memory_order_relaxed);
  }

 private:
  int id_;
  int num_parties_;
  bool in_send_phase_ = false;
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> messages_received_{0};
  std::atomic<uint64_t> rounds_{0};
  std::atomic<uint64_t> retransmits_{0};
  std::atomic<uint64_t> dup_suppressed_{0};
  std::atomic<uint64_t> corrupt_frames_{0};
  std::atomic<uint64_t> nacks_sent_{0};
};

}  // namespace pivot

#endif  // PIVOT_NET_ENDPOINT_H_
