#include "net/fault.h"

#include "common/rng.h"

namespace pivot {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kSever:
      return "sever";
    case FaultKind::kMute:
      return "mute";
  }
  return "unknown";
}

std::string FaultAction::ToString() const {
  std::string out = FaultKindName(kind);
  out += " party=" + std::to_string(party);
  if (is_message_fault()) {
    out += " peer=" + std::to_string(peer);
    out += " nth=" + std::to_string(nth);
  } else {
    out += " op=" + std::to_string(nth);
  }
  if (kind == FaultKind::kDelay || kind == FaultKind::kStall ||
      kind == FaultKind::kMute) {
    out += " delay_ms=" + std::to_string(delay_ms);
  }
  if (kind == FaultKind::kCorrupt) {
    out += " bit=" + std::to_string(bit);
  }
  out += fatal ? " class=fatal" : " class=transient";
  return out;
}

int FaultPlan::MatchMessage(int from, int to, uint64_t nth,
                            bool retransmit) const {
  for (size_t i = 0; i < actions_.size(); ++i) {
    const FaultAction& a = actions_[i];
    if (!a.is_message_fault()) continue;
    if (retransmit && !a.fatal) continue;
    if (a.party != from) continue;
    if (a.peer != -1 && a.peer != to) continue;
    if (a.nth != nth) continue;
    return static_cast<int>(i);
  }
  return -1;
}

int FaultPlan::MatchParty(int party, uint64_t op) const {
  for (size_t i = 0; i < actions_.size(); ++i) {
    const FaultAction& a = actions_[i];
    if (a.is_message_fault() || a.party != party) continue;
    // A crash is sticky: every op at or after the trigger fails.
    if (a.kind == FaultKind::kCrash ? op >= a.nth : op == a.nth) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string FaultPlan::ToString() const {
  if (actions_.empty()) return "(no faults)";
  std::string out;
  for (size_t i = 0; i < actions_.size(); ++i) {
    if (i) out += "; ";
    out += actions_[i].ToString();
  }
  return out;
}

FaultPlan FaultPlan::WithoutFiredTransient(uint64_t fired_mask) const {
  FaultPlan plan;
  for (size_t i = 0; i < actions_.size(); ++i) {
    const FaultAction& a = actions_[i];
    const bool fired = (fired_mask >> (i & 63)) & 1;
    if (a.fatal || !fired) plan.Add(a);
  }
  return plan;
}

namespace {

// Transient delays/stalls are short hiccups the retry machinery rides
// out; fatal ones (`fatal_ms`) exceed the recv timeout and act as hangs.
int TransientMs(Rng& rng) { return 1 + static_cast<int>(rng.NextBelow(20)); }

FaultAction RandomMessageFault(Rng& rng, int num_parties, int fatal_ms,
                               uint64_t max_msg, FaultMix mix) {
  FaultAction a;
  constexpr FaultKind kMessageKinds[] = {
      FaultKind::kDrop, FaultKind::kDelay, FaultKind::kDuplicate,
      FaultKind::kTruncate, FaultKind::kCorrupt};
  constexpr FaultKind kFatalCapableKinds[] = {
      FaultKind::kDrop, FaultKind::kDelay, FaultKind::kTruncate,
      FaultKind::kCorrupt};
  // Duplicates are masked unconditionally, so a fatal-only schedule
  // containing one would not abort; exclude the kind there.
  a.kind = mix == FaultMix::kFatalOnly
               ? kFatalCapableKinds[rng.NextBelow(4)]
               : kMessageKinds[rng.NextBelow(5)];
  a.party = static_cast<int>(rng.NextBelow(num_parties));
  // Half the time pin a receiver, half the time fault the nth message to
  // any receiver (catches broadcast fan-out paths).
  if (num_parties > 1 && rng.NextBelow(2) == 0) {
    int peer = static_cast<int>(rng.NextBelow(num_parties - 1));
    if (peer >= a.party) ++peer;
    a.peer = peer;
  }
  a.nth = rng.NextBelow(max_msg);
  if (a.kind == FaultKind::kCorrupt) a.bit = rng.NextU64();
  switch (mix) {
    case FaultMix::kFatalOnly:
      a.fatal = true;
      break;
    case FaultMix::kTransientOnly:
    case FaultMix::kCrashRecovery:
      a.fatal = false;
      break;
    case FaultMix::kAny:
      a.fatal = rng.NextBelow(2) == 0;
      break;
  }
  // Duplicate suppression masks duplicates unconditionally, so a fatal
  // duplicate would never abort a run; keep the class honest.
  if (a.kind == FaultKind::kDuplicate) a.fatal = false;
  if (a.kind == FaultKind::kDelay) {
    a.delay_ms = a.fatal ? fatal_ms : TransientMs(rng);
  }
  return a;
}

}  // namespace

FaultPlan FaultPlan::FromSeed(uint64_t seed, int num_parties, int fatal_ms,
                              uint64_t max_op, uint64_t max_msg,
                              FaultMix mix) {
  Rng rng(seed ^ 0xFA17'FA17'FA17'FA17ULL);
  FaultPlan plan;
  if (mix == FaultMix::kCrashRecovery) {
    // Exactly one transient crash so checkpoint/resume is on the hook,
    // plus up to two transient message faults underneath it.
    FaultAction a;
    a.kind = FaultKind::kCrash;
    a.party = static_cast<int>(rng.NextBelow(num_parties));
    a.nth = rng.NextBelow(max_op);
    a.fatal = false;
    plan.Add(a);
  } else if (mix != FaultMix::kTransientOnly && rng.NextBelow(3) == 0) {
    // Anchor party fault: crash or stall, at a low index so short
    // workloads reach it. Transient-only schedules skip crashes (those
    // belong to kCrashRecovery) and draw a message fault instead.
    FaultAction a;
    a.kind = rng.NextBelow(2) == 0 ? FaultKind::kCrash : FaultKind::kStall;
    a.party = static_cast<int>(rng.NextBelow(num_parties));
    a.nth = rng.NextBelow(max_op);
    a.fatal = mix == FaultMix::kFatalOnly ||
              (mix == FaultMix::kAny && rng.NextBelow(2) == 0);
    // A transient crash only makes sense where restarts are available;
    // under kAny fall back to a short stall instead.
    if (!a.fatal && a.kind == FaultKind::kCrash) a.kind = FaultKind::kStall;
    if (a.kind == FaultKind::kStall) {
      a.delay_ms = a.fatal ? fatal_ms : TransientMs(rng);
    }
    plan.Add(a);
  } else {
    plan.Add(RandomMessageFault(rng, num_parties, fatal_ms, max_msg, mix));
  }
  // 0-2 extra message faults for compound schedules.
  uint64_t extra = rng.NextBelow(3);
  for (uint64_t i = 0; i < extra; ++i) {
    const FaultMix extra_mix =
        mix == FaultMix::kCrashRecovery ? FaultMix::kTransientOnly : mix;
    plan.Add(
        RandomMessageFault(rng, num_parties, fatal_ms, max_msg, extra_mix));
  }
  return plan;
}

}  // namespace pivot
