#include "net/fault.h"

#include "common/rng.h"

namespace pivot {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStall:
      return "stall";
  }
  return "unknown";
}

std::string FaultAction::ToString() const {
  std::string out = FaultKindName(kind);
  out += " party=" + std::to_string(party);
  if (is_message_fault()) {
    out += " peer=" + std::to_string(peer);
    out += " nth=" + std::to_string(nth);
  } else {
    out += " op=" + std::to_string(nth);
  }
  if (kind == FaultKind::kDelay || kind == FaultKind::kStall) {
    out += " delay_ms=" + std::to_string(delay_ms);
  }
  if (kind == FaultKind::kCorrupt) {
    out += " bit=" + std::to_string(bit);
  }
  return out;
}

int FaultPlan::MatchMessage(int from, int to, uint64_t nth) const {
  for (size_t i = 0; i < actions_.size(); ++i) {
    const FaultAction& a = actions_[i];
    if (!a.is_message_fault()) continue;
    if (a.party != from) continue;
    if (a.peer != -1 && a.peer != to) continue;
    if (a.nth != nth) continue;
    return static_cast<int>(i);
  }
  return -1;
}

int FaultPlan::MatchParty(int party, uint64_t op) const {
  for (size_t i = 0; i < actions_.size(); ++i) {
    const FaultAction& a = actions_[i];
    if (a.is_message_fault() || a.party != party) continue;
    // A crash is sticky: every op at or after the trigger fails.
    if (a.kind == FaultKind::kCrash ? op >= a.nth : op == a.nth) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string FaultPlan::ToString() const {
  if (actions_.empty()) return "(no faults)";
  std::string out;
  for (size_t i = 0; i < actions_.size(); ++i) {
    if (i) out += "; ";
    out += actions_[i].ToString();
  }
  return out;
}

namespace {

FaultAction RandomMessageFault(Rng& rng, int num_parties, int fatal_ms,
                               uint64_t max_msg) {
  FaultAction a;
  constexpr FaultKind kMessageKinds[] = {
      FaultKind::kDrop, FaultKind::kDelay, FaultKind::kDuplicate,
      FaultKind::kTruncate, FaultKind::kCorrupt};
  a.kind = kMessageKinds[rng.NextBelow(5)];
  a.party = static_cast<int>(rng.NextBelow(num_parties));
  // Half the time pin a receiver, half the time fault the nth message to
  // any receiver (catches broadcast fan-out paths).
  if (num_parties > 1 && rng.NextBelow(2) == 0) {
    int peer = static_cast<int>(rng.NextBelow(num_parties - 1));
    if (peer >= a.party) ++peer;
    a.peer = peer;
  }
  a.nth = rng.NextBelow(max_msg);
  if (a.kind == FaultKind::kDelay) a.delay_ms = fatal_ms;
  if (a.kind == FaultKind::kCorrupt) a.bit = rng.NextU64();
  return a;
}

}  // namespace

FaultPlan FaultPlan::FromSeed(uint64_t seed, int num_parties, int fatal_ms,
                              uint64_t max_op, uint64_t max_msg) {
  Rng rng(seed ^ 0xFA17'FA17'FA17'FA17ULL);
  FaultPlan plan;
  // Anchor fault: any kind, at a low index so short workloads reach it.
  if (rng.NextBelow(3) == 0) {
    FaultAction a;
    a.kind = rng.NextBelow(2) == 0 ? FaultKind::kCrash : FaultKind::kStall;
    a.party = static_cast<int>(rng.NextBelow(num_parties));
    a.nth = rng.NextBelow(max_op);
    a.delay_ms = fatal_ms;
    plan.Add(a);
  } else {
    plan.Add(RandomMessageFault(rng, num_parties, fatal_ms, max_msg));
  }
  // 0-2 extra message faults for compound schedules.
  uint64_t extra = rng.NextBelow(3);
  for (uint64_t i = 0; i < extra; ++i) {
    plan.Add(RandomMessageFault(rng, num_parties, fatal_ms, max_msg));
  }
  return plan;
}

}  // namespace pivot
