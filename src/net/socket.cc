#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/op_counters.h"

namespace pivot {

namespace {

// Parsed listen/dial target: either a Unix-domain path or an IPv4
// host:port.
struct ParsedAddr {
  bool is_unix = false;
  std::string path;
  sockaddr_in sin{};
};

Status ParseAddr(const std::string& address, ParsedAddr* out) {
  if (address.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->path = address.substr(5);
    if (out->path.empty()) {
      return Status::InvalidArgument("unix socket address has an empty path: " +
                                     address);
    }
    sockaddr_un probe{};
    if (out->path.size() >= sizeof(probe.sun_path)) {
      return Status::InvalidArgument(
          "unix socket path too long (" + std::to_string(out->path.size()) +
          " bytes, limit " + std::to_string(sizeof(probe.sun_path) - 1) +
          "): " + out->path);
    }
    return Status::Ok();
  }
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "address must be host:port or unix:PATH, got \"" + address + "\"");
  }
  std::string host = address.substr(0, colon);
  if (host.empty() || host == "localhost") host = "127.0.0.1";
  const std::string port_str = address.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port < 0 || port > 65535) {
    return Status::InvalidArgument("invalid port in address \"" + address +
                                   "\"");
  }
  out->is_unix = false;
  out->sin.sin_family = AF_INET;
  out->sin.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &out->sin.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 host in address \"" +
                                   address + "\" (hostnames other than "
                                   "localhost are not resolved)");
  }
  return Status::Ok();
}

Status Errno(const std::string& what) {
  return Status::ProtocolError(what + ": " + std::strerror(errno));
}

// Writes the whole buffer, riding out partial writes and EINTR. Uses
// MSG_NOSIGNAL so a peer that closed the connection surfaces as EPIPE
// instead of killing the process with SIGPIPE.
Status WriteAllFd(int fd, const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("socket write failed");
    }
    off += static_cast<size_t>(w);
  }
  return Status::Ok();
}

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Blocking read of exactly one stream frame with a deadline; used only
// for the handshake. Reads ONE byte per recv so it stops exactly at the
// frame boundary: the peer may adopt the connection and start writing
// protocol frames the moment its side of the handshake completes, and a
// buffered read here would swallow those coalesced bytes before the
// receiver thread (with its own parser) takes over the descriptor.
Status ReadFrameDeadline(int fd, int timeout_ms, uint64_t max_frame_bytes,
                         StreamFrame* out) {
  StreamFrameReader reader(max_frame_bytes);
  std::vector<StreamFrame> frames;
  uint8_t byte = 0;
  const int64_t deadline = SteadyNowMs() + timeout_ms;
  while (frames.empty()) {
    const int64_t remaining = deadline - SteadyNowMs();
    if (remaining <= 0) {
      return Status::ProtocolError("handshake timed out after " +
                                   std::to_string(timeout_ms) + " ms");
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Errno("poll during handshake failed");
    }
    if (pr == 0) continue;  // deadline re-checked at the top
    const ssize_t n = ::recv(fd, &byte, 1, 0);
    if (n == 0) {
      return Status::ProtocolError("connection closed during handshake");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read during handshake failed");
    }
    PIVOT_RETURN_IF_ERROR(reader.Feed(&byte, 1, &frames));
  }
  *out = std::move(frames.front());
  return Status::Ok();
}

// Process-unique instance identity: pid in the high bits, a per-process
// counter in the low bits. Nonzero by construction (pid >= 1), which
// matters because 0 means "never connected" in the incarnation protocol.
uint64_t NextIncarnation() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return (static_cast<uint64_t>(::getpid()) << 20) | (n & ((1u << 20) - 1));
}

}  // namespace

// ----- SocketNetwork ---------------------------------------------------

int64_t SocketNetwork::NowMs() { return SteadyNowMs(); }

SocketNetwork::SocketNetwork(int party_id, int num_parties,
                             SocketOptions options)
    : party_id_(party_id), num_parties_(num_parties),
      options_(std::move(options)) {
  PIVOT_CHECK_MSG(num_parties >= 1, "network needs at least one party");
  PIVOT_CHECK(party_id >= 0 && party_id < num_parties);
  incarnation_ =
      options_.incarnation != 0 ? options_.incarnation : NextIncarnation();
  endpoint_.reset(new SocketEndpoint(this, party_id, num_parties));
  links_.reserve(num_parties);
  data_in_.reserve(num_parties);
  ctrl_in_.reserve(num_parties);
  for (int p = 0; p < num_parties; ++p) {
    links_.push_back(std::make_unique<PeerLink>());
    data_in_.push_back(std::make_unique<MessageQueue>());
    ctrl_in_.push_back(std::make_unique<MessageQueue>());
  }
  std::vector<bool> dials_to(num_parties, false);
  for (int p = 0; p < party_id; ++p) dials_to[p] = true;
  ConnectionSupervisor::Callbacks cbs;
  cbs.send_heartbeat = [this](int peer) {
    const uint64_t n = heartbeat_seq_.fetch_add(1, std::memory_order_relaxed);
    EnqueueFrame(peer, EncodeStreamFrame(StreamFrameType::kHeartbeat,
                                         EncodeHeartbeatBody(n)));
  };
  cbs.sever = [this](int peer, const std::string& reason) {
    SeverLink(peer, reason);
  };
  cbs.dial = [this](int peer) { return DialPeer(peer); };
  cbs.escalate = [this](int peer, const Status& cause) {
    (void)peer;
    Abort(cause, party_id_);
  };
  supervisor_ = std::make_unique<ConnectionSupervisor>(
      num_parties, party_id, options_.supervision, std::move(cbs),
      std::move(dials_to));
}

SocketNetwork::~SocketNetwork() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  if (supervisor_thread_.joinable()) supervisor_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (int p = 0; p < num_parties_; ++p) {
    PeerLink& link = *links_[p];
    std::vector<std::unique_ptr<LinkGen>> reap;
    {
      std::lock_guard<std::mutex> lock(link.mu);
      if (link.cur) {
        ::shutdown(link.cur->fd, SHUT_RDWR);
        link.cur->outbound->Poison(Status::Aborted("network shutting down"));
        link.dead.push_back(std::move(link.cur));
      }
      reap.swap(link.dead);
    }
    for (std::unique_ptr<LinkGen>& g : reap) {
      if (g->writer.joinable()) g->writer.join();
      if (g->receiver.joinable()) g->receiver.join();
      ::close(g->fd);
    }
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

Status SocketNetwork::Bind(const std::string& address) {
  if (listen_fd_ >= 0) {
    return Status::InvalidArgument("Bind called twice");
  }
  return ParseAndListen(address);
}

Status SocketNetwork::ParseAndListen(const std::string& address) {
  ParsedAddr parsed;
  PIVOT_RETURN_IF_ERROR(ParseAddr(address, &parsed));
  if (parsed.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_UNIX) failed");
    // A SIGKILL'd predecessor leaves its socket file behind; a fresh bind
    // to the same path must succeed for crash-relaunch to work.
    ::unlink(parsed.path.c_str());
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, parsed.path.c_str(), parsed.path.size() + 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) < 0) {
      const Status st = Errno("bind(" + parsed.path + ") failed");
      ::close(fd);
      return st;
    }
    if (::listen(fd, 64) < 0) {
      const Status st = Errno("listen(" + parsed.path + ") failed");
      ::close(fd);
      return st;
    }
    listen_fd_ = fd;
    unix_path_ = parsed.path;
    listen_address_ = address;
    return Status::Ok();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&parsed.sin),
             sizeof(parsed.sin)) < 0) {
    const Status st = Errno("bind(" + address + ") failed");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st = Errno("listen(" + address + ") failed");
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const Status st = Errno("getsockname failed");
    ::close(fd);
    return st;
  }
  char host[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &bound.sin_addr, host, sizeof(host));
  listen_fd_ = fd;
  listen_address_ =
      std::string(host) + ":" + std::to_string(ntohs(bound.sin_port));
  return Status::Ok();
}

Status SocketNetwork::Establish(
    const std::vector<std::string>& peer_addresses) {
  if (listen_fd_ < 0) {
    return Status::InvalidArgument("Establish called before Bind");
  }
  if (static_cast<int>(peer_addresses.size()) != num_parties_) {
    return Status::InvalidArgument(
        "Establish: expected " + std::to_string(num_parties_) +
        " peer addresses, got " + std::to_string(peer_addresses.size()));
  }
  peer_addresses_ = peer_addresses;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const int64_t deadline = NowMs() + options_.establish_timeout_ms;
  // Dial every lower-ranked peer, retrying with deterministic backoff
  // until the establish deadline; a version mismatch (InvalidArgument) is
  // permanent and fails immediately.
  for (int j = 0; j < party_id_; ++j) {
    int backoff_ms = options_.supervision.backoff_base_ms;
    Status last = Status::Ok();
    bool connected = false;
    while (!connected) {
      last = DialPeer(j);
      if (last.ok()) {
        connected = true;
        break;
      }
      if (last.code() == StatusCode::kInvalidArgument) return last;
      if (aborted()) return abort_status();
      if (NowMs() + backoff_ms > deadline) break;
      if (WaitForAbortMs(backoff_ms)) return abort_status();
      backoff_ms = std::min(backoff_ms * 2, options_.supervision.backoff_max_ms);
    }
    if (!connected) {
      return Status::ProtocolError(
          "party " + std::to_string(party_id_) +
          " could not establish a connection to party " + std::to_string(j) +
          " (" + peer_addresses_[j] + ") within " +
          std::to_string(options_.establish_timeout_ms) +
          " ms: " + last.ToString());
    }
  }
  // Wait for every higher-ranked peer to dial in.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait_for(lock,
                      std::chrono::milliseconds(
                          std::max<int64_t>(deadline - NowMs(), 1)),
                      [this] { return AllConnectedLocked() || aborted(); });
    if (aborted()) return abort_status();
    if (!AllConnectedLocked()) {
      std::string missing;
      for (int p = party_id_ + 1; p < num_parties_; ++p) {
        std::lock_guard<std::mutex> plock(links_[p]->mu);
        if (!links_[p]->cur) {
          if (!missing.empty()) missing += ", ";
          missing += std::to_string(p);
        }
      }
      return Status::ProtocolError(
          "party " + std::to_string(party_id_) +
          ": mesh establishment timed out after " +
          std::to_string(options_.establish_timeout_ms) +
          " ms; still waiting for party " + missing + " to dial in");
    }
  }
  supervisor_thread_ = std::thread([this] { SupervisorLoop(); });
  return Status::Ok();
}

bool SocketNetwork::AllConnectedLocked() {
  for (int p = 0; p < num_parties_; ++p) {
    if (p == party_id_) continue;
    std::lock_guard<std::mutex> lock(links_[p]->mu);
    if (!links_[p]->cur) return false;
  }
  return true;
}

Status SocketNetwork::DialPeer(int j) {
  if (links_[j]->refuse_reconnect.load(std::memory_order_acquire)) {
    return Status::ProtocolError(
        "reconnection to party " + std::to_string(j) +
        " refused (fatal sever fault injected)");
  }
  if (aborted()) return abort_status();
  ParsedAddr parsed;
  PIVOT_RETURN_IF_ERROR(ParseAddr(peer_addresses_[j], &parsed));
  int fd = -1;
  if (parsed.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_UNIX) failed");
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, parsed.path.c_str(), parsed.path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) < 0) {
      const Status st = Errno("connect(" + peer_addresses_[j] + ") failed");
      ::close(fd);
      return st;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_INET) failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&parsed.sin),
                  sizeof(parsed.sin)) < 0) {
      const Status st = Errno("connect(" + peer_addresses_[j] + ") failed");
      ::close(fd);
      return st;
    }
  }
  HelloFrame hello;
  hello.version = options_.handshake_version;
  hello.party_id = party_id_;
  hello.num_parties = num_parties_;
  hello.incarnation = incarnation_;
  const Bytes hello_frame =
      EncodeStreamFrame(StreamFrameType::kHello, EncodeHello(hello));
  Status st = WriteAllFd(fd, hello_frame.data(), hello_frame.size());
  StreamFrame ack_frame;
  if (st.ok()) {
    st = ReadFrameDeadline(fd, options_.handshake_timeout_ms,
                           options_.max_frame_bytes, &ack_frame);
  }
  HelloFrame ack;
  if (st.ok()) {
    if (ack_frame.type != static_cast<uint8_t>(StreamFrameType::kHelloAck)) {
      st = Status::ProtocolError(
          "handshake with party " + std::to_string(j) +
          ": expected kHelloAck, got frame type " +
          std::to_string(ack_frame.type));
    } else {
      Result<HelloFrame> r = DecodeHello(ack_frame.body);
      if (r.ok()) {
        ack = r.value();
      } else {
        st = r.status();
      }
    }
  }
  if (st.ok() && ack.version != options_.handshake_version) {
    ::close(fd);
    return Status::InvalidArgument(
        "transport version mismatch dialing party " + std::to_string(j) +
        ": ours is " + std::to_string(options_.handshake_version) +
        ", peer speaks " + std::to_string(ack.version));
  }
  if (st.ok() &&
      (ack.party_id != j || ack.num_parties != num_parties_)) {
    st = Status::ProtocolError(
        "handshake identity mismatch: dialed " + peer_addresses_[j] +
        " expecting party " + std::to_string(j) + " of " +
        std::to_string(num_parties_) + ", it answered as party " +
        std::to_string(ack.party_id) + " of " +
        std::to_string(ack.num_parties));
  }
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  uint64_t seen = 0;
  {
    std::lock_guard<std::mutex> lock(links_[j]->mu);
    seen = links_[j]->incarnation_seen;
  }
  if (seen != 0 && seen != ack.incarnation) {
    ::close(fd);
    const Status cause = Status::ProtocolError(
        "party " + std::to_string(j) +
        " restarted (handshake incarnation changed): its channel state is "
        "gone; aborting so the next attempt re-establishes the mesh and "
        "resumes from checkpoints");
    Abort(cause, party_id_);
    return cause;
  }
  AdoptConnection(j, fd, ack.incarnation);
  return Status::Ok();
}

void SocketNetwork::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleInbound(fd);
  }
}

void SocketNetwork::HandleInbound(int fd) {
  StreamFrame hello_frame;
  Status st = ReadFrameDeadline(fd, options_.handshake_timeout_ms,
                                options_.max_frame_bytes, &hello_frame);
  if (!st.ok() ||
      hello_frame.type != static_cast<uint8_t>(StreamFrameType::kHello)) {
    ::close(fd);
    return;
  }
  Result<HelloFrame> r = DecodeHello(hello_frame.body);
  if (!r.ok()) {
    ::close(fd);
    return;
  }
  const HelloFrame hello = r.value();
  const int p = hello.party_id;
  // Only higher-ranked parties dial this one, and the mesh shape must
  // match; anything else is a stray or misconfigured dialer.
  if (p <= party_id_ || p >= num_parties_ ||
      hello.num_parties != num_parties_) {
    ::close(fd);
    return;
  }
  // Refusals must close *without* completing the handshake: the dialer
  // then counts a failed attempt inside its current reconnection episode
  // and the budget eventually escalates. Acking first would hand the
  // dialer a "successful" connection whose immediate EOF restarts its
  // episode — an unbounded reconnect loop that never aborts.
  //
  // An aborted network must not adopt new connections (a relaunched peer
  // retrying its dial belongs to the *next* attempt's fresh mesh), and a
  // fatal injected sever refuses reconnection outright.
  if (aborted() ||
      links_[p]->refuse_reconnect.load(std::memory_order_acquire)) {
    ::close(fd);
    return;
  }
  // Answer with this party's identity before the version check so the
  // dialer can diagnose a mismatch; the mismatched connection is then
  // dropped without being adopted.
  HelloFrame ack;
  ack.version = options_.handshake_version;
  ack.party_id = party_id_;
  ack.num_parties = num_parties_;
  ack.incarnation = incarnation_;
  const Bytes ack_frame =
      EncodeStreamFrame(StreamFrameType::kHelloAck, EncodeHello(ack));
  if (!WriteAllFd(fd, ack_frame.data(), ack_frame.size()).ok() ||
      hello.version != options_.handshake_version) {
    ::close(fd);
    return;
  }
  uint64_t seen = 0;
  {
    std::lock_guard<std::mutex> lock(links_[p]->mu);
    seen = links_[p]->incarnation_seen;
  }
  if (seen != 0 && seen != hello.incarnation) {
    ::close(fd);
    Abort(Status::ProtocolError(
              "party " + std::to_string(p) +
              " restarted (handshake incarnation changed): its channel "
              "state is gone; aborting so the next attempt re-establishes "
              "the mesh and resumes from checkpoints"),
          party_id_);
    return;
  }
  AdoptConnection(p, fd, hello.incarnation);
}

void SocketNetwork::AdoptConnection(int peer, int fd,
                                    uint64_t peer_incarnation) {
  PeerLink& link = *links_[peer];
  std::vector<std::unique_ptr<LinkGen>> reap;
  {
    std::lock_guard<std::mutex> lock(link.mu);
    if (link.cur) {
      ::shutdown(link.cur->fd, SHUT_RDWR);
      link.cur->outbound->Poison(Status::Aborted("link replaced"));
      link.dead.push_back(std::move(link.cur));
    }
    reap.swap(link.dead);
  }
  // Joining happens outside link.mu: a dying receiver calls NoteDown ->
  // sever -> SeverLink, which takes link.mu; joining it under the lock
  // would deadlock.
  for (std::unique_ptr<LinkGen>& g : reap) {
    if (g->writer.joinable()) g->writer.join();
    if (g->receiver.joinable()) g->receiver.join();
    ::close(g->fd);
  }
  auto gen = std::make_unique<LinkGen>();
  gen->fd = fd;
  gen->outbound = std::make_shared<MessageQueue>();
  LinkGen* raw = gen.get();
  gen->writer = std::thread([this, peer, raw] { WriterLoop(peer, raw); });
  gen->receiver = std::thread([this, peer, raw] { ReceiverLoop(peer, raw); });
  {
    std::lock_guard<std::mutex> lock(link.mu);
    link.cur = std::move(gen);
    link.incarnation_seen = peer_incarnation;
  }
  supervisor_->NoteConnected(peer, NowMs());
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
  }
  conn_cv_.notify_all();
}

void SocketNetwork::SeverLink(int peer, const std::string& reason) {
  PeerLink& link = *links_[peer];
  std::lock_guard<std::mutex> lock(link.mu);
  link.last_down_reason = reason;
  if (!link.cur) return;
  ::shutdown(link.cur->fd, SHUT_RDWR);
  link.cur->outbound->Poison(Status::Aborted("connection severed: " + reason));
  link.dead.push_back(std::move(link.cur));
}

void SocketNetwork::EnqueueFrame(int peer, Bytes stream_frame) {
  PeerLink& link = *links_[peer];
  std::shared_ptr<MessageQueue> out;
  {
    std::lock_guard<std::mutex> lock(link.mu);
    if (link.cur) out = link.cur->outbound;
  }
  // No live connection: the frame is dropped here and recovered by the
  // reliable layer's NACK path once the supervisor reconnects.
  if (out) out->Push(std::move(stream_frame));
}

void SocketNetwork::WriterLoop(int peer, LinkGen* gen) {
  PeerLink& link = *links_[peer];
  bool fd_ok = true;
  bool running = true;
  while (running) {
    Result<Bytes> r = gen->outbound->Pop(250);
    if (!r.ok()) {
      // Poison means this generation was retired; a plain timeout means
      // the queue is just idle.
      if (r.status().code() == StatusCode::kAborted) running = false;
      continue;
    }
    if (NowMs() < link.mute_until_ms.load(std::memory_order_relaxed)) {
      continue;  // kMute fault: the connection is "hung", frames vanish
    }
    if (!fd_ok) continue;  // drain without writing; generation is dying
    const Bytes& frame = r.value();
    if (!WriteAllFd(gen->fd, frame.data(), frame.size()).ok()) {
      fd_ok = false;
      // Wake the receiver so supervision learns about the dead link.
      ::shutdown(gen->fd, SHUT_RDWR);
    }
  }
}

void SocketNetwork::ReceiverLoop(int peer, LinkGen* gen) {
  StreamFrameReader reader(options_.max_frame_bytes);
  std::vector<uint8_t> buf(64 * 1024);
  std::vector<StreamFrame> frames;
  std::string reason;
  bool open = true;
  while (open && !shutdown_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(gen->fd, buf.data(), buf.size(), 0);
    if (n == 0) {
      reason = "peer closed the connection";
      if (reader.mid_frame()) reason += " mid-frame (partial frame discarded)";
      open = false;
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      reason = std::string("read error: ") + std::strerror(errno);
      open = false;
      continue;
    }
    supervisor_->NoteHeard(peer, NowMs());
    const Status st = reader.Feed(buf.data(), static_cast<size_t>(n), &frames);
    if (!st.ok()) {
      // The stream cannot be resynchronized after a framing violation.
      Abort(Status::ProtocolError("byte stream from party " +
                                  std::to_string(peer) +
                                  " unparseable: " + st.message()),
            party_id_);
      reason = st.message();
      open = false;
      continue;
    }
    for (StreamFrame& f : frames) DispatchFrame(peer, std::move(f));
    frames.clear();
  }
  if (!shutdown_.load(std::memory_order_acquire)) {
    supervisor_->NoteDown(peer, NowMs(),
                          reason.empty() ? "connection lost" : reason);
  }
}

void SocketNetwork::DispatchFrame(int peer, StreamFrame frame) {
  switch (static_cast<StreamFrameType>(frame.type)) {
    case StreamFrameType::kData:
      data_in(peer).Push(std::move(frame.body));
      break;
    case StreamFrameType::kNack:
      ctrl_in(peer).Push(std::move(frame.body));
      break;
    case StreamFrameType::kHeartbeat:
      break;  // NoteHeard already refreshed liveness
    case StreamFrameType::kAbort: {
      Result<AbortFrame> r = DecodeAbortBody(frame.body);
      if (r.ok()) {
        LocalAbort(Status::Aborted(
            "protocol aborted by party " +
            std::to_string(r.value().origin_party) + ": " +
            r.value().message));
      } else {
        LocalAbort(Status::Aborted("protocol aborted by party " +
                                   std::to_string(peer) +
                                   " (abort notice undecodable)"));
      }
      break;
    }
    case StreamFrameType::kHello:
    case StreamFrameType::kHelloAck:
      break;  // handshakes are consumed before adoption; ignore strays
    default:
      break;  // unknown control types are ignored (forward compatibility)
  }
}

void SocketNetwork::SupervisorLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (options_.on_tick) options_.on_tick();
    const int sleep_ms = supervisor_->Tick(NowMs());
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait_for(lock, std::chrono::milliseconds(sleep_ms), [this] {
      return shutdown_.load(std::memory_order_acquire);
    });
  }
}

bool SocketNetwork::LocalAbortInternal(Status recorded) {
  {
    std::lock_guard<std::mutex> lock(abort_mu_);
    if (aborted_.load(std::memory_order_relaxed)) return false;  // first wins
    abort_status_ = std::move(recorded);
    aborted_.store(true, std::memory_order_release);
  }
  abort_cv_.notify_all();
  conn_cv_.notify_all();
  Status poison;
  {
    std::lock_guard<std::mutex> lock(abort_mu_);
    poison = abort_status_;
  }
  for (auto& q : data_in_) q->Poison(poison);
  for (auto& q : ctrl_in_) q->Poison(poison);
  return true;
}

void SocketNetwork::LocalAbort(Status recorded) {
  LocalAbortInternal(std::move(recorded));
}

void SocketNetwork::Abort(Status cause, int origin_party) {
  const Status recorded = Status::Aborted(
      "protocol aborted by party " + std::to_string(origin_party) + ": " +
      cause.ToString());
  if (!LocalAbortInternal(recorded)) return;
  // Best-effort notice so peers blocked in Recv wake immediately instead
  // of waiting out their timeout. Only the originating party broadcasts;
  // received aborts are effects, not causes.
  if (origin_party != party_id_) return;
  AbortFrame notice;
  notice.origin_party = party_id_;
  notice.code = cause.code();
  notice.message = cause.ToString();
  const Bytes frame =
      EncodeStreamFrame(StreamFrameType::kAbort, EncodeAbortBody(notice));
  for (int p = 0; p < num_parties_; ++p) {
    if (p == party_id_) continue;
    EnqueueFrame(p, frame);
  }
}

Status SocketNetwork::abort_status() const {
  std::lock_guard<std::mutex> lock(abort_mu_);
  return abort_status_;
}

bool SocketNetwork::WaitForAbortMs(int ms) {
  std::unique_lock<std::mutex> lock(abort_mu_);
  return abort_cv_.wait_for(lock, std::chrono::milliseconds(ms), [this] {
    return aborted_.load(std::memory_order_relaxed);
  });
}

void SocketNetwork::set_fault_plan(FaultPlan plan) {
  if (plan.empty()) {
    fault_plan_.reset();
  } else {
    fault_plan_ = std::make_unique<FaultPlan>(std::move(plan));
  }
}

NetworkStats SocketNetwork::stats() const {
  NetworkStats s;
  const SocketEndpoint& e = *endpoint_;
  s.bytes_sent = e.bytes_sent();
  s.bytes_received = e.bytes_received();
  s.messages_sent = e.messages_sent();
  s.messages_received = e.messages_received();
  s.rounds = e.Rounds();
  s.retransmits = e.retransmits();
  s.duplicates_suppressed = e.duplicates_suppressed();
  s.corrupt_frames = e.corrupt_frames();
  s.nacks_sent = e.nacks_sent();
  const int64_t now = NowMs();
  for (int p = 0; p < num_parties_; ++p) {
    if (p == party_id_) continue;
    const PeerHealth h = supervisor_->Health(p, now);
    s.reconnects += h.reconnects;
    s.heartbeats += h.heartbeats_sent;
  }
  return s;
}

std::string SocketNetwork::DescribePeer(int peer) const {
  std::string out = supervisor_->Describe(peer, NowMs());
  PeerLink& link = *links_[peer];
  std::lock_guard<std::mutex> lock(link.mu);
  if (!link.last_down_reason.empty()) {
    out += " (last drop: " + link.last_down_reason + ")";
  }
  return out;
}

// ----- SocketEndpoint --------------------------------------------------

Status SocketEndpoint::BeginOp() {
  const FaultPlan* plan = net_->fault_plan();
  if (plan != nullptr) {
    const int idx = plan->MatchParty(id(), ops_++);
    if (idx >= 0) {
      const FaultAction& a = plan->actions()[idx];
      net_->MarkFaultFired(idx);
      if (a.kind == FaultKind::kCrash) {
        // Sticky: every network op at or after the trigger fails.
        if (crashed_at_ < 0) crashed_at_ = static_cast<int64_t>(a.nth);
        return Status::ProtocolError(
            "injected fault: party " + std::to_string(id()) +
            " crashed at network op " + std::to_string(crashed_at_));
      }
      // kStall: sleep, but wake immediately if the mesh aborts meanwhile.
      if (a.kind == FaultKind::kStall || a.kind == FaultKind::kDelay) {
        if (net_->WaitForAbortMs(a.delay_ms)) return net_->abort_status();
      }
    }
  }
  if (net_->aborted()) return net_->abort_status();
  return Status::Ok();
}

Status SocketEndpoint::Send(int to, Bytes msg) {
  PIVOT_CHECK_MSG(to != id(), "self-send");
  PIVOT_CHECK(to >= 0 && to < num_parties());
  NoteSendPhase();
  PIVOT_RETURN_IF_ERROR(BeginOp());
  if (!net_->config().reliable) return SendRaw(to, std::move(msg));
  return SendReliable(to, std::move(msg));
}

Status SocketEndpoint::SendRaw(int to, Bytes msg) {
  const uint64_t seq = send_seq_[to]++;
  CountSend(msg.size());
  OpCounters::Global().AddBytesSent(msg.size());
  OpCounters::Global().AddMessage();
  return PushWireFrame(to, seq, std::move(msg), /*retransmit=*/false);
}

Status SocketEndpoint::SendReliable(int to, Bytes msg) {
  // Serve pending retransmission requests before advancing: a peer
  // blocked on an earlier frame must not starve behind new traffic.
  PIVOT_RETURN_IF_ERROR(ServiceControl());
  const uint64_t seq = send_seq_[to]++;
  const size_t payload_size = msg.size();
  Bytes frame = BuildSeqFrame(seq, msg);
  // Counters track logical payloads only: retransmissions, frame headers
  // and heartbeats are transport overhead, not protocol communication
  // cost.
  CountSend(payload_size);
  OpCounters::Global().AddBytesSent(payload_size);
  OpCounters::Global().AddMessage();
  // Keep the clean frame for retransmission before faults touch the wire
  // copy; the window is bounded, oldest frame evicted first.
  auto& window = resend_[to];
  window.push_back(ResendEntry{seq, frame});
  if (static_cast<int>(window.size()) > net_->config().resend_buffer_frames) {
    window.pop_front();
  }
  return PushWireFrame(to, seq, std::move(frame), /*retransmit=*/false);
}

Status SocketEndpoint::PushWireFrame(int to, uint64_t seq, Bytes frame,
                                     bool retransmit) {
  int copies = 1;
  if (const FaultPlan* plan = net_->fault_plan()) {
    const int idx = plan->MatchMessage(id(), to, seq, retransmit);
    if (idx >= 0) {
      const FaultAction& a = plan->actions()[idx];
      net_->MarkFaultFired(idx);
      switch (a.kind) {
        case FaultKind::kDrop:
          copies = 0;
          break;
        case FaultKind::kDelay:
          if (net_->WaitForAbortMs(a.delay_ms)) return net_->abort_status();
          break;
        case FaultKind::kDuplicate:
          copies = 2;
          break;
        case FaultKind::kTruncate:
          frame.resize(frame.size() / 2);
          break;
        case FaultKind::kCorrupt:
          if (!frame.empty()) {
            const uint64_t bit = a.bit % (frame.size() * 8);
            frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
          }
          break;
        case FaultKind::kCrash:
        case FaultKind::kStall:
          break;  // party faults are handled in BeginOp
        case FaultKind::kSever:
          // Cut the connection at this frame. Transient: the supervisor
          // reconnects and NACK recovery refills the gap. Fatal:
          // reconnection is refused, the budget exhausts, the run aborts.
          if (a.fatal) {
            net_->links_[to]->refuse_reconnect.store(
                true, std::memory_order_release);
          }
          net_->SeverLink(
              to, a.fatal
                      ? "injected fault: connection severed (fatal: "
                        "reconnection refused)"
                      : "injected fault: connection severed");
          break;
        case FaultKind::kMute:
          // Outbound traffic (heartbeats included) vanishes until the
          // deadline; the peer's supervisor detects the silence.
          net_->links_[to]->mute_until_ms.store(
              SocketNetwork::NowMs() + a.delay_ms, std::memory_order_relaxed);
          break;
      }
    }
  }
  for (int c = 0; c < copies; ++c) {
    net_->EnqueueFrame(
        to, EncodeStreamFrame(StreamFrameType::kData,
                              c + 1 < copies ? frame : std::move(frame)));
  }
  return Status::Ok();
}

Status SocketEndpoint::ServiceControl() {
  if (net_->aborted()) return net_->abort_status();
  Bytes body;
  for (int p = 0; p < num_parties(); ++p) {
    if (p == id()) continue;
    while (net_->ctrl_in(p).TryPop(&body)) {
      Result<uint64_t> seq = DecodeNackBody(body);
      if (seq.ok()) {
        PIVOT_RETURN_IF_ERROR(HandleNack(p, seq.value()));
      }
      // Undecodable control bodies are ignored (forward compatibility).
    }
  }
  return Status::Ok();
}

Status SocketEndpoint::HandleNack(int peer, uint64_t seq) {
  // A probe for a frame this party has not produced yet: the peer is
  // ahead of us, not missing data. Nothing to do.
  if (seq >= send_seq_[peer]) return Status::Ok();
  for (const ResendEntry& e : resend_[peer]) {
    if (e.seq == seq) {
      CountRetransmit();
      return PushWireFrame(peer, seq, e.frame, /*retransmit=*/true);
    }
  }
  // The frame was sent but has aged out of the bounded window: the loss
  // is unrecoverable, so fail loudly instead of letting the peer starve.
  return Status::ProtocolError(
      "reliable channel: party " + std::to_string(id()) +
      " cannot retransmit frame " + std::to_string(seq) + " to party " +
      std::to_string(peer) + ": evicted from resend buffer (capacity " +
      std::to_string(net_->config().resend_buffer_frames) + ")");
}

void SocketEndpoint::SendNack(int to, uint64_t seq) {
  net_->EnqueueFrame(
      to, EncodeStreamFrame(StreamFrameType::kNack, EncodeNackBody(seq)));
  CountNack();
}

Result<Bytes> SocketEndpoint::Recv(int from) {
  PIVOT_CHECK_MSG(from != id(), "self-receive");
  PIVOT_CHECK(from >= 0 && from < num_parties());
  NoteRecvPhase();
  PIVOT_RETURN_IF_ERROR(BeginOp());
  if (!net_->config().reliable) return RecvRaw(from);
  return RecvReliable(from);
}

Result<Bytes> SocketEndpoint::RecvRaw(int from) {
  const auto start = std::chrono::steady_clock::now();
  MessageQueue& q = net_->data_in(from);
  Result<Bytes> r = q.Pop(net_->config().recv_timeout_ms);
  if (!r.ok()) {
    if (r.status().code() == StatusCode::kAborted) return r.status();
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    return Status::ProtocolError(
        "receive from party " + std::to_string(from) + " timed out at party " +
        std::to_string(id()) + " after " + std::to_string(elapsed_ms) +
        " ms (" + std::to_string(recv_seq_[from]) +
        " messages previously received on this channel, queue depth " +
        std::to_string(q.depth()) + "; " + net_->DescribePeer(from) + ")");
  }
  ++recv_seq_[from];
  CountRecv(r.value().size());
  return r;
}

Result<Bytes> SocketEndpoint::RecvReliable(int from) {
  const NetConfig& cfg = net_->config();
  MessageQueue& q = net_->data_in(from);
  const auto start = std::chrono::steady_clock::now();
  const uint64_t expected = recv_seq_[from];
  auto& stash = reorder_[from];
  const auto deliver = [&](Bytes payload) -> Result<Bytes> {
    ++recv_seq_[from];
    CountRecv(payload.size());
    return payload;
  };
  // A retransmission triggered by an earlier gap may already be waiting.
  {
    const auto it = stash.find(expected);
    if (it != stash.end()) {
      Bytes payload = std::move(it->second);
      stash.erase(it);
      return deliver(std::move(payload));
    }
  }
  // Recovery loop, bounded two ways: evidence-backed NACKs (a damaged
  // frame or a sequence gap) draw on cfg.retry_budget, and the overall
  // cfg.recv_timeout_ms deadline covers a silent peer. Probe NACKs sent
  // on silent slices are free — silence usually means the sender is
  // still computing (or the supervisor is mid-reconnect), and charging
  // for it would abort healthy slow runs.
  int evidence = 0;
  int backoff_ms = cfg.backoff_base_ms;
  for (;;) {
    PIVOT_RETURN_IF_ERROR(ServiceControl());
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed_ms >= cfg.recv_timeout_ms) {
      // The liveness snapshot turns "timed out" into a diagnosis: a
      // connected-but-silent peer is deadlocked or slow, a down peer with
      // exhausted dials is gone.
      return Status::ProtocolError(
          "receive from party " + std::to_string(from) +
          " timed out at party " + std::to_string(id()) + " after " +
          std::to_string(elapsed_ms) + " ms (" +
          std::to_string(recv_seq_[from]) +
          " messages previously received on this channel, queue depth " +
          std::to_string(q.depth()) + "; " + net_->DescribePeer(from) + ")");
    }
    const int slice = static_cast<int>(
        std::min<int64_t>(backoff_ms, cfg.recv_timeout_ms - elapsed_ms));
    Result<Bytes> r = q.Pop(slice > 0 ? slice : 1);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kAborted) return r.status();
      // Silent slice: probe for the expected frame (covers a frame lost
      // while the link was down with no follow-up traffic) and back off
      // deterministically.
      SendNack(from, expected);
      backoff_ms = std::min(backoff_ms * 2, cfg.backoff_max_ms);
      continue;
    }
    backoff_ms = cfg.backoff_base_ms;  // channel is live again
    uint64_t seq = 0;
    Bytes payload;
    if (!ParseSeqFrame(r.value(), &seq, &payload)) {
      // Corrupted or truncated frame; its header cannot be trusted, so
      // re-request the expected frame.
      CountCorruptFrame();
      if (++evidence > cfg.retry_budget) {
        return Status::ProtocolError(
            "retry budget exhausted receiving from party " +
            std::to_string(from) + " at party " + std::to_string(id()) +
            ": " + std::to_string(evidence) +
            " loss events (damaged or missing frames) exceeded the budget "
            "of " +
            std::to_string(cfg.retry_budget) + " retransmission attempts");
      }
      SendNack(from, expected);
      continue;
    }
    if (seq < expected) {
      // Duplicate of an already-delivered frame (duplicate fault or a
      // redundant retransmission).
      CountDuplicate();
      continue;
    }
    if (seq > expected) {
      // Future frame: the expected one was lost in transit. Stash it and
      // request the gap.
      const bool inserted = stash.emplace(seq, std::move(payload)).second;
      if (!inserted) {
        CountDuplicate();
        continue;
      }
      if (++evidence > cfg.retry_budget) {
        return Status::ProtocolError(
            "retry budget exhausted receiving from party " +
            std::to_string(from) + " at party " + std::to_string(id()) +
            ": " + std::to_string(evidence) +
            " loss events (damaged or missing frames) exceeded the budget "
            "of " +
            std::to_string(cfg.retry_budget) + " retransmission attempts");
      }
      SendNack(from, expected);
      continue;
    }
    return deliver(std::move(payload));
  }
}

// ----- loopback harness ------------------------------------------------

Status RunLoopbackParties(int num_parties, const SocketOptions& options,
                          const std::function<Status(int, Endpoint&)>& body,
                          NetworkStats* stats,
                          const std::vector<FaultPlan>& plans,
                          uint64_t* fired_fault_mask) {
  PIVOT_CHECK(num_parties >= 1);
  std::vector<std::unique_ptr<SocketNetwork>> nets;
  nets.reserve(num_parties);
  std::vector<std::string> addresses(num_parties);
  for (int i = 0; i < num_parties; ++i) {
    nets.push_back(
        std::make_unique<SocketNetwork>(i, num_parties, options));
    if (!plans.empty() && i < static_cast<int>(plans.size())) {
      nets[i]->set_fault_plan(plans[i]);
    }
    PIVOT_RETURN_IF_ERROR(nets[i]->Bind("127.0.0.1:0"));
    addresses[i] = nets[i]->listen_address();
  }
  std::vector<Status> statuses(num_parties);
  std::vector<std::thread> threads;
  threads.reserve(num_parties);
  for (int i = 0; i < num_parties; ++i) {
    threads.emplace_back([&, i] {
      Status st = nets[i]->Establish(addresses);
      if (st.ok()) st = body(i, nets[i]->endpoint());
      // Abort this party's mesh before the thread exits so peers blocked
      // in Recv wake immediately; the kAbort broadcast carries the cause
      // across processes (here: across networks). Abort echoes are not
      // re-propagated.
      if (!st.ok() && st.code() != StatusCode::kAborted) {
        nets[i]->Abort(st, i);
      }
      statuses[i] = std::move(st);
    });
  }
  for (std::thread& t : threads) t.join();
  if (stats != nullptr) {
    *stats = NetworkStats();
    for (int i = 0; i < num_parties; ++i) {
      const NetworkStats s = nets[i]->stats();
      stats->bytes_sent += s.bytes_sent;
      stats->bytes_received += s.bytes_received;
      stats->messages_sent += s.messages_sent;
      stats->messages_received += s.messages_received;
      stats->rounds = std::max(stats->rounds, s.rounds);
      stats->retransmits += s.retransmits;
      stats->duplicates_suppressed += s.duplicates_suppressed;
      stats->corrupt_frames += s.corrupt_frames;
      stats->nacks_sent += s.nacks_sent;
      stats->reconnects += s.reconnects;
      stats->heartbeats += s.heartbeats;
    }
  }
  if (fired_fault_mask != nullptr) {
    *fired_fault_mask = 0;
    for (int i = 0; i < num_parties; ++i) {
      *fired_fault_mask |= nets[i]->fired_fault_mask();
    }
  }
  // Prefer the root cause over abort echoes, as RunParties does.
  for (int i = 0; i < num_parties; ++i) {
    if (!statuses[i].ok() && statuses[i].code() != StatusCode::kAborted) {
      return Status(statuses[i].code(), "party " + std::to_string(i) + ": " +
                                            statuses[i].message());
    }
  }
  for (int i = 0; i < num_parties; ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(), "party " + std::to_string(i) + ": " +
                                            statuses[i].message());
    }
  }
  return Status::Ok();
}

}  // namespace pivot
