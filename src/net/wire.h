#ifndef PIVOT_NET_WIRE_H_
#define PIVOT_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace pivot {

// Wire formats shared by the two transport backends (DESIGN.md,
// "Transport model").
//
// Both the in-memory mesh (net/network.h) and the socket transport
// (net/socket.h) speak the same *reliable frame* — a per-channel sequence
// number plus a CRC32 over the whole frame — so duplicate suppression,
// corruption detection and NACK-triggered retransmission behave
// identically whether a frame crossed a std::deque or a TCP connection.
//
// The socket transport additionally wraps every message in a *stream
// frame*: a length prefix and a one-byte type, so heartbeats, NACKs,
// handshakes and abort notices can share one connection with protocol
// data. The incremental StreamFrameReader below survives partial writes
// and short reads (a frame may arrive one byte at a time) and rejects an
// implausible length prefix before allocating anything for the payload.

// ----- little-endian scalar helpers ------------------------------------

void PutU64Le(uint8_t* out, uint64_t v);
uint64_t GetU64Le(const uint8_t* in);
void PutU32Le(uint8_t* out, uint32_t v);
uint32_t GetU32Le(const uint8_t* in);

// ----- reliable frame (seq + CRC32) ------------------------------------

// Layout (little-endian):
//   [0, 8)   sequence number (per directed channel, starting at 0)
//   [8]      flags (reserved, 0)
//   [9, 13)  payload length
//   [13, 17) CRC32 over the whole frame with this field zeroed
//   [17, ..) payload
inline constexpr size_t kSeqFrameHeader = 17;

Bytes BuildSeqFrame(uint64_t seq, const Bytes& payload);

// Validates the frame and extracts (seq, payload). Any damage — too
// short, length mismatch, checksum mismatch — returns false; callers
// must not trust any header field of a frame that fails here.
bool ParseSeqFrame(const Bytes& frame, uint64_t* seq, Bytes* payload);

// ----- stream framing (socket transport) -------------------------------

// Outer layout: [u32 length][u8 type][body...], length = 1 + body size.
inline constexpr size_t kStreamHeaderBytes = 5;

// Stream frame types. kData carries a reliable frame (or a raw payload
// when NetConfig::reliable is off); everything else is control traffic.
enum class StreamFrameType : uint8_t {
  kData = 1,       // body: reliable frame (seq + CRC32) or raw payload
  kNack = 2,       // body: u64 requested sequence number
  kHeartbeat = 3,  // body: u64 heartbeat counter
  kAbort = 4,      // body: i64 origin party, u8 status code, string message
  kHello = 5,      // body: handshake (see HelloFrame)
  kHelloAck = 6,   // body: handshake echo from the acceptor
};

struct StreamFrame {
  uint8_t type = 0;
  Bytes body;
};

Bytes EncodeStreamFrame(StreamFrameType type, const Bytes& body);

// Incremental parser for the byte stream of one connection. Feed it
// whatever read(2) returned — any split, including one byte at a time —
// and it appends every completed frame to `out`. A length prefix above
// `max_frame_bytes` fails *before* any payload allocation, so a corrupted
// or hostile header cannot drive an out-of-memory allocation. The parser
// is connection-scoped: when a connection drops mid-frame, discard the
// parser (and with it the partial frame) along with the socket.
class StreamFrameReader {
 public:
  explicit StreamFrameReader(uint64_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  [[nodiscard]] Status Feed(const uint8_t* data, size_t n,
                            std::vector<StreamFrame>* out);

  // True while a partially received frame is pending — used to report
  // that a dropped connection cut a frame in half.
  bool mid_frame() const { return header_fill_ > 0 || body_expected_ > 0; }

 private:
  uint64_t max_frame_bytes_;
  uint8_t header_[kStreamHeaderBytes] = {0};
  size_t header_fill_ = 0;
  size_t body_expected_ = 0;  // body bytes still missing (incl. type byte)
  StreamFrame pending_;
};

// ----- handshake -------------------------------------------------------

inline constexpr uint32_t kHandshakeMagic = 0x50564853;  // 'PVHS'
// Bumped whenever any wire format above changes incompatibly.
inline constexpr uint32_t kTransportVersion = 1;

// Mesh-negotiation handshake. The dialer sends kHello, the acceptor
// validates and answers kHelloAck with its own identity. `incarnation`
// identifies one SocketNetwork instance: a reconnect presenting the same
// incarnation may resume the channel via NACK retransmission, while a
// changed incarnation means the peer process (or attempt) restarted and
// its channel state is gone — the run must abort and resume from
// checkpoints instead.
struct HelloFrame {
  uint32_t version = kTransportVersion;
  int32_t party_id = 0;
  int32_t num_parties = 0;
  uint64_t incarnation = 0;
};

Bytes EncodeHello(const HelloFrame& hello);
Result<HelloFrame> DecodeHello(const Bytes& body);

// ----- control bodies --------------------------------------------------

Bytes EncodeNackBody(uint64_t seq);
Result<uint64_t> DecodeNackBody(const Bytes& body);

Bytes EncodeHeartbeatBody(uint64_t counter);

struct AbortFrame {
  int32_t origin_party = -1;
  StatusCode code = StatusCode::kAborted;
  std::string message;
};

Bytes EncodeAbortBody(const AbortFrame& abort);
Result<AbortFrame> DecodeAbortBody(const Bytes& body);

}  // namespace pivot

#endif  // PIVOT_NET_WIRE_H_
