#ifndef PIVOT_NET_SOCKET_H_
#define PIVOT_NET_SOCKET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/endpoint.h"
#include "net/fault.h"
#include "net/network.h"
#include "net/supervisor.h"
#include "net/wire.h"

namespace pivot {

// Multi-process socket transport (DESIGN.md, "Transport model").
//
// One SocketNetwork per party *process*: it binds a TCP or Unix-domain
// listener, negotiates the full mesh (listen/dial by rank with a
// version-checked party-id handshake), and exposes a single
// SocketEndpoint speaking the same reliable frame format as the
// in-memory mesh (net/wire.h: seq + CRC32 + NACK retransmit) — so a
// protocol run over real file descriptors is bit-identical to the
// single-process run, and the checkpoint/resume machinery carries over
// unchanged to real process crashes.
//
// Mesh negotiation: party i dials every peer j < i and accepts from
// every j > i, so each directed pair has exactly one connection and no
// adoption races. The dialer opens with a kHello (magic, transport
// version, party id, party count, incarnation); the acceptor validates
// and answers kHelloAck with its own identity. `incarnation` identifies
// one SocketNetwork instance: a reconnect presenting the *same*
// incarnation resumes the channel (missing frames recovered via NACK
// from the bounded resend window), while a *changed* incarnation means
// the peer process restarted and its channel state is gone — the run
// aborts and the next attempt re-establishes a fresh mesh, resuming
// from checkpoints.
//
// Threads per process: one accept loop, one supervisor loop
// (ConnectionSupervisor Tick: heartbeats, dead-peer detection,
// reconnect with deterministic backoff, escalation to abort), and per
// live connection one receiver plus one writer. The writer drains an
// unbounded per-link outbound queue, so Endpoint::Send never blocks on
// TCP backpressure — the classic SPMD distributed deadlock (all parties
// stuck in a blocking send to each other) cannot happen. Frames sent
// while a link is down are dropped and recovered by the reliable
// layer's NACK/retransmit path after reconnection; in raw mode
// (NetConfig::reliable = false) such frames are simply lost.
//
// Faults: a FaultPlan applies to outbound wire frames (drop / delay /
// duplicate / truncate / corrupt, as in-memory) plus the socket-only
// kinds — kSever closes the connection (fatal: reconnection refused
// until the budget exhausts) and kMute suppresses all outbound traffic,
// heartbeats included, for delay_ms (the peer's supervisor detects the
// silence and reconnects). NetworkSim is not applied here: real wires
// have real latency.

struct SocketOptions {
  // Reliable-channel tunables (same meaning as on the in-memory mesh).
  NetConfig net;
  // Heartbeat / reconnect / escalation tunables.
  SupervisorConfig supervision;
  // Deadline for Establish() to bring up the full mesh.
  int establish_timeout_ms = 60'000;
  // Per-connection handshake deadline (dial and accept side).
  int handshake_timeout_ms = 5'000;
  // Hard cap on one stream frame; a larger length prefix is rejected
  // before any payload allocation (corrupt or hostile header).
  uint64_t max_frame_bytes = uint64_t{1} << 30;
  // Transport version offered in the handshake. Tests override it to
  // exercise version-mismatch rejection; leave at default otherwise.
  uint32_t handshake_version = kTransportVersion;
  // Instance identity for crash detection; 0 derives a process-unique
  // value (pid + instance counter).
  uint64_t incarnation = 0;
  // Invoked once per supervisor pass (roughly every heartbeat interval)
  // from the supervisor thread, while the network is up. The process
  // orchestrator uses this as its liveness export: the party-side hook
  // writes ALIVE to the control pipe and checks for a pending shutdown
  // request. Must be cheap and must not block.
  std::function<void()> on_tick;
};

class SocketNetwork;

// Socket-backed implementation of the Endpoint abstraction. One per
// SocketNetwork, driven by the party's protocol thread.
class SocketEndpoint : public Endpoint {
 public:
  [[nodiscard]] Status Send(int to, Bytes msg) override;
  Result<Bytes> Recv(int from) override;

 private:
  friend class SocketNetwork;
  SocketEndpoint(SocketNetwork* net, int id, int num_parties)
      : Endpoint(id, num_parties),
        send_seq_(num_parties, 0),
        recv_seq_(num_parties, 0),
        resend_(num_parties),
        reorder_(num_parties),
        net_(net) {}

  struct ResendEntry {
    uint64_t seq = 0;
    Bytes frame;
  };

  Status BeginOp();
  Status SendRaw(int to, Bytes msg);
  Result<Bytes> RecvRaw(int from);
  Status SendReliable(int to, Bytes msg);
  Result<Bytes> RecvReliable(int from);
  Status ServiceControl();
  Status HandleNack(int peer, uint64_t seq);
  void SendNack(int to, uint64_t seq);
  // Applies any scheduled fault for (id -> to, seq) to the wire copy and
  // hands the surviving copies to the link writer.
  Status PushWireFrame(int to, uint64_t seq, Bytes frame, bool retransmit);

  // Per-channel state, touched only by the owning party thread.
  std::vector<uint64_t> send_seq_;
  std::vector<uint64_t> recv_seq_;
  std::vector<std::deque<ResendEntry>> resend_;
  std::vector<std::map<uint64_t, Bytes>> reorder_;
  uint64_t ops_ = 0;
  int64_t crashed_at_ = -1;
  SocketNetwork* net_;
};

class SocketNetwork {
 public:
  SocketNetwork(int party_id, int num_parties,
                SocketOptions options = SocketOptions());
  ~SocketNetwork();

  SocketNetwork(const SocketNetwork&) = delete;
  SocketNetwork& operator=(const SocketNetwork&) = delete;

  int party_id() const { return party_id_; }
  int num_parties() const { return num_parties_; }
  const NetConfig& config() const { return options_.net; }
  const SocketOptions& options() const { return options_; }

  // Binds the listener. `address` is "host:port" (TCP; port 0 picks an
  // ephemeral port) or "unix:PATH" (Unix-domain; a stale socket file at
  // PATH is removed). listen_address() reports the bound address with
  // the actual port filled in.
  [[nodiscard]] Status Bind(const std::string& address);
  const std::string& listen_address() const { return listen_address_; }

  // Brings up the full mesh: dials every lower-ranked peer (retrying
  // with deterministic backoff until options.establish_timeout_ms),
  // accepts every higher-ranked one, then starts supervision.
  // `peer_addresses[j]` is party j's listen address; the self entry is
  // ignored. Fails permanently on a transport-version mismatch.
  [[nodiscard]] Status Establish(
      const std::vector<std::string>& peer_addresses);

  SocketEndpoint& endpoint() { return *endpoint_; }

  // Security-with-abort across processes: records the cause, poisons the
  // local inbound queues, and (when this party originated the abort)
  // broadcasts a kAbort frame to every connected peer so their blocked
  // receives wake promptly. First caller wins.
  void Abort(Status cause, int origin_party);
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  Status abort_status() const;
  // Sleeps up to `ms`, waking early on abort; true if aborted.
  bool WaitForAbortMs(int ms);

  // Socket-level fault injection; install before Establish.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan* fault_plan() const { return fault_plan_.get(); }
  uint64_t fired_fault_mask() const {
    return fired_.load(std::memory_order_relaxed);
  }

  // This process's traffic counters plus supervision counters
  // (reconnects, heartbeats). Cross-party aggregation is the caller's
  // job — each process only sees itself.
  NetworkStats stats() const;
  // Liveness line for peer `p` ("connected, last heard N ms ago, ...");
  // feeds Recv timeout diagnostics.
  std::string DescribePeer(int peer) const;

 private:
  friend class SocketEndpoint;

  // One connection generation: an fd plus its writer/receiver threads
  // and outbound queue. A reconnect retires the old generation (threads
  // joined, fd closed at reap time) and installs a new one; the
  // generation owns its fd exclusively, so no thread ever writes to a
  // recycled descriptor.
  struct LinkGen {
    int fd = -1;
    std::shared_ptr<MessageQueue> outbound;
    std::thread writer;
    std::thread receiver;
  };

  struct PeerLink {
    std::mutex mu;
    std::unique_ptr<LinkGen> cur;                // null while down
    std::vector<std::unique_ptr<LinkGen>> dead;  // awaiting join + close
    uint64_t incarnation_seen = 0;               // 0 = never connected
    std::string last_down_reason;                // why the last drop happened
    std::atomic<int64_t> mute_until_ms{0};       // kMute fault deadline
    std::atomic<bool> refuse_reconnect{false};   // fatal kSever fault
  };

  static int64_t NowMs();

  Status ParseAndListen(const std::string& address);
  // One dial attempt to peer `j` including the handshake; adopts the
  // connection on success. InvalidArgument is permanent (version
  // mismatch); other errors are retryable.
  Status DialPeer(int j);
  void AcceptLoop();
  // Handshakes one inbound connection (accept side) and adopts or rejects
  // it; owns `fd` either way.
  void HandleInbound(int fd);
  void SupervisorLoop();
  void ReceiverLoop(int peer, LinkGen* gen);
  void WriterLoop(int peer, LinkGen* gen);
  void DispatchFrame(int peer, StreamFrame frame);
  // Installs a handshaken fd as peer `p`'s current generation (retiring
  // and reaping any previous one) and spawns its threads.
  void AdoptConnection(int peer, int fd, uint64_t peer_incarnation);
  // Retires the current generation: shuts the fd down and poisons the
  // outbound queue so both threads exit on their own. Join + close
  // happen later (AdoptConnection or teardown) — never from a thread
  // that might be the generation's own receiver.
  void SeverLink(int peer, const std::string& reason);
  // True once every peer has a live connection.
  bool AllConnectedLocked();
  // Hands a ready stream frame to the link writer; silently dropped when
  // the link is down (reliable layer recovers via NACK).
  void EnqueueFrame(int peer, Bytes stream_frame);
  // Abort without the peer broadcast (for aborts *received* from peers).
  void LocalAbort(Status recorded);
  // Records the abort and poisons the inbound queues; false if a prior
  // abort already won.
  bool LocalAbortInternal(Status recorded);
  void MarkFaultFired(int action_index) {
    fired_.fetch_or(uint64_t{1} << (action_index & 63),
                    std::memory_order_relaxed);
  }
  MessageQueue& data_in(int peer) { return *data_in_[peer]; }
  MessageQueue& ctrl_in(int peer) { return *ctrl_in_[peer]; }

  int party_id_;
  int num_parties_;
  SocketOptions options_;
  uint64_t incarnation_;
  std::unique_ptr<SocketEndpoint> endpoint_;
  std::unique_ptr<ConnectionSupervisor> supervisor_;

  int listen_fd_ = -1;
  std::string listen_address_;
  std::string unix_path_;  // empty for TCP
  std::vector<std::string> peer_addresses_;

  std::vector<std::unique_ptr<PeerLink>> links_;
  std::vector<std::unique_ptr<MessageQueue>> data_in_;
  std::vector<std::unique_ptr<MessageQueue>> ctrl_in_;

  std::thread accept_thread_;
  std::thread supervisor_thread_;
  std::atomic<bool> shutdown_{false};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  std::mutex conn_mu_;
  std::condition_variable conn_cv_;

  std::unique_ptr<FaultPlan> fault_plan_;
  std::atomic<uint64_t> fired_{0};
  std::atomic<uint64_t> heartbeat_seq_{0};

  std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mu_;
  std::condition_variable abort_cv_;
  Status abort_status_;
};

// Loopback harness: runs `body(party_id, endpoint)` for `num_parties`
// SocketNetworks over 127.0.0.1 TCP in one process — the socket-backend
// twin of RunParties, used by RunFederation's socket mode and the
// transport tests. Each party binds an ephemeral port, the mesh is
// established, and statuses are combined with the same root-cause
// preference as RunParties. `plans[i]` (when provided) installs a fault
// plan on party i's network; `fired_fault_mask` (when non-null) receives
// the OR of all parties' fired masks.
Status RunLoopbackParties(
    int num_parties, const SocketOptions& options,
    const std::function<Status(int, Endpoint&)>& body,
    NetworkStats* stats = nullptr, const std::vector<FaultPlan>& plans = {},
    uint64_t* fired_fault_mask = nullptr);

}  // namespace pivot

#endif  // PIVOT_NET_SOCKET_H_
