#include "net/supervisor.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pivot {

const char* PeerStateName(PeerState state) {
  switch (state) {
    case PeerState::kNeverConnected:
      return "never-connected";
    case PeerState::kConnected:
      return "connected";
    case PeerState::kDown:
      return "down";
  }
  return "unknown";
}

ConnectionSupervisor::ConnectionSupervisor(int num_parties, int self,
                                           SupervisorConfig config,
                                           Callbacks callbacks,
                                           std::vector<bool> dials_to)
    : num_parties_(num_parties),
      self_(self),
      config_(config),
      callbacks_(std::move(callbacks)),
      dials_to_(std::move(dials_to)),
      peers_(num_parties) {
  PIVOT_CHECK(self >= 0 && self < num_parties);
  PIVOT_CHECK(static_cast<int>(dials_to_.size()) == num_parties);
}

void ConnectionSupervisor::StartEpisodeLocked(PeerSlot& slot, int64_t now_ms) {
  slot.state = PeerState::kDown;
  slot.episode_start_ms = now_ms;
  slot.next_dial_ms = now_ms;
  slot.dial_attempts = 0;
  slot.backoff_ms = config_.backoff_base_ms;
  slot.escalated = false;
}

void ConnectionSupervisor::NoteConnected(int peer, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  PeerSlot& slot = peers_[peer];
  if (slot.state == PeerState::kDown) ++slot.reconnects;
  slot.state = PeerState::kConnected;
  slot.last_heard_ms = now_ms;
  slot.next_heartbeat_ms = now_ms + config_.heartbeat_interval_ms;
  slot.escalated = false;
}

void ConnectionSupervisor::NoteHeard(int peer, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_[peer].last_heard_ms = now_ms;
}

void ConnectionSupervisor::NoteDown(int peer, int64_t now_ms,
                                    const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PeerSlot& slot = peers_[peer];
    if (slot.state == PeerState::kDown) return;
    StartEpisodeLocked(slot, now_ms);
  }
  // The reason is folded into the sever callback so the transport can log
  // or record it; the connection itself is already gone.
  if (callbacks_.sever) callbacks_.sever(peer, reason);
}

int ConnectionSupervisor::Tick(int64_t now_ms) {
  struct Sever {
    int peer;
    std::string reason;
  };
  std::vector<Sever> severs;
  std::vector<int> heartbeats;
  std::vector<int> dials;
  struct Escalation {
    int peer;
    Status cause;
  };
  std::vector<Escalation> escalations;
  int64_t next_due = now_ms + config_.heartbeat_interval_ms;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int p = 0; p < num_parties_; ++p) {
      if (p == self_) continue;
      PeerSlot& slot = peers_[p];
      switch (slot.state) {
        case PeerState::kNeverConnected:
          break;  // Establish() owns initial connection setup
        case PeerState::kConnected: {
          const int64_t silent_ms =
              slot.last_heard_ms < 0 ? 0 : now_ms - slot.last_heard_ms;
          if (silent_ms > config_.heartbeat_timeout_ms) {
            severs.push_back(
                {p, "no frames from peer " + std::to_string(p) + " for " +
                        std::to_string(silent_ms) +
                        " ms (heartbeat timeout " +
                        std::to_string(config_.heartbeat_timeout_ms) +
                        " ms): declaring the connection dead"});
            StartEpisodeLocked(slot, now_ms);
            next_due = std::min(next_due, slot.next_dial_ms);
            break;
          }
          if (now_ms >= slot.next_heartbeat_ms) {
            heartbeats.push_back(p);
            ++slot.heartbeats_sent;
            slot.next_heartbeat_ms = now_ms + config_.heartbeat_interval_ms;
          }
          next_due = std::min(
              {next_due, slot.next_heartbeat_ms,
               slot.last_heard_ms + config_.heartbeat_timeout_ms + 1});
          break;
        }
        case PeerState::kDown: {
          if (slot.escalated) break;
          const bool dialer = dials_to_[p];
          const int64_t elapsed = now_ms - slot.episode_start_ms;
          const bool time_exhausted = elapsed >= config_.reconnect_timeout_ms;
          const bool attempts_exhausted =
              dialer && slot.dial_attempts >= config_.reconnect_attempts;
          if (time_exhausted || attempts_exhausted) {
            slot.escalated = true;
            escalations.push_back(
                {p, Status::ProtocolError(
                        "peer " + std::to_string(p) + " unreachable: " +
                        (dialer
                             ? std::to_string(slot.dial_attempts) +
                                   " reconnect attempts over " +
                                   std::to_string(elapsed) + " ms exhausted "
                                   "the reconnection budget (" +
                                   std::to_string(config_.reconnect_attempts) +
                                   " attempts / " +
                                   std::to_string(config_.reconnect_timeout_ms) +
                                   " ms)"
                             : "peer did not dial back within " +
                                   std::to_string(elapsed) + " ms (budget " +
                                   std::to_string(config_.reconnect_timeout_ms) +
                                   " ms)"))});
            break;
          }
          if (dialer && now_ms >= slot.next_dial_ms) {
            // Burn the attempt and schedule the next one before the
            // (blocking, lock-free) dial runs, so a concurrent event
            // cannot double-spend the budget.
            ++slot.dial_attempts;
            slot.next_dial_ms = now_ms + slot.backoff_ms;
            slot.backoff_ms =
                std::min(slot.backoff_ms * 2, config_.backoff_max_ms);
            dials.push_back(p);
          }
          if (dialer) {
            next_due = std::min(next_due, slot.next_dial_ms);
          }
          next_due = std::min(
              next_due, slot.episode_start_ms + config_.reconnect_timeout_ms);
          break;
        }
      }
    }
  }

  // Side effects run without the lock: dial blocks on connect(2), and
  // sever/escalate re-enter the transport, which may feed events back
  // into NoteDown/NoteConnected.
  for (const Sever& s : severs) {
    if (callbacks_.sever) callbacks_.sever(s.peer, s.reason);
  }
  for (int p : heartbeats) {
    if (callbacks_.send_heartbeat) callbacks_.send_heartbeat(p);
  }
  for (int p : dials) {
    if (!callbacks_.dial) continue;
    const Status st = callbacks_.dial(p);
    if (st.ok()) NoteConnected(p, now_ms);
  }
  for (const Escalation& e : escalations) {
    if (callbacks_.escalate) callbacks_.escalate(e.peer, e.cause);
  }

  const int64_t sleep_ms = next_due - now_ms;
  return static_cast<int>(std::clamp<int64_t>(
      sleep_ms, 1, config_.heartbeat_interval_ms));
}

PeerHealth ConnectionSupervisor::Health(int peer, int64_t now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  const PeerSlot& slot = peers_[peer];
  PeerHealth health;
  health.state = slot.state;
  health.last_heard_age_ms =
      slot.last_heard_ms < 0 ? -1 : now_ms - slot.last_heard_ms;
  health.dial_attempts = slot.dial_attempts;
  health.reconnects = slot.reconnects;
  health.heartbeats_sent = slot.heartbeats_sent;
  return health;
}

std::string ConnectionSupervisor::Describe(int peer, int64_t now_ms) const {
  const PeerHealth h = Health(peer, now_ms);
  std::string out =
      "peer " + std::to_string(peer) + " " + PeerStateName(h.state);
  if (h.last_heard_age_ms >= 0) {
    out += ", last heard " + std::to_string(h.last_heard_age_ms) + " ms ago";
  } else {
    out += ", never heard from";
  }
  if (h.state == PeerState::kDown) {
    out += ", " + std::to_string(h.dial_attempts) +
           " dial attempts this episode";
  }
  out += ", " + std::to_string(h.reconnects) + " reconnects";
  return out;
}

}  // namespace pivot
