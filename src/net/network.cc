#include "net/network.h"

#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/op_counters.h"

namespace pivot {

void MessageQueue::Push(Bytes msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

Result<Bytes> MessageQueue::Pop(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [this] { return !queue_.empty(); })) {
    return Status::ProtocolError("receive timed out (peer missing/deadlock?)");
  }
  Bytes msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

InMemoryNetwork::InMemoryNetwork(int num_parties, int recv_timeout_ms,
                                 NetworkSim sim)
    : num_parties_(num_parties), recv_timeout_ms_(recv_timeout_ms), sim_(sim) {
  PIVOT_CHECK_MSG(num_parties >= 1, "network needs at least one party");
  queues_.reserve(static_cast<size_t>(num_parties) * num_parties);
  for (int i = 0; i < num_parties * num_parties; ++i) {
    queues_.push_back(std::make_unique<MessageQueue>());
  }
  endpoints_.reserve(num_parties);
  for (int i = 0; i < num_parties; ++i) {
    endpoints_.push_back(Endpoint(this, i, num_parties));
  }
}

Endpoint& InMemoryNetwork::endpoint(int i) {
  PIVOT_CHECK(i >= 0 && i < num_parties_);
  return endpoints_[i];
}

uint64_t InMemoryNetwork::total_bytes() const {
  uint64_t total = 0;
  for (const Endpoint& e : endpoints_) total += e.bytes_sent();
  return total;
}

void Endpoint::Send(int to, Bytes msg) {
  PIVOT_CHECK_MSG(to != id_, "self-send");
  PIVOT_CHECK(to >= 0 && to < num_parties_);
  if (net_->sim_.enabled()) {
    // Sender-side delay: per-message latency + serialization time.
    double micros = net_->sim_.latency_us;
    if (net_->sim_.bandwidth_gbps > 0) {
      micros += static_cast<double>(msg.size()) * 8.0 /
                (net_->sim_.bandwidth_gbps * 1e3);
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(micros)));
  }
  bytes_sent_.fetch_add(msg.size(), std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  OpCounters::Global().AddBytesSent(msg.size());
  OpCounters::Global().AddMessage();
  net_->queue(id_, to).Push(std::move(msg));
}

Result<Bytes> Endpoint::Recv(int from) {
  PIVOT_CHECK_MSG(from != id_, "self-receive");
  PIVOT_CHECK(from >= 0 && from < num_parties_);
  return net_->queue(from, id_).Pop(net_->recv_timeout_ms_);
}

void Endpoint::Broadcast(const Bytes& msg) {
  for (int to = 0; to < num_parties_; ++to) {
    if (to != id_) Send(to, msg);
  }
}

Result<std::vector<Bytes>> Endpoint::GatherAll(Bytes own) {
  std::vector<Bytes> out(num_parties_);
  out[id_] = std::move(own);
  for (int from = 0; from < num_parties_; ++from) {
    if (from == id_) continue;
    PIVOT_ASSIGN_OR_RETURN(out[from], Recv(from));
  }
  return out;
}

Status RunParties(InMemoryNetwork& net,
                  const std::function<Status(int, Endpoint&)>& body) {
  const int m = net.num_parties();
  std::vector<Status> statuses(m);
  std::vector<std::thread> threads;
  threads.reserve(m);
  for (int i = 0; i < m; ++i) {
    threads.emplace_back([&, i] { statuses[i] = body(i, net.endpoint(i)); });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < m; ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(), "party " + std::to_string(i) + ": " +
                                            statuses[i].message());
    }
  }
  return Status::Ok();
}

}  // namespace pivot
