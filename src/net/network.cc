#include "net/network.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/op_counters.h"
#include "net/wire.h"

namespace pivot {

namespace {

// Control messages (separate mesh): [0] = type, then type-specific body.
constexpr uint8_t kCtrlNack = 1;  // [1, 9) = little-endian frame seq
constexpr size_t kCtrlNackSize = 9;

// Reads an integer environment variable. Three outcomes: unset (OK,
// *present = false), parsed (OK, *present = true, *out set), or malformed
// — which is an error, because a typo'd override silently falling back to
// the default is exactly the failure mode FromEnv exists to prevent.
Status EnvInt(const char* name, int* out, bool* present) {
  *present = false;
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return Status::Ok();
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    return Status::InvalidArgument(std::string(name) + "=\"" + v +
                                   "\" is not an integer");
  }
  *out = static_cast<int>(parsed);
  *present = true;
  return Status::Ok();
}

}  // namespace

Status NetConfig::Validate() const {
  const auto positive = [](const char* field, int value) -> Status {
    if (value <= 0) {
      return Status::InvalidArgument(
          std::string("NetConfig: ") + field + " must be positive, got " +
          std::to_string(value));
    }
    return Status::Ok();
  };
  PIVOT_RETURN_IF_ERROR(positive("recv_timeout_ms", recv_timeout_ms));
  PIVOT_RETURN_IF_ERROR(positive("retry_budget", retry_budget));
  PIVOT_RETURN_IF_ERROR(positive("backoff_base_ms", backoff_base_ms));
  PIVOT_RETURN_IF_ERROR(positive("backoff_max_ms", backoff_max_ms));
  PIVOT_RETURN_IF_ERROR(
      positive("resend_buffer_frames", resend_buffer_frames));
  if (backoff_max_ms < backoff_base_ms) {
    return Status::InvalidArgument(
        "NetConfig: backoff_max_ms (" + std::to_string(backoff_max_ms) +
        ") must be >= backoff_base_ms (" + std::to_string(backoff_base_ms) +
        ")");
  }
  return Status::Ok();
}

Result<NetConfig> NetConfig::FromEnv(NetConfig base) {
  bool present = false;
  PIVOT_RETURN_IF_ERROR(
      EnvInt("PIVOT_NET_RECV_TIMEOUT_MS", &base.recv_timeout_ms, &present));
  int reliable = base.reliable ? 1 : 0;
  PIVOT_RETURN_IF_ERROR(EnvInt("PIVOT_NET_RELIABLE", &reliable, &present));
  if (present) base.reliable = reliable != 0;
  PIVOT_RETURN_IF_ERROR(
      EnvInt("PIVOT_NET_RETRY_BUDGET", &base.retry_budget, &present));
  PIVOT_RETURN_IF_ERROR(
      EnvInt("PIVOT_NET_BACKOFF_BASE_MS", &base.backoff_base_ms, &present));
  PIVOT_RETURN_IF_ERROR(
      EnvInt("PIVOT_NET_BACKOFF_MAX_MS", &base.backoff_max_ms, &present));
  PIVOT_RETURN_IF_ERROR(
      EnvInt("PIVOT_NET_RESEND_FRAMES", &base.resend_buffer_frames, &present));
  PIVOT_RETURN_IF_ERROR(base.Validate());
  return base;
}

Result<NetConfig> NetConfig::FromEnv() { return FromEnv(NetConfig()); }

void MessageQueue::Push(Bytes msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

Result<Bytes> MessageQueue::Pop(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [this] { return poisoned_ || !queue_.empty(); })) {
    return Status::ProtocolError("receive timed out");
  }
  // Poison wins over queued data: once the mesh is aborting, stale
  // messages must not be consumed as progress.
  if (poisoned_) return poison_status_;
  Bytes msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

bool MessageQueue::TryPop(Bytes* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_ || queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void MessageQueue::Poison(const Status& status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
    poison_status_ = status;
  }
  cv_.notify_all();
}

size_t MessageQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

InMemoryNetwork::InMemoryNetwork(int num_parties, NetConfig config,
                                 NetworkSim sim)
    : num_parties_(num_parties), config_(config), sim_(sim) {
  PIVOT_CHECK_MSG(num_parties >= 1, "network needs at least one party");
  const int n = num_parties * num_parties;
  queues_.reserve(n);
  ctrl_queues_.reserve(n);
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<MessageQueue>());
    ctrl_queues_.push_back(std::make_unique<MessageQueue>());
  }
  endpoints_.reserve(num_parties);
  for (int i = 0; i < num_parties; ++i) {
    endpoints_.push_back(InMemoryEndpoint(this, i, num_parties));
  }
}

InMemoryNetwork::InMemoryNetwork(int num_parties, int recv_timeout_ms,
                                 NetworkSim sim)
    : InMemoryNetwork(
          num_parties,
          [recv_timeout_ms] {
            NetConfig c;
            c.recv_timeout_ms = recv_timeout_ms;
            return c;
          }(),
          sim) {}

InMemoryEndpoint& InMemoryNetwork::endpoint(int i) {
  PIVOT_CHECK(i >= 0 && i < num_parties_);
  return endpoints_[i];
}

void InMemoryNetwork::Abort(Status cause, int origin_party) {
  Status recorded;
  {
    std::lock_guard<std::mutex> lock(abort_mu_);
    if (aborted_.load(std::memory_order_relaxed)) return;  // first wins
    abort_status_ = Status::Aborted(
        "protocol aborted by party " + std::to_string(origin_party) + ": " +
        cause.ToString());
    recorded = abort_status_;
    aborted_.store(true, std::memory_order_release);
  }
  abort_cv_.notify_all();
  for (auto& q : queues_) q->Poison(recorded);
  for (auto& q : ctrl_queues_) q->Poison(recorded);
}

Status InMemoryNetwork::abort_status() const {
  std::lock_guard<std::mutex> lock(abort_mu_);
  return abort_status_;
}

bool InMemoryNetwork::WaitForAbortMs(int ms) {
  std::unique_lock<std::mutex> lock(abort_mu_);
  return abort_cv_.wait_for(
      lock, std::chrono::milliseconds(ms),
      [this] { return aborted_.load(std::memory_order_relaxed); });
}

void InMemoryNetwork::set_fault_plan(FaultPlan plan) {
  if (plan.empty()) {
    fault_plan_.reset();
  } else {
    fault_plan_ = std::make_unique<FaultPlan>(std::move(plan));
  }
}

uint64_t InMemoryNetwork::total_bytes() const {
  uint64_t total = 0;
  for (const InMemoryEndpoint& e : endpoints_) total += e.bytes_sent();
  return total;
}

NetworkStats InMemoryNetwork::stats() const {
  NetworkStats s;
  for (const InMemoryEndpoint& e : endpoints_) {
    s.bytes_sent += e.bytes_sent();
    s.bytes_received += e.bytes_received();
    s.messages_sent += e.messages_sent();
    s.messages_received += e.messages_received();
    s.rounds = std::max(s.rounds, e.Rounds());
    s.retransmits += e.retransmits();
    s.duplicates_suppressed += e.duplicates_suppressed();
    s.corrupt_frames += e.corrupt_frames();
    s.nacks_sent += e.nacks_sent();
  }
  return s;
}

Status InMemoryEndpoint::BeginOp() {
  const FaultPlan* plan = net_->fault_plan();
  if (plan != nullptr) {
    const int idx = plan->MatchParty(id(), ops_++);
    if (idx >= 0) {
      const FaultAction& a = plan->actions()[idx];
      net_->MarkFaultFired(idx);
      if (a.kind == FaultKind::kCrash) {
        // Sticky: every network op at or after the trigger fails.
        if (crashed_at_ < 0) crashed_at_ = static_cast<int64_t>(a.nth);
        return Status::ProtocolError(
            "injected fault: party " + std::to_string(id()) +
            " crashed at network op " + std::to_string(crashed_at_));
      }
      // kStall: sleep, but wake immediately if the mesh aborts meanwhile.
      if (a.kind == FaultKind::kStall || a.kind == FaultKind::kDelay) {
        if (net_->WaitForAbortMs(a.delay_ms)) return net_->abort_status();
      }
    }
  }
  if (net_->aborted()) return net_->abort_status();
  return Status::Ok();
}

Status InMemoryEndpoint::Send(int to, Bytes msg) {
  PIVOT_CHECK_MSG(to != id(), "self-send");
  PIVOT_CHECK(to >= 0 && to < num_parties());
  NoteSendPhase();
  PIVOT_RETURN_IF_ERROR(BeginOp());
  if (!net_->config_.reliable) return SendRaw(to, std::move(msg));
  return SendReliable(to, std::move(msg));
}

Status InMemoryEndpoint::SendRaw(int to, Bytes msg) {
  int copies = 1;
  if (const FaultPlan* plan = net_->fault_plan()) {
    const int idx = plan->MatchMessage(id(), to, send_seq_[to]);
    if (idx >= 0) {
      const FaultAction& a = plan->actions()[idx];
      net_->MarkFaultFired(idx);
      switch (a.kind) {
        case FaultKind::kDrop:
          copies = 0;
          break;
        case FaultKind::kDelay:
          if (net_->WaitForAbortMs(a.delay_ms)) return net_->abort_status();
          break;
        case FaultKind::kDuplicate:
          copies = 2;
          break;
        case FaultKind::kTruncate:
          msg.resize(msg.size() / 2);
          break;
        case FaultKind::kCorrupt:
          if (!msg.empty()) {
            const uint64_t bit = a.bit % (msg.size() * 8);
            msg[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
          }
          break;
        case FaultKind::kCrash:
        case FaultKind::kStall:
          break;  // party faults are handled in BeginOp
        case FaultKind::kSever:
        case FaultKind::kMute:
          break;  // connection faults; no-ops on the in-memory mesh
      }
    }
  }
  ++send_seq_[to];
  if (net_->sim_.enabled()) {
    // Sender-side delay: per-message latency + serialization time.
    double micros = net_->sim_.latency_us;
    if (net_->sim_.bandwidth_gbps > 0) {
      micros += static_cast<double>(msg.size()) * 8.0 /
                (net_->sim_.bandwidth_gbps * 1e3);
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(micros)));
  }
  CountSend(msg.size());
  OpCounters::Global().AddBytesSent(msg.size());
  OpCounters::Global().AddMessage();
  for (int c = 0; c < copies; ++c) {
    net_->queue(id(), to).Push(c + 1 < copies ? msg : std::move(msg));
  }
  return Status::Ok();
}

Status InMemoryEndpoint::SendReliable(int to, Bytes msg) {
  // Serve pending retransmission requests before advancing: a peer
  // blocked on an earlier frame must not starve behind new traffic.
  PIVOT_RETURN_IF_ERROR(ServiceControl());
  const uint64_t seq = send_seq_[to]++;
  const size_t payload_size = msg.size();
  Bytes frame = BuildSeqFrame(seq, msg);
  if (net_->sim_.enabled()) {
    // Sender-side delay: per-message latency + serialization time.
    double micros = net_->sim_.latency_us;
    if (net_->sim_.bandwidth_gbps > 0) {
      micros += static_cast<double>(payload_size) * 8.0 /
                (net_->sim_.bandwidth_gbps * 1e3);
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(micros)));
  }
  // Counters track logical payloads only: retransmissions and frame
  // headers are reliability overhead, not protocol communication cost.
  CountSend(payload_size);
  OpCounters::Global().AddBytesSent(payload_size);
  OpCounters::Global().AddMessage();
  // Keep the clean frame for retransmission before faults touch the wire
  // copy; the window is bounded, oldest frame evicted first.
  auto& window = resend_[to];
  window.push_back(ResendEntry{seq, frame});
  if (static_cast<int>(window.size()) > net_->config_.resend_buffer_frames) {
    window.pop_front();
  }
  return PushFrameWithFaults(to, seq, std::move(frame), /*retransmit=*/false);
}

Status InMemoryEndpoint::PushFrameWithFaults(int to, uint64_t seq,
                                             Bytes frame, bool retransmit) {
  int copies = 1;
  if (const FaultPlan* plan = net_->fault_plan()) {
    const int idx = plan->MatchMessage(id(), to, seq, retransmit);
    if (idx >= 0) {
      const FaultAction& a = plan->actions()[idx];
      net_->MarkFaultFired(idx);
      switch (a.kind) {
        case FaultKind::kDrop:
          copies = 0;
          break;
        case FaultKind::kDelay:
          if (net_->WaitForAbortMs(a.delay_ms)) return net_->abort_status();
          break;
        case FaultKind::kDuplicate:
          copies = 2;
          break;
        case FaultKind::kTruncate:
          frame.resize(frame.size() / 2);
          break;
        case FaultKind::kCorrupt: {
          const uint64_t bit = a.bit % (frame.size() * 8);
          frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
          break;
        }
        case FaultKind::kCrash:
        case FaultKind::kStall:
          break;  // party faults are handled in BeginOp
        case FaultKind::kSever:
        case FaultKind::kMute:
          break;  // connection faults; no-ops on the in-memory mesh
      }
    }
  }
  for (int c = 0; c < copies; ++c) {
    net_->queue(id(), to).Push(c + 1 < copies ? frame : std::move(frame));
  }
  return Status::Ok();
}

Status InMemoryEndpoint::ServiceControl() {
  if (net_->aborted()) return net_->abort_status();
  Bytes ctrl;
  for (int p = 0; p < num_parties(); ++p) {
    if (p == id()) continue;
    while (net_->ctrl_queue(p, id()).TryPop(&ctrl)) {
      if (ctrl.size() == kCtrlNackSize && ctrl[0] == kCtrlNack) {
        PIVOT_RETURN_IF_ERROR(HandleNack(p, GetU64Le(ctrl.data() + 1)));
      }
      // Unknown control types are ignored (forward compatibility).
    }
  }
  return Status::Ok();
}

Status InMemoryEndpoint::HandleNack(int peer, uint64_t seq) {
  // A probe for a frame this party has not produced yet: the peer is
  // ahead of us, not missing data. Nothing to do.
  if (seq >= send_seq_[peer]) return Status::Ok();
  for (const ResendEntry& e : resend_[peer]) {
    if (e.seq == seq) {
      CountRetransmit();
      return PushFrameWithFaults(peer, seq, e.frame, /*retransmit=*/true);
    }
  }
  // The frame was sent but has aged out of the bounded window: the loss
  // is unrecoverable, so fail loudly instead of letting the peer starve.
  return Status::ProtocolError(
      "reliable channel: party " + std::to_string(id()) +
      " cannot retransmit frame " + std::to_string(seq) + " to party " +
      std::to_string(peer) + ": evicted from resend buffer (capacity " +
      std::to_string(net_->config_.resend_buffer_frames) + ")");
}

void InMemoryEndpoint::SendNack(int to, uint64_t seq) {
  Bytes ctrl(kCtrlNackSize);
  ctrl[0] = kCtrlNack;
  PutU64Le(ctrl.data() + 1, seq);
  net_->ctrl_queue(id(), to).Push(std::move(ctrl));
  CountNack();
}

Result<Bytes> InMemoryEndpoint::Recv(int from) {
  PIVOT_CHECK_MSG(from != id(), "self-receive");
  PIVOT_CHECK(from >= 0 && from < num_parties());
  NoteRecvPhase();
  PIVOT_RETURN_IF_ERROR(BeginOp());
  if (!net_->config_.reliable) return RecvRaw(from);
  return RecvReliable(from);
}

Result<Bytes> InMemoryEndpoint::RecvRaw(int from) {
  const auto start = std::chrono::steady_clock::now();
  MessageQueue& q = net_->queue(from, id());
  Result<Bytes> r = q.Pop(net_->config_.recv_timeout_ms);
  if (!r.ok()) {
    if (r.status().code() == StatusCode::kAborted) return r.status();
    const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start).count();
    return Status::ProtocolError(
        "receive from party " + std::to_string(from) + " timed out at party " +
        std::to_string(id()) + " after " + std::to_string(elapsed_ms) +
        " ms (" + std::to_string(recv_seq_[from]) +
        " messages previously received on this channel, queue depth " +
        std::to_string(q.depth()) + "; peer missing/deadlock?)");
  }
  ++recv_seq_[from];
  CountRecv(r.value().size());
  return r;
}

Result<Bytes> InMemoryEndpoint::RecvReliable(int from) {
  const NetConfig& cfg = net_->config_;
  MessageQueue& q = net_->queue(from, id());
  const auto start = std::chrono::steady_clock::now();
  const uint64_t expected = recv_seq_[from];
  auto& stash = reorder_[from];
  const auto deliver = [&](Bytes payload) -> Result<Bytes> {
    ++recv_seq_[from];
    CountRecv(payload.size());
    return payload;
  };
  // A retransmission triggered by an earlier gap may already be waiting.
  {
    const auto it = stash.find(expected);
    if (it != stash.end()) {
      Bytes payload = std::move(it->second);
      stash.erase(it);
      return deliver(std::move(payload));
    }
  }
  // Recovery loop, bounded two ways: evidence-backed NACKs (a damaged
  // frame or a sequence gap) draw on cfg.retry_budget, and the overall
  // cfg.recv_timeout_ms deadline covers a silent peer. Probe NACKs sent
  // on silent slices are free — silence usually means the sender is
  // still computing, and charging for it would abort healthy slow runs.
  int evidence = 0;
  int backoff_ms = cfg.backoff_base_ms;
  for (;;) {
    PIVOT_RETURN_IF_ERROR(ServiceControl());
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed_ms >= cfg.recv_timeout_ms) {
      return Status::ProtocolError(
          "receive from party " + std::to_string(from) +
          " timed out at party " + std::to_string(id()) + " after " +
          std::to_string(elapsed_ms) + " ms (" +
          std::to_string(recv_seq_[from]) +
          " messages previously received on this channel, queue depth " +
          std::to_string(q.depth()) + "; peer missing/deadlock?)");
    }
    const int slice = static_cast<int>(std::min<int64_t>(
        backoff_ms, cfg.recv_timeout_ms - elapsed_ms));
    Result<Bytes> r = q.Pop(slice > 0 ? slice : 1);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kAborted) return r.status();
      // Silent slice: probe for the expected frame (covers a dropped
      // frame with no follow-up traffic) and back off deterministically.
      SendNack(from, expected);
      backoff_ms = std::min(backoff_ms * 2, cfg.backoff_max_ms);
      continue;
    }
    backoff_ms = cfg.backoff_base_ms;  // channel is live again
    uint64_t seq = 0;
    Bytes payload;
    if (!ParseSeqFrame(r.value(), &seq, &payload)) {
      // Corrupted or truncated frame; its header cannot be trusted, so
      // re-request the expected frame.
      CountCorruptFrame();
      if (++evidence > cfg.retry_budget) {
        return Status::ProtocolError(
            "retry budget exhausted receiving from party " +
            std::to_string(from) + " at party " + std::to_string(id()) +
            ": " + std::to_string(evidence) +
            " loss events (damaged or missing frames) exceeded the budget "
            "of " +
            std::to_string(cfg.retry_budget) + " retransmission attempts");
      }
      SendNack(from, expected);
      continue;
    }
    if (seq < expected) {
      // Duplicate of an already-delivered frame (duplicate fault or a
      // redundant retransmission).
      CountDuplicate();
      continue;
    }
    if (seq > expected) {
      // Future frame: the expected one was lost in transit. Stash it and
      // request the gap.
      const bool inserted = stash.emplace(seq, std::move(payload)).second;
      if (!inserted) {
        CountDuplicate();
        continue;
      }
      if (++evidence > cfg.retry_budget) {
        return Status::ProtocolError(
            "retry budget exhausted receiving from party " +
            std::to_string(from) + " at party " + std::to_string(id()) +
            ": " + std::to_string(evidence) +
            " loss events (damaged or missing frames) exceeded the budget "
            "of " +
            std::to_string(cfg.retry_budget) + " retransmission attempts");
      }
      SendNack(from, expected);
      continue;
    }
    return deliver(std::move(payload));
  }
}

Status RunParties(InMemoryNetwork& net,
                  const std::function<Status(int, Endpoint&)>& body) {
  const int m = net.num_parties();
  std::vector<Status> statuses(m);
  std::vector<std::thread> threads;
  threads.reserve(m);
  for (int i = 0; i < m; ++i) {
    threads.emplace_back([&, i] {
      Status st = body(i, net.endpoint(i));
      // Abort the mesh before this thread exits so peers blocked in Recv
      // wake immediately instead of waiting out the recv timeout. Abort
      // echoes (kAborted) are not re-propagated: they are effects, not
      // causes.
      if (!st.ok() && st.code() != StatusCode::kAborted) net.Abort(st, i);
      statuses[i] = std::move(st);
    });
  }
  for (std::thread& t : threads) t.join();
  // Prefer the root cause over abort echoes.
  for (int i = 0; i < m; ++i) {
    if (!statuses[i].ok() && statuses[i].code() != StatusCode::kAborted) {
      return Status(statuses[i].code(), "party " + std::to_string(i) + ": " +
                                            statuses[i].message());
    }
  }
  for (int i = 0; i < m; ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(), "party " + std::to_string(i) + ": " +
                                            statuses[i].message());
    }
  }
  return Status::Ok();
}

}  // namespace pivot
