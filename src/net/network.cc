#include "net/network.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/op_counters.h"

namespace pivot {

void MessageQueue::Push(Bytes msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

Result<Bytes> MessageQueue::Pop(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [this] { return poisoned_ || !queue_.empty(); })) {
    return Status::ProtocolError("receive timed out");
  }
  // Poison wins over queued data: once the mesh is aborting, stale
  // messages must not be consumed as progress.
  if (poisoned_) return poison_status_;
  Bytes msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

void MessageQueue::Poison(const Status& status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
    poison_status_ = status;
  }
  cv_.notify_all();
}

size_t MessageQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

InMemoryNetwork::InMemoryNetwork(int num_parties, int recv_timeout_ms,
                                 NetworkSim sim)
    : num_parties_(num_parties), recv_timeout_ms_(recv_timeout_ms), sim_(sim) {
  PIVOT_CHECK_MSG(num_parties >= 1, "network needs at least one party");
  queues_.reserve(static_cast<size_t>(num_parties) * num_parties);
  for (int i = 0; i < num_parties * num_parties; ++i) {
    queues_.push_back(std::make_unique<MessageQueue>());
  }
  endpoints_.reserve(num_parties);
  for (int i = 0; i < num_parties; ++i) {
    endpoints_.push_back(Endpoint(this, i, num_parties));
  }
}

Endpoint& InMemoryNetwork::endpoint(int i) {
  PIVOT_CHECK(i >= 0 && i < num_parties_);
  return endpoints_[i];
}

void InMemoryNetwork::Abort(Status cause, int origin_party) {
  Status recorded;
  {
    std::lock_guard<std::mutex> lock(abort_mu_);
    if (aborted_.load(std::memory_order_relaxed)) return;  // first wins
    abort_status_ = Status::Aborted(
        "protocol aborted by party " + std::to_string(origin_party) + ": " +
        cause.ToString());
    recorded = abort_status_;
    aborted_.store(true, std::memory_order_release);
  }
  abort_cv_.notify_all();
  for (auto& q : queues_) q->Poison(recorded);
}

Status InMemoryNetwork::abort_status() const {
  std::lock_guard<std::mutex> lock(abort_mu_);
  return abort_status_;
}

bool InMemoryNetwork::WaitForAbortMs(int ms) {
  std::unique_lock<std::mutex> lock(abort_mu_);
  return abort_cv_.wait_for(
      lock, std::chrono::milliseconds(ms),
      [this] { return aborted_.load(std::memory_order_relaxed); });
}

void InMemoryNetwork::set_fault_plan(FaultPlan plan) {
  if (plan.empty()) {
    fault_plan_.reset();
  } else {
    fault_plan_ = std::make_unique<FaultPlan>(std::move(plan));
  }
}

uint64_t InMemoryNetwork::total_bytes() const {
  uint64_t total = 0;
  for (const Endpoint& e : endpoints_) total += e.bytes_sent();
  return total;
}

NetworkStats InMemoryNetwork::stats() const {
  NetworkStats s;
  for (const Endpoint& e : endpoints_) {
    s.bytes_sent += e.bytes_sent();
    s.bytes_received += e.bytes_received();
    s.messages_sent += e.messages_sent();
    s.messages_received += e.messages_received();
    s.rounds = std::max(s.rounds, e.Rounds());
  }
  return s;
}

Status Endpoint::BeginOp() {
  const FaultPlan* plan = net_->fault_plan();
  if (plan != nullptr) {
    const int idx = plan->MatchParty(id_, ops_++);
    if (idx >= 0) {
      const FaultAction& a = plan->actions()[idx];
      net_->MarkFaultFired(idx);
      if (a.kind == FaultKind::kCrash) {
        // Sticky: every network op at or after the trigger fails.
        if (crashed_at_ < 0) crashed_at_ = static_cast<int64_t>(a.nth);
        return Status::ProtocolError(
            "injected fault: party " + std::to_string(id_) +
            " crashed at network op " + std::to_string(crashed_at_));
      }
      // kStall: sleep, but wake immediately if the mesh aborts meanwhile.
      if (net_->WaitForAbortMs(a.delay_ms)) return net_->abort_status();
    }
  }
  if (net_->aborted()) return net_->abort_status();
  return Status::Ok();
}

void Endpoint::NoteRecvPhase() {
  if (in_send_phase_) {
    rounds_.fetch_add(1, std::memory_order_relaxed);
    in_send_phase_ = false;
  }
}

Status Endpoint::Send(int to, Bytes msg) {
  PIVOT_CHECK_MSG(to != id_, "self-send");
  PIVOT_CHECK(to >= 0 && to < num_parties_);
  in_send_phase_ = true;
  PIVOT_RETURN_IF_ERROR(BeginOp());
  int copies = 1;
  if (const FaultPlan* plan = net_->fault_plan()) {
    const int idx = plan->MatchMessage(id_, to, send_seq_[to]);
    if (idx >= 0) {
      const FaultAction& a = plan->actions()[idx];
      net_->MarkFaultFired(idx);
      switch (a.kind) {
        case FaultKind::kDrop:
          copies = 0;
          break;
        case FaultKind::kDelay:
          if (net_->WaitForAbortMs(a.delay_ms)) return net_->abort_status();
          break;
        case FaultKind::kDuplicate:
          copies = 2;
          break;
        case FaultKind::kTruncate:
          msg.resize(msg.size() / 2);
          break;
        case FaultKind::kCorrupt:
          if (!msg.empty()) {
            const uint64_t bit = a.bit % (msg.size() * 8);
            msg[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
          }
          break;
        case FaultKind::kCrash:
        case FaultKind::kStall:
          break;  // party faults are handled in BeginOp
      }
    }
  }
  ++send_seq_[to];
  if (net_->sim_.enabled()) {
    // Sender-side delay: per-message latency + serialization time.
    double micros = net_->sim_.latency_us;
    if (net_->sim_.bandwidth_gbps > 0) {
      micros += static_cast<double>(msg.size()) * 8.0 /
                (net_->sim_.bandwidth_gbps * 1e3);
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(micros)));
  }
  bytes_sent_.fetch_add(msg.size(), std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  OpCounters::Global().AddBytesSent(msg.size());
  OpCounters::Global().AddMessage();
  for (int c = 0; c < copies; ++c) {
    net_->queue(id_, to).Push(c + 1 < copies ? msg : std::move(msg));
  }
  return Status::Ok();
}

Result<Bytes> Endpoint::Recv(int from) {
  PIVOT_CHECK_MSG(from != id_, "self-receive");
  PIVOT_CHECK(from >= 0 && from < num_parties_);
  NoteRecvPhase();
  PIVOT_RETURN_IF_ERROR(BeginOp());
  const auto start = std::chrono::steady_clock::now();
  MessageQueue& q = net_->queue(from, id_);
  Result<Bytes> r = q.Pop(net_->recv_timeout_ms_);
  if (!r.ok()) {
    if (r.status().code() == StatusCode::kAborted) return r.status();
    const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start).count();
    return Status::ProtocolError(
        "receive from party " + std::to_string(from) + " timed out at party " +
        std::to_string(id_) + " after " + std::to_string(elapsed_ms) +
        " ms (" + std::to_string(recv_seq_[from]) +
        " messages previously received on this channel, queue depth " +
        std::to_string(q.depth()) + "; peer missing/deadlock?)");
  }
  ++recv_seq_[from];
  bytes_received_.fetch_add(r.value().size(), std::memory_order_relaxed);
  messages_received_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

Status Endpoint::Broadcast(const Bytes& msg) {
  for (int to = 0; to < num_parties_; ++to) {
    if (to != id_) PIVOT_RETURN_IF_ERROR(Send(to, msg));
  }
  return Status::Ok();
}

Result<std::vector<Bytes>> Endpoint::GatherAll(Bytes own) {
  std::vector<Bytes> out(num_parties_);
  out[id_] = std::move(own);
  for (int from = 0; from < num_parties_; ++from) {
    if (from == id_) continue;
    Result<Bytes> r = Recv(from);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kAborted) return r.status();
      return Status(r.status().code(), "GatherAll at party " +
                                           std::to_string(id_) + ": " +
                                           r.status().message());
    }
    out[from] = std::move(r).value();
  }
  return out;
}

Status RunParties(InMemoryNetwork& net,
                  const std::function<Status(int, Endpoint&)>& body) {
  const int m = net.num_parties();
  std::vector<Status> statuses(m);
  std::vector<std::thread> threads;
  threads.reserve(m);
  for (int i = 0; i < m; ++i) {
    threads.emplace_back([&, i] {
      Status st = body(i, net.endpoint(i));
      // Abort the mesh before this thread exits so peers blocked in Recv
      // wake immediately instead of waiting out the recv timeout. Abort
      // echoes (kAborted) are not re-propagated: they are effects, not
      // causes.
      if (!st.ok() && st.code() != StatusCode::kAborted) net.Abort(st, i);
      statuses[i] = std::move(st);
    });
  }
  for (std::thread& t : threads) t.join();
  // Prefer the root cause over abort echoes.
  for (int i = 0; i < m; ++i) {
    if (!statuses[i].ok() && statuses[i].code() != StatusCode::kAborted) {
      return Status(statuses[i].code(), "party " + std::to_string(i) + ": " +
                                            statuses[i].message());
    }
  }
  for (int i = 0; i < m; ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(), "party " + std::to_string(i) + ": " +
                                            statuses[i].message());
    }
  }
  return Status::Ok();
}

}  // namespace pivot
