#include "net/codec.h"

#include "common/check.h"

namespace pivot {

void EncodeBigInt(const BigInt& v, ByteWriter& w) {
  w.WriteU8(v.IsNegative() ? 1 : 0);
  w.WriteBytes(v.ToBytes());
}

Result<BigInt> DecodeBigInt(ByteReader& r) {
  PIVOT_ASSIGN_OR_RETURN(uint8_t sign, r.ReadU8());
  if (sign > 1) return Status::ProtocolError("invalid BigInt sign byte");
  PIVOT_ASSIGN_OR_RETURN(Bytes mag, r.ReadBytes());
  BigInt v = BigInt::FromBytes(mag);
  return sign ? -v : v;
}

Bytes EncodeBigIntVector(const std::vector<BigInt>& values) {
  ByteWriter w;
  w.WriteU64(values.size());
  for (const BigInt& v : values) EncodeBigInt(v, w);
  return w.Take();
}

Result<std::vector<BigInt>> DecodeBigIntVector(const Bytes& data) {
  ByteReader r(data);
  PIVOT_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  if (count > data.size()) {  // cheap sanity bound: >= 1 byte per entry
    return Status::ProtocolError("implausible BigInt vector length");
  }
  std::vector<BigInt> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PIVOT_ASSIGN_OR_RETURN(BigInt v, DecodeBigInt(r));
    out.push_back(std::move(v));
  }
  return out;
}

Bytes EncodeCiphertextVector(const std::vector<Ciphertext>& values) {
  ByteWriter w;
  w.WriteU64(values.size());
  for (const Ciphertext& c : values) EncodeBigInt(c.value, w);
  return w.Take();
}

Result<std::vector<Ciphertext>> DecodeCiphertextVector(const Bytes& data) {
  PIVOT_ASSIGN_OR_RETURN(std::vector<BigInt> raw, DecodeBigIntVector(data));
  std::vector<Ciphertext> out;
  out.reserve(raw.size());
  for (BigInt& v : raw) out.push_back(Ciphertext{std::move(v)});
  return out;
}

Bytes EncodeCiphertextMatrix(uint64_t rows, uint64_t cols,
                             const std::vector<Ciphertext>& flat) {
  PIVOT_CHECK_MSG(flat.size() == rows * cols, "ciphertext matrix shape");
  ByteWriter w;
  w.WriteU64(rows);
  w.WriteU64(cols);
  for (const Ciphertext& c : flat) EncodeBigInt(c.value, w);
  return w.Take();
}

Result<CiphertextMatrix> DecodeCiphertextMatrix(const Bytes& data) {
  ByteReader r(data);
  CiphertextMatrix m;
  PIVOT_ASSIGN_OR_RETURN(m.rows, r.ReadU64());
  PIVOT_ASSIGN_OR_RETURN(m.cols, r.ReadU64());
  // Divide instead of multiply: `rows * cols` can wrap for hostile
  // dimensions near 2^64 and slip past the >= 1 byte/entry bound.
  if (m.rows > data.size() ||
      (m.cols != 0 && m.rows > data.size() / m.cols)) {
    return Status::ProtocolError("implausible ciphertext matrix shape");
  }
  const uint64_t count = m.rows * m.cols;
  m.flat.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PIVOT_ASSIGN_OR_RETURN(BigInt v, DecodeBigInt(r));
    m.flat.push_back(Ciphertext{std::move(v)});
  }
  return m;
}

void EncodeU128(u128 v, ByteWriter& w) {
  w.WriteU64(static_cast<uint64_t>(v));
  w.WriteU64(static_cast<uint64_t>(v >> 64));
}

Result<u128> DecodeU128(ByteReader& r) {
  PIVOT_ASSIGN_OR_RETURN(uint64_t lo, r.ReadU64());
  PIVOT_ASSIGN_OR_RETURN(uint64_t hi, r.ReadU64());
  return (static_cast<u128>(hi) << 64) | lo;
}

Bytes EncodeU128Vector(const std::vector<u128>& values) {
  ByteWriter w;
  w.WriteU64(values.size());
  for (u128 v : values) EncodeU128(v, w);
  return w.Take();
}

Result<std::vector<u128>> DecodeU128Vector(const Bytes& data) {
  ByteReader r(data);
  PIVOT_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  // Divide instead of multiply: `count * 16` can wrap for a hostile
  // length prefix near 2^64 and slip past the bound.
  if (count > (data.size() - 8) / 16) {
    return Status::ProtocolError("implausible u128 vector length");
  }
  std::vector<u128> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PIVOT_ASSIGN_OR_RETURN(u128 v, DecodeU128(r));
    out.push_back(v);
  }
  return out;
}

}  // namespace pivot
