#include "net/endpoint.h"

#include <string>
#include <utility>

namespace pivot {

Status Endpoint::Broadcast(const Bytes& msg) {
  for (int to = 0; to < num_parties_; ++to) {
    if (to != id_) PIVOT_RETURN_IF_ERROR(Send(to, msg));
  }
  return Status::Ok();
}

Result<std::vector<Bytes>> Endpoint::GatherAll(Bytes own) {
  std::vector<Bytes> out(num_parties_);
  out[id_] = std::move(own);
  for (int from = 0; from < num_parties_; ++from) {
    if (from == id_) continue;
    Result<Bytes> r = Recv(from);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kAborted) return r.status();
      return Status(r.status().code(), "GatherAll at party " +
                                           std::to_string(id_) + ": " +
                                           r.status().message());
    }
    out[from] = std::move(r).value();
  }
  return out;
}

}  // namespace pivot
