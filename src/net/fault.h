#ifndef PIVOT_NET_FAULT_H_
#define PIVOT_NET_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pivot {

// Deterministic fault injection for the in-process party mesh.
//
// A FaultPlan is a small list of scheduled faults, each keyed on a
// *logical* position — the Nth message sent on a directed channel, or the
// Nth network operation a party performs — so a plan reproduces the exact
// same failure regardless of thread interleaving. Plans are installed on
// an InMemoryNetwork before the party threads start and consulted from
// Endpoint::Send/Recv; when no plan is installed the hot path costs one
// pointer null-check.
//
// The chaos test suite (tests/chaos_test.cc) derives plans from a 64-bit
// seed via FaultPlan::FromSeed and sweeps hundreds of seeds. Fatal-only
// schedules must terminate promptly with a clean error Status; transient
// schedules must be fully masked by the reliable channel layer (the run
// completes and the trained model bit-matches the fault-free run). To
// reproduce a failing schedule, re-run with the printed seed.
//
// ## Schedule grammar
//
// A plan serializes (FaultPlan::ToString) to `fault *("; " fault)` where
//
//   fault := kind " party=" P [" peer=" Q] (" nth=" N | " op=" N)
//            [" delay_ms=" D] [" bit=" B] " class=" ("transient"|"fatal")
//
//   kind       one of drop | delay | duplicate | truncate | corrupt |
//              sever | mute (message/connection faults, keyed `nth=` on
//              the directed channel party->peer, peer=-1 meaning any
//              receiver) or crash | stall (party faults, keyed `op=` on
//              the party's network-operation counter; crash is sticky
//              from op on).
//   class      transient faults model recoverable conditions: the
//              reliable channel masks message-level ones (retransmit /
//              duplicate-suppress / checksum+NACK) and checkpoint/resume
//              masks a transient crash. fatal faults persist: they are
//              re-applied to every retransmission (and a fatal crash
//              re-fires after restart), so they exhaust the retry budget
//              and surface as an abort.
//
// Classification per kind:
//   drop / truncate / corrupt  transient or fatal (fatal => re-applied
//                              to retransmissions until budget runs out)
//   delay / stall              transient uses a short delay (1..20 ms);
//                              fatal uses `fatal_ms`, chosen above the
//                              recv timeout so it behaves like a hang
//   duplicate                  always transient — duplicate suppression
//                              masks it unconditionally
//   crash                      transient => masked by checkpoint/resume
//                              (FederationConfig::max_restarts); fatal
//                              => permanent party loss, aborts the run
//   sever / mute               connection faults, socket backend only
//                              (the in-memory mesh has no connections to
//                              cut, so it treats them as no-ops). sever
//                              closes the TCP/Unix connection at the nth
//                              outbound frame: transient => the
//                              supervisor reconnects and NACK recovery
//                              resumes the channel; fatal => reconnects
//                              are refused until the retry budget is
//                              exhausted and the run aborts. mute
//                              suppresses all outbound traffic
//                              (heartbeats included) for delay_ms,
//                              modelling a hung connection: the peer's
//                              supervisor detects the missed heartbeats
//                              and severs/reconnects.

enum class FaultKind {
  kDrop,       // message silently not delivered
  kDelay,      // message delivery delayed by delay_ms (abort-interruptible)
  kDuplicate,  // message delivered twice
  kTruncate,   // message body cut to half its length
  kCorrupt,    // one bit of the message body flipped
  kCrash,      // party's network ops all fail from the trigger point on
  kStall,      // party sleeps delay_ms at the trigger point (interruptible)
  kSever,      // socket backend: connection closed at the nth outbound frame
  kMute,       // socket backend: outbound (incl. heartbeats) suppressed
               // for delay_ms — models a hung connection
};

const char* FaultKindName(FaultKind kind);

// Which fault classes FromSeed may draw. kCrashRecovery produces exactly
// one transient crash (plus up to two transient message faults) so the
// checkpoint/resume path is exercised in isolation.
enum class FaultMix {
  kAny,            // transient and fatal mixed at random
  kTransientOnly,  // every fault maskable; run must complete + bit-match
  kFatalOnly,      // every fault unmaskable; run must abort cleanly
  kCrashRecovery,  // one transient crash + 0-2 transient message faults
};

struct FaultAction {
  FaultKind kind = FaultKind::kDrop;
  int party = 0;       // sender (message faults) or the faulting party
  int peer = -1;       // receiver for message faults; -1 = any receiver
  uint64_t nth = 0;    // message index on the channel, or party op index
  int delay_ms = 0;    // kDelay / kStall
  uint64_t bit = 0;    // kCorrupt: bit index (mod message bit-length)
  // Fatal faults persist across recovery attempts: they are re-applied to
  // retransmitted frames and (for kCrash) re-fire after a party restart.
  // Transient faults hit the original transmission only. Declared last so
  // pre-existing brace-initializers keep their meaning.
  bool fatal = false;

  bool is_message_fault() const {
    return kind != FaultKind::kCrash && kind != FaultKind::kStall;
  }
  std::string ToString() const;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  void Add(FaultAction action) { actions_.push_back(action); }
  bool empty() const { return actions_.empty(); }
  const std::vector<FaultAction>& actions() const { return actions_; }

  // Index of a message fault matching the nth message from->to, or -1.
  // With `retransmit` set the lookup is for a retransmitted frame: only
  // fatal faults match, so a transient fault hits the first transmission
  // and the retransmission goes through clean.
  int MatchMessage(int from, int to, uint64_t nth,
                   bool retransmit = false) const;
  // Index of a party fault (crash/stall) matching party's op-th network
  // operation, or -1. Crash matches at and after its trigger op.
  int MatchParty(int party, uint64_t op) const;

  std::string ToString() const;

  // Plan for a recovery attempt after a party restart: keeps every fatal
  // action plus any transient action that has not yet fired (bit
  // `index & 63` of `fired_mask`, as reported by
  // InMemoryNetwork::fired_fault_mask). A transient crash that already
  // fired must not crash the restarted party again.
  FaultPlan WithoutFiredTransient(uint64_t fired_mask) const;

  // Derives a deterministic plan from a seed: one anchor fault at a low
  // index plus up to two extra message faults, with classes drawn per
  // `mix`. Fatal delays and stalls use `fatal_ms`, chosen by the caller
  // to exceed the network's recv timeout so a delayed message reliably
  // surfaces as a peer timeout instead of silently succeeding; transient
  // ones sleep 1..20 ms.
  static FaultPlan FromSeed(uint64_t seed, int num_parties, int fatal_ms,
                            uint64_t max_op = 40, uint64_t max_msg = 12,
                            FaultMix mix = FaultMix::kAny);

 private:
  std::vector<FaultAction> actions_;
};

}  // namespace pivot

#endif  // PIVOT_NET_FAULT_H_
