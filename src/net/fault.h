#ifndef PIVOT_NET_FAULT_H_
#define PIVOT_NET_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pivot {

// Deterministic fault injection for the in-process party mesh.
//
// A FaultPlan is a small list of scheduled faults, each keyed on a
// *logical* position — the Nth message sent on a directed channel, or the
// Nth network operation a party performs — so a plan reproduces the exact
// same failure regardless of thread interleaving. Plans are installed on
// an InMemoryNetwork before the party threads start and consulted from
// Endpoint::Send/Recv; when no plan is installed the hot path costs one
// pointer null-check.
//
// The chaos test suite (tests/chaos_test.cc) derives plans from a 64-bit
// seed via FaultPlan::FromSeed and sweeps hundreds of seeds, asserting
// that every schedule terminates promptly with a clean error Status. To
// reproduce a failing schedule, re-run with the printed seed.

enum class FaultKind {
  kDrop,       // message silently not delivered
  kDelay,      // message delivery delayed by delay_ms (abort-interruptible)
  kDuplicate,  // message delivered twice
  kTruncate,   // message body cut to half its length
  kCorrupt,    // one bit of the message body flipped
  kCrash,      // party's network ops all fail from the trigger point on
  kStall,      // party sleeps delay_ms at the trigger point (interruptible)
};

const char* FaultKindName(FaultKind kind);

struct FaultAction {
  FaultKind kind = FaultKind::kDrop;
  int party = 0;       // sender (message faults) or the faulting party
  int peer = -1;       // receiver for message faults; -1 = any receiver
  uint64_t nth = 0;    // message index on the channel, or party op index
  int delay_ms = 0;    // kDelay / kStall
  uint64_t bit = 0;    // kCorrupt: bit index (mod message bit-length)

  bool is_message_fault() const {
    return kind != FaultKind::kCrash && kind != FaultKind::kStall;
  }
  std::string ToString() const;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  void Add(FaultAction action) { actions_.push_back(action); }
  bool empty() const { return actions_.empty(); }
  const std::vector<FaultAction>& actions() const { return actions_; }

  // Index of a message fault matching the nth message from->to, or -1.
  int MatchMessage(int from, int to, uint64_t nth) const;
  // Index of a party fault (crash/stall) matching party's op-th network
  // operation, or -1. Crash matches at and after its trigger op.
  int MatchParty(int party, uint64_t op) const;

  std::string ToString() const;

  // Derives a deterministic plan from a seed: one anchor fault of any
  // kind at a low index plus up to two extra message faults. Delays and
  // stalls use `fatal_ms`, chosen by the caller to exceed the network's
  // recv timeout so a delayed message reliably surfaces as a peer
  // timeout instead of silently succeeding.
  static FaultPlan FromSeed(uint64_t seed, int num_parties, int fatal_ms,
                            uint64_t max_op = 40, uint64_t max_msg = 12);

 private:
  std::vector<FaultAction> actions_;
};

}  // namespace pivot

#endif  // PIVOT_NET_FAULT_H_
