#ifndef PIVOT_NET_NETWORK_H_
#define PIVOT_NET_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/fault.h"

namespace pivot {

// In-process multi-party message fabric.
//
// The paper runs its m clients on a LAN cluster connected through libscapi
// sockets; this reproduction runs the same SPMD protocol code with each
// party on its own thread, connected through an in-memory mesh of FIFO
// channels (see DESIGN.md, substitution table). Per-endpoint byte and
// message counters preserve the communication-cost measurements that the
// evaluation reports.
//
// Usage: construct one `InMemoryNetwork` for the party group, hand
// `endpoint(i)` to party i's thread, and exchange length-delimited byte
// messages. Receives block until the peer's message arrives, with a
// generous timeout so protocol bugs surface as errors instead of hangs.
//
// Fault tolerance (DESIGN.md, "Fault model"): the mesh implements
// security-with-abort. The first party whose protocol body fails calls
// InMemoryNetwork::Abort, which poisons every queue so peers blocked in
// Recv/GatherAll wake immediately with a kAborted Status naming the
// originating party, instead of waiting out the recv timeout. A
// deterministic FaultPlan (net/fault.h) can be installed before the party
// threads start to inject message/party faults for chaos testing.

// One directed FIFO byte-message queue with blocking receive.
class MessageQueue {
 public:
  void Push(Bytes msg);
  // Blocks until a message is available, the queue is poisoned, or the
  // timeout elapses. A pending poison wins over queued data: once the
  // mesh is aborting, stale messages must not be consumed as progress.
  Result<Bytes> Pop(int timeout_ms);

  // Wakes all blocked Pop calls with `status` and fails future ones.
  void Poison(const Status& status);

  size_t depth() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Bytes> queue_;
  bool poisoned_ = false;
  Status poison_status_;
};

// Optional emulation of the paper's LAN testbed: a fixed per-message
// latency plus a serialization delay proportional to message size. With
// the defaults (all zero) messages are delivered instantly; the efficiency
// benches enable it so that communication-bound cost shapes (Figures 4-5)
// match the paper's environment.
struct NetworkSim {
  int latency_us = 0;          // one-way per-message latency
  double bandwidth_gbps = 0.0; // 0 = infinite bandwidth

  bool enabled() const { return latency_us > 0 || bandwidth_gbps > 0; }
};

// Aggregate traffic snapshot across all endpoints of a network.
struct NetworkStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t rounds = 0;  // max per-party round estimate (send->recv flips)
};

class InMemoryNetwork;

// Party-local view of the network. Thread-compatible: owned and used by a
// single party thread.
class Endpoint {
 public:
  int id() const { return id_; }
  int num_parties() const { return num_parties_; }

  // Point-to-point send (to != id()). Fails once the mesh has aborted or
  // an injected fault has crashed this party, so send-only loops also
  // terminate promptly.
  [[nodiscard]] Status Send(int to, Bytes msg);
  // Blocking receive of the next message from `from`. Timeout errors name
  // the channel (sender, receiver, elapsed ms, queue depth); abort errors
  // name the originating party.
  Result<Bytes> Recv(int from);

  // Sends `msg` to every other party.
  [[nodiscard]] Status Broadcast(const Bytes& msg);
  // Receives one message from every other party; slot id() holds `own`.
  Result<std::vector<Bytes>> GatherAll(Bytes own);

  // Cumulative traffic through this endpoint. Atomic: the counters are
  // incremented by the owning party thread but read by the harness
  // thread (progress reporting, InMemoryNetwork::stats) while party
  // threads may still be running.
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  uint64_t messages_received() const {
    return messages_received_.load(std::memory_order_relaxed);
  }
  // Round estimate: number of send-phase -> recv-phase transitions this
  // party performed. On the in-process mesh this approximates the
  // sequential communication rounds a socket deployment would pay
  // latency for.
  uint64_t Rounds() const { return rounds_.load(std::memory_order_relaxed); }

  // Endpoints live in InMemoryNetwork's vector; atomics are not movable,
  // so moves (vector growth during construction) copy the counter values.
  // Safe: endpoints are only moved before any party thread starts.
  Endpoint(Endpoint&& other) noexcept
      : net_(other.net_),
        id_(other.id_),
        num_parties_(other.num_parties_),
        send_seq_(std::move(other.send_seq_)),
        recv_seq_(std::move(other.recv_seq_)),
        ops_(other.ops_),
        crashed_at_(other.crashed_at_),
        in_send_phase_(other.in_send_phase_),
        bytes_sent_(other.bytes_sent_.load(std::memory_order_relaxed)),
        messages_sent_(other.messages_sent_.load(std::memory_order_relaxed)),
        bytes_received_(
            other.bytes_received_.load(std::memory_order_relaxed)),
        messages_received_(
            other.messages_received_.load(std::memory_order_relaxed)),
        rounds_(other.rounds_.load(std::memory_order_relaxed)) {}

 private:
  friend class InMemoryNetwork;
  Endpoint(InMemoryNetwork* net, int id, int num_parties)
      : net_(net),
        id_(id),
        num_parties_(num_parties),
        send_seq_(num_parties, 0),
        recv_seq_(num_parties, 0) {}

  // Common prologue of Send/Recv: fires party faults (crash/stall) from
  // the installed FaultPlan and fails fast once the mesh has aborted.
  Status BeginOp();
  void NoteRecvPhase();

  InMemoryNetwork* net_;
  int id_;
  int num_parties_;
  // Per-channel logical message indices and the party-local op counter
  // that fault schedules key on. Plain members: touched only by the
  // owning party thread.
  std::vector<uint64_t> send_seq_;
  std::vector<uint64_t> recv_seq_;
  uint64_t ops_ = 0;
  int64_t crashed_at_ = -1;
  bool in_send_phase_ = false;
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> messages_received_{0};
  std::atomic<uint64_t> rounds_{0};
};

class InMemoryNetwork {
 public:
  explicit InMemoryNetwork(int num_parties, int recv_timeout_ms = 120'000,
                           NetworkSim sim = NetworkSim());

  InMemoryNetwork(const InMemoryNetwork&) = delete;
  InMemoryNetwork& operator=(const InMemoryNetwork&) = delete;

  int num_parties() const { return num_parties_; }
  Endpoint& endpoint(int i);

  // Network-wide abort (security-with-abort): records `cause` as coming
  // from `origin_party` and poisons every queue so all blocked receives
  // wake immediately. First caller wins; later calls are no-ops.
  void Abort(Status cause, int origin_party);
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  // The recorded abort status (kAborted naming the origin), or OK.
  Status abort_status() const;
  // Sleeps up to `ms`, waking early if the mesh aborts. Returns true if
  // an abort interrupted (or preceded) the wait. Used for injected
  // delays/stalls so simulated latency cannot outlive an abort.
  bool WaitForAbortMs(int ms);

  // Installs a fault-injection plan. Must be called before party threads
  // start; ignored (kept empty) when `plan` has no actions.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan* fault_plan() const { return fault_plan_.get(); }
  // Bitmask over plan action indices that fired at least once.
  uint64_t fired_fault_mask() const {
    return fired_.load(std::memory_order_relaxed);
  }

  // Total bytes sent across all endpoints.
  uint64_t total_bytes() const;
  // Aggregate traffic counters; rounds is the per-party maximum.
  NetworkStats stats() const;

 private:
  friend class Endpoint;
  MessageQueue& queue(int from, int to) {
    return *queues_[static_cast<size_t>(from) * num_parties_ + to];
  }
  void MarkFaultFired(int action_index) {
    fired_.fetch_or(uint64_t{1} << (action_index & 63),
                    std::memory_order_relaxed);
  }

  int num_parties_;
  int recv_timeout_ms_;
  NetworkSim sim_;
  std::vector<std::unique_ptr<MessageQueue>> queues_;  // [from * m + to]
  std::vector<Endpoint> endpoints_;
  std::unique_ptr<FaultPlan> fault_plan_;

  std::atomic<bool> aborted_{false};
  std::atomic<uint64_t> fired_{0};
  mutable std::mutex abort_mu_;
  std::condition_variable abort_cv_;
  Status abort_status_;
};

// Runs `body(party_id, endpoint)` on one thread per party and joins them.
// The first party to fail aborts the mesh so peers exit promptly instead
// of timing out. Returns the root-cause status when one exists (the first
// non-OK, non-kAborted status by party id), otherwise the first abort
// echo, each prefixed with the failing party's id.
Status RunParties(InMemoryNetwork& net,
                  const std::function<Status(int, Endpoint&)>& body);

}  // namespace pivot

#endif  // PIVOT_NET_NETWORK_H_
