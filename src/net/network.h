#ifndef PIVOT_NET_NETWORK_H_
#define PIVOT_NET_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace pivot {

// In-process multi-party message fabric.
//
// The paper runs its m clients on a LAN cluster connected through libscapi
// sockets; this reproduction runs the same SPMD protocol code with each
// party on its own thread, connected through an in-memory mesh of FIFO
// channels (see DESIGN.md, substitution table). Per-endpoint byte and
// message counters preserve the communication-cost measurements that the
// evaluation reports.
//
// Usage: construct one `InMemoryNetwork` for the party group, hand
// `endpoint(i)` to party i's thread, and exchange length-delimited byte
// messages. Receives block until the peer's message arrives, with a
// generous timeout so protocol bugs surface as errors instead of hangs.

// One directed FIFO byte-message queue with blocking receive.
class MessageQueue {
 public:
  void Push(Bytes msg);
  // Blocks until a message is available or the timeout elapses.
  Result<Bytes> Pop(int timeout_ms);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Bytes> queue_;
};

// Optional emulation of the paper's LAN testbed: a fixed per-message
// latency plus a serialization delay proportional to message size. With
// the defaults (all zero) messages are delivered instantly; the efficiency
// benches enable it so that communication-bound cost shapes (Figures 4-5)
// match the paper's environment.
struct NetworkSim {
  int latency_us = 0;          // one-way per-message latency
  double bandwidth_gbps = 0.0; // 0 = infinite bandwidth

  bool enabled() const { return latency_us > 0 || bandwidth_gbps > 0; }
};

class InMemoryNetwork;

// Party-local view of the network. Thread-compatible: owned and used by a
// single party thread.
class Endpoint {
 public:
  int id() const { return id_; }
  int num_parties() const { return num_parties_; }

  // Point-to-point send (to != id()).
  void Send(int to, Bytes msg);
  // Blocking receive of the next message from `from`.
  Result<Bytes> Recv(int from);

  // Sends `msg` to every other party.
  void Broadcast(const Bytes& msg);
  // Receives one message from every other party; slot id() holds `own`.
  Result<std::vector<Bytes>> GatherAll(Bytes own);

  // Cumulative traffic outbound from this endpoint. Atomic: the counters
  // are incremented by the owning party thread but read by the harness
  // thread (progress reporting, InMemoryNetwork::total_bytes) while party
  // threads may still be running.
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }

  // Endpoints live in InMemoryNetwork's vector; atomics are not movable,
  // so moves (vector growth during construction) copy the counter values.
  // Safe: endpoints are only moved before any party thread starts.
  Endpoint(Endpoint&& other) noexcept
      : net_(other.net_),
        id_(other.id_),
        num_parties_(other.num_parties_),
        bytes_sent_(other.bytes_sent_.load(std::memory_order_relaxed)),
        messages_sent_(other.messages_sent_.load(std::memory_order_relaxed)) {}

 private:
  friend class InMemoryNetwork;
  Endpoint(InMemoryNetwork* net, int id, int num_parties)
      : net_(net), id_(id), num_parties_(num_parties) {}

  InMemoryNetwork* net_;
  int id_;
  int num_parties_;
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> messages_sent_{0};
};

class InMemoryNetwork {
 public:
  explicit InMemoryNetwork(int num_parties, int recv_timeout_ms = 120'000,
                           NetworkSim sim = NetworkSim());

  InMemoryNetwork(const InMemoryNetwork&) = delete;
  InMemoryNetwork& operator=(const InMemoryNetwork&) = delete;

  int num_parties() const { return num_parties_; }
  Endpoint& endpoint(int i);

  // Total bytes sent across all endpoints.
  uint64_t total_bytes() const;

 private:
  friend class Endpoint;
  MessageQueue& queue(int from, int to) {
    return *queues_[static_cast<size_t>(from) * num_parties_ + to];
  }

  int num_parties_;
  int recv_timeout_ms_;
  NetworkSim sim_;
  std::vector<std::unique_ptr<MessageQueue>> queues_;  // [from * m + to]
  std::vector<Endpoint> endpoints_;
};

// Runs `body(party_id, endpoint)` on one thread per party and joins them.
// Returns the first non-OK status (by party id) if any party failed.
Status RunParties(InMemoryNetwork& net,
                  const std::function<Status(int, Endpoint&)>& body);

}  // namespace pivot

#endif  // PIVOT_NET_NETWORK_H_
