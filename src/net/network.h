#ifndef PIVOT_NET_NETWORK_H_
#define PIVOT_NET_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/endpoint.h"
#include "net/fault.h"

namespace pivot {

// In-process multi-party message fabric.
//
// The paper runs its m clients on a LAN cluster connected through libscapi
// sockets; this reproduction runs the same SPMD protocol code against the
// Endpoint abstraction (net/endpoint.h) over one of two backends. This
// file is the in-memory one: each party on its own thread, connected
// through an in-memory mesh of FIFO channels (see DESIGN.md, substitution
// table). Per-endpoint byte and message counters preserve the
// communication-cost measurements that the evaluation reports. The
// socket backend (net/socket.h) runs one party per process over real
// file descriptors.
//
// Usage: construct one `InMemoryNetwork` for the party group, hand
// `endpoint(i)` to party i's thread, and exchange length-delimited byte
// messages. Receives block until the peer's message arrives, with a
// generous timeout so protocol bugs surface as errors instead of hangs.
//
// Reliable channels (DESIGN.md, "Fault model"): by default every logical
// message travels inside a frame carrying a per-channel sequence number
// and a CRC32 over the whole frame (net/wire.h). The receiver suppresses
// duplicates, detects corruption/truncation, and NACKs missing or damaged
// frames over a separate control mesh; the sender retransmits from a
// bounded per-channel resend buffer. Transient faults (net/fault.h) are
// therefore masked transparently; only a persistent fault — one that
// damages every retransmission, or an evicted resend frame — escalates to
// an error and from there to the security-with-abort path below.
// NetConfig sets the recv timeout, retry budget, backoff shape, and
// resend-buffer capacity; `reliable = false` restores the raw unframed
// channel for tests that need faults to hit the application payload
// directly.
//
// Fault tolerance: the mesh implements security-with-abort. The first
// party whose protocol body fails calls InMemoryNetwork::Abort, which
// poisons every queue so peers blocked in Recv/GatherAll wake immediately
// with a kAborted Status naming the originating party, instead of waiting
// out the recv timeout. A deterministic FaultPlan (net/fault.h) can be
// installed before the party threads start to inject message/party faults
// for chaos testing.

// Tunables of the reliable channel layer. Every field can be overridden
// from the environment via FromEnv, so a failing chaos schedule can be
// replayed with, say, a tighter retry budget without recompiling.
struct NetConfig {
  // Overall deadline for one blocking Recv. This is the last line of
  // defence: a peer that is computing (not lost) can stay silent for a
  // long time without burning retry budget, so the deadline has to cover
  // the slowest legitimate gap between messages.
  int recv_timeout_ms = 120'000;
  // Frame + retransmit layer on/off. Off = PR-2 raw channels: faults hit
  // the application payload and surface as protocol errors.
  bool reliable = true;
  // Maximum number of recovery attempts per blocking Recv that are backed
  // by *evidence of loss* (a damaged frame or a sequence gap). Probe
  // NACKs sent on silent slices do not count: silence usually means the
  // peer is slow, not that the channel ate a frame. Exhaustion fails the
  // Recv with a ProtocolError, which escalates to an abort.
  int retry_budget = 8;
  // Deterministic exponential backoff between receive slices: the wait
  // doubles from base to max while the channel stays silent and resets
  // whenever a frame arrives.
  int backoff_base_ms = 10;
  int backoff_max_ms = 1'000;
  // Frames kept per directed channel for retransmission. A NACK for a
  // frame older than this window is unrecoverable and aborts the run.
  int resend_buffer_frames = 64;

  // Returns `base` (default-constructed in the no-arg form) with any of
  // PIVOT_NET_RECV_TIMEOUT_MS, PIVOT_NET_RELIABLE, PIVOT_NET_RETRY_BUDGET,
  // PIVOT_NET_BACKOFF_BASE_MS, PIVOT_NET_BACKOFF_MAX_MS,
  // PIVOT_NET_RESEND_FRAMES applied on top. An unparsable value (not an
  // integer, or trailing junk) or a non-positive timeout/budget/capacity
  // fails with InvalidArgument naming the offending variable: a typo'd
  // override must stop the run, not silently fall back to defaults.
  static Result<NetConfig> FromEnv(NetConfig base);
  static Result<NetConfig> FromEnv();
  // Validates the field ranges of an already-built config (FromEnv calls
  // this; programmatic configs can too).
  [[nodiscard]] Status Validate() const;
};

// One directed FIFO byte-message queue with blocking receive.
class MessageQueue {
 public:
  void Push(Bytes msg);
  // Blocks until a message is available, the queue is poisoned, or the
  // timeout elapses. A pending poison wins over queued data: once the
  // mesh is aborting, stale messages must not be consumed as progress.
  Result<Bytes> Pop(int timeout_ms);
  // Non-blocking variant for the control mesh: dequeues into `out` and
  // returns true when a message is available. Returns false on an empty
  // or poisoned queue — control traffic is advisory, so once the mesh is
  // aborting it is simply dropped.
  bool TryPop(Bytes* out);

  // Wakes all blocked Pop calls with `status` and fails future ones.
  void Poison(const Status& status);

  size_t depth() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Bytes> queue_;
  bool poisoned_ = false;
  Status poison_status_;
};

// Optional emulation of the paper's LAN testbed: a fixed per-message
// latency plus a serialization delay proportional to message size. With
// the defaults (all zero) messages are delivered instantly; the efficiency
// benches enable it so that communication-bound cost shapes (Figures 4-5)
// match the paper's environment. In-memory backend only: the socket
// backend pays real wire latency.
struct NetworkSim {
  int latency_us = 0;          // one-way per-message latency
  double bandwidth_gbps = 0.0; // 0 = infinite bandwidth

  bool enabled() const { return latency_us > 0 || bandwidth_gbps > 0; }
};

// Aggregate traffic snapshot across all endpoints of a network. Byte and
// message counts are *logical* (application payloads, not frame headers
// or retransmissions) so the paper's communication-cost accounting is
// unaffected by the reliability layer; the reliability counters report
// the recovery work separately.
struct NetworkStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t rounds = 0;  // max per-party round estimate (send->recv flips)
  uint64_t retransmits = 0;            // frames resent on NACK
  uint64_t duplicates_suppressed = 0;  // frames below the expected seq
  uint64_t corrupt_frames = 0;         // CRC/length check failures
  uint64_t nacks_sent = 0;             // probes + evidence-backed NACKs
  uint64_t reconnects = 0;   // socket backend: successful re-dials
  uint64_t heartbeats = 0;   // socket backend: heartbeat frames sent
};

class InMemoryNetwork;

// In-memory implementation of the Endpoint abstraction: Send pushes into
// the mesh's FIFO queues, Recv pops with the reliable-channel recovery
// loop on top. Thread-compatible: owned and used by a single party
// thread.
class InMemoryEndpoint : public Endpoint {
 public:
  [[nodiscard]] Status Send(int to, Bytes msg) override;
  Result<Bytes> Recv(int from) override;

  // Endpoints live in InMemoryNetwork's vector; atomics are not movable,
  // so moves (vector growth during construction) copy the counter values.
  // Safe: endpoints are only moved before any party thread starts.
  InMemoryEndpoint(InMemoryEndpoint&& other) noexcept
      : Endpoint(other.id(), other.num_parties()),
        net_(other.net_),
        send_seq_(std::move(other.send_seq_)),
        recv_seq_(std::move(other.recv_seq_)),
        resend_(std::move(other.resend_)),
        reorder_(std::move(other.reorder_)),
        ops_(other.ops_),
        crashed_at_(other.crashed_at_) {
    CopyCountersFrom(other);
  }

 private:
  friend class InMemoryNetwork;
  InMemoryEndpoint(InMemoryNetwork* net, int id, int num_parties)
      : Endpoint(id, num_parties),
        net_(net),
        send_seq_(num_parties, 0),
        recv_seq_(num_parties, 0),
        resend_(num_parties),
        reorder_(num_parties) {}

  // A frame kept for retransmission: the clean framed bytes of logical
  // message `seq` on one directed channel.
  struct ResendEntry {
    uint64_t seq = 0;
    Bytes frame;
  };

  // Common prologue of Send/Recv: fires party faults (crash/stall) from
  // the installed FaultPlan and fails fast once the mesh has aborted.
  Status BeginOp();

  // Raw (unreliable) channel bodies, used when !NetConfig::reliable.
  Status SendRaw(int to, Bytes msg);
  Result<Bytes> RecvRaw(int from);
  // Reliable channel bodies.
  Status SendReliable(int to, Bytes msg);
  Result<Bytes> RecvReliable(int from);
  // Drains pending NACKs from every peer's control queue and retransmits
  // the requested frames. Called from Send and from each Recv slice so a
  // party blocked in its own Recv still serves its peers.
  Status ServiceControl();
  Status HandleNack(int peer, uint64_t seq);
  void SendNack(int to, uint64_t seq);
  // Applies any scheduled message fault for (id -> to, seq) to the wire
  // copy `frame` and pushes the surviving copies. `retransmit` restricts
  // matching to fatal faults.
  Status PushFrameWithFaults(int to, uint64_t seq, Bytes frame,
                             bool retransmit);

  InMemoryNetwork* net_;
  // Per-channel logical message indices and the party-local op counter
  // that fault schedules key on. Plain members: touched only by the
  // owning party thread.
  std::vector<uint64_t> send_seq_;
  std::vector<uint64_t> recv_seq_;
  // Per-peer bounded resend window (clean frames, ascending seq) and
  // receiver-side reorder stash (payloads arrived ahead of the expected
  // sequence number). Plain members: only the owning party thread
  // touches them.
  std::vector<std::deque<ResendEntry>> resend_;
  std::vector<std::map<uint64_t, Bytes>> reorder_;
  uint64_t ops_ = 0;
  int64_t crashed_at_ = -1;
};

class InMemoryNetwork {
 public:
  explicit InMemoryNetwork(int num_parties, NetConfig config = NetConfig(),
                           NetworkSim sim = NetworkSim());
  // Legacy convenience: reliable channels with an explicit recv timeout.
  InMemoryNetwork(int num_parties, int recv_timeout_ms,
                  NetworkSim sim = NetworkSim());

  InMemoryNetwork(const InMemoryNetwork&) = delete;
  InMemoryNetwork& operator=(const InMemoryNetwork&) = delete;

  int num_parties() const { return num_parties_; }
  const NetConfig& config() const { return config_; }
  InMemoryEndpoint& endpoint(int i);

  // Network-wide abort (security-with-abort): records `cause` as coming
  // from `origin_party` and poisons every queue so all blocked receives
  // wake immediately. First caller wins; later calls are no-ops.
  void Abort(Status cause, int origin_party);
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  // The recorded abort status (kAborted naming the origin), or OK.
  Status abort_status() const;
  // Sleeps up to `ms`, waking early if the mesh aborts. Returns true if
  // an abort interrupted (or preceded) the wait. Used for injected
  // delays/stalls so simulated latency cannot outlive an abort.
  bool WaitForAbortMs(int ms);

  // Installs a fault-injection plan. Must be called before party threads
  // start; ignored (kept empty) when `plan` has no actions.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan* fault_plan() const { return fault_plan_.get(); }
  // Bitmask over plan action indices that fired at least once.
  uint64_t fired_fault_mask() const {
    return fired_.load(std::memory_order_relaxed);
  }

  // Total bytes sent across all endpoints.
  uint64_t total_bytes() const;
  // Aggregate traffic counters; rounds is the per-party maximum.
  NetworkStats stats() const;

 private:
  friend class InMemoryEndpoint;
  MessageQueue& queue(int from, int to) {
    return *queues_[static_cast<size_t>(from) * num_parties_ + to];
  }
  // Control channel carrying NACK frames from -> to, kept separate from
  // the data mesh so retransmission requests cannot interleave with (or
  // be faulted like) protocol payloads.
  MessageQueue& ctrl_queue(int from, int to) {
    return *ctrl_queues_[static_cast<size_t>(from) * num_parties_ + to];
  }
  void MarkFaultFired(int action_index) {
    fired_.fetch_or(uint64_t{1} << (action_index & 63),
                    std::memory_order_relaxed);
  }

  int num_parties_;
  NetConfig config_;
  NetworkSim sim_;
  std::vector<std::unique_ptr<MessageQueue>> queues_;       // [from * m + to]
  std::vector<std::unique_ptr<MessageQueue>> ctrl_queues_;  // [from * m + to]
  std::vector<InMemoryEndpoint> endpoints_;
  std::unique_ptr<FaultPlan> fault_plan_;

  std::atomic<bool> aborted_{false};
  std::atomic<uint64_t> fired_{0};
  mutable std::mutex abort_mu_;
  std::condition_variable abort_cv_;
  Status abort_status_;
};

// Runs `body(party_id, endpoint)` on one thread per party and joins them.
// The first party to fail aborts the mesh so peers exit promptly instead
// of timing out. Returns the root-cause status when one exists (the first
// non-OK, non-kAborted status by party id), otherwise the first abort
// echo, each prefixed with the failing party's id.
Status RunParties(InMemoryNetwork& net,
                  const std::function<Status(int, Endpoint&)>& body);

}  // namespace pivot

#endif  // PIVOT_NET_NETWORK_H_
