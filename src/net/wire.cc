#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"

namespace pivot {

namespace {
constexpr size_t kSeqCrcOffset = 13;
}  // namespace

void PutU64Le(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t GetU64Le(const uint8_t* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(in[i]) << (8 * i);
  return v;
}

void PutU32Le(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32Le(const uint8_t* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[i]) << (8 * i);
  return v;
}

Bytes BuildSeqFrame(uint64_t seq, const Bytes& payload) {
  Bytes frame(kSeqFrameHeader + payload.size());
  PutU64Le(frame.data(), seq);
  frame[8] = 0;
  PutU32Le(frame.data() + 9, static_cast<uint32_t>(payload.size()));
  PutU32Le(frame.data() + kSeqCrcOffset, 0);
  std::copy(payload.begin(), payload.end(), frame.begin() + kSeqFrameHeader);
  PutU32Le(frame.data() + kSeqCrcOffset, Crc32(frame.data(), frame.size()));
  return frame;
}

bool ParseSeqFrame(const Bytes& frame, uint64_t* seq, Bytes* payload) {
  if (frame.size() < kSeqFrameHeader) return false;
  const uint32_t payload_len = GetU32Le(frame.data() + 9);
  if (frame.size() != kSeqFrameHeader + payload_len) return false;
  const uint32_t stored_crc = GetU32Le(frame.data() + kSeqCrcOffset);
  const uint8_t zeros[4] = {0, 0, 0, 0};
  uint32_t crc = Crc32Update(0, frame.data(), kSeqCrcOffset);
  crc = Crc32Update(crc, zeros, 4);
  crc = Crc32Update(crc, frame.data() + kSeqCrcOffset + 4,
                    frame.size() - kSeqCrcOffset - 4);
  if (crc != stored_crc) return false;
  *seq = GetU64Le(frame.data());
  payload->assign(frame.begin() + kSeqFrameHeader, frame.end());
  return true;
}

Bytes EncodeStreamFrame(StreamFrameType type, const Bytes& body) {
  Bytes frame(kStreamHeaderBytes + body.size());
  PutU32Le(frame.data(), static_cast<uint32_t>(1 + body.size()));
  frame[4] = static_cast<uint8_t>(type);
  std::copy(body.begin(), body.end(), frame.begin() + kStreamHeaderBytes);
  return frame;
}

Status StreamFrameReader::Feed(const uint8_t* data, size_t n,
                               std::vector<StreamFrame>* out) {
  size_t pos = 0;
  while (pos < n) {
    if (body_expected_ == 0) {
      // Accumulate the 5-byte header; it may arrive in any number of
      // pieces across reads.
      const size_t want = kStreamHeaderBytes - header_fill_;
      const size_t take = std::min(want, n - pos);
      std::memcpy(header_ + header_fill_, data + pos, take);
      header_fill_ += take;
      pos += take;
      if (header_fill_ < kStreamHeaderBytes) return Status::Ok();
      const uint32_t length = GetU32Le(header_);
      // Length covers the type byte, so zero means a headerless frame —
      // malformed by construction. The upper bound is checked *here*,
      // before the payload buffer is allocated.
      if (length == 0) {
        return Status::ProtocolError("stream frame with zero length");
      }
      if (static_cast<uint64_t>(length) - 1 > max_frame_bytes_) {
        return Status::ProtocolError(
            "stream frame length " + std::to_string(length - 1) +
            " exceeds the " + std::to_string(max_frame_bytes_) +
            "-byte limit (corrupt or hostile length prefix)");
      }
      pending_.type = header_[4];
      pending_.body.clear();
      pending_.body.reserve(length - 1);
      body_expected_ = length - 1;
      header_fill_ = 0;
      if (body_expected_ == 0) {
        out->push_back(std::move(pending_));
        pending_ = StreamFrame{};
        continue;
      }
    }
    const size_t take = std::min(body_expected_, n - pos);
    pending_.body.insert(pending_.body.end(), data + pos, data + pos + take);
    pos += take;
    body_expected_ -= take;
    if (body_expected_ == 0) {
      out->push_back(std::move(pending_));
      pending_ = StreamFrame{};
    }
  }
  return Status::Ok();
}

Bytes EncodeHello(const HelloFrame& hello) {
  ByteWriter w;
  w.WriteU32(kHandshakeMagic);
  w.WriteU32(hello.version);
  w.WriteI64(hello.party_id);
  w.WriteI64(hello.num_parties);
  w.WriteU64(hello.incarnation);
  return w.Take();
}

Result<HelloFrame> DecodeHello(const Bytes& body) {
  ByteReader r(body);
  PIVOT_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kHandshakeMagic) {
    return Status::ProtocolError("handshake magic mismatch (not a pivot "
                                 "party endpoint?)");
  }
  HelloFrame hello;
  PIVOT_ASSIGN_OR_RETURN(hello.version, r.ReadU32());
  PIVOT_ASSIGN_OR_RETURN(int64_t party, r.ReadI64());
  PIVOT_ASSIGN_OR_RETURN(int64_t parties, r.ReadI64());
  PIVOT_ASSIGN_OR_RETURN(hello.incarnation, r.ReadU64());
  if (!r.AtEnd()) return Status::ProtocolError("trailing bytes in handshake");
  if (party < 0 || parties < 1 || party >= parties ||
      parties > (1 << 20)) {
    return Status::ProtocolError("handshake with implausible party ids");
  }
  hello.party_id = static_cast<int32_t>(party);
  hello.num_parties = static_cast<int32_t>(parties);
  return hello;
}

Bytes EncodeNackBody(uint64_t seq) {
  Bytes body(8);
  PutU64Le(body.data(), seq);
  return body;
}

Result<uint64_t> DecodeNackBody(const Bytes& body) {
  if (body.size() != 8) return Status::ProtocolError("malformed NACK body");
  return GetU64Le(body.data());
}

Bytes EncodeHeartbeatBody(uint64_t counter) {
  Bytes body(8);
  PutU64Le(body.data(), counter);
  return body;
}

Bytes EncodeAbortBody(const AbortFrame& abort) {
  ByteWriter w;
  w.WriteI64(abort.origin_party);
  w.WriteU8(static_cast<uint8_t>(abort.code));
  w.WriteString(abort.message);
  return w.Take();
}

Result<AbortFrame> DecodeAbortBody(const Bytes& body) {
  ByteReader r(body);
  AbortFrame abort;
  PIVOT_ASSIGN_OR_RETURN(int64_t origin, r.ReadI64());
  abort.origin_party = static_cast<int32_t>(origin);
  PIVOT_ASSIGN_OR_RETURN(uint8_t code, r.ReadU8());
  if (code > static_cast<uint8_t>(StatusCode::kAborted)) {
    return Status::ProtocolError("abort frame with unknown status code");
  }
  abort.code = static_cast<StatusCode>(code);
  PIVOT_ASSIGN_OR_RETURN(abort.message, r.ReadString());
  if (!r.AtEnd()) {
    return Status::ProtocolError("trailing bytes in abort frame");
  }
  return abort;
}

}  // namespace pivot
