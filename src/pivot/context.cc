#include "pivot/context.h"

#include <thread>

#include "common/check.h"
#include "common/fixed_point.h"
#include "net/codec.h"
#include "tree/splits.h"

namespace pivot {

namespace {
// Upper bound on a share-conversion batch communicated over the wire.
// The header is the one length field not implicitly validated by the
// codec's payload-length checks, so a corrupted or desynchronized value
// could otherwise drive huge allocations and per-element encryptions.
constexpr uint64_t kMaxConversionBatch = uint64_t{1} << 20;
}  // namespace

Status EncodeBatchHeader(uint64_t batch, ByteWriter& w) {
  if (batch > kMaxConversionBatch) {
    return Status::InvalidArgument("conversion batch too large");
  }
  // Redundant encoding: value + complement. A single flipped bit (or a
  // message of the wrong type consumed as a header) fails the check
  // instead of being trusted as a length.
  w.WriteU64(batch);
  w.WriteU64(~batch);
  return Status::Ok();
}

Result<uint64_t> DecodeBatchHeader(const Bytes& msg) {
  ByteReader r(msg);
  PIVOT_ASSIGN_OR_RETURN(uint64_t b, r.ReadU64());
  PIVOT_ASSIGN_OR_RETURN(uint64_t check, r.ReadU64());
  if (msg.size() != 16 || check != ~b || b > kMaxConversionBatch) {
    return Status::ProtocolError(
        "conversion batch header corrupt or implausible");
  }
  return b;
}

PartyContext::PartyContext(int party_id, int super_client_id,
                           Endpoint* endpoint, const PaillierPublicKey& pk,
                           PartialKey partial_key, VerticalView view,
                           std::vector<double> labels,
                           const PivotParams& params)
    : endpoint_(endpoint),
      super_client_id_(super_client_id),
      pk_(pk),
      partial_key_(std::move(partial_key)),
      view_(std::move(view)),
      labels_(std::move(labels)),
      params_(params),
      rng_(params.run_seed * 1000003 + party_id) {
  PIVOT_CHECK(endpoint_->id() == party_id);
  prep_ = std::make_unique<Preprocessing>(party_id, endpoint_->num_parties(),
                                          params.prep_seed);
  engine_ = std::make_unique<MpcEngine>(endpoint_, prep_.get(),
                                        params.run_seed ^ 0xABCD, params.mpc);

  // Candidate thresholds and left-branch indicator vectors for every local
  // feature, fixed once from the full columns (Section 4.1: v_l / v_r).
  const size_t n = view_.features.size();
  const size_t d_local = view_.num_features();
  split_candidates_.resize(d_local);
  left_indicators_.resize(d_local);
  for (size_t j = 0; j < d_local; ++j) {
    std::vector<double> column(n);
    for (size_t t = 0; t < n; ++t) column[t] = view_.features[t][j];
    split_candidates_[j] =
        ComputeSplitCandidates(column, params.tree.max_splits);
    left_indicators_[j].resize(split_candidates_[j].size());
    for (size_t s = 0; s < split_candidates_[j].size(); ++s) {
      left_indicators_[j][s].resize(n);
      for (size_t t = 0; t < n; ++t) {
        left_indicators_[j][s][t] = column[t] <= split_candidates_[j][s];
      }
    }
  }
}

Status PartyContext::BroadcastCiphertexts(const std::vector<Ciphertext>& cts) {
  return endpoint_->Broadcast(EncodeCiphertextVector(cts));
}

Result<std::vector<Ciphertext>> PartyContext::RecvCiphertexts(int from) {
  PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(from));
  return DecodeCiphertextVector(msg);
}

Result<std::vector<BigInt>> PartyContext::JointDecrypt(
    const std::vector<Ciphertext>& cts, int holder) {
  const int m = num_parties();
  // 1. Holder broadcasts the ciphertexts.
  std::vector<Ciphertext> work = cts;
  if (m > 1) {
    if (id() == holder) {
      PIVOT_RETURN_IF_ERROR(BroadcastCiphertexts(cts));
    } else {
      PIVOT_ASSIGN_OR_RETURN(work, RecvCiphertexts(holder));
    }
  }
  // 2. Every party computes partial decryptions; non-holders send theirs
  //    to the holder. Partial decryptions of a batch are independent, so
  //    they parallelize across decryption_threads (the "-PP" variants).
  std::vector<BigInt> partials(work.size());
  const int threads = std::max(1, params_.decryption_threads);
  if (threads == 1 || work.size() < 8) {
    for (size_t i = 0; i < work.size(); ++i) {
      partials[i] = PartialDecrypt(pk_, partial_key_, work[i]).value;
    }
  } else {
    std::vector<std::thread> pool;
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        for (size_t i = w; i < work.size(); i += threads) {
          partials[i] = PartialDecrypt(pk_, partial_key_, work[i]).value;
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  if (id() != holder) {
    PIVOT_RETURN_IF_ERROR(
        endpoint_->Send(holder, EncodeBigIntVector(partials)));
    // 4. Receive combined plaintexts.
    PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(holder));
    return DecodeBigIntVector(msg);
  }
  // 3. Holder combines all partials.
  std::vector<std::vector<BigInt>> all(m);
  all[holder] = std::move(partials);
  for (int p = 0; p < m; ++p) {
    if (p == holder) continue;
    PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(p));
    PIVOT_ASSIGN_OR_RETURN(all[p], DecodeBigIntVector(msg));
    if (all[p].size() != work.size()) {
      return Status::ProtocolError("partial decryption count mismatch");
    }
  }
  std::vector<BigInt> plain(work.size());
  std::vector<Status> worker_status(threads);
  // (w, step): worker w combines indices w, w+step, ... — step is 1 on the
  // sequential path and `threads` on the pooled path.
  auto combine_range = [&](int w, int step) {
    for (size_t i = w; i < work.size(); i += step) {
      std::vector<PartialDecryption> parts;
      parts.reserve(m);
      for (int p = 0; p < m; ++p) parts.push_back({p, all[p][i]});
      Result<BigInt> x = CombinePartialDecryptions(pk_, parts, m);
      if (!x.ok()) {
        worker_status[w] = x.status();
        return;
      }
      plain[i] = std::move(x).value();
    }
  };
  if (threads == 1 || work.size() < 8) {
    combine_range(0, 1);
    PIVOT_RETURN_IF_ERROR(worker_status[0]);
  } else {
    std::vector<std::thread> pool;
    for (int w = 0; w < threads; ++w) pool.emplace_back(combine_range, w, threads);
    for (std::thread& t : pool) t.join();
    for (const Status& st : worker_status) PIVOT_RETURN_IF_ERROR(st);
  }
  if (m > 1) {
    PIVOT_RETURN_IF_ERROR(endpoint_->Broadcast(EncodeBigIntVector(plain)));
  }
  return plain;
}

Result<std::vector<u128>> PartyContext::CiphertextsToShares(
    const std::vector<Ciphertext>& cts, int holder) {
  const int m = num_parties();
  const size_t count = id() == holder ? cts.size() : 0;

  // Every party samples masks r_i in Z_p and sends their encryptions to
  // the holder (Algorithm 2, lines 1-3). Non-holders learn the batch size
  // from the holder first.
  size_t batch = count;
  if (m > 1) {
    if (id() == holder) {
      ByteWriter w;
      PIVOT_RETURN_IF_ERROR(EncodeBatchHeader(batch, w));
      PIVOT_RETURN_IF_ERROR(endpoint_->Broadcast(w.Take()));
    } else {
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(holder));
      PIVOT_ASSIGN_OR_RETURN(uint64_t b, DecodeBatchHeader(msg));
      batch = b;
    }
  }

  std::vector<u128> masks(batch);
  for (u128& v : masks) v = FpRandom(rng_);

  std::vector<Ciphertext> my_encrypted;
  my_encrypted.reserve(batch);
  for (u128 v : masks) {
    my_encrypted.push_back(pk_.Encrypt(FpToBigInt(v), rng_));
  }

  std::vector<Ciphertext> masked;
  if (id() == holder) {
    masked = cts;
    for (size_t i = 0; i < batch; ++i) {
      masked[i] = pk_.Add(masked[i], my_encrypted[i]);
    }
    for (int p = 0; p < m; ++p) {
      if (p == id()) continue;
      PIVOT_ASSIGN_OR_RETURN(std::vector<Ciphertext> theirs,
                             RecvCiphertexts(p));
      if (theirs.size() != batch) {
        return Status::ProtocolError("mask vector size mismatch");
      }
      for (size_t i = 0; i < batch; ++i) {
        masked[i] = pk_.Add(masked[i], theirs[i]);
      }
    }
  } else {
    PIVOT_RETURN_IF_ERROR(
        endpoint_->Send(holder, EncodeCiphertextVector(my_encrypted)));
  }

  // Joint decryption of e = x + sum_i r_i (over the integers: plaintext
  // headroom is checked at keygen).
  PIVOT_ASSIGN_OR_RETURN(std::vector<BigInt> opened,
                         JointDecrypt(masked, holder));
  if (opened.size() != batch) {
    return Status::ProtocolError("conversion batch size mismatch");
  }

  // Shares: holder takes e - r_holder, everyone else -r_i (lines 6-8).
  std::vector<u128> shares(batch);
  for (size_t i = 0; i < batch; ++i) {
    if (id() == holder) {
      shares[i] = FpSub(FpFromBigInt(opened[i]), masks[i]);
    } else {
      shares[i] = FpNeg(masks[i]);
    }
  }
  return shares;
}

Result<std::vector<Ciphertext>> PartyContext::SharesToCiphertexts(
    const std::vector<u128>& shares) {
  std::vector<Ciphertext> mine;
  mine.reserve(shares.size());
  for (u128 s : shares) mine.push_back(pk_.Encrypt(FpToBigInt(s), rng_));

  if (num_parties() == 1) return mine;

  PIVOT_RETURN_IF_ERROR(BroadcastCiphertexts(mine));
  std::vector<Ciphertext> sum = std::move(mine);
  for (int p = 0; p < num_parties(); ++p) {
    if (p == id()) continue;
    PIVOT_ASSIGN_OR_RETURN(std::vector<Ciphertext> theirs, RecvCiphertexts(p));
    if (theirs.size() != sum.size()) {
      return Status::ProtocolError("share ciphertext count mismatch");
    }
    for (size_t i = 0; i < sum.size(); ++i) {
      sum[i] = pk_.Add(sum[i], theirs[i]);
    }
  }
  return sum;
}

i128 PartyContext::PlaintextToSigned(const BigInt& plain) const {
  return FpToSigned(FpFromBigInt(plain));
}

double PartyContext::PlaintextToDouble(const BigInt& plain) const {
  return FixedToDouble(static_cast<int64_t>(PlaintextToSigned(plain)));
}

}  // namespace pivot
