#include "pivot/context.h"

#include "common/check.h"
#include "common/fixed_point.h"
#include "net/codec.h"
#include "tree/splits.h"

namespace pivot {

namespace {
// Upper bound on a share-conversion batch communicated over the wire.
// The header is the one length field not implicitly validated by the
// codec's payload-length checks, so a corrupted or desynchronized value
// could otherwise drive huge allocations and per-element encryptions.
constexpr uint64_t kMaxConversionBatch = uint64_t{1} << 20;
}  // namespace

Status EncodeBatchHeader(uint64_t batch, ByteWriter& w) {
  if (batch > kMaxConversionBatch) {
    return Status::InvalidArgument("conversion batch too large");
  }
  // Redundant encoding: value + complement. A single flipped bit (or a
  // message of the wrong type consumed as a header) fails the check
  // instead of being trusted as a length.
  w.WriteU64(batch);
  w.WriteU64(~batch);
  return Status::Ok();
}

Result<uint64_t> DecodeBatchHeader(const Bytes& msg) {
  ByteReader r(msg);
  PIVOT_ASSIGN_OR_RETURN(uint64_t b, r.ReadU64());
  PIVOT_ASSIGN_OR_RETURN(uint64_t check, r.ReadU64());
  if (msg.size() != 16 || check != ~b || b > kMaxConversionBatch) {
    return Status::ProtocolError(
        "conversion batch header corrupt or implausible");
  }
  return b;
}

PartyContext::PartyContext(int party_id, int super_client_id,
                           Endpoint* endpoint, const PaillierPublicKey& pk,
                           PartialKey partial_key, VerticalView view,
                           std::vector<double> labels,
                           const PivotParams& params)
    : endpoint_(endpoint),
      super_client_id_(super_client_id),
      pk_(pk),
      partial_key_(std::move(partial_key)),
      view_(std::move(view)),
      labels_(std::move(labels)),
      params_(params),
      rng_(params.run_seed * 1000003 + party_id) {
  PIVOT_CHECK(endpoint_->id() == party_id);
  // The pool's stream is independent of rng_ (distinct domain constant);
  // its cursor is checkpointed via RandomnessState.
  enc_pool_ = std::make_unique<EncRandomnessPool>(
      pk_, DeriveStreamSeed(params.run_seed ^ 0x454E4352u /* "ENCR" */,
                            static_cast<uint64_t>(party_id)));
  prep_ = std::make_unique<Preprocessing>(party_id, endpoint_->num_parties(),
                                          params.prep_seed);
  engine_ = std::make_unique<MpcEngine>(endpoint_, prep_.get(),
                                        params.run_seed ^ 0xABCD, params.mpc);

  // Candidate thresholds and left-branch indicator vectors for every local
  // feature, fixed once from the full columns (Section 4.1: v_l / v_r).
  const size_t n = view_.features.size();
  const size_t d_local = view_.num_features();
  split_candidates_.resize(d_local);
  left_indicators_.resize(d_local);
  for (size_t j = 0; j < d_local; ++j) {
    std::vector<double> column(n);
    for (size_t t = 0; t < n; ++t) column[t] = view_.features[t][j];
    split_candidates_[j] =
        ComputeSplitCandidates(column, params.tree.max_splits);
    left_indicators_[j].resize(split_candidates_[j].size());
    for (size_t s = 0; s < split_candidates_[j].size(); ++s) {
      left_indicators_[j][s].resize(n);
      for (size_t t = 0; t < n; ++t) {
        left_indicators_[j][s][t] = column[t] <= split_candidates_[j][s];
      }
    }
  }
}

Status PartyContext::BroadcastCiphertexts(const std::vector<Ciphertext>& cts) {
  return endpoint_->Broadcast(EncodeCiphertextVector(cts));
}

Result<std::vector<Ciphertext>> PartyContext::RecvCiphertexts(int from) {
  PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(from));
  return DecodeCiphertextVector(msg);
}

Result<std::vector<BigInt>> PartyContext::JointDecrypt(
    const std::vector<Ciphertext>& cts, int holder) {
  const int m = num_parties();
  // 1. Holder broadcasts the ciphertexts.
  std::vector<Ciphertext> work = cts;
  if (m > 1) {
    if (id() == holder) {
      PIVOT_RETURN_IF_ERROR(BroadcastCiphertexts(cts));
    } else {
      PIVOT_ASSIGN_OR_RETURN(work, RecvCiphertexts(holder));
    }
  }
  // 2. Every party computes partial decryptions; non-holders send theirs
  //    to the holder. Partial decryptions of a batch are independent, so
  //    they fan out across crypto_threads on the shared pool (the
  //    paper's "-PP" variants).
  PIVOT_ASSIGN_OR_RETURN(
      std::vector<BigInt> partials,
      PartialDecryptBatch(pk_, partial_key_, work, crypto_threads()));
  if (id() != holder) {
    // pivot-taint: allow(raw-send) partial decryptions are the messages
    // threshold decryption publishes by design; any t-1 of them reveal
    // nothing about the plaintext or the key share.
    PIVOT_RETURN_IF_ERROR(
        endpoint_->Send(holder, EncodeBigIntVector(partials)));
    // 4. Receive combined plaintexts.
    PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(holder));
    return DecodeBigIntVector(msg);
  }
  // 3. Holder combines all partials.
  std::vector<std::vector<BigInt>> all(m);
  all[holder] = std::move(partials);
  for (int p = 0; p < m; ++p) {
    if (p == holder) continue;
    PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(p));
    PIVOT_ASSIGN_OR_RETURN(all[p], DecodeBigIntVector(msg));
    if (all[p].size() != work.size()) {
      return Status::ProtocolError("partial decryption count mismatch");
    }
  }
  PIVOT_ASSIGN_OR_RETURN(
      std::vector<BigInt> plain,
      CombinePartialDecryptionsBatch(pk_, all, m, crypto_threads()));
  if (m > 1) {
    PIVOT_RETURN_IF_ERROR(endpoint_->Broadcast(EncodeBigIntVector(plain)));
  }
  return plain;
}

Result<std::vector<u128>> PartyContext::CiphertextsToShares(
    const std::vector<Ciphertext>& cts, int holder) {
  const int m = num_parties();
  const size_t count = id() == holder ? cts.size() : 0;

  // Every party samples masks r_i in Z_p and sends their encryptions to
  // the holder (Algorithm 2, lines 1-3). Non-holders learn the batch size
  // from the holder first.
  size_t batch = count;
  if (m > 1) {
    if (id() == holder) {
      ByteWriter w;
      PIVOT_RETURN_IF_ERROR(EncodeBatchHeader(batch, w));
      PIVOT_RETURN_IF_ERROR(endpoint_->Broadcast(w.Take()));
    } else {
      PIVOT_ASSIGN_OR_RETURN(Bytes msg, endpoint_->Recv(holder));
      PIVOT_ASSIGN_OR_RETURN(uint64_t b, DecodeBatchHeader(msg));
      batch = b;
    }
  }

  std::vector<u128> masks(batch);
  for (u128& v : masks) v = FpRandom(rng_);

  std::vector<BigInt> mask_plain;
  mask_plain.reserve(batch);
  for (u128 v : masks) mask_plain.push_back(FpToBigInt(v));
  PIVOT_ASSIGN_OR_RETURN(std::vector<Ciphertext> my_encrypted,
                         EncryptBatch(mask_plain));

  std::vector<Ciphertext> masked;
  if (id() == holder) {
    masked = cts;
    for (size_t i = 0; i < batch; ++i) {
      masked[i] = pk_.Add(masked[i], my_encrypted[i]);
    }
    for (int p = 0; p < m; ++p) {
      if (p == id()) continue;
      PIVOT_ASSIGN_OR_RETURN(std::vector<Ciphertext> theirs,
                             RecvCiphertexts(p));
      if (theirs.size() != batch) {
        return Status::ProtocolError("mask vector size mismatch");
      }
      for (size_t i = 0; i < batch; ++i) {
        masked[i] = pk_.Add(masked[i], theirs[i]);
      }
    }
  } else {
    PIVOT_RETURN_IF_ERROR(
        endpoint_->Send(holder, EncodeCiphertextVector(my_encrypted)));
  }

  // Joint decryption of e = x + sum_i r_i (over the integers: plaintext
  // headroom is checked at keygen).
  PIVOT_ASSIGN_OR_RETURN(std::vector<BigInt> opened,
                         JointDecrypt(masked, holder));
  if (opened.size() != batch) {
    return Status::ProtocolError("conversion batch size mismatch");
  }

  // Shares: holder takes e - r_holder, everyone else -r_i (lines 6-8).
  std::vector<u128> shares(batch);
  for (size_t i = 0; i < batch; ++i) {
    if (id() == holder) {
      shares[i] = FpSub(FpFromBigInt(opened[i]), masks[i]);
    } else {
      shares[i] = FpNeg(masks[i]);
    }
  }
  return shares;
}

Result<std::vector<Ciphertext>> PartyContext::SharesToCiphertexts(
    const std::vector<u128>& shares) {
  std::vector<BigInt> plain;
  plain.reserve(shares.size());
  for (u128 s : shares) plain.push_back(FpToBigInt(s));
  PIVOT_ASSIGN_OR_RETURN(std::vector<Ciphertext> mine, EncryptBatch(plain));

  if (num_parties() == 1) return mine;

  PIVOT_RETURN_IF_ERROR(BroadcastCiphertexts(mine));
  std::vector<Ciphertext> sum = std::move(mine);
  for (int p = 0; p < num_parties(); ++p) {
    if (p == id()) continue;
    PIVOT_ASSIGN_OR_RETURN(std::vector<Ciphertext> theirs, RecvCiphertexts(p));
    if (theirs.size() != sum.size()) {
      return Status::ProtocolError("share ciphertext count mismatch");
    }
    for (size_t i = 0; i < sum.size(); ++i) {
      sum[i] = pk_.Add(sum[i], theirs[i]);
    }
  }
  return sum;
}

Result<std::vector<Ciphertext>> PartyContext::EncryptBatch(
    const std::vector<BigInt>& plains) {
  // Refill ahead of the drain so the next similarly-sized batch finds its
  // (r, r^n) pairs precomputed; with a single crypto thread there is no
  // idle worker to overlap with, so skip the queue traffic.
  if (crypto_threads() > 1) {
    enc_pool_->PrefillAsync(ThreadPool::Global(), 2 * plains.size());
  }
  return pivot::EncryptBatch(pk_, plains, *enc_pool_, crypto_threads());
}

Result<std::vector<Ciphertext>> PartyContext::RerandomizeBatch(
    const std::vector<Ciphertext>& cts) {
  if (crypto_threads() > 1) {
    enc_pool_->PrefillAsync(ThreadPool::Global(), 2 * cts.size());
  }
  return pivot::RerandomizeBatch(pk_, cts, *enc_pool_, crypto_threads());
}

i128 PartyContext::PlaintextToSigned(const BigInt& plain) const {
  return FpToSigned(FpFromBigInt(plain));
}

double PartyContext::PlaintextToDouble(const BigInt& plain) const {
  return FixedToDouble(static_cast<int64_t>(PlaintextToSigned(plain)));
}

}  // namespace pivot
