#ifndef PIVOT_PIVOT_SECURE_GAIN_H_
#define PIVOT_PIVOT_SECURE_GAIN_H_

#include <vector>

#include "mpc/engine.h"

namespace pivot {

// Secure impurity-gain computation over secret-shared split statistics
// (the MPC computation step of Section 4.1 / 4.2), shared by the Pivot
// trainer and the SPDZ-DT baseline.
//
// Input layout (all additive shares):
//   stats[slot][split]:
//     classification: slot 0/1 = n_l/n_r (integer counts),
//                     slot 2+2k / 3+2k = g_{l,k} / g_{r,k} (counts)
//     regression:     slots = n_l, n_r, S_l, S_r, Q_l, Q_r
//                     (S/Q fixed-point sums of labels / squared labels)
//   agg: node aggregates: {count, g_0..g_{c-1}} or {count, S, Q}.
//
// Output: per-split scores (fixed point) whose secure argmax selects the
// best split; full gain of a split = score - node_term (test against
// min_gain before splitting).
struct SecureGainResult {
  std::vector<u128> scores;
  u128 node_term = 0;
};

Result<SecureGainResult> ComputeSecureGains(
    MpcEngine& eng, const std::vector<std::vector<u128>>& stats,
    const std::vector<u128>& agg, bool regression, int num_classes);

}  // namespace pivot

#endif  // PIVOT_PIVOT_SECURE_GAIN_H_
