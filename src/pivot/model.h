#ifndef PIVOT_PIVOT_MODEL_H_
#define PIVOT_PIVOT_MODEL_H_

#include <vector>

#include "crypto/paillier.h"
#include "mpc/field.h"
#include "pivot/params.h"
#include "tree/tree_model.h"

namespace pivot {

// One node of a federated Pivot tree, as seen by a single party.
//
// What is plaintext vs hidden depends on the protocol:
//  - Basic:    owner, local feature index and threshold are public;
//              leaves carry a public value.
//  - Enhanced: owner and local feature index are public; the threshold and
//              leaf value exist only as this party's additive share
//              (threshold_share / leaf_share), different on every party.
struct PivotNode {
  bool is_leaf = false;

  // Internal nodes: which client owns the split feature, and the feature's
  // local column index at that client. Public in both protocols.
  int owner = -1;
  int feature_local = -1;

  // Basic protocol only: plaintext split threshold / leaf value.
  double threshold = 0.0;
  double leaf_value = 0.0;

  // Enhanced protocol only: this party's share of the fixed-point
  // threshold / leaf value.
  u128 threshold_share = 0;
  u128 leaf_share = 0;

  // Optional (TrainTreeOptions::keep_leaf_masks): the leaf's encrypted
  // sample-mask vector [alpha], used by GBDT to evaluate the tree on the
  // whole training set homomorphically.
  std::vector<Ciphertext> leaf_mask;

  // Enhanced protocol with HidingLevel::kFeature / kClientAndFeature:
  // the node's encrypted one-hot split selector, sliced per client in the
  // public candidate order ([lambda] of Section 5.2, retained so the
  // prediction protocol can select the hidden feature value obliviously).
  // lambda_slices[i] spans client i's candidate splits in the node's
  // selection span; lambda_features[i][k] is the *local feature index* at
  // client i behind slice entry k (public enumeration metadata). Empty
  // when the split feature is public. Not serialized.
  std::vector<std::vector<Ciphertext>> lambda_slices;
  std::vector<std::vector<int>> lambda_features;

  int left = -1;
  int right = -1;
};

// A party-local view of a trained Pivot decision tree. Node 0 is the root.
struct PivotTree {
  Protocol protocol = Protocol::kBasic;
  TreeTask task = TreeTask::kClassification;
  int num_classes = 2;
  std::vector<PivotNode> nodes;

  int AddNode(const PivotNode& n) {
    nodes.push_back(n);
    return static_cast<int>(nodes.size()) - 1;
  }

  int NumInternalNodes() const {
    int count = 0;
    for (const PivotNode& n : nodes) count += n.is_leaf ? 0 : 1;
    return count;
  }
  int NumLeaves() const {
    return static_cast<int>(nodes.size()) - NumInternalNodes();
  }

  // Leaf node ids in left-to-right order (the paper's leaf label vector z).
  std::vector<int> LeafOrder() const {
    std::vector<int> order;
    CollectLeaves(0, order);
    return order;
  }

  // Basic-protocol convenience: evaluates the public tree on a full
  // (merged) feature row, using the global feature indices in
  // `feature_map[owner][feature_local]`. Test/debug helper; real
  // prediction is the distributed protocol in prediction.h.
  double EvaluatePlain(const std::vector<double>& row,
                       const std::vector<std::vector<int>>& feature_map) const;

 private:
  void CollectLeaves(int id, std::vector<int>& order) const {
    if (nodes.empty()) return;
    if (nodes[id].is_leaf) {
      order.push_back(id);
      return;
    }
    CollectLeaves(nodes[id].left, order);
    CollectLeaves(nodes[id].right, order);
  }
};

// Ensembles are per-party vectors of trees.
struct PivotEnsemble {
  TreeTask task = TreeTask::kClassification;
  int num_classes = 2;
  double learning_rate = 1.0;  // used by GBDT
  // Random forest: forests[0][w]. GBDT classification: forests[k][w].
  std::vector<std::vector<PivotTree>> forests;
};

}  // namespace pivot

#endif  // PIVOT_PIVOT_MODEL_H_
