#include "pivot/prediction.h"

#include <algorithm>

#include "common/check.h"
#include "common/fixed_point.h"
#include "net/codec.h"

namespace pivot {

namespace {

// Maps every leaf (in LeafOrder) to the list of internal-node constraints
// along its root path: (node id, goes_left).
using PathConstraint = LeafPathConstraint;

void CollectPaths(const PivotTree& tree, int id,
                  std::vector<PathConstraint>& prefix,
                  std::vector<std::vector<PathConstraint>>& out) {
  const PivotNode& n = tree.nodes[id];
  if (n.is_leaf) {
    out.push_back(prefix);
    return;
  }
  prefix.push_back({id, true});
  CollectPaths(tree, n.left, prefix, out);
  prefix.back().left = false;
  CollectPaths(tree, n.right, prefix, out);
  prefix.pop_back();
}

std::vector<std::vector<PathConstraint>> LeafPaths(const PivotTree& tree) {
  std::vector<std::vector<PathConstraint>> out;
  std::vector<PathConstraint> prefix;
  if (!tree.nodes.empty()) CollectPaths(tree, 0, prefix, out);
  return out;
}

// The plaintext leaf/label vector z of the basic protocol, in LeafOrder.
std::vector<BigInt> LeafPlainVector(const PivotTree& tree,
                                    const std::vector<int>& leaf_order) {
  std::vector<BigInt> z;
  z.reserve(leaf_order.size());
  for (int id : leaf_order) {
    const double v = tree.nodes[id].leaf_value;
    if (tree.task == TreeTask::kRegression) {
      z.push_back(FpToBigInt(FpFromSigned(FixedFromDouble(v))));
    } else {
      z.push_back(BigInt(static_cast<int64_t>(v)));
    }
  }
  return z;
}

// Basic-protocol round-robin update of the encrypted prediction vector:
// this party zeroes every leaf whose path contradicts one of its own
// feature comparisons, and rerandomizes the rest (batched: multiply by 1
// or 0, then rerandomize so the two cases are indistinguishable).
Status ApplyLocalUpdates(PartyContext& ctx, const PivotTree& tree,
                         const std::vector<double>& my_features,
                         const std::vector<std::vector<PathConstraint>>& paths,
                         std::vector<Ciphertext>* eta) {
  std::vector<BigInt> sel(paths.size());
  for (size_t leaf = 0; leaf < paths.size(); ++leaf) {
    bool possible = true;
    for (const PathConstraint& pc : paths[leaf]) {
      const PivotNode& n = tree.nodes[pc.node];
      if (n.owner != ctx.id()) continue;
      const bool go_left = my_features[n.feature_local] <= n.threshold;
      if (go_left != pc.left) {
        possible = false;
        break;
      }
    }
    sel[leaf] = BigInt(possible ? 1 : 0);
  }
  PIVOT_ASSIGN_OR_RETURN(
      std::vector<Ciphertext> scaled,
      ScalarMulBatch(ctx.pk(), sel, *eta, ctx.crypto_threads()));
  PIVOT_ASSIGN_OR_RETURN(*eta, ctx.RerandomizeBatch(scaled));
  return Status::Ok();
}

Result<Ciphertext> RunBasicPrediction(PartyContext& ctx, const PivotTree& tree,
                                      const std::vector<double>& my_features) {
  const int m = ctx.num_parties();
  const auto paths = LeafPaths(tree);
  const size_t leaves = paths.size();

  // Round-robin from party m-1 down to party 0 (Algorithm 4).
  std::vector<Ciphertext> eta;
  if (ctx.id() == m - 1) {
    const std::vector<BigInt> ones(leaves, BigInt(1));
    PIVOT_ASSIGN_OR_RETURN(eta, ctx.EncryptBatch(ones));
  } else {
    PIVOT_ASSIGN_OR_RETURN(eta, ctx.RecvCiphertexts(ctx.id() + 1));
    if (eta.size() != leaves) {
      return Status::ProtocolError("prediction vector size mismatch");
    }
  }
  PIVOT_RETURN_IF_ERROR(
      ApplyLocalUpdates(ctx, tree, my_features, paths, &eta));
  if (ctx.id() > 0) {
    PIVOT_RETURN_IF_ERROR(
        ctx.endpoint().Send(ctx.id() - 1, EncodeCiphertextVector(eta)));
  }

  // Party 0 computes [k-bar] = z ⊙ [eta] and broadcasts it.
  std::vector<Ciphertext> kbar;
  if (ctx.id() == 0) {
    const std::vector<int> leaf_ids = tree.LeafOrder();
    PIVOT_CHECK(leaf_ids.size() == leaves);
    const std::vector<BigInt> z = LeafPlainVector(tree, leaf_ids);
    kbar.push_back(ctx.pk().DotProduct(z, eta));
    if (m > 1) PIVOT_RETURN_IF_ERROR(ctx.BroadcastCiphertexts(kbar));
  } else {
    PIVOT_ASSIGN_OR_RETURN(kbar, ctx.RecvCiphertexts(0));
  }
  return kbar[0];
}

Result<u128> RunEnhancedPredictionShare(
    PartyContext& ctx, const PivotTree& tree,
    const std::vector<double>& my_features) {
  MpcEngine& eng = ctx.engine();
  const int k_bound = ctx.params().mpc.value_bits;

  // 1. Secret-share the feature value at every internal node. Nodes with
  // a public feature: the owner inputs its value. Nodes with a hidden
  // feature (HidingLevel::kFeature / kClientAndFeature): every involved
  // client selects its candidate feature value against its retained
  // lambda slice; the homomorphic sum is the winning feature's value,
  // which is then converted to shares without anyone learning which
  // feature was used.
  const size_t node_count = tree.nodes.size();
  std::vector<u128> x_shares(node_count, 0);
  std::vector<Ciphertext> hidden_cts;
  std::vector<size_t> hidden_ids;
  for (size_t id = 0; id < node_count; ++id) {
    const PivotNode& n = tree.nodes[id];
    if (n.is_leaf) continue;
    if (n.feature_local >= 0) {
      i128 value = 0;
      if (n.owner == ctx.id()) {
        value = FixedFromDouble(my_features[n.feature_local]);
      }
      PIVOT_ASSIGN_OR_RETURN(x_shares[id], eng.Input(n.owner, value));
      continue;
    }
    if (n.lambda_slices.empty()) {
      return Status::FailedPrecondition(
          "hidden-feature node without a retained lambda selector "
          "(selectors are not serialized)");
    }
    Ciphertext x_node = ctx.pk().One();
    bool any = false;
    for (int p = 0; p < ctx.num_parties(); ++p) {
      if (p >= static_cast<int>(n.lambda_slices.size()) ||
          n.lambda_slices[p].empty()) {
        continue;
      }
      std::vector<Ciphertext> partial;
      if (p == ctx.id()) {
        std::vector<BigInt> x_fix(n.lambda_slices[p].size());
        for (size_t e = 0; e < x_fix.size(); ++e) {
          x_fix[e] = FpToBigInt(FpFromSigned(
              FixedFromDouble(my_features[n.lambda_features[p][e]])));
        }
        partial.push_back(ctx.pk().DotProduct(x_fix, n.lambda_slices[p]));
        if (ctx.num_parties() > 1) {
          PIVOT_RETURN_IF_ERROR(ctx.BroadcastCiphertexts(partial));
        }
      } else {
        PIVOT_ASSIGN_OR_RETURN(partial, ctx.RecvCiphertexts(p));
      }
      if (partial.size() != 1) {
        return Status::ProtocolError("selection partial size mismatch");
      }
      x_node = any ? ctx.pk().Add(x_node, partial[0]) : partial[0];
      any = true;
    }
    hidden_cts.push_back(x_node);
    hidden_ids.push_back(id);
  }
  if (!hidden_cts.empty()) {
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> hidden_shares,
                           ctx.CiphertextsToShares(hidden_cts, 0));
    for (size_t i = 0; i < hidden_ids.size(); ++i) {
      x_shares[hidden_ids[i]] = hidden_shares[i];
    }
  }

  // 2. Comparison bit per internal node: [x <= tau] = 1 - [tau < x]
  // = LTZ(x - tau - 1) on raw fixed-point integers.
  std::vector<u128> diffs;
  std::vector<size_t> diff_node;
  for (size_t id = 0; id < node_count; ++id) {
    const PivotNode& n = tree.nodes[id];
    if (n.is_leaf) continue;
    u128 d = FpSub(x_shares[id], n.threshold_share);
    d = eng.AddConst(d, -1);
    diffs.push_back(d);
    diff_node.push_back(id);
  }
  std::vector<u128> go_left(node_count, 0);
  if (!diffs.empty()) {
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> bits,
                           eng.LessThanZeroVec(diffs, k_bound));
    for (size_t i = 0; i < bits.size(); ++i) go_left[diff_node[i]] = bits[i];
  }

  // 3. Markers, root to leaves: left = parent·b, right = parent - left.
  std::vector<u128> marker(node_count, 0);
  if (!tree.nodes.empty()) marker[0] = eng.ConstantField(1);
  // Nodes were added parent-before-children, so a forward scan works.
  for (size_t id = 0; id < node_count; ++id) {
    const PivotNode& n = tree.nodes[id];
    if (n.is_leaf) continue;
    PIVOT_ASSIGN_OR_RETURN(u128 left, eng.Mul(marker[id], go_left[id]));
    marker[n.left] = left;
    marker[n.right] = MpcEngine::Sub(marker[id], left);
  }

  // 4. Prediction = <z> · <eta> over the leaves.
  std::vector<u128> etas, zs;
  for (int id : tree.LeafOrder()) {
    etas.push_back(marker[id]);
    zs.push_back(tree.nodes[id].leaf_share);
  }
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> prods, eng.MulVec(etas, zs));
  u128 acc = 0;
  for (u128 p : prods) acc = FpAdd(acc, p);
  return acc;
}

// Batched selector bits for this party: sel[b*leaves + leaf] is 1 iff
// row b is consistent with the leaf's root path at every internal node
// this party owns.
Result<std::vector<BigInt>> BatchSelectors(
    PartyContext& ctx, const PivotTree& tree,
    const std::vector<std::vector<double>>& rows,
    const std::vector<std::vector<PathConstraint>>& paths) {
  const size_t leaves = paths.size();
  std::vector<BigInt> sel(rows.size() * leaves);
  for (size_t b = 0; b < rows.size(); ++b) {
    const std::vector<double>& row = rows[b];
    for (size_t leaf = 0; leaf < leaves; ++leaf) {
      bool possible = true;
      for (const PathConstraint& pc : paths[leaf]) {
        const PivotNode& n = tree.nodes[pc.node];
        if (n.owner != ctx.id()) continue;
        if (n.feature_local < 0 ||
            static_cast<size_t>(n.feature_local) >= row.size()) {
          return Status::InvalidArgument(
              "request row narrower than this party's feature view");
        }
        const bool go_left = row[n.feature_local] <= n.threshold;
        if (go_left != pc.left) {
          possible = false;
          break;
        }
      }
      sel[b * leaves + leaf] = BigInt(possible ? 1 : 0);
    }
  }
  return sel;
}

// Batched Algorithm 4: one round-robin sweep updates all B encrypted
// prediction vectors — each hop ships one B x leaves ciphertext matrix
// instead of B separate vectors — and party 0 derives one [k-bar] per
// sample. Party m-1 encrypts its selector bits directly: Enc(sel) equals
// (in plaintext value) the scalar path's Rerandomize(ScalarMul(sel,
// Enc(1))), so the per-sample ones-encryption and its follow-up scalar
// multiply disappear. Returns the B [k-bar]s on party 0, {} elsewhere.
Result<std::vector<Ciphertext>> RunBasicPredictionBatch(
    PartyContext& ctx, const PivotTree& tree,
    const std::vector<std::vector<double>>& rows,
    const PredictionCache& cache) {
  const int m = ctx.num_parties();
  const size_t batch = rows.size();
  const size_t leaves = cache.paths.size();

  PIVOT_ASSIGN_OR_RETURN(std::vector<BigInt> sel,
                         BatchSelectors(ctx, tree, rows, cache.paths));
  std::vector<Ciphertext> eta;
  if (ctx.id() == m - 1) {
    PIVOT_ASSIGN_OR_RETURN(eta, ctx.EncryptBatch(sel));
  } else {
    PIVOT_ASSIGN_OR_RETURN(Bytes msg, ctx.endpoint().Recv(ctx.id() + 1));
    PIVOT_ASSIGN_OR_RETURN(CiphertextMatrix mat, DecodeCiphertextMatrix(msg));
    if (mat.rows != batch || mat.cols != leaves) {
      return Status::ProtocolError("prediction batch shape mismatch");
    }
    PIVOT_ASSIGN_OR_RETURN(
        std::vector<Ciphertext> scaled,
        ScalarMulBatch(ctx.pk(), sel, mat.flat, ctx.crypto_threads()));
    PIVOT_ASSIGN_OR_RETURN(eta, ctx.RerandomizeBatch(scaled));
  }
  if (ctx.id() > 0) {
    PIVOT_RETURN_IF_ERROR(ctx.endpoint().Send(
        ctx.id() - 1, EncodeCiphertextMatrix(batch, leaves, eta)));
    return std::vector<Ciphertext>{};
  }
  std::vector<Ciphertext> kbars;
  kbars.reserve(batch);
  for (size_t b = 0; b < batch; ++b) {
    const std::vector<Ciphertext> slice(eta.begin() + b * leaves,
                                        eta.begin() + (b + 1) * leaves);
    kbars.push_back(ctx.pk().DotProduct(cache.leaf_plain, slice));
  }
  return kbars;
}

// Batched enhanced prediction (Section 5.2): every step runs once over
// the concatenated batch — one InputVector round per public-feature node,
// one B-wide oblivious selection per hidden node (reusing the cached
// lambda window tables), one share conversion for all hidden values, one
// comparison round for all internal nodes x samples, one Beaver round per
// tree level of markers, and one final leaf dot product. Returns each
// sample's prediction share (batch-major within each node/leaf block).
Result<std::vector<u128>> RunEnhancedPredictionBatch(
    PartyContext& ctx, const PivotTree& tree,
    const std::vector<std::vector<double>>& rows,
    const PredictionCache& cache) {
  MpcEngine& eng = ctx.engine();
  const int k_bound = ctx.params().mpc.value_bits;
  const size_t batch = rows.size();
  const size_t node_count = tree.nodes.size();

  // 1. Secret-share the feature value at every internal node for every
  // sample of the batch.
  std::vector<u128> x(node_count * batch, 0);
  std::vector<Ciphertext> hidden_cts;  // node-major, `batch` per node
  std::vector<size_t> hidden_ids;
  for (size_t id = 0; id < node_count; ++id) {
    const PivotNode& n = tree.nodes[id];
    if (n.is_leaf) continue;
    if (n.feature_local >= 0) {
      std::vector<i128> vals;
      if (n.owner == ctx.id()) {
        vals.resize(batch);
        for (size_t b = 0; b < batch; ++b) {
          if (static_cast<size_t>(n.feature_local) >= rows[b].size()) {
            return Status::InvalidArgument(
                "request row narrower than this party's feature view");
          }
          vals[b] = FixedFromDouble(rows[b][n.feature_local]);
        }
      }
      PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                             eng.InputVector(n.owner, vals, batch));
      for (size_t b = 0; b < batch; ++b) x[id * batch + b] = shares[b];
      continue;
    }
    const auto it = cache.lambda.find(static_cast<int>(id));
    if (it == cache.lambda.end()) {
      return Status::FailedPrecondition(
          "hidden-feature node without a retained lambda selector "
          "(selectors are not serialized)");
    }
    std::vector<Ciphertext> x_node(batch, ctx.pk().One());
    bool any = false;
    for (int p = 0; p < ctx.num_parties(); ++p) {
      const PreparedCiphertexts* prepared =
          p < static_cast<int>(it->second.size()) ? it->second[p].get()
                                                  : nullptr;
      if (prepared == nullptr) continue;
      std::vector<Ciphertext> partial;
      if (p == ctx.id()) {
        std::vector<std::vector<BigInt>> x_fix(batch);
        for (size_t b = 0; b < batch; ++b) {
          x_fix[b].resize(n.lambda_features[p].size());
          for (size_t e = 0; e < x_fix[b].size(); ++e) {
            const int feature = n.lambda_features[p][e];
            if (feature < 0 ||
                static_cast<size_t>(feature) >= rows[b].size()) {
              return Status::InvalidArgument(
                  "request row narrower than this party's feature view");
            }
            x_fix[b][e] =
                FpToBigInt(FpFromSigned(FixedFromDouble(rows[b][feature])));
          }
        }
        PIVOT_ASSIGN_OR_RETURN(
            partial, prepared->DotProductMany(x_fix, ctx.crypto_threads()));
        if (ctx.num_parties() > 1) {
          PIVOT_RETURN_IF_ERROR(ctx.BroadcastCiphertexts(partial));
        }
      } else {
        PIVOT_ASSIGN_OR_RETURN(partial, ctx.RecvCiphertexts(p));
      }
      if (partial.size() != batch) {
        return Status::ProtocolError("selection partial size mismatch");
      }
      for (size_t b = 0; b < batch; ++b) {
        x_node[b] = any ? ctx.pk().Add(x_node[b], partial[b]) : partial[b];
      }
      any = true;
    }
    hidden_cts.insert(hidden_cts.end(), x_node.begin(), x_node.end());
    hidden_ids.push_back(id);
  }
  if (!hidden_cts.empty()) {
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> hidden_shares,
                           ctx.CiphertextsToShares(hidden_cts, 0));
    for (size_t i = 0; i < hidden_ids.size(); ++i) {
      for (size_t b = 0; b < batch; ++b) {
        x[hidden_ids[i] * batch + b] = hidden_shares[i * batch + b];
      }
    }
  }

  // 2. Comparison bits for all internal nodes x samples in one round:
  // [x <= tau] = 1 - [tau < x] = LTZ(x - tau - 1).
  std::vector<u128> diffs;
  std::vector<size_t> diff_node;
  for (size_t id = 0; id < node_count; ++id) {
    const PivotNode& n = tree.nodes[id];
    if (n.is_leaf) continue;
    for (size_t b = 0; b < batch; ++b) {
      const u128 d = FpSub(x[id * batch + b], n.threshold_share);
      diffs.push_back(eng.AddConst(d, -1));
    }
    diff_node.push_back(id);
  }
  std::vector<u128> go_left(node_count * batch, 0);
  if (!diffs.empty()) {
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> bits,
                           eng.LessThanZeroVec(diffs, k_bound));
    for (size_t i = 0; i < diff_node.size(); ++i) {
      for (size_t b = 0; b < batch; ++b) {
        go_left[diff_node[i] * batch + b] = bits[i * batch + b];
      }
    }
  }

  // 3. Markers, root to leaves: left = parent*b, right = parent - left.
  // Nodes were added parent-before-children, so a forward scan works.
  std::vector<u128> marker(node_count * batch, 0);
  if (!tree.nodes.empty()) {
    const u128 one = eng.ConstantField(1);
    for (size_t b = 0; b < batch; ++b) marker[b] = one;
  }
  for (size_t id = 0; id < node_count; ++id) {
    const PivotNode& n = tree.nodes[id];
    if (n.is_leaf) continue;
    const std::vector<u128> parents(marker.begin() + id * batch,
                                    marker.begin() + (id + 1) * batch);
    const std::vector<u128> bits(go_left.begin() + id * batch,
                                 go_left.begin() + (id + 1) * batch);
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> left, eng.MulVec(parents, bits));
    for (size_t b = 0; b < batch; ++b) {
      marker[n.left * batch + b] = left[b];
      marker[n.right * batch + b] = MpcEngine::Sub(parents[b], left[b]);
    }
  }

  // 4. Prediction = <z> . <eta> over the leaves, all samples in one round.
  std::vector<u128> etas, zs;
  etas.reserve(cache.leaf_order.size() * batch);
  zs.reserve(cache.leaf_order.size() * batch);
  for (int id : cache.leaf_order) {
    for (size_t b = 0; b < batch; ++b) {
      etas.push_back(marker[id * batch + b]);
      zs.push_back(tree.nodes[id].leaf_share);
    }
  }
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> prods, eng.MulVec(etas, zs));
  std::vector<u128> acc(batch, 0);
  for (size_t l = 0; l < cache.leaf_order.size(); ++l) {
    for (size_t b = 0; b < batch; ++b) {
      acc[b] = FpAdd(acc[b], prods[l * batch + b]);
    }
  }
  return acc;
}

}  // namespace

PredictionCache BuildPredictionCache(const PaillierPublicKey& pk,
                                     const PivotTree& tree) {
  PredictionCache cache;
  cache.paths = LeafPaths(tree);
  cache.leaf_order = tree.LeafOrder();
  cache.leaf_plain = LeafPlainVector(tree, cache.leaf_order);
  for (size_t id = 0; id < tree.nodes.size(); ++id) {
    const PivotNode& n = tree.nodes[id];
    if (n.is_leaf || n.feature_local >= 0 || n.lambda_slices.empty()) continue;
    auto& slots = cache.lambda[static_cast<int>(id)];
    slots.resize(n.lambda_slices.size());
    for (size_t p = 0; p < n.lambda_slices.size(); ++p) {
      if (n.lambda_slices[p].empty()) continue;
      slots[p] = std::make_unique<PreparedCiphertexts>(
          pk, n.lambda_slices[p], /*window_tables=*/true);
    }
  }
  return cache;
}

Result<std::vector<double>> PredictPivotBatch(
    PartyContext& ctx, const PivotTree& tree,
    const std::vector<std::vector<double>>& my_rows,
    const PredictionCache* cache) {
  PIVOT_CHECK_MSG(!tree.nodes.empty(), "empty tree");
  if (my_rows.empty()) return std::vector<double>{};
  PredictionCache transient;
  if (cache == nullptr) {
    transient = BuildPredictionCache(ctx.pk(), tree);
    cache = &transient;
  }
  const size_t batch = my_rows.size();
  std::vector<double> out;
  out.reserve(batch);
  if (tree.protocol == Protocol::kEnhanced) {
    PIVOT_ASSIGN_OR_RETURN(
        std::vector<u128> shares,
        RunEnhancedPredictionBatch(ctx, tree, my_rows, *cache));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> opened,
                           ctx.engine().OpenVec(shares));
    for (u128 o : opened) {
      const i128 raw = FpToSigned(o);
      out.push_back(tree.task == TreeTask::kRegression
                        ? FixedToDouble(static_cast<int64_t>(raw))
                        : static_cast<double>(raw));
    }
    return out;
  }
  PIVOT_ASSIGN_OR_RETURN(std::vector<Ciphertext> kbars,
                         RunBasicPredictionBatch(ctx, tree, my_rows, *cache));
  PIVOT_ASSIGN_OR_RETURN(std::vector<BigInt> plains,
                         ctx.JointDecrypt(kbars, 0));
  if (plains.size() != batch) {
    return Status::ProtocolError("prediction batch size mismatch");
  }
  for (const BigInt& p : plains) {
    out.push_back(tree.task == TreeTask::kRegression
                      ? ctx.PlaintextToDouble(p)
                      : static_cast<double>(ctx.PlaintextToSigned(p)));
  }
  return out;
}

Result<double> PredictPivot(PartyContext& ctx, const PivotTree& tree,
                            const std::vector<double>& my_features) {
  PIVOT_CHECK_MSG(!tree.nodes.empty(), "empty tree");
  if (tree.protocol == Protocol::kEnhanced) {
    PIVOT_ASSIGN_OR_RETURN(
        u128 share, RunEnhancedPredictionShare(ctx, tree, my_features));
    PIVOT_ASSIGN_OR_RETURN(u128 opened, ctx.engine().Open(share));
    const i128 raw = FpToSigned(opened);
    if (tree.task == TreeTask::kRegression) {
      return FixedToDouble(static_cast<int64_t>(raw));
    }
    return static_cast<double>(raw);  // class id at integer scale
  }
  PIVOT_ASSIGN_OR_RETURN(Ciphertext kbar,
                         RunBasicPrediction(ctx, tree, my_features));
  PIVOT_ASSIGN_OR_RETURN(std::vector<BigInt> plain,
                         ctx.JointDecrypt({kbar}, 0));
  if (tree.task == TreeTask::kRegression) {
    return ctx.PlaintextToDouble(plain[0]);
  }
  return static_cast<double>(ctx.PlaintextToSigned(plain[0]));
}

Result<std::vector<double>> PredictPivotMany(
    PartyContext& ctx, const PivotTree& tree,
    const std::vector<std::vector<double>>& my_rows) {
  // One chunk = one batched protocol sweep; bounded so a huge test set
  // never holds its whole encrypted prediction matrix in memory at once.
  // The chunk boundaries are a pure function of the (SPMD-agreed) row
  // count, so every party cuts the stream at the same points.
  constexpr size_t kChunk = 256;
  const PredictionCache cache = BuildPredictionCache(ctx.pk(), tree);
  std::vector<double> out;
  out.reserve(my_rows.size());
  for (size_t begin = 0; begin < my_rows.size(); begin += kChunk) {
    const size_t end = std::min(begin + kChunk, my_rows.size());
    const std::vector<std::vector<double>> chunk(my_rows.begin() + begin,
                                                 my_rows.begin() + end);
    PIVOT_ASSIGN_OR_RETURN(std::vector<double> preds,
                           PredictPivotBatch(ctx, tree, chunk, &cache));
    out.insert(out.end(), preds.begin(), preds.end());
  }
  return out;
}

Result<u128> PredictPivotToShare(PartyContext& ctx, const PivotTree& tree,
                                 const std::vector<double>& my_features) {
  if (tree.protocol == Protocol::kEnhanced) {
    return RunEnhancedPredictionShare(ctx, tree, my_features);
  }
  // Basic: Algorithm 4 up to [k-bar], then Algorithm 2. Note: a basic
  // tree's class prediction is integer-scaled; regression is fixed-point.
  PIVOT_ASSIGN_OR_RETURN(Ciphertext kbar,
                         RunBasicPrediction(ctx, tree, my_features));
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> shares,
                         ctx.CiphertextsToShares({kbar}, 0));
  return shares[0];
}

Result<Ciphertext> PredictPivotEncrypted(
    PartyContext& ctx, const PivotTree& tree,
    const std::vector<double>& my_features) {
  PIVOT_CHECK_MSG(tree.protocol == Protocol::kBasic,
                  "encrypted prediction requires the basic protocol");
  return RunBasicPrediction(ctx, tree, my_features);
}

Result<std::vector<Ciphertext>> PredictTrainingSetEncrypted(
    PartyContext& ctx, const PivotTree& tree) {
  PIVOT_CHECK_MSG(tree.protocol == Protocol::kBasic,
                  "training-set prediction requires the basic protocol");
  std::vector<int> leaf_ids = tree.LeafOrder();
  PIVOT_CHECK_MSG(!leaf_ids.empty() &&
                      !tree.nodes[leaf_ids[0]].leaf_mask.empty(),
                  "tree was trained without keep_leaf_masks");
  const size_t n = tree.nodes[leaf_ids[0]].leaf_mask.size();
  std::vector<Ciphertext> out(n, ctx.pk().One());
  for (int id : leaf_ids) {
    const PivotNode& leaf = tree.nodes[id];
    const BigInt z = FpToBigInt(FpFromSigned(FixedFromDouble(leaf.leaf_value)));
    const std::vector<BigInt> zs(n, z);
    PIVOT_ASSIGN_OR_RETURN(
        std::vector<Ciphertext> scaled,
        ScalarMulBatch(ctx.pk(), zs, leaf.leaf_mask, ctx.crypto_threads()));
    for (size_t t = 0; t < n; ++t) {
      out[t] = ctx.pk().Add(out[t], scaled[t]);
    }
  }
  return out;
}

}  // namespace pivot
