#ifndef PIVOT_PIVOT_CONTEXT_H_
#define PIVOT_PIVOT_CONTEXT_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "crypto/paillier_batch.h"
#include "crypto/threshold_paillier.h"
#include "data/dataset.h"
#include "mpc/engine.h"
#include "net/codec.h"
#include "net/network.h"
#include "pivot/params.h"

namespace pivot {

class CheckpointStore;

// Batch-size agreement header for the share-conversion protocols. The
// value is redundantly encoded (u64 + bitwise complement) and capped, so
// a corrupted or desynchronized header is rejected instead of being
// trusted as a length that drives allocations and encryptions.
[[nodiscard]] Status EncodeBatchHeader(uint64_t batch, ByteWriter& w);
Result<uint64_t> DecodeBatchHeader(const Bytes& msg);

// Per-party state for one Pivot protocol run, bundling the party's network
// endpoint, its TPHE key material, its local vertical data view, and its
// MPC engine — plus the two bridges that make the paper's hybrid
// TPHE/MPC framework work:
//
//   CiphertextsToShares  — Algorithm 2 (ciphertext -> additive shares)
//   SharesToCiphertexts  — the reverse conversion used by the enhanced
//                          protocol (Section 5.2)
//
// All interactive methods are SPMD: every party calls them at the same
// point in the protocol with its own arguments.
class PartyContext {
 public:
  PartyContext(int party_id, int super_client_id, Endpoint* endpoint,
               const PaillierPublicKey& pk, PartialKey partial_key,
               VerticalView view, std::vector<double> labels,
               const PivotParams& params);

  int id() const { return endpoint_->id(); }
  int num_parties() const { return endpoint_->num_parties(); }
  int super_client() const { return super_client_id_; }
  bool is_super() const { return id() == super_client_id_; }

  Endpoint& endpoint() { return *endpoint_; }
  MpcEngine& engine() { return *engine_; }
  Preprocessing& prep() { return *prep_; }
  const PaillierPublicKey& pk() const { return pk_; }
  const PivotParams& params() const { return params_; }
  const VerticalView& view() const { return view_; }
  // Labels; non-empty only on the super client.
  const std::vector<double>& labels() const { return labels_; }
  Rng& rng() { return rng_; }

  // Per-call fan-out cap for the batched crypto kernels (shared pool, see
  // common/thread_pool.h). Results are bit-identical for every value.
  int crypto_threads() const { return std::max(1, params_.crypto_threads); }
  // This party's offline encryption-randomness pool (pairs are pure
  // functions of the pool seed, so the cursor below checkpoints them).
  EncRandomnessPool& enc_pool() { return *enc_pool_; }

  // Encrypts a batch with randomness drained from the offline pool,
  // fanning out across crypto_threads(); schedules an asynchronous refill
  // for the next batch when more than one thread is configured.
  Result<std::vector<Ciphertext>> EncryptBatch(
      const std::vector<BigInt>& plains);
  // Batched Rerandomize, drawing encryption randomness from the pool.
  Result<std::vector<Ciphertext>> RerandomizeBatch(
      const std::vector<Ciphertext>& cts);

  // Optional per-party checkpoint store (pivot/checkpoint.h). When set,
  // the trainer snapshots its state after every completed node and can
  // resume from the latest snapshot after a restart. Not owned.
  void set_checkpoint(CheckpointStore* store) { checkpoint_ = store; }
  CheckpointStore* checkpoint() const { return checkpoint_; }
  // Monotonic per-Train counter (SPMD-identical across parties): each
  // tree trained on this context gets its own checkpoint epoch, so a
  // restarted ensemble re-runs finished trees without disturbing the
  // crashed tree's snapshots.
  uint64_t BumpTrainEpoch() { return ++train_epoch_; }

  // Every randomness stream a training run draws from, captured together
  // so a checkpoint can rewind all of them to one exact position: the
  // context rng (masks and residual Paillier randomness), the MPC
  // engine's masking rng + round counter, the preprocessing dealer
  // stream, and the offline encryption-randomness pool cursor.
  struct RandomnessState {
    RngState rng;
    MpcEngine::EngineState engine;
    Preprocessing::PrepState prep;
    uint64_t enc_pool_next = 0;
  };
  RandomnessState SaveRandomnessState() const {
    return RandomnessState{rng_.SaveState(), engine_->SaveState(),
                           prep_->SaveState(), enc_pool_->next_index()};
  }
  void RestoreRandomnessState(const RandomnessState& state) {
    rng_.RestoreState(state.rng);
    engine_->RestoreState(state.engine);
    prep_->RestoreState(state.prep);
    enc_pool_->SetNextIndex(state.enc_pool_next);
  }

  // Per-local-feature candidate split thresholds (computed once from the
  // full columns; see tree/splits.h).
  const std::vector<std::vector<double>>& split_candidates() const {
    return split_candidates_;
  }
  // Left-branch indicator vector (size n) for local feature j, candidate s:
  // entry t is 1 iff sample t's feature value <= threshold.
  const std::vector<uint8_t>& LeftIndicator(int feature, int split) const {
    return left_indicators_[feature][split];
  }

  // ----- Ciphertext messaging -------------------------------------------

  [[nodiscard]] Status BroadcastCiphertexts(const std::vector<Ciphertext>& cts);
  Result<std::vector<Ciphertext>> RecvCiphertexts(int from);

  // ----- Threshold decryption -------------------------------------------

  // Jointly decrypts ciphertexts held by party `holder`: the holder
  // broadcasts them, every party contributes a partial decryption, party
  // `holder` combines and broadcasts the plaintexts. Non-holders pass {}.
  // Returns the plaintexts (in [0, n)) to all parties.
  Result<std::vector<BigInt>> JointDecrypt(const std::vector<Ciphertext>& cts,
                                           int holder);

  // ----- Conversions (the hybrid bridges) --------------------------------

  // Algorithm 2, batched: converts ciphertexts known to party `holder`
  // into additive shares over F_p. The plaintexts must be congruent mod p
  // to the logical values and satisfy value + m·p < n.
  Result<std::vector<u128>> CiphertextsToShares(
      const std::vector<Ciphertext>& cts, int holder);

  // Reverse conversion: every party encrypts its shares and the encrypted
  // shares are summed homomorphically; the resulting plaintexts equal the
  // logical value plus a multiple of p below m·p (erased by the next
  // CiphertextsToShares or by a final mod-p reduction).
  Result<std::vector<Ciphertext>> SharesToCiphertexts(
      const std::vector<u128>& shares);

  // Reduces a decrypted Paillier plaintext to the logical signed
  // fixed-point value (mod-p reduction + signed decode).
  double PlaintextToDouble(const BigInt& plain) const;
  i128 PlaintextToSigned(const BigInt& plain) const;

 private:
  Endpoint* endpoint_;
  int super_client_id_;
  PaillierPublicKey pk_;
  PartialKey partial_key_;
  VerticalView view_;
  std::vector<double> labels_;
  PivotParams params_;
  Rng rng_;
  std::unique_ptr<EncRandomnessPool> enc_pool_;
  std::unique_ptr<Preprocessing> prep_;
  std::unique_ptr<MpcEngine> engine_;
  std::vector<std::vector<double>> split_candidates_;
  // [feature][split] -> indicator over samples.
  std::vector<std::vector<std::vector<uint8_t>>> left_indicators_;
  CheckpointStore* checkpoint_ = nullptr;
  uint64_t train_epoch_ = 0;
};

}  // namespace pivot

#endif  // PIVOT_PIVOT_CONTEXT_H_
