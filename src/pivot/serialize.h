#ifndef PIVOT_PIVOT_SERIALIZE_H_
#define PIVOT_PIVOT_SERIALIZE_H_

#include <string>

#include "common/bytes.h"
#include "pivot/model.h"
#include "tree/tree_model.h"

namespace pivot {

// Binary (de)serialization of trained models, so a party can persist its
// model view between the training and prediction stages (the paper's two
// ideal functionalities F_DTT and F_DTP run at different times).
//
// Notes:
//  - A PivotTree serializes this party's *view*: for the enhanced
//    protocol that includes its secret shares, which are as sensitive as
//    a key share — the caller owns protecting the bytes at rest.
//  - Encrypted leaf masks (a training-time artifact for GBDT) are not
//    persisted.

Bytes SerializeTreeModel(const TreeModel& model);
Result<TreeModel> DeserializeTreeModel(const Bytes& data);

Bytes SerializePivotTree(const PivotTree& tree);
Result<PivotTree> DeserializePivotTree(const Bytes& data);

Bytes SerializePivotEnsemble(const PivotEnsemble& model);
Result<PivotEnsemble> DeserializePivotEnsemble(const Bytes& data);

// File helpers.
Status SaveModelBytes(const Bytes& data, const std::string& path);
Result<Bytes> LoadModelBytes(const std::string& path);

}  // namespace pivot

#endif  // PIVOT_PIVOT_SERIALIZE_H_
