#include "pivot/checkpoint.h"

#include <algorithm>

namespace pivot {

void CheckpointStore::BeginEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch > epoch_) {
    // New progress: earlier epochs can never be resumed again.
    snapshots_.clear();
    epoch_ = epoch;
  }
}

void CheckpointStore::Save(uint64_t epoch, uint64_t index, Bytes snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  // A deterministic re-run of an earlier epoch must not clobber the
  // snapshots the crashed (newest) epoch will resume from.
  if (epoch != epoch_) return;
  for (auto& entry : snapshots_) {
    if (entry.first == index) {
      entry.second = std::move(snapshot);
      return;
    }
  }
  snapshots_.emplace_back(index, std::move(snapshot));
  std::sort(snapshots_.begin(), snapshots_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  while (static_cast<int>(snapshots_.size()) > history_) {
    snapshots_.pop_front();
  }
}

uint64_t CheckpointStore::LatestIndex(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_ || snapshots_.empty()) return kNone;
  return snapshots_.back().first;
}

Result<Bytes> CheckpointStore::Load(uint64_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : snapshots_) {
    if (entry.first == index) return entry.second;
  }
  return Status::NotFound("no checkpoint with index " +
                          std::to_string(index) + " (history window " +
                          std::to_string(history_) + ")");
}

void CheckpointStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  snapshots_.clear();
  epoch_ = 0;
}

void EncodeRngState(const RngState& state, ByteWriter& w) {
  for (int i = 0; i < 4; ++i) w.WriteU64(state.s[i]);
  w.WriteU8(state.has_cached_gaussian ? 1 : 0);
  w.WriteDouble(state.cached_gaussian);
}

Result<RngState> DecodeRngState(ByteReader& r) {
  RngState state;
  for (int i = 0; i < 4; ++i) {
    PIVOT_ASSIGN_OR_RETURN(state.s[i], r.ReadU64());
  }
  PIVOT_ASSIGN_OR_RETURN(uint8_t cached, r.ReadU8());
  state.has_cached_gaussian = cached != 0;
  PIVOT_ASSIGN_OR_RETURN(state.cached_gaussian, r.ReadDouble());
  return state;
}

}  // namespace pivot
