#include "pivot/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace pivot {

namespace {
constexpr uint32_t kStoreMagic = 0x50564353;  // 'PVCS'
constexpr uint32_t kStoreVersion = 1;
}  // namespace

void CheckpointStore::BeginEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch > epoch_) {
    // New progress: earlier epochs can never be resumed again.
    snapshots_.clear();
    epoch_ = epoch;
    PersistLocked();
  }
}

void CheckpointStore::Save(uint64_t epoch, uint64_t index, Bytes snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  // A deterministic re-run of an earlier epoch must not clobber the
  // snapshots the crashed (newest) epoch will resume from.
  if (epoch != epoch_) return;
  for (auto& entry : snapshots_) {
    if (entry.first == index) {
      entry.second = std::move(snapshot);
      PersistLocked();
      return;
    }
  }
  snapshots_.emplace_back(index, std::move(snapshot));
  std::sort(snapshots_.begin(), snapshots_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  while (static_cast<int>(snapshots_.size()) > history_) {
    snapshots_.pop_front();
  }
  PersistLocked();
}

uint64_t CheckpointStore::LatestIndex(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_ || snapshots_.empty()) return kNone;
  return snapshots_.back().first;
}

Result<Bytes> CheckpointStore::Load(uint64_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : snapshots_) {
    if (entry.first == index) return entry.second;
  }
  return Status::NotFound("no checkpoint with index " +
                          std::to_string(index) + " (history window " +
                          std::to_string(history_) + ")");
}

void CheckpointStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  snapshots_.clear();
  epoch_ = 0;
  PersistLocked();
}

void CheckpointStore::SetPersistPath(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  persist_path_ = std::move(path);
  PersistLocked();
}

void CheckpointStore::PersistLocked() {
  if (persist_path_.empty()) return;
  ByteWriter w;
  w.WriteU32(kStoreMagic);
  w.WriteU32(kStoreVersion);
  w.WriteU64(epoch_);
  w.WriteU64(snapshots_.size());
  for (const auto& entry : snapshots_) {
    w.WriteU64(entry.first);
    w.WriteBytes(entry.second);
  }
  // Temp file + rename: a SIGKILL mid-write leaves the previous file
  // intact, so a relauncher never reads a half-written store.
  const std::string tmp = persist_path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;  // best effort: disk trouble must not abort training
  const Bytes& buf = w.data();
  const bool wrote =
      std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  const bool closed = std::fclose(f) == 0;
  if (wrote && closed) {
    std::rename(tmp.c_str(), persist_path_.c_str());
  } else {
    std::remove(tmp.c_str());
  }
}

Status CheckpointStore::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::Ok();  // no file yet: fresh start
  Bytes buf;
  uint8_t chunk[4096];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  std::fclose(f);
  ByteReader r(buf);
  PIVOT_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  PIVOT_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (magic != kStoreMagic) {
    return Status::InvalidArgument("checkpoint store " + path +
                                   ": bad magic (not a PVCS file)");
  }
  if (version != kStoreVersion) {
    return Status::InvalidArgument(
        "checkpoint store " + path + ": unsupported version " +
        std::to_string(version) + " (expected " +
        std::to_string(kStoreVersion) + ")");
  }
  PIVOT_ASSIGN_OR_RETURN(uint64_t epoch, r.ReadU64());
  PIVOT_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  std::deque<std::pair<uint64_t, Bytes>> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    PIVOT_ASSIGN_OR_RETURN(uint64_t index, r.ReadU64());
    PIVOT_ASSIGN_OR_RETURN(Bytes snapshot, r.ReadBytes());
    loaded.emplace_back(index, std::move(snapshot));
  }
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = epoch;
  snapshots_ = std::move(loaded);
  persist_path_ = path;
  return Status::Ok();
}

void EncodeRngState(const RngState& state, ByteWriter& w) {
  for (int i = 0; i < 4; ++i) w.WriteU64(state.s[i]);
  w.WriteU8(state.has_cached_gaussian ? 1 : 0);
  w.WriteDouble(state.cached_gaussian);
}

Result<RngState> DecodeRngState(ByteReader& r) {
  RngState state;
  for (int i = 0; i < 4; ++i) {
    PIVOT_ASSIGN_OR_RETURN(state.s[i], r.ReadU64());
  }
  PIVOT_ASSIGN_OR_RETURN(uint8_t cached, r.ReadU8());
  state.has_cached_gaussian = cached != 0;
  PIVOT_ASSIGN_OR_RETURN(state.cached_gaussian, r.ReadDouble());
  return state;
}

}  // namespace pivot
