#include "pivot/serialize.h"

#include <fstream>

#include "net/codec.h"

namespace pivot {

namespace {

constexpr uint32_t kTreeModelMagic = 0x50544d31;   // "PTM1"
constexpr uint32_t kPivotTreeMagic = 0x50565431;   // "PVT1"
constexpr uint32_t kEnsembleMagic = 0x50564531;    // "PVE1"

void WritePivotNode(const PivotNode& n, ByteWriter& w) {
  w.WriteU8(n.is_leaf ? 1 : 0);
  w.WriteU32(static_cast<uint32_t>(n.owner + 1));
  w.WriteU32(static_cast<uint32_t>(n.feature_local + 1));
  w.WriteDouble(n.threshold);
  w.WriteDouble(n.leaf_value);
  EncodeU128(n.threshold_share, w);
  EncodeU128(n.leaf_share, w);
  w.WriteU32(static_cast<uint32_t>(n.left + 1));
  w.WriteU32(static_cast<uint32_t>(n.right + 1));
}

Result<PivotNode> ReadPivotNode(ByteReader& r) {
  PivotNode n;
  PIVOT_ASSIGN_OR_RETURN(uint8_t leaf, r.ReadU8());
  n.is_leaf = leaf != 0;
  PIVOT_ASSIGN_OR_RETURN(uint32_t owner, r.ReadU32());
  n.owner = static_cast<int>(owner) - 1;
  PIVOT_ASSIGN_OR_RETURN(uint32_t feature, r.ReadU32());
  n.feature_local = static_cast<int>(feature) - 1;
  PIVOT_ASSIGN_OR_RETURN(n.threshold, r.ReadDouble());
  PIVOT_ASSIGN_OR_RETURN(n.leaf_value, r.ReadDouble());
  PIVOT_ASSIGN_OR_RETURN(n.threshold_share, DecodeU128(r));
  PIVOT_ASSIGN_OR_RETURN(n.leaf_share, DecodeU128(r));
  PIVOT_ASSIGN_OR_RETURN(uint32_t left, r.ReadU32());
  n.left = static_cast<int>(left) - 1;
  PIVOT_ASSIGN_OR_RETURN(uint32_t right, r.ReadU32());
  n.right = static_cast<int>(right) - 1;
  return n;
}

}  // namespace

Bytes SerializeTreeModel(const TreeModel& model) {
  ByteWriter w;
  w.WriteU32(kTreeModelMagic);
  w.WriteU64(model.nodes().size());
  for (const TreeNode& n : model.nodes()) {
    w.WriteU8(n.is_leaf ? 1 : 0);
    w.WriteU32(static_cast<uint32_t>(n.feature + 1));
    w.WriteDouble(n.threshold);
    w.WriteDouble(n.leaf_value);
    w.WriteU32(static_cast<uint32_t>(n.left + 1));
    w.WriteU32(static_cast<uint32_t>(n.right + 1));
  }
  return w.Take();
}

Result<TreeModel> DeserializeTreeModel(const Bytes& data) {
  ByteReader r(data);
  PIVOT_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kTreeModelMagic) {
    return Status::InvalidArgument("not a serialized TreeModel");
  }
  PIVOT_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  TreeModel model;
  for (uint64_t i = 0; i < count; ++i) {
    TreeNode n;
    PIVOT_ASSIGN_OR_RETURN(uint8_t leaf, r.ReadU8());
    n.is_leaf = leaf != 0;
    PIVOT_ASSIGN_OR_RETURN(uint32_t feature, r.ReadU32());
    n.feature = static_cast<int>(feature) - 1;
    PIVOT_ASSIGN_OR_RETURN(n.threshold, r.ReadDouble());
    PIVOT_ASSIGN_OR_RETURN(n.leaf_value, r.ReadDouble());
    PIVOT_ASSIGN_OR_RETURN(uint32_t left, r.ReadU32());
    n.left = static_cast<int>(left) - 1;
    PIVOT_ASSIGN_OR_RETURN(uint32_t right, r.ReadU32());
    n.right = static_cast<int>(right) - 1;
    model.AddNode(n);
  }
  return model;
}

Bytes SerializePivotTree(const PivotTree& tree) {
  ByteWriter w;
  w.WriteU32(kPivotTreeMagic);
  w.WriteU8(tree.protocol == Protocol::kEnhanced ? 1 : 0);
  w.WriteU8(tree.task == TreeTask::kRegression ? 1 : 0);
  w.WriteU32(static_cast<uint32_t>(tree.num_classes));
  w.WriteU64(tree.nodes.size());
  for (const PivotNode& n : tree.nodes) WritePivotNode(n, w);
  return w.Take();
}

Result<PivotTree> DeserializePivotTree(const Bytes& data) {
  ByteReader r(data);
  PIVOT_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kPivotTreeMagic) {
    return Status::InvalidArgument("not a serialized PivotTree");
  }
  PivotTree tree;
  PIVOT_ASSIGN_OR_RETURN(uint8_t protocol, r.ReadU8());
  tree.protocol = protocol ? Protocol::kEnhanced : Protocol::kBasic;
  PIVOT_ASSIGN_OR_RETURN(uint8_t task, r.ReadU8());
  tree.task = task ? TreeTask::kRegression : TreeTask::kClassification;
  PIVOT_ASSIGN_OR_RETURN(uint32_t classes, r.ReadU32());
  tree.num_classes = static_cast<int>(classes);
  PIVOT_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  for (uint64_t i = 0; i < count; ++i) {
    PIVOT_ASSIGN_OR_RETURN(PivotNode n, ReadPivotNode(r));
    if (!n.is_leaf &&
        (n.left < 0 || n.right < 0 ||
         n.left >= static_cast<int>(count) ||
         n.right >= static_cast<int>(count))) {
      return Status::InvalidArgument("corrupt tree: child out of range");
    }
    tree.nodes.push_back(std::move(n));
  }
  return tree;
}

Bytes SerializePivotEnsemble(const PivotEnsemble& model) {
  ByteWriter w;
  w.WriteU32(kEnsembleMagic);
  w.WriteU8(model.task == TreeTask::kRegression ? 1 : 0);
  w.WriteU32(static_cast<uint32_t>(model.num_classes));
  w.WriteDouble(model.learning_rate);
  w.WriteU64(model.forests.size());
  for (const auto& forest : model.forests) {
    w.WriteU64(forest.size());
    for (const PivotTree& tree : forest) {
      w.WriteBytes(SerializePivotTree(tree));
    }
  }
  return w.Take();
}

Result<PivotEnsemble> DeserializePivotEnsemble(const Bytes& data) {
  ByteReader r(data);
  PIVOT_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kEnsembleMagic) {
    return Status::InvalidArgument("not a serialized PivotEnsemble");
  }
  PivotEnsemble model;
  PIVOT_ASSIGN_OR_RETURN(uint8_t task, r.ReadU8());
  model.task = task ? TreeTask::kRegression : TreeTask::kClassification;
  PIVOT_ASSIGN_OR_RETURN(uint32_t classes, r.ReadU32());
  model.num_classes = static_cast<int>(classes);
  PIVOT_ASSIGN_OR_RETURN(model.learning_rate, r.ReadDouble());
  PIVOT_ASSIGN_OR_RETURN(uint64_t forests, r.ReadU64());
  model.forests.resize(forests);
  for (uint64_t k = 0; k < forests; ++k) {
    PIVOT_ASSIGN_OR_RETURN(uint64_t trees, r.ReadU64());
    for (uint64_t t = 0; t < trees; ++t) {
      PIVOT_ASSIGN_OR_RETURN(Bytes blob, r.ReadBytes());
      PIVOT_ASSIGN_OR_RETURN(PivotTree tree, DeserializePivotTree(blob));
      model.forests[k].push_back(std::move(tree));
    }
  }
  return model;
}

Status SaveModelBytes(const Bytes& data, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good() ? Status::Ok() : Status::IoError("write failed: " + path);
}

Result<Bytes> LoadModelBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

}  // namespace pivot
