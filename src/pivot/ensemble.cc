#include "pivot/ensemble.h"

#include "common/check.h"
#include "common/ct.h"
#include "common/fixed_point.h"
#include "pivot/prediction.h"

namespace pivot {

namespace {

// Public bootstrap multiplicities for tree `w` (identical on every party:
// the resample pattern is public, the data is not).
std::vector<int> BootstrapWeights(int n, uint64_t seed, int w) {
  Rng rng(seed + 1000003ULL * (w + 1));
  std::vector<int> counts(n, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.NextBelow(n)];
  return counts;
}

// Batched secure softmax over per-sample logit rows (GBDT classification).
// `scores[k][t]`: share of class-k score for sample t. Returns probs in
// the same layout.
Result<std::vector<std::vector<u128>>> SoftmaxRows(
    MpcEngine& eng, const std::vector<std::vector<u128>>& scores) {
  const size_t c = scores.size();
  const size_t n = scores[0].size();
  std::vector<u128> flat;
  flat.reserve(c * n);
  for (const auto& row : scores) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> exps, eng.ExpFixedVec(flat));
  // Per-sample sums.
  std::vector<u128> dens(c * n);
  for (size_t t = 0; t < n; ++t) {
    u128 sum = 0;
    for (size_t k = 0; k < c; ++k) sum = FpAdd(sum, exps[k * n + t]);
    for (size_t k = 0; k < c; ++k) dens[k * n + t] = sum;
  }
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> flat_probs,
                         eng.DivFixedVec(exps, dens));
  std::vector<std::vector<u128>> probs(c, std::vector<u128>(n));
  for (size_t k = 0; k < c; ++k) {
    for (size_t t = 0; t < n; ++t) probs[k][t] = flat_probs[k * n + t];
  }
  return probs;
}

// Scales shares by a public fixed-point factor (e.g. the learning rate)
// and renormalizes.
Result<std::vector<u128>> ScaleShares(MpcEngine& eng,
                                      const std::vector<u128>& xs,
                                      double factor) {
  const u128 fix = FpFromSigned(FixedFromDouble(factor));
  std::vector<u128> scaled(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    scaled[i] = MpcEngine::MulPub(xs[i], fix);
  }
  return eng.TruncPrVec(scaled, eng.config().frac_bits, 70);
}

// One GBDT round: residual shares -> encrypted labels -> tree; returns the
// tree and (optionally) updates `scores` with the learning-rate-scaled
// training-set predictions.
Result<PivotTree> GbdtRound(PartyContext& ctx, const EnsembleOptions& options,
                            const std::vector<u128>& residual_shares,
                            std::vector<u128>* scores_to_update) {
  MpcEngine& eng = ctx.engine();
  PIVOT_ASSIGN_OR_RETURN(std::vector<u128> y_sq,
                         eng.MulFixedVec(residual_shares, residual_shares));
  // Convert [Y] and [Y^2] in one concatenated batch: one broadcast round
  // and one batched encryption instead of two of each.
  std::vector<u128> both;
  both.reserve(2 * residual_shares.size());
  both.insert(both.end(), residual_shares.begin(), residual_shares.end());
  both.insert(both.end(), y_sq.begin(), y_sq.end());
  PIVOT_ASSIGN_OR_RETURN(std::vector<Ciphertext> cts,
                         ctx.SharesToCiphertexts(both));
  EncryptedLabelState labels;
  labels.y.assign(cts.begin(), cts.begin() + residual_shares.size());
  labels.y_sq.assign(cts.begin() + residual_shares.size(), cts.end());

  TrainTreeOptions tree_opts;
  tree_opts.protocol = Protocol::kBasic;
  tree_opts.encrypted_labels = std::move(labels);
  tree_opts.keep_leaf_masks = scores_to_update != nullptr;
  PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, tree_opts));

  if (scores_to_update != nullptr) {
    PIVOT_ASSIGN_OR_RETURN(std::vector<Ciphertext> yhat_cts,
                           PredictTrainingSetEncrypted(ctx, tree));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> yhat,
                           ctx.CiphertextsToShares(yhat_cts, 0));
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> step,
                           ScaleShares(eng, yhat, options.learning_rate));
    for (size_t t = 0; t < scores_to_update->size(); ++t) {
      (*scores_to_update)[t] = FpAdd((*scores_to_update)[t], step[t]);
    }
  }
  return tree;
}

}  // namespace

Result<PivotEnsemble> TrainPivotForest(PartyContext& ctx,
                                       const EnsembleOptions& options) {
  PIVOT_CHECK(options.num_trees >= 1);
  const int n = static_cast<int>(ctx.view().features.size());
  PivotEnsemble model;
  model.task = ctx.params().tree.task;
  model.num_classes = ctx.params().tree.num_classes;
  model.forests.resize(1);
  for (int w = 0; w < options.num_trees; ++w) {
    TrainTreeOptions tree_opts;
    tree_opts.protocol = options.protocol;
    if (options.bootstrap) {
      tree_opts.sample_weights =
          BootstrapWeights(n, options.bootstrap_seed, w);
    }
    PIVOT_ASSIGN_OR_RETURN(PivotTree tree, TrainPivotTree(ctx, tree_opts));
    model.forests[0].push_back(std::move(tree));
  }
  return model;
}

Result<PivotEnsemble> TrainPivotGbdt(PartyContext& ctx,
                                     const EnsembleOptions& options) {
  PIVOT_CHECK(options.num_trees >= 1);
  if (options.protocol != Protocol::kBasic) {
    return Status::Unimplemented(
        "GBDT releases trees in plaintext (basic protocol, Section 7)");
  }
  MpcEngine& eng = ctx.engine();
  const int n = static_cast<int>(ctx.view().features.size());
  const int W = options.num_trees;

  PivotEnsemble model;
  model.task = ctx.params().tree.task;
  model.num_classes = ctx.params().tree.num_classes;
  model.learning_rate = options.learning_rate;

  if (model.task == TreeTask::kRegression) {
    // The super client provides the initial labels; residuals stay shared.
    std::vector<i128> y_fixed(n, 0);
    if (ctx.is_super()) {
      for (int t = 0; t < n; ++t) {
        y_fixed[t] = FixedFromDouble(ctx.labels()[t]);
      }
    }
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> y0,
                           eng.InputVector(ctx.super_client(), y_fixed, n));
    std::vector<u128> residual = y0;
    std::vector<u128> scores(n, 0);
    model.forests.resize(1);
    for (int w = 0; w < W; ++w) {
      const bool last = (w == W - 1);
      PIVOT_ASSIGN_OR_RETURN(
          PivotTree tree,
          GbdtRound(ctx, options, residual, last ? nullptr : &scores));
      model.forests[0].push_back(std::move(tree));
      if (!last) {
        // residual = y - accumulated score.
        for (int t = 0; t < n; ++t) residual[t] = FpSub(y0[t], scores[t]);
      }
    }
    return model;
  }

  // Classification: one-vs-the-rest with secure softmax (Section 7.2).
  const int c = model.num_classes;
  std::vector<std::vector<u128>> onehot(c), scores(c);
  for (int k = 0; k < c; ++k) {
    std::vector<i128> target(n, 0);
    if (ctx.is_super()) {
      for (int t = 0; t < n; ++t) {
        // Constant-time one-hot: the label value must not steer a branch
        // (class membership would leak through encoding time), so the
        // match bit is computed with a CT compare and multiplied in.
        const auto label = static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int>(ctx.labels()[t])));
        const auto hit = static_cast<uint64_t>(
            ct::EqualU64(label, static_cast<uint64_t>(k)));
        target[t] = static_cast<i128>(hit) * FixedFromDouble(1.0);
      }
    }
    PIVOT_ASSIGN_OR_RETURN(onehot[k],
                           eng.InputVector(ctx.super_client(), target, n));
    scores[k].assign(n, 0);
  }
  model.forests.resize(c);
  for (int w = 0; w < W; ++w) {
    PIVOT_ASSIGN_OR_RETURN(std::vector<std::vector<u128>> probs,
                           SoftmaxRows(eng, scores));
    for (int k = 0; k < c; ++k) {
      std::vector<u128> residual(n);
      for (int t = 0; t < n; ++t) {
        residual[t] = FpSub(onehot[k][t], probs[k][t]);
      }
      PIVOT_ASSIGN_OR_RETURN(PivotTree tree,
                             GbdtRound(ctx, options, residual, &scores[k]));
      model.forests[k].push_back(std::move(tree));
    }
  }
  return model;
}

Result<double> PredictPivotEnsemble(PartyContext& ctx,
                                    const PivotEnsemble& model,
                                    const std::vector<double>& my_features) {
  PIVOT_CHECK(!model.forests.empty() && !model.forests[0].empty());
  MpcEngine& eng = ctx.engine();
  const bool gbdt = model.forests.size() > 1 || model.learning_rate != 1.0;

  if (model.task == TreeTask::kRegression) {
    // Mean (RF) or learning-rate-scaled sum (GBDT) of per-tree outputs.
    u128 total = 0;
    for (const PivotTree& tree : model.forests[0]) {
      PIVOT_ASSIGN_OR_RETURN(u128 share,
                             PredictPivotToShare(ctx, tree, my_features));
      total = FpAdd(total, share);
    }
    const double factor =
        gbdt ? model.learning_rate : 1.0 / model.forests[0].size();
    PIVOT_ASSIGN_OR_RETURN(std::vector<u128> scaled,
                           ScaleShares(eng, {total}, factor));
    PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(scaled[0]));
    return FixedToDouble(static_cast<int64_t>(FpToSigned(opened)));
  }

  if (model.forests.size() == 1) {
    // Random forest classification: secure majority vote over shared
    // per-tree class ids.
    const int c = model.num_classes;
    std::vector<u128> votes(c, 0);
    for (const PivotTree& tree : model.forests[0]) {
      PIVOT_ASSIGN_OR_RETURN(u128 cls,
                             PredictPivotToShare(ctx, tree, my_features));
      PIVOT_ASSIGN_OR_RETURN(std::vector<u128> hot, eng.OneHot(cls, c));
      for (int k = 0; k < c; ++k) votes[k] = FpAdd(votes[k], hot[k]);
    }
    PIVOT_ASSIGN_OR_RETURN(MpcEngine::ArgmaxShares best,
                           eng.Argmax(votes, 40));
    PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(best.index));
    return static_cast<double>(FpToSigned(opened));
  }

  // GBDT classification: argmax over per-class score sums.
  std::vector<u128> class_scores(model.forests.size(), 0);
  for (size_t k = 0; k < model.forests.size(); ++k) {
    for (const PivotTree& tree : model.forests[k]) {
      PIVOT_ASSIGN_OR_RETURN(u128 share,
                             PredictPivotToShare(ctx, tree, my_features));
      class_scores[k] = FpAdd(class_scores[k], share);
    }
  }
  PIVOT_ASSIGN_OR_RETURN(MpcEngine::ArgmaxShares best,
                         eng.Argmax(class_scores, 48));
  PIVOT_ASSIGN_OR_RETURN(u128 opened, eng.Open(best.index));
  return static_cast<double>(FpToSigned(opened));
}

Result<std::vector<double>> PredictPivotEnsembleMany(
    PartyContext& ctx, const PivotEnsemble& model,
    const std::vector<std::vector<double>>& my_rows) {
  std::vector<double> out;
  out.reserve(my_rows.size());
  for (const auto& row : my_rows) {
    PIVOT_ASSIGN_OR_RETURN(double pred,
                           PredictPivotEnsemble(ctx, model, row));
    out.push_back(pred);
  }
  return out;
}

}  // namespace pivot
